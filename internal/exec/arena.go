package exec

import (
	"sync"

	"repro/internal/relalg"
)

// DisableBatchPool turns off all container recycling — per-pipeline
// arenas and the global fallback pool — making every operator allocate
// fresh batches and hash tables. A/B knob for the allocation
// benchmarks; set before starting work.
var DisableBatchPool = false

// Arena is a per-propagation-step recycler for the containers a
// pipeline churns through: batches and join hash tables. The engine
// acquires one arena per drain, threads it through the plan, and
// releases it afterwards; operators check containers back in at Close,
// so in steady state a propagation step re-runs entirely on storage the
// previous step already grew — the zero-allocation hot path.
//
// An arena is single-goroutine (one pipeline); the arenas themselves
// recycle through a sync.Pool so concurrent partitions don't contend.
// All methods are nil-receiver safe: a nil arena falls back to the
// global batch pool, which keeps hand-built operator trees in tests
// working without one.
type Arena struct {
	batches []*relalg.Batch
	tables  []*relalg.HashTable
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// NewArena returns an arena, reusing a released one when pooling is on.
func NewArena() *Arena {
	if DisableBatchPool {
		return new(Arena)
	}
	return arenaPool.Get().(*Arena)
}

// Release returns the arena (and everything checked back into it) to
// the shared pool. The caller must not use it afterwards.
func (a *Arena) Release() {
	if a == nil || DisableBatchPool {
		return
	}
	arenaPool.Put(a)
}

// Batch checks out a reset batch, growing a fresh one with the given
// capacity hint only when the freelist is empty.
func (a *Arena) Batch(size int) *relalg.Batch {
	if a == nil {
		return getBatch()
	}
	if n := len(a.batches); n > 0 {
		b := a.batches[n-1]
		a.batches = a.batches[:n-1]
		b.Reset()
		return b
	}
	return relalg.NewBatch(size)
}

// PutBatch checks a batch back in.
func (a *Arena) PutBatch(b *relalg.Batch) {
	if b == nil {
		return
	}
	if a == nil {
		putBatch(b)
		return
	}
	if DisableBatchPool {
		return
	}
	a.batches = append(a.batches, b)
}

// Table checks out a hash table re-keyed on cols.
func (a *Arena) Table(cols []int) *relalg.HashTable {
	if a != nil {
		if n := len(a.tables); n > 0 {
			t := a.tables[n-1]
			a.tables = a.tables[:n-1]
			t.Reset(cols)
			return t
		}
	}
	return relalg.NewHashTable(cols)
}

// PutTable checks a hash table back in.
func (a *Arena) PutTable(t *relalg.HashTable) {
	if a == nil || t == nil || DisableBatchPool {
		return
	}
	a.tables = append(a.tables, t)
}

// Footprint returns the resident bytes of everything currently checked
// into the arena (stats; meaningful after the pipeline closed).
func (a *Arena) Footprint() int64 {
	if a == nil {
		return 0
	}
	var n int64
	for _, b := range a.batches {
		n += b.Footprint()
	}
	for _, t := range a.tables {
		n += t.Footprint()
	}
	return n
}
