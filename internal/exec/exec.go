// Package exec is the physical-plan layer: a batched iterator ("Volcano
// with vectors") operator protocol over reusable columnar batches. The
// engine planner lowers each propagation query to a tree of these
// operators, so deltas stream through the pipeline instead of
// materializing every input and every intermediate join result as a
// relalg.Relation — the shape DBSP and DBToaster show is required for
// incremental maintenance to pay off at scale.
//
// Protocol: Open prepares the operator (acquiring latches, building hash
// tables); Next fills the caller-provided batch and reports whether it
// produced any rows — a false return means the operator is exhausted, and a
// true return carries at least one row; Close releases resources and must
// be idempotent. Operators own the batches they hand to their children and
// check them into their Arena (when attached) at Close; filters narrow
// batches with selection vectors and projections permute columns in place,
// so a steady-state pipeline moves column payloads without allocating.
package exec

import (
	"sync"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// DefaultBatchSize is the batch row-capacity operators use when their
// Size field is zero — the pipeline's vectorization knob. Larger batches
// amortize per-batch overhead; smaller batches keep intermediate working
// sets cache-resident. Per-database values come from engine.Config
// (ROLLINGJOIN_BATCH); operators may overshoot when a single probe row
// fans out to many matches.
const DefaultBatchSize = 256

func batchSize(n int) int {
	if n > 0 {
		return n
	}
	return DefaultBatchSize
}

// batchPool is the global fallback recycler used by operators with no
// Arena attached (hand-built trees in tests, one-off drains).
var batchPool = sync.Pool{New: func() any { return relalg.NewBatch(DefaultBatchSize) }}

func getBatch() *relalg.Batch {
	if DisableBatchPool {
		return relalg.NewBatch(DefaultBatchSize)
	}
	b := batchPool.Get().(*relalg.Batch)
	b.Reset()
	return b
}

func putBatch(b *relalg.Batch) {
	if b == nil || DisableBatchPool {
		return
	}
	batchPool.Put(b)
}

// Operator is one node of a physical plan.
type Operator interface {
	// Open prepares the operator for iteration.
	Open() error
	// Next resets out and fills it with the next rows. It returns false
	// when the operator is exhausted; a true return has >= 1 row in out.
	Next(out *relalg.Batch) (bool, error)
	// Close releases the operator's resources. It must be idempotent and
	// safe to call after a failed Open.
	Close() error
}

// Collect drains op into a materialized relation with the given schema —
// the materialize-at-the-root adapter that keeps the relalg.Relation API
// (and the correctness oracles built on it) working unchanged.
func Collect(op Operator, schema *tuple.Schema) (*relalg.Relation, error) {
	out := relalg.NewRelation(schema)
	_, _, err := Drain(op, func(b *relalg.Batch) error {
		out.Rows = b.MaterializeInto(out.Rows)
		return nil
	})
	return out, err
}

// Drain opens op, feeds every batch to sink, and closes it, returning the
// row and batch counts. The batch passed to sink is reused across calls;
// the sink must copy rows it wants to keep.
func Drain(op Operator, sink func(*relalg.Batch) error) (rows, batches int64, err error) {
	return DrainWith(op, nil, 0, sink)
}

// DrainWith is Drain with an explicit arena (nil falls back to the
// global pool) and batch-capacity hint for the root batch.
func DrainWith(op Operator, a *Arena, size int, sink func(*relalg.Batch) error) (rows, batches int64, err error) {
	if err := op.Open(); err != nil {
		op.Close()
		return 0, 0, err
	}
	defer op.Close()
	b := a.Batch(batchSize(size))
	defer a.PutBatch(b)
	for {
		ok, err := op.Next(b)
		if err != nil {
			return rows, batches, err
		}
		if !ok {
			return rows, batches, nil
		}
		rows += int64(b.Len())
		batches++
		if err := sink(b); err != nil {
			return rows, batches, err
		}
	}
}

// RelationScan streams a materialized relation in batches, applying an
// optional pushdown predicate. It backs delta windows that are already
// materialized and the engine's InputRelation positions.
type RelationScan struct {
	Rel  *relalg.Relation
	Pred relalg.Predicate
	// Size caps rows per batch; 0 means DefaultBatchSize.
	Size int

	pos int
}

// NewRelationScan returns a scan over rel with an optional predicate.
func NewRelationScan(rel *relalg.Relation, pred relalg.Predicate) *RelationScan {
	return &RelationScan{Rel: rel, Pred: pred}
}

// Open implements Operator.
func (s *RelationScan) Open() error {
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *RelationScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	max := batchSize(s.Size)
	for s.pos < len(s.Rel.Rows) && out.Len() < max {
		row := s.Rel.Rows[s.pos]
		s.pos++
		if s.Pred != nil && !s.Pred.Eval(row.Tuple) {
			continue
		}
		out.Append(row)
	}
	return out.Len() > 0, nil
}

// Close implements Operator.
func (s *RelationScan) Close() error { return nil }

// Filter narrows each child batch to the rows satisfying Pred, in place
// via the batch's selection vector — no rows are copied.
type Filter struct {
	Child Operator
	Pred  relalg.Predicate
	// OnFilter, when set, observes each non-empty child batch as
	// (rows in, rows kept) — the selection-vector stats hook.
	OnFilter func(in, kept int)
}

// Open implements Operator.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Operator.
func (f *Filter) Next(out *relalg.Batch) (bool, error) {
	for {
		ok, err := f.Child.Next(out)
		if err != nil || !ok {
			return false, err
		}
		in := out.Len()
		relalg.FilterBatch(f.Pred, out)
		if f.OnFilter != nil {
			f.OnFilter(in, out.Len())
		}
		if out.Len() > 0 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Child.Close() }

// Project maps each child batch onto the columns at Idx (the batched
// form of relalg.Project; it also serves as the column-permutation step
// restoring declaration order after a reordered join pipeline). In the
// columnar layout this is a column move, not a copy.
type Project struct {
	Child Operator
	Idx   []int
}

// Open implements Operator.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Operator.
func (p *Project) Next(out *relalg.Batch) (bool, error) {
	ok, err := p.Child.Next(out)
	if err != nil || !ok {
		return false, err
	}
	out.ProjectInPlace(p.Idx)
	return out.Len() > 0, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Child.Close() }

// Tap invokes OnBatch on every batch flowing through it (stats hooks).
type Tap struct {
	Child   Operator
	OnBatch func(rows int)
}

// Open implements Operator.
func (t *Tap) Open() error { return t.Child.Open() }

// Next implements Operator.
func (t *Tap) Next(out *relalg.Batch) (bool, error) {
	ok, err := t.Child.Next(out)
	if ok && t.OnBatch != nil {
		t.OnBatch(out.Len())
	}
	return ok, err
}

// Close implements Operator.
func (t *Tap) Close() error { return t.Child.Close() }
