// Package exec is the physical-plan layer: a batched iterator ("Volcano
// with vectors") operator protocol over reusable tuple batches. The engine
// planner lowers each propagation query to a tree of these operators, so
// deltas stream through the pipeline instead of materializing every input
// and every intermediate join result as a relalg.Relation — the shape DBSP
// and DBToaster show is required for incremental maintenance to pay off at
// scale.
//
// Protocol: Open prepares the operator (acquiring latches, building hash
// tables); Next fills the caller-provided batch and reports whether it
// produced any rows — a false return means the operator is exhausted, and a
// true return carries at least one row; Close releases resources and must
// be idempotent. Operators own the batches they hand to their children, so
// a pipeline in steady state allocates output tuples but no containers.
package exec

import (
	"sync"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// BatchSize is the number of rows operators aim to put in one batch — the
// pipeline's vectorization knob. Larger batches amortize per-batch overhead;
// smaller batches keep intermediate working sets cache-resident. Operators
// may overshoot it when a single probe row fans out to many matches.
var BatchSize = 256

// DisableBatchPool turns off batch-container recycling, making every
// operator allocate fresh batches (the pre-pool behavior). A/B knob for the
// allocation benchmarks; set before starting work, like BatchSize.
var DisableBatchPool = false

// batchPool recycles the Batch containers operators feed their children.
// Propagation runs thousands of short pipelines, each of which previously
// allocated one batch per operator; recycling them removes that steady-state
// garbage. Row contents are not pooled — Reset truncates but keeps capacity,
// and sinks are already required to copy rows they retain.
var batchPool = sync.Pool{New: func() any { return relalg.NewBatch(BatchSize) }}

func getBatch() *relalg.Batch {
	if DisableBatchPool {
		return relalg.NewBatch(BatchSize)
	}
	b := batchPool.Get().(*relalg.Batch)
	b.Reset()
	return b
}

func putBatch(b *relalg.Batch) {
	if b == nil || DisableBatchPool {
		return
	}
	batchPool.Put(b)
}

// Operator is one node of a physical plan.
type Operator interface {
	// Open prepares the operator for iteration.
	Open() error
	// Next resets out and fills it with the next rows. It returns false
	// when the operator is exhausted; a true return has >= 1 row in out.
	Next(out *relalg.Batch) (bool, error)
	// Close releases the operator's resources. It must be idempotent and
	// safe to call after a failed Open.
	Close() error
}

// Collect drains op into a materialized relation with the given schema —
// the materialize-at-the-root adapter that keeps the relalg.Relation API
// (and the correctness oracles built on it) working unchanged.
func Collect(op Operator, schema *tuple.Schema) (*relalg.Relation, error) {
	out := relalg.NewRelation(schema)
	_, _, err := Drain(op, func(b *relalg.Batch) error {
		out.Rows = append(out.Rows, b.Rows...)
		return nil
	})
	return out, err
}

// Drain opens op, feeds every batch to sink, and closes it, returning the
// row and batch counts. The batch passed to sink is reused across calls;
// the sink must copy rows it wants to keep.
func Drain(op Operator, sink func(*relalg.Batch) error) (rows, batches int64, err error) {
	if err := op.Open(); err != nil {
		op.Close()
		return 0, 0, err
	}
	defer op.Close()
	b := getBatch()
	defer putBatch(b)
	for {
		ok, err := op.Next(b)
		if err != nil {
			return rows, batches, err
		}
		if !ok {
			return rows, batches, nil
		}
		rows += int64(b.Len())
		batches++
		if err := sink(b); err != nil {
			return rows, batches, err
		}
	}
}

// RelationScan streams a materialized relation in batches, applying an
// optional pushdown predicate. It backs delta windows that are already
// materialized and the engine's InputRelation positions.
type RelationScan struct {
	Rel  *relalg.Relation
	Pred relalg.Predicate

	pos int
}

// NewRelationScan returns a scan over rel with an optional predicate.
func NewRelationScan(rel *relalg.Relation, pred relalg.Predicate) *RelationScan {
	return &RelationScan{Rel: rel, Pred: pred}
}

// Open implements Operator.
func (s *RelationScan) Open() error {
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *RelationScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	for s.pos < len(s.Rel.Rows) && out.Len() < BatchSize {
		row := s.Rel.Rows[s.pos]
		s.pos++
		if s.Pred != nil && !s.Pred.Eval(row.Tuple) {
			continue
		}
		out.Append(row)
	}
	return out.Len() > 0, nil
}

// Close implements Operator.
func (s *RelationScan) Close() error { return nil }

// Filter passes through the rows of its child that satisfy Pred.
type Filter struct {
	Child Operator
	Pred  relalg.Predicate

	in *relalg.Batch
}

// Open implements Operator.
func (f *Filter) Open() error {
	f.in = getBatch()
	return f.Child.Open()
}

// Next implements Operator.
func (f *Filter) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	for {
		ok, err := f.Child.Next(f.in)
		if err != nil || !ok {
			return out.Len() > 0, err
		}
		relalg.FilterInto(out, f.in, f.Pred)
		if out.Len() > 0 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error {
	putBatch(f.in)
	f.in = nil
	return f.Child.Close()
}

// Project maps each child row onto the columns at Idx (the batched form of
// relalg.Project; it also serves as the column-permutation step restoring
// declaration order after a reordered join pipeline).
type Project struct {
	Child Operator
	Idx   []int

	in *relalg.Batch
}

// Open implements Operator.
func (p *Project) Open() error {
	p.in = getBatch()
	return p.Child.Open()
}

// Next implements Operator.
func (p *Project) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	ok, err := p.Child.Next(p.in)
	if err != nil || !ok {
		return false, err
	}
	relalg.ProjectInto(out, p.in, p.Idx)
	return out.Len() > 0, nil
}

// Close implements Operator.
func (p *Project) Close() error {
	putBatch(p.in)
	p.in = nil
	return p.Child.Close()
}

// Tap invokes OnBatch on every batch flowing through it (stats hooks).
type Tap struct {
	Child   Operator
	OnBatch func(rows int)
}

// Open implements Operator.
func (t *Tap) Open() error { return t.Child.Open() }

// Next implements Operator.
func (t *Tap) Next(out *relalg.Batch) (bool, error) {
	ok, err := t.Child.Next(out)
	if ok && t.OnBatch != nil {
		t.OnBatch(out.Len())
	}
	return ok, err
}

// Close implements Operator.
func (t *Tap) Close() error { return t.Child.Close() }
