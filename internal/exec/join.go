package exec

import (
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// HashJoin is the batched equi-join operator. One child (chosen by
// BuildLeft) is drained into a hash table at Open; the other streams
// through, probing. The output row layout is always left ⧺ right with the
// paper's combination rule (count product, min non-null timestamp),
// regardless of which side is built, so the planner can put the hash table
// on the small delta side and stream the large base scan without disturbing
// the schema. With no conditions it degenerates to a cross product. An
// empty build side short-circuits: the probe child is never even opened.
type HashJoin struct {
	Left, Right Operator
	On          []relalg.JoinOn
	// BuildLeft selects the build side: true hashes Left and streams Right.
	BuildLeft bool

	ht          *relalg.HashTable
	probe       Operator
	probeCols   []int
	in          *relalg.Batch
	probeOpened bool
	done        bool
}

// Open implements Operator: it fully drains the build side.
func (j *HashJoin) Open() error {
	buildCols := make([]int, len(j.On))
	probeCols := make([]int, len(j.On))
	build := j.Right
	j.probe = j.Left
	for i, c := range j.On {
		buildCols[i], probeCols[i] = c.RightCol, c.LeftCol
	}
	if j.BuildLeft {
		build = j.Left
		j.probe = j.Right
		for i, c := range j.On {
			buildCols[i], probeCols[i] = c.LeftCol, c.RightCol
		}
	}
	j.probeCols = probeCols
	j.ht = relalg.NewHashTable(buildCols)
	j.in = getBatch()

	if err := build.Open(); err != nil {
		build.Close()
		return err
	}
	for {
		ok, err := build.Next(j.in)
		if err != nil {
			build.Close()
			return err
		}
		if !ok {
			break
		}
		j.ht.InsertBatch(j.in)
	}
	if err := build.Close(); err != nil {
		return err
	}
	if j.ht.Len() == 0 {
		// Identically empty join: never touch the probe side.
		j.done = true
		return nil
	}
	if err := j.probe.Open(); err != nil {
		return err
	}
	j.probeOpened = true
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	for {
		ok, err := j.probe.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		for _, pr := range j.in.Rows {
			j.ht.Probe(pr.Tuple, j.probeCols, func(br relalg.Row) {
				if j.BuildLeft {
					out.Append(relalg.Combine(br, pr))
				} else {
					out.Append(relalg.Combine(pr, br))
				}
			})
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.ht = nil
	putBatch(j.in)
	j.in = nil
	if j.probeOpened {
		j.probeOpened = false
		return j.probe.Close()
	}
	return nil
}

// IndexLoopJoin streams its left child and, for each row, probes a base
// table through ProbeFn (an index lookup the engine supplies). Matches are
// base-table rows — count one, null timestamp — so the combined row keeps
// the left row's count and timestamp per the product and minimum rules.
// This operator subsumes the engine's former ad-hoc indexJoin special case.
type IndexLoopJoin struct {
	Left Operator
	// LeftCol is the probe key column within the left row.
	LeftCol int
	// ProbeFn returns the matching base rows for a key value.
	ProbeFn func(v tuple.Value) []tuple.Tuple

	in   *relalg.Batch
	done bool
}

// Open implements Operator.
func (j *IndexLoopJoin) Open() error {
	j.in = getBatch()
	return j.Left.Open()
}

// Next implements Operator.
func (j *IndexLoopJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	for {
		ok, err := j.Left.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		for _, lr := range j.in.Rows {
			for _, m := range j.ProbeFn(lr.Tuple[j.LeftCol]) {
				out.Add(tuple.Concat(lr.Tuple, m), lr.Count, lr.TS)
			}
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *IndexLoopJoin) Close() error {
	putBatch(j.in)
	j.in = nil
	return j.Left.Close()
}

// CachedProbeJoin streams its left child and, for each row, probes a
// resident join-state cache bucket through ProbeFn. Unlike IndexLoopJoin's
// heap probes (always count one), cached rows carry net counts, so matches
// combine with the full rule: count product, minimum non-null timestamp.
// ProbeFn receives an emit callback instead of returning a slice so the
// cache can stream bucket entries without allocating per probe.
type CachedProbeJoin struct {
	Left Operator
	// LeftCol is the probe key column within the left row.
	LeftCol int
	// ProbeFn calls emit for every cached row matching the key value.
	ProbeFn func(v tuple.Value, emit func(relalg.Row))

	in   *relalg.Batch
	done bool
}

// Open implements Operator.
func (j *CachedProbeJoin) Open() error {
	j.in = getBatch()
	return j.Left.Open()
}

// Next implements Operator.
func (j *CachedProbeJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	for {
		ok, err := j.Left.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		for _, lr := range j.in.Rows {
			j.ProbeFn(lr.Tuple[j.LeftCol], func(m relalg.Row) {
				out.Append(relalg.Combine(lr, m))
			})
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *CachedProbeJoin) Close() error {
	putBatch(j.in)
	j.in = nil
	return j.Left.Close()
}
