package exec

import (
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// HashJoin is the batched equi-join operator. One child (chosen by
// BuildLeft) is drained into a columnar hash table at Open; the other
// streams through, probing chain-wise: hash straight off the probe
// batch's columns, Seek/Next/Match down the bucket chain, and append
// matches as column moves. The output row layout is always left ⧺ right
// with the paper's combination rule (count product, min non-null
// timestamp), regardless of which side is built, so the planner can put
// the hash table on the small delta side and stream the large base scan
// without disturbing the schema. With no conditions it degenerates to a
// cross product. An empty build side short-circuits: the probe child is
// never even opened.
type HashJoin struct {
	Left, Right Operator
	On          []relalg.JoinOn
	// BuildLeft selects the build side: true hashes Left and streams Right.
	BuildLeft bool
	// Size caps probe-batch rows; 0 means DefaultBatchSize.
	Size int
	// A, when set, recycles the probe batch and hash table.
	A *Arena

	ht          *relalg.HashTable
	probe       Operator
	probeCols   []int
	buildCols   []int
	in          *relalg.Batch
	probeOpened bool
	done        bool
}

// Open implements Operator: it fully drains the build side.
func (j *HashJoin) Open() error {
	if cap(j.buildCols) < len(j.On) {
		j.buildCols = make([]int, len(j.On))
		j.probeCols = make([]int, len(j.On))
	}
	j.buildCols = j.buildCols[:len(j.On)]
	j.probeCols = j.probeCols[:len(j.On)]
	build := j.Right
	j.probe = j.Left
	for i, c := range j.On {
		j.buildCols[i], j.probeCols[i] = c.RightCol, c.LeftCol
	}
	if j.BuildLeft {
		build = j.Left
		j.probe = j.Right
		for i, c := range j.On {
			j.buildCols[i], j.probeCols[i] = c.LeftCol, c.RightCol
		}
	}
	j.done = false
	j.ht = j.A.Table(j.buildCols)
	j.in = j.A.Batch(batchSize(j.Size))

	if err := build.Open(); err != nil {
		build.Close()
		return err
	}
	for {
		ok, err := build.Next(j.in)
		if err != nil {
			build.Close()
			return err
		}
		if !ok {
			break
		}
		j.ht.InsertBatch(j.in)
	}
	if err := build.Close(); err != nil {
		return err
	}
	if j.ht.Len() == 0 {
		// Identically empty join: never touch the probe side.
		j.done = true
		return nil
	}
	j.ht.Finalize()
	if err := j.probe.Open(); err != nil {
		return err
	}
	j.probeOpened = true
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	store := j.ht.Store()
	for {
		ok, err := j.probe.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		n := j.in.Len()
		for pi := 0; pi < n; pi++ {
			h := j.in.HashAt(pi, j.probeCols)
			for i := j.ht.Seek(h); i >= 0; i = j.ht.Next(i) {
				if !j.ht.Match(i, h, j.in, pi, j.probeCols) {
					continue
				}
				if j.BuildLeft {
					out.AppendJoined(store, int(i), j.in, pi)
				} else {
					out.AppendJoined(j.in, pi, store, int(i))
				}
			}
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.A.PutTable(j.ht)
	j.ht = nil
	j.A.PutBatch(j.in)
	j.in = nil
	if j.probeOpened {
		j.probeOpened = false
		return j.probe.Close()
	}
	return nil
}

// IndexLoopJoin streams its left child and, for each row, probes a base
// table through ProbeFn (an index lookup the engine supplies). Matches are
// base-table rows — count one, null timestamp — so the combined row keeps
// the left row's count and timestamp per the product and minimum rules.
// This operator subsumes the engine's former ad-hoc indexJoin special case.
type IndexLoopJoin struct {
	Left Operator
	// LeftCol is the probe key column within the left row.
	LeftCol int
	// ProbeFn returns the matching base rows for a key value.
	ProbeFn func(v tuple.Value) []tuple.Tuple
	// Size caps left-batch rows; 0 means DefaultBatchSize.
	Size int
	// A, when set, recycles the left batch.
	A *Arena

	in   *relalg.Batch
	done bool
}

// Open implements Operator.
func (j *IndexLoopJoin) Open() error {
	j.done = false
	j.in = j.A.Batch(batchSize(j.Size))
	return j.Left.Open()
}

// Next implements Operator.
func (j *IndexLoopJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	for {
		ok, err := j.Left.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		n := j.in.Len()
		for li := 0; li < n; li++ {
			for _, m := range j.ProbeFn(j.in.ValueAt(li, j.LeftCol)) {
				out.AppendConcatTuple(j.in, li, m)
			}
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *IndexLoopJoin) Close() error {
	j.A.PutBatch(j.in)
	j.in = nil
	return j.Left.Close()
}

// CachedProbeJoin streams its left child and, for each row, probes a
// resident join-state cache bucket through ProbeFn. Unlike IndexLoopJoin's
// heap probes (always count one), cached rows carry net counts, so matches
// combine with the full rule: count product, minimum non-null timestamp.
// ProbeFn receives an emit callback instead of returning a slice so the
// cache can stream bucket entries without allocating per probe; the
// callback is built once per Open and parameterized through operator
// fields, keeping the probe loop closure-allocation-free.
type CachedProbeJoin struct {
	Left Operator
	// LeftCol is the probe key column within the left row.
	LeftCol int
	// ProbeFn calls emit for every cached row matching the key value.
	ProbeFn func(v tuple.Value, emit func(relalg.Row))
	// Size caps left-batch rows; 0 means DefaultBatchSize.
	Size int
	// A, when set, recycles the left batch.
	A *Arena

	in   *relalg.Batch
	out  *relalg.Batch
	li   int
	emit func(relalg.Row)
	done bool
}

// Open implements Operator.
func (j *CachedProbeJoin) Open() error {
	j.done = false
	j.in = j.A.Batch(batchSize(j.Size))
	if j.emit == nil {
		j.emit = func(m relalg.Row) { j.out.AppendJoinedRow(j.in, j.li, m) }
	}
	return j.Left.Open()
}

// Next implements Operator.
func (j *CachedProbeJoin) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if j.done {
		return false, nil
	}
	j.out = out
	for {
		ok, err := j.Left.Next(j.in)
		if err != nil {
			return false, err
		}
		if !ok {
			j.done = true
			return out.Len() > 0, nil
		}
		n := j.in.Len()
		for li := 0; li < n; li++ {
			j.li = li
			j.ProbeFn(j.in.ValueAt(li, j.LeftCol), j.emit)
		}
		if out.Len() >= 1 {
			return true, nil
		}
	}
}

// Close implements Operator.
func (j *CachedProbeJoin) Close() error {
	j.A.PutBatch(j.in)
	j.in = nil
	j.out = nil
	return j.Left.Close()
}
