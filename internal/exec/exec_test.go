package exec

import (
	"sort"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

func intSchema(names ...string) *tuple.Schema {
	cols := make([]tuple.Column, len(names))
	for i, n := range names {
		cols[i] = tuple.Column{Name: n, Kind: tuple.KindInt}
	}
	return tuple.NewSchema(cols...)
}

func rel(schema *tuple.Schema, rows ...relalg.Row) *relalg.Relation {
	r := relalg.NewRelation(schema)
	r.Rows = append(r.Rows, rows...)
	return r
}

func row(count int64, ts relalg.CSN, vals ...int64) relalg.Row {
	t := make(tuple.Tuple, len(vals))
	for i, v := range vals {
		t[i] = tuple.Int(v)
	}
	return relalg.Row{Tuple: t, Count: count, TS: ts}
}

// sortRows orders rows canonically so multiset comparisons ignore the
// pipeline's emission order.
func sortRows(rows []relalg.Row) {
	sort.Slice(rows, func(i, j int) bool {
		if c := rows[i].Tuple.Compare(rows[j].Tuple); c != 0 {
			return c < 0
		}
		if rows[i].Count != rows[j].Count {
			return rows[i].Count < rows[j].Count
		}
		return rows[i].TS < rows[j].TS
	})
}

func sameRows(t *testing.T, got, want *relalg.Relation) {
	t.Helper()
	g := append([]relalg.Row(nil), got.Rows...)
	w := append([]relalg.Row(nil), want.Rows...)
	sortRows(g)
	sortRows(w)
	if len(g) != len(w) {
		t.Fatalf("row count: got %d want %d\ngot:  %v\nwant: %v", len(g), len(w), g, w)
	}
	for i := range g {
		if !g[i].Tuple.Equal(w[i].Tuple) || g[i].Count != w[i].Count || g[i].TS != w[i].TS {
			t.Fatalf("row %d: got %v want %v", i, g[i], w[i])
		}
	}
}

func TestRelationScanBatches(t *testing.T) {
	schema := intSchema("a")
	src := relalg.NewRelation(schema)
	for i := 0; i < 11; i++ {
		src.Add(tuple.Tuple{tuple.Int(int64(i))}, 1, relalg.CSN(i+1))
	}
	var rows, batches int
	op := NewRelationScan(src, nil)
	op.Size = 4
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	b := relalg.NewBatch(op.Size)
	for {
		ok, err := op.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if b.Len() == 0 {
			t.Fatal("true return with empty batch")
		}
		rows += b.Len()
		batches++
	}
	op.Close()
	if rows != 11 || batches != 3 {
		t.Fatalf("rows=%d batches=%d, want 11 rows in 3 batches", rows, batches)
	}
}

func TestFilterAndProject(t *testing.T) {
	schema := intSchema("a", "b")
	src := rel(schema,
		row(1, 1, 1, 10),
		row(2, 2, 2, 20),
		row(1, 3, 3, 30),
		row(1, 4, 4, 40),
	)
	pred := relalg.ColConst{Col: 0, Op: relalg.OpGT, Val: tuple.Int(1)}
	root := &Project{
		Child: &Filter{Child: NewRelationScan(src, nil), Pred: pred},
		Idx:   []int{1},
	}
	got, err := Collect(root, intSchema("b"))
	if err != nil {
		t.Fatal(err)
	}
	want := rel(intSchema("b"), row(2, 2, 20), row(1, 3, 30), row(1, 4, 40))
	sameRows(t, got, want)
}

// TestHashJoinMatchesRelalgJoin checks both build sides against the
// materializing relalg.Join on the same inputs, including count products
// and min-timestamp combination.
func TestHashJoinMatchesRelalgJoin(t *testing.T) {
	left := rel(intSchema("k", "x"),
		row(1, 5, 1, 100),
		row(2, 2, 2, 200),
		row(1, relalg.NullTS, 2, 201),
		row(3, 9, 7, 700),
	)
	right := rel(intSchema("k", "y"),
		row(1, 3, 1, 11),
		row(1, relalg.NullTS, 2, 22),
		row(2, 1, 2, 23),
		row(1, 4, 4, 44),
	)
	on := []relalg.JoinOn{{LeftCol: 0, RightCol: 0}}
	want := relalg.Join(left, right, on)
	for _, buildLeft := range []bool{false, true} {
		j := &HashJoin{
			Left:      NewRelationScan(left, nil),
			Right:     NewRelationScan(right, nil),
			On:        on,
			BuildLeft: buildLeft,
		}
		got, err := Collect(j, want.Schema)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, want)
	}
}

func TestHashJoinCrossProduct(t *testing.T) {
	left := rel(intSchema("a"), row(2, 1, 1), row(1, 2, 2))
	right := rel(intSchema("b"), row(3, relalg.NullTS, 10), row(1, 5, 20))
	want := relalg.Join(left, right, nil)
	j := &HashJoin{Left: NewRelationScan(left, nil), Right: NewRelationScan(right, nil)}
	got, err := Collect(j, want.Schema)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, want)
}

// openTracker flags whether Open was ever called (for short-circuit tests).
type openTracker struct {
	Operator
	opened bool
}

func (o *openTracker) Open() error {
	o.opened = true
	return o.Operator.Open()
}

// TestHashJoinEmptyBuildShortCircuit verifies that an identically empty
// build side means the probe child is never opened — the planner relies on
// this to skip base-table scans for empty delta prefixes.
func TestHashJoinEmptyBuildShortCircuit(t *testing.T) {
	empty := relalg.NewRelation(intSchema("k"))
	probe := &openTracker{Operator: NewRelationScan(rel(intSchema("k"), row(1, 1, 1)), nil)}
	j := &HashJoin{
		Left:      probe,
		Right:     NewRelationScan(empty, nil),
		On:        []relalg.JoinOn{{LeftCol: 0, RightCol: 0}},
		BuildLeft: false, // build Right (empty), probe Left
	}
	got, err := Collect(j, intSchema("k", "r_k"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("expected empty join, got %d rows", got.Len())
	}
	if probe.opened {
		t.Fatal("probe child was opened despite empty build side")
	}
}

func TestIndexLoopJoin(t *testing.T) {
	left := rel(intSchema("k", "x"), row(2, 3, 1, 100), row(1, 7, 5, 500))
	matches := map[int64][]tuple.Tuple{
		1: {{tuple.Int(1), tuple.Int(11)}, {tuple.Int(1), tuple.Int(12)}},
	}
	var probes int
	j := &IndexLoopJoin{
		Left:    NewRelationScan(left, nil),
		LeftCol: 0,
		ProbeFn: func(v tuple.Value) []tuple.Tuple {
			probes++
			return matches[v.AsInt()]
		},
	}
	got, err := Collect(j, intSchema("k", "x", "r_k", "y"))
	if err != nil {
		t.Fatal(err)
	}
	want := rel(got.Schema,
		row(2, 3, 1, 100, 1, 11),
		row(2, 3, 1, 100, 1, 12),
	)
	sameRows(t, got, want)
	if probes != 2 {
		t.Fatalf("probes=%d, want one per left row", probes)
	}
}

func TestTapCountsRows(t *testing.T) {
	src := rel(intSchema("a"), row(1, 1, 1), row(1, 2, 2), row(1, 3, 3))
	var rows int
	tap := &Tap{Child: NewRelationScan(src, nil), OnBatch: func(n int) { rows += n }}
	if _, err := Collect(tap, src.Schema); err != nil {
		t.Fatal(err)
	}
	if rows != 3 {
		t.Fatalf("tap saw %d rows, want 3", rows)
	}
}

func TestDrainCounts(t *testing.T) {
	src := rel(intSchema("a"), row(1, 1, 1), row(1, 2, 2), row(1, 3, 3))
	scan := NewRelationScan(src, nil)
	scan.Size = 2
	rows, batches, err := Drain(scan, func(*relalg.Batch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rows != 3 || batches != 2 {
		t.Fatalf("rows=%d batches=%d, want 3 rows in 2 batches", rows, batches)
	}
}
