package capture

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	sch := tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindString},
	)
	if _, err := db.CreateTable("r", sch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateDelta("r"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("unwatched", sch); err != nil {
		t.Fatal(err)
	}
	return db
}

func insert(t *testing.T, db *engine.DB, table string, id int64, v string) relalg.CSN {
	t.Helper()
	tx := db.Begin()
	if err := tx.Insert(table, tuple.Tuple{tuple.Int(id), tuple.String_(v)}); err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	csn, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return csn
}

func TestLogCaptureBasic(t *testing.T) {
	db := newDB(t)
	c := NewLogCapture(db)

	csn1 := insert(t, db, "r", 1, "a")
	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(2), tuple.String_("b")})
	tx.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(1)}, 0)
	csn2, _ := tx.Commit()

	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	if c.Progress() != csn2 {
		t.Fatalf("progress %d want %d", c.Progress(), csn2)
	}
	d, _ := db.Delta("r")
	all := d.All()
	if all.Len() != 3 {
		t.Fatalf("delta rows %d: %s", all.Len(), all)
	}
	// Row order is timestamp order: insert@1, then insert@2 and delete@2.
	if all.Rows[0].TS != csn1 || all.Rows[0].Count != 1 {
		t.Fatal("first delta row")
	}
	if all.Rows[2].Count != -1 || all.Rows[2].TS != csn2 {
		t.Fatal("delete delta row")
	}
	if c.RowsCaptured() != 3 || c.CommitsCaptured() != 2 {
		t.Fatalf("counters %d %d", c.RowsCaptured(), c.CommitsCaptured())
	}
}

func TestLogCaptureIgnoresAbortsAndUnwatched(t *testing.T) {
	db := newDB(t)
	c := NewLogCapture(db)

	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("doomed")})
	tx.Abort()
	insert(t, db, "unwatched", 9, "z")

	if err := c.RunOnce(); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Delta("r")
	if d.Len() != 0 {
		t.Fatal("aborted/unwatched changes leaked into delta")
	}
	// The unwatched table's commit still advances progress and the UOW.
	if c.Progress() != 1 || c.UOW().Len() != 1 {
		t.Fatalf("progress %d uow %d", c.Progress(), c.UOW().Len())
	}
}

func TestLogCaptureBackground(t *testing.T) {
	db := newDB(t)
	c := NewLogCapture(db)
	c.Start()
	c.Start() // idempotent

	var lastCSN relalg.CSN
	for i := 0; i < 20; i++ {
		lastCSN = insert(t, db, "r", int64(i), "v")
	}
	if err := c.WaitProgress(lastCSN); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Delta("r")
	if d.Len() != 20 {
		t.Fatalf("delta %d", d.Len())
	}
	db.Close()
	c.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	// After stop, waiting for future progress errors out.
	if err := c.WaitProgress(lastCSN + 100); !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestUnitOfWorkLookups(t *testing.T) {
	u := NewUnitOfWork()
	base := time.Unix(1000, 0)
	for i := 1; i <= 5; i++ {
		u.add(UOWEntry{TxID: uint64(i * 10), CSN: relalg.CSN(i), Wall: base.Add(time.Duration(i) * time.Minute)})
	}
	if e, ok := u.ByTx(30); !ok || e.CSN != 3 {
		t.Fatal("ByTx")
	}
	if _, ok := u.ByTx(99); ok {
		t.Fatal("ByTx missing")
	}
	if csn, ok := u.CSNAtOrBefore(base.Add(150 * time.Second)); !ok || csn != 2 {
		t.Fatalf("CSNAtOrBefore: %d %v", csn, ok)
	}
	if csn, ok := u.CSNAtOrBefore(base.Add(time.Hour)); !ok || csn != 5 {
		t.Fatalf("CSNAtOrBefore end: %d %v", csn, ok)
	}
	if _, ok := u.CSNAtOrBefore(base); ok {
		t.Fatal("CSNAtOrBefore before first commit")
	}
	if w, ok := u.WallForCSN(4); !ok || !w.Equal(base.Add(4*time.Minute)) {
		t.Fatal("WallForCSN")
	}
	if _, ok := u.WallForCSN(99); ok {
		t.Fatal("WallForCSN missing")
	}
}

func TestTriggerCaptureBasic(t *testing.T) {
	db := newDB(t)
	c := NewTriggerCapture(db)
	defer c.Stop()

	csn := insert(t, db, "r", 1, "a")
	// Synchronous: progress is already there, no waiting.
	if c.Progress() < csn {
		t.Fatalf("progress %d want >= %d", c.Progress(), csn)
	}
	if err := c.WaitProgress(csn); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Delta("r")
	if d.Len() != 1 {
		t.Fatal("delta not populated synchronously")
	}
	if c.RowsCaptured() != 1 || c.CommitsCaptured() != 1 || c.UOW().Len() != 1 {
		t.Fatal("counters")
	}
}

func TestTriggerCaptureReadOnlyCommitAdvances(t *testing.T) {
	db := newDB(t)
	c := NewTriggerCapture(db)
	defer c.Stop()
	tx := db.Begin()
	tx.Commit() // read-only
	if c.Progress() != 1 {
		t.Fatalf("progress %d", c.Progress())
	}
	if err := c.WaitProgress(1); err != nil {
		t.Fatal(err)
	}
}

func TestTriggerCaptureWaitStops(t *testing.T) {
	db := newDB(t)
	c := NewTriggerCapture(db)
	done := make(chan error, 1)
	go func() { done <- c.WaitProgress(100) }()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	if err := <-done; !errors.Is(err, ErrStopped) {
		t.Fatalf("want ErrStopped, got %v", err)
	}
}

func TestCapturesAgree(t *testing.T) {
	// Run both capture modes side by side on two engines fed identical
	// operations; the resulting delta tables must be identical.
	dbLog := newDB(t)
	dbTrig := newDB(t)
	logCap := NewLogCapture(dbLog)
	trigCap := NewTriggerCapture(dbTrig)
	defer trigCap.Stop()

	apply := func(db *engine.DB) {
		for i := 0; i < 10; i++ {
			tx := db.Begin()
			tx.Insert("r", tuple.Tuple{tuple.Int(int64(i)), tuple.String_("v")})
			if i%3 == 0 && i > 0 {
				tx.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(int64(i - 1))}, 0)
			}
			tx.Commit()
		}
	}
	apply(dbLog)
	apply(dbTrig)
	if err := logCap.RunOnce(); err != nil {
		t.Fatal(err)
	}
	dLog, _ := dbLog.Delta("r")
	dTrig, _ := dbTrig.Delta("r")
	a, b := dLog.All(), dTrig.All()
	if a.Len() != b.Len() {
		t.Fatalf("capture modes disagree: %d vs %d rows", a.Len(), b.Len())
	}
	for i := range a.Rows {
		if a.Rows[i].Count != b.Rows[i].Count || a.Rows[i].TS != b.Rows[i].TS || !a.Rows[i].Tuple.Equal(b.Rows[i].Tuple) {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}

func TestConcurrentWritersCaptureOrder(t *testing.T) {
	db := newDB(t)
	c := NewLogCapture(db)
	c.Start()
	var wg sync.WaitGroup
	const workers = 6
	const per = 30
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tx := db.Begin()
				if err := tx.Insert("r", tuple.Tuple{tuple.Int(int64(w*1000 + i)), tuple.String_("v")}); err != nil {
					tx.Abort()
					t.Error(err)
					return
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	last := db.LastCSN()
	if err := c.WaitProgress(last); err != nil {
		t.Fatal(err)
	}
	d, _ := db.Delta("r")
	all := d.All()
	if all.Len() != workers*per {
		t.Fatalf("rows %d", all.Len())
	}
	// Delta rows must come out in nondecreasing timestamp order.
	for i := 1; i < all.Len(); i++ {
		if all.Rows[i].TS < all.Rows[i-1].TS {
			t.Fatal("delta not in timestamp order")
		}
	}
	db.Close()
	c.Wait()
}
