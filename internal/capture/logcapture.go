package capture

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

type pendingChange struct {
	table string
	row   tuple.Tuple
	count int64
}

// LogCapture is the DPropR analogue: it tails the write-ahead log,
// buffering each transaction's inserts and deletes until the commit record
// arrives, then appends them to the corresponding delta tables stamped with
// the commit CSN. Because commit records appear in the log in CSN order,
// delta tables fill strictly in timestamp order and the progress watermark
// is exact.
type LogCapture struct {
	db     *engine.DB
	reader *wal.Reader
	uow    *UnitOfWork
	track  *progressTracker

	pending map[uint64][]pendingChange

	wg      sync.WaitGroup
	started atomic.Bool

	rowsCaptured    atomic.Int64
	commitsCaptured atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewLogCapture creates a capture process reading the database's log from
// the beginning.
func NewLogCapture(db *engine.DB) *LogCapture { return NewLogCaptureAt(db, 0, 0) }

// NewLogCaptureAt creates a capture process reading the log from a byte
// offset, with the progress watermark pre-set. Used after a snapshot
// restore: the snapshot already holds delta rows for every commit at or
// below progress, so capture resumes with the log suffix.
func NewLogCaptureAt(db *engine.DB, offset int64, progress relalg.CSN) *LogCapture {
	c := &LogCapture{
		db:      db,
		reader:  db.Log().NewReader(offset),
		uow:     NewUnitOfWork(),
		track:   newProgressTracker(),
		pending: make(map[uint64][]pendingChange),
	}
	c.track.set(progress)
	return c
}

// UOW returns the unit-of-work table the capture maintains.
func (c *LogCapture) UOW() *UnitOfWork { return c.uow }

// Progress implements Source.
func (c *LogCapture) Progress() relalg.CSN { return c.track.get() }

// WaitProgress implements Source.
func (c *LogCapture) WaitProgress(csn relalg.CSN) error { return c.track.wait(csn) }

// WaitProgressContext is WaitProgress with cancellation.
func (c *LogCapture) WaitProgressContext(ctx context.Context, csn relalg.CSN) error {
	return c.track.waitCtx(ctx, csn)
}

// OnProgress registers fn to run after every watermark advance (and once
// when capture stops) — the event-driven wakeup hook for the maintenance
// scheduler. fn runs on the capture goroutine and must not block.
func (c *LogCapture) OnProgress(fn func(relalg.CSN)) { c.track.subscribe(fn) }

// RowsCaptured returns the number of delta rows appended so far.
func (c *LogCapture) RowsCaptured() int64 { return c.rowsCaptured.Load() }

// CommitsCaptured returns the number of commit records processed.
func (c *LogCapture) CommitsCaptured() int64 { return c.commitsCaptured.Load() }

// Started reports whether the capture goroutine has been launched.
func (c *LogCapture) Started() bool { return c.started.Load() }

// Err returns the terminal error, if the capture loop stopped on one.
func (c *LogCapture) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Start launches the capture goroutine. It runs until the log is closed.
func (c *LogCapture) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.track.stop()
		for {
			rec, err := c.reader.NextBlocking()
			if err != nil {
				if !errors.Is(err, wal.ErrClosed) {
					c.errMu.Lock()
					c.err = err
					c.errMu.Unlock()
				}
				return
			}
			if err := c.apply(rec); err != nil {
				c.errMu.Lock()
				c.err = err
				c.errMu.Unlock()
				return
			}
		}
	}()
}

// Wait blocks until the capture goroutine exits (after the log closes).
func (c *LogCapture) Wait() { c.wg.Wait() }

// RunOnce drains all records currently in the log synchronously. It is the
// deterministic-test alternative to Start.
func (c *LogCapture) RunOnce() error {
	for {
		rec, err := c.reader.Next()
		if errors.Is(err, wal.ErrNoMore) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := c.apply(rec); err != nil {
			return err
		}
	}
}

func (c *LogCapture) apply(rec *wal.Record) error {
	switch rec.Type {
	case wal.TypeBegin:
		// Nothing to do; pending entries are created lazily.
	case wal.TypeInsert:
		c.pending[rec.TxID] = append(c.pending[rec.TxID], pendingChange{rec.Table, rec.Row, +1})
	case wal.TypeDelete:
		c.pending[rec.TxID] = append(c.pending[rec.TxID], pendingChange{rec.Table, rec.Row, -1})
	case wal.TypeAbort:
		delete(c.pending, rec.TxID)
	case wal.TypeCommit:
		if err := fault.Inject(fault.PointCaptureReplay); err != nil {
			return err
		}
		for _, ch := range c.pending[rec.TxID] {
			if !c.db.HasDelta(ch.table) {
				continue
			}
			d, err := c.db.Delta(ch.table)
			if err != nil {
				return err
			}
			d.Append(rec.CSN, ch.count, ch.row)
			c.rowsCaptured.Add(1)
		}
		delete(c.pending, rec.TxID)
		c.uow.add(UOWEntry{TxID: rec.TxID, CSN: rec.CSN, Wall: time.Unix(0, rec.WallNanos)})
		c.commitsCaptured.Add(1)
		c.track.set(rec.CSN)
	default:
		return fmt.Errorf("capture: unexpected record type %s", rec.Type)
	}
	return nil
}
