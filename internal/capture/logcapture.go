package capture

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

type pendingChange struct {
	table string
	row   tuple.Tuple
	count int64
}

// LogCapture is the DPropR analogue: it tails the write-ahead log,
// buffering each transaction's inserts and deletes until the commit record
// arrives, then appends them to the corresponding delta tables stamped with
// the commit CSN. Because commit records appear in the log in CSN order,
// delta tables fill strictly in timestamp order and the progress watermark
// is exact.
type LogCapture struct {
	db     *engine.DB
	reader *wal.Reader
	uow    *UnitOfWork
	track  *progressTracker

	pending map[uint64][]pendingChange

	// applyBase marks replica mode: commits replayed from the (shipped)
	// log also apply their base-table writes via engine.ApplyReplicated
	// before the delta appends, so a follower's heaps advance in leader
	// commit order. On a leader the writer's own transaction already did
	// this and capture only fills delta tables.
	applyBase bool

	// cancel tears down the capture goroutine's blocking wait without
	// closing the log — the shutdown drain uses it so the engine can stay
	// open until every captured frame has been replayed.
	ctx    context.Context
	cancel context.CancelFunc

	wg      sync.WaitGroup
	started atomic.Bool

	rowsCaptured    atomic.Int64
	commitsCaptured atomic.Int64

	errMu sync.Mutex
	err   error
}

// NewLogCapture creates a capture process reading the database's log from
// the beginning.
func NewLogCapture(db *engine.DB) *LogCapture { return NewLogCaptureAt(db, 0, 0) }

// NewLogCaptureAt creates a capture process reading the log from a byte
// offset, with the progress watermark pre-set. Used after a snapshot
// restore: the snapshot already holds delta rows for every commit at or
// below progress, so capture resumes with the log suffix.
func NewLogCaptureAt(db *engine.DB, offset int64, progress relalg.CSN) *LogCapture {
	ctx, cancel := context.WithCancel(context.Background())
	c := &LogCapture{
		db:      db,
		reader:  db.Log().NewReader(offset),
		uow:     NewUnitOfWork(),
		track:   newProgressTracker(),
		pending: make(map[uint64][]pendingChange),
		ctx:     ctx,
		cancel:  cancel,
	}
	c.track.set(progress)
	return c
}

// NewReplicaLogCapture creates a capture process for a replica engine: it
// reads the shipped leader log from the beginning and replays each commit
// fully — base-table writes (at the leader's CSN, via ApplyReplicated)
// first, then the delta-table appends. One replay path rebuilds both heaps
// and deltas, so a restarting follower simply re-runs it over the log it
// already has before tailing for more.
func NewReplicaLogCapture(db *engine.DB) *LogCapture {
	c := NewLogCapture(db)
	c.applyBase = true
	return c
}

// UOW returns the unit-of-work table the capture maintains.
func (c *LogCapture) UOW() *UnitOfWork { return c.uow }

// Progress implements Source.
func (c *LogCapture) Progress() relalg.CSN { return c.track.get() }

// WaitProgress implements Source.
func (c *LogCapture) WaitProgress(csn relalg.CSN) error { return c.track.wait(csn) }

// WaitProgressContext is WaitProgress with cancellation.
func (c *LogCapture) WaitProgressContext(ctx context.Context, csn relalg.CSN) error {
	return c.track.waitCtx(ctx, csn)
}

// OnProgress registers fn to run after every watermark advance (and once
// when capture stops) — the event-driven wakeup hook for the maintenance
// scheduler. fn runs on the capture goroutine and must not block.
func (c *LogCapture) OnProgress(fn func(relalg.CSN)) { c.track.subscribe(fn) }

// RowsCaptured returns the number of delta rows appended so far.
func (c *LogCapture) RowsCaptured() int64 { return c.rowsCaptured.Load() }

// CommitsCaptured returns the number of commit records processed.
func (c *LogCapture) CommitsCaptured() int64 { return c.commitsCaptured.Load() }

// Started reports whether the capture goroutine has been launched.
func (c *LogCapture) Started() bool { return c.started.Load() }

// Err returns the terminal error, if the capture loop stopped on one.
func (c *LogCapture) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Start launches the capture goroutine. It runs until the log is closed.
func (c *LogCapture) Start() {
	if !c.started.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.track.stop()
		for {
			rec, err := c.reader.NextBlockingContext(c.ctx)
			if err != nil {
				// ErrClosed (log closed) and context.Canceled (Drain) are
				// clean exits; anything else is a terminal capture error.
				if !errors.Is(err, wal.ErrClosed) && !errors.Is(err, context.Canceled) {
					c.errMu.Lock()
					c.err = err
					c.errMu.Unlock()
				}
				return
			}
			if err := c.apply(rec); err != nil {
				c.errMu.Lock()
				c.err = err
				c.errMu.Unlock()
				return
			}
		}
	}()
}

// Wait blocks until the capture goroutine exits (after the log closes).
func (c *LogCapture) Wait() { c.wg.Wait() }

// Drain shuts the capture down in order: it cancels the goroutine's
// blocking wait, waits for it to exit, then synchronously replays every
// complete frame still in the log, so all captured commits reach the delta
// tables BEFORE the caller closes the engine — the shutdown sequence that
// lets capture finish against a live device. Safe to call whether or not
// Start ran; idempotent. It returns the capture's terminal error, if any.
func (c *LogCapture) Drain() error {
	c.cancel()
	c.wg.Wait()
	if err := c.Err(); err != nil {
		c.track.stop()
		return err
	}
	err := c.RunOnce()
	if err != nil {
		c.errMu.Lock()
		c.err = err
		c.errMu.Unlock()
	}
	c.track.stop()
	return err
}

// RunOnce drains all records currently in the log synchronously. It is the
// deterministic-test alternative to Start.
func (c *LogCapture) RunOnce() error {
	_, err := c.RunBounded(0)
	return err
}

// RunBounded synchronously replays up to limit records (limit <= 0 means
// all available), returning how many were processed. The follower's
// scheduler-driven apply job uses it: each step replays a bounded slice of
// the shipped log so one huge shipment cannot monopolize a worker.
func (c *LogCapture) RunBounded(limit int) (int, error) {
	n := 0
	for limit <= 0 || n < limit {
		rec, err := c.reader.Next()
		if errors.Is(err, wal.ErrNoMore) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := c.apply(rec); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (c *LogCapture) apply(rec *wal.Record) error {
	switch rec.Type {
	case wal.TypeBegin:
		// Nothing to do; pending entries are created lazily.
	case wal.TypeInsert:
		c.pending[rec.TxID] = append(c.pending[rec.TxID], pendingChange{rec.Table, rec.Row, +1})
	case wal.TypeDelete:
		c.pending[rec.TxID] = append(c.pending[rec.TxID], pendingChange{rec.Table, rec.Row, -1})
	case wal.TypeAbort:
		delete(c.pending, rec.TxID)
	case wal.TypeCommit:
		if err := fault.Inject(fault.PointCaptureReplay); err != nil {
			return err
		}
		if c.applyBase {
			// Replica replay: advance the base heaps (and the local clock)
			// to the leader's commit before the delta appends, so by the
			// time the watermark moves, propagation queries at AsOf <= CSN
			// see the commit in both heap and delta form.
			chs := c.pending[rec.TxID]
			writes := make([]engine.Write, len(chs))
			for i, ch := range chs {
				writes[i] = engine.Write{Table: ch.table, Row: ch.row, Count: ch.count}
			}
			if err := c.db.ApplyReplicated(rec.CSN, writes); err != nil {
				return err
			}
		}
		for _, ch := range c.pending[rec.TxID] {
			if !c.db.HasDelta(ch.table) {
				continue
			}
			d, err := c.db.Delta(ch.table)
			if err != nil {
				return err
			}
			d.Append(rec.CSN, ch.count, ch.row)
			c.rowsCaptured.Add(1)
		}
		delete(c.pending, rec.TxID)
		c.uow.add(UOWEntry{TxID: rec.TxID, CSN: rec.CSN, Wall: time.Unix(0, rec.WallNanos)})
		c.commitsCaptured.Add(1)
		c.track.set(rec.CSN)
	default:
		return fmt.Errorf("capture: unexpected record type %s", rec.Type)
	}
	return nil
}
