package capture

import (
	"context"

	"repro/internal/relalg"
)

// Upstream is one maintained view a cascaded view reads as a relation.
// HWM reports its delta high-water mark; CatchUp drives its propagation
// until the mark reaches the target (blocking, cancellable).
type Upstream struct {
	Name    string
	HWM     func() relalg.CSN
	CatchUp func(context.Context, relalg.CSN) error
}

// ViewSource adapts a cascaded view's inputs to the Source interface.
// When a view reads other maintained views, its propagation may only
// consume delta rows those upstream views have already minted: an
// upstream's delta is complete exactly up to its high-water mark. The
// composite progress is therefore the minimum of the base capture
// progress and every upstream mark — the largest CSN at which all of the
// view's inputs (base tables and derived relations alike) are complete.
//
// Progress is cheap and non-blocking, so scheduler-driven propagation
// steps — which clamp their minted boundaries to Progress() at mint time
// — never block in WaitProgress. The slow path (WaitProgress actually
// waiting) is reserved for user-driven CatchUp/WaitForHWM calls, where
// it drives the lagging upstream's propagation forward synchronously
// before falling through to the base capture wait.
type ViewSource struct {
	Base Source
	Ups  []Upstream
}

// Progress returns min(base capture progress, upstream HWMs).
func (s *ViewSource) Progress() relalg.CSN {
	p := s.Base.Progress()
	for _, u := range s.Ups {
		if h := u.HWM(); h < p {
			p = h
		}
	}
	return p
}

// WaitProgress blocks until the composite progress reaches csn.
func (s *ViewSource) WaitProgress(csn relalg.CSN) error {
	return s.WaitProgressContext(context.Background(), csn)
}

// WaitProgressContext is WaitProgress with cancellation. Lagging
// upstreams are caught up first (driving their propagation synchronously
// when no background maintenance runs), then the base capture wait
// covers the rest.
func (s *ViewSource) WaitProgressContext(ctx context.Context, csn relalg.CSN) error {
	for _, u := range s.Ups {
		if u.HWM() < csn {
			if err := u.CatchUp(ctx, csn); err != nil {
				return err
			}
		}
	}
	if w, ok := s.Base.(interface {
		WaitProgressContext(context.Context, relalg.CSN) error
	}); ok {
		return w.WaitProgressContext(ctx, csn)
	}
	return s.Base.WaitProgress(csn)
}
