// Package capture populates base-table delta tables with the changes made
// by committed transactions, reproducing the two capture architectures of
// Section 5 of the paper:
//
//   - LogCapture tails the engine's write-ahead log, buffering each
//     transaction's changes until its commit record is seen, then appends
//     them to the registered delta tables stamped with the commit CSN (the
//     DB2 DataPropagator approach the prototype used).
//   - TriggerCapture hooks the engine's commit path and appends delta rows
//     synchronously inside the writer's commit critical section (the
//     trigger-based alternative the paper discusses and rejects for its
//     expanded update footprint).
//
// Both maintain the unit-of-work table mapping transaction ids to commit
// sequence numbers and wall-clock commit times, and both expose a capture
// progress watermark: all commits with CSN <= Progress() have been fully
// reflected in the delta tables, so any delta window bounded by Progress()
// is closed and immutable.
package capture

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/relalg"
)

// Source is the interface the propagation driver depends on: a capture
// mechanism with a progress watermark.
type Source interface {
	// Progress returns the highest CSN such that every commit at or below
	// it is fully reflected in the delta tables.
	Progress() relalg.CSN
	// WaitProgress blocks until Progress() >= csn or the source stops.
	WaitProgress(csn relalg.CSN) error
}

// ErrStopped is returned by WaitProgress after the capture source stops.
var ErrStopped = errors.New("capture: stopped")

// UOWEntry is one row of the unit-of-work table: the mapping from a
// transaction id to its commit sequence number and wall-clock commit time.
type UOWEntry struct {
	TxID uint64
	CSN  relalg.CSN
	Wall time.Time
}

// UnitOfWork is the global unit-of-work table of Section 5. The propagate
// driver joins delta tuples with this table to translate between
// transaction ids, commit sequence numbers, and wall-clock times.
type UnitOfWork struct {
	mu    sync.RWMutex
	byTx  map[uint64]UOWEntry
	byCSN []UOWEntry // ascending CSN
}

// NewUnitOfWork returns an empty unit-of-work table.
func NewUnitOfWork() *UnitOfWork {
	return &UnitOfWork{byTx: make(map[uint64]UOWEntry)}
}

func (u *UnitOfWork) add(e UOWEntry) {
	u.mu.Lock()
	u.byTx[e.TxID] = e
	u.byCSN = append(u.byCSN, e)
	u.mu.Unlock()
}

// ByTx returns the entry for a transaction id.
func (u *UnitOfWork) ByTx(txid uint64) (UOWEntry, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	e, ok := u.byTx[txid]
	return e, ok
}

// CSNAtOrBefore returns the largest CSN whose commit time is at or before
// wall. It reports false if no commit is that old. This is how wall-clock
// refresh points ("roll the view to 5:00 pm") translate to the internal CSN
// time axis.
func (u *UnitOfWork) CSNAtOrBefore(wall time.Time) (relalg.CSN, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	i := sort.Search(len(u.byCSN), func(i int) bool { return u.byCSN[i].Wall.After(wall) })
	if i == 0 {
		return 0, false
	}
	return u.byCSN[i-1].CSN, true
}

// WallForCSN returns the wall-clock commit time of a CSN.
func (u *UnitOfWork) WallForCSN(csn relalg.CSN) (time.Time, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	i := sort.Search(len(u.byCSN), func(i int) bool { return u.byCSN[i].CSN >= csn })
	if i == len(u.byCSN) || u.byCSN[i].CSN != csn {
		return time.Time{}, false
	}
	return u.byCSN[i].Wall, true
}

// Len returns the number of unit-of-work entries.
func (u *UnitOfWork) Len() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.byCSN)
}

// progressTracker implements the shared watermark + wait machinery.
type progressTracker struct {
	mu       sync.Mutex
	cond     *sync.Cond
	progress relalg.CSN
	stopped  bool
}

func newProgressTracker() *progressTracker {
	p := &progressTracker{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *progressTracker) set(csn relalg.CSN) {
	p.mu.Lock()
	if csn > p.progress {
		p.progress = csn
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *progressTracker) get() relalg.CSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progress
}

func (p *progressTracker) stop() {
	p.mu.Lock()
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *progressTracker) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

func (p *progressTracker) wait(csn relalg.CSN) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.progress < csn && !p.stopped {
		p.cond.Wait()
	}
	if p.progress >= csn {
		return nil
	}
	return ErrStopped
}
