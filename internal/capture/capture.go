// Package capture populates base-table delta tables with the changes made
// by committed transactions, reproducing the two capture architectures of
// Section 5 of the paper:
//
//   - LogCapture tails the engine's write-ahead log, buffering each
//     transaction's changes until its commit record is seen, then appends
//     them to the registered delta tables stamped with the commit CSN (the
//     DB2 DataPropagator approach the prototype used).
//   - TriggerCapture hooks the engine's commit path and appends delta rows
//     synchronously inside the writer's commit critical section (the
//     trigger-based alternative the paper discusses and rejects for its
//     expanded update footprint).
//
// Both maintain the unit-of-work table mapping transaction ids to commit
// sequence numbers and wall-clock commit times, and both expose a capture
// progress watermark: all commits with CSN <= Progress() have been fully
// reflected in the delta tables, so any delta window bounded by Progress()
// is closed and immutable.
package capture

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/relalg"
)

// Source is the interface the propagation driver depends on: a capture
// mechanism with a progress watermark.
type Source interface {
	// Progress returns the highest CSN such that every commit at or below
	// it is fully reflected in the delta tables.
	Progress() relalg.CSN
	// WaitProgress blocks until Progress() >= csn or the source stops.
	WaitProgress(csn relalg.CSN) error
}

// ErrStopped is returned by WaitProgress after the capture source stops.
var ErrStopped = errors.New("capture: stopped")

// UOWEntry is one row of the unit-of-work table: the mapping from a
// transaction id to its commit sequence number and wall-clock commit time.
type UOWEntry struct {
	TxID uint64
	CSN  relalg.CSN
	Wall time.Time
}

// UnitOfWork is the global unit-of-work table of Section 5. The propagate
// driver joins delta tuples with this table to translate between
// transaction ids, commit sequence numbers, and wall-clock times.
type UnitOfWork struct {
	mu    sync.RWMutex
	byTx  map[uint64]UOWEntry
	byCSN []UOWEntry // ascending CSN
}

// NewUnitOfWork returns an empty unit-of-work table.
func NewUnitOfWork() *UnitOfWork {
	return &UnitOfWork{byTx: make(map[uint64]UOWEntry)}
}

func (u *UnitOfWork) add(e UOWEntry) {
	u.mu.Lock()
	u.byTx[e.TxID] = e
	u.byCSN = append(u.byCSN, e)
	u.mu.Unlock()
}

// ByTx returns the entry for a transaction id.
func (u *UnitOfWork) ByTx(txid uint64) (UOWEntry, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	e, ok := u.byTx[txid]
	return e, ok
}

// CSNAtOrBefore returns the largest CSN whose commit time is at or before
// wall. It reports false if no commit is that old. This is how wall-clock
// refresh points ("roll the view to 5:00 pm") translate to the internal CSN
// time axis.
func (u *UnitOfWork) CSNAtOrBefore(wall time.Time) (relalg.CSN, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	i := sort.Search(len(u.byCSN), func(i int) bool { return u.byCSN[i].Wall.After(wall) })
	if i == 0 {
		return 0, false
	}
	return u.byCSN[i-1].CSN, true
}

// WallForCSN returns the wall-clock commit time of a CSN.
func (u *UnitOfWork) WallForCSN(csn relalg.CSN) (time.Time, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	i := sort.Search(len(u.byCSN), func(i int) bool { return u.byCSN[i].CSN >= csn })
	if i == len(u.byCSN) || u.byCSN[i].CSN != csn {
		return time.Time{}, false
	}
	return u.byCSN[i].Wall, true
}

// Len returns the number of unit-of-work entries.
func (u *UnitOfWork) Len() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.byCSN)
}

// PruneThrough drops every entry with CSN <= csn, returning how many were
// removed. The fold job calls it with the storage fold floor: once every
// view's materialization has passed a commit and no snapshot or pin can
// read below it, wall-clock-to-CSN translation is only ever asked for
// times above the fold line, so the prefix of the unit-of-work table is
// dead weight. Without this, the table grows one entry per commit forever
// — the capture-side half of bounding sustained-ingest memory.
// CSNAtOrBefore reports false for wall times entirely below the pruned
// prefix, matching its behavior for times before the first retained
// commit.
func (u *UnitOfWork) PruneThrough(csn relalg.CSN) int {
	u.mu.Lock()
	defer u.mu.Unlock()
	i := sort.Search(len(u.byCSN), func(i int) bool { return u.byCSN[i].CSN > csn })
	if i == 0 {
		return 0
	}
	for _, e := range u.byCSN[:i] {
		delete(u.byTx, e.TxID)
	}
	u.byCSN = append([]UOWEntry(nil), u.byCSN[i:]...)
	return i
}

// progressTracker implements the shared watermark + wait machinery.
// Waiters block on a generation channel that is closed and replaced on
// every advance (so waits compose with contexts), and subscribers —
// the maintenance scheduler's Notify hook — are invoked outside the
// lock after each advance.
type progressTracker struct {
	mu       sync.Mutex
	progress relalg.CSN
	stopped  bool
	gen      chan struct{}
	subs     []func(relalg.CSN)
}

func newProgressTracker() *progressTracker {
	return &progressTracker{gen: make(chan struct{})}
}

// subscribe registers fn to run after every watermark advance (and once
// on stop, with the final watermark). Callbacks run on the capture
// goroutine (log mode) or inside the writer's commit (trigger mode) and
// must be fast and non-blocking.
func (p *progressTracker) subscribe(fn func(relalg.CSN)) {
	p.mu.Lock()
	p.subs = append(p.subs, fn)
	p.mu.Unlock()
}

func (p *progressTracker) notify(csn relalg.CSN, subs []func(relalg.CSN)) {
	for _, fn := range subs {
		fn(csn)
	}
}

func (p *progressTracker) set(csn relalg.CSN) {
	p.mu.Lock()
	advanced := csn > p.progress
	if advanced {
		p.progress = csn
		close(p.gen)
		p.gen = make(chan struct{})
	}
	subs := p.subs
	p.mu.Unlock()
	if advanced {
		p.notify(csn, subs)
	}
}

func (p *progressTracker) get() relalg.CSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.progress
}

func (p *progressTracker) stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	close(p.gen)
	p.gen = make(chan struct{})
	subs := p.subs
	final := p.progress
	p.mu.Unlock()
	p.notify(final, subs)
}

func (p *progressTracker) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

func (p *progressTracker) wait(csn relalg.CSN) error {
	return p.waitCtx(context.Background(), csn)
}

func (p *progressTracker) waitCtx(ctx context.Context, csn relalg.CSN) error {
	for {
		p.mu.Lock()
		if p.progress >= csn {
			p.mu.Unlock()
			return nil
		}
		if p.stopped {
			p.mu.Unlock()
			return ErrStopped
		}
		ch := p.gen
		p.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}
