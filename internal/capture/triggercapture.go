package capture

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/relalg"
)

// TriggerCapture implements the trigger-based capture alternative: it is an
// engine.TriggerSink whose OnCommit runs inside the writer's commit critical
// section, appending delta rows synchronously. This gives a perfectly
// up-to-date watermark but expands every writer's update footprint — the
// cost the paper calls out (and benchmark E7 measures).
//
// Unlike a naive per-statement trigger, the engine invokes the sink at
// commit time with the CSN already assigned, sidestepping the paper's
// observation that a statement-time trigger cannot know the serialization
// order; the price is that all capture work serializes on the commit mutex.
type TriggerCapture struct {
	db    *engine.DB
	uow   *UnitOfWork
	track *progressTracker

	rowsCaptured    atomic.Int64
	commitsCaptured atomic.Int64
}

// NewTriggerCapture creates the sink and installs it on the database.
func NewTriggerCapture(db *engine.DB) *TriggerCapture {
	c := &TriggerCapture{db: db, uow: NewUnitOfWork(), track: newProgressTracker()}
	db.SetTriggerSink(c)
	return c
}

// OnCommit implements engine.TriggerSink.
func (c *TriggerCapture) OnCommit(writes []engine.Write, csn relalg.CSN, wall time.Time) {
	for _, w := range writes {
		if !c.db.HasDelta(w.Table) {
			continue
		}
		d, err := c.db.Delta(w.Table)
		if err != nil {
			continue
		}
		d.Append(csn, w.Count, w.Row)
		c.rowsCaptured.Add(1)
	}
	c.uow.add(UOWEntry{CSN: csn, Wall: wall})
	c.commitsCaptured.Add(1)
	c.track.set(csn)
}

// Progress implements Source. Commits without writes do not pass through
// the sink, so the watermark also follows the transaction manager's last
// CSN: everything at or below it is captured because capture is synchronous.
func (c *TriggerCapture) Progress() relalg.CSN {
	last := c.db.TM().LastCSN()
	if p := c.track.get(); p > last {
		return p
	}
	return last
}

// WaitProgress implements Source. Trigger capture is synchronous, so this
// only waits for the CSN to be assigned at all. Read-only commits advance
// the CSN without passing through the sink, so the wait polls the combined
// watermark rather than blocking on sink notifications alone.
func (c *TriggerCapture) WaitProgress(csn relalg.CSN) error {
	return c.WaitProgressContext(context.Background(), csn)
}

// WaitProgressContext is WaitProgress with cancellation.
func (c *TriggerCapture) WaitProgressContext(ctx context.Context, csn relalg.CSN) error {
	for {
		if c.Progress() >= csn {
			return nil
		}
		if c.track.isStopped() {
			return ErrStopped
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// OnProgress registers fn to run after every captured commit — the
// event-driven wakeup hook for the maintenance scheduler. fn runs inside
// the writer's commit critical section and must not block.
func (c *TriggerCapture) OnProgress(fn func(relalg.CSN)) { c.track.subscribe(fn) }

// UOW returns the unit-of-work table.
func (c *TriggerCapture) UOW() *UnitOfWork { return c.uow }

// RowsCaptured returns the number of delta rows appended.
func (c *TriggerCapture) RowsCaptured() int64 { return c.rowsCaptured.Load() }

// CommitsCaptured returns the number of commits observed.
func (c *TriggerCapture) CommitsCaptured() int64 { return c.commitsCaptured.Load() }

// Stop uninstalls the sink and wakes waiters.
func (c *TriggerCapture) Stop() {
	c.db.SetTriggerSink(nil)
	c.track.stop()
}
