package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relalg"
)

var errNoWork = errors.New("no work")

// classifyNoWork treats errNoWork as Idle, everything else per default.
func classifyNoWork(err error) Outcome {
	switch {
	case err == nil:
		return Progress
	case errors.Is(err, errNoWork):
		return Idle
	default:
		return Fail
	}
}

// counterJob steps until its work counter drains, then reports Idle.
type counterJob struct {
	work atomic.Int64
	done atomic.Int64
}

func (c *counterJob) step() error {
	if c.work.Load() <= 0 {
		return errNoWork
	}
	c.work.Add(-1)
	c.done.Add(1)
	return nil
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestNotifyDrivesSteps(t *testing.T) {
	s := New(2)
	defer s.Close()
	c := &counterJob{}
	j := s.Register("count", c.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()

	// Starting performs an initial catch-up pass: no work yet → Idle.
	waitFor(t, func() bool { return !jobState2(j, stateRunnable, stateRunning) })

	c.work.Store(10)
	s.Notify(1)
	waitFor(t, func() bool { return c.done.Load() == 10 })
	if got := s.Stats().Notifies; got != 1 {
		t.Fatalf("notifies = %d, want 1", got)
	}
	if s.Stats().Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

// jobState2 reports whether j is in one of the given states.
func jobState2(j *Job, states ...jobState) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, st := range states {
		if j.state == st {
			return true
		}
	}
	return false
}

func TestIdleJobDoesNotSpin(t *testing.T) {
	s := New(1)
	defer s.Close()
	c := &counterJob{}
	j := s.Register("idle", c.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()
	waitFor(t, func() bool { return jobState2(j, stateIdle) })

	before := s.Stats().Steps
	time.Sleep(50 * time.Millisecond)
	if after := s.Stats().Steps; after != before {
		t.Fatalf("idle job stepped %d times without a notify", after-before)
	}
}

func TestStartStopIdempotentUnderChurn(t *testing.T) {
	s := New(4)
	defer s.Close()
	c := &counterJob{}
	c.work.Store(1 << 30)
	j := s.Register("churn", c.step, Options{Classify: classifyNoWork, WakeOnNotify: true})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if (i+k)%2 == 0 {
					j.Start()
				} else {
					if err := j.Stop(); err != nil {
						t.Errorf("Stop: %v", err)
					}
				}
				s.Notify(relalg.CSN(k))
			}
		}(i)
	}
	wg.Wait()

	// Stop must drain: after the final Stop no step may still be running.
	if err := j.Stop(); err != nil {
		t.Fatalf("final Stop: %v", err)
	}
	before := c.done.Load()
	time.Sleep(20 * time.Millisecond)
	if after := c.done.Load(); after != before {
		t.Fatalf("job stepped after Stop returned (%d → %d)", before, after)
	}
	if j.Running() {
		t.Fatal("job still running after Stop")
	}
}

func TestStopWithoutStart(t *testing.T) {
	s := New(1)
	defer s.Close()
	j := s.Register("never", func() error { return errNoWork }, Options{Classify: classifyNoWork})
	if err := j.Stop(); err != nil {
		t.Fatalf("Stop without Start: %v", err)
	}
	if j.Running() {
		t.Fatal("unstarted job reports running")
	}
}

func TestBackoffThenFailStop(t *testing.T) {
	boom := errors.New("boom")
	var attempts atomic.Int64
	s := New(1)
	defer s.Close()
	j := s.Register("fail", func() error {
		attempts.Add(1)
		return boom
	}, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()

	waitFor(t, func() bool { return !j.Running() })
	if err := j.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want %v", err, boom)
	}
	// maxRetries failures back off, the next fail-stops.
	if got := attempts.Load(); got != maxRetries+1 {
		t.Fatalf("attempts = %d, want %d", got, maxRetries+1)
	}
	if s.Stats().Backoffs != maxRetries {
		t.Fatalf("backoffs = %d, want %d", s.Stats().Backoffs, maxRetries)
	}
	// A failed job reports its error from Await and from Stop.
	if err := j.Await(context.Background(), func() bool { return false }); !errors.Is(err, boom) {
		t.Fatalf("Await on failed job = %v, want %v", err, boom)
	}
	if err := j.Stop(); !errors.Is(err, boom) {
		t.Fatalf("Stop on failed job = %v, want %v", err, boom)
	}
	// Start clears the error and retries.
	attempts.Store(0)
	j.Start()
	waitFor(t, func() bool { return attempts.Load() > 0 })
}

func TestTransientErrorRecovers(t *testing.T) {
	boom := errors.New("boom")
	var n atomic.Int64
	s := New(1)
	defer s.Close()
	j := s.Register("flaky", func() error {
		if n.Add(1) <= 3 {
			return boom // fails thrice, then succeeds once, then idles
		}
		if n.Load() == 4 {
			return nil
		}
		return errNoWork
	}, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()
	waitFor(t, func() bool { return n.Load() >= 5 })
	if !j.Running() {
		t.Fatalf("job fail-stopped on a recoverable error: %v", j.Err())
	}
}

func TestHaltStopsCleanly(t *testing.T) {
	halted := errors.New("source stopped")
	s := New(1)
	defer s.Close()
	j := s.Register("halt", func() error { return halted }, Options{
		Classify: func(err error) Outcome {
			if errors.Is(err, halted) {
				return Halt
			}
			return classifyNoWork(err)
		},
		WakeOnNotify: true,
	})
	j.Start()
	waitFor(t, func() bool { return !j.Running() })
	if err := j.Err(); err != nil {
		t.Fatalf("halt is clean, Err = %v", err)
	}
}

func TestCloseDrainsInFlightStep(t *testing.T) {
	release := make(chan struct{})
	var entered, finished atomic.Bool
	s := New(1)
	j := s.Register("slow", func() error {
		entered.Store(true)
		<-release
		finished.Store(true)
		return errNoWork
	}, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()
	waitFor(t, func() bool { return entered.Load() })

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a step was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the step finished")
	}
	if !finished.Load() {
		t.Fatal("in-flight step was not drained")
	}
}

func TestAwaitContextCancel(t *testing.T) {
	s := New(1)
	defer s.Close()
	j := s.Register("wait", func() error { return errNoWork }, Options{Classify: classifyNoWork})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := j.Await(ctx, func() bool { return false }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Await = %v, want deadline exceeded", err)
	}
}

func TestAwaitSeesProgress(t *testing.T) {
	s := New(2)
	defer s.Close()
	c := &counterJob{}
	j := s.Register("prog", c.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()

	done := make(chan error, 1)
	go func() { done <- j.Await(context.Background(), func() bool { return c.done.Load() >= 5 }) }()
	c.work.Store(5)
	s.Notify(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Await: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Await never observed progress")
	}
}

func TestAwaitErrClosedOnShutdown(t *testing.T) {
	s := New(1)
	j := s.Register("orphan", func() error { return errNoWork }, Options{Classify: classifyNoWork})
	done := make(chan error, 1)
	go func() { done <- j.Await(context.Background(), func() bool { return false }) }()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Await = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Await hung across Close")
	}
}

func TestBackpressureParksAndDemandBypasses(t *testing.T) {
	var hwm atomic.Int64     // producer watermark
	var backlog atomic.Int64 // unconsumed output
	s := New(1)
	defer s.Close()
	j := s.Register("bp", func() error {
		hwm.Add(1)
		backlog.Add(1)
		return nil
	}, Options{
		Classify:     classifyNoWork,
		WakeOnNotify: true,
		HWM:          func() relalg.CSN { return relalg.CSN(hwm.Load()) },
		Backlog: func(limit int) int {
			b := backlog.Load()
			if int64(limit) < b {
				return limit
			}
			return int(b)
		},
		MaxBacklog: 10,
	})
	j.Start()

	// The job produces until the backlog limit parks it.
	waitFor(t, func() bool { return jobState2(j, stateParked) })
	if got := backlog.Load(); got > 10+maxStepsPerQuantum {
		t.Fatalf("backlog overshot the limit: %d", got)
	}
	if s.Stats().Parks == 0 {
		t.Fatal("no park recorded")
	}
	parkedAt := hwm.Load()
	s.Notify(1) // notifications alone must not override backpressure
	time.Sleep(20 * time.Millisecond)
	if jobState2(j, stateRunning, stateRunnable) && hwm.Load() > parkedAt+maxStepsPerQuantum {
		t.Fatal("parked job kept producing without demand")
	}

	// A demanded target past the watermark overrides parking…
	target := hwm.Load() + 50
	j.Demand(relalg.CSN(target))
	waitFor(t, func() bool { return hwm.Load() >= target })

	// …and consuming the backlog un-parks it for good.
	waitFor(t, func() bool { return jobState2(j, stateParked) })
	backlog.Store(0)
	j.Kick()
	pre := hwm.Load()
	waitFor(t, func() bool { return hwm.Load() > pre })
}

func TestStepNowSerializesWithScheduledSteps(t *testing.T) {
	var inStep atomic.Int32
	var overlap atomic.Bool
	c := &counterJob{}
	c.work.Store(1 << 30)
	s := New(4)
	defer s.Close()
	step := func() error {
		if inStep.Add(1) > 1 {
			overlap.Store(true)
		}
		defer inStep.Add(-1)
		return c.step()
	}
	j := s.Register("serial", step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if err := j.StepNow(); err != nil && !errors.Is(err, errNoWork) {
					t.Errorf("StepNow: %v", err)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		s.Notify(relalg.CSN(i))
	}
	wg.Wait()
	if overlap.Load() {
		t.Fatal("two steps of the same job ran concurrently")
	}
}

func TestWorkerPoolFairness(t *testing.T) {
	// Two long-running jobs on one worker must interleave via quantum
	// yields rather than one starving the other.
	var a, b counterJob
	a.work.Store(1 << 30)
	b.work.Store(1 << 30)
	s := New(1)
	defer s.Close()
	ja := s.Register("a", a.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	jb := s.Register("b", b.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	ja.Start()
	jb.Start()
	s.Notify(1)
	waitFor(t, func() bool { return a.done.Load() > 1000 && b.done.Load() > 1000 })
}

func TestUnregisterStopsJob(t *testing.T) {
	s := New(1)
	defer s.Close()
	c := &counterJob{}
	c.work.Store(1 << 30)
	j := s.Register("gone", c.step, Options{Classify: classifyNoWork, WakeOnNotify: true})
	j.Start()
	s.Notify(1)
	waitFor(t, func() bool { return c.done.Load() > 0 })
	s.Unregister(j)
	if got := s.Stats().Jobs; got != 0 {
		t.Fatalf("jobs after unregister = %d", got)
	}
	before := c.done.Load()
	s.Notify(2)
	time.Sleep(20 * time.Millisecond)
	if after := c.done.Load(); after != before {
		t.Fatal("unregistered job still stepping")
	}
}
