// Package sched is the unified maintenance runtime: a single scheduler
// that owns every view's propagation and application work as jobs on a
// shared bounded worker pool, replacing the per-view goroutine loops.
//
// The paper (Section 5 / Figure 11) treats propagate and apply as
// independently scheduled activities over the shared time axis; this
// package supplies the scheduling. Jobs are woken event-driven — capture
// calls Notify once per committed transaction, so "work is ready" is a
// precise event rather than a polling guess — and each job is paced by
// its own step function (which consults the propagation interval policy)
// plus an optional backlog-based backpressure signal.
//
// A job is a state machine:
//
//	Stopped ─Start→ Idle ─Kick→ Runnable ─worker→ Running
//	  Running ─no work─→ Idle          (waits for the next Notify)
//	  Running ─backlog over limit─→ Parked (waits for apply progress)
//	  Running ─error─→ Backoff …→ Failed (capped exponential backoff,
//	                                      then fail-stop with Err set)
//
// The step function's error is classified into one of four outcomes so
// the scheduler can distinguish transient capture lag (Idle: wait for
// the next event) from a clean halt (capture stopped) and from genuine
// failures (retry with backoff, then fail-stop). Stop and Close drain:
// they return only after any in-flight step has finished.
package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relalg"
)

// Outcome classifies one step's result.
type Outcome int

// The step outcomes.
const (
	// Progress: the step did useful work; run again soon.
	Progress Outcome = iota
	// Idle: nothing to do until the next notification (transient
	// capture lag — not an error).
	Idle
	// Halt: the job's input source stopped cleanly; stop the job.
	Halt
	// Fail: a genuine error; retry with capped exponential backoff and
	// fail-stop after repeated failure.
	Fail
)

// ErrClosed is returned by Await when the scheduler shuts down while the
// awaited condition is still false.
var ErrClosed = errors.New("sched: scheduler closed")

// Scheduling parameters.
const (
	// maxStepsPerQuantum and quantum bound how long one job may occupy a
	// worker before yielding the queue to its peers.
	maxStepsPerQuantum = 32
	quantum            = 2 * time.Millisecond

	// backoffBase/backoffMax/maxRetries define the error policy: the
	// first retry waits backoffBase, doubling up to backoffMax, and the
	// job fail-stops after maxRetries consecutive failing steps.
	backoffBase = time.Millisecond
	backoffMax  = 128 * time.Millisecond
	maxRetries  = 8

	// backlogProbeLimit caps how far Stats walks each job's backlog.
	backlogProbeLimit = 1 << 20
)

// Options configures a job at registration.
type Options struct {
	// HWM reports the job's progress watermark (the view delta
	// high-water mark for propagation jobs). A parked job keeps running
	// while a Demand target lies past the watermark. May be nil.
	HWM func() relalg.CSN
	// Classify maps a step error to an Outcome. When nil, a nil error
	// is Progress and everything else Fail.
	Classify func(error) Outcome
	// Backlog reports pending downstream work (rows), counting at most
	// limit. Used with MaxBacklog for backpressure. May be nil.
	Backlog func(limit int) int
	// MaxBacklog parks the job while Backlog exceeds it (0 disables
	// backpressure).
	MaxBacklog int
	// OnProgress runs after every step that made progress (outside all
	// scheduler locks) — the hook that chains dependent jobs.
	OnProgress func()
	// WakeOnNotify kicks the job on every Scheduler.Notify (capture
	// progress). Propagation jobs set it; downstream jobs are chained
	// via OnProgress instead.
	WakeOnNotify bool
	// LowPriority routes the job to the background queue, served only when
	// no regular job is runnable. Storage-maintenance work (delta-prefix
	// folding, cold spill) runs here so it never delays propagation or
	// apply under load, yet uses the same workers when the system is quiet.
	LowPriority bool
}

// Stats is a snapshot of scheduler activity.
type Stats struct {
	Workers  int
	Jobs     int   // registered jobs
	Running  int   // jobs currently started
	Notifies int64 // capture notifications received
	Wakeups  int64 // job dispatches onto a worker
	Steps    int64 // step-function invocations
	Parks    int64 // backpressure parks
	Backoffs int64 // error backoffs
	Backlog  int64 // summed pending backlog rows across jobs
}

// Scheduler runs registered jobs on a bounded worker pool.
type Scheduler struct {
	workers int

	// auxSem bounds TrySpawn subtask goroutines at the pool size. Subtasks
	// deliberately do NOT go through the job queue: a job blocked waiting
	// for its own queued subtasks would deadlock the pool, whereas spawned
	// goroutines always run and the semaphore only sheds excess onto the
	// caller (which runs the work inline).
	auxSem chan struct{}
	auxWg  sync.WaitGroup

	mu     sync.Mutex
	qcond  *sync.Cond
	queue  []*Job
	lowq   []*Job // low-priority queue, served only when queue is empty
	jobs   map[*Job]struct{}
	closed bool
	wg     sync.WaitGroup

	// snapshot holds a copy of the job set ([]*Job) so Notify never
	// takes s.mu while kicking jobs (which takes per-job mutexes).
	snapshot atomic.Value

	lastCSN  atomic.Int64
	notifies atomic.Int64
	wakeups  atomic.Int64
	steps    atomic.Int64
	parks    atomic.Int64
	backoffs atomic.Int64
}

// New creates a scheduler with the given worker-pool size (minimum 1).
func New(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	s := &Scheduler{workers: workers, jobs: make(map[*Job]struct{}), auxSem: make(chan struct{}, workers)}
	s.qcond = sync.NewCond(&s.mu)
	s.snapshot.Store([]*Job(nil))
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Register adds a job in the Stopped state; call Start to schedule it.
func (s *Scheduler) Register(name string, step func() error, opt Options) *Job {
	j := &Job{name: name, s: s, step: step, opt: opt, gen: make(chan struct{})}
	s.mu.Lock()
	s.jobs[j] = struct{}{}
	s.refreshSnapshotLocked()
	s.mu.Unlock()
	return j
}

// Unregister stops a job (draining any in-flight step) and removes it.
func (s *Scheduler) Unregister(j *Job) {
	j.Stop()
	s.mu.Lock()
	delete(s.jobs, j)
	s.refreshSnapshotLocked()
	s.mu.Unlock()
}

func (s *Scheduler) refreshSnapshotLocked() {
	jobs := make([]*Job, 0, len(s.jobs))
	for j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.snapshot.Store(jobs)
}

func (s *Scheduler) jobsSnapshot() []*Job {
	jobs, _ := s.snapshot.Load().([]*Job)
	return jobs
}

// Notify reports capture progress: every commit at or below csn is fully
// reflected in the delta tables. It wakes all WakeOnNotify jobs.
func (s *Scheduler) Notify(csn relalg.CSN) {
	s.notifies.Add(1)
	for {
		cur := s.lastCSN.Load()
		if int64(csn) <= cur || s.lastCSN.CompareAndSwap(cur, int64(csn)) {
			break
		}
	}
	for _, j := range s.jobsSnapshot() {
		if j.opt.WakeOnNotify {
			j.Kick()
		}
	}
}

// TrySpawn offers fn to the scheduler's subtask pool: when a slot is free
// (at most workers subtasks in flight) fn runs on its own goroutine and
// TrySpawn returns true; otherwise it returns false without running fn and
// the caller executes it inline. This is the fan-out hook for partitioned
// propagation steps: a step running on a pool worker hands its per-slice
// jobs here and never blocks on a saturated pool.
func (s *Scheduler) TrySpawn(fn func()) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	select {
	case s.auxSem <- struct{}{}:
		s.auxWg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				<-s.auxSem
				s.auxWg.Done()
			}()
			fn()
		}()
		return true
	default:
		s.mu.Unlock()
		return false
	}
}

// LastNotified returns the highest CSN passed to Notify.
func (s *Scheduler) LastNotified() relalg.CSN {
	return relalg.CSN(s.lastCSN.Load())
}

// Stats returns a snapshot of scheduler counters.
func (s *Scheduler) Stats() Stats {
	jobs := s.jobsSnapshot()
	st := Stats{
		Workers:  s.workers,
		Jobs:     len(jobs),
		Notifies: s.notifies.Load(),
		Wakeups:  s.wakeups.Load(),
		Steps:    s.steps.Load(),
		Parks:    s.parks.Load(),
		Backoffs: s.backoffs.Load(),
	}
	for _, j := range jobs {
		if j.Running() {
			st.Running++
		}
		if j.opt.Backlog != nil {
			st.Backlog += int64(j.opt.Backlog(backlogProbeLimit))
		}
	}
	return st
}

// Close stops every job — draining in-flight steps — and shuts the
// worker pool down. It is idempotent; the scheduler cannot be reused.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.qcond.Broadcast()
	s.mu.Unlock()
	for _, j := range s.jobsSnapshot() {
		j.Stop()
		j.broadcast() // release Await-ers; they observe ErrClosed
	}
	s.wg.Wait()
	s.auxWg.Wait()
}

func (s *Scheduler) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Scheduler) enqueue(j *Job) {
	s.mu.Lock()
	if !s.closed {
		if j.opt.LowPriority {
			s.lowq = append(s.lowq, j)
		} else {
			s.queue = append(s.queue, j)
		}
		s.qcond.Signal()
	}
	s.mu.Unlock()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && len(s.lowq) == 0 && !s.closed {
			s.qcond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		// Strict priority: the background queue is consulted only when no
		// regular job is runnable. Low-priority jobs cannot starve the
		// foreground (they only occupy a worker for one quantum), and the
		// foreground can starve them by design — storage maintenance waits
		// for quiet.
		q := &s.queue
		if len(s.queue) == 0 {
			q = &s.lowq
		}
		j := (*q)[0]
		copy(*q, (*q)[1:])
		*q = (*q)[:len(*q)-1]
		s.mu.Unlock()
		s.runJob(j)
	}
}

// runJob executes one scheduling quantum of j: up to maxStepsPerQuantum
// steps or quantum wall time, then yields the worker so peers interleave.
func (s *Scheduler) runJob(j *Job) {
	j.mu.Lock()
	if j.state != stateRunnable {
		j.mu.Unlock()
		return
	}
	j.mu.Unlock()

	// runMu serializes step execution per job: the underlying Step
	// implementations are single-driver (and StepNow shares the same
	// exclusion), so at most one goroutine steps a job at a time.
	j.runMu.Lock()
	defer j.runMu.Unlock()

	j.mu.Lock()
	if j.state != stateRunnable {
		j.mu.Unlock()
		return
	}
	j.state = stateRunning
	j.wake = false
	j.mu.Unlock()
	s.wakeups.Add(1)

	deadline := time.Now().Add(quantum)
	for n := 0; ; n++ {
		if !j.continueRunning() {
			return
		}
		err := j.step()
		s.steps.Add(1)
		switch j.classify(err) {
		case Progress:
			j.noteProgress()
			if n+1 >= maxStepsPerQuantum || time.Now().After(deadline) {
				j.yield()
				return
			}
		case Idle:
			if !j.settleIdle() {
				return
			}
		case Halt:
			j.halt()
			return
		default: // Fail
			j.backoff(err)
			return
		}
	}
}

type jobState int

const (
	stateStopped jobState = iota
	stateIdle
	stateRunnable
	stateRunning
	stateBackoff
	stateParked
	stateFailed
)

// Job is one schedulable unit of maintenance work (a view's propagation,
// application, or summary refresh). All methods are safe for concurrent
// use; Start/Stop are idempotent.
type Job struct {
	name string
	s    *Scheduler
	step func() error
	opt  Options

	// runMu is held for the duration of every step (worker quanta and
	// StepNow), giving the single-driver exclusion Step implementations
	// require. Lock order: runMu before mu; never acquire runMu while
	// holding mu.
	runMu sync.Mutex

	mu      sync.Mutex
	state   jobState
	wake    bool       // a Kick arrived while Running
	demand  relalg.CSN // waiters need the watermark past this point
	err     error      // terminal error (stateFailed)
	retries int
	timer   *time.Timer   // pending backoff re-enqueue
	gen     chan struct{} // closed+replaced on progress / terminal change
}

// Name returns the job name (for diagnostics).
func (j *Job) Name() string { return j.name }

// Start schedules the job; it is a no-op if already started. Starting a
// Failed job clears the error and retries from scratch.
func (j *Job) Start() {
	j.mu.Lock()
	if j.state != stateStopped && j.state != stateFailed {
		j.mu.Unlock()
		return
	}
	j.state = stateIdle
	j.err = nil
	j.retries = 0
	j.mu.Unlock()
	j.Kick()
}

// Stop takes the job out of scheduling and drains any in-flight step
// before returning (the suspended state survives: Start resumes from the
// same position). It returns the terminal error if the job fail-stopped.
func (j *Job) Stop() error {
	j.mu.Lock()
	if j.state == stateStopped || j.state == stateFailed {
		err := j.err
		j.mu.Unlock()
		return err
	}
	j.state = stateStopped
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
	j.broadcastLocked()
	j.mu.Unlock()
	// Drain: an in-flight quantum observes stateStopped at its next
	// outcome settle; waiting on runMu guarantees it has returned.
	j.runMu.Lock()
	j.runMu.Unlock() //nolint:staticcheck // empty critical section = drain
	return nil
}

// Running reports whether the job is currently scheduled (started and
// not fail-stopped).
func (j *Job) Running() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state != stateStopped && j.state != stateFailed
}

// Err returns the terminal error of a fail-stopped job, if any.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Kick makes the job runnable: an Idle or Parked job is enqueued, a
// Running job is flagged to re-check for work before settling idle.
func (j *Job) Kick() {
	j.mu.Lock()
	switch j.state {
	case stateIdle, stateParked:
		j.state = stateRunnable
		j.mu.Unlock()
		j.s.enqueue(j)
		return
	case stateRunning:
		j.wake = true
	}
	j.mu.Unlock()
}

// Demand records that a waiter needs the job's watermark to reach csn;
// backpressure parking is bypassed until it does.
func (j *Job) Demand(csn relalg.CSN) {
	j.mu.Lock()
	if csn > j.demand {
		j.demand = csn
	}
	j.mu.Unlock()
	j.Kick()
}

// StepNow runs one step synchronously under the job's step exclusion —
// the manual-drive path (View.PropagateStep, CatchUp). It can be used
// whether or not the job is scheduled.
func (j *Job) StepNow() error {
	j.runMu.Lock()
	defer j.runMu.Unlock()
	err := j.step()
	j.s.steps.Add(1)
	if j.classify(err) == Progress {
		j.noteProgress()
	}
	return err
}

// Await blocks until cond() is true. It returns the job's terminal error
// if it fail-stops, ErrClosed if the scheduler shuts down, or the
// context error on cancellation. cond is evaluated without scheduler
// locks held and must be safe for concurrent use.
func (j *Job) Await(ctx context.Context, cond func() bool) error {
	for {
		if cond() {
			return nil
		}
		j.mu.Lock()
		if j.state == stateFailed {
			err := j.err
			j.mu.Unlock()
			return err
		}
		ch := j.gen
		j.mu.Unlock()
		// Re-check after capturing the generation channel: a broadcast
		// between the first check and the capture would otherwise be lost.
		if cond() {
			return nil
		}
		if j.s.isClosed() {
			return ErrClosed
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// classify applies the configured outcome mapping.
func (j *Job) classify(err error) Outcome {
	if j.opt.Classify != nil {
		return j.opt.Classify(err)
	}
	if err == nil {
		return Progress
	}
	return Fail
}

// continueRunning reports whether the quantum should execute another
// step: the job must still be Running and under its backlog limit. A
// job over the limit parks — unless a Demand target lies past its
// watermark, in which case waiters override backpressure.
func (j *Job) continueRunning() bool {
	over := false
	if j.opt.MaxBacklog > 0 && j.opt.Backlog != nil {
		over = j.opt.Backlog(j.opt.MaxBacklog+1) > j.opt.MaxBacklog
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateRunning {
		return false
	}
	if over {
		if j.opt.HWM != nil && j.demand > j.opt.HWM() {
			return true
		}
		j.state = stateParked
		j.s.parks.Add(1)
		return false
	}
	return true
}

func (j *Job) noteProgress() {
	j.mu.Lock()
	j.retries = 0
	j.broadcastLocked()
	j.mu.Unlock()
	if j.opt.OnProgress != nil {
		j.opt.OnProgress()
	}
}

// yield puts a still-running job back on the queue (end of quantum).
func (j *Job) yield() {
	j.mu.Lock()
	if j.state != stateRunning {
		j.mu.Unlock()
		return
	}
	j.state = stateRunnable
	j.mu.Unlock()
	j.s.enqueue(j)
}

// settleIdle transitions Running → Idle unless a Kick raced in while the
// job was stepping; it reports whether to keep stepping.
func (j *Job) settleIdle() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateRunning {
		return false
	}
	if j.wake {
		j.wake = false
		return true
	}
	j.state = stateIdle
	return false
}

// halt stops the job cleanly (capture shut down).
func (j *Job) halt() {
	j.mu.Lock()
	if j.state == stateRunning {
		j.state = stateStopped
	}
	j.broadcastLocked()
	j.mu.Unlock()
}

// backoff applies the error policy after a failing step: capped
// exponential delay, fail-stop after maxRetries consecutive failures.
func (j *Job) backoff(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateRunning {
		return
	}
	j.retries++
	if j.retries > maxRetries {
		j.state = stateFailed
		j.err = err
		j.broadcastLocked()
		return
	}
	d := backoffBase << (j.retries - 1)
	if d > backoffMax {
		d = backoffMax
	}
	j.state = stateBackoff
	j.s.backoffs.Add(1)
	j.timer = time.AfterFunc(d, func() {
		j.mu.Lock()
		if j.state != stateBackoff {
			j.mu.Unlock()
			return
		}
		j.state = stateRunnable
		j.timer = nil
		j.mu.Unlock()
		j.s.enqueue(j)
	})
}

func (j *Job) broadcast() {
	j.mu.Lock()
	j.broadcastLocked()
	j.mu.Unlock()
}

// broadcastLocked wakes every Await-er to re-check its condition.
// Caller holds mu.
func (j *Job) broadcastLocked() {
	close(j.gen)
	j.gen = make(chan struct{})
}
