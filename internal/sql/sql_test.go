package sql

import (
	"strings"
	"testing"

	rollingjoin "repro"
	"repro/internal/tuple"
)

// --- lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a.b, 'it''s', -42, 3.5 FROM t WHERE x >= 7 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "-42", ",", "3.5", "FROM", "t", "WHERE", "x", ">=", "7", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens: %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d: %q want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != tokKeyword || kinds[1] != tokIdent || kinds[5] != tokString || kinds[7] != tokNumber {
		t.Fatal("kinds")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := lex("a # b"); err == nil {
		t.Fatal("bad character should fail")
	}
	if _, err := lex("a ! b"); err == nil {
		t.Fatal("lone ! should fail")
	}
}

// --- parser ---

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE orders (id INT, item TEXT, price DOUBLE, ok BOOL, raw BYTES)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Name != "orders" || len(ct.Cols) != 5 {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[0].Type != tuple.KindInt || ct.Cols[1].Type != tuple.KindString ||
		ct.Cols[2].Type != tuple.KindFloat || ct.Cols[3].Type != tuple.KindBool ||
		ct.Cols[4].Type != tuple.KindBytes {
		t.Fatalf("types: %+v", ct.Cols)
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1, 'a', TRUE, NULL), (2, 'b', FALSE, 1.5)")
	if err != nil {
		t.Fatal(err)
	}
	in := st.(*Insert)
	if in.Table != "t" || len(in.Rows) != 2 || len(in.Rows[0]) != 4 {
		t.Fatalf("%+v", in)
	}
	if in.Rows[0][0].AsInt() != 1 || in.Rows[0][1].AsString() != "a" ||
		!in.Rows[0][2].AsBool() || !in.Rows[0][3].IsNull() {
		t.Fatal("row 0 literals")
	}
	if in.Rows[1][3].AsFloat() != 1.5 {
		t.Fatal("float literal")
	}
}

func TestParseDelete(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a = 1 AND t.b <> 'x' LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	d := st.(*Delete)
	if d.Table != "t" || len(d.Where) != 2 || d.Limit != 3 {
		t.Fatalf("%+v", d)
	}
	if d.Where[1].Qual != "t" || d.Where[1].Op != "<>" {
		t.Fatalf("%+v", d.Where[1])
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse(`SELECT o.id, price FROM orders o JOIN items i ON o.item = i.item AND o.x = i.y WHERE i.price < 10`)
	if err != nil {
		t.Fatal(err)
	}
	q := st.(*Select)
	if q.Star || len(q.Cols) != 2 || len(q.From) != 2 || len(q.Joins) != 2 || len(q.Where) != 1 {
		t.Fatalf("%+v", q)
	}
	if q.From[1].Alias != "i" || q.Joins[0].LeftQual != "o" {
		t.Fatal("aliases")
	}
	st2, err := Parse("SELECT * FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if !st2.(*Select).Star {
		t.Fatal("star")
	}
}

func TestParseCreateView(t *testing.T) {
	st, err := Parse(`CREATE MATERIALIZED VIEW v AS SELECT * FROM a JOIN b ON a.k = b.k WITH INTERVALS (8, 64), MANUAL`)
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "v" || len(cv.Intervals) != 2 || cv.Intervals[1] != 64 || !cv.Manual || cv.Stepwise {
		t.Fatalf("%+v", cv)
	}
	st2, err := Parse(`CREATE MATERIALIZED VIEW w AS SELECT * FROM a WITH INTERVAL 4, STEPWISE`)
	if err != nil {
		t.Fatal(err)
	}
	cv2 := st2.(*CreateView)
	if cv2.Interval != 4 || !cv2.Stepwise {
		t.Fatalf("%+v", cv2)
	}
}

func TestParseSummaryRefreshShow(t *testing.T) {
	st, err := Parse("CREATE SUMMARY s OF v GROUP BY item, region SUM (price, qty)")
	if err != nil {
		t.Fatal(err)
	}
	cs := st.(*CreateSummary)
	if cs.View != "v" || len(cs.GroupBy) != 2 || len(cs.Sums) != 2 {
		t.Fatalf("%+v", cs)
	}
	st2, err := Parse("REFRESH VIEW v TO COMMIT 42")
	if err != nil {
		t.Fatal(err)
	}
	r := st2.(*Refresh)
	if r.Name != "v" || r.Summary || r.ToCSN != 42 {
		t.Fatalf("%+v", r)
	}
	st3, err := Parse("REFRESH SUMMARY s")
	if err != nil {
		t.Fatal(err)
	}
	if !st3.(*Refresh).Summary || st3.(*Refresh).ToCSN != -1 {
		t.Fatal("summary refresh")
	}
	for _, q := range []string{"SHOW TABLES", "SHOW VIEWS", "SHOW STATS v"} {
		if _, err := Parse(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE",
		"CREATE",
		"CREATE TABLE t",
		"CREATE TABLE t (a BANANA)",
		"INSERT INTO t VALUES 1",
		"SELECT FROM t",
		"SELECT * FROM t JOIN",
		"DELETE t",
		"REFRESH v",
		"REFRESH VIEW v TO 42",
		"SHOW ME",
		"SELECT * FROM a WHERE x ~ 3",
		"SELECT * FROM a; garbage",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);; SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("%d statements", len(stmts))
	}
}

// --- executor ---

func newSession(t *testing.T) *Session {
	t.Helper()
	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return NewSession(db)
}

func mustExec(t *testing.T, s *Session, script string) []*Result {
	t.Helper()
	res, err := s.Exec(script)
	if err != nil {
		t.Fatalf("%s: %v", script, err)
	}
	return res
}

func TestEndToEndSQL(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE orders (id INT, item TEXT);
		CREATE TABLE items (item TEXT, price INT);
		INSERT INTO items VALUES ('ball', 5), ('bat', 20);
		CREATE MATERIALIZED VIEW order_prices AS
			SELECT o.id, i.price FROM orders o JOIN items i ON o.item = i.item
			WITH INTERVAL 4, MANUAL;
		INSERT INTO orders VALUES (1, 'ball'), (2, 'bat'), (3, 'ball');
	`)

	// Drive propagation manually and refresh.
	v, ok := s.DB.View("order_prices")
	if !ok {
		t.Fatal("view not registered")
	}
	last := s.DB.LastCSN()
	for v.HWM() < last {
		if err := v.PropagateStep(); err != nil && !strings.Contains(err.Error(), "no captured changes") {
			t.Fatal(err)
		}
	}
	mustExec(t, s, "REFRESH VIEW order_prices")

	res := mustExec(t, s, "SELECT * FROM order_prices")
	if len(res[0].Rows) != 3 {
		t.Fatalf("view rows: %+v", res[0].Rows)
	}
	res = mustExec(t, s, "SELECT id FROM order_prices WHERE price > 10")
	if len(res[0].Rows) != 1 || res[0].Rows[0][0] != "2" {
		t.Fatalf("filtered view read: %+v", res[0].Rows)
	}

	// Ad-hoc join (no view).
	res = mustExec(t, s, "SELECT o.id FROM orders o JOIN items i ON o.item = i.item WHERE i.price < 10")
	if len(res[0].Rows) != 2 {
		t.Fatalf("ad-hoc: %+v", res[0].Rows)
	}

	// Deletes flow through maintenance.
	mustExec(t, s, "DELETE FROM orders WHERE id = 1")
	last = s.DB.LastCSN()
	for v.HWM() < last {
		if err := v.PropagateStep(); err != nil && !strings.Contains(err.Error(), "no captured changes") {
			t.Fatal(err)
		}
	}
	mustExec(t, s, "REFRESH VIEW order_prices")
	res = mustExec(t, s, "SELECT * FROM order_prices")
	if len(res[0].Rows) != 2 {
		t.Fatalf("after delete: %+v", res[0].Rows)
	}

	// SHOW output sanity.
	res = mustExec(t, s, "SHOW TABLES; SHOW VIEWS; SHOW STATS order_prices")
	if len(res[0].Rows) != 2 || len(res[1].Rows) != 1 || len(res[2].Rows) == 0 {
		t.Fatalf("show: %+v", res)
	}
	if !strings.Contains(res[1].String(), "order_prices") {
		t.Fatal("render")
	}
}

func TestSQLSummary(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE orders (id INT, item TEXT);
		CREATE TABLE items (item TEXT, price INT);
		INSERT INTO items VALUES ('ball', 5), ('bat', 20);
		CREATE MATERIALIZED VIEW op AS
			SELECT o.id, o.item, i.price FROM orders o JOIN items i ON o.item = i.item
			WITH INTERVAL 2;
		CREATE SUMMARY rev OF op GROUP BY item SUM (price);
		INSERT INTO orders VALUES (1, 'ball'), (2, 'ball'), (3, 'bat');
	`)
	v, _ := s.DB.View("op")
	v.WaitForHWM(s.DB.LastCSN())
	mustExec(t, s, "REFRESH SUMMARY rev")
	sum := s.summaries["rev"].sum
	rows := sum.Rows()
	if len(rows) != 2 || rows[0].Count != 2 || rows[0].Sums[0] != 10 {
		t.Fatalf("summary rows: %+v", rows)
	}
	if _, err := s.Exec("CREATE SUMMARY rev OF op GROUP BY item"); err == nil {
		t.Fatal("duplicate summary should fail")
	}
	if _, err := s.Exec("REFRESH SUMMARY ghost"); err == nil {
		t.Fatal("missing summary should fail")
	}
}

func TestSQLErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE t (a INT, b INT)")
	bad := []string{
		"CREATE TABLE t (a INT)",              // duplicate
		"INSERT INTO ghost VALUES (1)",        // missing table
		"INSERT INTO t VALUES (1)",            // arity
		"DELETE FROM t WHERE ghost = 1",       // bad column
		"SELECT * FROM t JOIN t ON t.a = t.a", // self join (alias dup)
		"SELECT ghost FROM t",                 // unknown column
		"REFRESH VIEW ghost",                  // missing view
		"SHOW STATS ghost",                    // missing view
		"CREATE SUMMARY s OF ghost GROUP BY a",
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestSQLDropView(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE a (k INT);
		CREATE MATERIALIZED VIEW v AS SELECT * FROM a WITH INTERVAL 2;
	`)
	mustExec(t, s, "DROP VIEW v")
	if _, err := s.Exec("REFRESH VIEW v"); err == nil {
		t.Fatal("dropped view should be gone")
	}
	if _, err := s.Exec("DROP VIEW v"); err == nil {
		t.Fatal("double drop should fail")
	}
	if _, err := s.Exec("DROP VIEW"); err == nil {
		t.Fatal("missing name should fail to parse")
	}
	// The base table is unaffected.
	mustExec(t, s, "INSERT INTO a VALUES (1)")
}

func TestSQLAmbiguousAndCoercion(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE a (k INT, v FLOAT);
		CREATE TABLE b (k INT, w INT);
		INSERT INTO a VALUES (1, 2);    -- int literal coerced to float column
		INSERT INTO b VALUES (1, 10);
	`)
	if _, err := s.Exec("SELECT k FROM a JOIN b ON a.k = b.k"); err == nil {
		t.Fatal("ambiguous column should fail")
	}
	res := mustExec(t, s, "SELECT v FROM a JOIN b ON a.k = b.k")
	if len(res[0].Rows) != 1 || res[0].Rows[0][0] != "2" {
		t.Fatalf("coerced read: %+v", res[0].Rows)
	}
}
