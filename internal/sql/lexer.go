// Package sql implements a small SQL dialect over the rollingjoin library:
// CREATE TABLE, INSERT, DELETE, ad-hoc SELECT over select-project-join
// queries, CREATE MATERIALIZED VIEW with maintenance options, and REFRESH
// statements including point-in-time targets. cmd/rollsh wraps it in an
// interactive shell.
//
// The dialect exists because the paper's prototype lived inside a SQL
// database (DB2): defining views and driving refresh through statements is
// the natural interface for the system.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; idents as written; punct literal
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized by the dialect.
var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "MATERIALIZED": true, "VIEW": true,
	"AS": true, "SELECT": true, "FROM": true, "JOIN": true, "ON": true,
	"WHERE": true, "AND": true, "INSERT": true, "INTO": true, "VALUES": true,
	"DELETE": true, "LIMIT": true, "REFRESH": true, "TO": true, "SHOW": true,
	"TABLES": true, "VIEWS": true, "WITH": true, "INTERVAL": true,
	"INTERVALS": true, "DROP": true, "NULL": true, "TRUE": true, "FALSE": true,
	"INT": true, "BIGINT": true, "FLOAT": true, "DOUBLE": true, "TEXT": true,
	"STRING": true, "VARCHAR": true, "BOOL": true, "BOOLEAN": true,
	"BYTES": true, "BLOB": true, "STATS": true, "MANUAL": true, "STEPWISE": true,
	"SUMMARY": true, "OF": true, "GROUP": true, "BY": true, "SUM": true,
	"COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"COMMIT": true, "AT": true, "UNION": true,
}

// lexError reports a lexing failure with position context.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.pos, e.msg) }

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// Line comment.
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '-' && i+1 < n && isDigit(input[i+1])):
			start := i
			i++
			for i < n && (isDigit(input[i]) || input[i] == '.' || input[i] == 'e' ||
				input[i] == 'E' || (input[i] == '-' && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{start, "unterminated string literal"}
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case strings.ContainsRune("(),.;*", rune(c)):
			toks = append(toks, token{tokPunct, string(c), i})
			i++
		case c == '=':
			toks = append(toks, token{tokPunct, "=", i})
			i++
		case c == '<':
			if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{tokPunct, input[i : i+2], i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokPunct, ">", i})
				i++
			}
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokPunct, "!=", i})
				i += 2
			} else {
				return nil, &lexError{i, "unexpected '!'"}
			}
		default:
			return nil, &lexError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
