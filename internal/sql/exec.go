package sql

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	rollingjoin "repro"
	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Result is the outcome of executing one statement: either a rendered row
// set or a message.
type Result struct {
	Columns []string
	Rows    [][]string
	Message string
}

// String renders the result for the shell.
func (r *Result) String() string {
	if len(r.Columns) == 0 {
		return r.Message
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)", len(r.Rows))
	return b.String()
}

// Session executes statements against a rollingjoin database. It tracks
// summaries by name (the facade does not register them).
type Session struct {
	DB        *rollingjoin.DB
	summaries map[string]*sessionSummary
	unions    map[string]*rollingjoin.UnionView
}

type sessionSummary struct {
	sum  *rollingjoin.Summary
	view *rollingjoin.View
}

// NewSession creates a session.
func NewSession(db *rollingjoin.DB) *Session {
	return &Session{
		DB:        db,
		summaries: make(map[string]*sessionSummary),
		unions:    make(map[string]*rollingjoin.UnionView),
	}
}

// Exec parses and executes a semicolon-separated script, returning one
// result per statement. Execution stops at the first error.
func (s *Session) Exec(input string) ([]*Result, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, stmt := range stmts {
		r, err := s.execStmt(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func (s *Session) execStmt(stmt Statement) (*Result, error) {
	switch st := stmt.(type) {
	case *CreateTable:
		return s.createTable(st)
	case *Insert:
		return s.insert(st)
	case *Delete:
		return s.delete(st)
	case *Select:
		return s.selectStmt(st)
	case *CreateView:
		return s.createView(st)
	case *CreateSummary:
		return s.createSummary(st)
	case *Refresh:
		return s.refresh(st)
	case *DropView:
		if err := s.DB.DropView(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("view %s dropped", st.Name)}, nil
	case *Show:
		return s.show(st)
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", stmt)
	}
}

func (s *Session) createTable(st *CreateTable) (*Result, error) {
	cols := make([]rollingjoin.Column, len(st.Cols))
	for i, c := range st.Cols {
		cols[i] = rollingjoin.Col(c.Name, c.Type)
	}
	if err := s.DB.CreateTable(st.Name, cols...); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil
}

// coerce adapts a literal to the column kind where lossless (int → float).
func coerce(v tuple.Value, kind tuple.Kind) tuple.Value {
	if v.Kind() == tuple.KindInt && kind == tuple.KindFloat {
		return tuple.Float(float64(v.AsInt()))
	}
	return v
}

func (s *Session) insert(st *Insert) (*Result, error) {
	t, err := s.DB.Engine().Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	csn, err := s.DB.Update(func(tx *rollingjoin.Tx) error {
		for _, row := range st.Rows {
			if len(row) != schema.Arity() {
				return fmt.Errorf("sql: %d values for %d columns", len(row), schema.Arity())
			}
			vals := make([]rollingjoin.Value, len(row))
			for i, v := range row {
				vals[i] = coerce(v, schema.Columns[i].Kind)
			}
			if err := tx.Insert(st.Table, vals...); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("%d row(s) inserted at commit %d", len(st.Rows), csn)}, nil
}

func condsToFilters(table string, conds []Cond, schema []string) ([]rollingjoin.Filter, error) {
	var out []rollingjoin.Filter
	for _, c := range conds {
		if c.Qual != "" && c.Qual != table {
			return nil, fmt.Errorf("sql: condition references %q, expected %q", c.Qual, table)
		}
		op, err := cmpOp(c.Op)
		if err != nil {
			return nil, err
		}
		out = append(out, rollingjoin.Filter{Table: table, Column: c.Col, Op: op, Value: c.Val})
	}
	_ = schema
	return out, nil
}

func cmpOp(op string) (rollingjoin.CmpOp, error) {
	switch op {
	case "=":
		return rollingjoin.EQ, nil
	case "<>", "!=":
		return rollingjoin.NE, nil
	case "<":
		return rollingjoin.LT, nil
	case "<=":
		return rollingjoin.LE, nil
	case ">":
		return rollingjoin.GT, nil
	case ">=":
		return rollingjoin.GE, nil
	default:
		return 0, fmt.Errorf("sql: unknown operator %q", op)
	}
}

func (s *Session) delete(st *Delete) (*Result, error) {
	filters, err := condsToFilters(st.Table, st.Where, nil)
	if err != nil {
		return nil, err
	}
	var n int
	csn, err := s.DB.Update(func(tx *rollingjoin.Tx) error {
		var err error
		n, err = tx.DeleteMatching(st.Table, filters, st.Limit)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("%d row(s) deleted at commit %d", n, csn)}, nil
}

// toSpec lowers a parsed SELECT to a ViewSpec, resolving aliases to table
// names and unqualified columns by uniqueness across the FROM list.
func (s *Session) toSpec(name string, q *Select) (rollingjoin.ViewSpec, error) {
	spec := rollingjoin.ViewSpec{Name: name}
	alias := make(map[string]string, len(q.From))
	for _, ref := range q.From {
		if _, dup := alias[ref.Alias]; dup {
			return spec, fmt.Errorf("sql: duplicate alias %q", ref.Alias)
		}
		alias[ref.Alias] = ref.Table
		spec.Tables = append(spec.Tables, ref.Table)
	}
	resolveQual := func(qual, col string) (string, error) {
		if qual != "" {
			t, ok := alias[qual]
			if !ok {
				return "", fmt.Errorf("sql: unknown table or alias %q", qual)
			}
			return t, nil
		}
		// Unqualified: find the unique FROM relation having the column.
		// RelationSchema also resolves maintained views, so FROM <view>
		// cascades work.
		var found string
		for _, ref := range q.From {
			schema, err := core.RelationSchema(s.DB.Engine(), ref.Table)
			if err != nil {
				return "", err
			}
			if schema.Index(col) >= 0 {
				if found != "" {
					return "", fmt.Errorf("sql: column %q is ambiguous", col)
				}
				found = ref.Table
			}
		}
		if found == "" {
			return "", fmt.Errorf("sql: unknown column %q", col)
		}
		return found, nil
	}
	for _, j := range q.Joins {
		lt, err := resolveQual(j.LeftQual, j.LeftCol)
		if err != nil {
			return spec, err
		}
		rt, err := resolveQual(j.RightQual, j.RightCol)
		if err != nil {
			return spec, err
		}
		spec.Joins = append(spec.Joins, rollingjoin.Join{
			LeftTable: lt, LeftColumn: j.LeftCol, RightTable: rt, RightColumn: j.RightCol,
		})
	}
	for _, c := range q.Where {
		t, err := resolveQual(c.Qual, c.Col)
		if err != nil {
			return spec, err
		}
		op, err := cmpOp(c.Op)
		if err != nil {
			return spec, err
		}
		spec.Filters = append(spec.Filters, rollingjoin.Filter{Table: t, Column: c.Col, Op: op, Value: c.Val})
	}
	if !q.Star {
		for _, o := range q.Cols {
			t, err := resolveQual(o.Qual, o.Col)
			if err != nil {
				return spec, err
			}
			spec.Output = append(spec.Output, rollingjoin.OutCol{Table: t, Column: o.Col})
		}
	}
	return spec, nil
}

func (s *Session) selectStmt(q *Select) (*Result, error) {
	// SELECT with GROUP BY computes a one-shot aggregation.
	if len(q.Aggs) > 0 {
		return s.adhocAggregate(q)
	}
	// SELECT * FROM <view> reads materialized contents.
	if len(q.From) == 1 && len(q.Joins) == 0 {
		if v, ok := s.DB.View(q.From[0].Table); ok {
			return s.selectFromRelation(v.Relation(), v.Name(), q)
		}
		if uv, ok := s.unions[q.From[0].Table]; ok {
			return s.selectFromRelation(uv.Relation(), uv.Name(), q)
		}
		if av, ok := s.DB.Aggregate(q.From[0].Table); ok {
			return s.selectFromRelation(av.Relation(), av.Name(), q)
		}
	}
	spec, err := s.toSpec("adhoc", q)
	if err != nil {
		return nil, err
	}
	res, err := s.DB.Query(spec)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: res.Columns}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, renderTuple(row))
	}
	return out, nil
}

func (s *Session) selectFromRelation(rel *relalg.Relation, viewName string, q *Select) (*Result, error) {
	schema := rel.Schema
	// Optional projection and filters against the view's output schema.
	var outIdx []int
	var cols []string
	if q.Star {
		for i, c := range schema.Columns {
			outIdx = append(outIdx, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, o := range q.Cols {
			c := schema.Index(o.Col)
			if c < 0 {
				return nil, fmt.Errorf("sql: view %q has no output column %q", viewName, o.Col)
			}
			outIdx = append(outIdx, c)
			cols = append(cols, o.Col)
		}
	}
	var pred relalg.And
	for _, c := range q.Where {
		ci := schema.Index(c.Col)
		if ci < 0 {
			return nil, fmt.Errorf("sql: view %q has no output column %q", viewName, c.Col)
		}
		op, err := cmpOp(c.Op)
		if err != nil {
			return nil, err
		}
		pred = append(pred, relalg.ColConst{Col: ci, Op: op, Val: c.Val})
	}
	out := &Result{Columns: cols}
	for _, row := range rel.Rows {
		if len(pred) > 0 && !pred.Eval(row.Tuple) {
			continue
		}
		for i := int64(0); i < row.Count; i++ {
			out.Rows = append(out.Rows, renderTuple(row.Tuple.Project(outIdx)))
		}
	}
	return out, nil
}

// aggFunc maps a parsed aggregate keyword to the library's function id.
func aggFunc(name string) (rollingjoin.AggFunc, error) {
	switch name {
	case "COUNT":
		return rollingjoin.AggCount, nil
	case "SUM":
		return rollingjoin.AggSum, nil
	case "AVG":
		return rollingjoin.AggAvg, nil
	case "MIN":
		return rollingjoin.AggMin, nil
	case "MAX":
		return rollingjoin.AggMax, nil
	default:
		return 0, fmt.Errorf("sql: unknown aggregate %q", name)
	}
}

// aggOutName is the output column name for an aggregate item, matching
// DefineAggregate's defaults.
func aggOutName(a AggRef) string {
	if a.As != "" {
		return a.As
	}
	if a.Func == "COUNT" {
		return "count"
	}
	return strings.ToLower(a.Func) + "_" + a.Col
}

// checkAggShape validates the single-relation shape shared by maintained
// aggregate views and one-shot GROUP BY selects, and verifies qualifiers.
func checkAggShape(q *Select) error {
	if len(q.From) != 1 || len(q.Joins) > 0 {
		return errors.New("sql: GROUP BY reads exactly one relation; define a join view first and aggregate over it")
	}
	src := q.From[0]
	check := func(qual string) error {
		if qual != "" && qual != src.Alias && qual != src.Table {
			return fmt.Errorf("sql: unknown table or alias %q", qual)
		}
		return nil
	}
	for _, g := range q.GroupBy {
		if err := check(g.Qual); err != nil {
			return err
		}
	}
	for _, a := range q.Aggs {
		if err := check(a.Qual); err != nil {
			return err
		}
	}
	for _, c := range q.Where {
		if err := check(c.Qual); err != nil {
			return err
		}
	}
	return nil
}

// adhocAggregate evaluates a one-shot SELECT ... GROUP BY by folding the
// source rows (a base table or any maintained relation) in the session.
// WHERE conditions filter source rows before grouping.
func (s *Session) adhocAggregate(q *Select) (*Result, error) {
	if err := checkAggShape(q); err != nil {
		return nil, err
	}
	src := q.From[0].Table
	schema, err := core.RelationSchema(s.DB.Engine(), src)
	if err != nil {
		return nil, err
	}
	colIdx := func(name string) (int, error) {
		c := schema.Index(name)
		if c < 0 {
			return -1, fmt.Errorf("sql: no column %q in relation %q", name, src)
		}
		return c, nil
	}
	groupIdx := make([]int, len(q.GroupBy))
	for i, g := range q.GroupBy {
		if groupIdx[i], err = colIdx(g.Col); err != nil {
			return nil, err
		}
	}
	aggIdx := make([]int, len(q.Aggs))
	for i, a := range q.Aggs {
		aggIdx[i] = -1
		if a.Func != "COUNT" {
			if aggIdx[i], err = colIdx(a.Col); err != nil {
				return nil, err
			}
		}
	}
	// Source rows at a consistent recent state: the current committed state
	// for a base table, the propagation high-water mark for a maintained
	// relation.
	spec := rollingjoin.ViewSpec{Tables: []string{src}}
	for _, c := range q.Where {
		op, err := cmpOp(c.Op)
		if err != nil {
			return nil, err
		}
		spec.Filters = append(spec.Filters, rollingjoin.Filter{Table: src, Column: c.Col, Op: op, Value: c.Val})
	}
	res, err := s.DB.Query(spec)
	if err != nil {
		return nil, err
	}
	type group struct {
		key     tuple.Tuple
		count   int64
		sums    []float64
		extrema []tuple.Value // current MIN/MAX per agg position
	}
	groups := make(map[string]*group)
	for _, row := range res.Rows {
		key := make(tuple.Tuple, len(groupIdx))
		var enc []byte
		for i, c := range groupIdx {
			key[i] = row[c]
			enc = tuple.EncodeKeyValue(enc, row[c])
		}
		g := groups[string(enc)]
		if g == nil {
			g = &group{key: key, sums: make([]float64, len(q.Aggs)), extrema: make([]tuple.Value, len(q.Aggs))}
			groups[string(enc)] = g
		}
		g.count++
		for i, a := range q.Aggs {
			switch a.Func {
			case "SUM", "AVG":
				g.sums[i] += row[aggIdx[i]].AsFloat()
			case "MIN", "MAX":
				v := row[aggIdx[i]]
				if g.extrema[i].Kind() == tuple.KindNull {
					g.extrema[i] = v
					continue
				}
				have := tuple.EncodeKeyValue(nil, g.extrema[i])
				cand := tuple.EncodeKeyValue(nil, v)
				if (a.Func == "MIN") == (string(cand) < string(have)) {
					g.extrema[i] = v
				}
			}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &Result{}
	for _, g := range q.GroupBy {
		out.Columns = append(out.Columns, g.Col)
	}
	for _, a := range q.Aggs {
		out.Columns = append(out.Columns, aggOutName(a))
	}
	for _, k := range keys {
		g := groups[k]
		row := make(tuple.Tuple, 0, len(out.Columns))
		row = append(row, g.key...)
		for i, a := range q.Aggs {
			switch a.Func {
			case "COUNT":
				row = append(row, tuple.Int(g.count))
			case "SUM":
				row = append(row, tuple.Float(g.sums[i]))
			case "AVG":
				row = append(row, tuple.Float(g.sums[i]/float64(g.count)))
			default:
				row = append(row, g.extrema[i])
			}
		}
		out.Rows = append(out.Rows, renderTuple(row))
	}
	return out, nil
}

func renderTuple(t tuple.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = v.String()
	}
	return out
}

func (s *Session) createView(st *CreateView) (*Result, error) {
	opt := rollingjoin.Maintain{Manual: st.Manual}
	if st.Interval > 0 {
		opt.Interval = rollingjoin.CSN(st.Interval)
	}
	for _, d := range st.Intervals {
		opt.Intervals = append(opt.Intervals, rollingjoin.CSN(d))
	}
	if st.Stepwise {
		opt.Algorithm = rollingjoin.AlgorithmStepwise
	}
	if len(st.Branches) == 1 {
		if q := st.Branches[0]; len(q.Aggs) > 0 {
			return s.createAggregate(st, q, opt)
		}
		spec, err := s.toSpec(st.Name, st.Branches[0])
		if err != nil {
			return nil, err
		}
		if _, err := s.DB.DefineView(spec, opt); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("materialized view %s created", st.Name)}, nil
	}
	// UNION of several branches: a union view.
	for _, b := range st.Branches {
		if len(b.Aggs) > 0 {
			return nil, errors.New("sql: UNION branches cannot contain GROUP BY; aggregate over the union view instead")
		}
	}
	if st.Stepwise {
		return nil, errors.New("sql: union views use the rolling algorithm (drop STEPWISE)")
	}
	if _, dup := s.unions[st.Name]; dup {
		return nil, fmt.Errorf("sql: union view %q already exists", st.Name)
	}
	specs := make([]rollingjoin.ViewSpec, len(st.Branches))
	for i, b := range st.Branches {
		spec, err := s.toSpec(fmt.Sprintf("%s#%d", st.Name, i+1), b)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	uv, err := s.DB.DefineUnionView(st.Name, specs, opt)
	if err != nil {
		return nil, err
	}
	s.unions[st.Name] = uv
	return &Result{Message: fmt.Sprintf("materialized union view %s created (%d branches)", st.Name, len(st.Branches))}, nil
}

// createAggregate lowers CREATE MATERIALIZED VIEW ... GROUP BY to a
// first-class maintained aggregate. The source may be a base table or any
// maintained relation (a view, union view, or another aggregate), so
// cascades are expressible purely in SQL.
func (s *Session) createAggregate(st *CreateView, q *Select, opt rollingjoin.Maintain) (*Result, error) {
	if err := checkAggShape(q); err != nil {
		return nil, err
	}
	if len(q.Where) > 0 {
		return nil, errors.New("sql: WHERE is not supported in an aggregate view; define a filtered view first and aggregate over it")
	}
	if st.Stepwise {
		return nil, errors.New("sql: aggregates use group-level compensation (drop STEPWISE)")
	}
	src := q.From[0].Table
	spec := rollingjoin.AggSpec{Name: st.Name, Source: src}
	for _, g := range q.GroupBy {
		spec.GroupBy = append(spec.GroupBy, g.Col)
	}
	for _, a := range q.Aggs {
		fn, err := aggFunc(a.Func)
		if err != nil {
			return nil, err
		}
		spec.Aggs = append(spec.Aggs, rollingjoin.Agg{Func: fn, Column: a.Col, As: a.As})
	}
	if _, err := s.DB.DefineAggregate(spec, opt); err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("materialized aggregate %s created over %s", st.Name, src)}, nil
}

func (s *Session) createSummary(st *CreateSummary) (*Result, error) {
	v, ok := s.DB.View(st.View)
	if !ok {
		return nil, fmt.Errorf("sql: no view %q", st.View)
	}
	if _, dup := s.summaries[st.Name]; dup {
		return nil, fmt.Errorf("sql: summary %q already exists", st.Name)
	}
	sum, err := v.DefineSummary(st.Name, st.GroupBy, st.Sums)
	if err != nil {
		return nil, err
	}
	s.summaries[st.Name] = &sessionSummary{sum: sum, view: v}
	return &Result{Message: fmt.Sprintf("summary %s created over view %s", st.Name, st.View)}, nil
}

func (s *Session) refresh(st *Refresh) (*Result, error) {
	if st.Summary {
		ss, ok := s.summaries[st.Name]
		if !ok {
			return nil, fmt.Errorf("sql: no summary %q", st.Name)
		}
		if st.ToCSN >= 0 {
			if err := ss.view.CatchUp(rollingjoin.CSN(st.ToCSN)); err != nil {
				return nil, err
			}
			if err := ss.sum.RefreshTo(rollingjoin.CSN(st.ToCSN)); err != nil {
				return nil, err
			}
			return &Result{Message: fmt.Sprintf("summary %s refreshed to commit %d", st.Name, st.ToCSN)}, nil
		}
		// "Refresh to now": catch propagation up to the current commit first.
		if err := ss.view.CatchUp(s.DB.LastCSN()); err != nil {
			return nil, err
		}
		csn, err := ss.sum.Refresh()
		if err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("summary %s refreshed to commit %d", st.Name, csn)}, nil
	}
	type refreshable interface {
		CatchUp(rollingjoin.CSN) error
		RefreshTo(rollingjoin.CSN) error
		Refresh() (rollingjoin.CSN, error)
	}
	var v refreshable
	if pv, ok := s.DB.View(st.Name); ok {
		v = pv
	} else if uv, ok := s.unions[st.Name]; ok {
		v = uv
	} else if av, ok := s.DB.Aggregate(st.Name); ok {
		v = av
	} else {
		return nil, fmt.Errorf("sql: no view %q", st.Name)
	}
	if st.ToCSN >= 0 {
		if err := v.CatchUp(rollingjoin.CSN(st.ToCSN)); err != nil {
			return nil, err
		}
		if err := v.RefreshTo(rollingjoin.CSN(st.ToCSN)); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("view %s refreshed to commit %d", st.Name, st.ToCSN)}, nil
	}
	if err := v.CatchUp(s.DB.LastCSN()); err != nil {
		return nil, err
	}
	csn, err := v.Refresh()
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("view %s refreshed to commit %d", st.Name, csn)}, nil
}

func (s *Session) show(st *Show) (*Result, error) {
	switch st.What {
	case "TABLES":
		out := &Result{Columns: []string{"table", "columns"}}
		for _, name := range s.DB.TableNames() {
			if strings.HasPrefix(name, "__") {
				continue // internal tables
			}
			t, err := s.DB.Engine().Table(name)
			if err != nil {
				return nil, err
			}
			var cols []string
			for _, c := range t.Schema().Columns {
				cols = append(cols, c.Name+" "+c.Kind.String())
			}
			out.Rows = append(out.Rows, []string{name, strings.Join(cols, ", ")})
		}
		return out, nil
	case "VIEWS":
		out := &Result{Columns: []string{"view", "mat_time", "hwm"}}
		for _, name := range s.DB.ViewNames() {
			v, _ := s.DB.View(name)
			out.Rows = append(out.Rows, []string{
				name, fmt.Sprint(v.MatTime()), fmt.Sprint(v.HWM()),
			})
		}
		unames := make([]string, 0, len(s.unions))
		for n := range s.unions {
			unames = append(unames, n)
		}
		sort.Strings(unames)
		for _, name := range unames {
			uv := s.unions[name]
			out.Rows = append(out.Rows, []string{
				name + " (union)", fmt.Sprint(uv.MatTime()), fmt.Sprint(uv.HWM()),
			})
		}
		for _, name := range s.DB.AggregateNames() {
			av, _ := s.DB.Aggregate(name)
			out.Rows = append(out.Rows, []string{
				name + " (aggregate)", fmt.Sprint(av.MatTime()), fmt.Sprint(av.HWM()),
			})
		}
		return out, nil
	case "STATS":
		if av, ok := s.DB.Aggregate(st.Name); ok {
			as := av.Stats()
			out := &Result{Columns: []string{"metric", "value"}}
			add := func(k string, val interface{}) {
				out.Rows = append(out.Rows, []string{k, fmt.Sprint(val)})
			}
			add("groups", as.GroupCount)
			add("steps run", as.StepsRun)
			add("source rows folded", as.SourceRowsFolded)
			add("delta rows produced", as.DeltaRowsProduced)
			add("delta rows pending", as.DeltaRowsPending)
			add("rows applied", as.RowsApplied)
			add("refreshes", as.Refreshes)
			add("high-water mark", as.HWM)
			add("materialization time", as.MatTime)
			return out, nil
		}
		v, ok := s.DB.View(st.Name)
		if !ok {
			return nil, fmt.Errorf("sql: no view %q", st.Name)
		}
		vs := v.Stats()
		out := &Result{Columns: []string{"metric", "value"}}
		add := func(k string, val interface{}) {
			out.Rows = append(out.Rows, []string{k, fmt.Sprint(val)})
		}
		add("forward queries", vs.ForwardQueries)
		add("compensation queries", vs.CompensationQueries)
		add("skipped empty windows", vs.SkippedEmptyWindows)
		add("delta rows produced", vs.DeltaRowsProduced)
		add("delta rows pending", vs.DeltaRowsPending)
		add("rows applied", vs.RowsApplied)
		add("refreshes", vs.Refreshes)
		add("high-water mark", vs.HWM)
		add("materialization time", vs.MatTime)
		return out, nil
	default:
		return nil, errors.New("sql: unknown SHOW target")
	}
}
