package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tuple"
)

// ParseError reports a parse failure.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("sql: at offset %d: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token
	i    int
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(input string) ([]Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for {
		for p.peek().kind == tokPunct && p.peek().text == ";" {
			p.next()
		}
		if p.peek().kind == tokEOF {
			return stmts, nil
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if p.peek().kind != tokEOF {
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tokPunct && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) (token, error) {
	if p.peek().kind == tokPunct && p.peek().text == s {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %s", s, p.peek())
}

// ident accepts an identifier (keywords are not identifiers).
func (p *parser) ident() (string, error) {
	if p.peek().kind == tokIdent {
		return p.next().text, nil
	}
	return "", p.errf("expected identifier, found %s", p.peek())
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		switch {
		case p.acceptKeyword("TABLE"):
			return p.createTable()
		case p.acceptKeyword("MATERIALIZED"):
			if err := p.expectKeyword("VIEW"); err != nil {
				return nil, err
			}
			return p.createView()
		case p.acceptKeyword("SUMMARY"):
			return p.createSummary()
		default:
			return nil, p.errf("expected TABLE, MATERIALIZED VIEW, or SUMMARY after CREATE")
		}
	case p.acceptKeyword("INSERT"):
		return p.insert()
	case p.acceptKeyword("DELETE"):
		return p.delete()
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("REFRESH"):
		return p.refresh()
	case p.acceptKeyword("DROP"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropView{Name: name}, nil
	case p.acceptKeyword("SHOW"):
		return p.show()
	default:
		return nil, p.errf("expected a statement, found %s", p.peek())
	}
}

func parseType(word string) (tuple.Kind, bool) {
	switch word {
	case "INT", "BIGINT":
		return tuple.KindInt, true
	case "FLOAT", "DOUBLE":
		return tuple.KindFloat, true
	case "TEXT", "STRING", "VARCHAR":
		return tuple.KindString, true
	case "BOOL", "BOOLEAN":
		return tuple.KindBool, true
	case "BYTES", "BLOB":
		return tuple.KindBytes, true
	}
	return 0, false
}

func (p *parser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ColDef
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.next()
		if t.kind != tokKeyword {
			return nil, p.errf("expected a type for column %q", col)
		}
		kind, ok := parseType(t.text)
		if !ok {
			return nil, p.errf("unknown type %s", t.text)
		}
		cols = append(cols, ColDef{Name: col, Type: kind})
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if _, err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &CreateTable{Name: name, Cols: cols}, nil
}

// literal parses a literal value.
func (p *parser) literal() (tuple.Value, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return tuple.Value{}, p.errf("bad number %q", t.text)
			}
			return tuple.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return tuple.Value{}, p.errf("bad integer %q", t.text)
		}
		return tuple.Int(n), nil
	case t.kind == tokString:
		p.next()
		return tuple.String_(t.text), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return tuple.Null(), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return tuple.Bool(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return tuple.Bool(false), nil
	default:
		return tuple.Value{}, p.errf("expected a literal, found %s", t)
	}
}

func (p *parser) insert() (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]tuple.Value
	for {
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []tuple.Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return &Insert{Table: name, Rows: rows}, nil
}

// qualified parses ident[.ident], returning (qual, col).
func (p *parser) qualified() (string, string, error) {
	a, err := p.ident()
	if err != nil {
		return "", "", err
	}
	if p.acceptPunct(".") {
		b, err := p.ident()
		if err != nil {
			return "", "", err
		}
		return a, b, nil
	}
	return "", a, nil
}

var cmpOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) whereConds() ([]Cond, error) {
	var conds []Cond
	for {
		qual, col, err := p.qualified()
		if err != nil {
			return nil, err
		}
		op := p.peek()
		if op.kind != tokPunct || !cmpOps[op.text] {
			return nil, p.errf("expected a comparison operator, found %s", op)
		}
		p.next()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Qual: qual, Col: col, Op: op.text, Val: v})
		if p.acceptKeyword("AND") {
			continue
		}
		return conds, nil
	}
}

func (p *parser) delete() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.acceptKeyword("WHERE") {
		conds, err := p.whereConds()
		if err != nil {
			return nil, err
		}
		d.Where = conds
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected a number after LIMIT")
		}
		p.next()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		d.Limit = n
	}
	return d, nil
}

// aggFuncs are the aggregate functions accepted in a SELECT list.
var aggFuncs = map[string]bool{"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true}

// aggRef parses FUNC(*) / FUNC(col) [AS ident]; the function keyword has
// already been consumed.
func (p *parser) aggRef(fn string) (AggRef, error) {
	a := AggRef{Func: fn}
	if _, err := p.expectPunct("("); err != nil {
		return a, err
	}
	if fn == "COUNT" {
		if _, err := p.expectPunct("*"); err != nil {
			return a, p.errf("COUNT takes *, found %s", p.peek())
		}
	} else {
		if p.acceptPunct("*") {
			return a, p.errf("%s takes a column, not *", fn)
		}
		qual, col, err := p.qualified()
		if err != nil {
			return a, err
		}
		a.Qual, a.Col = qual, col
	}
	if _, err := p.expectPunct(")"); err != nil {
		return a, err
	}
	if p.acceptKeyword("AS") {
		as, err := p.ident()
		if err != nil {
			return a, err
		}
		a.As = as
	}
	return a, nil
}

func (p *parser) selectStmt() (*Select, error) {
	s := &Select{}
	if p.acceptPunct("*") {
		s.Star = true
	} else {
		for {
			if t := p.peek(); t.kind == tokKeyword && aggFuncs[t.text] {
				a, err := p.aggRef(p.next().text)
				if err != nil {
					return nil, err
				}
				s.Aggs = append(s.Aggs, a)
			} else {
				qual, col, err := p.qualified()
				if err != nil {
					return nil, err
				}
				s.Cols = append(s.Cols, OutRef{Qual: qual, Col: col})
			}
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	ref, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, ref)
	for p.acceptKeyword("JOIN") {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, ref)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		for {
			lq, lc, err := p.qualified()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			rq, rc, err := p.qualified()
			if err != nil {
				return nil, err
			}
			s.Joins = append(s.Joins, JoinCond{LeftQual: lq, LeftCol: lc, RightQual: rq, RightCol: rc})
			if p.acceptKeyword("AND") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		conds, err := p.whereConds()
		if err != nil {
			return nil, err
		}
		s.Where = conds
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			qual, col, err := p.qualified()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, OutRef{Qual: qual, Col: col})
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	// Shape checks: aggregates and GROUP BY come together, and the
	// non-aggregated select columns must be exactly the grouping columns.
	switch {
	case len(s.Aggs) > 0 && len(s.GroupBy) == 0:
		return nil, p.errf("aggregate SELECT requires GROUP BY")
	case len(s.GroupBy) > 0 && len(s.Aggs) == 0:
		return nil, p.errf("GROUP BY requires an aggregate in the SELECT list")
	case len(s.GroupBy) > 0 && s.Star:
		return nil, p.errf("SELECT * cannot be combined with GROUP BY")
	case len(s.GroupBy) > 0 && len(s.Cols) != len(s.GroupBy):
		return nil, p.errf("SELECT columns must match the GROUP BY columns")
	}
	for i, g := range s.GroupBy {
		if c := s.Cols[i]; c.Col != g.Col || c.Qual != g.Qual {
			return nil, p.errf("SELECT column %q does not match GROUP BY column %q", c.Col, g.Col)
		}
	}
	return s, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name, Alias: name}
	if p.peek().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) createView() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	cv := &CreateView{Name: name, Branches: []*Select{q}}
	for p.acceptKeyword("UNION") {
		if err := p.expectKeyword("SELECT"); err != nil {
			return nil, err
		}
		b, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		cv.Branches = append(cv.Branches, b)
	}
	if p.acceptKeyword("WITH") {
		for {
			switch {
			case p.acceptKeyword("INTERVAL"):
				n, err := p.number()
				if err != nil {
					return nil, err
				}
				cv.Interval = n
			case p.acceptKeyword("INTERVALS"):
				if _, err := p.expectPunct("("); err != nil {
					return nil, err
				}
				for {
					n, err := p.number()
					if err != nil {
						return nil, err
					}
					cv.Intervals = append(cv.Intervals, n)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
				if _, err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			case p.acceptKeyword("MANUAL"):
				cv.Manual = true
			case p.acceptKeyword("STEPWISE"):
				cv.Stepwise = true
			default:
				return nil, p.errf("expected a view option (INTERVAL, INTERVALS, MANUAL, STEPWISE)")
			}
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	return cv, nil
}

func (p *parser) number() (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errf("expected a number, found %s", t)
	}
	p.next()
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.text)
	}
	return n, nil
}

func (p *parser) createSummary() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("OF"); err != nil {
		return nil, err
	}
	view, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("GROUP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	cs := &CreateSummary{Name: name, View: view}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cs.GroupBy = append(cs.GroupBy, col)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if p.acceptKeyword("SUM") {
		if _, err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			cs.Sums = append(cs.Sums, col)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

func (p *parser) refresh() (Statement, error) {
	r := &Refresh{ToCSN: -1}
	switch {
	case p.acceptKeyword("VIEW"):
	case p.acceptKeyword("SUMMARY"):
		r.Summary = true
	default:
		return nil, p.errf("expected VIEW or SUMMARY after REFRESH")
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	r.Name = name
	if p.acceptKeyword("TO") {
		if err := p.expectKeyword("COMMIT"); err != nil {
			return nil, err
		}
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		r.ToCSN = n
	}
	return r, nil
}

func (p *parser) show() (Statement, error) {
	switch {
	case p.acceptKeyword("TABLES"):
		return &Show{What: "TABLES"}, nil
	case p.acceptKeyword("VIEWS"):
		return &Show{What: "VIEWS"}, nil
	case p.acceptKeyword("STATS"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Show{What: "STATS", Name: name}, nil
	default:
		return nil, p.errf("expected TABLES, VIEWS, or STATS after SHOW")
	}
}
