package sql

import (
	"strings"
	"testing"
)

func TestSQLUnionView(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE orders (id INT, item TEXT);
		CREATE TABLE items (item TEXT, price INT);
		INSERT INTO items VALUES ('ball', 5), ('bat', 20);
		CREATE MATERIALIZED VIEW priced AS
			SELECT o.id, i.price FROM orders o JOIN items i ON o.item = i.item WHERE i.price < 10
			UNION
			SELECT o.id, i.price FROM orders o JOIN items i ON o.item = i.item WHERE i.price >= 10
			WITH INTERVAL 4;
		INSERT INTO orders VALUES (1, 'ball'), (2, 'bat'), (3, 'ball');
	`)
	mustExec(t, s, "REFRESH VIEW priced")
	res := mustExec(t, s, "SELECT * FROM priced")
	if len(res[0].Rows) != 3 {
		t.Fatalf("union rows: %+v", res[0].Rows)
	}
	res = mustExec(t, s, "SELECT id FROM priced WHERE price >= 10")
	if len(res[0].Rows) != 1 || res[0].Rows[0][0] != "2" {
		t.Fatalf("filtered union read: %+v", res[0].Rows)
	}
	res = mustExec(t, s, "SHOW VIEWS")
	if !strings.Contains(res[0].String(), "priced (union)") {
		t.Fatalf("SHOW VIEWS missing union: %s", res[0])
	}
	// Point-in-time refresh of a union view through SQL.
	mustExec(t, s, "INSERT INTO orders VALUES (4, 'bat')")
	last := s.DB.LastCSN()
	mustExec(t, s, "REFRESH VIEW priced TO COMMIT "+itoa(int64(last)))
	res = mustExec(t, s, "SELECT * FROM priced")
	if len(res[0].Rows) != 4 {
		t.Fatalf("after refresh-to: %+v", res[0].Rows)
	}

	// Errors.
	if _, err := s.Exec("CREATE MATERIALIZED VIEW priced AS SELECT * FROM orders UNION SELECT * FROM orders"); err == nil {
		t.Fatal("duplicate union name should fail")
	}
	if _, err := s.Exec("CREATE MATERIALIZED VIEW u2 AS SELECT * FROM orders UNION SELECT * FROM orders WITH STEPWISE"); err == nil {
		t.Fatal("stepwise union should fail")
	}
	if _, err := s.Exec("CREATE MATERIALIZED VIEW u3 AS SELECT id FROM orders UNION SELECT * FROM orders"); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
