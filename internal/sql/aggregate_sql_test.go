package sql

import (
	"strings"
	"testing"
)

// --- parser: aggregate grammar ---

func TestParseAggregateSelect(t *testing.T) {
	st, err := Parse("SELECT region, COUNT(*), SUM(amt) AS total, AVG(amt), MIN(amt), MAX(v.amt) FROM v GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	q := st.(*Select)
	if len(q.Cols) != 1 || q.Cols[0].Col != "region" {
		t.Fatalf("cols: %+v", q.Cols)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Col != "region" {
		t.Fatalf("group by: %+v", q.GroupBy)
	}
	if len(q.Aggs) != 5 {
		t.Fatalf("aggs: %+v", q.Aggs)
	}
	want := []AggRef{
		{Func: "COUNT"},
		{Func: "SUM", Col: "amt", As: "total"},
		{Func: "AVG", Col: "amt"},
		{Func: "MIN", Col: "amt"},
		{Func: "MAX", Qual: "v", Col: "amt"},
	}
	for i, w := range want {
		if q.Aggs[i] != w {
			t.Fatalf("agg %d: %+v want %+v", i, q.Aggs[i], w)
		}
	}
}

func TestParseCreateAggregateView(t *testing.T) {
	st, err := Parse("CREATE MATERIALIZED VIEW hourly AS SELECT region, COUNT(*), SUM(amt) FROM enriched GROUP BY region WITH MANUAL")
	if err != nil {
		t.Fatal(err)
	}
	cv := st.(*CreateView)
	if cv.Name != "hourly" || !cv.Manual || len(cv.Branches) != 1 {
		t.Fatalf("%+v", cv)
	}
	b := cv.Branches[0]
	if len(b.Aggs) != 2 || len(b.GroupBy) != 1 || b.From[0].Table != "enriched" {
		t.Fatalf("branch: %+v", b)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := []string{
		"SELECT COUNT(*) FROM t",                                   // aggregate without GROUP BY
		"SELECT region FROM t GROUP BY region",                     // GROUP BY without aggregate
		"SELECT * FROM t GROUP BY region",                          // star with GROUP BY
		"SELECT r, COUNT(*) FROM t GROUP BY x",                     // select col != group col
		"SELECT r, q, COUNT(*) FROM t GROUP BY r",                  // extra non-aggregated col
		"SELECT COUNT(x) FROM t GROUP BY x",                        // COUNT takes *
		"SELECT SUM(*) FROM t GROUP BY x",                          // SUM takes a column
		"SELECT x, SUM(x FROM t GROUP BY x",                        // unclosed call
		"SELECT x, SUM() FROM t GROUP BY x",                        // empty call
		"SELECT x, COUNT(*) FROM t GROUP BY",                       // missing group column
		"SELECT x, COUNT(*) FROM t GROUP x",                        // missing BY
		"SELECT x, COUNT(*) AS FROM t GROUP BY x",                  // AS without name
		"CREATE MATERIALIZED VIEW v AS SELECT SUM(a) FROM t GROUP", // truncated
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		} else if _, ok := err.(*ParseError); !ok {
			t.Errorf("want *ParseError for %q, got %T: %v", q, err, err)
		}
	}
}

// --- executor: aggregates and cascades through SQL ---

func TestSQLAggregateCascade(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE orders (oid INT, cust INT, amt FLOAT);
		CREATE TABLE regions (cust INT, region TEXT);
		INSERT INTO regions VALUES (1, 'east'), (2, 'west');
		CREATE MATERIALIZED VIEW enriched AS
			SELECT o.oid, o.amt, r.region FROM orders o JOIN regions r ON o.cust = r.cust
			WITH INTERVAL 2;
		CREATE MATERIALIZED VIEW rollup AS
			SELECT region, COUNT(*), SUM(amt) AS total, MAX(amt) FROM enriched GROUP BY region;
		INSERT INTO orders VALUES (1, 1, 10.0), (2, 1, 30.0), (3, 2, 5.0);
	`)
	// Third level: a plain view filtered over the aggregate's output.
	mustExec(t, s, `
		CREATE MATERIALIZED VIEW big AS SELECT * FROM rollup WHERE total >= 20.0 WITH INTERVAL 2;
	`)
	mustExec(t, s, "REFRESH VIEW enriched; REFRESH VIEW rollup; REFRESH VIEW big")

	res := mustExec(t, s, "SELECT * FROM rollup")
	rows := res[0].Rows
	if len(rows) != 2 {
		t.Fatalf("rollup rows: %+v", rows)
	}
	// east: 2 orders, 40 total, max 30; west: 1 order, 5 total.
	if rows[0][0] != "east" || rows[0][1] != "2" || rows[0][2] != "40" || rows[0][3] != "30" {
		t.Fatalf("east group: %+v", rows[0])
	}
	if rows[1][0] != "west" || rows[1][1] != "1" {
		t.Fatalf("west group: %+v", rows[1])
	}
	res = mustExec(t, s, "SELECT region FROM big")
	if len(res[0].Rows) != 1 || res[0].Rows[0][0] != "east" {
		t.Fatalf("big rows: %+v", res[0].Rows)
	}

	// A delete of the current maximum flows through all three levels.
	mustExec(t, s, "DELETE FROM orders WHERE oid = 2")
	mustExec(t, s, "REFRESH VIEW enriched; REFRESH VIEW rollup; REFRESH VIEW big")
	res = mustExec(t, s, "SELECT * FROM rollup")
	rows = res[0].Rows
	if rows[0][0] != "east" || rows[0][1] != "1" || rows[0][2] != "10" || rows[0][3] != "10" {
		t.Fatalf("east after max delete: %+v", rows[0])
	}
	res = mustExec(t, s, "SELECT region FROM big")
	if len(res[0].Rows) != 0 {
		t.Fatalf("big should be empty: %+v", res[0].Rows)
	}

	// SHOW reflects all three levels; STATS works on the aggregate.
	res = mustExec(t, s, "SHOW VIEWS")
	joined := res[0].String()
	for _, want := range []string{"enriched", "rollup (aggregate)", "big"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("SHOW VIEWS missing %q:\n%s", want, joined)
		}
	}
	res = mustExec(t, s, "SHOW STATS rollup")
	if len(res[0].Rows) == 0 {
		t.Fatal("aggregate stats empty")
	}

	// Dropping the middle level cascades to the top.
	mustExec(t, s, "DROP VIEW rollup")
	if _, err := s.Exec("SELECT * FROM big"); err == nil {
		t.Fatal("downstream view should be dropped with its upstream")
	}
	if _, err := s.Exec("REFRESH VIEW rollup"); err == nil {
		t.Fatal("dropped aggregate should be gone")
	}
}

func TestSQLAdhocAggregate(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE orders (id INT, item TEXT, price FLOAT);
		INSERT INTO orders VALUES (1, 'ball', 5.0), (2, 'ball', 7.0), (3, 'bat', 20.0);
	`)
	res := mustExec(t, s, "SELECT item, COUNT(*), SUM(price), AVG(price), MIN(price), MAX(price) FROM orders GROUP BY item")
	rows := res[0].Rows
	if len(rows) != 2 {
		t.Fatalf("groups: %+v", rows)
	}
	if rows[0][0] != "ball" || rows[0][1] != "2" || rows[0][2] != "12" || rows[0][3] != "6" ||
		rows[0][4] != "5" || rows[0][5] != "7" {
		t.Fatalf("ball group: %+v", rows[0])
	}
	if res[0].Columns[1] != "count" || res[0].Columns[2] != "sum_price" {
		t.Fatalf("columns: %+v", res[0].Columns)
	}
	// WHERE filters before grouping.
	res = mustExec(t, s, "SELECT item, COUNT(*) FROM orders WHERE price > 6.0 GROUP BY item")
	rows = res[0].Rows
	if len(rows) != 2 || rows[0][1] != "1" || rows[1][1] != "1" {
		t.Fatalf("filtered groups: %+v", rows)
	}
}

func TestSQLAggregateExecErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE a (k INT, v FLOAT);
		CREATE TABLE b (k INT, w FLOAT);
		CREATE MATERIALIZED VIEW base AS SELECT a.k, a.v FROM a WITH INTERVAL 2;
		CREATE MATERIALIZED VIEW agg AS SELECT k, COUNT(*) FROM base GROUP BY k;
	`)
	bad := []string{
		// Aggregates read exactly one relation.
		"CREATE MATERIALIZED VIEW x AS SELECT a.k, COUNT(*) FROM a JOIN b ON a.k = b.k GROUP BY a.k",
		// WHERE inside an aggregate view is rejected.
		"CREATE MATERIALIZED VIEW x AS SELECT k, COUNT(*) FROM a WHERE v > 1.0 GROUP BY k",
		// STEPWISE conflicts with group-level compensation.
		"CREATE MATERIALIZED VIEW x AS SELECT k, COUNT(*) FROM a GROUP BY k WITH STEPWISE",
		// Unknown source column and unknown source relation.
		"CREATE MATERIALIZED VIEW x AS SELECT k, SUM(ghost) FROM a GROUP BY k",
		"CREATE MATERIALIZED VIEW x AS SELECT k, COUNT(*) FROM ghost GROUP BY k",
		// Unknown qualifier inside the aggregate.
		"CREATE MATERIALIZED VIEW x AS SELECT k, SUM(z.v) FROM a GROUP BY k",
		// UNION branches cannot aggregate.
		"CREATE MATERIALIZED VIEW x AS SELECT k, COUNT(*) FROM a GROUP BY k UNION SELECT k, COUNT(*) FROM b GROUP BY k",
		// Duplicate name (agg already exists).
		"CREATE MATERIALIZED VIEW agg AS SELECT k, COUNT(*) FROM base GROUP BY k",
		// FROM a view that does not expose the aggregated column.
		"CREATE MATERIALIZED VIEW x AS SELECT k, SUM(w) FROM base GROUP BY k",
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
	// The failures above must not leak registrations: the names stay free.
	mustExec(t, s, "CREATE MATERIALIZED VIEW x AS SELECT k, COUNT(*) FROM base GROUP BY k")
}

// --- fuzzing ---

// FuzzParse drives the full lexer+parser with arbitrary input: it must
// return a statement or an error, never panic, and errors must be the
// package's typed errors so shells can render positions.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"CREATE TABLE orders (id INT, item TEXT, price DOUBLE, ok BOOL, raw BYTES)",
		"INSERT INTO t VALUES (1, 'a', TRUE, NULL), (2, 'b', FALSE, 1.5)",
		"DELETE FROM t WHERE a = 1 AND b <> 'x' LIMIT 3",
		"SELECT o.id, i.price FROM orders o JOIN items i ON o.item = i.item WHERE i.price >= 7",
		"CREATE MATERIALIZED VIEW v AS SELECT * FROM a JOIN b ON a.k = b.k WITH INTERVAL 4, MANUAL",
		"CREATE MATERIALIZED VIEW v AS SELECT a.k FROM a UNION SELECT b.k FROM b WITH INTERVALS (2, 4)",
		"CREATE MATERIALIZED VIEW h AS SELECT region, COUNT(*), SUM(amt) AS total, AVG(amt), MIN(amt), MAX(amt) FROM v GROUP BY region",
		"CREATE SUMMARY s OF v GROUP BY item SUM (price)",
		"REFRESH VIEW v TO COMMIT 42; REFRESH SUMMARY s",
		"DROP VIEW v; SHOW TABLES; SHOW VIEWS; SHOW STATS v",
		"SELECT item, COUNT(*) FROM orders WHERE price > 6.0 GROUP BY item",
		"SELECT x, SUM(",
		"'unterminated",
		"CREATE MATERIALIZED VIEW x AS SELECT COUNT(*) FROM t GROUP",
		"-- comment only",
		";;;",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := ParseAll(input)
		if err != nil {
			switch err.(type) {
			case *ParseError, *lexError:
			default:
				// Parse wraps multi-statement miscounts in fmt errors; only
				// those are allowed through.
				if !strings.HasPrefix(err.Error(), "sql: ") {
					t.Fatalf("untyped error %T: %v", err, err)
				}
			}
			return
		}
		for _, st := range stmts {
			if st == nil {
				t.Fatal("nil statement without error")
			}
		}
	})
}
