package sql

import (
	"repro/internal/tuple"
)

// Statement is the interface implemented by every parsed statement.
type Statement interface{ stmt() }

// ColDef is one column of a CREATE TABLE.
type ColDef struct {
	Name string
	Type tuple.Kind
}

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name string
	Cols []ColDef
}

func (*CreateTable) stmt() {}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]tuple.Value
}

func (*Insert) stmt() {}

// Cond is one conjunct of a WHERE clause: qualified column, operator,
// literal.
type Cond struct {
	Qual string // table or alias; empty when unqualified
	Col  string
	Op   string // =, <>, !=, <, <=, >, >=
	Val  tuple.Value
}

// Delete is DELETE FROM name WHERE ... [LIMIT n].
type Delete struct {
	Table string
	Where []Cond
	Limit int // 0 = unlimited
}

func (*Delete) stmt() {}

// TableRef is a FROM-list entry with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// JoinCond is one ON equi-join condition between qualified columns.
type JoinCond struct {
	LeftQual, LeftCol   string
	RightQual, RightCol string
}

// OutRef is one projected output column.
type OutRef struct {
	Qual string
	Col  string
}

// AggRef is one aggregate function call in a SELECT list:
// COUNT(*) or SUM/AVG/MIN/MAX(col), optionally AS name.
type AggRef struct {
	Func string // COUNT, SUM, AVG, MIN, MAX
	Qual string // empty for COUNT(*)
	Col  string // empty for COUNT(*)
	As   string // optional output column name
}

// Select is SELECT cols FROM t1 [a] JOIN t2 [b] ON ... [WHERE ...]
// [GROUP BY cols]. Star selects every column of the join result. When
// Aggs is non-empty the select is an aggregation: Cols are the grouping
// output columns and GroupBy must be present.
type Select struct {
	Star    bool
	Cols    []OutRef
	Aggs    []AggRef
	From    []TableRef
	Joins   []JoinCond
	Where   []Cond
	GroupBy []OutRef
}

func (*Select) stmt() {}

// CreateView is CREATE MATERIALIZED VIEW name AS select [UNION select ...]
// [WITH opt, ...]. More than one branch defines a union view.
type CreateView struct {
	Name      string
	Branches  []*Select
	Interval  int64
	Intervals []int64
	Manual    bool
	Stepwise  bool
}

func (*CreateView) stmt() {}

// CreateSummary is CREATE SUMMARY name OF view GROUP BY cols [SUM (cols)].
type CreateSummary struct {
	Name    string
	View    string
	GroupBy []string
	Sums    []string
}

func (*CreateSummary) stmt() {}

// Refresh is REFRESH VIEW name [TO COMMIT n] / REFRESH SUMMARY name [...].
type Refresh struct {
	Name    string
	Summary bool
	ToCSN   int64 // -1 when absent
}

func (*Refresh) stmt() {}

// DropView is DROP VIEW name.
type DropView struct {
	Name string
}

func (*DropView) stmt() {}

// Show is SHOW TABLES, SHOW VIEWS, or SHOW STATS name.
type Show struct {
	What string // "TABLES", "VIEWS", "STATS"
	Name string // for STATS
}

func (*Show) stmt() {}
