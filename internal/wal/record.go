// Package wal implements the transaction log that the capture process (the
// paper's DPropR analogue, Section 5) reads to populate base-table delta
// tables. The log is an append-only sequence of CRC-framed binary records:
// Begin, Insert, Delete, Commit, and Abort. Commit records carry the commit
// sequence number (CSN) assigned by the transaction manager, so the log
// encodes the serialization order.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Type identifies a log record type.
type Type uint8

// The record types.
const (
	TypeBegin Type = iota + 1
	TypeInsert
	TypeDelete
	TypeCommit
	TypeAbort
)

// String names the record type.
func (t Type) String() string {
	switch t {
	case TypeBegin:
		return "BEGIN"
	case TypeInsert:
		return "INSERT"
	case TypeDelete:
		return "DELETE"
	case TypeCommit:
		return "COMMIT"
	case TypeAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Record is one transaction log entry. Fields are populated according to
// the record type:
//
//   - Begin:  TxID
//   - Insert: TxID, Table, Row
//   - Delete: TxID, Table, Row
//   - Commit: TxID, CSN, WallNanos
//   - Abort:  TxID
type Record struct {
	Type      Type
	TxID      uint64
	Table     string
	Row       tuple.Tuple
	CSN       relalg.CSN
	WallNanos int64
}

// ErrCorrupt is returned when a record fails to decode.
var ErrCorrupt = errors.New("wal: corrupt record")

// encode appends the record payload (without framing) to dst.
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.AppendUvarint(dst, r.TxID)
	switch r.Type {
	case TypeInsert, TypeDelete:
		dst = binary.AppendUvarint(dst, uint64(len(r.Table)))
		dst = append(dst, r.Table...)
		dst = tuple.EncodeRow(dst, r.Row)
	case TypeCommit:
		dst = binary.AppendVarint(dst, int64(r.CSN))
		dst = binary.AppendVarint(dst, r.WallNanos)
	}
	return dst
}

// decodeRecord parses a record payload produced by encode.
func decodeRecord(b []byte) (*Record, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	r := &Record{Type: Type(b[0])}
	b = b[1:]
	txid, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	r.TxID = txid
	b = b[n:]
	switch r.Type {
	case TypeBegin, TypeAbort:
	case TypeInsert, TypeDelete:
		ln, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < ln {
			return nil, ErrCorrupt
		}
		r.Table = string(b[n : n+int(ln)])
		b = b[n+int(ln):]
		row, rest, err := tuple.DecodeRow(b)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, ErrCorrupt
		}
		r.Row = row
	case TypeCommit:
		csn, n := binary.Varint(b)
		if n <= 0 {
			return nil, ErrCorrupt
		}
		b = b[n:]
		wall, n2 := binary.Varint(b)
		if n2 <= 0 {
			return nil, ErrCorrupt
		}
		r.CSN = relalg.CSN(csn)
		r.WallNanos = wall
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrCorrupt, r.Type)
	}
	return r, nil
}
