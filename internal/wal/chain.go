package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// This file implements the incremental-checkpoint chain-link format. A
// chain is a sequence of links: link 1 is a FULL image (an engine
// snapshot), later links carry only the delta window committed since the
// previous link, so writing a link costs time proportional to the change
// since the last checkpoint rather than the database size. Each link is
// published as its own atomically renamed file, making the chain
// append-only and crash-safe per link; restore loads the most recent FULL
// link and replays every DELTA link after it, then redoes the log suffix
// past the last link's offset — the same redo structure as a full
// checkpoint.
//
// Link frame layout (all integers after the fixed header are uvarints):
//
//	magic   uint32 LE  "RJCL"
//	version uint32 LE
//	seq     uvarint    1-based position in the chain, strictly increasing
//	kind    uvarint    ChainFull or ChainDelta
//	from    uvarint    window lower bound CSN (0 for FULL links)
//	to      uvarint    window upper bound CSN (the link's commit horizon)
//	offset  uvarint    WAL offset the link corresponds to
//	paylen  uvarint    payload length
//	payload bytes      engine snapshot (FULL) or delta window (DELTA)
//	crc     uint32 LE  CRC32-C of every preceding byte of the frame
const (
	chainMagic   = 0x524a434c // "RJCL"
	chainVersion = 1

	// ChainFull marks a link whose payload is a complete engine snapshot;
	// ChainDelta marks a link carrying only the delta window (From, To].
	ChainFull  = 0
	ChainDelta = 1
)

// maxChainPayload caps a link's payload length before allocation, so a
// corrupt length field cannot demand gigabytes.
const maxChainPayload = 1 << 30

// ErrBadChain reports a structurally invalid checkpoint chain: corrupt
// framing, a truncated or checksum-failing link, or broken continuity
// (duplicate, missing, or out-of-order links).
var ErrBadChain = errors.New("wal: corrupt checkpoint chain")

// ChainLink is one decoded link of an incremental checkpoint chain.
type ChainLink struct {
	Seq     uint64
	Kind    uint8
	From    uint64 // window lower bound CSN; 0 for FULL links
	To      uint64 // window upper bound CSN
	Offset  uint64 // WAL offset the link corresponds to
	Payload []byte
}

// EncodeLink appends the link's frame to buf and returns the extended
// slice.
func EncodeLink(buf []byte, l *ChainLink) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, chainMagic)
	buf = binary.LittleEndian.AppendUint32(buf, chainVersion)
	buf = binary.AppendUvarint(buf, l.Seq)
	buf = binary.AppendUvarint(buf, uint64(l.Kind))
	buf = binary.AppendUvarint(buf, l.From)
	buf = binary.AppendUvarint(buf, l.To)
	buf = binary.AppendUvarint(buf, l.Offset)
	buf = binary.AppendUvarint(buf, uint64(len(l.Payload)))
	buf = append(buf, l.Payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[start:], crcTable))
}

// DecodeLink decodes exactly one link frame from the front of b, returning
// the link and the number of bytes consumed. A short buffer, bad magic,
// unsupported version, oversized payload, or checksum mismatch fails with
// ErrBadChain.
func DecodeLink(b []byte) (*ChainLink, int, error) {
	if len(b) < 8 {
		return nil, 0, fmt.Errorf("%w: truncated link header", ErrBadChain)
	}
	if binary.LittleEndian.Uint32(b[0:4]) != chainMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBadChain)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != chainVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrBadChain, v)
	}
	l := &ChainLink{}
	pos := 8
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated link field", ErrBadChain)
		}
		pos += n
		return v, nil
	}
	var err error
	if l.Seq, err = next(); err != nil {
		return nil, 0, err
	}
	kind, err := next()
	if err != nil {
		return nil, 0, err
	}
	if kind != ChainFull && kind != ChainDelta {
		return nil, 0, fmt.Errorf("%w: unknown link kind %d", ErrBadChain, kind)
	}
	l.Kind = uint8(kind)
	if l.From, err = next(); err != nil {
		return nil, 0, err
	}
	if l.To, err = next(); err != nil {
		return nil, 0, err
	}
	if l.Offset, err = next(); err != nil {
		return nil, 0, err
	}
	paylen, err := next()
	if err != nil {
		return nil, 0, err
	}
	if paylen > maxChainPayload {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrBadChain, paylen)
	}
	if uint64(len(b)-pos) < paylen+4 {
		return nil, 0, fmt.Errorf("%w: truncated link payload", ErrBadChain)
	}
	l.Payload = append([]byte(nil), b[pos:pos+int(paylen)]...)
	pos += int(paylen)
	sum := binary.LittleEndian.Uint32(b[pos : pos+4])
	if crc32.Checksum(b[:pos], crcTable) != sum {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrBadChain)
	}
	return l, pos + 4, nil
}

// DecodeChain reads a stream of concatenated link frames to EOF and
// validates chain continuity: the first link must be FULL with Seq 1,
// sequence numbers must increase by exactly one (duplicates and gaps are
// corruption), every FULL link restarts the window at From 0, and each
// DELTA link's window must start exactly where the previous link's ended.
// Any framing or continuity violation fails with ErrBadChain.
func DecodeChain(r io.Reader) ([]*ChainLink, error) {
	b, err := io.ReadAll(io.LimitReader(r, maxChainPayload+1))
	if err != nil {
		return nil, err
	}
	if len(b) > maxChainPayload {
		return nil, fmt.Errorf("%w: chain too large", ErrBadChain)
	}
	var links []*ChainLink
	for len(b) > 0 {
		l, n, err := DecodeLink(b)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
		b = b[n:]
	}
	if err := ValidateChain(links); err != nil {
		return nil, err
	}
	return links, nil
}

// ValidateChain checks the continuity invariants over an ordered slice of
// decoded links (see DecodeChain). An empty chain is valid.
func ValidateChain(links []*ChainLink) error {
	for i, l := range links {
		if i == 0 {
			if l.Seq != 1 {
				return fmt.Errorf("%w: chain starts at seq %d, want 1", ErrBadChain, l.Seq)
			}
			if l.Kind != ChainFull {
				return fmt.Errorf("%w: chain starts with a delta link", ErrBadChain)
			}
		} else {
			prev := links[i-1]
			if l.Seq == prev.Seq {
				return fmt.Errorf("%w: duplicate link seq %d", ErrBadChain, l.Seq)
			}
			if l.Seq != prev.Seq+1 {
				return fmt.Errorf("%w: link seq %d follows %d", ErrBadChain, l.Seq, prev.Seq)
			}
			if l.Kind == ChainDelta && l.From != prev.To {
				return fmt.Errorf("%w: delta link %d starts at CSN %d, previous link ended at %d",
					ErrBadChain, l.Seq, l.From, prev.To)
			}
		}
		if l.Kind == ChainFull && l.From != 0 {
			return fmt.Errorf("%w: full link %d has nonzero window start %d", ErrBadChain, l.Seq, l.From)
		}
		if l.Kind == ChainDelta && l.To < l.From {
			return fmt.Errorf("%w: delta link %d window (%d, %d] is inverted", ErrBadChain, l.Seq, l.From, l.To)
		}
	}
	return nil
}
