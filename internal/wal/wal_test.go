package wal

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

func sampleRecords() []*Record {
	return []*Record{
		{Type: TypeBegin, TxID: 1},
		{Type: TypeInsert, TxID: 1, Table: "orders", Row: tuple.Tuple{tuple.Int(7), tuple.String_("widget")}},
		{Type: TypeDelete, TxID: 1, Table: "orders", Row: tuple.Tuple{tuple.Int(3), tuple.String_("gadget")}},
		{Type: TypeCommit, TxID: 1, CSN: 42, WallNanos: 1234567890},
		{Type: TypeBegin, TxID: 2},
		{Type: TypeAbort, TxID: 2},
	}
}

func recordsEqual(a, b *Record) bool {
	if a.Type != b.Type || a.TxID != b.TxID || a.Table != b.Table ||
		a.CSN != b.CSN || a.WallNanos != b.WallNanos {
		return false
	}
	if (a.Row == nil) != (b.Row == nil) {
		return false
	}
	return a.Row == nil || a.Row.Equal(b.Row)
}

func TestAppendAndRead(t *testing.T) {
	l, err := NewLog(NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	r := l.NewReader(0)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !recordsEqual(got, want) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, ErrNoMore) {
		t.Fatalf("want ErrNoMore, got %v", err)
	}
}

func TestReaderFromOffset(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	var offs []int64
	for _, rec := range sampleRecords() {
		off, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	r := l.NewReader(offs[3])
	got, err := r.Next()
	if err != nil || got.Type != TypeCommit || got.CSN != 42 {
		t.Fatalf("reader from offset: %+v %v", got, err)
	}
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	goodSize := l.Size()
	// Simulate a torn write: append garbage half-frame.
	dev.Append([]byte{9, 0, 0, 0}) // length header only, no payload
	l2, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != goodSize {
		t.Fatalf("recovered size %d, want %d", l2.Size(), goodSize)
	}
	// The torn tail must be physically removed so new appends start at a
	// frame boundary instead of interleaving with the garbage suffix.
	if dev.Size() != goodSize {
		t.Fatalf("device size %d after recovery, want torn tail truncated to %d", dev.Size(), goodSize)
	}
	// All records readable up to the good size, and a fresh append lands
	// cleanly after them.
	if _, err := l2.Append(&Record{Type: TypeBegin, TxID: 77}); err != nil {
		t.Fatal(err)
	}
	r := l2.NewReader(0)
	count := 0
	var last *Record
	for {
		rec, err := r.Next()
		if errors.Is(err, ErrNoMore) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		last = rec
		count++
	}
	if count != len(sampleRecords())+1 {
		t.Fatalf("recovered %d records", count)
	}
	if last.Type != TypeBegin || last.TxID != 77 {
		t.Fatalf("post-recovery append mangled: %+v", last)
	}
}

func TestRecoveryTruncatesTornPayload(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	for _, rec := range sampleRecords() {
		l.Append(rec)
	}
	goodSize := l.Size()
	// A torn append that got the header plus part of the payload down: the
	// declared frame length runs past the device end.
	dev.Append([]byte{200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	l2, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != goodSize || dev.Size() != goodSize {
		t.Fatalf("recovered size %d device %d, want both %d", l2.Size(), dev.Size(), goodSize)
	}
}

func TestRecoveryFailsOnMidLogCorruption(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	var sizes []int64
	for _, rec := range sampleRecords() {
		l.Append(rec)
		sizes = append(sizes, l.Size())
	}
	// Corrupt a byte inside the 4th record's payload: the frame is fully
	// present, so this is damaged durable data, not a torn tail. Recovery
	// must refuse rather than silently drop the later committed records.
	dev.Corrupt(sizes[2] + frameHeader)
	_, err := NewLog(dev)
	if err == nil {
		t.Fatal("want error for mid-log corruption, got clean recovery")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T", err)
	}
	if ce.Offset != sizes[2] {
		t.Fatalf("corrupt offset %d, want %d", ce.Offset, sizes[2])
	}
	// Nothing was truncated: the damaged evidence is preserved.
	if dev.Size() != sizes[len(sizes)-1] {
		t.Fatalf("device size changed to %d", dev.Size())
	}
}

func TestReaderReportsCorruptOffset(t *testing.T) {
	dev := NewMemDevice()
	l, _ := NewLog(dev)
	var offs []int64
	for _, rec := range sampleRecords() {
		off, _ := l.Append(rec)
		offs = append(offs, off)
	}
	dev.Corrupt(offs[1] + frameHeader)
	r := l.NewReader(0)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Next()
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Offset != offs[1] {
		t.Fatalf("want CorruptError at %d, got %v", offs[1], err)
	}
}

func TestBlockingReader(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	r := l.NewReader(0)
	var wg sync.WaitGroup
	wg.Add(1)
	var got *Record
	var err error
	go func() {
		defer wg.Done()
		got, err = r.NextBlocking()
	}()
	l.Append(&Record{Type: TypeBegin, TxID: 9})
	wg.Wait()
	if err != nil || got.TxID != 9 {
		t.Fatalf("blocking read: %+v %v", got, err)
	}
	// After close, a blocked reader must return ErrClosed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err = r.NextBlocking()
	}()
	l.Close()
	wg.Wait()
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	l.Close()
	if _, err := l.Append(&Record{Type: TypeBegin, TxID: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestCloseWithPendingDataDrainsFirst(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	l.Append(&Record{Type: TypeBegin, TxID: 5})
	l.Close()
	r := l.NewReader(0)
	rec, err := r.NextBlocking()
	if err != nil || rec.TxID != 5 {
		t.Fatalf("drain after close: %v %v", rec, err)
	}
	if _, err := r.NextBlocking(); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed after drain, got %v", err)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen and verify recovery finds everything.
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	l2, err := NewLog(dev2)
	if err != nil {
		t.Fatal(err)
	}
	r := l2.NewReader(0)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !recordsEqual(got, want) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDecodeCorruptRecord(t *testing.T) {
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("empty payload should fail")
	}
	if _, err := decodeRecord([]byte{99, 1}); err == nil {
		t.Fatal("unknown type should fail")
	}
	if _, err := decodeRecord([]byte{byte(TypeInsert), 1, 50}); err == nil {
		t.Fatal("short insert should fail")
	}
	if _, err := decodeRecord([]byte{byte(TypeCommit), 1}); err == nil {
		t.Fatal("short commit should fail")
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{TypeBegin, TypeInsert, TypeDelete, TypeCommit, TypeAbort} {
		if typ.String() == "" {
			t.Fatal("empty name")
		}
	}
	if Type(200).String() != "Type(200)" {
		t.Fatal("unknown type formatting")
	}
}

func TestCommitCSNRoundTrip(t *testing.T) {
	l, _ := NewLog(NewMemDevice())
	l.Append(&Record{Type: TypeCommit, TxID: 3, CSN: relalg.CSN(-1), WallNanos: -5})
	rec, err := l.NewReader(0).Next()
	if err != nil || rec.CSN != -1 || rec.WallNanos != -5 {
		t.Fatalf("negative varint roundtrip: %+v %v", rec, err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l, _ := NewLog(NewMemDevice())
	rec := &Record{Type: TypeInsert, TxID: 1, Table: "orders", Row: tuple.Tuple{tuple.Int(7), tuple.String_("widget")}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Append(rec)
	}
}
