package wal

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/tuple"
)

// buildStream appends the sample records to a fresh log and returns the raw
// encoded bytes plus each frame's start offset (with the total size as a
// final sentinel boundary).
func buildStream(t testing.TB) (stream []byte, bounds []int64) {
	t.Helper()
	dev := NewMemDevice()
	l, err := NewLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		off, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, off)
	}
	bounds = append(bounds, l.Size())
	stream = make([]byte, l.Size())
	if _, err := dev.ReadAt(stream, 0); err != nil {
		t.Fatal(err)
	}
	return stream, bounds
}

// frameStart returns the start offset of the frame containing byte pos.
func frameStart(bounds []int64, pos int64) int64 {
	start := bounds[0]
	for _, b := range bounds[:len(bounds)-1] {
		if b <= pos {
			start = b
		}
	}
	return start
}

// TestTailVsCorrupt is the frontier-classification regression test: a short
// frame at the readable limit is ErrIncomplete (wait for more bytes), while
// a fully present frame failing CRC or decode is *CorruptError (durable
// damage). The pre-fix reader conflated the two, so a live follower tailing
// a leader mid-append would have treated a partial frame as corruption.
func TestTailVsCorrupt(t *testing.T) {
	stream, bounds := buildStream(t)
	full := int64(len(stream))
	firstLen := bounds[1]

	cases := []struct {
		name       string
		mutate     func([]byte) []byte // applied to a copy of the stream
		off        int64               // read offset
		incomplete bool                // want ErrIncomplete
		corrupt    bool                // want *CorruptError
		corruptAt  int64               // expected CorruptError offset
	}{
		{name: "empty device", mutate: func(s []byte) []byte { return nil }, incomplete: true},
		{name: "mid header", mutate: func(s []byte) []byte { return s[:3] }, incomplete: true},
		{name: "exact header no payload", mutate: func(s []byte) []byte { return s[:frameHeader] }, incomplete: true},
		{name: "mid payload", mutate: func(s []byte) []byte { return s[:firstLen-1] }, incomplete: true},
		{name: "clean boundary then partial", mutate: func(s []byte) []byte { return s[:bounds[2]+5] },
			off: bounds[2], incomplete: true},
		{name: "flipped crc byte", mutate: func(s []byte) []byte {
			c := append([]byte(nil), s...)
			c[4] ^= 0xFF
			return c
		}, corrupt: true, corruptAt: 0},
		{name: "flipped payload byte", mutate: func(s []byte) []byte {
			c := append([]byte(nil), s...)
			c[frameHeader] ^= 0xFF
			return c
		}, corrupt: true, corruptAt: 0},
		{name: "corrupt second frame", mutate: func(s []byte) []byte {
			c := append([]byte(nil), s...)
			c[bounds[1]+frameHeader+2] ^= 0x40
			return c
		}, off: bounds[1], corrupt: true, corruptAt: bounds[1]},
		{name: "valid full frame", mutate: func(s []byte) []byte { return s }},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := NewMemDeviceFrom(tc.mutate(stream))
			rec, next, err := ReadFrameAt(dev, tc.off, dev.Size())
			switch {
			case tc.incomplete:
				if !errors.Is(err, ErrIncomplete) {
					t.Fatalf("want ErrIncomplete, got %v", err)
				}
				if errors.Is(err, ErrCorrupt) {
					t.Fatal("ErrIncomplete must not match ErrCorrupt")
				}
				if next != tc.off {
					t.Fatalf("incomplete read moved offset to %d", next)
				}
			case tc.corrupt:
				var ce *CorruptError
				if !errors.As(err, &ce) {
					t.Fatalf("want *CorruptError, got %v", err)
				}
				if errors.Is(err, ErrIncomplete) {
					t.Fatal("CorruptError must not match ErrIncomplete")
				}
				if ce.Offset != tc.corruptAt {
					t.Fatalf("corrupt offset %d, want %d", ce.Offset, tc.corruptAt)
				}
			default:
				if err != nil {
					t.Fatal(err)
				}
				if rec == nil || next <= tc.off {
					t.Fatalf("valid frame: rec=%v next=%d", rec, next)
				}
			}
		})
	}

	// The full valid stream read back frame by frame matches the input.
	dev := NewMemDeviceFrom(stream)
	var off int64
	for i, want := range sampleRecords() {
		rec, next, err := ReadFrameAt(dev, off, full)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !recordsEqual(rec, want) {
			t.Fatalf("frame %d mismatch", i)
		}
		off = next
	}
	if _, _, err := ReadFrameAt(dev, off, full); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("past end: want ErrIncomplete, got %v", err)
	}
}

// TestAppendShipped covers the follower-side ingestion path: bytes arrive in
// arbitrary chunks, complete frames become committed (readable) as soon as
// they close, a partial tail is retained across shipments, and in-flight
// corruption fail-stops.
func TestAppendShipped(t *testing.T) {
	stream, bounds := buildStream(t)
	recs := sampleRecords()

	t.Run("byte at a time", func(t *testing.T) {
		l, _ := NewLog(NewMemDevice())
		for i := range stream {
			if _, err := l.AppendShipped(stream[i : i+1]); err != nil {
				t.Fatalf("byte %d: %v", i, err)
			}
		}
		if l.Size() != int64(len(stream)) {
			t.Fatalf("committed %d, want %d", l.Size(), len(stream))
		}
		r := l.NewReader(0)
		for i, want := range recs {
			got, err := r.Next()
			if err != nil || !recordsEqual(got, want) {
				t.Fatalf("record %d: %+v %v", i, got, err)
			}
		}
	})

	t.Run("partial tail retained across shipments", func(t *testing.T) {
		l, _ := NewLog(NewMemDevice())
		cut := bounds[1] + 3 // first frame plus a sliver of the second
		if _, err := l.AppendShipped(stream[:cut]); err != nil {
			t.Fatal(err)
		}
		if l.Size() != bounds[1] {
			t.Fatalf("committed %d, want first frame boundary %d", l.Size(), bounds[1])
		}
		if l.DeviceSize() != cut {
			t.Fatalf("device %d, want partial tail retained at %d", l.DeviceSize(), cut)
		}
		if _, err := l.AppendShipped(stream[cut:]); err != nil {
			t.Fatal(err)
		}
		if l.Size() != int64(len(stream)) {
			t.Fatalf("committed %d after completion, want %d", l.Size(), len(stream))
		}
	})

	t.Run("corrupt shipment fail-stops at frame boundary", func(t *testing.T) {
		l, _ := NewLog(NewMemDevice())
		bad := append([]byte(nil), stream...)
		bad[bounds[2]+frameHeader] ^= 0xFF // damage third frame's payload
		_, err := l.AppendShipped(bad)
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Offset != bounds[2] {
			t.Fatalf("want CorruptError at %d, got %v", bounds[2], err)
		}
		if l.Size() != bounds[2] {
			t.Fatalf("committed %d, want stall before damaged frame at %d", l.Size(), bounds[2])
		}
		// The clean prefix stays readable.
		r := l.NewReader(0)
		for i := 0; i < 2; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatalf("prefix record %d: %v", i, err)
			}
		}
		if _, err := r.Next(); !errors.Is(err, ErrNoMore) {
			t.Fatalf("want ErrNoMore at stall point, got %v", err)
		}
	})

	t.Run("shipment wakes blocked reader", func(t *testing.T) {
		l, _ := NewLog(NewMemDevice())
		r := l.NewReader(0)
		done := make(chan error, 1)
		go func() {
			rec, err := r.NextBlocking()
			if err == nil && rec.Type != recs[0].Type {
				err = errors.New("wrong record")
			}
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		if _, err := l.AppendShipped(stream[:bounds[1]]); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	})
}

func TestReadCommitted(t *testing.T) {
	stream, bounds := buildStream(t)
	l, _ := NewLog(NewMemDevice())
	cut := bounds[2] + 4
	l.AppendShipped(stream[:cut]) // two frames committed + partial tail

	// Read everything committed; the partial tail past Size() is invisible.
	buf := make([]byte, len(stream))
	n, err := l.ReadCommitted(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != bounds[2] {
		t.Fatalf("read %d committed bytes, want %d", n, bounds[2])
	}
	if !bytes.Equal(buf[:n], stream[:bounds[2]]) {
		t.Fatal("committed bytes differ from source stream")
	}
	// Caught up: n == 0, nil error.
	if n, err := l.ReadCommitted(buf, bounds[2]); n != 0 || err != nil {
		t.Fatalf("at frontier: n=%d err=%v", n, err)
	}
}

func TestWaitBeyondContext(t *testing.T) {
	l, _ := NewLog(NewMemDevice())

	// Cancellation unblocks a waiter without closing the log.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.WaitBeyond(ctx, 0) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	// NextBlockingContext honors cancellation the same way.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := l.NewReader(0).NextBlockingContext(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}

	// Data satisfies a waiter.
	go func() { done <- l.WaitBeyond(context.Background(), 0) }()
	l.Append(&Record{Type: TypeBegin, TxID: 1})
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Close wins when no data will arrive.
	go func() { done <- l.WaitBeyond(context.Background(), l.Size()) }()
	l.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

// FuzzWALStream drives the tailing reader with truncated, bit-flipped, and
// arbitrary byte streams, asserting the two error classes never bleed into
// each other: truncation of a valid stream is always ErrIncomplete (never
// corruption), damage inside a complete frame's CRC-covered region is
// always *CorruptError (never incompleteness), and no input panics the
// reader or breaks the committed-prefix invariant.
func FuzzWALStream(f *testing.F) {
	stream, _ := buildStream(f)
	f.Add(stream, uint32(len(stream)), uint32(0), uint8(1))
	f.Add(stream, uint32(11), uint32(9), uint8(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint32(8), uint32(4), uint8(1))
	f.Add([]byte("arbitrary garbage that is not a frame"), uint32(5), uint32(2), uint8(7))

	f.Fuzz(func(t *testing.T, raw []byte, cut uint32, flipPos uint32, chunk uint8) {
		// Part 1: arbitrary bytes shipped in arbitrary chunks. Whatever
		// arrives, the committed prefix must stay a decodable sequence of
		// frames: Reader.Next yields records up to Size() then ErrNoMore,
		// never ErrIncomplete, never a panic.
		step := int(chunk)%7 + 1
		l, _ := NewLog(NewMemDevice())
		var shipErr error
		for i := 0; i < len(raw); i += step {
			end := i + step
			if end > len(raw) {
				end = len(raw)
			}
			if _, shipErr = l.AppendShipped(raw[i:end]); shipErr != nil {
				break
			}
		}
		if shipErr != nil && !errors.Is(shipErr, ErrCorrupt) {
			t.Fatalf("AppendShipped: non-corruption error %v", shipErr)
		}
		if l.Size() > l.DeviceSize() {
			t.Fatalf("committed %d beyond device %d", l.Size(), l.DeviceSize())
		}
		r := l.NewReader(0)
		for {
			_, err := r.Next()
			if err != nil {
				if !errors.Is(err, ErrNoMore) {
					t.Fatalf("committed prefix not cleanly readable: %v", err)
				}
				break
			}
		}
		if r.Offset() != l.Size() {
			t.Fatalf("reader stopped at %d, committed %d", r.Offset(), l.Size())
		}

		// Part 2: mutations of a known-valid stream.
		stream, bounds := buildStream(t)
		n := int64(len(stream))

		// Truncation at any byte is incompleteness, never corruption: the
		// committed size lands on the last whole-frame boundary and the
		// remainder waits for more bytes.
		cutAt := int64(cut) % (n + 1)
		lt, _ := NewLog(NewMemDevice())
		if _, err := lt.AppendShipped(stream[:cutAt]); err != nil {
			t.Fatalf("truncated-at-%d shipment misread as corruption: %v", cutAt, err)
		}
		if want := frameStart(bounds, cutAt); lt.Size() != want && cutAt != n {
			t.Fatalf("cut at %d: committed %d, want boundary %d", cutAt, lt.Size(), want)
		}
		if _, _, err := ReadFrameAt(lt.NewReader(0).log.dev, lt.Size(), lt.DeviceSize()); cutAt != n && lt.Size() < lt.DeviceSize() {
			if !errors.Is(err, ErrIncomplete) {
				t.Fatalf("partial tail at %d: want ErrIncomplete, got %v", lt.Size(), err)
			}
		}

		// A bit flip inside a complete frame, at or past the CRC field, is
		// corruption at that frame's offset, never incompleteness. Flips in
		// the 4 length bytes are excluded: a garbled length legitimately
		// reads as an incomplete longer frame until contradicted.
		pos := int64(flipPos) % n
		start := frameStart(bounds, pos)
		if pos >= start+4 {
			bad := append([]byte(nil), stream...)
			bad[pos] ^= 1 << (chunk % 8)
			lf, _ := NewLog(NewMemDevice())
			_, err := lf.AppendShipped(bad)
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at %d (frame %d): want CorruptError, got %v", pos, start, err)
			}
			if errors.Is(err, ErrIncomplete) {
				t.Fatalf("flip at %d: corruption must not read as incompleteness", pos)
			}
			if ce.Offset != start {
				t.Fatalf("flip at %d: corrupt offset %d, want frame start %d", pos, ce.Offset, start)
			}
			if lf.Size() != start {
				t.Fatalf("flip at %d: committed %d, want stall at %d", pos, lf.Size(), start)
			}
		}
	})
}

// TestShippedRoundTripRows guards against value-level drift: rows shipped
// byte-for-byte decode to equal tuples on the replica side.
func TestShippedRoundTripRows(t *testing.T) {
	src, _ := NewLog(NewMemDevice())
	rows := []tuple.Tuple{
		{tuple.Int(-9), tuple.Float(3.25), tuple.String_("α βγ"), tuple.Bool(true)},
		{tuple.Null(), tuple.Bytes([]byte{0, 1, 2, 255})},
	}
	for i, row := range rows {
		src.Append(&Record{Type: TypeInsert, TxID: uint64(i + 1), Table: "t", Row: row})
	}
	raw := make([]byte, src.Size())
	if n, err := src.ReadCommitted(raw, 0); err != nil || int64(n) != src.Size() {
		t.Fatalf("read source: n=%d err=%v", n, err)
	}
	dst, _ := NewLog(NewMemDevice())
	if _, err := dst.AppendShipped(raw); err != nil {
		t.Fatal(err)
	}
	r := dst.NewReader(0)
	for i, want := range rows {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !rec.Row.Equal(want) {
			t.Fatalf("record %d row mismatch: %v vs %v", i, rec.Row, want)
		}
	}
}
