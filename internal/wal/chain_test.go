package wal

import (
	"bytes"
	"errors"
	"testing"
)

func testChain() []*ChainLink {
	return []*ChainLink{
		{Seq: 1, Kind: ChainFull, From: 0, To: 10, Offset: 100, Payload: []byte("full-snapshot")},
		{Seq: 2, Kind: ChainDelta, From: 10, To: 25, Offset: 220, Payload: []byte("delta-a")},
		{Seq: 3, Kind: ChainDelta, From: 25, To: 25, Offset: 220, Payload: nil}, // empty window
		{Seq: 4, Kind: ChainDelta, From: 25, To: 40, Offset: 310, Payload: []byte("delta-b")},
	}
}

func encodeChain(links []*ChainLink) []byte {
	var buf []byte
	for _, l := range links {
		buf = EncodeLink(buf, l)
	}
	return buf
}

func TestChainRoundTrip(t *testing.T) {
	links := testChain()
	got, err := DecodeChain(bytes.NewReader(encodeChain(links)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(links) {
		t.Fatalf("decoded %d links, want %d", len(got), len(links))
	}
	for i, l := range got {
		w := links[i]
		if l.Seq != w.Seq || l.Kind != w.Kind || l.From != w.From || l.To != w.To || l.Offset != w.Offset {
			t.Fatalf("link %d = %+v, want %+v", i, l, w)
		}
		if !bytes.Equal(l.Payload, w.Payload) {
			t.Fatalf("link %d payload %q, want %q", i, l.Payload, w.Payload)
		}
	}
}

func TestChainEmptyIsValid(t *testing.T) {
	links, err := DecodeChain(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(links) != 0 {
		t.Fatalf("decoded %d links from empty input", len(links))
	}
}

func TestChainMidChainFullRestart(t *testing.T) {
	links := []*ChainLink{
		{Seq: 1, Kind: ChainFull, To: 10, Payload: []byte("a")},
		{Seq: 2, Kind: ChainDelta, From: 10, To: 20, Payload: []byte("b")},
		{Seq: 3, Kind: ChainFull, To: 30, Payload: []byte("c")}, // chain restart keeps seq continuity
		{Seq: 4, Kind: ChainDelta, From: 30, To: 35, Payload: []byte("d")},
	}
	if _, err := DecodeChain(bytes.NewReader(encodeChain(links))); err != nil {
		t.Fatalf("mid-chain FULL link should validate: %v", err)
	}
}

func TestChainTruncatedLink(t *testing.T) {
	buf := encodeChain(testChain())
	for _, cut := range []int{1, 7, 9, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeChain(bytes.NewReader(buf[:cut])); !errors.Is(err, ErrBadChain) {
			t.Fatalf("truncation at %d: want ErrBadChain, got %v", cut, err)
		}
	}
}

func TestChainCorruptLink(t *testing.T) {
	base := encodeChain(testChain())
	for _, pos := range []int{0, 4, 10, len(base) / 2, len(base) - 2} {
		buf := append([]byte(nil), base...)
		buf[pos] ^= 0xFF
		if _, err := DecodeChain(bytes.NewReader(buf)); !errors.Is(err, ErrBadChain) {
			t.Fatalf("corruption at %d: want ErrBadChain, got %v", pos, err)
		}
	}
}

func TestChainContinuityViolations(t *testing.T) {
	cases := map[string][]*ChainLink{
		"starts with delta": {
			{Seq: 1, Kind: ChainDelta, From: 0, To: 5},
		},
		"starts past seq 1": {
			{Seq: 2, Kind: ChainFull, To: 5},
		},
		"duplicate seq": {
			{Seq: 1, Kind: ChainFull, To: 5},
			{Seq: 1, Kind: ChainFull, To: 5},
		},
		"seq gap": {
			{Seq: 1, Kind: ChainFull, To: 5},
			{Seq: 3, Kind: ChainDelta, From: 5, To: 9},
		},
		"window discontinuity": {
			{Seq: 1, Kind: ChainFull, To: 5},
			{Seq: 2, Kind: ChainDelta, From: 7, To: 9},
		},
		"full with nonzero from": {
			{Seq: 1, Kind: ChainFull, From: 3, To: 5},
		},
		"inverted delta window": {
			{Seq: 1, Kind: ChainFull, To: 5},
			{Seq: 2, Kind: ChainDelta, From: 5, To: 2},
		},
	}
	for name, links := range cases {
		if err := ValidateChain(links); !errors.Is(err, ErrBadChain) {
			t.Errorf("%s: want ErrBadChain, got %v", name, err)
		}
		// The same violation must also fail end-to-end through the decoder.
		if _, err := DecodeChain(bytes.NewReader(encodeChain(links))); !errors.Is(err, ErrBadChain) {
			t.Errorf("%s (via DecodeChain): want ErrBadChain, got %v", name, err)
		}
	}
}

// FuzzChainDecode drives arbitrary bytes through the chain decoder: it must
// never panic, and anything it accepts must re-encode and re-decode to the
// identical chain (the decoder only accepts what the encoder can produce).
func FuzzChainDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeChain(testChain()))
	one := EncodeLink(nil, &ChainLink{Seq: 1, Kind: ChainFull, To: 3, Payload: []byte("x")})
	f.Add(one)
	f.Add(one[:len(one)-1])            // truncated CRC
	f.Add(append(one, one...))         // duplicate link
	f.Add(bytes.Repeat([]byte{0}, 64)) // garbage
	f.Fuzz(func(t *testing.T, data []byte) {
		links, err := DecodeChain(bytes.NewReader(data))
		if err != nil {
			return
		}
		again, err := DecodeChain(bytes.NewReader(encodeChain(links)))
		if err != nil {
			t.Fatalf("accepted chain failed round-trip: %v", err)
		}
		if len(again) != len(links) {
			t.Fatalf("round-trip changed length %d -> %d", len(links), len(again))
		}
		for i := range links {
			a, b := links[i], again[i]
			if a.Seq != b.Seq || a.Kind != b.Kind || a.From != b.From || a.To != b.To ||
				a.Offset != b.Offset || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("round-trip changed link %d: %+v -> %+v", i, a, b)
			}
		}
	})
}
