package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/fault"
)

// Device is the byte store underneath a Log: an append-only region that can
// also be read at arbitrary offsets (for tailing readers and recovery).
type Device interface {
	// Append writes p at the end of the device.
	Append(p []byte) error
	// ReadAt reads into p starting at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the current device length in bytes.
	Size() int64
	// Sync makes previous appends durable.
	Sync() error
	// Truncate cuts the device to n bytes (torn-tail repair on recovery).
	Truncate(n int64) error
	// Close releases the device.
	Close() error
}

// MemDevice is an in-memory Device used by tests, benchmarks, and purely
// in-process databases.
type MemDevice struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// NewMemDeviceFrom returns an in-memory device seeded with a copy of buf —
// how crash-recovery tests reopen a crash image.
func NewMemDeviceFrom(buf []byte) *MemDevice {
	return &MemDevice{buf: append([]byte(nil), buf...)}
}

// Append implements Device.
func (d *MemDevice) Append(p []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf, p...)
	d.mu.Unlock()
	return nil
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.buf))
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Corrupt flips a byte at the given offset; used by recovery tests.
func (d *MemDevice) Corrupt(off int64) {
	d.mu.Lock()
	d.buf[off] ^= 0xFF
	d.mu.Unlock()
}

// Truncate implements Device.
func (d *MemDevice) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > int64(len(d.buf)) {
		return fmt.Errorf("wal: truncate to %d outside device of %d bytes", n, len(d.buf))
	}
	d.buf = d.buf[:n]
	return nil
}

// FileDevice is a file-backed Device.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if needed) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.WriteAt(p, d.size); err != nil {
		return err
	}
	d.size += int64(len(p))
	return nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

// Size implements Device.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Truncate implements Device.
func (d *FileDevice) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(n); err != nil {
		return err
	}
	d.size = n
	return nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// frame layout: 4-byte little-endian payload length, 4-byte CRC32C of the
// payload, then the payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by blocking reads after the log is closed.
var ErrClosed = errors.New("wal: log closed")

// CorruptError reports mid-log corruption: a fully present frame whose CRC
// or payload fails to validate. Unlike a torn tail — an append cut short by
// a crash, which recovery silently truncates — corruption inside the log
// body means durable data was damaged, and replaying past it could silently
// lose committed transactions, so it surfaces as an error with the frame's
// byte offset. errors.Is(err, ErrCorrupt) matches.
type CorruptError struct{ Offset int64 }

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at byte offset %d", e.Offset)
}

// Unwrap lets errors.Is match ErrCorrupt.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// ErrIncomplete reports a clean short read at the log frontier: the bytes
// at the current offset are a prefix of a frame that has not finished
// arriving (a live tailer mid-ship, or a torn tail during recovery). It is
// the io.EOF of WAL streams — "not here yet", never "damaged". Checksum or
// payload violations on a fully present frame surface as *CorruptError
// instead; conflating the two would make a follower either stall forever on
// real corruption or replay past damaged committed data.
var ErrIncomplete = errors.New("wal: incomplete frame at log frontier")

// ReadFrameAt decodes the frame starting at byte offset off, considering
// only the device prefix [0, limit) (limit < 0 means the device's current
// size). It returns the record and the offset just past the frame.
//
// The two failure classes are kept strictly apart:
//
//   - ErrIncomplete: the frame's header or payload extends past limit. More
//     bytes may turn it into a valid frame; a tailer waits, recovery treats
//     it as a torn tail.
//   - *CorruptError: the frame is fully present inside the limit but its
//     CRC or payload fails to validate. Durable bytes were damaged; waiting
//     cannot fix it.
func ReadFrameAt(dev Device, off, limit int64) (*Record, int64, error) {
	if limit < 0 {
		limit = dev.Size()
	}
	if off+frameHeader > limit {
		return nil, off, ErrIncomplete
	}
	var hdr [frameHeader]byte
	if _, err := dev.ReadAt(hdr[:], off); err != nil {
		return nil, off, fmt.Errorf("wal: read header at %d: %w", off, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	next := off + frameHeader + int64(n)
	if next > limit {
		// The payload (or a garbage length field from a torn header write)
		// runs past the readable prefix: incomplete either way — if the
		// length field is garbage the eventual full frame fails its CRC.
		return nil, off, ErrIncomplete
	}
	payload := make([]byte, n)
	if n > 0 {
		if _, err := dev.ReadAt(payload, off+frameHeader); err != nil {
			return nil, off, fmt.Errorf("wal: read payload at %d: %w", off+frameHeader, err)
		}
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, off, &CorruptError{Offset: off}
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, off, &CorruptError{Offset: off}
	}
	return rec, next, nil
}

// Log is the append-only transaction log. Appends are serialized; any
// number of Readers may tail the log concurrently.
type Log struct {
	mu     sync.Mutex
	dev    Device
	size   int64 // committed log size (all complete frames)
	closed bool
	buf    []byte // append scratch buffer, reused under mu

	// gen is closed and replaced whenever the committed size grows or the
	// log closes, so blocked tailing readers wake; a channel generation
	// (instead of a sync.Cond) lets waits compose with contexts — the
	// capture drain on shutdown and network subscribers both need
	// cancellable blocking reads.
	gen chan struct{}
}

// NewLog creates a log on the given device, scanning existing content to
// find the end of the last complete, uncorrupted frame (recovery). A torn
// tail — a final append cut short by a crash — is truncated away so new
// appends start at a frame boundary instead of interleaving with the
// garbage suffix; corruption inside the log body fails with *CorruptError.
func NewLog(dev Device) (*Log, error) {
	l := &Log{dev: dev, gen: make(chan struct{})}
	end, torn, err := scanEnd(dev)
	if err != nil {
		return nil, err
	}
	if torn {
		if terr := dev.Truncate(end); terr != nil {
			return nil, fmt.Errorf("wal: truncating torn tail at %d: %w", end, terr)
		}
	}
	l.size = end
	return l, nil
}

// scanEnd walks frames from offset 0 and returns the offset just past the
// last valid frame, distinguishing the two ways a log can end badly:
//
//   - torn tail: the trailing bytes are too short to hold the frame they
//     started (header or payload runs past the end of the device). That is
//     the signature of an append interrupted by a crash; the partial frame
//     was never synced, so recovery treats it as "never happened" and the
//     caller truncates it.
//   - mid-log corruption: a frame is fully present but its CRC or payload
//     fails to validate. Durable bytes were damaged; silently stopping here
//     would drop every later committed transaction, so it is an error
//     carrying the bad frame's offset.
func scanEnd(dev Device) (end int64, torn bool, err error) {
	size := dev.Size()
	var off int64
	for {
		_, next, err := ReadFrameAt(dev, off, size)
		switch {
		case err == nil:
			off = next
		case errors.Is(err, ErrIncomplete):
			return off, off < size, nil
		case errors.Is(err, ErrCorrupt):
			return off, false, err
		default:
			return 0, false, fmt.Errorf("wal: recovery read at %d: %w", off, err)
		}
	}
}

// Append encodes and appends a record, returning the offset of the frame's
// first byte. It does not sync; call Sync for durability.
func (l *Log) Append(r *Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := fault.Inject(fault.PointWALAppend); err != nil {
		return 0, err
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = r.encode(l.buf)
	payload := l.buf[frameHeader:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, crcTable))
	off := l.size
	if err := l.dev.Append(l.buf); err != nil {
		return 0, err
	}
	l.size += int64(len(l.buf))
	l.broadcastLocked()
	return off, nil
}

// broadcastLocked wakes all blocked readers; the caller holds l.mu.
func (l *Log) broadcastLocked() {
	close(l.gen)
	l.gen = make(chan struct{})
}

// AppendShipped ingests raw replicated log bytes (a follower receiving the
// leader's WAL over the network). The bytes land on the device verbatim;
// the committed size then advances over every newly complete, valid frame,
// waking blocked readers. A trailing partial frame stays on the device
// (uncommitted) until the next shipment completes it — exactly the torn
// tail NewLog truncates if the process restarts first. A CRC or payload
// violation in a complete frame surfaces as *CorruptError: replicated
// bytes were damaged in flight or at rest, and replaying past them would
// silently diverge from the leader.
//
// It returns the committed size after the shipment. AppendShipped and
// Append must not be mixed on one log: a replica's log is written only by
// its shipping stream.
func (l *Log) AppendShipped(p []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.size, ErrClosed
	}
	if len(p) == 0 {
		return l.size, nil
	}
	if err := l.dev.Append(p); err != nil {
		return l.size, err
	}
	limit := l.dev.Size()
	advanced := false
	for {
		_, next, err := ReadFrameAt(l.dev, l.size, limit)
		if err != nil {
			if errors.Is(err, ErrIncomplete) {
				break
			}
			if advanced {
				l.broadcastLocked()
			}
			return l.size, err
		}
		l.size = next
		advanced = true
	}
	if advanced {
		l.broadcastLocked()
	}
	return l.size, nil
}

// DeviceSize returns the raw device length, including any uncommitted
// partial frame a shipping stream has buffered past the committed size.
// A follower resumes shipping from here so a mid-frame disconnect does not
// re-request bytes it already holds.
func (l *Log) DeviceSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.Size()
}

// ReadCommitted reads committed log bytes (complete frames only) starting
// at off. It returns the number of bytes read; n == 0 with a nil error
// means the reader has caught up with the committed frontier. The leader's
// WAL-ship handler streams the log to followers with it.
func (l *Log) ReadCommitted(p []byte, off int64) (int, error) {
	l.mu.Lock()
	size := l.size
	l.mu.Unlock()
	if off >= size {
		return 0, nil
	}
	if max := size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := l.dev.ReadAt(p, off)
	if err == io.EOF && int64(n) == size-off {
		err = nil
	}
	return n, err
}

// Sync flushes the device.
func (l *Log) Sync() error {
	if err := fault.Inject(fault.PointWALSync); err != nil {
		return err
	}
	return l.dev.Sync()
}

// Size returns the log's current size in bytes (end of last complete frame).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close wakes all blocked readers and closes the device.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.broadcastLocked()
	l.mu.Unlock()
	return l.dev.Close()
}

// WaitBeyond blocks until the committed log extends past off, the log is
// closed (ErrClosed), or the context is done (ctx.Err()). Data available
// wins over close, so a drain loop alternating Next/WaitBeyond consumes
// every committed frame before seeing ErrClosed.
func (l *Log) WaitBeyond(ctx context.Context, off int64) error {
	for {
		l.mu.Lock()
		if l.size > off {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		ch := l.gen
		l.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// waitBeyond is WaitBeyond without cancellation, for in-process tailers.
func (l *Log) waitBeyond(off int64) error {
	return l.WaitBeyond(context.Background(), off)
}

// Reader tails the log from a byte offset. It is not goroutine-safe; use
// one Reader per consumer.
type Reader struct {
	log *Log
	off int64
}

// NewReader returns a reader positioned at offset off (0 = start of log).
func (l *Log) NewReader(off int64) *Reader { return &Reader{log: l, off: off} }

// Offset returns the reader's current byte offset.
func (r *Reader) Offset() int64 { return r.off }

// ErrNoMore indicates the reader has consumed all complete frames.
var ErrNoMore = errors.New("wal: no more records")

// Next returns the next record without blocking. It returns ErrNoMore when
// the reader has caught up with the log's committed frontier; a frame that
// is complete but invalid inside that frontier is *CorruptError.
func (r *Reader) Next() (*Record, error) {
	r.log.mu.Lock()
	size := r.log.size
	r.log.mu.Unlock()
	rec, next, err := ReadFrameAt(r.log.dev, r.off, size)
	if err != nil {
		if errors.Is(err, ErrIncomplete) {
			// The committed size only ever covers whole frames, so a short
			// read here just means "caught up", never "mid-frame".
			return nil, ErrNoMore
		}
		return nil, err
	}
	r.off = next
	return rec, nil
}

// NextBlocking returns the next record, waiting for one to be appended if
// necessary. It returns ErrClosed once the log is closed and drained.
func (r *Reader) NextBlocking() (*Record, error) {
	return r.NextBlockingContext(context.Background())
}

// NextBlockingContext is NextBlocking with cancellation: it additionally
// returns ctx.Err() once the context is done. Network delta subscribers
// and the shutdown drain use it so a blocked tailer can be detached
// without closing the log.
func (r *Reader) NextBlockingContext(ctx context.Context) (*Record, error) {
	for {
		rec, err := r.Next()
		if err == nil {
			return rec, nil
		}
		if !errors.Is(err, ErrNoMore) {
			return nil, err
		}
		if err := r.log.WaitBeyond(ctx, r.off); err != nil {
			return nil, err
		}
	}
}
