package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/fault"
)

// Device is the byte store underneath a Log: an append-only region that can
// also be read at arbitrary offsets (for tailing readers and recovery).
type Device interface {
	// Append writes p at the end of the device.
	Append(p []byte) error
	// ReadAt reads into p starting at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the current device length in bytes.
	Size() int64
	// Sync makes previous appends durable.
	Sync() error
	// Truncate cuts the device to n bytes (torn-tail repair on recovery).
	Truncate(n int64) error
	// Close releases the device.
	Close() error
}

// MemDevice is an in-memory Device used by tests, benchmarks, and purely
// in-process databases.
type MemDevice struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// NewMemDeviceFrom returns an in-memory device seeded with a copy of buf —
// how crash-recovery tests reopen a crash image.
func NewMemDeviceFrom(buf []byte) *MemDevice {
	return &MemDevice{buf: append([]byte(nil), buf...)}
}

// Append implements Device.
func (d *MemDevice) Append(p []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf, p...)
	d.mu.Unlock()
	return nil
}

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if off >= int64(len(d.buf)) {
		return 0, io.EOF
	}
	n := copy(p, d.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.buf))
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// Corrupt flips a byte at the given offset; used by recovery tests.
func (d *MemDevice) Corrupt(off int64) {
	d.mu.Lock()
	d.buf[off] ^= 0xFF
	d.mu.Unlock()
}

// Truncate implements Device.
func (d *MemDevice) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > int64(len(d.buf)) {
		return fmt.Errorf("wal: truncate to %d outside device of %d bytes", n, len(d.buf))
	}
	d.buf = d.buf[:n]
	return nil
}

// FileDevice is a file-backed Device.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if needed) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.WriteAt(p, d.size); err != nil {
		return err
	}
	d.size += int64(len(p))
	return nil
}

// ReadAt implements Device.
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) { return d.f.ReadAt(p, off) }

// Size implements Device.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Truncate implements Device.
func (d *FileDevice) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(n); err != nil {
		return err
	}
	d.size = n
	return nil
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// frame layout: 4-byte little-endian payload length, 4-byte CRC32C of the
// payload, then the payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by blocking reads after the log is closed.
var ErrClosed = errors.New("wal: log closed")

// CorruptError reports mid-log corruption: a fully present frame whose CRC
// or payload fails to validate. Unlike a torn tail — an append cut short by
// a crash, which recovery silently truncates — corruption inside the log
// body means durable data was damaged, and replaying past it could silently
// lose committed transactions, so it surfaces as an error with the frame's
// byte offset. errors.Is(err, ErrCorrupt) matches.
type CorruptError struct{ Offset int64 }

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt record at byte offset %d", e.Offset)
}

// Unwrap lets errors.Is match ErrCorrupt.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// Log is the append-only transaction log. Appends are serialized; any
// number of Readers may tail the log concurrently.
type Log struct {
	mu     sync.Mutex
	cond   *sync.Cond
	dev    Device
	size   int64 // committed log size (all complete frames)
	closed bool
	buf    []byte // append scratch buffer, reused under mu
}

// NewLog creates a log on the given device, scanning existing content to
// find the end of the last complete, uncorrupted frame (recovery). A torn
// tail — a final append cut short by a crash — is truncated away so new
// appends start at a frame boundary instead of interleaving with the
// garbage suffix; corruption inside the log body fails with *CorruptError.
func NewLog(dev Device) (*Log, error) {
	l := &Log{dev: dev}
	l.cond = sync.NewCond(&l.mu)
	end, torn, err := scanEnd(dev)
	if err != nil {
		return nil, err
	}
	if torn {
		if terr := dev.Truncate(end); terr != nil {
			return nil, fmt.Errorf("wal: truncating torn tail at %d: %w", end, terr)
		}
	}
	l.size = end
	return l, nil
}

// scanEnd walks frames from offset 0 and returns the offset just past the
// last valid frame, distinguishing the two ways a log can end badly:
//
//   - torn tail: the trailing bytes are too short to hold the frame they
//     started (header or payload runs past the end of the device). That is
//     the signature of an append interrupted by a crash; the partial frame
//     was never synced, so recovery treats it as "never happened" and the
//     caller truncates it.
//   - mid-log corruption: a frame is fully present but its CRC or payload
//     fails to validate. Durable bytes were damaged; silently stopping here
//     would drop every later committed transaction, so it is an error
//     carrying the bad frame's offset.
func scanEnd(dev Device) (end int64, torn bool, err error) {
	size := dev.Size()
	var off int64
	var hdr [frameHeader]byte
	for {
		if off+frameHeader > size {
			return off, off < size, nil // trailing bytes shorter than a header
		}
		if _, err := dev.ReadAt(hdr[:], off); err != nil {
			return 0, false, fmt.Errorf("wal: recovery read at %d: %w", off, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		next := off + frameHeader + int64(n)
		if next > size {
			// The payload (or a garbage length field from a torn header
			// write) runs past the device: torn tail either way.
			return off, true, nil
		}
		payload := make([]byte, n)
		if _, err := dev.ReadAt(payload, off+frameHeader); err != nil {
			return 0, false, fmt.Errorf("wal: recovery read at %d: %w", off+frameHeader, err)
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return off, false, &CorruptError{Offset: off}
		}
		if _, err := decodeRecord(payload); err != nil {
			return off, false, &CorruptError{Offset: off}
		}
		off = next
	}
}

// Append encodes and appends a record, returning the offset of the frame's
// first byte. It does not sync; call Sync for durability.
func (l *Log) Append(r *Record) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := fault.Inject(fault.PointWALAppend); err != nil {
		return 0, err
	}
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0)
	l.buf = r.encode(l.buf)
	payload := l.buf[frameHeader:]
	binary.LittleEndian.PutUint32(l.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, crcTable))
	off := l.size
	if err := l.dev.Append(l.buf); err != nil {
		return 0, err
	}
	l.size += int64(len(l.buf))
	l.cond.Broadcast()
	return off, nil
}

// Sync flushes the device.
func (l *Log) Sync() error {
	if err := fault.Inject(fault.PointWALSync); err != nil {
		return err
	}
	return l.dev.Sync()
}

// Size returns the log's current size in bytes (end of last complete frame).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Close wakes all blocked readers and closes the device.
func (l *Log) Close() error {
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return l.dev.Close()
}

// waitBeyond blocks until the log extends past off or the log is closed.
// It returns ErrClosed in the latter case.
func (l *Log) waitBeyond(off int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.size <= off && !l.closed {
		l.cond.Wait()
	}
	if l.size > off {
		return nil // data available wins over close
	}
	return ErrClosed
}

// Reader tails the log from a byte offset. It is not goroutine-safe; use
// one Reader per consumer.
type Reader struct {
	log *Log
	off int64
}

// NewReader returns a reader positioned at offset off (0 = start of log).
func (l *Log) NewReader(off int64) *Reader { return &Reader{log: l, off: off} }

// Offset returns the reader's current byte offset.
func (r *Reader) Offset() int64 { return r.off }

// ErrNoMore indicates the reader has consumed all complete frames.
var ErrNoMore = errors.New("wal: no more records")

// Next returns the next record without blocking. It returns ErrNoMore when
// the reader has caught up with the log.
func (r *Reader) Next() (*Record, error) {
	r.log.mu.Lock()
	size := r.log.size
	r.log.mu.Unlock()
	if r.off >= size {
		return nil, ErrNoMore
	}
	var hdr [frameHeader]byte
	if _, err := r.log.dev.ReadAt(hdr[:], r.off); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := r.log.dev.ReadAt(payload, r.off+frameHeader); err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, &CorruptError{Offset: r.off}
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, &CorruptError{Offset: r.off}
	}
	r.off += frameHeader + int64(n)
	return rec, nil
}

// NextBlocking returns the next record, waiting for one to be appended if
// necessary. It returns ErrClosed once the log is closed and drained.
func (r *Reader) NextBlocking() (*Record, error) {
	for {
		rec, err := r.Next()
		if err == nil {
			return rec, nil
		}
		if !errors.Is(err, ErrNoMore) {
			return nil, err
		}
		if err := r.log.waitBeyond(r.off); err != nil {
			return nil, err
		}
	}
}
