package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("len")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("get on empty")
	}
	if tr.Delete([]byte("x")) {
		t.Fatal("delete on empty")
	}
	if tr.First().Valid() || tr.Last().Valid() || tr.Seek([]byte("a")).Valid() {
		t.Fatal("iterators on empty tree should be invalid")
	}
}

func TestPutGetReplace(t *testing.T) {
	tr := New()
	if !tr.Put([]byte("a"), []byte("1")) {
		t.Fatal("insert should report true")
	}
	if tr.Put([]byte("a"), []byte("2")) {
		t.Fatal("replace should report false")
	}
	v, ok := tr.Get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf("get: %q %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatal("len after replace")
	}
}

func TestInsertDeleteSequential(t *testing.T) {
	tr := New()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Put(key(i), key(i*2))
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || !bytes.Equal(v, key(i*2)) {
			t.Fatalf("get %d failed", i)
		}
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("len after deletes = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("get %d = %v, want %v", i, ok, want)
		}
	}
}

func TestRandomAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New()
	ref := make(map[string]string)
	for op := 0; op < 50000; op++ {
		k := fmt.Sprintf("k%05d", r.Intn(3000))
		switch r.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d", op)
			tr.Put([]byte(k), []byte(v))
			ref[k] = v
		case 2:
			got := tr.Delete([]byte(k))
			_, want := ref[k]
			if got != want {
				t.Fatalf("delete %q = %v, want %v", k, got, want)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("len %d != %d", tr.Len(), len(ref))
	}
	// Verify full scan matches sorted reference.
	keys := make([]string, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	for it := tr.First(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] || string(it.Value()) != ref[keys[i]] {
			t.Fatalf("scan mismatch at %d: %q", i, it.Key())
		}
		i++
	}
	if i != len(keys) {
		t.Fatalf("scan count %d != %d", i, len(keys))
	}
	// And in reverse.
	i = len(keys) - 1
	for it := tr.Last(); it.Valid(); it.Prev() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("reverse scan mismatch at %d", i)
		}
		i--
	}
	if i != -1 {
		t.Fatalf("reverse scan stopped at %d", i)
	}
}

func TestSeek(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i += 10 {
		tr.Put(key(i), nil)
	}
	it := tr.Seek(key(35))
	if !it.Valid() || !bytes.Equal(it.Key(), key(40)) {
		t.Fatal("seek 35 should land on 40")
	}
	it = tr.Seek(key(40))
	if !it.Valid() || !bytes.Equal(it.Key(), key(40)) {
		t.Fatal("seek 40 should land on 40")
	}
	it = tr.Seek(key(95))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
	it = tr.SeekReverse(key(35))
	if !it.Valid() || !bytes.Equal(it.Key(), key(30)) {
		t.Fatal("seek-reverse 35 should land on 30")
	}
	it = tr.SeekReverse(key(30))
	if !it.Valid() || !bytes.Equal(it.Key(), key(30)) {
		t.Fatal("seek-reverse 30 should land on 30")
	}
	it = tr.SeekReverse(key(5))
	if !it.Valid() || !bytes.Equal(it.Key(), key(0)) {
		t.Fatal("seek-reverse 5 should land on 0")
	}
	tr.Delete(key(0))
	it = tr.SeekReverse(key(5))
	if it.Valid() {
		t.Fatal("seek-reverse before start should be invalid")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Put(key(i), nil)
	}
	var got []int
	tr.Ascend(key(10), key(20), func(k, _ []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range scan: %v", got)
	}
	// Early stop.
	count := 0
	tr.Ascend(nil, nil, func(_, _ []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop: %d", count)
	}
}

func TestQuickInsertLookup(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		ref := make(map[string][]byte)
		for i, k := range keys {
			v := []byte(fmt.Sprint(i))
			tr.Put(k, v)
			ref[string(k)] = v
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr := New()
	const n = 2000
	order := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range order {
		tr.Put(key(i), key(i))
	}
	for _, i := range order {
		if !tr.Delete(key(i)) {
			t.Fatalf("delete %d", i)
		}
	}
	if tr.Len() != 0 || tr.First().Valid() {
		t.Fatal("tree should be empty")
	}
	// Tree must remain usable after full drain.
	tr.Put(key(7), key(7))
	if v, ok := tr.Get(key(7)); !ok || !bytes.Equal(v, key(7)) {
		t.Fatal("reuse after drain")
	}
}

func BenchmarkTreePut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), nil)
	}
}

func BenchmarkTreeGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}
