// Package btree implements an in-memory B+ tree keyed on byte slices.
//
// It backs the storage engine's heap tables, secondary indexes, and the
// timestamp-ordered delta tables. Keys are unique; the caller appends a
// uniquifier when multiset semantics are needed. The tree is not
// goroutine-safe: the engine serializes access through its lock manager and
// latches.
package btree

import "bytes"

const (
	// maxKeys is the fan-out: a node splits when it exceeds maxKeys entries.
	maxKeys = 64
	minKeys = maxKeys / 2
)

type node struct {
	// keys holds the separator keys (internal) or entry keys (leaf).
	keys [][]byte
	// children is populated for internal nodes: len(children) == len(keys)+1.
	children []*node
	// vals is populated for leaves: len(vals) == len(keys).
	vals [][]byte
	// next and prev link leaves for range scans.
	next, prev *node
	leaf       bool
}

// Tree is an in-memory B+ tree mapping byte-slice keys to byte-slice values.
// The zero value is not usable; call New.
type Tree struct {
	root  *node
	first *node // leftmost leaf
	last  *node // rightmost leaf
	size  int
}

// New returns an empty tree.
func New() *Tree {
	leaf := &node{leaf: true}
	return &Tree{root: leaf, first: leaf, last: leaf}
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// search returns the index of the first key in n.keys >= key, and whether it
// is an exact match.
func search(n *node, key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, exact
}

// Get returns the value stored at key, or (nil, false) if absent. The
// returned slice must not be modified.
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		i, exact := search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	i, exact := search(n, key)
	if !exact {
		return nil, false
	}
	return n.vals[i], true
}

// Put inserts or replaces the value at key. It returns true if the key was
// newly inserted (false if an existing value was replaced). Key and value
// are retained; callers must not modify them afterwards.
func (t *Tree) Put(key, value []byte) bool {
	inserted, splitKey, sibling := t.insert(t.root, key, value)
	if sibling != nil {
		newRoot := &node{
			keys:     [][]byte{splitKey},
			children: []*node{t.root, sibling},
		}
		t.root = newRoot
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert recursively inserts into n. If n splits, it returns the separator
// key and the new right sibling.
func (t *Tree) insert(n *node, key, value []byte) (inserted bool, splitKey []byte, sibling *node) {
	if n.leaf {
		i, exact := search(n, key)
		if exact {
			n.vals[i] = value
			return false, nil, nil
		}
		n.keys = insertAt(n.keys, i, key)
		n.vals = insertAt(n.vals, i, value)
		if len(n.keys) > maxKeys {
			splitKey, sibling = t.splitLeaf(n)
		}
		return true, splitKey, sibling
	}
	i, exact := search(n, key)
	if exact {
		i++
	}
	inserted, childKey, childSib := t.insert(n.children[i], key, value)
	if childSib != nil {
		n.keys = insertAt(n.keys, i, childKey)
		n.children = insertNodeAt(n.children, i+1, childSib)
		if len(n.keys) > maxKeys {
			splitKey, sibling = t.splitInternal(n)
		}
	}
	return inserted, splitKey, sibling
}

func (t *Tree) splitLeaf(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	sib := &node{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([][]byte(nil), n.vals[mid:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.vals = n.vals[:mid:mid]
	sib.next = n.next
	sib.prev = n
	if n.next != nil {
		n.next.prev = sib
	} else {
		t.last = sib
	}
	n.next = sib
	return sib.keys[0], sib
}

func (t *Tree) splitInternal(n *node) ([]byte, *node) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	sib := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, sib
}

// Delete removes the entry at key, returning true if it existed.
func (t *Tree) Delete(key []byte) bool {
	deleted := t.remove(t.root, key)
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree) remove(n *node, key []byte) bool {
	if n.leaf {
		i, exact := search(n, key)
		if !exact {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}
	i, exact := search(n, key)
	if exact {
		i++
	}
	child := n.children[i]
	if !t.remove(child, key) {
		return false
	}
	if len(child.keys) < minKeys {
		t.rebalance(n, i)
	}
	return true
}

// rebalance fixes an underfull child at index i of parent p by borrowing
// from or merging with a sibling.
func (t *Tree) rebalance(p *node, i int) {
	child := p.children[i]
	// Try borrowing from the left sibling.
	if i > 0 {
		left := p.children[i-1]
		if len(left.keys) > minKeys {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				v := left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = insertAt(child.keys, 0, k)
				child.vals = insertAt(child.vals, 0, v)
				p.keys[i-1] = child.keys[0]
			} else {
				child.keys = insertAt(child.keys, 0, p.keys[i-1])
				p.keys[i-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				c := left.children[len(left.children)-1]
				left.children = left.children[:len(left.children)-1]
				child.children = insertNodeAt(child.children, 0, c)
			}
			return
		}
	}
	// Try borrowing from the right sibling.
	if i < len(p.children)-1 {
		right := p.children[i+1]
		if len(right.keys) > minKeys {
			if child.leaf {
				k := right.keys[0]
				v := right.vals[0]
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				child.keys = append(child.keys, k)
				child.vals = append(child.vals, v)
				p.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, p.keys[i])
				p.keys[i] = right.keys[0]
				right.keys = removeAt(right.keys, 0)
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
			return
		}
	}
	// Merge with a sibling.
	if i > 0 {
		t.merge(p, i-1)
	} else {
		t.merge(p, i)
	}
}

// merge combines p.children[i] and p.children[i+1] into the left child.
func (t *Tree) merge(p *node, i int) {
	left, right := p.children[i], p.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		if right.next != nil {
			right.next.prev = left
		} else {
			t.last = left
		}
	} else {
		left.keys = append(left.keys, p.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	p.keys = removeAt(p.keys, i)
	p.children = removeNodeAt(p.children, i+1)
}

func insertAt(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeAt(s [][]byte, i int) [][]byte {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func removeNodeAt(s []*node, i int) []*node {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
