package btree

import "bytes"

// Iterator walks tree entries in key order. A freshly positioned iterator
// (via Seek/First/Last) is already on its first entry if Valid reports true.
// Mutating the tree invalidates outstanding iterators.
type Iterator struct {
	tree *Tree
	node *node
	idx  int
}

// First positions the iterator on the smallest key.
func (t *Tree) First() *Iterator {
	it := &Iterator{tree: t, node: t.first, idx: 0}
	it.skipEmptyForward()
	return it
}

// Last positions the iterator on the largest key.
func (t *Tree) Last() *Iterator {
	it := &Iterator{tree: t, node: t.last, idx: len(t.last.keys) - 1}
	it.skipEmptyBackward()
	return it
}

// Seek positions the iterator on the first key >= key.
func (t *Tree) Seek(key []byte) *Iterator {
	n := t.root
	for !n.leaf {
		i, exact := search(n, key)
		if exact {
			i++
		}
		n = n.children[i]
	}
	i, _ := search(n, key)
	it := &Iterator{tree: t, node: n, idx: i}
	it.skipEmptyForward()
	return it
}

// SeekReverse positions the iterator on the last key <= key, for descending
// iteration via Prev.
func (t *Tree) SeekReverse(key []byte) *Iterator {
	it := t.Seek(key)
	if it.Valid() && bytes.Equal(it.Key(), key) {
		return it
	}
	it.Prev()
	return it
}

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool {
	return it.node != nil && it.idx >= 0 && it.idx < len(it.node.keys)
}

// Key returns the current key. The slice must not be modified.
func (it *Iterator) Key() []byte { return it.node.keys[it.idx] }

// Value returns the current value. The slice must not be modified.
func (it *Iterator) Value() []byte { return it.node.vals[it.idx] }

// Next advances to the next entry in ascending order.
func (it *Iterator) Next() {
	it.idx++
	it.skipEmptyForward()
}

// Prev moves to the previous entry in descending order.
func (it *Iterator) Prev() {
	it.idx--
	it.skipEmptyBackward()
}

func (it *Iterator) skipEmptyForward() {
	for it.node != nil && it.idx >= len(it.node.keys) {
		it.node = it.node.next
		it.idx = 0
	}
}

func (it *Iterator) skipEmptyBackward() {
	for it.node != nil && it.idx < 0 {
		it.node = it.node.prev
		if it.node != nil {
			it.idx = len(it.node.keys) - 1
		}
	}
}

// Ascend calls fn for every entry with start <= key < end in ascending
// order, stopping early if fn returns false. A nil end means no upper bound;
// a nil start means iterate from the beginning.
func (t *Tree) Ascend(start, end []byte, fn func(key, value []byte) bool) {
	var it *Iterator
	if start == nil {
		it = t.First()
	} else {
		it = t.Seek(start)
	}
	for ; it.Valid(); it.Next() {
		if end != nil && bytes.Compare(it.Key(), end) >= 0 {
			return
		}
		if !fn(it.Key(), it.Value()) {
			return
		}
	}
}
