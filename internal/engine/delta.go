package engine

import (
	"encoding/binary"
	"sync"

	"repro/internal/btree"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// DeltaTable is Δ^R: the timestamped change table for a base table or view.
// Rows carry the base schema plus the count and timestamp attributes of
// Section 2 of the paper, stored ordered by (timestamp, sequence) so that
// the window selection σ_{a,b} is a range scan.
//
// Base-table delta tables are appended by the capture process; view delta
// tables are appended by propagation-query transactions.
//
// Like its base table, a delta table can be hash-partitioned: with
// Partitions = N > 1, a change record lives in shard
// hashPart(row[partCol], N). The sequence counter stays global, so keys
// remain unique across shards and a merged iteration reproduces exactly
// the single-tree (timestamp, sequence) order; WindowPart exposes the
// per-partition delta cursor that partitioned propagation and cache
// maintenance consume.
type DeltaTable struct {
	base   string
	schema *tuple.Schema

	nparts  int
	partCol int

	latch  sync.RWMutex
	shards []*btree.Tree // (ts 8B BE, seq 8B BE) -> (count varint, row)
	seq    uint64
	pruned relalg.CSN // highest PruneThrough bound ever applied

	// onAppend, when set, is called after a successful append with the
	// record's partition and partition-column value, outside the latch
	// (frequency sketch and per-partition counters; see heavy.go).
	onAppend func(part int, key tuple.Value)
}

func newDeltaTable(base string, schema *tuple.Schema, nparts, partCol int) *DeltaTable {
	if nparts < 1 {
		nparts = 1
	}
	shards := make([]*btree.Tree, nparts)
	for i := range shards {
		shards[i] = btree.New()
	}
	return &DeltaTable{base: base, schema: schema, nparts: nparts, partCol: partCol, shards: shards}
}

// Base returns the name of the table this delta describes.
func (d *DeltaTable) Base() string { return d.base }

// Schema returns the schema of the described table (count and timestamp are
// implicit, carried by the relation rows).
func (d *DeltaTable) Schema() *tuple.Schema { return d.schema }

// Partitions returns the delta table's hash-partition count.
func (d *DeltaTable) Partitions() int { return d.nparts }

// Len returns the number of stored delta rows.
func (d *DeltaTable) Len() int {
	d.latch.RLock()
	defer d.latch.RUnlock()
	n := 0
	for _, sh := range d.shards {
		n += sh.Len()
	}
	return n
}

// PartLen returns the number of stored delta rows in partition p.
func (d *DeltaTable) PartLen(p int) int {
	d.latch.RLock()
	defer d.latch.RUnlock()
	if p < 0 || p >= len(d.shards) {
		return 0
	}
	return d.shards[p].Len()
}

func deltaKey(ts relalg.CSN, seq uint64) []byte {
	// One spare byte of capacity so appending the shard to form the
	// Append/AppendEncoded handle extends in place instead of reallocating.
	b := make([]byte, 16, 17)
	binary.BigEndian.PutUint64(b[0:8], uint64(ts))
	binary.BigEndian.PutUint64(b[8:16], seq)
	return b
}

func encodeDeltaVal(count int64, row tuple.Tuple) []byte {
	out := binary.AppendVarint(nil, count)
	return tuple.EncodeRow(out, row)
}

func decodeDeltaVal(b []byte) (int64, tuple.Tuple) {
	count, n := binary.Varint(b)
	if n <= 0 {
		panic("engine: corrupt delta value")
	}
	row, _, err := tuple.DecodeRow(b[n:])
	if err != nil {
		panic("engine: corrupt delta row: " + err.Error())
	}
	return count, row
}

// partFor returns the shard a change record for row routes to.
func (d *DeltaTable) partFor(row tuple.Tuple) int {
	if d.nparts <= 1 {
		return 0
	}
	return hashPart(row[d.partCol], d.nparts)
}

// Append adds one change record with the given timestamp and count. It
// returns a handle that Remove accepts (for transactional undo).
func (d *DeltaTable) Append(ts relalg.CSN, count int64, row tuple.Tuple) (handle []byte) {
	d.latch.Lock()
	d.seq++
	part := d.partFor(row)
	k := deltaKey(ts, d.seq)
	d.shards[part].Put(k, encodeDeltaVal(count, row))
	note := d.onAppend
	d.latch.Unlock()
	if note != nil {
		note(part, row[d.partCol])
	}
	// The handle carries the shard so Remove routes without rehashing.
	return append(k, byte(part))
}

// AppendEncoded adds one change record whose row is already in
// tuple.EncodeRow form — the columnar propagation egress, which
// serializes straight from batch columns without materializing tuples.
// partVal must be the row's partition-column value (it routes the shard
// and feeds the append hook). The encoded row is copied into a fresh
// value buffer, so the caller may reuse encRow.
func (d *DeltaTable) AppendEncoded(ts relalg.CSN, count int64, encRow []byte, partVal tuple.Value) (handle []byte) {
	// One allocation per record, laid out [16-byte key | shard byte |
	// value]: the btree retains the key and value slices (it never
	// mutates them, so sharing one backing array is safe), and the
	// 17-byte prefix is the handle. The key's capacity is clamped so no
	// later append through it can reach the value bytes.
	buf := make([]byte, 17, 17+binary.MaxVarintLen64+len(encRow))
	buf = binary.AppendVarint(buf, count)
	buf = append(buf, encRow...)
	d.latch.Lock()
	d.seq++
	part := 0
	if d.nparts > 1 {
		part = hashPart(partVal, d.nparts)
	}
	binary.BigEndian.PutUint64(buf[0:8], uint64(ts))
	binary.BigEndian.PutUint64(buf[8:16], d.seq)
	buf[16] = byte(part)
	d.shards[part].Put(buf[:16:16], buf[17:])
	note := d.onAppend
	d.latch.Unlock()
	if note != nil {
		note(part, partVal)
	}
	return buf[:17]
}

// Remove deletes a previously appended record by handle (undo path).
func (d *DeltaTable) Remove(handle []byte) {
	d.latch.Lock()
	defer d.latch.Unlock()
	if len(handle) == 17 {
		d.shards[int(handle[16])].Delete(handle[:16])
		return
	}
	for _, sh := range d.shards {
		if sh.Delete(handle) {
			return
		}
	}
}

// ascendMerged iterates the union of the shard trees in key order (the
// global (timestamp, sequence) order), calling fn until it returns false.
// Keys are globally unique (one sequence counter), so the merged order is
// exactly the order of the unpartitioned single tree. Caller holds the
// latch.
func (d *DeltaTable) ascendMerged(start, end []byte, fn func(k, v []byte) bool) {
	if len(d.shards) == 1 {
		d.shards[0].Ascend(start, end, fn)
		return
	}
	its := make([]*btree.Iterator, 0, len(d.shards))
	for _, sh := range d.shards {
		var it *btree.Iterator
		if start == nil {
			it = sh.First()
		} else {
			it = sh.Seek(start)
		}
		if it.Valid() {
			its = append(its, it)
		}
	}
	for {
		best := -1
		for i, it := range its {
			if !it.Valid() {
				continue
			}
			if best < 0 || string(it.Key()) < string(its[best].Key()) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		it := its[best]
		if end != nil && string(it.Key()) >= string(end) {
			return
		}
		if !fn(it.Key(), it.Value()) {
			return
		}
		it.Next()
	}
}

// Window materializes σ_{lo,hi}: all rows with lo < ts <= hi, in timestamp
// order. The caller is responsible for ensuring the window is closed (the
// capture process has progressed past hi) so the result is immutable.
func (d *DeltaTable) Window(lo, hi relalg.CSN) *relalg.Relation {
	return d.WindowSpec(nil, lo, hi)
}

// WindowPart materializes the slice of σ_{lo,hi} that falls in hash
// partition p: the per-partition delta cursor.
func (d *DeltaTable) WindowPart(p int, lo, hi relalg.CSN) *relalg.Relation {
	out := relalg.NewRelation(d.schema)
	if hi <= lo || p < 0 || p >= len(d.shards) {
		return out
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	d.shards[p].Ascend(deltaKey(lo+1, 0), deltaKey(hi+1, 0), func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(v)
		out.Add(row, count, ts)
		return true
	})
	return out
}

// WindowSpec materializes the slice of σ_{lo,hi} selected by spec (nil =
// the full window).
func (d *DeltaTable) WindowSpec(spec *PartSpec, lo, hi relalg.CSN) *relalg.Relation {
	out := relalg.NewRelation(d.schema)
	if hi <= lo {
		return out
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	start := deltaKey(lo+1, 0)
	end := deltaKey(hi+1, 0)
	add := func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(v)
		if spec.sliced() && !spec.admits(row[d.partCol], spec.N == d.nparts) {
			return true
		}
		out.Add(row, count, ts)
		return true
	}
	if spec.sliced() && spec.N == d.nparts {
		d.shards[spec.shard()].Ascend(start, end, add)
	} else {
		d.ascendMerged(start, end, add)
	}
	return out
}

// WindowEach streams σ_{lo,hi} in (timestamp, sequence) order without
// materializing a relation: fn receives each record's timestamp, count,
// and encoded row (valid only for the duration of the call — the
// consumer must copy bytes it keeps). The incremental aggregate operator
// folds upstream delta windows through it, decoding values in place. The
// latch is held across the iteration, so fn must not call back into the
// delta table.
func (d *DeltaTable) WindowEach(lo, hi relalg.CSN, fn func(ts relalg.CSN, count int64, encRow []byte) error) error {
	if hi <= lo {
		return nil
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	var err error
	d.ascendMerged(deltaKey(lo+1, 0), deltaKey(hi+1, 0), func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, n := binary.Varint(v)
		if n <= 0 {
			panic("engine: corrupt delta value")
		}
		err = fn(ts, count, v[n:])
		return err == nil
	})
	return err
}

// SliceEmpty reports whether the slice of σ_{lo,hi} selected by spec has
// no rows (a cheap pre-check before spawning a per-partition propagation
// job).
func (d *DeltaTable) SliceEmpty(spec *PartSpec, lo, hi relalg.CSN) bool {
	if hi <= lo {
		return true
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	start := deltaKey(lo+1, 0)
	end := deltaKey(hi+1, 0)
	empty := true
	probe := func(k, v []byte) bool {
		if spec.sliced() {
			_, row := decodeDeltaVal(v)
			if !spec.admits(row[d.partCol], spec.N == d.nparts) {
				return true
			}
		}
		empty = false
		return false
	}
	if spec.sliced() && spec.N == d.nparts {
		d.shards[spec.shard()].Ascend(start, end, probe)
	} else {
		d.ascendMerged(start, end, probe)
	}
	return empty
}

// All materializes the entire delta table in timestamp order.
func (d *DeltaTable) All() *relalg.Relation {
	out := relalg.NewRelation(d.schema)
	d.latch.RLock()
	defer d.latch.RUnlock()
	d.ascendMerged(nil, nil, func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(v)
		out.Add(row, count, ts)
		return true
	})
	return out
}

// PruneThrough deletes all rows with ts <= hi and returns how many were
// removed. The apply process prunes view deltas it has applied; capture
// checkpoints prune base deltas below every view's materialization point.
func (d *DeltaTable) PruneThrough(hi relalg.CSN) int {
	d.latch.Lock()
	defer d.latch.Unlock()
	if hi > d.pruned {
		d.pruned = hi
	}
	n := 0
	end := deltaKey(hi+1, 0)
	for _, sh := range d.shards {
		var doomed [][]byte
		sh.Ascend(nil, end, func(k, _ []byte) bool {
			doomed = append(doomed, k)
			return true
		})
		for _, k := range doomed {
			sh.Delete(k)
		}
		n += len(doomed)
	}
	return n
}

// PrunedThrough returns the highest timestamp bound ever passed to
// PruneThrough: windows starting below it may be missing rows. The join-state
// cache checks it before folding a maintenance window into a cached index.
func (d *DeltaTable) PrunedThrough() relalg.CSN {
	d.latch.RLock()
	defer d.latch.RUnlock()
	return d.pruned
}

// PendingAfter counts rows with ts > after, stopping once limit rows have
// been seen (limit <= 0 counts all). It is the scheduler's backpressure
// probe — pending un-applied view-delta rows between the materialization
// time and the high-water mark — so it never materializes rows and walks
// at most limit entries.
func (d *DeltaTable) PendingAfter(after relalg.CSN, limit int) int {
	d.latch.RLock()
	defer d.latch.RUnlock()
	n := 0
	start := deltaKey(after+1, 0)
	for _, sh := range d.shards {
		sh.Ascend(start, nil, func(_, _ []byte) bool {
			n++
			return limit <= 0 || n < limit
		})
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// MaxTS returns the largest timestamp present (NullTS if empty).
func (d *DeltaTable) MaxTS() relalg.CSN {
	d.latch.RLock()
	defer d.latch.RUnlock()
	max := relalg.NullTS
	for _, sh := range d.shards {
		it := sh.Last()
		if !it.Valid() {
			continue
		}
		ts := relalg.CSN(binary.BigEndian.Uint64(it.Key()[0:8]))
		if max == relalg.NullTS || ts > max {
			max = ts
		}
	}
	return max
}
