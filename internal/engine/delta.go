package engine

import (
	"encoding/binary"
	"sync"

	"repro/internal/btree"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// DeltaTable is Δ^R: the timestamped change table for a base table or view.
// Rows carry the base schema plus the count and timestamp attributes of
// Section 2 of the paper, stored ordered by (timestamp, sequence) so that
// the window selection σ_{a,b} is a range scan.
//
// Base-table delta tables are appended by the capture process; view delta
// tables are appended by propagation-query transactions.
type DeltaTable struct {
	base   string
	schema *tuple.Schema

	latch  sync.RWMutex
	tree   *btree.Tree // (ts 8B BE, seq 8B BE) -> (count varint, row)
	seq    uint64
	pruned relalg.CSN // highest PruneThrough bound ever applied
}

func newDeltaTable(base string, schema *tuple.Schema) *DeltaTable {
	return &DeltaTable{base: base, schema: schema, tree: btree.New()}
}

// Base returns the name of the table this delta describes.
func (d *DeltaTable) Base() string { return d.base }

// Schema returns the schema of the described table (count and timestamp are
// implicit, carried by the relation rows).
func (d *DeltaTable) Schema() *tuple.Schema { return d.schema }

// Len returns the number of stored delta rows.
func (d *DeltaTable) Len() int {
	d.latch.RLock()
	defer d.latch.RUnlock()
	return d.tree.Len()
}

func deltaKey(ts relalg.CSN, seq uint64) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(ts))
	binary.BigEndian.PutUint64(b[8:16], seq)
	return b[:]
}

func encodeDeltaVal(count int64, row tuple.Tuple) []byte {
	out := binary.AppendVarint(nil, count)
	return tuple.EncodeRow(out, row)
}

func decodeDeltaVal(b []byte) (int64, tuple.Tuple) {
	count, n := binary.Varint(b)
	if n <= 0 {
		panic("engine: corrupt delta value")
	}
	row, _, err := tuple.DecodeRow(b[n:])
	if err != nil {
		panic("engine: corrupt delta row: " + err.Error())
	}
	return count, row
}

// Append adds one change record with the given timestamp and count. It
// returns a handle that Remove accepts (for transactional undo).
func (d *DeltaTable) Append(ts relalg.CSN, count int64, row tuple.Tuple) (handle []byte) {
	d.latch.Lock()
	defer d.latch.Unlock()
	d.seq++
	k := deltaKey(ts, d.seq)
	d.tree.Put(k, encodeDeltaVal(count, row))
	return k
}

// Remove deletes a previously appended record by handle (undo path).
func (d *DeltaTable) Remove(handle []byte) {
	d.latch.Lock()
	defer d.latch.Unlock()
	d.tree.Delete(handle)
}

// Window materializes σ_{lo,hi}: all rows with lo < ts <= hi, in timestamp
// order. The caller is responsible for ensuring the window is closed (the
// capture process has progressed past hi) so the result is immutable.
func (d *DeltaTable) Window(lo, hi relalg.CSN) *relalg.Relation {
	out := relalg.NewRelation(d.schema)
	if hi <= lo {
		return out
	}
	d.latch.RLock()
	defer d.latch.RUnlock()
	start := deltaKey(lo+1, 0)
	end := deltaKey(hi+1, 0)
	d.tree.Ascend(start, end, func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(v)
		out.Add(row, count, ts)
		return true
	})
	return out
}

// All materializes the entire delta table in timestamp order.
func (d *DeltaTable) All() *relalg.Relation {
	out := relalg.NewRelation(d.schema)
	d.latch.RLock()
	defer d.latch.RUnlock()
	d.tree.Ascend(nil, nil, func(k, v []byte) bool {
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(v)
		out.Add(row, count, ts)
		return true
	})
	return out
}

// PruneThrough deletes all rows with ts <= hi and returns how many were
// removed. The apply process prunes view deltas it has applied; capture
// checkpoints prune base deltas below every view's materialization point.
func (d *DeltaTable) PruneThrough(hi relalg.CSN) int {
	d.latch.Lock()
	defer d.latch.Unlock()
	if hi > d.pruned {
		d.pruned = hi
	}
	var doomed [][]byte
	end := deltaKey(hi+1, 0)
	d.tree.Ascend(nil, end, func(k, _ []byte) bool {
		doomed = append(doomed, k)
		return true
	})
	for _, k := range doomed {
		d.tree.Delete(k)
	}
	return len(doomed)
}

// PrunedThrough returns the highest timestamp bound ever passed to
// PruneThrough: windows starting below it may be missing rows. The join-state
// cache checks it before folding a maintenance window into a cached index.
func (d *DeltaTable) PrunedThrough() relalg.CSN {
	d.latch.RLock()
	defer d.latch.RUnlock()
	return d.pruned
}

// PendingAfter counts rows with ts > after, stopping once limit rows have
// been seen (limit <= 0 counts all). It is the scheduler's backpressure
// probe — pending un-applied view-delta rows between the materialization
// time and the high-water mark — so it never materializes rows and walks
// at most limit entries.
func (d *DeltaTable) PendingAfter(after relalg.CSN, limit int) int {
	d.latch.RLock()
	defer d.latch.RUnlock()
	n := 0
	start := deltaKey(after+1, 0)
	d.tree.Ascend(start, nil, func(_, _ []byte) bool {
		n++
		return limit <= 0 || n < limit
	})
	return n
}

// MaxTS returns the largest timestamp present (NullTS if empty).
func (d *DeltaTable) MaxTS() relalg.CSN {
	d.latch.RLock()
	defer d.latch.RUnlock()
	it := d.tree.Last()
	if !it.Valid() {
		return relalg.NullTS
	}
	return relalg.CSN(binary.BigEndian.Uint64(it.Key()[0:8]))
}
