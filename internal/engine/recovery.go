package engine

import (
	"errors"
	"fmt"

	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// Recover replays the write-ahead log into the base tables, restoring the
// committed state from a previous process. Call it after re-creating the
// catalog (tables, deltas, indexes) and before accepting new transactions;
// the commit-sequence counter resumes after the highest replayed CSN.
//
// Changes of transactions without a commit record are discarded, matching
// the recovery semantics of the log (an unfinished transaction never
// happened). The capture process reads the same log independently to
// rebuild the delta tables, so after Recover plus capture catch-up the
// whole system is back to its pre-crash state.
func (db *DB) Recover() (relalg.CSN, error) { return db.recover(0) }

// recover replays committed transactions from the given byte offset of the
// log into the base tables.
func (db *DB) recover(offset int64) (relalg.CSN, error) {
	type change struct {
		table string
		row   tuple.Tuple
		count int64
	}
	pending := make(map[uint64][]change)
	var maxCSN relalg.CSN

	r := db.log.NewReader(offset)
	for {
		rec, err := r.Next()
		if errors.Is(err, wal.ErrNoMore) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("engine: recovery: %w", err)
		}
		switch rec.Type {
		case wal.TypeBegin:
		case wal.TypeInsert:
			pending[rec.TxID] = append(pending[rec.TxID], change{rec.Table, rec.Row, +1})
		case wal.TypeDelete:
			pending[rec.TxID] = append(pending[rec.TxID], change{rec.Table, rec.Row, -1})
		case wal.TypeAbort:
			delete(pending, rec.TxID)
		case wal.TypeCommit:
			for _, ch := range pending[rec.TxID] {
				t, err := db.Table(ch.table)
				if err != nil {
					return 0, fmt.Errorf("engine: recovery: log references unknown table %q; recreate the catalog first", ch.table)
				}
				if ch.count > 0 {
					t.putCommitted(ch.row)
				} else {
					if !t.removeMatching(ch.row) {
						return 0, fmt.Errorf("engine: recovery: delete of missing row %s in %q", ch.row, ch.table)
					}
				}
			}
			delete(pending, rec.TxID)
			if rec.CSN > maxCSN {
				maxCSN = rec.CSN
			}
		}
	}
	db.tm.Recover(maxCSN)
	// Replay wrote base tables without producing capture deltas; any cached
	// join state predating the replay can no longer be maintained forward.
	db.InvalidateJoinCache()
	return maxCSN, nil
}

// removeMatching deletes one row exactly equal to the tuple, returning
// whether one was found. Latch-only; used by recovery, which runs before
// concurrent access starts.
func (t *Table) removeMatching(row tuple.Tuple) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	// A row replayed by recovery routes to the same shard a live insert
	// would, so only that shard can hold a match.
	sh := t.shards[t.shardForRow(row)]
	var foundKey []byte
	it := sh.First()
	for ; it.Valid(); it.Next() {
		_, dead, got := decodeVersionedRow(it.Value())
		if dead != csnNone {
			continue
		}
		if got.Equal(row) {
			foundKey = append([]byte(nil), it.Key()...)
			break
		}
	}
	if foundKey == nil {
		return false
	}
	sh.Delete(foundKey)
	for _, ix := range t.indexes {
		ix.remove(row[ix.column], rowidFromKey(foundKey))
	}
	return true
}
