package engine

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// This file implements checkpointing: a snapshot of the committed database
// state (base tables, delta tables, commit counter, and the log offset the
// snapshot corresponds to). Restoring a snapshot and replaying the log
// suffix past its offset reproduces the full state without rereading the
// whole log — the standard checkpoint/redo recovery structure.
//
// Snapshots must be taken quiescently: no in-flight write transactions and
// capture caught up to the last commit. The facade arranges this by
// suspending view propagation and holding table S locks.

const (
	snapshotMagic   = 0x524a4c53 // "RJLS"
	snapshotVersion = 1
)

var errBadSnapshot = errors.New("engine: corrupt snapshot")

type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crcTableIEEE, p)
	return cw.w.Write(p)
}

var crcTableIEEE = crc32.MakeTable(crc32.IEEE)

func newCRCWriter(w io.Writer) *crcWriter { return &crcWriter{w: bufio.NewWriter(w)} }

func newCRCReader(r io.Reader) *crcReader { return &crcReader{r: bufio.NewReader(r)} }

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeBytes(w io.Writer, b []byte) error {
	if err := writeUvarint(w, uint64(len(b))); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// WriteSnapshot serializes the current committed state to w. logOffset is
// the WAL position the snapshot corresponds to (everything at or before it
// is included; records after it must be replayed on restore).
func (db *DB) WriteSnapshot(w io.Writer, logOffset int64) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], snapshotVersion)
	if _, err := cw.Write(hdr[:8]); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(logOffset)); err != nil {
		return err
	}
	if err := writeUvarint(cw, uint64(db.LastCSN())); err != nil {
		return err
	}

	// Base tables, sorted for determinism.
	names := db.TableNames()
	if err := writeUvarint(cw, uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		if err := writeBytes(cw, []byte(name)); err != nil {
			return err
		}
		rel := t.scan(nil)
		if err := writeUvarint(cw, uint64(rel.Len())); err != nil {
			return err
		}
		for _, row := range rel.Rows {
			if err := writeBytes(cw, tuple.EncodeRow(nil, row.Tuple)); err != nil {
				return err
			}
		}
	}

	// Base-table delta tables only: view delta tables are derived data,
	// recreated when views are redefined after a restore.
	db.mu.RLock()
	dnames := make([]string, 0, len(db.deltas))
	for n := range db.deltas {
		if _, isBase := db.tables[n]; isBase {
			dnames = append(dnames, n)
		}
	}
	db.mu.RUnlock()
	sort.Strings(dnames)
	if err := writeUvarint(cw, uint64(len(dnames))); err != nil {
		return err
	}
	for _, name := range dnames {
		db.mu.RLock()
		d := db.deltas[name]
		db.mu.RUnlock()
		if err := writeBytes(cw, []byte(name)); err != nil {
			return err
		}
		rel := d.All()
		if err := writeUvarint(cw, uint64(rel.Len())); err != nil {
			return err
		}
		for _, row := range rel.Rows {
			if err := writeUvarint(cw, uint64(row.TS)); err != nil {
				return err
			}
			var cnt [binary.MaxVarintLen64]byte
			n := binary.PutVarint(cnt[:], row.Count)
			if _, err := cw.Write(cnt[:n]); err != nil {
				return err
			}
			if err := writeBytes(cw, tuple.EncodeRow(nil, row.Tuple)); err != nil {
				return err
			}
		}
	}

	// Trailing CRC of everything written so far.
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crcTableIEEE, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crcTableIEEE, []byte{b})
	}
	return b, err
}

func readBytes(r *crcReader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	// Guard against corrupt length fields before allocating.
	const maxChunk = 1 << 30
	if n > maxChunk {
		return nil, fmt.Errorf("%w: chunk length %d", errBadSnapshot, n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// ReadSnapshot restores a snapshot into the database. The catalog (tables,
// deltas, indexes) must already be re-created and empty. It returns the
// log offset the snapshot corresponds to; the caller replays the log from
// there (RecoverFrom) and points the capture process past it.
func (db *DB) ReadSnapshot(r io.Reader) (int64, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	var hdr [8]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic", errBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != snapshotVersion {
		return 0, fmt.Errorf("%w: unsupported version %d", errBadSnapshot, v)
	}
	logOffset, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, err
	}
	lastCSN, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, err
	}

	ntables, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < ntables; i++ {
		name, err := readBytes(cr)
		if err != nil {
			return 0, err
		}
		t, err := db.Table(string(name))
		if err != nil {
			return 0, fmt.Errorf("engine: snapshot references unknown table %q; recreate the catalog first", name)
		}
		rows, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, err
		}
		for j := uint64(0); j < rows; j++ {
			raw, err := readBytes(cr)
			if err != nil {
				return 0, err
			}
			row, _, err := tuple.DecodeRow(raw)
			if err != nil {
				return 0, err
			}
			t.putCommitted(row)
		}
	}

	ndeltas, err := binary.ReadUvarint(cr)
	if err != nil {
		return 0, err
	}
	for i := uint64(0); i < ndeltas; i++ {
		name, err := readBytes(cr)
		if err != nil {
			return 0, err
		}
		db.mu.RLock()
		d := db.deltas[string(name)]
		db.mu.RUnlock()
		if d == nil {
			return 0, fmt.Errorf("engine: snapshot references unknown delta %q; recreate the catalog first", name)
		}
		rows, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, err
		}
		for j := uint64(0); j < rows; j++ {
			ts, err := binary.ReadUvarint(cr)
			if err != nil {
				return 0, err
			}
			count, err := binary.ReadVarint(cr)
			if err != nil {
				return 0, err
			}
			raw, err := readBytes(cr)
			if err != nil {
				return 0, err
			}
			row, _, err := tuple.DecodeRow(raw)
			if err != nil {
				return 0, err
			}
			d.Append(relalg.CSN(ts), count, row)
		}
	}

	// Verify the CRC: everything read so far hashed, compare to trailer.
	sum := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(tail[:]) != sum {
		return 0, fmt.Errorf("%w: checksum mismatch", errBadSnapshot)
	}

	db.tm.Recover(relalg.CSN(lastCSN))
	// The restore wrote base tables directly, bypassing the delta stream the
	// join cache maintains from; resident cached indexes are now arbitrary.
	db.InvalidateJoinCache()
	return int64(logOffset), nil
}

// RecoverFrom replays committed transactions from the given log offset into
// the base tables — the redo phase after loading a snapshot. Offset 0 is
// equivalent to Recover.
func (db *DB) RecoverFrom(offset int64) (relalg.CSN, error) {
	return db.recover(offset)
}

// WriteDeltaWindow serializes every base-relation delta record in the
// window (lo, hi] to w — the payload of an incremental-checkpoint DELTA
// link, so checkpoint cost is proportional to the change since the last
// link rather than the database size. Base tables only: view deltas are
// derived data, rebuilt when views are redefined. The caller must hold the
// system quiescent (capture caught up through hi, no in-flight writers),
// the same discipline as WriteSnapshot, and must have verified that no
// base delta has been pruned above lo.
func (db *DB) WriteDeltaWindow(w io.Writer, lo, hi relalg.CSN) error {
	db.mu.RLock()
	dnames := make([]string, 0, len(db.deltas))
	for n := range db.deltas {
		if _, isBase := db.tables[n]; isBase {
			dnames = append(dnames, n)
		}
	}
	db.mu.RUnlock()
	sort.Strings(dnames)
	if err := writeUvarint(w, uint64(len(dnames))); err != nil {
		return err
	}
	for _, name := range dnames {
		db.mu.RLock()
		d := db.deltas[name]
		db.mu.RUnlock()
		if err := writeBytes(w, []byte(name)); err != nil {
			return err
		}
		nrows := 0
		if err := d.WindowEach(lo, hi, func(relalg.CSN, int64, []byte) error {
			nrows++
			return nil
		}); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(nrows)); err != nil {
			return err
		}
		var werr error
		if err := d.WindowEach(lo, hi, func(ts relalg.CSN, count int64, encRow []byte) error {
			if werr = writeUvarint(w, uint64(ts)); werr != nil {
				return werr
			}
			var cnt [binary.MaxVarintLen64]byte
			n := binary.PutVarint(cnt[:], count)
			if _, werr = w.Write(cnt[:n]); werr != nil {
				return werr
			}
			return writeBytes(w, encRow)
		}); err != nil {
			return err
		}
	}
	return nil
}

// ApplyDeltaWindow replays a delta-window payload (WriteDeltaWindow) into
// the database: each record lands in its base table's heap (insert or
// delete) and in the delta table, reproducing both the committed state and
// the capture state at the window's upper bound — the redo step for one
// DELTA link of an incremental checkpoint chain. toCSN is the window's
// upper bound; the commit counter resumes past it.
func (db *DB) ApplyDeltaWindow(r io.Reader, toCSN relalg.CSN) error {
	cr := &crcReader{r: bufio.NewReader(r)}
	ndeltas, err := binary.ReadUvarint(cr)
	if err != nil {
		return err
	}
	for i := uint64(0); i < ndeltas; i++ {
		name, err := readBytes(cr)
		if err != nil {
			return err
		}
		t, err := db.Table(string(name))
		if err != nil {
			return fmt.Errorf("engine: delta window references unknown table %q; recreate the catalog first", name)
		}
		db.mu.RLock()
		d := db.deltas[string(name)]
		db.mu.RUnlock()
		if d == nil {
			return fmt.Errorf("engine: delta window references unknown delta %q; recreate the catalog first", name)
		}
		nrows, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		for j := uint64(0); j < nrows; j++ {
			ts, err := binary.ReadUvarint(cr)
			if err != nil {
				return err
			}
			count, err := binary.ReadVarint(cr)
			if err != nil {
				return err
			}
			raw, err := readBytes(cr)
			if err != nil {
				return err
			}
			row, _, err := tuple.DecodeRow(raw)
			if err != nil {
				return err
			}
			d.Append(relalg.CSN(ts), count, row)
			for c := count; c > 0; c-- {
				t.putCommitted(row)
			}
			for c := count; c < 0; c++ {
				if !t.removeMatching(row) {
					return fmt.Errorf("engine: delta window deletes missing row %s in %q", row, name)
				}
			}
		}
	}
	if toCSN > db.LastCSN() {
		db.tm.Recover(toCSN)
	}
	// Like recovery: the heaps changed without flowing through the capture
	// delta stream the join cache folds from.
	db.InvalidateJoinCache()
	return nil
}
