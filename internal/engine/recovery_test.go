package engine

import (
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

func TestRecoverReplaysCommittedOnly(t *testing.T) {
	dev := wal.NewMemDevice()
	db, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("r", ordersSchema())

	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("keep")})
	tx.Insert("r", tuple.Tuple{tuple.Int(2), tuple.String_("gone")})
	tx.Commit()
	tx2 := db.Begin()
	tx2.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(2)}, 0)
	tx2.Commit()
	// An uncommitted transaction: its records must be discarded on recovery.
	tx3 := db.Begin()
	tx3.Insert("r", tuple.Tuple{tuple.Int(3), tuple.String_("torn")})
	// No commit; simulate a crash by reopening on the same device.
	db.Close()

	db2, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.CreateTable("r", ordersSchema())
	db2.CreateIndex("r", "id")
	csn, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if csn != 2 {
		t.Fatalf("recovered csn %d", csn)
	}
	if db2.LastCSN() != 2 {
		t.Fatal("csn counter not fast-forwarded")
	}
	rtx := db2.Begin()
	rel, _ := rtx.Scan("r", nil)
	rtx.Commit()
	if rel.Len() != 1 || rel.Rows[0].Tuple[0].AsInt() != 1 {
		t.Fatalf("recovered state: %s", rel)
	}
	// The index was maintained during replay.
	tbl, _ := db2.Table("r")
	ix := tbl.indexOn(0)
	if ix == nil || len(tbl.probe(ix, tuple.Int(1), nil)) != 1 {
		t.Fatal("index not rebuilt during recovery")
	}
}

func TestRecoverFromOffsetWithAbortsAndTornCommit(t *testing.T) {
	dev := wal.NewMemDevice()
	db, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("r", ordersSchema())

	// Prefix: a committed transaction the offset replay must skip (its
	// effects would come from a snapshot in the real restore path).
	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("prefix")})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	offset := db.Log().Size()

	// Suffix: an aborted transaction interleaved with two committed ones,
	// all self-contained (no references to prefix rows).
	txA := db.Begin()
	txA.Insert("r", tuple.Tuple{tuple.Int(2), tuple.String_("keep")})
	txB := db.Begin()
	txB.Insert("r", tuple.Tuple{tuple.Int(3), tuple.String_("aborted")})
	if _, err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := txB.Abort(); err != nil {
		t.Fatal(err)
	}
	txC := db.Begin()
	txC.Insert("r", tuple.Tuple{tuple.Int(4), tuple.String_("keep too")})
	durable, err := txC.Commit()
	if err != nil {
		t.Fatal(err)
	}
	preTorn := dev.Size()

	// A final transaction whose commit record is torn mid-frame: the crash
	// hit during the append, so the commit never became durable.
	txD := db.Begin()
	txD.Insert("r", tuple.Tuple{tuple.Int(5), tuple.String_("torn")})
	if _, err := txD.Commit(); err != nil {
		t.Fatal(err)
	}
	full := make([]byte, dev.Size())
	if _, err := dev.ReadAt(full, 0); err != nil {
		t.Fatal(err)
	}
	// Cut inside the final frame (the commit record of txD): keep the
	// pre-torn content plus half of what followed.
	cut := preTorn + (dev.Size()-preTorn)/2
	if cut <= preTorn || cut >= dev.Size() {
		t.Fatalf("cut %d outside torn range (%d, %d)", cut, preTorn, dev.Size())
	}

	db2, err := Open(Config{Device: wal.NewMemDeviceFrom(full[:cut])})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.CreateTable("r", ordersSchema())
	csn, err := db2.RecoverFrom(offset)
	if err != nil {
		t.Fatal(err)
	}
	if csn != durable {
		t.Fatalf("recovered csn %d, want last durable commit %d", csn, durable)
	}
	rtx := db2.Begin()
	rel, _ := rtx.Scan("r", nil)
	rtx.Commit()
	ids := map[int64]bool{}
	for _, row := range rel.Rows {
		ids[row.Tuple[0].AsInt()] = true
	}
	// Only the committed suffix rows: no prefix (before offset), no aborted
	// row, no torn-commit row.
	if len(ids) != 2 || !ids[2] || !ids[4] {
		t.Fatalf("recovered rows %v, want {2, 4}", ids)
	}
}

func TestRecoverUnknownTableFails(t *testing.T) {
	dev := wal.NewMemDevice()
	db, _ := Open(Config{Device: dev})
	db.CreateTable("r", ordersSchema())
	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("x")})
	tx.Commit()
	db.Close()

	db2, _ := Open(Config{Device: dev})
	defer db2.Close()
	// Catalog not recreated: replay must fail loudly, not silently drop.
	if _, err := db2.Recover(); err == nil {
		t.Fatal("recovery without catalog should fail")
	}
}

func TestRecoverIdempotentOnEmptyLog(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	csn, err := db.Recover()
	if err != nil || csn != 0 {
		t.Fatalf("empty recovery: %d %v", csn, err)
	}
}
