package engine

import (
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

func TestRecoverReplaysCommittedOnly(t *testing.T) {
	dev := wal.NewMemDevice()
	db, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("r", ordersSchema())

	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("keep")})
	tx.Insert("r", tuple.Tuple{tuple.Int(2), tuple.String_("gone")})
	tx.Commit()
	tx2 := db.Begin()
	tx2.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(2)}, 0)
	tx2.Commit()
	// An uncommitted transaction: its records must be discarded on recovery.
	tx3 := db.Begin()
	tx3.Insert("r", tuple.Tuple{tuple.Int(3), tuple.String_("torn")})
	// No commit; simulate a crash by reopening on the same device.
	db.Close()

	db2, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.CreateTable("r", ordersSchema())
	db2.CreateIndex("r", "id")
	csn, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if csn != 2 {
		t.Fatalf("recovered csn %d", csn)
	}
	if db2.LastCSN() != 2 {
		t.Fatal("csn counter not fast-forwarded")
	}
	rtx := db2.Begin()
	rel, _ := rtx.Scan("r", nil)
	rtx.Commit()
	if rel.Len() != 1 || rel.Rows[0].Tuple[0].AsInt() != 1 {
		t.Fatalf("recovered state: %s", rel)
	}
	// The index was maintained during replay.
	tbl, _ := db2.Table("r")
	ix := tbl.indexOn(0)
	if ix == nil || len(tbl.probe(ix, tuple.Int(1), nil)) != 1 {
		t.Fatal("index not rebuilt during recovery")
	}
}

func TestRecoverUnknownTableFails(t *testing.T) {
	dev := wal.NewMemDevice()
	db, _ := Open(Config{Device: dev})
	db.CreateTable("r", ordersSchema())
	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("x")})
	tx.Commit()
	db.Close()

	db2, _ := Open(Config{Device: dev})
	defer db2.Close()
	// Catalog not recreated: replay must fail loudly, not silently drop.
	if _, err := db2.Recover(); err == nil {
		t.Fatal("recovery without catalog should fail")
	}
}

func TestRecoverIdempotentOnEmptyLog(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	csn, err := db.Recover()
	if err != nil || csn != 0 {
		t.Fatalf("empty recovery: %d %v", csn, err)
	}
}
