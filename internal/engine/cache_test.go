package engine

import (
	"testing"
	"time"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// deltaMirror is a synchronous capture stand-in for white-box cache tests:
// it appends every committed write to the table's delta inside the commit
// critical section, so delta tables are always exactly caught up and the
// cached path's wait callback can be nil.
type deltaMirror struct{ db *DB }

func (m *deltaMirror) OnCommit(writes []Write, csn relalg.CSN, _ time.Time) {
	for _, w := range writes {
		if d, err := m.db.Delta(w.Table); err == nil {
			d.Append(csn, w.Count, w.Row)
		}
	}
}

// starResultSchema is the 6-column output row layout of starQuery.
func starResultSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "c0", Kind: tuple.KindInt},
		tuple.Column{Name: "c1", Kind: tuple.KindInt},
		tuple.Column{Name: "c2", Kind: tuple.KindInt},
		tuple.Column{Name: "c3", Kind: tuple.KindInt},
		tuple.Column{Name: "c4", Kind: tuple.KindInt},
		tuple.Column{Name: "c5", Kind: tuple.KindInt},
	)
}

// mutateStar runs n small committed transactions against the star tables,
// alternating inserts and deletes, and returns the last commit CSN.
func mutateStar(t *testing.T, db *DB, n, salt int) relalg.CSN {
	t.Helper()
	var last relalg.CSN
	for i := 0; i < n; i++ {
		tx := db.Begin()
		k := int64((i + salt) % 5)
		switch i % 3 {
		case 0:
			mustExec(t, tx, tx.Insert("fact", tuple.Tuple{tuple.Int(k), tuple.Int(k % 3)}))
		case 1:
			mustExec(t, tx, tx.Insert("dim1", tuple.Tuple{tuple.Int(k), tuple.Int(int64(1000 + i))}))
		default:
			_, err := tx.DeleteWhere("dim2", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(k % 3)}, 1)
			mustExec(t, tx, err)
		}
		csn, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		last = csn
	}
	return last
}

// sameTimedDelta asserts two delta tables hold equivalent rows at every
// timestamp in (0, hi] — counts, tuples, and timestamps all match.
func sameTimedDelta(t *testing.T, a, b *DeltaTable, hi relalg.CSN) {
	t.Helper()
	for ts := relalg.CSN(1); ts <= hi; ts++ {
		if !relalg.Equivalent(a.Window(ts-1, ts), b.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
}

// TestCachedPropagationMatchesUncached verifies the tentpole correctness
// property: a propagation query answered from the join-state cache appends
// the identical timed delta (rows, counts, timestamps) as the uncached
// table-scanning path, at every delta position.
func TestCachedPropagationMatchesUncached(t *testing.T) {
	for deltaPos := 0; deltaPos < 3; deltaPos++ {
		db := buildStar(t)
		db.SetTriggerSink(&deltaMirror{db})
		hi := mutateStar(t, db, 12, deltaPos)

		dest1, err := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
		if err != nil {
			t.Fatal(err)
		}
		dest2, err := db.CreateStandaloneDelta("dest-cached", starResultSchema())
		if err != nil {
			t.Fatal(err)
		}
		q := starQuery(deltaPos, 0, hi)
		if !CacheEligible(db, q) {
			t.Fatalf("delta at %d: query should be cache-eligible", deltaPos)
		}
		if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
			t.Fatal(err)
		}
		ts, rows, _, err := db.ExecutePropagationCached(q, 1, dest2, hi, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ts < hi {
			t.Fatalf("cached execution time %d below window bound %d", ts, hi)
		}
		sameTimedDelta(t, dest1, dest2, hi)

		st := db.Stats()
		if st.CacheBuilds == 0 {
			t.Fatal("no cache builds recorded")
		}
		if rows > 0 && st.CacheHits+st.CacheMisses == 0 && st.RowsScanned == 0 {
			t.Fatal("cached query touched neither probes nor cache scans")
		}
	}
}

// TestCacheAdvanceMaintainsIncrementally verifies that a second cached
// query over a later window folds the base deltas into the resident
// indexes (maintenance rows counted, no rebuild) and stays correct.
func TestCacheAdvanceMaintainsIncrementally(t *testing.T) {
	db := buildStar(t)
	db.SetTriggerSink(&deltaMirror{db})
	hi1 := mutateStar(t, db, 9, 0)

	dest1, _ := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
	dest2, _ := db.CreateStandaloneDelta("dest-cached", starResultSchema())
	if _, _, _, err := db.ExecutePropagationCached(starQuery(0, 0, hi1), 1, dest2, hi1, nil); err != nil {
		t.Fatal(err)
	}
	builds := db.Stats().CacheBuilds

	hi2 := mutateStar(t, db, 9, 3)
	q := starQuery(0, hi1, hi2)
	if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.ExecutePropagationCached(q, 1, dest2, hi2, nil); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.CacheBuilds != builds {
		t.Fatalf("advance should not rebuild: %d -> %d builds", builds, st.CacheBuilds)
	}
	if st.CacheMaintRows == 0 {
		t.Fatal("no maintenance rows folded")
	}
	// The second windows must agree (the first went only to the cached dest).
	for ts := hi1 + 1; ts <= hi2; ts++ {
		if !relalg.Equivalent(dest1.Window(ts-1, ts), dest2.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
}

// TestCacheStalePruneRebuilds verifies the invalidation guard: pruning a
// base delta past a cached index's applied watermark forces a rebuild from
// the heap instead of folding an incomplete window, and the rebuilt cache
// still produces correct results.
func TestCacheStalePruneRebuilds(t *testing.T) {
	db := buildStar(t)
	db.SetTriggerSink(&deltaMirror{db})
	hi1 := mutateStar(t, db, 6, 0)

	dest2, _ := db.CreateStandaloneDelta("dest-cached", starResultSchema())
	if _, _, _, err := db.ExecutePropagationCached(starQuery(1, 0, hi1), 1, dest2, hi1, nil); err != nil {
		t.Fatal(err)
	}
	builds := db.Stats().CacheBuilds

	hi2 := mutateStar(t, db, 6, 2)
	// Prune the fact delta past the applied watermark: the fact-side cached
	// index can no longer be maintained forward and must rebuild.
	df, _ := db.Delta("fact")
	df.PruneThrough(hi2)

	dest1, _ := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
	// dim1's delta is intact, so a dim1-position query still has its window.
	q := starQuery(1, hi1, hi2)
	if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.ExecutePropagationCached(q, 1, dest2, hi2, nil); err != nil {
		t.Fatal(err)
	}
	if db.Stats().CacheBuilds <= builds {
		t.Fatal("pruned maintenance window should force a rebuild")
	}
	for ts := hi1 + 1; ts <= hi2; ts++ {
		if !relalg.Equivalent(dest1.Window(ts-1, ts), dest2.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
}

// TestInvalidateJoinCacheRebuilds verifies the explicit invalidation hook:
// resident state is dropped, the invalidation is counted, and the next
// cached query rebuilds and stays correct.
func TestInvalidateJoinCacheRebuilds(t *testing.T) {
	db := buildStar(t)
	db.SetTriggerSink(&deltaMirror{db})
	hi1 := mutateStar(t, db, 6, 0)

	dest2, _ := db.CreateStandaloneDelta("dest-cached", starResultSchema())
	if _, _, _, err := db.ExecutePropagationCached(starQuery(0, 0, hi1), 1, dest2, hi1, nil); err != nil {
		t.Fatal(err)
	}
	builds := db.Stats().CacheBuilds
	if db.Stats().CacheResidentRows == 0 {
		t.Fatal("no resident rows after cached query")
	}

	db.InvalidateJoinCache()
	st := db.Stats()
	if st.CacheInvalidations == 0 {
		t.Fatal("invalidation not counted")
	}
	if st.CacheResidentRows != 0 {
		t.Fatalf("resident rows after invalidation: %d", st.CacheResidentRows)
	}

	hi2 := mutateStar(t, db, 6, 4)
	dest1, _ := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
	q := starQuery(0, hi1, hi2)
	if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.ExecutePropagationCached(q, 1, dest2, hi2, nil); err != nil {
		t.Fatal(err)
	}
	if db.Stats().CacheBuilds <= builds {
		t.Fatal("query after invalidation should rebuild")
	}
	for ts := hi1 + 1; ts <= hi2; ts++ {
		if !relalg.Equivalent(dest1.Window(ts-1, ts), dest2.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
}

// TestCacheEligible exercises the eligibility gate's negative cases.
func TestCacheEligible(t *testing.T) {
	db := buildStar(t)
	if CacheEligible(db, starQuery(-1, 0, 0)) {
		t.Fatal("all-base query must not be eligible (no delta position)")
	}
	q := starQuery(0, 0, 1)
	q.Inputs[2] = Input{Kind: InputRelation, Rel: relalg.NewRelation(starResultSchema())}
	if CacheEligible(db, q) {
		t.Fatal("materialized-relation positions must not be eligible")
	}
	db2 := testDB(t)
	db2.CreateTable("nodelta", tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt}))
	db2.CreateTable("withdelta", tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt}))
	db2.CreateDelta("withdelta")
	q2 := &Query{
		Inputs: []Input{
			{Kind: InputBase, Table: "nodelta"},
			{Kind: InputDelta, Table: "withdelta", Lo: 0, Hi: 1},
		},
		Conds: []JoinCond{{A: ColRef{0, 0}, B: ColRef{1, 0}}},
	}
	if CacheEligible(db2, q2) {
		t.Fatal("base table without a delta stream must not be eligible")
	}
}
