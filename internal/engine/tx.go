package engine

import (
	"time"

	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Tx is a transactional session over the database. It is not goroutine-
// safe. All writes follow strict 2PL: locks acquired as data is touched and
// released only at commit or abort.
type Tx struct {
	db     *DB
	inner  *txn.Txn
	logged bool    // Begin record written
	writes []Write // recorded for the trigger sink, when installed

	// stamps are the version-stamping actions run in the commit publish
	// phase: they set born/dead CSNs on the rows this transaction wrote,
	// making heap visibility atomic with CSN assignment under the
	// stable-CSN barrier.
	stamps []func(csn relalg.CSN)
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db, inner: db.tm.Begin()}
}

// ID returns the transaction identifier.
func (tx *Tx) ID() uint64 { return tx.inner.ID() }

// ensureBegin lazily writes the WAL Begin record before the first change.
func (tx *Tx) ensureBegin() error {
	if tx.logged {
		return nil
	}
	if _, err := tx.db.log.Append(&wal.Record{Type: wal.TypeBegin, TxID: tx.inner.ID()}); err != nil {
		return err
	}
	tx.logged = true
	return nil
}

func (tx *Tx) recordWrite(table string, row tuple.Tuple, count int64) {
	tx.db.sinkMu.RLock()
	enabled := tx.db.triggerSink != nil
	tx.db.sinkMu.RUnlock()
	if enabled {
		tx.writes = append(tx.writes, Write{Table: table, Row: row, Count: count})
	}
}

// Insert adds a row to the named base table. On a replica engine it
// returns ErrReadOnly: base state is owned by the leader's shipped log.
func (tx *Tx) Insert(table string, row tuple.Tuple) error {
	if tx.db.replica {
		return ErrReadOnly
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if err := t.schema.Validate(row); err != nil {
		return err
	}
	if err := tx.inner.Lock(t.lockName(), txn.LockIX); err != nil {
		return err
	}
	if err := tx.ensureBegin(); err != nil {
		return err
	}
	rowid := t.put(row)
	// The rowid is fresh, so the X lock cannot block; taking it keeps the
	// protocol uniform and protects against delete-scans until commit.
	if err := tx.inner.Lock(t.rowLockName(rowid), txn.LockX); err != nil {
		t.remove(rowid)
		return err
	}
	if _, err := tx.db.log.Append(&wal.Record{Type: wal.TypeInsert, TxID: tx.inner.ID(), Table: table, Row: row}); err != nil {
		t.remove(rowid)
		return err
	}
	tx.inner.OnAbort(func() { t.remove(rowid) })
	tx.stamps = append(tx.stamps, func(csn relalg.CSN) { t.stampBorn(rowid, csn) })
	tx.recordWrite(table, row, +1)
	tx.db.addWrites(1, 0)
	return nil
}

// DeleteWhere removes up to limit rows satisfying pred from the table
// (limit <= 0 removes all matches). It returns the number of rows deleted.
// The scan locks each candidate row exclusively before deleting, so
// concurrent writers of other rows proceed in parallel; a predicate that
// races with a concurrent insert may miss it (no phantom protection on the
// write path — propagation queries use full table S locks instead).
func (tx *Tx) DeleteWhere(table string, pred relalg.Predicate, limit int) (int, error) {
	if tx.db.replica {
		return 0, ErrReadOnly
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return 0, err
	}
	if err := tx.inner.Lock(t.lockName(), txn.LockIX); err != nil {
		return 0, err
	}
	deleted := 0
	for {
		remaining := 0
		if limit > 0 {
			remaining = limit - deleted
			if remaining == 0 {
				break
			}
		}
		ids := t.matchRowIDs(pred, remaining)
		if len(ids) == 0 {
			break
		}
		progress := false
		for _, id := range ids {
			if err := tx.inner.Lock(t.rowLockName(id), txn.LockX); err != nil {
				return deleted, err
			}
			// Re-check under the lock: the row may have been deleted or may
			// have been an uncommitted insert that aborted.
			row := t.get(id)
			if row == nil || (pred != nil && !pred.Eval(row)) {
				continue
			}
			if err := tx.ensureBegin(); err != nil {
				return deleted, err
			}
			if _, err := tx.db.log.Append(&wal.Record{Type: wal.TypeDelete, TxID: tx.inner.ID(), Table: table, Row: row}); err != nil {
				return deleted, err
			}
			// Logical delete: the version stays in the heap (visible to
			// snapshot readers below our commit CSN) until version GC.
			idCopy := id
			t.markDead(idCopy)
			tx.inner.OnAbort(func() { t.clearDead(idCopy) })
			tx.stamps = append(tx.stamps, func(csn relalg.CSN) { t.stampDead(idCopy, csn) })
			tx.recordWrite(table, row, -1)
			tx.db.addWrites(0, 1)
			deleted++
			progress = true
		}
		if !progress {
			break
		}
	}
	return deleted, nil
}

// Scan takes a table S lock and materializes the committed table state,
// applying the optional pushdown predicate.
func (tx *Tx) Scan(table string, pred relalg.Predicate) (*relalg.Relation, error) {
	t, err := tx.db.Table(table)
	if err != nil {
		return nil, err
	}
	if err := tx.inner.Lock(t.lockName(), txn.LockS); err != nil {
		return nil, err
	}
	rel := t.scan(pred)
	tx.db.addScanned(int64(rel.Len()))
	return rel, nil
}

// LockTableS acquires a table-level shared lock without scanning, used to
// pre-lock all inputs of a propagation query in a deterministic order.
func (tx *Tx) LockTableS(table string) error {
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	return tx.inner.Lock(t.lockName(), txn.LockS)
}

// AppendDelta appends a change record to a delta table as part of this
// transaction: it is undone if the transaction aborts. Used by propagation
// queries writing the view delta.
func (tx *Tx) AppendDelta(d *DeltaTable, ts relalg.CSN, count int64, row tuple.Tuple) {
	h := d.Append(ts, count, row)
	tx.inner.OnAbort(func() { d.Remove(h) })
}

// AppendDeltaEncoded is AppendDelta for a row already in tuple.EncodeRow
// form (the columnar propagation egress); partVal is the row's
// partition-column value.
func (tx *Tx) AppendDeltaEncoded(d *DeltaTable, ts relalg.CSN, count int64, encRow []byte, partVal tuple.Value) {
	h := d.AppendEncoded(ts, count, encRow, partVal)
	tx.inner.OnAbort(func() { d.Remove(h) })
}

// Commit finishes the transaction. The commit hook appends the WAL commit
// record and notifies the trigger sink while holding the commit mutex, so
// the log order, CSN order, and trigger-capture order all match the
// serialization order. The publish phase then stamps row versions with
// the commit CSN before the CSN becomes stable and the locks release.
func (tx *Tx) Commit() (relalg.CSN, error) {
	if tx.db.replica {
		// Quiet commit: keep the transaction's effects (delta appends, cache
		// updates) and release its locks, but mint no CSN and write no WAL
		// record — a follower's time axis is the leader's CSN sequence, and
		// its log holds only shipped leader bytes. Base writes are already
		// impossible here (Insert/DeleteWhere gate on ErrReadOnly), so there
		// are no stamps to publish.
		return 0, tx.db.tm.CommitQuiet(tx.inner)
	}
	var publish func(relalg.CSN)
	if len(tx.stamps) > 0 {
		publish = func(csn relalg.CSN) {
			for _, stamp := range tx.stamps {
				stamp(csn)
			}
			tx.stamps = nil
		}
	}
	if fault.Enabled() {
		// The publish phase runs after the commit record is durable and
		// cannot fail, so the failpoint's error is discarded: it exists for
		// crash actions, which freeze the device between the durable commit
		// and the in-memory version stamps. Wrapping only under fault.Enabled
		// keeps the common path free of the extra closure allocation.
		stamps := publish
		publish = func(csn relalg.CSN) {
			_ = fault.Inject(fault.PointPublish)
			if stamps != nil {
				stamps(csn)
			}
		}
	}
	return tx.db.tm.CommitPublish(tx.inner, func(csn relalg.CSN, wall time.Time) error {
		if _, err := tx.db.log.Append(&wal.Record{
			Type: wal.TypeCommit, TxID: tx.inner.ID(), CSN: csn, WallNanos: wall.UnixNano(),
		}); err != nil {
			return err
		}
		if tx.db.cfg.SyncOnCommit {
			if err := tx.db.log.Sync(); err != nil {
				return err
			}
		}
		tx.db.sinkMu.RLock()
		sink := tx.db.triggerSink
		tx.db.sinkMu.RUnlock()
		if sink != nil && len(tx.writes) > 0 {
			sink.OnCommit(tx.writes, csn, wall)
		}
		return nil
	}, publish)
}

// Abort rolls back the transaction, undoing its heap and delta writes and
// appending an Abort record so the capture process discards its pending
// changes.
func (tx *Tx) Abort() error {
	if tx.logged {
		// Best effort: a failed abort record still leaves capture correct,
		// because pending changes are only applied on Commit.
		tx.db.log.Append(&wal.Record{Type: wal.TypeAbort, TxID: tx.inner.ID()})
	}
	return tx.db.tm.Abort(tx.inner)
}
