package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// spillTestDerived registers a derived relation with a 2-row image at CSN 5
// and one delta row at CSN 6, returning the db and the derived handle.
func spillTestDerived(t *testing.T) (*DB, *Derived) {
	t.Helper()
	db := testDB(t)
	schema := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
	dest, err := db.CreateStandaloneDelta("v", schema)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := db.RegisterDerived("v", schema, dest, func() relalg.CSN { return 10 })
	if err != nil {
		t.Fatal(err)
	}
	rel := relalg.NewRelation(schema)
	rel.Add(tuple.Tuple{tuple.Int(1), tuple.Int(10)}, 1, relalg.NullTS)
	rel.Add(tuple.Tuple{tuple.Int(2), tuple.Int(20)}, 2, relalg.NullTS)
	dv.SetImage(rel, 5)
	dest.Append(6, 1, tuple.Tuple{tuple.Int(3), tuple.Int(30)})
	return db, dv
}

// futureCutoff treats everything as idle.
func futureCutoff() time.Time { return time.Now().Add(time.Hour) }

func TestDerivedSpillAndReload(t *testing.T) {
	db, dv := spillTestDerived(t)
	dir := t.TempDir()

	before := db.Stats()
	if before.ImageResidentBytes == 0 {
		t.Fatal("resident image should have nonzero footprint")
	}
	n, err := db.SpillIdle(dir, futureCutoff())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("spilled %d objects, want 1", n)
	}
	if !dv.Spilled() {
		t.Fatal("image should be marked spilled")
	}
	st := db.Stats()
	if st.SpilledBytes == 0 {
		t.Fatal("SpilledBytes not accounted")
	}
	if st.ImageResidentBytes != 0 {
		t.Fatalf("spilled image still resident: %d bytes", st.ImageResidentBytes)
	}

	// A read above the image time reloads lazily and folds the window.
	rel, err := dv.ScanAsOf(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("reloaded scan has %d rows, want 3", rel.Len())
	}
	if dv.Spilled() {
		t.Fatal("image should be resident after reload")
	}
	st = db.Stats()
	if st.ColdLoads != 1 {
		t.Fatalf("ColdLoads = %d, want 1", st.ColdLoads)
	}
	if st.ImageResidentBytes == 0 {
		t.Fatal("reloaded image should count as resident again")
	}
	// The consumed spill file is gone; a second sweep respills it.
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("spill dir not empty after reload: %v", ents)
	}
	if n, err := db.SpillIdle(dir, futureCutoff()); err != nil || n != 1 {
		t.Fatalf("respill after reload: n=%d err=%v", n, err)
	}
}

func TestDerivedSpillScanBelowImageStaysCold(t *testing.T) {
	db, dv := spillTestDerived(t)
	dir := t.TempDir()
	if _, err := db.SpillIdle(dir, futureCutoff()); err != nil {
		t.Fatal(err)
	}
	// Below the image time the answer is gone regardless of residency —
	// report ErrDerivedPruned without paying a reload.
	if _, err := dv.ScanAsOf(3, nil); !errors.Is(err, ErrDerivedPruned) {
		t.Fatalf("scan below image time: want ErrDerivedPruned, got %v", err)
	}
	if !dv.Spilled() {
		t.Fatal("pruned-time scan should leave the image cold")
	}
	if st := db.Stats(); st.ColdLoads != 0 {
		t.Fatalf("ColdLoads = %d, want 0", st.ColdLoads)
	}
}

func TestDerivedSpillLost(t *testing.T) {
	for name, damage := range map[string]func(path string){
		"corrupt": func(path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				panic(err)
			}
			b[len(b)/2] ^= 0xFF
			os.WriteFile(path, b, 0o644)
		},
		"missing": func(path string) { os.Remove(path) },
	} {
		t.Run(name, func(t *testing.T) {
			db, dv := spillTestDerived(t)
			dir := t.TempDir()
			if _, err := db.SpillIdle(dir, futureCutoff()); err != nil {
				t.Fatal(err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil || len(ents) != 1 {
				t.Fatalf("want one spill file, got %v (%v)", ents, err)
			}
			damage(filepath.Join(dir, ents[0].Name()))
			if _, err := dv.ScanAsOf(6, nil); !errors.Is(err, ErrSpillLost) {
				t.Fatalf("want ErrSpillLost, got %v", err)
			}
		})
	}
}

func TestCompactThroughLeavesColdImageCold(t *testing.T) {
	db, dv := spillTestDerived(t)
	dir := t.TempDir()
	if _, err := db.SpillIdle(dir, futureCutoff()); err != nil {
		t.Fatal(err)
	}
	// Compacting to (at or below) the image time is a no-op and must not
	// page the image back in.
	if err := dv.CompactThrough(5); err != nil {
		t.Fatal(err)
	}
	if !dv.Spilled() {
		t.Fatal("no-op compact should leave the image spilled")
	}
	// A real fold reloads, folds, and advances the image time.
	if err := dv.CompactThrough(6); err != nil {
		t.Fatal(err)
	}
	if dv.Spilled() {
		t.Fatal("fold should have reloaded the image")
	}
	if got := dv.ImageTime(); got != 6 {
		t.Fatalf("image time %d after fold, want 6", got)
	}
	if st := db.Stats(); st.ColdLoads != 1 {
		t.Fatalf("ColdLoads = %d, want 1", st.ColdLoads)
	}
}

// TestCacheSpillReloadMatchesUncached spills built join-cache indexes,
// answers the next propagation window through the reloaded state, and
// verifies the output against the uncached scan path. It also checks the
// resident-bytes gauges drop to zero at spill time (the same decrement an
// invalidation performs) and climb back after the reload.
func TestCacheSpillReloadMatchesUncached(t *testing.T) {
	db := buildStar(t)
	db.SetTriggerSink(&deltaMirror{db})
	hi1 := mutateStar(t, db, 9, 0)

	dest1, _ := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
	dest2, _ := db.CreateStandaloneDelta("dest-cached", starResultSchema())
	if _, _, _, err := db.ExecutePropagationCached(starQuery(0, 0, hi1), 1, dest2, hi1, nil); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.CacheResidentRows == 0 || st.CacheResidentBytes == 0 {
		t.Fatal("built cache should be resident")
	}

	dir := t.TempDir()
	n, err := db.SpillIdle(dir, futureCutoff())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cache state spilled")
	}
	st := db.Stats()
	if st.CacheResidentRows != 0 || st.CacheResidentBytes != 0 {
		t.Fatalf("spill left resident gauges at rows=%d bytes=%d", st.CacheResidentRows, st.CacheResidentBytes)
	}
	if st.SpilledBytes == 0 {
		t.Fatal("SpilledBytes not accounted")
	}
	builds := st.CacheBuilds

	// The next window must reload (not rebuild) and still match uncached.
	hi2 := mutateStar(t, db, 9, 3)
	q := starQuery(0, hi1, hi2)
	if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.ExecutePropagationCached(q, 1, dest2, hi2, nil); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.ColdLoads == 0 {
		t.Fatal("no cold loads recorded")
	}
	if st.CacheBuilds != builds {
		t.Fatalf("reload should not rebuild: %d -> %d builds", builds, st.CacheBuilds)
	}
	for ts := hi1 + 1; ts <= hi2; ts++ {
		if !relalg.Equivalent(dest1.Window(ts-1, ts), dest2.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
}

// TestCacheSpillCorruptFallsBackToRebuild damages a spilled index file; the
// next cached query must silently rebuild from the heap and stay correct.
func TestCacheSpillCorruptFallsBackToRebuild(t *testing.T) {
	db := buildStar(t)
	db.SetTriggerSink(&deltaMirror{db})
	hi1 := mutateStar(t, db, 9, 0)

	dest1, _ := db.CreateStandaloneDelta("dest-uncached", starResultSchema())
	dest2, _ := db.CreateStandaloneDelta("dest-cached", starResultSchema())
	if _, _, _, err := db.ExecutePropagationCached(starQuery(0, 0, hi1), 1, dest2, hi1, nil); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if n, err := db.SpillIdle(dir, futureCutoff()); err != nil || n == 0 {
		t.Fatalf("spill: n=%d err=%v", n, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no spill files: %v (%v)", ents, err)
	}
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0xFF // break the CRC trailer
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	builds := db.Stats().CacheBuilds

	hi2 := mutateStar(t, db, 9, 3)
	q := starQuery(0, hi1, hi2)
	if _, _, _, err := db.ExecutePropagation(q, 1, dest1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := db.ExecutePropagationCached(q, 1, dest2, hi2, nil); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.CacheBuilds <= builds {
		t.Fatal("corrupt spill file should force a rebuild")
	}
	for ts := hi1 + 1; ts <= hi2; ts++ {
		if !relalg.Equivalent(dest1.Window(ts-1, ts), dest2.Window(ts-1, ts)) {
			t.Fatalf("timed delta tables differ at ts=%d", ts)
		}
	}
	// The damaged files were discarded so they can never satisfy a later
	// load.
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("damaged spill files not removed: %v", ents)
	}
}

// TestHorizonLedgerFloor pins and unpins named horizons and checks the
// floor composes the stable CSN, pins, and open snapshots.
func TestHorizonLedgerFloor(t *testing.T) {
	db := buildStar(t)
	led := db.Horizons()
	stable := db.StableCSN()
	if got := led.Floor(); got != stable {
		t.Fatalf("floor %d with no pins, want stable %d", got, stable)
	}
	led.Pin("checkpoint", 1)
	if got := led.Floor(); got != 1 {
		t.Fatalf("floor %d with pin at 1", got)
	}
	led.Pin("checkpoint", stable+100) // a pin above stable does not raise the floor
	if got := led.Floor(); got != stable {
		t.Fatalf("floor %d with high pin, want %d", got, stable)
	}
	snap, err := db.OpenSnapshot(relalg.NullTS)
	if err != nil {
		t.Fatal(err)
	}
	asOf := snap.AsOf()
	tx := db.Begin()
	tx.Insert("fact", tuple.Tuple{tuple.Int(99), tuple.Int(99)})
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := led.Floor(); got != asOf {
		t.Fatalf("floor %d with open snapshot at %d", got, asOf)
	}
	snap.Close()
	led.Unpin("checkpoint")
	if got := led.Floor(); got != db.StableCSN() {
		t.Fatalf("floor %d after unpin, want stable %d", got, db.StableCSN())
	}
}
