package engine

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// A Derived registers a maintained view's output as a relation the query
// layer can read: an immutable base image (the view's contents at the image
// time) plus the view's own timed delta table. The state visible at time t
// is the net effect of the image and the delta window (imageTime, t] — the
// same roll-forward rule the apply process uses, evaluated lazily per scan.
//
// Determinism: delta rows at or below the view's propagation high-water
// mark are immutable (propagation only appends rows above the HWM), so a
// scan at t ≤ HWM always reproduces the same multiset. Callers that need a
// complete state gate on the HWM before scanning (the executor's
// WaitProgress call); ScanAsOf itself does not block.
//
// This is what lets a materialized view appear as an InputBase position in
// a downstream propagation query: views over views are planned, snapshot-
// read, and propagated through exactly the same machinery as views over
// base tables.
type Derived struct {
	name   string
	schema *tuple.Schema
	delta  *DeltaTable
	hwm    func() relalg.CSN
	db     *DB

	// lastTouch is the unix-nano stamp of the last access (scan, image
	// replacement, or fold); the cold-spill sweep compares it to its
	// idleness cutoff.
	lastTouch atomic.Int64

	mu        sync.RWMutex
	image     map[string]int64 // tuple.EncodeRow encoding -> net count
	imageTime relalg.CSN
	spilled   bool   // image serialized to spillPath, in-memory copy dropped
	spillPath string // set while spilled
}

// ErrNoSuchDerived marks lookups of unregistered derived relations.
var ErrNoSuchDerived = fmt.Errorf("engine: no such derived relation")

// ErrDerivedPruned is returned when a derived scan targets a time below the
// image time: the delta rows needed to reconstruct that state were folded
// into the image (CompactThrough) and are gone.
var ErrDerivedPruned = fmt.Errorf("engine: derived state pruned below requested time")

// RegisterDerived registers a maintained view's output relation under its
// view name. The delta table must already be registered (typically via
// CreateStandaloneDelta under the same name); hwm reports the view's
// propagation high-water mark, which is the time a NullTS scan reads at.
func (db *DB) RegisterDerived(name string, schema *tuple.Schema, delta *DeltaTable, hwm func() relalg.CSN) (*Derived, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: table %q shadows derived", ErrExists, name)
	}
	if db.derived == nil {
		db.derived = make(map[string]*Derived)
	}
	if _, ok := db.derived[name]; ok {
		return nil, fmt.Errorf("%w: derived %q", ErrExists, name)
	}
	dv := &Derived{
		name:   name,
		schema: schema,
		delta:  delta,
		hwm:    hwm,
		db:     db,
		image:  make(map[string]int64),
	}
	dv.touch()
	db.derived[name] = dv
	return dv, nil
}

// Derived looks up a registered derived relation.
func (db *DB) Derived(name string) (*Derived, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	dv, ok := db.derived[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDerived, name)
	}
	return dv, nil
}

// derivedByName is the nil-on-miss lookup the planner uses on its
// InputBase fallback paths.
func (db *DB) derivedByName(name string) *Derived {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.derived[name]
}

// IsDerived reports whether name is a registered derived relation.
func (db *DB) IsDerived(name string) bool { return db.derivedByName(name) != nil }

// UnregisterDerived removes a derived registration (view drop). The delta
// table is removed separately with DropStandaloneDelta.
func (db *DB) UnregisterDerived(name string) {
	db.mu.Lock()
	delete(db.derived, name)
	db.mu.Unlock()
}

// DropStandaloneDelta removes a standalone (view) delta table registration
// so the name can be reused by a later view definition. It must not be
// called for base-table deltas (the capture process holds those).
func (db *DB) DropStandaloneDelta(name string) {
	db.mu.Lock()
	delete(db.deltas, name)
	db.mu.Unlock()
}

// Name returns the derived relation's name (the view name).
func (dv *Derived) Name() string { return dv.name }

// Schema returns the derived relation's output schema.
func (dv *Derived) Schema() *tuple.Schema { return dv.schema }

// HWM returns the view's current propagation high-water mark.
func (dv *Derived) HWM() relalg.CSN { return dv.hwm() }

// ImageTime returns the time of the base image: the floor below which
// derived state can no longer be reconstructed.
func (dv *Derived) ImageTime() relalg.CSN {
	dv.mu.RLock()
	defer dv.mu.RUnlock()
	return dv.imageTime
}

// SetImage replaces the base image with rel's net effect at time t (the
// view's initial materialization).
func (dv *Derived) SetImage(rel *relalg.Relation, t relalg.CSN) {
	img := make(map[string]int64, rel.Len())
	var enc []byte
	for _, r := range relalg.NetEffect(rel).Rows {
		enc = tuple.EncodeRow(enc[:0], r.Tuple)
		img[string(enc)] += r.Count
	}
	for k, c := range img {
		if c == 0 {
			delete(img, k)
		}
	}
	dv.mu.Lock()
	dv.image = img
	dv.imageTime = t
	if dv.spilled {
		// The fresh image supersedes any spilled copy.
		os.Remove(dv.spillPath)
		dv.spilled = false
		dv.spillPath = ""
	}
	dv.touch()
	dv.mu.Unlock()
}

// CompactThrough folds the delta window (imageTime, t] into the base image
// and advances the image time, enabling the window's delta rows to be
// pruned. Scans below the new image time fail with ErrDerivedPruned, so
// callers must not compact past any downstream reader's high-water mark.
func (dv *Derived) CompactThrough(t relalg.CSN) error {
	dv.mu.Lock()
	defer dv.mu.Unlock()
	if t <= dv.imageTime {
		// Nothing to fold; a spilled image stays cold.
		return nil
	}
	if err := dv.loadLocked(); err != nil {
		return err
	}
	if err := dv.foldWindowLocked(dv.image, dv.imageTime, t); err != nil {
		return err
	}
	dv.imageTime = t
	dv.touch()
	return nil
}

// foldWindowLocked folds the delta window (lo, hi] into img, reading the
// stored encodings directly off the delta B+ trees (no tuples materialize).
func (dv *Derived) foldWindowLocked(img map[string]int64, lo, hi relalg.CSN) error {
	if hi <= lo {
		return nil
	}
	d := dv.delta
	d.latch.RLock()
	defer d.latch.RUnlock()
	start := deltaKey(lo+1, 0)
	end := deltaKey(hi+1, 0)
	for _, sh := range d.shards {
		for it := sh.Seek(start); it.Valid() && string(it.Key()) < string(end); it.Next() {
			v := it.Value()
			count, n := binary.Varint(v)
			if n <= 0 {
				return fmt.Errorf("engine: corrupt delta value in derived %q", dv.name)
			}
			k := string(v[n:])
			if c := img[k] + count; c == 0 {
				delete(img, k)
			} else {
				img[k] = c
			}
		}
	}
	return nil
}

// netAt computes the derived state at time t as encoded-row -> net count.
// t == NullTS reads the latest complete state (the propagation HWM).
func (dv *Derived) netAt(t relalg.CSN) (map[string]int64, error) {
	if t == relalg.NullTS {
		t = dv.hwm()
	}
	// Write mode, not read: a spilled image must be reloaded before the
	// copy, and loadLocked mutates.
	dv.mu.Lock()
	lo := dv.imageTime
	if t < lo {
		dv.mu.Unlock()
		return nil, fmt.Errorf("%w: %q image at %d, asked for %d", ErrDerivedPruned, dv.name, lo, t)
	}
	if err := dv.loadLocked(); err != nil {
		dv.mu.Unlock()
		return nil, err
	}
	dv.touch()
	img := make(map[string]int64, len(dv.image))
	for k, c := range dv.image {
		img[k] = c
	}
	dv.mu.Unlock()
	if err := dv.foldWindowLocked(img, lo, t); err != nil {
		return nil, err
	}
	return img, nil
}

// ScanAsOf materializes the derived state at time t as a relation (rows
// carry their net counts and null timestamps, like a base-table scan), for
// the materializing fallback executor. asOf == NullTS reads the HWM state.
func (dv *Derived) ScanAsOf(asOf relalg.CSN, pred relalg.Predicate) (*relalg.Relation, error) {
	net, err := dv.netAt(asOf)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(net))
	for k := range net {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := relalg.NewRelation(dv.schema)
	for _, k := range keys {
		t, _, err := tuple.DecodeRow([]byte(k))
		if err != nil {
			return nil, fmt.Errorf("engine: corrupt derived row in %q: %w", dv.name, err)
		}
		out.Add(t, net[k], relalg.NullTS)
	}
	if pred != nil {
		out = relalg.Select(out, pred)
	}
	return out, nil
}

// derivedScan streams a derived relation's state at asOf in batches: the
// columnar leaf operator behind an InputBase position that names a
// registered derived relation. The net state (image ⊕ delta window) is
// computed at Open; rows decode straight from their stored encodings into
// the output batch's columns, exactly like the base-table scan. Rows carry
// their net multiplicity and the null timestamp, so the count-product and
// min-timestamp combination rules treat a derived input like a base table.
type derivedScan struct {
	db   *DB
	dv   *Derived
	pred relalg.Predicate
	asOf relalg.CSN
	spec *PartSpec

	keys       []string
	net        map[string]int64
	pos        int
	scanned    int64
	fin, fkept int64
	opened     bool
}

// Open implements exec.Operator.
func (s *derivedScan) Open() error {
	net, err := s.dv.netAt(s.asOf)
	if err != nil {
		return err
	}
	s.net = net
	s.keys = make([]string, 0, len(net))
	for k := range net {
		s.keys = append(s.keys, k)
	}
	sort.Strings(s.keys)
	s.pos = 0
	s.opened = true
	return nil
}

// Next implements exec.Operator.
func (s *derivedScan) Next(out *relalg.Batch) (bool, error) {
	max := s.db.batchSize
	for {
		out.Reset()
		for out.Len() < max && s.pos < len(s.keys) {
			k := s.keys[s.pos]
			s.pos++
			if _, err := out.AppendDecodedRow([]byte(k), s.net[k], relalg.NullTS); err != nil {
				return false, fmt.Errorf("engine: corrupt derived row in %q: %w", s.dv.name, err)
			}
		}
		if s.spec.sliced() {
			// Derived deltas are unpartitioned, so co-partitioning never
			// slices a derived input; honor an explicit spec anyway.
			out.Retain(func(i int) bool { return s.spec.admits(out.ValueAt(i, 0), false) })
		}
		if s.pred != nil {
			before := int64(out.Len())
			relalg.FilterBatch(s.pred, out)
			s.fin += before
			s.fkept += int64(out.Len())
		}
		s.scanned += int64(out.Len())
		if out.Len() > 0 {
			return true, nil
		}
		if s.pos >= len(s.keys) {
			return false, nil
		}
	}
}

// Close implements exec.Operator.
func (s *derivedScan) Close() error {
	if s.opened {
		s.opened = false
		s.net = nil
		s.keys = nil
		s.db.addScanned(s.scanned)
		s.db.addFilterStats(s.fin, s.fkept)
	}
	return nil
}
