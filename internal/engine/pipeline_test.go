package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// pipelineDB builds a database with three (k, v) base tables of varying
// sizes, populated deltas, and an index on t1.k — enough surface for the
// planner to exercise table scans, delta-window scans, hash joins (both
// build sides), index-nested-loop probes, residuals, and projections.
func pipelineDB(t *testing.T, r *rand.Rand, withIndex bool) *DB {
	t.Helper()
	db := testDB(t)
	kv := tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
	sizes := []int{40, 25, 12}
	for i, size := range sizes {
		name := fmt.Sprintf("t%d", i+1)
		if _, err := db.CreateTable(name, kv); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateDelta(name); err != nil {
			t.Fatal(err)
		}
		tx := db.Begin()
		for j := 0; j < size; j++ {
			row := tuple.Tuple{tuple.Int(int64(r.Intn(8))), tuple.Int(int64(j))}
			mustExec(t, tx, tx.Insert(name, row))
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		d, _ := db.Delta(name)
		for j := 0; j < 15; j++ {
			count := int64(1)
			if r.Intn(4) == 0 {
				count = -1
			}
			d.Append(relalg.CSN(j+1), count,
				tuple.Tuple{tuple.Int(int64(r.Intn(8))), tuple.Int(int64(100 + j))})
		}
	}
	if withIndex {
		if _, err := db.CreateIndex("t1", "k"); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// randomQuery builds a random 2–3 way SPJ propagation-style query: one
// delta position with a random window, the rest base tables, equi-join
// conditions on k, an occasional pushdown or residual predicate, and an
// occasional projection.
func randomQuery(r *rand.Rand, nInputs int) *Query {
	q := &Query{}
	deltaPos := r.Intn(nInputs)
	for i := 0; i < nInputs; i++ {
		name := fmt.Sprintf("t%d", i+1)
		in := Input{Kind: InputBase, Table: name}
		if i == deltaPos {
			lo := relalg.CSN(r.Intn(8))
			hi := lo + relalg.CSN(r.Intn(8))
			in = Input{Kind: InputDelta, Table: name, Lo: lo, Hi: hi}
		}
		if r.Intn(3) == 0 {
			in.Pred = relalg.ColConst{Col: 0, Op: relalg.OpLE, Val: tuple.Int(int64(r.Intn(8)))}
		}
		q.Inputs = append(q.Inputs, in)
	}
	for i := 1; i < nInputs; i++ {
		q.Conds = append(q.Conds, JoinCond{
			A: ColRef{Input: i - 1, Col: 0},
			B: ColRef{Input: i, Col: 0},
		})
	}
	if r.Intn(3) == 0 {
		q.Residual = relalg.ColCol{ColA: 1, Op: relalg.OpNE, ColB: 2*nInputs - 1}
	}
	if r.Intn(3) == 0 {
		q.Project = []ColRef{{Input: deltaPos, Col: 0}, {Input: deltaPos, Col: 1}}
	}
	return q
}

// identicalRelations asserts the two relations hold the same multiset of
// (tuple, count, timestamp) rows — stricter than relalg.Equivalent, which
// consolidates counts and nulls timestamps.
func identicalRelations(t *testing.T, label string, got, want *relalg.Relation) {
	t.Helper()
	canon := func(rel *relalg.Relation) []relalg.Row {
		rows := append([]relalg.Row(nil), rel.Rows...)
		sort.Slice(rows, func(i, j int) bool {
			if c := rows[i].Tuple.Compare(rows[j].Tuple); c != 0 {
				return c < 0
			}
			if rows[i].Count != rows[j].Count {
				return rows[i].Count < rows[j].Count
			}
			return rows[i].TS < rows[j].TS
		})
		return rows
	}
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: row count %d != %d\npipeline: %s\nmaterialize: %s", label, len(g), len(w), got, want)
	}
	for i := range g {
		if !g[i].Tuple.Equal(w[i].Tuple) || g[i].Count != w[i].Count || g[i].TS != w[i].TS {
			t.Fatalf("%s: row %d: pipeline %v != materialize %v", label, i, g[i], w[i])
		}
	}
	if got.Schema.Arity() != want.Schema.Arity() {
		t.Fatalf("%s: schema arity %d != %d", label, got.Schema.Arity(), want.Schema.Arity())
	}
}

// TestEvalQueryMatchesMaterializeExec quick-checks the planner: every
// operator-tree plan must produce exactly the rows of the old materializing
// executor, across randomized queries, with and without an index available.
func TestEvalQueryMatchesMaterializeExec(t *testing.T) {
	for _, withIndex := range []bool{false, true} {
		r := rand.New(rand.NewSource(7))
		db := pipelineDB(t, r, withIndex)
		for trial := 0; trial < 120; trial++ {
			q := randomQuery(r, 2+r.Intn(2))
			label := fmt.Sprintf("index=%v trial=%d q=%s", withIndex, trial, q)

			tx := db.Begin()
			got, err := tx.EvalQuery(q)
			if err != nil {
				tx.Abort()
				t.Fatalf("%s: EvalQuery: %v", label, err)
			}
			tx.Commit()

			tx = db.Begin()
			want, err := tx.MaterializeExec(q)
			if err != nil {
				tx.Abort()
				t.Fatalf("%s: MaterializeExec: %v", label, err)
			}
			tx.Commit()

			identicalRelations(t, label, got, want)
		}
	}
}

// TestIndexProbeVsHashJoinAgreement runs the same delta ⋈ base query on
// two databases that differ only in whether the base column is indexed, so
// the planner takes the index-nested-loop path on one and the streaming
// hash-join path on the other. Results must be identical, and the indexed
// plan must actually have probed.
func TestIndexProbeVsHashJoinAgreement(t *testing.T) {
	run := func(withIndex bool) (*relalg.Relation, Stats) {
		r := rand.New(rand.NewSource(11))
		db := pipelineDB(t, r, withIndex)
		q := &Query{
			Inputs: []Input{
				{Kind: InputDelta, Table: "t2", Lo: 0, Hi: 10},
				{Kind: InputBase, Table: "t1"},
			},
			Conds: []JoinCond{{A: ColRef{Input: 0, Col: 0}, B: ColRef{Input: 1, Col: 0}}},
		}
		tx := db.Begin()
		rel, err := tx.EvalQuery(q)
		if err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		tx.Commit()
		return rel, db.Stats()
	}
	indexed, indexedStats := run(true)
	hashed, hashedStats := run(false)
	identicalRelations(t, "index vs hash", indexed, hashed)
	if indexedStats.IndexProbes == 0 {
		t.Fatal("indexed plan did not use index probes")
	}
	if hashedStats.IndexProbes != 0 {
		t.Fatal("unindexed plan reported index probes")
	}
}

// TestForceMaterializeKnob verifies the A/B switch routes through the
// fallback executor (visible through the scanned-rows accounting: the
// fallback materializes the delta window even when it is empty, while the
// pipeline short-circuits the probe side for an empty build).
func TestForceMaterializeKnob(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	db := pipelineDB(t, r, false)
	q := &Query{
		Inputs: []Input{
			{Kind: InputDelta, Table: "t3", Lo: 100, Hi: 100}, // empty window
			{Kind: InputBase, Table: "t1"},
		},
		Conds: []JoinCond{{A: ColRef{Input: 0, Col: 0}, B: ColRef{Input: 1, Col: 0}}},
	}
	runOnce := func() int64 {
		before := db.Stats().RowsScanned
		tx := db.Begin()
		rel, err := tx.EvalQuery(q)
		if err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		tx.Commit()
		if rel.Len() != 0 {
			t.Fatalf("empty window join returned %d rows", rel.Len())
		}
		return db.Stats().RowsScanned - before
	}
	pipelineScanned := runOnce()
	db.SetForceMaterialize(true)
	materializeScanned := runOnce()
	db.SetForceMaterialize(false)
	if pipelineScanned != 0 {
		t.Fatalf("pipeline scanned %d rows for an identically empty join", pipelineScanned)
	}
	if materializeScanned == 0 {
		t.Fatal("force-materialize knob did not route through the fallback executor")
	}
}
