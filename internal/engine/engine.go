// Package engine implements the embedded multiset relational engine that
// plays the role of DB2 in the paper's prototype (Section 5, Figure 11):
// heap tables behind a strict-2PL lock manager, a write-ahead log consumed
// by the capture process, timestamp-ordered delta tables, and an executor
// for select-project-join propagation queries.
//
// Locking protocol: writers take IX on the table plus X on each touched
// row; scans take S on the table. A long-running propagation query
// therefore blocks base-table writers for its duration — precisely the
// contention the rolling propagation algorithm bounds by shrinking
// propagation intervals.
package engine

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Common engine errors.
var (
	ErrNoSuchTable = errors.New("engine: no such table")
	ErrNoSuchDelta = errors.New("engine: no delta table registered")
	ErrExists      = errors.New("engine: object already exists")
)

// Write describes one base-table change made by a transaction; it is fed to
// the trigger sink (trigger-based capture) at commit.
type Write struct {
	Table string
	Row   tuple.Tuple
	Count int64 // +1 insert, -1 delete
}

// TriggerSink receives a committed transaction's writes synchronously inside
// the commit critical section. It models the paper's trigger-based capture
// alternative, including its cost: the work expands the writer's commit
// path.
type TriggerSink interface {
	OnCommit(writes []Write, csn relalg.CSN, wall time.Time)
}

// Config configures an engine instance.
type Config struct {
	// Device backs the write-ahead log. Nil means an in-memory device.
	Device wal.Device
	// SyncOnCommit forces a log sync inside every commit.
	SyncOnCommit bool
	// Partitions hash-partitions every base table's version store and
	// delta table by join-key (column 0) hash into N partitions, enabling
	// per-partition propagation slices and sharded join-state caches.
	// 0 defers to the ROLLINGJOIN_PARTITIONS environment variable (the
	// test hook for running the whole suite partitioned), then defaults
	// to 1 — the unpartitioned seed behavior, byte for byte.
	Partitions int
	// DisableHeavySplit turns off the heavy/light key classifier while
	// keeping plain hash partitioning (the "plain hash" A/B arm).
	DisableHeavySplit bool
	// BatchSize is the row capacity the streaming scans and join operators
	// aim for per batch. 0 defers to the ROLLINGJOIN_BATCH environment
	// variable, then to exec.DefaultBatchSize.
	BatchSize int
	// Replica opens the engine as a read-only replication target: client
	// write paths return ErrReadOnly, local commits are quiet (no CSN, no
	// WAL record — the CSN axis belongs to the leader), and base-table
	// state advances only through ApplyReplicated as shipped leader
	// commits replay.
	Replica bool
}

// DB is an embedded database instance.
type DB struct {
	tm  *txn.Manager
	log *wal.Log

	mu       sync.RWMutex // guards the catalog maps
	tables   map[string]*Table
	deltas   map[string]*DeltaTable // keyed by base-table name
	derived  map[string]*Derived    // maintained views readable as relations
	sketches map[string]*keySketch  // per-table heavy/light frequency sketches

	// nparts is the instance-wide hash-partition count (>= 1); every base
	// table and base delta is partitioned the same N ways on column 0, so
	// equal join keys land in the same partition everywhere (the
	// co-partitioning requirement, DESIGN.md §9).
	nparts     int
	heavySplit bool

	// batchSize is the per-instance batch row capacity (Config.BatchSize
	// resolved against ROLLINGJOIN_BATCH and the exec default).
	batchSize int

	sinkMu      sync.RWMutex
	triggerSink TriggerSink

	cfg Config

	// forceMaterialize routes EvalQuery through the materializing fallback
	// instead of the operator pipeline (A/B benching and equivalence tests).
	forceMaterialize atomic.Bool

	// joinCache enables the resident join-state cache for propagation
	// queries (ExecutePropagationCached); cache is its registry.
	joinCache atomic.Bool
	cache     *JoinCache

	// ReadView registry (readview.go): open snapshots pin the version-GC
	// horizon; gcHorizon is the CSN through which dead versions have been
	// collected.
	snapMu      sync.Mutex
	activeSnaps map[relalg.CSN]int
	gcHorizon   relalg.CSN

	// Activity counters are atomics: propagation queries may run on a
	// worker pool, and the streaming scans report from operator Close.
	rowsScanned  atomic.Int64
	rowsJoined   atomic.Int64
	queriesRun   atomic.Int64
	rowsInserted atomic.Int64
	rowsDeleted  atomic.Int64
	indexProbes  atomic.Int64

	// Join-state cache counters (see cache.go).
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	cacheMaintRows     atomic.Int64
	cacheBuilds        atomic.Int64
	cacheInvalidations atomic.Int64
	cacheResidentRows  atomic.Int64
	cacheResidentBytes atomic.Int64

	// Snapshot counters (see readview.go).
	snapshotsOpened atomic.Int64
	versionsGCed    atomic.Int64

	// Tiering state and counters (see tier.go, spill.go): the fold/spill
	// horizon ledger, fold passes completed, delta rows reclaimed by folds,
	// bytes written by cold spill, and lazy reloads of spilled state.
	horizons     *HorizonLedger
	compactions  atomic.Int64
	foldedRows   atomic.Int64
	spilledBytes atomic.Int64
	coldLoads    atomic.Int64

	// Batch-layer counters (query.go): batches and rows produced by
	// streaming pipelines, filter traffic for the selection-vector hit
	// rate, and the resident bytes of the last released pipeline arena.
	batchesProduced atomic.Int64
	batchRows       atomic.Int64
	filterRowsIn    atomic.Int64
	filterRowsKept  atomic.Int64
	arenaBytes      atomic.Int64

	// Per-partition counters (partition.go / heavy.go): rows scanned by
	// sliced scans, delta rows routed to each partition, per-partition
	// propagation slice jobs, cache fold rows per partition, and
	// heavy/light migrations.
	partScanned   []atomic.Int64
	partDeltaRows []atomic.Int64
	partSliceJobs []atomic.Int64
	partCacheRows []atomic.Int64
	keyMigrations atomic.Int64

	// schedStats, when set, reports the maintenance scheduler's counters
	// (the scheduler lives above the engine; the hook pulls its snapshot
	// into Stats so one call covers the whole instance).
	schedStats atomic.Pointer[func() SchedStats]

	// replica marks the engine as a read-only replication target; see
	// Config.Replica. appliedCSN tracks the highest leader commit replayed
	// through ApplyReplicated.
	replica    bool
	appliedCSN atomic.Int64

	// replStats, when set, reports the replication layer's counters (the
	// tailer lives above the engine, like the scheduler).
	replStats atomic.Pointer[func() ReplStats]
}

// DefaultForceMaterialize seeds every newly opened DB's force-materialize
// flag, letting a whole experiment be flipped onto the fallback executor
// without threading the knob through construction sites.
var DefaultForceMaterialize = false

// DefaultJoinCache seeds every newly opened DB's join-cache flag, the same
// way DefaultForceMaterialize seeds the executor fallback. Off by default:
// the uncached path is the seed behavior and stays available for A/B runs.
var DefaultJoinCache = false

// SetForceMaterialize toggles between the streaming operator pipeline
// (false, the default) and the materializing fallback executor (true) for
// subsequent EvalQuery/StreamQuery calls.
func (db *DB) SetForceMaterialize(v bool) { db.forceMaterialize.Store(v) }

// SetJoinCache toggles the resident join-state cache for propagation
// queries. When enabled, eligible queries (base ⋈ delta with capture-backed
// bases) read base tables from incrementally maintained hash indexes
// instead of scanning the heaps under table locks.
func (db *DB) SetJoinCache(v bool) { db.joinCache.Store(v) }

// JoinCacheEnabled reports whether the join-state cache should be used for
// propagation queries. Force-materialize wins: the materializing fallback
// is the A/B baseline and must not be silently accelerated.
func (db *DB) JoinCacheEnabled() bool {
	return db.joinCache.Load() && !db.forceMaterialize.Load()
}

// Open creates a database instance, recovering the log end if the device
// has prior content.
func Open(cfg Config) (*DB, error) {
	dev := cfg.Device
	if dev == nil {
		dev = wal.NewMemDevice()
	}
	log, err := wal.NewLog(dev)
	if err != nil {
		return nil, err
	}
	nparts := cfg.Partitions
	if nparts == 0 {
		if env := os.Getenv("ROLLINGJOIN_PARTITIONS"); env != "" {
			if v, perr := strconv.Atoi(env); perr == nil && v >= 1 {
				nparts = v
			}
		}
	}
	if nparts < 1 {
		nparts = 1
	}
	bsz := cfg.BatchSize
	if bsz == 0 {
		if env := os.Getenv("ROLLINGJOIN_BATCH"); env != "" {
			if v, perr := strconv.Atoi(env); perr == nil && v >= 1 {
				bsz = v
			}
		}
	}
	if bsz < 1 {
		bsz = exec.DefaultBatchSize
	}
	db := &DB{
		tm:            txn.NewManager(),
		log:           log,
		tables:        make(map[string]*Table),
		deltas:        make(map[string]*DeltaTable),
		sketches:      make(map[string]*keySketch),
		nparts:        nparts,
		heavySplit:    nparts > 1 && !cfg.DisableHeavySplit,
		batchSize:     bsz,
		cfg:           cfg,
		partScanned:   make([]atomic.Int64, nparts),
		partDeltaRows: make([]atomic.Int64, nparts),
		partSliceJobs: make([]atomic.Int64, nparts),
		partCacheRows: make([]atomic.Int64, nparts),
		replica:       cfg.Replica,
	}
	db.forceMaterialize.Store(DefaultForceMaterialize)
	db.joinCache.Store(DefaultJoinCache)
	db.cache = newJoinCache(db)
	db.horizons = &HorizonLedger{db: db, pins: make(map[string]relalg.CSN)}
	return db, nil
}

// Partitions returns the instance-wide hash-partition count (1 =
// unpartitioned).
func (db *DB) Partitions() int { return db.nparts }

// BatchSize returns the per-instance batch row capacity the streaming
// pipelines use.
func (db *DB) BatchSize() int { return db.batchSize }

// HeavySplitEnabled reports whether the heavy/light key classifier is
// active.
func (db *DB) HeavySplitEnabled() bool { return db.heavySplit }

// addPartScanned attributes rows scanned by a partition-sliced scan to its
// partition counter (only when the slice's N matches the instance's).
func (db *DB) addPartScanned(part, n int, rows int64) {
	if n == db.nparts && part >= 0 && part < len(db.partScanned) {
		db.partScanned[part].Add(rows)
	}
}

// NotePartSliceJob counts one per-partition propagation slice job executed
// against partition part.
func (db *DB) NotePartSliceJob(part int) {
	if part >= 0 && part < len(db.partSliceJobs) {
		db.partSliceJobs[part].Add(1)
	}
}

// Close closes the log; in-flight blocking readers are woken.
func (db *DB) Close() error { return db.log.Close() }

// TM exposes the transaction manager (for stats and advanced callers).
func (db *DB) TM() *txn.Manager { return db.tm }

// Log exposes the write-ahead log (the capture process tails it).
func (db *DB) Log() *wal.Log { return db.log }

// SetTriggerSink installs or clears the trigger-based capture sink.
func (db *DB) SetTriggerSink(s TriggerSink) {
	db.sinkMu.Lock()
	db.triggerSink = s
	db.sinkMu.Unlock()
}

// CreateTable registers a new base table.
func (db *DB) CreateTable(name string, schema *tuple.Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: table %q", ErrExists, name)
	}
	t := newTable(name, schema, db.nparts, 0)
	db.tables[name] = t
	return t, nil
}

// CreateDelta registers a delta table Δ^R for the named base table. The
// capture process populates it.
func (db *DB) CreateDelta(base string) (*DeltaTable, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	bt, ok := db.tables[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, base)
	}
	if _, ok := db.deltas[base]; ok {
		return nil, fmt.Errorf("%w: delta for %q", ErrExists, base)
	}
	d := newDeltaTable(base, bt.schema, bt.nparts, bt.partCol)
	if bt.nparts > 1 {
		var sk *keySketch
		if db.heavySplit {
			sk = newKeySketch(db, base)
			db.sketches[base] = sk
		}
		d.onAppend = func(part int, key tuple.Value) {
			db.partDeltaRows[part].Add(1)
			if sk != nil {
				sk.note(tuple.EncodeKeyValue(nil, key))
			}
		}
	}
	db.deltas[base] = d
	return d, nil
}

// CreateStandaloneDelta creates a delta table not tied to a registered base
// table (used for view delta tables, whose "base" is the view itself).
func (db *DB) CreateStandaloneDelta(name string, schema *tuple.Schema) (*DeltaTable, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.deltas[name]; ok {
		return nil, fmt.Errorf("%w: delta %q", ErrExists, name)
	}
	d := newDeltaTable(name, schema, 1, 0)
	db.deltas[name] = d
	return d, nil
}

// Table looks up a base table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// Delta looks up a delta table by its base name.
func (db *DB) Delta(base string) (*DeltaTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.deltas[base]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchDelta, base)
	}
	return d, nil
}

// HasDelta reports whether a delta table is registered for base.
func (db *DB) HasDelta(base string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.deltas[base]
	return ok
}

// TableNames returns the registered base-table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LastCSN returns the most recent commit sequence number.
func (db *DB) LastCSN() relalg.CSN { return db.tm.LastCSN() }

// Stats is a snapshot of engine activity counters.
type Stats struct {
	RowsScanned  int64
	RowsJoined   int64
	QueriesRun   int64
	RowsInserted int64
	RowsDeleted  int64
	IndexProbes  int64

	// Join-state cache counters: probe hits/misses against cached indexes,
	// delta rows folded during maintenance, full (re)builds, explicit
	// invalidations, and the resident footprint (rows and approximate bytes).
	CacheHits          int64
	CacheMisses        int64
	CacheMaintRows     int64
	CacheBuilds        int64
	CacheInvalidations int64
	CacheResidentRows  int64
	CacheResidentBytes int64

	// ReadView counters: snapshots opened, publish-barrier stalls (waits
	// that had to block for an in-flight commit to finish publishing),
	// dead row versions currently retained for snapshot readers, and
	// versions removed by GC so far.
	SnapshotsOpened   int64
	PublishStalls     int64
	VersionsRetained  int64
	VersionsCollected int64

	// Partitioning counters. Partitions is the instance-wide partition
	// count; the per-partition slices have that length (all zeros at
	// Partitions == 1). PartRowsScanned counts rows read by
	// partition-sliced scans, PartDeltaRows the change records routed to
	// each partition, PartSliceJobs the per-partition propagation slice
	// jobs executed, and PartCacheRows the delta rows folded into each
	// cache shard. HeavyKeys is the number of join keys currently
	// classified heavy across all tables; KeyMigrations counts completed
	// heavy<->light migrations.
	Partitions      int
	PartRowsScanned []int64
	PartDeltaRows   []int64
	PartSliceJobs   []int64
	PartCacheRows   []int64
	HeavyKeys       int64
	KeyMigrations   int64

	// Batch-layer counters. BatchesProduced and BatchRows count the
	// batches and rows streamed out of query pipelines (rows/batch is
	// their ratio). FilterRowsIn and FilterRowsKept count rows entering
	// and surviving vectorized filters (their ratio is the
	// selection-vector hit rate). ArenaBytes is the resident footprint of
	// the most recently released pipeline arena.
	BatchesProduced int64
	BatchRows       int64
	FilterRowsIn    int64
	FilterRowsKept  int64
	ArenaBytes      int64

	// Tiering counters (tier.go, spill.go). Compactions counts completed
	// fold passes; FoldedRows the delta rows reclaimed by folding below the
	// horizon ledger's floor; SpilledBytes the cumulative bytes serialized
	// by cold spill; ColdLoads the lazy reloads of spilled state.
	// ImageResidentBytes is the current in-memory footprint of derived-view
	// base images (spilled images count zero until reloaded).
	Compactions        int64
	FoldedRows         int64
	SpilledBytes       int64
	ColdLoads          int64
	ImageResidentBytes int64

	// Sched holds the maintenance scheduler's counters when one is
	// attached (SetSchedStats); zero otherwise.
	Sched SchedStats

	// Repl holds the replication layer's gauges when one is attached
	// (SetReplStats); zero otherwise.
	Repl ReplStats

	Txn txn.Stats
}

// ReplStats is a snapshot of the replication layer attached to this
// instance: the node's role, how far the follower's replay has advanced
// against the leader's commit sequence, and shipping-volume counters. On a
// leader the gauges describe the serving side (bytes streamed out); on a
// follower they describe the tailer.
type ReplStats struct {
	// Role is "leader", "follower", or "" when no replication layer is
	// attached.
	Role string
	// FollowerCSN is the highest leader commit the follower has applied
	// locally; LeaderCSN is the leader's last observed commit. Their
	// difference, LagCSNs, is the replication lag on the CSN axis — 0
	// means every known leader commit is visible to local reads.
	FollowerCSN int64
	LeaderCSN   int64
	LagCSNs     int64
	// BytesShipped counts raw WAL bytes moved over the wire (received on a
	// follower, streamed out on a leader); Reconnects counts tailer
	// reconnection attempts after a dropped shipping stream.
	BytesShipped int64
	Reconnects   int64
}

// SetReplStats attaches the replication layer's stats snapshot function;
// Stats() consults it on every call.
func (db *DB) SetReplStats(fn func() ReplStats) { db.replStats.Store(&fn) }

// SchedStats is a snapshot of the maintenance scheduler attached to this
// database instance: worker-pool shape, event-driven wakeup activity, and
// the summed apply backlog that drives backpressure.
type SchedStats struct {
	Workers     int
	Jobs        int
	JobsRunning int
	Notifies    int64 // capture progress notifications delivered
	Wakeups     int64 // job dispatches onto a worker
	Steps       int64 // propagation/apply steps executed
	Parks       int64 // backpressure parks
	Backoffs    int64 // error backoffs
	BacklogRows int64 // pending un-applied view-delta rows (summed)
}

// SetSchedStats attaches the maintenance scheduler's stats snapshot
// function; Stats() consults it on every call.
func (db *DB) SetSchedStats(fn func() SchedStats) { db.schedStats.Store(&fn) }

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	var ss SchedStats
	if fn := db.schedStats.Load(); fn != nil {
		ss = (*fn)()
	}
	var rs ReplStats
	if fn := db.replStats.Load(); fn != nil {
		rs = (*fn)()
	}
	snap := func(cs []atomic.Int64) []int64 {
		out := make([]int64, len(cs))
		for i := range cs {
			out[i] = cs[i].Load()
		}
		return out
	}
	var heavy int64
	db.mu.RLock()
	for _, sk := range db.sketches {
		heavy += int64(sk.heavyCount())
	}
	db.mu.RUnlock()
	return Stats{
		Partitions:         db.nparts,
		PartRowsScanned:    snap(db.partScanned),
		PartDeltaRows:      snap(db.partDeltaRows),
		PartSliceJobs:      snap(db.partSliceJobs),
		PartCacheRows:      snap(db.partCacheRows),
		HeavyKeys:          heavy,
		KeyMigrations:      db.keyMigrations.Load(),
		Sched:              ss,
		Repl:               rs,
		RowsScanned:        db.rowsScanned.Load(),
		RowsJoined:         db.rowsJoined.Load(),
		QueriesRun:         db.queriesRun.Load(),
		RowsInserted:       db.rowsInserted.Load(),
		RowsDeleted:        db.rowsDeleted.Load(),
		IndexProbes:        db.indexProbes.Load(),
		CacheHits:          db.cacheHits.Load(),
		CacheMisses:        db.cacheMisses.Load(),
		CacheMaintRows:     db.cacheMaintRows.Load(),
		CacheBuilds:        db.cacheBuilds.Load(),
		CacheInvalidations: db.cacheInvalidations.Load(),
		CacheResidentRows:  db.cacheResidentRows.Load(),
		CacheResidentBytes: db.cacheResidentBytes.Load(),
		BatchesProduced:    db.batchesProduced.Load(),
		BatchRows:          db.batchRows.Load(),
		FilterRowsIn:       db.filterRowsIn.Load(),
		FilterRowsKept:     db.filterRowsKept.Load(),
		ArenaBytes:         db.arenaBytes.Load(),
		Compactions:        db.compactions.Load(),
		FoldedRows:         db.foldedRows.Load(),
		SpilledBytes:       db.spilledBytes.Load(),
		ColdLoads:          db.coldLoads.Load(),
		ImageResidentBytes: db.imageResidentBytes(),
		SnapshotsOpened:    db.snapshotsOpened.Load(),
		PublishStalls:      db.tm.Stats().PublishStalls,
		VersionsRetained:   db.DeadVersionsRetained(),
		VersionsCollected:  db.versionsGCed.Load(),
		Txn:                db.tm.Stats(),
	}
}

func (db *DB) addScanned(n int64) { db.rowsScanned.Add(n) }

// noteBatches records one drained pipeline's batch and row counts.
func (db *DB) noteBatches(rows, batches int64) {
	db.batchesProduced.Add(batches)
	db.batchRows.Add(rows)
}

// noteFilter records one vectorized filter application (rows in, kept).
func (db *DB) noteFilter(in, kept int) {
	db.filterRowsIn.Add(int64(in))
	db.filterRowsKept.Add(int64(kept))
}

// addFilterStats is noteFilter for scan-side accumulated counts.
func (db *DB) addFilterStats(in, kept int64) {
	db.filterRowsIn.Add(in)
	db.filterRowsKept.Add(kept)
}

// noteArena records a released pipeline arena's resident footprint.
func (db *DB) noteArena(a *exec.Arena) { db.arenaBytes.Store(a.Footprint()) }

func (db *DB) addJoined(n int64) { db.rowsJoined.Add(n) }

func (db *DB) addQuery() { db.queriesRun.Add(1) }

func (db *DB) addProbes(n int64) { db.indexProbes.Add(n) }

func (db *DB) addWrites(ins, del int64) {
	db.rowsInserted.Add(ins)
	db.rowsDeleted.Add(del)
}
