package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func ordersSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "id", Kind: tuple.KindInt},
		tuple.Column{Name: "item", Kind: tuple.KindString},
	)
}

func mustExec(t *testing.T, tx *Tx, err error) {
	t.Helper()
	if err != nil {
		tx.Abort()
		t.Fatal(err)
	}
}

func TestCatalog(t *testing.T) {
	db := testDB(t)
	if _, err := db.CreateTable("orders", ordersSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("orders", ordersSchema()); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate table should fail")
	}
	if _, err := db.Table("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("missing table lookup")
	}
	if _, err := db.CreateDelta("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("delta on missing base")
	}
	if _, err := db.CreateDelta("orders"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateDelta("orders"); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate delta")
	}
	if !db.HasDelta("orders") || db.HasDelta("missing") {
		t.Fatal("HasDelta")
	}
	if _, err := db.Delta("missing"); !errors.Is(err, ErrNoSuchDelta) {
		t.Fatal("missing delta lookup")
	}
	if _, err := db.CreateStandaloneDelta("dV", ordersSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateStandaloneDelta("dV", ordersSchema()); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate standalone delta")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "orders" {
		t.Fatalf("names %v", names)
	}
}

func TestInsertScanCommit(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	tx := db.Begin()
	mustExec(t, tx, tx.Insert("orders", tuple.Tuple{tuple.Int(1), tuple.String_("ball")}))
	mustExec(t, tx, tx.Insert("orders", tuple.Tuple{tuple.Int(2), tuple.String_("bat")}))
	csn, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if csn != 1 {
		t.Fatalf("csn %d", csn)
	}

	tx2 := db.Begin()
	rel, err := tx2.Scan("orders", nil)
	mustExec(t, tx2, err)
	if rel.Len() != 2 || rel.Cardinality() != 2 {
		t.Fatalf("scan %d rows", rel.Len())
	}
	for _, r := range rel.Rows {
		if r.Count != 1 || r.TS != relalg.NullTS {
			t.Fatal("base rows must be count=1 ts=null")
		}
	}
	tx2.Commit()
}

func TestInsertValidatesSchema(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	tx := db.Begin()
	if err := tx.Insert("orders", tuple.Tuple{tuple.String_("wrong"), tuple.Int(1)}); err == nil {
		t.Fatal("want validation error")
	}
	if err := tx.Insert("missing", tuple.Tuple{}); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("missing table")
	}
	tx.Abort()
}

func TestDeleteWhere(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	tx := db.Begin()
	for i := 1; i <= 10; i++ {
		mustExec(t, tx, tx.Insert("orders", tuple.Tuple{tuple.Int(int64(i)), tuple.String_("x")}))
	}
	tx.Commit()

	tx2 := db.Begin()
	n, err := tx2.DeleteWhere("orders", relalg.ColConst{Col: 0, Op: relalg.OpLE, Val: tuple.Int(4)}, 0)
	mustExec(t, tx2, err)
	if n != 4 {
		t.Fatalf("deleted %d", n)
	}
	tx2.Commit()

	tx3 := db.Begin()
	n, err = tx3.DeleteWhere("orders", nil, 2)
	mustExec(t, tx3, err)
	if n != 2 {
		t.Fatalf("limited delete %d", n)
	}
	rel, _ := tx3.Scan("orders", nil)
	if rel.Len() != 4 {
		t.Fatalf("remaining %d", rel.Len())
	}
	tx3.Commit()
}

func TestAbortUndoesWrites(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	tx := db.Begin()
	tx.Insert("orders", tuple.Tuple{tuple.Int(1), tuple.String_("keep")})
	tx.Commit()

	tx2 := db.Begin()
	tx2.Insert("orders", tuple.Tuple{tuple.Int(2), tuple.String_("drop")})
	tx2.DeleteWhere("orders", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(1)}, 0)
	tx2.Abort()

	tx3 := db.Begin()
	rel, _ := tx3.Scan("orders", nil)
	tx3.Commit()
	if rel.Len() != 1 || rel.Rows[0].Tuple[0].AsInt() != 1 {
		t.Fatalf("abort not undone: %s", rel)
	}
}

func TestWALRecordsWritten(t *testing.T) {
	dev := wal.NewMemDevice()
	db, err := Open(Config{Device: dev, SyncOnCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("orders", ordersSchema())

	tx := db.Begin()
	tx.Insert("orders", tuple.Tuple{tuple.Int(1), tuple.String_("a")})
	tx.Commit()
	txA := db.Begin()
	txA.Insert("orders", tuple.Tuple{tuple.Int(2), tuple.String_("b")})
	txA.Abort()

	r := db.Log().NewReader(0)
	var types []wal.Type
	for {
		rec, err := r.Next()
		if errors.Is(err, wal.ErrNoMore) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, rec.Type)
	}
	want := []wal.Type{wal.TypeBegin, wal.TypeInsert, wal.TypeCommit, wal.TypeBegin, wal.TypeInsert, wal.TypeAbort}
	if len(types) != len(want) {
		t.Fatalf("types %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("record %d: %s want %s", i, types[i], want[i])
		}
	}
}

func TestReadOnlyCommitStillLogsCommitRecord(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	tx := db.Begin()
	tx.Scan("orders", nil)
	csn, err := tx.Commit()
	if err != nil || csn != 1 {
		t.Fatal(err)
	}
	rec, err := db.Log().NewReader(0).Next()
	if err != nil || rec.Type != wal.TypeCommit || rec.CSN != 1 {
		t.Fatalf("read-only commit must log a commit record: %+v %v", rec, err)
	}
}

func TestScanBlocksOnWriter(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	w := db.Begin()
	w.Insert("orders", tuple.Tuple{tuple.Int(1), tuple.String_("uncommitted")})

	scanned := make(chan int, 1)
	go func() {
		r := db.Begin()
		rel, err := r.Scan("orders", nil)
		if err != nil {
			scanned <- -1
			return
		}
		r.Commit()
		scanned <- rel.Len()
	}()
	select {
	case <-scanned:
		t.Fatal("scan should block while writer holds IX")
	case <-time.After(30 * time.Millisecond):
	}
	w.Commit()
	if n := <-scanned; n != 1 {
		t.Fatalf("scan after writer commit: %d", n)
	}
}

func TestDeltaTableWindowAndPrune(t *testing.T) {
	d := newDeltaTable("r", ordersSchema(), 1, 0)
	for i := 1; i <= 10; i++ {
		d.Append(relalg.CSN(i), 1, tuple.Tuple{tuple.Int(int64(i)), tuple.String_("x")})
	}
	if d.Len() != 10 || d.MaxTS() != 10 {
		t.Fatal("len/maxts")
	}
	w := d.Window(3, 7)
	if w.Len() != 4 {
		t.Fatalf("window (3,7] should have 4 rows, got %d", w.Len())
	}
	if w.Rows[0].TS != 4 || w.Rows[3].TS != 7 {
		t.Fatal("window bounds")
	}
	if d.Window(7, 3).Len() != 0 {
		t.Fatal("inverted window should be empty")
	}
	if n := d.PruneThrough(5); n != 5 {
		t.Fatalf("pruned %d", n)
	}
	if d.Len() != 5 || d.Window(0, 10).Len() != 5 {
		t.Fatal("after prune")
	}
	empty := newDeltaTable("e", ordersSchema(), 1, 0)
	if empty.MaxTS() != relalg.NullTS {
		t.Fatal("empty maxts")
	}
}

func TestDeltaAppendUndoneOnAbort(t *testing.T) {
	db := testDB(t)
	d, _ := db.CreateStandaloneDelta("dV", ordersSchema())
	tx := db.Begin()
	tx.AppendDelta(d, 5, 1, tuple.Tuple{tuple.Int(1), tuple.String_("x")})
	tx.Abort()
	if d.Len() != 0 {
		t.Fatal("delta append not undone")
	}
}

func TestEvalQueryJoin(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r1", tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "b", Kind: tuple.KindInt},
	))
	db.CreateTable("r2", tuple.NewSchema(
		tuple.Column{Name: "b", Kind: tuple.KindInt},
		tuple.Column{Name: "c", Kind: tuple.KindInt},
	))
	tx := db.Begin()
	for i := 0; i < 5; i++ {
		tx.Insert("r1", tuple.Tuple{tuple.Int(int64(i)), tuple.Int(int64(i % 2))})
		tx.Insert("r2", tuple.Tuple{tuple.Int(int64(i % 2)), tuple.Int(int64(i * 10))})
	}
	tx.Commit()

	q := &Query{
		Inputs: []Input{
			{Kind: InputBase, Table: "r1"},
			{Kind: InputBase, Table: "r2"},
		},
		Conds: []JoinCond{{A: ColRef{0, 1}, B: ColRef{1, 0}}},
	}
	tx2 := db.Begin()
	rel, err := tx2.EvalQuery(q)
	mustExec(t, tx2, err)
	tx2.Commit()
	// r1 has 3 rows with b=0, 2 with b=1; r2 has 3 rows with b=0, 2 with b=1.
	if rel.Len() != 3*3+2*2 {
		t.Fatalf("join size %d", rel.Len())
	}

	// With projection and residual.
	q2 := &Query{
		Inputs:   q.Inputs,
		Conds:    q.Conds,
		Residual: relalg.ColConst{Col: 3, Op: relalg.OpGE, Val: tuple.Int(20)},
		Project:  []ColRef{{0, 0}, {1, 1}},
	}
	tx3 := db.Begin()
	rel2, err := tx3.EvalQuery(q2)
	mustExec(t, tx3, err)
	tx3.Commit()
	if rel2.Schema.Arity() != 2 {
		t.Fatal("projection arity")
	}
	for _, r := range rel2.Rows {
		if r.Tuple[1].AsInt() < 20 {
			t.Fatal("residual not applied")
		}
	}
}

func TestEvalQueryWithDeltaAndPushdown(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r1", tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
	))
	db.CreateDelta("r1")
	d, _ := db.Delta("r1")
	tx := db.Begin()
	tx.Insert("r1", tuple.Tuple{tuple.Int(1)})
	tx.Insert("r1", tuple.Tuple{tuple.Int(2)})
	tx.Commit()
	d.Append(1, 1, tuple.Tuple{tuple.Int(1)})
	d.Append(2, 1, tuple.Tuple{tuple.Int(2)})
	d.Append(3, -1, tuple.Tuple{tuple.Int(1)})

	q := &Query{
		Inputs: []Input{
			{Kind: InputDelta, Table: "r1", Lo: 0, Hi: 2},
			{Kind: InputBase, Table: "r1", Pred: relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(1)}},
		},
		Conds: []JoinCond{{A: ColRef{0, 0}, B: ColRef{1, 0}}},
	}
	tx2 := db.Begin()
	rel, err := tx2.EvalQuery(q)
	mustExec(t, tx2, err)
	tx2.Commit()
	if rel.Len() != 1 || rel.Rows[0].TS != 1 || rel.Rows[0].Count != 1 {
		t.Fatalf("delta join: %s", rel)
	}
}

func TestEvalQueryMaterializedInput(t *testing.T) {
	db := testDB(t)
	sch := tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt})
	mat := relalg.NewRelation(sch)
	mat.Add(tuple.Tuple{tuple.Int(5)}, 2, 7)
	q := &Query{Inputs: []Input{{Kind: InputRelation, Rel: mat, Pred: relalg.True{}}}}
	tx := db.Begin()
	rel, err := tx.EvalQuery(q)
	mustExec(t, tx, err)
	tx.Commit()
	if rel.Len() != 1 || rel.Rows[0].Count != 2 {
		t.Fatal("materialized input")
	}
}

func TestExecutePropagation(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r1", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
	db.CreateDelta("r1")
	d, _ := db.Delta("r1")
	dest, _ := db.CreateStandaloneDelta("dV", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
	d.Append(1, 1, tuple.Tuple{tuple.Int(10)})
	d.Append(2, 1, tuple.Tuple{tuple.Int(20)})

	q := &Query{Inputs: []Input{{Kind: InputDelta, Table: "r1", Lo: 0, Hi: 2}}}
	csn, n, _, err := db.ExecutePropagation(q, -1, dest)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || csn == 0 {
		t.Fatalf("n=%d csn=%d", n, csn)
	}
	all := dest.All()
	if all.Len() != 2 || all.Rows[0].Count != -1 {
		t.Fatalf("dest: %s", all)
	}
	// Timestamps preserved from the source delta rows.
	if all.Rows[0].TS != 1 || all.Rows[1].TS != 2 {
		t.Fatal("dest timestamps")
	}
}

func TestExecutePropagationRejectsNullTS(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r1", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
	dest, _ := db.CreateStandaloneDelta("dV", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
	tx := db.Begin()
	tx.Insert("r1", tuple.Tuple{tuple.Int(1)})
	tx.Commit()
	q := &Query{Inputs: []Input{{Kind: InputBase, Table: "r1"}}}
	if _, _, _, err := db.ExecutePropagation(q, 1, dest); err == nil {
		t.Fatal("all-base propagation must be rejected (null timestamps)")
	}
	if dest.Len() != 0 {
		t.Fatal("aborted propagation must leave dest empty")
	}
}

type captureSink struct {
	mu     sync.Mutex
	events []struct {
		csn    relalg.CSN
		writes int
	}
}

func (s *captureSink) OnCommit(writes []Write, csn relalg.CSN, _ time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, struct {
		csn    relalg.CSN
		writes int
	}{csn, len(writes)})
}

func TestTriggerSink(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	sink := &captureSink{}
	db.SetTriggerSink(sink)

	tx := db.Begin()
	tx.Insert("orders", tuple.Tuple{tuple.Int(1), tuple.String_("a")})
	tx.Insert("orders", tuple.Tuple{tuple.Int(2), tuple.String_("b")})
	tx.Commit()

	txA := db.Begin()
	txA.Insert("orders", tuple.Tuple{tuple.Int(3), tuple.String_("c")})
	txA.Abort()

	ro := db.Begin()
	ro.Commit() // read-only: no sink call

	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.events) != 1 || sink.events[0].writes != 2 || sink.events[0].csn != 1 {
		t.Fatalf("sink events: %+v", sink.events)
	}
}

func TestConcurrentWritersDisjointRows(t *testing.T) {
	db := testDB(t)
	db.CreateTable("orders", ordersSchema())
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := db.Begin()
				err := tx.Insert("orders", tuple.Tuple{tuple.Int(int64(w*1000 + i)), tuple.String_(fmt.Sprint(w))})
				if err != nil {
					tx.Abort()
					t.Error(err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	tx := db.Begin()
	rel, _ := tx.Scan("orders", nil)
	tx.Commit()
	if rel.Len() != workers*perWorker {
		t.Fatalf("rows %d", rel.Len())
	}
	st := db.Stats()
	if st.RowsInserted != workers*perWorker || st.Txn.Committed != workers*perWorker+1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{Inputs: []Input{
		{Kind: InputBase, Table: "r1"},
		{Kind: InputDelta, Table: "r2", Lo: 3, Hi: 9},
		{Kind: InputRelation},
	}}
	want := "r1 ⋈ Δr2(3,9] ⋈ <rel>"
	if got := q.String(); got != want {
		t.Fatalf("got %q want %q", got, want)
	}
}
