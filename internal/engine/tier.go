package engine

import (
	"sync"

	"repro/internal/relalg"
)

// HorizonLedger is the shared fold/spill horizon registry. Every consumer
// of historical delta state — downstream views refreshing to a point in
// time, open snapshots, cascade upstreams, the incremental-checkpoint
// chain — registers a named pin at the oldest CSN it may still read. The
// ledger's floor (the minimum over the stable CSN, every open snapshot,
// and every pin) is the single horizon the tiering machinery folds, prunes,
// and spills against: state at or below the floor is reachable by nobody,
// so folding it into images (and later dropping the delta prefix) is
// invisible to all readers. This is the same provable-boundary discipline
// as the propagation HWM ledger, applied to storage reclamation.
type HorizonLedger struct {
	db   *DB
	mu   sync.Mutex
	pins map[string]relalg.CSN
}

// Horizons returns the instance's fold/spill horizon ledger.
func (db *DB) Horizons() *HorizonLedger { return db.horizons }

// Pin registers (or moves) a named horizon pin: the caller may still read
// state at CSNs >= csn, so the fold floor must not pass it. Pins are
// idempotent by name; re-pinning moves the existing pin.
func (l *HorizonLedger) Pin(name string, csn relalg.CSN) {
	l.mu.Lock()
	l.pins[name] = csn
	l.mu.Unlock()
}

// Unpin removes a named pin. Removing an absent pin is a no-op.
func (l *HorizonLedger) Unpin(name string) {
	l.mu.Lock()
	delete(l.pins, name)
	l.mu.Unlock()
}

// Pinned reports the named pin's CSN, if present.
func (l *HorizonLedger) Pinned(name string) (relalg.CSN, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	csn, ok := l.pins[name]
	return csn, ok
}

// Pins returns the number of registered pins (diagnostics).
func (l *HorizonLedger) Pins() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pins)
}

// Floor computes the fold horizon: the minimum over the stable CSN (no
// fold may pass a commit still publishing), every open snapshot's read
// time, and every registered pin. State strictly at or below the floor is
// unreachable by any current or future reader, so it is safe to fold into
// images and reclaim.
func (l *HorizonLedger) Floor() relalg.CSN {
	db := l.db
	floor := db.tm.StableCSN()
	db.snapMu.Lock()
	for asOf := range db.activeSnaps {
		if asOf < floor {
			floor = asOf
		}
	}
	db.snapMu.Unlock()
	l.mu.Lock()
	for _, csn := range l.pins {
		if csn < floor {
			floor = csn
		}
	}
	l.mu.Unlock()
	return floor
}

// NoteFold records one completed fold pass that reclaimed rows delta rows
// (image compactions plus delta-prefix prunes).
func (db *DB) NoteFold(rows int64) {
	db.compactions.Add(1)
	db.foldedRows.Add(rows)
}

// noteSpill records bytes written by one cold-spill serialization.
func (db *DB) noteSpill(bytes int64) { db.spilledBytes.Add(bytes) }

// noteColdLoad records one lazy reload of spilled state.
func (db *DB) noteColdLoad() { db.coldLoads.Add(1) }
