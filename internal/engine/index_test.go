package engine

import (
	"errors"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

func TestCreateIndexAndBackfill(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	tx := db.Begin()
	for i := 0; i < 10; i++ {
		tx.Insert("r", tuple.Tuple{tuple.Int(int64(i % 3)), tuple.String_("x")})
	}
	tx.Commit()

	ix, err := db.CreateIndex("r", "id")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("distinct keys %d", ix.Len())
	}
	if _, err := db.CreateIndex("r", "id"); !errors.Is(err, ErrExists) {
		t.Fatal("duplicate index")
	}
	if _, err := db.CreateIndex("r", "ghost"); err == nil {
		t.Fatal("bad column")
	}
	if _, err := db.CreateIndex("ghost", "id"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("bad table")
	}

	tbl, _ := db.Table("r")
	rows := tbl.probe(ix, tuple.Int(1), nil)
	if len(rows) != 3 { // ids 1, 4, 7
		t.Fatalf("probe: %d rows", len(rows))
	}
	if len(tbl.probe(ix, tuple.Int(99), nil)) != 0 {
		t.Fatal("probe miss")
	}
}

func TestIndexMaintainedByWritesAndAborts(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	ix, _ := db.CreateIndex("r", "id")
	tbl, _ := db.Table("r")

	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(7), tuple.String_("a")})
	tx.Commit()
	if len(tbl.probe(ix, tuple.Int(7), nil)) != 1 {
		t.Fatal("insert not indexed")
	}

	tx2 := db.Begin()
	tx2.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(7)}, 0)
	tx2.Abort()
	if len(tbl.probe(ix, tuple.Int(7), nil)) != 1 {
		t.Fatal("aborted delete should restore the index entry")
	}

	tx3 := db.Begin()
	tx3.Insert("r", tuple.Tuple{tuple.Int(8), tuple.String_("b")})
	tx3.Abort()
	if len(tbl.probe(ix, tuple.Int(8), nil)) != 0 {
		t.Fatal("aborted insert should be de-indexed")
	}

	tx4 := db.Begin()
	tx4.DeleteWhere("r", nil, 0)
	tx4.Commit()
	// Deletes are logical: the dead version (and its index entry) stays
	// resident for snapshot readers until version GC reclaims it.
	if len(tbl.probe(ix, tuple.Int(7), nil)) != 0 {
		t.Fatal("committed delete should be invisible to current-state probes")
	}
	if n, _ := db.GCVersions(); n != 1 {
		t.Fatalf("GC collected %d versions, want 1", n)
	}
	if ix.Len() != 0 {
		t.Fatal("index should be empty after full delete + GC")
	}
}

func TestEvalQueryUsesIndexNestedLoop(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r1", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
	db.CreateDelta("r1")
	db.CreateTable("r2", tuple.NewSchema(
		tuple.Column{Name: "a", Kind: tuple.KindInt},
		tuple.Column{Name: "b", Kind: tuple.KindInt},
	))
	db.CreateIndex("r2", "a")

	tx := db.Begin()
	for i := 0; i < 100; i++ {
		tx.Insert("r2", tuple.Tuple{tuple.Int(int64(i % 10)), tuple.Int(int64(i))})
	}
	tx.Commit()
	d, _ := db.Delta("r1")
	d.Append(1, 1, tuple.Tuple{tuple.Int(3)})
	d.Append(2, -1, tuple.Tuple{tuple.Int(4)})

	q := &Query{
		Inputs: []Input{
			{Kind: InputDelta, Table: "r1", Lo: 0, Hi: 2},
			{Kind: InputBase, Table: "r2"},
		},
		Conds: []JoinCond{{A: ColRef{0, 0}, B: ColRef{1, 0}}},
	}
	before := db.Stats()
	tx2 := db.Begin()
	rel, err := tx2.EvalQuery(q)
	mustExec(t, tx2, err)
	tx2.Commit()
	after := db.Stats()
	if after.IndexProbes-before.IndexProbes != 2 {
		t.Fatalf("expected 2 index probes, got %d", after.IndexProbes-before.IndexProbes)
	}
	// No full scan of r2: RowsScanned grew only by the delta rows.
	if after.RowsScanned-before.RowsScanned != 2 {
		t.Fatalf("scanned %d rows, expected 2 (delta only)", after.RowsScanned-before.RowsScanned)
	}
	if rel.Len() != 20 { // 10 matches per key
		t.Fatalf("result rows %d", rel.Len())
	}
	for _, r := range rel.Rows {
		switch r.Tuple[0].AsInt() {
		case 3:
			if r.Count != 1 || r.TS != 1 {
				t.Fatal("count/ts combination on insert")
			}
		case 4:
			if r.Count != -1 || r.TS != 2 {
				t.Fatal("count/ts combination on delete")
			}
		}
	}
}

func TestIndexJoinAgreesWithHashJoin(t *testing.T) {
	// Same query evaluated on two databases, one with an index and one
	// without, must produce φ-equivalent results.
	build := func(withIndex bool) *relalg.Relation {
		db := testDB(t)
		db.CreateTable("r1", tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}))
		db.CreateDelta("r1")
		db.CreateTable("r2", tuple.NewSchema(
			tuple.Column{Name: "a", Kind: tuple.KindInt},
			tuple.Column{Name: "b", Kind: tuple.KindInt},
		))
		if withIndex {
			db.CreateIndex("r2", "a")
		}
		tx := db.Begin()
		for i := 0; i < 40; i++ {
			tx.Insert("r2", tuple.Tuple{tuple.Int(int64(i % 5)), tuple.Int(int64(i))})
		}
		tx.Commit()
		d, _ := db.Delta("r1")
		for i := 0; i < 10; i++ {
			d.Append(relalg.CSN(i+1), 1, tuple.Tuple{tuple.Int(int64(i % 7))})
		}
		q := &Query{
			Inputs: []Input{
				{Kind: InputDelta, Table: "r1", Lo: 0, Hi: 10},
				{Kind: InputBase, Table: "r2", Pred: relalg.ColConst{Col: 1, Op: relalg.OpLT, Val: tuple.Int(30)}},
			},
			Conds: []JoinCond{{A: ColRef{0, 0}, B: ColRef{1, 0}}},
		}
		tx2 := db.Begin()
		rel, err := tx2.EvalQuery(q)
		mustExec(t, tx2, err)
		tx2.Commit()
		return rel
	}
	a, b := build(true), build(false)
	if !relalg.Equivalent(a, b) {
		t.Fatalf("index join diverges from hash join:\n%s\nvs\n%s", a, b)
	}
	if a.Len() != b.Len() {
		t.Fatalf("row counts differ: %d vs %d", a.Len(), b.Len())
	}
}
