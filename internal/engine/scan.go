package engine

import (
	"encoding/binary"
	"fmt"

	"repro/internal/btree"
	"repro/internal/relalg"
)

// This file provides the engine's leaf operators for the exec pipeline:
// streaming scans over base-table heaps and delta-table windows. Both hold
// their structure latch in read mode from Open to Close; that is safe
// because the planner has already taken the table-level S lock, so no
// writer of the scanned table can reach the latch while the scan streams,
// and concurrent propagation queries share the read latch.
//
// Both scans accept an optional PartSpec: a sliced scan reads only the
// matching hash shard (plus a per-row key filter for heavy/light slices),
// which is how a per-partition propagation job touches 1/N of the
// storage. An unsliced scan over a partitioned structure walks the shards
// one after another; relational consumers are multiset operators, so the
// shard-major order is immaterial (and with one shard it is exactly the
// seed order).
//
// Both scans are the columnar ingress: stored rows decode straight from
// their on-disk encodings into the output batch's column vectors (string
// payloads interning into the column dictionaries), then slice admission
// and pushdown predicates narrow the batch with its selection vector.
// Tuples are never materialized on this path.

// tableScan streams a base table's heap in batches, applying an optional
// pushdown predicate. Rows carry count +1 and the null timestamp, like
// Table.scan. With asOf == NullTS it streams the current state (the
// planner holds a table S lock); with a real asOf it streams the state
// visible at that CSN, lock-free under a ReadView.
type tableScan struct {
	db   *DB
	t    *Table
	pred relalg.Predicate
	asOf relalg.CSN
	spec *PartSpec

	shards     []*btree.Tree
	pure       bool // shards are hash-pure for spec (single matching shard)
	cur        int
	it         *btree.Iterator
	latched    bool
	scanned    int64
	fin, fkept int64 // pushdown-filter traffic (rows in, rows kept)
}

// Open implements exec.Operator.
func (s *tableScan) Open() error {
	s.t.latch.RLock()
	s.latched = true
	s.shards, s.pure = s.t.sliceShards(s.spec)
	s.cur = 0
	s.it = s.shards[0].First()
	return nil
}

// decodeVersionHeader splits a heap value into its version header and the
// still-encoded row payload (the columnar ingress does not materialize
// the tuple).
func decodeVersionHeader(v []byte) (born, dead relalg.CSN, enc []byte) {
	if len(v) < 16 {
		panic("engine: corrupt heap row: short version header")
	}
	born = relalg.CSN(binary.BigEndian.Uint64(v[0:8]))
	dead = relalg.CSN(binary.BigEndian.Uint64(v[8:16]))
	return born, dead, v[16:]
}

// Next implements exec.Operator.
func (s *tableScan) Next(out *relalg.Batch) (bool, error) {
	max := s.db.batchSize
	for {
		out.Reset()
		exhausted := false
		for out.Len() < max {
			if !s.it.Valid() {
				s.cur++
				if s.cur >= len(s.shards) {
					exhausted = true
					break
				}
				s.it = s.shards[s.cur].First()
				continue
			}
			born, dead, enc := decodeVersionHeader(s.it.Value())
			s.it.Next()
			if s.asOf == relalg.NullTS {
				if dead != csnNone {
					continue
				}
			} else if !visibleAt(born, dead, s.asOf) {
				continue
			}
			if _, err := out.AppendDecodedRow(enc, 1, relalg.NullTS); err != nil {
				return false, fmt.Errorf("engine: corrupt heap row: %w", err)
			}
		}
		if s.spec.sliced() {
			pc := s.t.partCol
			out.Retain(func(i int) bool { return s.spec.admits(out.ValueAt(i, pc), s.pure) })
		}
		if s.pred != nil {
			before := int64(out.Len())
			relalg.FilterBatch(s.pred, out)
			s.fin += before
			s.fkept += int64(out.Len())
		}
		s.scanned += int64(out.Len())
		if out.Len() > 0 {
			return true, nil
		}
		if exhausted {
			return false, nil
		}
	}
}

// Close implements exec.Operator.
func (s *tableScan) Close() error {
	if s.latched {
		s.latched = false
		s.t.latch.RUnlock()
		s.db.addScanned(s.scanned)
		s.db.addFilterStats(s.fin, s.fkept)
		if s.spec.sliced() {
			s.db.addPartScanned(s.spec.shard(), s.spec.N, s.scanned)
		}
	}
	return nil
}

// deltaScan streams the delta-table window (lo, hi] in timestamp order,
// with the window bounds and the optional pushdown predicate applied
// directly at the scan — no intermediate relation is materialized. A
// sliced scan is the per-partition delta cursor: it seeks into just the
// slice's shard.
type deltaScan struct {
	db     *DB
	d      *DeltaTable
	lo, hi relalg.CSN
	pred   relalg.Predicate
	spec   *PartSpec

	shards     []*btree.Tree
	pure       bool
	cur        int
	it         *btree.Iterator
	start      []byte
	end        []byte
	latched    bool
	scanned    int64
	fin, fkept int64
}

// Open implements exec.Operator.
func (s *deltaScan) Open() error {
	if s.hi <= s.lo {
		return nil
	}
	s.d.latch.RLock()
	s.latched = true
	if s.spec.sliced() && s.spec.N == s.d.nparts {
		s.shards = s.d.shards[s.spec.shard() : s.spec.shard()+1]
		s.pure = true
	} else {
		s.shards = s.d.shards
	}
	s.start = deltaKey(s.lo+1, 0)
	s.end = deltaKey(s.hi+1, 0)
	s.cur = 0
	s.it = s.shards[0].Seek(s.start)
	return nil
}

// Next implements exec.Operator.
func (s *deltaScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if !s.latched {
		return false, nil
	}
	max := s.db.batchSize
	for {
		out.Reset()
		exhausted := false
		for out.Len() < max {
			if !s.it.Valid() || string(s.it.Key()) >= string(s.end) {
				s.cur++
				if s.cur >= len(s.shards) {
					exhausted = true
					break
				}
				s.it = s.shards[s.cur].Seek(s.start)
				continue
			}
			ts := relalg.CSN(binary.BigEndian.Uint64(s.it.Key()[0:8]))
			v := s.it.Value()
			count, n := binary.Varint(v)
			if n <= 0 {
				panic("engine: corrupt delta value")
			}
			s.it.Next()
			if _, err := out.AppendDecodedRow(v[n:], count, ts); err != nil {
				return false, fmt.Errorf("engine: corrupt delta row: %w", err)
			}
		}
		if s.spec.sliced() {
			pc := s.d.partCol
			out.Retain(func(i int) bool { return s.spec.admits(out.ValueAt(i, pc), s.pure) })
		}
		if s.pred != nil {
			before := int64(out.Len())
			relalg.FilterBatch(s.pred, out)
			s.fin += before
			s.fkept += int64(out.Len())
		}
		s.scanned += int64(out.Len())
		if out.Len() > 0 {
			return true, nil
		}
		if exhausted {
			return false, nil
		}
	}
}

// Close implements exec.Operator.
func (s *deltaScan) Close() error {
	if s.latched {
		s.latched = false
		s.d.latch.RUnlock()
		s.db.addScanned(s.scanned)
		s.db.addFilterStats(s.fin, s.fkept)
		if s.spec.sliced() {
			s.db.addPartScanned(s.spec.shard(), s.spec.N, s.scanned)
		}
	}
	return nil
}
