package engine

import (
	"encoding/binary"

	"repro/internal/btree"
	"repro/internal/exec"
	"repro/internal/relalg"
)

// This file provides the engine's leaf operators for the exec pipeline:
// streaming scans over base-table heaps and delta-table windows. Both hold
// their structure latch in read mode from Open to Close; that is safe
// because the planner has already taken the table-level S lock, so no
// writer of the scanned table can reach the latch while the scan streams,
// and concurrent propagation queries share the read latch.

// tableScan streams a base table's heap in batches, applying an optional
// pushdown predicate. Rows carry count +1 and the null timestamp, like
// Table.scan. With asOf == NullTS it streams the current state (the
// planner holds a table S lock); with a real asOf it streams the state
// visible at that CSN, lock-free under a ReadView.
type tableScan struct {
	db   *DB
	t    *Table
	pred relalg.Predicate
	asOf relalg.CSN

	it      *btree.Iterator
	latched bool
	scanned int64
}

// Open implements exec.Operator.
func (s *tableScan) Open() error {
	s.t.latch.RLock()
	s.latched = true
	s.it = s.t.heap.First()
	return nil
}

// Next implements exec.Operator.
func (s *tableScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	for s.it.Valid() && out.Len() < exec.BatchSize {
		born, dead, row := decodeVersionedRow(s.it.Value())
		s.it.Next()
		if s.asOf == relalg.NullTS {
			if dead != csnNone {
				continue
			}
		} else if !visibleAt(born, dead, s.asOf) {
			continue
		}
		if s.pred != nil && !s.pred.Eval(row) {
			continue
		}
		out.Add(row, 1, relalg.NullTS)
	}
	s.scanned += int64(out.Len())
	return out.Len() > 0, nil
}

// Close implements exec.Operator.
func (s *tableScan) Close() error {
	if s.latched {
		s.latched = false
		s.t.latch.RUnlock()
		s.db.addScanned(s.scanned)
	}
	return nil
}

// deltaScan streams the delta-table window (lo, hi] in timestamp order,
// with the window bounds and the optional pushdown predicate applied
// directly at the scan — no intermediate relation is materialized.
type deltaScan struct {
	db     *DB
	d      *DeltaTable
	lo, hi relalg.CSN
	pred   relalg.Predicate

	it      *btree.Iterator
	end     []byte
	latched bool
	scanned int64
}

// Open implements exec.Operator.
func (s *deltaScan) Open() error {
	if s.hi <= s.lo {
		return nil
	}
	s.d.latch.RLock()
	s.latched = true
	s.it = s.d.tree.Seek(deltaKey(s.lo+1, 0))
	s.end = deltaKey(s.hi+1, 0)
	return nil
}

// Next implements exec.Operator.
func (s *deltaScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	if !s.latched {
		return false, nil
	}
	for s.it.Valid() && out.Len() < exec.BatchSize {
		k := s.it.Key()
		if string(k) >= string(s.end) {
			break
		}
		ts := relalg.CSN(binary.BigEndian.Uint64(k[0:8]))
		count, row := decodeDeltaVal(s.it.Value())
		s.it.Next()
		if s.pred != nil && !s.pred.Eval(row) {
			continue
		}
		out.Add(row, count, ts)
	}
	s.scanned += int64(out.Len())
	return out.Len() > 0, nil
}

// Close implements exec.Operator.
func (s *deltaScan) Close() error {
	if s.latched {
		s.latched = false
		s.d.latch.RUnlock()
		s.db.addScanned(s.scanned)
	}
	return nil
}
