package engine

import (
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/tuple"
)

// Heavy/light key splitting (the skew-handling recipe of partitioned IVM):
// a per-table frequency sketch counts how often each join key appears in
// the table's change stream. Keys whose frequency crosses the heavy
// threshold are classified heavy and get their own dedicated propagation
// slices and materialized cache partitions, so one hot key cannot
// overload the hash partition it happens to land in; everything else
// rides the generic hash path. Counts decay geometrically, so keys
// migrate back to light as frequencies drift.
//
// The classifier and every structure it feeds (slice plans, cache
// shards) are volatile: physical delta and heap routing is purely
// hash-based, so a migration never rewrites durable state. That makes
// migration crash-safe by construction — after a crash the sketch
// restarts empty and resident state is rebuilt from the heaps and delta
// tables — but each migration still evaluates the "migrate" failpoint so
// the crash suite can kill the process mid-migration and check the
// invariant.
const (
	// sketchDecayEvery halves all counts after this many observations,
	// bounding the sketch and letting frequencies drift.
	sketchDecayEvery = 4096
	// heavyMinCount is the minimum absolute count before a key may be
	// classified heavy (avoids classifying on tiny samples).
	heavyMinCount = 16
	// heavyPromoteDen: promote when count*heavyPromoteDen >= total
	// (key carries at least 1/heavyPromoteDen of the change traffic).
	heavyPromoteDen = 8
	// heavyDemoteDen: demote when count*heavyDemoteDen < total. The gap
	// to heavyPromoteDen is the hysteresis band that prevents flapping.
	heavyDemoteDen = 16
)

// keySketch is the per-table frequency sketch plus the current heavy-key
// classification.
type keySketch struct {
	db    *DB
	table string

	mu         sync.Mutex
	counts     map[string]int64
	total      int64
	sinceDecay int64
	heavy      map[string]bool
}

func newKeySketch(db *DB, table string) *keySketch {
	return &keySketch{
		db:     db,
		table:  table,
		counts: make(map[string]int64),
		heavy:  make(map[string]bool),
	}
}

// note records one observation of a key-encoded join-key value and applies
// any classification change it triggers. Called from the delta append
// notification, outside the delta latch.
func (s *keySketch) note(enc []byte) {
	key := string(enc)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[key]++
	s.total++
	s.sinceDecay++
	if s.sinceDecay >= sketchDecayEvery {
		s.decayLocked()
	}
	c := s.counts[key]
	if !s.heavy[key] && c >= heavyMinCount && c*heavyPromoteDen >= s.total {
		if s.db.migrateKey(s.table, key, true) == nil {
			s.heavy[key] = true
		}
	} else if s.heavy[key] && c*heavyDemoteDen < s.total {
		if s.db.migrateKey(s.table, key, false) == nil {
			delete(s.heavy, key)
		}
	}
}

// decayLocked halves every count, dropping keys that reach zero, and
// demotes heavy keys that fell below the demotion threshold.
func (s *keySketch) decayLocked() {
	s.sinceDecay = 0
	total := int64(0)
	for k, c := range s.counts {
		c /= 2
		if c == 0 {
			delete(s.counts, k)
			continue
		}
		s.counts[k] = c
		total += c
	}
	s.total = total
	for k := range s.heavy {
		if s.counts[k]*heavyDemoteDen < s.total {
			if s.db.migrateKey(s.table, k, false) == nil {
				delete(s.heavy, k)
			}
		}
	}
}

// heavyKeys returns the current heavy classification as a sorted slice of
// key encodings (sorted so slice plans are deterministic for a given
// classification).
func (s *keySketch) heavyKeys() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.heavy) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.heavy))
	for k := range s.heavy {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out
}

func (s *keySketch) heavyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.heavy)
}

// migrateKey moves one join key of a table between the light (generic
// hash) and heavy (dedicated partition) classes. The move itself touches
// only volatile state: the classifier entry and any resident join-state
// cache buckets for the table. It evaluates the "migrate" failpoint
// first; an injected error aborts the migration (the caller keeps the old
// classification), and an injected crash exercises recovery with a
// half-finished migration — safe because nothing durable was touched.
func (db *DB) migrateKey(table, enc string, toHeavy bool) error {
	if fault.Enabled() {
		if err := fault.Inject(fault.PointMigrate); err != nil {
			return err
		}
	}
	db.cache.migrateKey(table, enc, toHeavy)
	db.keyMigrations.Add(1)
	return nil
}

// HeavySliceCached reports whether q should route through the join-state
// cache even when the global cache switch is off: a heavy-key slice reads
// its base positions from materialized partial state — the dedicated
// heavy partitions of the resident cache — while light slices ride the
// generic hash path (scans, or indexes where declared). This is the
// payoff of classifying a key heavy: its propagation cost becomes
// proportional to its delta, not to the shard it hashes into.
func (db *DB) HeavySliceCached(q *Query) bool {
	if !db.heavySplit || db.forceMaterialize.Load() {
		return false
	}
	for _, in := range q.Inputs {
		if in.Part != nil && len(in.Part.Key) > 0 {
			return true
		}
	}
	return false
}

// HeavyKeys returns the key-encoded heavy join keys currently classified
// for the named base table (nil when the table is unpartitioned, heavy
// splitting is disabled, or nothing is heavy yet). The slice is a
// snapshot: propagation takes it once per step so every slice of the step
// uses one consistent classification.
func (db *DB) HeavyKeys(table string) [][]byte {
	db.mu.RLock()
	s := db.sketches[table]
	db.mu.RUnlock()
	if s == nil {
		return nil
	}
	return s.heavyKeys()
}

// HeavyKeyValue decodes nothing — heavy keys are matched by encoding —
// but tests and tooling sometimes want the column value back.
func HeavyKeyValue(enc []byte) (tuple.Value, error) {
	v, _, err := tuple.DecodeKeyValue(enc)
	return v, err
}
