package engine

import (
	"hash/fnv"
	"math/bits"

	"repro/internal/tuple"
)

// Partitioning layer: every base table's version store and delta table can
// be hash-partitioned by join-key into N partitions. Partition 0..N-1 is
// chosen by an FNV hash of the key-encoded partition-column value, so a
// table and its delta (and any co-partitioned join peer sharing the key
// through an equality condition) agree on where a given key lives. N = 1
// is the unpartitioned seed behavior, byte for byte: a single shard with
// zero shard bits leaves rowids, delta keys, and iteration order exactly
// as before.

// hashPartEnc maps an already key-encoded value to a partition in [0, n).
func hashPartEnc(enc []byte, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write(enc)
	return int(h.Sum64() % uint64(n))
}

// hashPart maps a join-key value to a partition in [0, n).
func hashPart(v tuple.Value, n int) int {
	if n <= 1 {
		return 0
	}
	return hashPartEnc(tuple.EncodeKeyValue(nil, v), n)
}

// shardBitsFor returns how many low rowid bits encode the shard index for
// an n-way partitioned table (0 when n == 1, keeping rowids identical to
// the unpartitioned layout).
func shardBitsFor(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// PartSpec restricts a query input to one slice of its hash-partitioned
// window. A nil spec (or N <= 1) means the full, unsliced input. The
// slices produced for one propagation step are disjoint and cover the
// window:
//
//   - a heavy slice (Key != nil) selects exactly the rows whose
//     partition-column encoding equals Key;
//   - a light slice selects the rows of hash partition Part whose
//     partition-column encoding is not in Not (the heavy keys).
//
// Because multiset union over the slices reconstructs the whole window,
// running the same propagation query once per slice and merging the
// results is exactly the unsliced propagation step.
type PartSpec struct {
	N    int      // partition count (0 or 1 = unsliced)
	Part int      // hash partition index scanned when Key == nil
	Key  []byte   // key-encoded heavy key: slice is exactly this key
	Not  [][]byte // key-encoded heavy keys excluded from a light slice
}

// sliced reports whether the spec actually restricts the input.
func (s *PartSpec) sliced() bool { return s != nil && s.N > 1 }

// shard returns the physical shard index the slice reads when the storage
// is partitioned the same N ways.
func (s *PartSpec) shard() int {
	if s.Key != nil {
		return hashPartEnc(s.Key, s.N)
	}
	return s.Part
}

// admitsEnc decides whether a row whose key-encoded partition-column value
// is enc belongs to this slice, assuming the row was already drawn from
// the slice's hash partition (the caller either reads the matching shard
// or pre-filters by hash).
func (s *PartSpec) admitsEnc(enc []byte) bool {
	if s.Key != nil {
		return string(enc) == string(s.Key)
	}
	for _, not := range s.Not {
		if string(enc) == string(not) {
			return false
		}
	}
	return true
}

// admits decides whether a row belongs to this slice, checking the hash
// partition too (for storage that is not physically sharded the same N
// ways).
func (s *PartSpec) admits(v tuple.Value, samePhysical bool) bool {
	if !s.sliced() {
		return true
	}
	enc := tuple.EncodeKeyValue(nil, v)
	if !samePhysical && hashPartEnc(enc, s.N) != s.shard() {
		return false
	}
	return s.admitsEnc(enc)
}

// coPartition extends the slice of a propagation query's introduced delta
// position to every other input whose partition column is connected to the
// sliced input's partition column through the query's equality conditions.
// Rows that join a sliced row must agree with it on the connected key, and
// equal keys hash to the same partition, so restricting those inputs to
// the same slice removes only rows that could never join — the query
// result is unchanged while each slice touches 1/N of the co-partitioned
// storage.
//
// The closure is computed over (input, column) pairs: two pairs are
// connected when a JoinCond equates them. An input joins the slice only
// via its own partition column, so mismatched join columns (a table
// partitioned on a column the query does not join) simply stay unsliced.
func (db *DB) coPartition(q *Query) {
	anchor := -1
	for i := range q.Inputs {
		if q.Inputs[i].Part.sliced() {
			anchor = i
			break
		}
	}
	if anchor < 0 {
		return
	}
	spec := q.Inputs[anchor].Part
	// Union-find over (input, col) pairs mentioned by the conditions plus
	// each input's partition column.
	type ref struct{ in, col int }
	parent := make(map[ref]ref)
	var find func(r ref) ref
	find = func(r ref) ref {
		p, ok := parent[r]
		if !ok || p == r {
			parent[r] = r
			return r
		}
		root := find(p)
		parent[r] = root
		return root
	}
	union := func(a, b ref) { parent[find(a)] = find(b) }
	for _, c := range q.Conds {
		union(ref{c.A.Input, c.A.Col}, ref{c.B.Input, c.B.Col})
	}
	partColOf := func(i int) (int, bool) {
		t, err := db.Table(q.Inputs[i].Table)
		if err != nil || t.nparts != spec.N {
			return 0, false
		}
		return t.partCol, true
	}
	acol, ok := partColOf(anchor)
	if !ok {
		return
	}
	root := find(ref{anchor, acol})
	for i := range q.Inputs {
		if i == anchor || q.Inputs[i].Part.sliced() {
			continue
		}
		col, ok := partColOf(i)
		if !ok {
			continue
		}
		if find(ref{i, col}) == root {
			q.Inputs[i].Part = spec
		}
	}
}
