package engine

import (
	"errors"
	"fmt"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// ErrReadOnly is returned by write paths on a replica engine: a follower's
// base-table state is owned by the leader's shipped log, so client inserts
// and deletes must go to the leader.
var ErrReadOnly = errors.New("engine: read-only replica")

// Replica reports whether the engine is a read-only replication target.
func (db *DB) Replica() bool { return db.replica }

// AppliedCSN returns the highest leader commit replayed through
// ApplyReplicated (0 before any).
func (db *DB) AppliedCSN() relalg.CSN { return relalg.CSN(db.appliedCSN.Load()) }

// ApplyReplicated applies one leader commit's base-table writes at the
// leader's CSN, then advances the local clock (lastCSN / stable) to csn so
// snapshot readers at AsOf <= csn observe the commit. It is the replica's
// replacement for the write-transaction path: no locks, no local WAL — the
// shipped log IS the WAL, ordering is the leader's commit order, and the
// single replay goroutine is the only base-table writer.
//
// Inserts land with born = csn; deletes are logical (dead = csn), keeping
// the version visible to snapshots below the commit, exactly as the
// leader's own publish phase would have stamped them.
func (db *DB) ApplyReplicated(csn relalg.CSN, writes []Write) error {
	if !db.replica {
		return fmt.Errorf("engine: ApplyReplicated on non-replica instance")
	}
	for _, w := range writes {
		t, err := db.Table(w.Table)
		if err != nil {
			return fmt.Errorf("engine: replicated commit %d: %w", csn, err)
		}
		switch {
		case w.Count > 0:
			t.putBorn(w.Row, csn)
			db.addWrites(1, 0)
		case w.Count < 0:
			if !t.stampDeadReplicated(w.Row, csn) {
				// The leader deleted a row this replica does not have live:
				// the streams have diverged (or replay skipped a commit).
				// Fail-stop rather than drift silently.
				return fmt.Errorf("engine: replicated commit %d: delete of absent row in %q", csn, w.Table)
			}
			db.addWrites(0, 1)
		}
	}
	// Advance the clock only after every row is stamped: Recover moves the
	// stable CSN, and a reader at AsOf <= stable must see the full commit.
	db.tm.Recover(csn)
	db.appliedCSN.Store(int64(csn))
	return nil
}

// stampDeadReplicated finds one live version equal to row and stamps it
// dead at csn (logical delete). It reports whether a matching live row was
// found. Multiset semantics: with duplicates, exactly one instance dies —
// matching the single Delete record the leader logged.
func (t *Table) stampDeadReplicated(row tuple.Tuple, csn relalg.CSN) bool {
	t.latch.Lock()
	defer t.latch.Unlock()
	shards := t.shards
	if t.nparts > 1 {
		// Equal rows hash to the same shard; search only it.
		sh := t.shardForRow(row)
		shards = t.shards[sh : sh+1]
	}
	for _, sh := range shards {
		for it := sh.First(); it.Valid(); it.Next() {
			born, dead, got := decodeVersionedRow(it.Value())
			if dead != csnNone || !got.Equal(row) {
				continue
			}
			t.setVersion(rowidFromKey(it.Key()), born, csn)
			t.dead++
			return true
		}
	}
	return false
}
