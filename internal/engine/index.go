package engine

import (
	"fmt"
	"sync"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Index is a hash index over one column of a base table, mapping the
// column's key encoding to the rowids holding that value. Indexes
// accelerate propagation queries: a small delta window probes the index
// instead of scanning the whole base table (index nested-loop join).
//
// The index latch is separate from the table latch; writers update the
// table first, then the index, and readers holding a table S lock observe
// a consistent pair because writers hold their row X locks until commit.
type Index struct {
	table  string
	column int

	latch sync.RWMutex
	// rows maps key encoding -> rowid set.
	rows map[string]map[uint64]struct{}
}

func newIndex(table string, column int) *Index {
	return &Index{table: table, column: column, rows: make(map[string]map[uint64]struct{})}
}

// Column returns the indexed column position.
func (ix *Index) Column() int { return ix.column }

func (ix *Index) insert(v tuple.Value, rowid uint64) {
	k := string(tuple.EncodeKeyValue(nil, v))
	ix.latch.Lock()
	set := ix.rows[k]
	if set == nil {
		set = make(map[uint64]struct{})
		ix.rows[k] = set
	}
	set[rowid] = struct{}{}
	ix.latch.Unlock()
}

func (ix *Index) remove(v tuple.Value, rowid uint64) {
	k := string(tuple.EncodeKeyValue(nil, v))
	ix.latch.Lock()
	if set := ix.rows[k]; set != nil {
		delete(set, rowid)
		if len(set) == 0 {
			delete(ix.rows, k)
		}
	}
	ix.latch.Unlock()
}

// lookup returns the rowids whose indexed column equals v.
func (ix *Index) lookup(v tuple.Value) []uint64 {
	k := string(tuple.EncodeKeyValue(nil, v))
	ix.latch.RLock()
	defer ix.latch.RUnlock()
	set := ix.rows[k]
	if len(set) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// Len returns the number of distinct indexed keys.
func (ix *Index) Len() int {
	ix.latch.RLock()
	defer ix.latch.RUnlock()
	return len(ix.rows)
}

// CreateIndex builds a hash index on the named column of a base table,
// backfilling existing rows. It must be called before concurrent writers
// touch the table (typically right after CreateTable).
func (db *DB) CreateIndex(table, column string) (*Index, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	col := t.schema.Index(column)
	if col < 0 {
		return nil, fmt.Errorf("engine: no column %q in table %q", column, table)
	}
	t.latch.Lock()
	defer t.latch.Unlock()
	for _, ix := range t.indexes {
		if ix.column == col {
			return nil, fmt.Errorf("%w: index on %s.%s", ErrExists, table, column)
		}
	}
	ix := newIndex(table, col)
	for _, sh := range t.shards {
		it := sh.First()
		for ; it.Valid(); it.Next() {
			_, _, row := decodeVersionedRow(it.Value())
			ix.insert(row[col], rowidFromKey(it.Key()))
		}
	}
	t.indexes = append(t.indexes, ix)
	return ix, nil
}

// indexOn returns the table's index on the given column, if any.
func (t *Table) indexOn(col int) *Index {
	t.latch.RLock()
	defer t.latch.RUnlock()
	for _, ix := range t.indexes {
		if ix.column == col {
			return ix
		}
	}
	return nil
}

// probe materializes the current-state rows of t whose column matches v,
// applying the optional pushdown predicate. Latch-only; the caller holds
// a table S lock.
func (t *Table) probe(ix *Index, v tuple.Value, pred relalg.Predicate) []tuple.Tuple {
	return t.probeAsOf(ix, v, pred, relalg.NullTS)
}

// probeAsOf is probe against the snapshot at asOf (asOf == NullTS means
// current state). Snapshot probes are lock-free; the caller holds a
// ReadView at or above asOf.
func (t *Table) probeAsOf(ix *Index, v tuple.Value, pred relalg.Predicate, asOf relalg.CSN) []tuple.Tuple {
	ids := ix.lookup(v)
	if len(ids) == 0 {
		return nil
	}
	t.latch.RLock()
	defer t.latch.RUnlock()
	out := make([]tuple.Tuple, 0, len(ids))
	for _, id := range ids {
		val, ok := t.heapOf(id).Get(rowKey(id))
		if !ok {
			continue
		}
		born, dead, row := decodeVersionedRow(val)
		if asOf == relalg.NullTS {
			if dead != csnNone {
				continue
			}
		} else if !visibleAt(born, dead, asOf) {
			continue
		}
		if pred != nil && !pred.Eval(row) {
			continue
		}
		out = append(out, row)
	}
	return out
}
