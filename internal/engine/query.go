package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// InputKind distinguishes the three sources a propagation-query position can
// read from.
type InputKind uint8

// The input kinds.
const (
	// InputBase reads the current committed state of a base table (R^i seen
	// at the query's commit time).
	InputBase InputKind = iota
	// InputDelta reads a timestamp window of a delta table (R^i_{lo,hi}).
	InputDelta
	// InputRelation reads a pre-materialized relation (testing and the
	// apply path).
	InputRelation
)

// Input is one position of an SPJ query: a base table, a delta window, or a
// materialized relation, with an optional pushdown predicate evaluated
// against the input's own schema.
type Input struct {
	Kind InputKind
	// Table is the base-table name (InputBase) or the delta table's base
	// name (InputDelta).
	Table string
	// Lo and Hi bound the half-open window (Lo, Hi] for InputDelta.
	Lo, Hi relalg.CSN
	// Rel is the materialized relation for InputRelation.
	Rel *relalg.Relation
	// Pred is an optional pushdown predicate over this input's schema.
	Pred relalg.Predicate
}

// String renders the input in the paper's notation.
func (in Input) String() string {
	switch in.Kind {
	case InputBase:
		return in.Table
	case InputDelta:
		return fmt.Sprintf("Δ%s(%d,%d]", in.Table, in.Lo, in.Hi)
	default:
		return "<rel>"
	}
}

// ColRef names a column by input position and column index within that
// input's schema.
type ColRef struct {
	Input int
	Col   int
}

// JoinCond is an equi-join condition between two column references.
type JoinCond struct {
	A, B ColRef
}

// Query is a select-project-join query over a list of inputs, in the shape
// of the paper's propagation queries π(σ(Q[1] ⋈ Q[2] ⋈ ... ⋈ Q[n])).
type Query struct {
	Inputs []Input
	Conds  []JoinCond
	// Residual is an optional predicate over the concatenated schema,
	// evaluated after all joins (column positions are global offsets).
	Residual relalg.Predicate
	// Project optionally projects the result onto these columns; nil keeps
	// the full concatenation.
	Project []ColRef
}

// String renders the query's join list in the paper's notation.
func (q *Query) String() string {
	parts := make([]string, len(q.Inputs))
	for i, in := range q.Inputs {
		parts[i] = in.String()
	}
	return strings.Join(parts, " ⋈ ")
}

// ErrNotRealizable marks queries that reference a delta window that the
// capture process has not fully populated yet.
var ErrNotRealizable = errors.New("engine: delta window not yet captured")

// arities returns the arity of each input and the global offset of each.
func (db *DB) arities(q *Query) ([]int, []int, error) {
	ar := make([]int, len(q.Inputs))
	off := make([]int, len(q.Inputs))
	pos := 0
	for i, in := range q.Inputs {
		var n int
		switch in.Kind {
		case InputBase:
			t, err := db.Table(in.Table)
			if err != nil {
				return nil, nil, err
			}
			n = t.schema.Arity()
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, nil, err
			}
			n = d.schema.Arity()
		case InputRelation:
			n = in.Rel.Schema.Arity()
		}
		ar[i] = n
		off[i] = pos
		pos += n
	}
	return ar, off, nil
}

// EvalQuery evaluates q inside the transaction: base inputs are scanned
// under table S locks (pre-acquired in sorted name order to keep the lock
// graph acyclic among propagation queries), delta inputs are materialized
// from their windows, and the inputs are joined left-deep with hash joins.
// Counts multiply and timestamps combine by minimum per the paper's rule.
func (tx *Tx) EvalQuery(q *Query) (*relalg.Relation, error) {
	db := tx.db
	db.addQuery()
	arities, offsets, err := db.arities(q)
	if err != nil {
		return nil, err
	}

	// Pre-lock base tables in sorted order.
	var baseNames []string
	for _, in := range q.Inputs {
		if in.Kind == InputBase {
			baseNames = append(baseNames, in.Table)
		}
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if err := tx.LockTableS(name); err != nil {
			return nil, err
		}
	}

	// Materialize the non-base inputs; base inputs stay lazy so the join
	// step can choose between a full scan (hash join) and index probing.
	rels := make([]*relalg.Relation, len(q.Inputs))
	for i, in := range q.Inputs {
		switch in.Kind {
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			rel := d.Window(in.Lo, in.Hi)
			if in.Pred != nil {
				rel = relalg.Select(rel, in.Pred)
			}
			db.addScanned(int64(rel.Len()))
			rels[i] = rel
		case InputRelation:
			rel := in.Rel
			if in.Pred != nil {
				rel = relalg.Select(rel, in.Pred)
			}
			rels[i] = rel
		}
	}
	materialize := func(i int) (*relalg.Relation, error) {
		if rels[i] != nil {
			return rels[i], nil
		}
		rel, err := tx.Scan(q.Inputs[i].Table, q.Inputs[i].Pred)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
		return rel, nil
	}

	// Left-deep joins in a chosen order: start from a delta (or
	// materialized) input when there is one — propagation queries have
	// small delta sides — then greedily add inputs connected to the prefix
	// by a join condition. A base input reachable through a single
	// equi-join condition with an index on the joined column is read by
	// index nested-loop probes instead of a full scan. Conditions not
	// consumed by the pipeline are evaluated as residuals afterwards, and
	// the result columns are restored to declaration order at the end.
	n := len(q.Inputs)
	order := make([]int, 0, n)
	chosen := make([]bool, n)
	pick := func(i int) { order = append(order, i); chosen[i] = true }
	start := 0
	for i, in := range q.Inputs {
		if in.Kind != InputBase {
			start = i
			break
		}
	}
	pick(start)
	for len(order) < n {
		// Prefer a connected non-base input, then any connected input,
		// then fall back to the lowest unchosen (cross product).
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			connected := false
			for _, c := range q.Conds {
				a, b := c.A.Input, c.B.Input
				if (a == i && chosen[b]) || (b == i && chosen[a]) {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if q.Inputs[i].Kind != InputBase {
				best = i
				break
			}
			if best == -1 {
				best = i
			}
		}
		if best == -1 {
			for i := 0; i < n; i++ {
				if !chosen[i] {
					best = i
					break
				}
			}
		}
		pick(best)
	}

	// placed[i] reports whether input i is already in the joined prefix;
	// joinedOff[i] is its column offset within the joined tuple.
	placed := make([]bool, n)
	joinedOff := make([]int, n)

	result, err := materialize(order[0])
	if err != nil {
		return nil, err
	}
	placed[order[0]] = true
	joinedOff[order[0]] = 0
	joinedWidth := arities[order[0]]
	used := make([]bool, len(q.Conds))
	for step := 1; step < n; step++ {
		i := order[step]
		var on []relalg.JoinOn
		for ci, c := range q.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if a.Input == i && placed[b.Input] {
				a, b = b, a
			}
			if b.Input == i && placed[a.Input] {
				on = append(on, relalg.JoinOn{
					LeftCol:  joinedOff[a.Input] + a.Col,
					RightCol: b.Col,
				})
				used[ci] = true
			}
		}
		if rels[i] == nil && len(on) == 1 {
			t, err := db.Table(q.Inputs[i].Table)
			if err != nil {
				return nil, err
			}
			if ix := t.indexOn(on[0].RightCol); ix != nil {
				result = indexJoin(db, result, t, ix, on[0].LeftCol, q.Inputs[i].Pred)
				db.addJoined(int64(result.Len()))
				joinedOff[i] = joinedWidth
				joinedWidth += arities[i]
				placed[i] = true
				continue
			}
		}
		rel, err := materialize(i)
		if err != nil {
			return nil, err
		}
		result = relalg.Join(result, rel, on)
		db.addJoined(int64(result.Len()))
		joinedOff[i] = joinedWidth
		joinedWidth += arities[i]
		placed[i] = true
	}

	// Restore declaration order so residuals, projection, and the output
	// schema see the documented column layout.
	if !inDeclarationOrder(order) {
		perm := make([]int, 0, joinedWidth)
		for i := 0; i < n; i++ {
			for c := 0; c < arities[i]; c++ {
				perm = append(perm, joinedOff[i]+c)
			}
		}
		cs, err := db.concatSchema(q)
		if err != nil {
			return nil, err
		}
		restored := relalg.NewRelation(cs)
		restored.Rows = make([]relalg.Row, len(result.Rows))
		for ri, row := range result.Rows {
			restored.Rows[ri] = relalg.Row{Tuple: row.Tuple.Project(perm), Count: row.Count, TS: row.TS}
		}
		result = restored
	}

	// Residual conditions (including any join conditions not consumed by
	// the left-deep pipeline, e.g. both sides in the same input).
	var residuals relalg.And
	for ci, c := range q.Conds {
		if used[ci] {
			continue
		}
		residuals = append(residuals, relalg.ColCol{
			ColA: offsets[c.A.Input] + c.A.Col,
			Op:   relalg.OpEQ,
			ColB: offsets[c.B.Input] + c.B.Col,
		})
	}
	if q.Residual != nil {
		residuals = append(residuals, q.Residual)
	}
	if len(residuals) > 0 {
		result = relalg.Select(result, residuals)
	}

	if q.Project != nil {
		idx := make([]int, len(q.Project))
		for i, ref := range q.Project {
			idx[i] = offsets[ref.Input] + ref.Col
		}
		result = relalg.Project(result, idx, nil)
	}
	return result, nil
}

// inDeclarationOrder reports whether the join order is the identity.
func inDeclarationOrder(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

// concatSchema builds the declaration-order concatenated schema of the
// query's inputs (duplicate names from later inputs prefixed with "r_",
// matching relalg.Join's convention).
func (db *DB) concatSchema(q *Query) (*tuple.Schema, error) {
	var cs *tuple.Schema
	for _, in := range q.Inputs {
		var s *tuple.Schema
		switch in.Kind {
		case InputBase:
			t, err := db.Table(in.Table)
			if err != nil {
				return nil, err
			}
			s = t.schema
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			s = d.schema
		case InputRelation:
			s = in.Rel.Schema
		}
		if cs == nil {
			cs = s
		} else {
			cs = tuple.ConcatSchemas(cs, s, "r_")
		}
	}
	return cs, nil
}

// indexJoin joins the accumulated left relation against a base table via
// index probes on a single equi-join column. Base rows have count 1 and
// null timestamps, so the combined row keeps the left row's count and
// timestamp (product and min rules respectively).
func indexJoin(db *DB, left *relalg.Relation, t *Table, ix *Index, leftCol int, pred relalg.Predicate) *relalg.Relation {
	out := relalg.NewRelation(tuple.ConcatSchemas(left.Schema, t.schema, "r_"))
	for _, lr := range left.Rows {
		db.addProbes(1)
		for _, m := range t.probe(ix, lr.Tuple[leftCol], pred) {
			out.Rows = append(out.Rows, relalg.Row{
				Tuple: tuple.Concat(lr.Tuple, m),
				Count: lr.Count,
				TS:    lr.TS,
			})
		}
	}
	return out
}

// ExecutePropagation runs q as its own transaction, multiplies the result
// counts by sign, appends the rows to the destination delta table, and
// commits. It returns the commit CSN (the paper's query execution time t_e)
// and the number of rows appended. This is the Execute primitive of
// Figures 4 and 10.
func (db *DB) ExecutePropagation(q *Query, sign int64, dest *DeltaTable) (relalg.CSN, int, error) {
	tx := db.Begin()
	rel, err := tx.EvalQuery(q)
	if err != nil {
		tx.Abort()
		return 0, 0, err
	}
	for _, row := range rel.Rows {
		if row.TS == relalg.NullTS {
			tx.Abort()
			return 0, 0, fmt.Errorf("engine: propagation query %s produced a null-timestamp row", q)
		}
		tx.AppendDelta(dest, row.TS, sign*row.Count, row.Tuple)
	}
	csn, err := tx.Commit()
	if err != nil {
		tx.Abort()
		return 0, 0, err
	}
	return csn, rel.Len(), nil
}
