package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// InputKind distinguishes the three sources a propagation-query position can
// read from.
type InputKind uint8

// The input kinds.
const (
	// InputBase reads the current committed state of a base table (R^i seen
	// at the query's commit time).
	InputBase InputKind = iota
	// InputDelta reads a timestamp window of a delta table (R^i_{lo,hi}).
	InputDelta
	// InputRelation reads a pre-materialized relation (testing and the
	// apply path).
	InputRelation
)

// Input is one position of an SPJ query: a base table, a delta window, or a
// materialized relation, with an optional pushdown predicate evaluated
// against the input's own schema.
type Input struct {
	Kind InputKind
	// Table is the base-table name (InputBase) or the delta table's base
	// name (InputDelta).
	Table string
	// Lo and Hi bound the half-open window (Lo, Hi] for InputDelta.
	Lo, Hi relalg.CSN
	// Rel is the materialized relation for InputRelation.
	Rel *relalg.Relation
	// Pred is an optional pushdown predicate over this input's schema.
	Pred relalg.Predicate
	// Part restricts the input to one hash-partition slice (nil = the
	// full input). Propagation sets it on the introduced delta position;
	// coPartition extends it to equality-connected inputs so each slice
	// job touches 1/N of the co-partitioned storage.
	Part *PartSpec
}

// String renders the input in the paper's notation.
func (in Input) String() string {
	slice := ""
	if in.Part.sliced() {
		if in.Part.Key != nil {
			slice = fmt.Sprintf("[heavy/%d]", in.Part.N)
		} else {
			slice = fmt.Sprintf("[%d/%d]", in.Part.Part, in.Part.N)
		}
	}
	switch in.Kind {
	case InputBase:
		return in.Table + slice
	case InputDelta:
		return fmt.Sprintf("Δ%s(%d,%d]%s", in.Table, in.Lo, in.Hi, slice)
	default:
		return "<rel>"
	}
}

// ColRef names a column by input position and column index within that
// input's schema.
type ColRef struct {
	Input int
	Col   int
}

// JoinCond is an equi-join condition between two column references.
type JoinCond struct {
	A, B ColRef
}

// Query is a select-project-join query over a list of inputs, in the shape
// of the paper's propagation queries π(σ(Q[1] ⋈ Q[2] ⋈ ... ⋈ Q[n])).
type Query struct {
	Inputs []Input
	Conds  []JoinCond
	// Residual is an optional predicate over the concatenated schema,
	// evaluated after all joins (column positions are global offsets).
	Residual relalg.Predicate
	// Project optionally projects the result onto these columns; nil keeps
	// the full concatenation.
	Project []ColRef
	// AsOf, when nonzero, evaluates every base input against the read view
	// at that CSN instead of the current committed state: scans and index
	// probes apply snapshot visibility and take NO table locks, and the
	// query's execution time is AsOf by construction. The evaluator blocks
	// until AsOf is stable (commit-publish barrier).
	AsOf relalg.CSN
	// LockScans additionally takes the legacy table S locks for an AsOf
	// query. It changes no results; it exists so the SNAPSHOT benchmark
	// can isolate the locking cost from the visibility mechanism.
	LockScans bool
}

// String renders the query's join list in the paper's notation.
func (q *Query) String() string {
	parts := make([]string, len(q.Inputs))
	for i, in := range q.Inputs {
		parts[i] = in.String()
	}
	return strings.Join(parts, " ⋈ ")
}

// ErrNotRealizable marks queries that reference a delta window that the
// capture process has not fully populated yet.
var ErrNotRealizable = errors.New("engine: delta window not yet captured")

// arities returns the arity of each input and the global offset of each.
func (db *DB) arities(q *Query) ([]int, []int, error) {
	ar := make([]int, len(q.Inputs))
	off := make([]int, len(q.Inputs))
	pos := 0
	for i, in := range q.Inputs {
		var n int
		switch in.Kind {
		case InputBase:
			t, err := db.Table(in.Table)
			if err != nil {
				dv := db.derivedByName(in.Table)
				if dv == nil {
					return nil, nil, err
				}
				n = dv.schema.Arity()
				break
			}
			n = t.schema.Arity()
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, nil, err
			}
			n = d.schema.Arity()
		case InputRelation:
			n = in.Rel.Schema.Arity()
		}
		ar[i] = n
		off[i] = pos
		pos += n
	}
	return ar, off, nil
}

// joinOrder picks the left-deep join order: start from a delta (or
// materialized) input when there is one — propagation queries have small
// delta sides — then greedily add inputs connected to the prefix by a join
// condition, preferring non-base inputs, falling back to a cross product
// with the lowest unchosen input.
func joinOrder(q *Query) []int {
	n := len(q.Inputs)
	order := make([]int, 0, n)
	chosen := make([]bool, n)
	pick := func(i int) { order = append(order, i); chosen[i] = true }
	start := 0
	for i, in := range q.Inputs {
		if in.Kind != InputBase {
			start = i
			break
		}
	}
	pick(start)
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			connected := false
			for _, c := range q.Conds {
				a, b := c.A.Input, c.B.Input
				if (a == i && chosen[b]) || (b == i && chosen[a]) {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if q.Inputs[i].Kind != InputBase {
				best = i
				break
			}
			if best == -1 {
				best = i
			}
		}
		if best == -1 {
			for i := 0; i < n; i++ {
				if !chosen[i] {
					best = i
					break
				}
			}
		}
		pick(best)
	}
	return order
}

// lockBases takes table S locks on every base input, in sorted name order
// to keep the lock graph acyclic among concurrent propagation queries.
// Derived (view) inputs take no locks: their state is reconstructed from
// an immutable image plus immutable delta rows, so there is no writer to
// serialize against.
func (tx *Tx) lockBases(q *Query) error {
	var baseNames []string
	for _, in := range q.Inputs {
		if in.Kind == InputBase && !tx.db.IsDerived(in.Table) {
			baseNames = append(baseNames, in.Table)
		}
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if err := tx.LockTableS(name); err != nil {
			return err
		}
	}
	return nil
}

// buildPlan lowers q to a physical operator tree and returns it with the
// result schema. Predicates and delta-window bounds are pushed into the
// leaf scans; each join position is planned as either an index-nested-loop
// probe (single equi-join condition with an index on the joined base
// column) or a hash join whose build side is the small delta-anchored
// prefix when the other side is a streaming base scan. The arena (may be
// nil) recycles the pipeline's batches and hash tables across steps.
func (tx *Tx) buildPlan(q *Query, a *exec.Arena) (exec.Operator, *tuple.Schema, error) {
	db := tx.db
	arities, offsets, err := db.arities(q)
	if err != nil {
		return nil, nil, err
	}
	if q.AsOf == relalg.NullTS || q.LockScans {
		if err := tx.lockBases(q); err != nil {
			return nil, nil, err
		}
	}

	// Leaf scan per input. Base-table leaves are built lazily so the join
	// step can choose index probing instead.
	leaf := func(i int) (exec.Operator, error) {
		in := q.Inputs[i]
		switch in.Kind {
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			return &deltaScan{db: db, d: d, lo: in.Lo, hi: in.Hi, pred: in.Pred, spec: in.Part}, nil
		case InputRelation:
			scan := exec.NewRelationScan(in.Rel, in.Pred)
			scan.Size = db.batchSize
			return scan, nil
		default:
			t, err := db.Table(in.Table)
			if err != nil {
				if dv := db.derivedByName(in.Table); dv != nil {
					return &derivedScan{db: db, dv: dv, pred: in.Pred, asOf: q.AsOf, spec: in.Part}, nil
				}
				return nil, err
			}
			return &tableScan{db: db, t: t, pred: in.Pred, asOf: q.AsOf, spec: in.Part}, nil
		}
	}

	order := joinOrder(q)
	n := len(q.Inputs)
	placed := make([]bool, n)
	joinedOff := make([]int, n)

	cur, err := leaf(order[0])
	if err != nil {
		return nil, nil, err
	}
	placed[order[0]] = true
	joinedOff[order[0]] = 0
	joinedWidth := arities[order[0]]
	used := make([]bool, len(q.Conds))
	for step := 1; step < n; step++ {
		i := order[step]
		var on []relalg.JoinOn
		for ci, c := range q.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if a.Input == i && placed[b.Input] {
				a, b = b, a
			}
			if b.Input == i && placed[a.Input] {
				on = append(on, relalg.JoinOn{
					LeftCol:  joinedOff[a.Input] + a.Col,
					RightCol: b.Col,
				})
				used[ci] = true
			}
		}
		var joined exec.Operator
		// Index probing applies to real base tables only; a derived input
		// falls through to its streaming scan under a hash join.
		if q.Inputs[i].Kind == InputBase && len(on) == 1 {
			if t, err := db.Table(q.Inputs[i].Table); err == nil {
				if ix := t.indexOn(on[0].RightCol); ix != nil {
					pred := q.Inputs[i].Pred
					joined = &exec.IndexLoopJoin{
						Left:    cur,
						LeftCol: on[0].LeftCol,
						ProbeFn: func(v tuple.Value) []tuple.Tuple {
							db.addProbes(1)
							return t.probeAsOf(ix, v, pred, q.AsOf)
						},
						Size: db.batchSize,
						A:    a,
					}
				}
			}
		}
		if joined == nil {
			right, err := leaf(i)
			if err != nil {
				return nil, nil, err
			}
			joined = &exec.HashJoin{
				Left:  cur,
				Right: right,
				On:    on,
				// Stream an unmaterialized base scan through the probe
				// side; hash the already-materialized (delta-sized) input
				// otherwise, mirroring the build-on-the-small-side rule.
				BuildLeft: q.Inputs[i].Kind == InputBase,
				Size:      db.batchSize,
				A:         a,
			}
		}
		cur = &exec.Tap{Child: joined, OnBatch: func(rows int) { db.addJoined(int64(rows)) }}
		joinedOff[i] = joinedWidth
		joinedWidth += arities[i]
		placed[i] = true
	}

	// Restore declaration order so residuals, projection, and the output
	// schema see the documented column layout.
	cs, err := db.concatSchema(q)
	if err != nil {
		return nil, nil, err
	}
	if !inDeclarationOrder(order) {
		perm := make([]int, 0, joinedWidth)
		for i := 0; i < n; i++ {
			for c := 0; c < arities[i]; c++ {
				perm = append(perm, joinedOff[i]+c)
			}
		}
		cur = &exec.Project{Child: cur, Idx: perm}
	}

	// Residual conditions (including any join conditions not consumed by
	// the left-deep pipeline, e.g. both sides in the same input).
	var residuals relalg.And
	for ci, c := range q.Conds {
		if used[ci] {
			continue
		}
		residuals = append(residuals, relalg.ColCol{
			ColA: offsets[c.A.Input] + c.A.Col,
			Op:   relalg.OpEQ,
			ColB: offsets[c.B.Input] + c.B.Col,
		})
	}
	if q.Residual != nil {
		residuals = append(residuals, q.Residual)
	}
	if len(residuals) > 0 {
		cur = &exec.Filter{Child: cur, Pred: residuals, OnFilter: db.noteFilter}
	}

	schema := cs
	if q.Project != nil {
		idx := make([]int, len(q.Project))
		for i, ref := range q.Project {
			idx[i] = offsets[ref.Input] + ref.Col
		}
		cur = &exec.Project{Child: cur, Idx: idx}
		schema = cs.Project(idx, nil)
	}
	return cur, schema, nil
}

// snapshotFor opens the read view backing an AsOf query, or returns nil
// for a current-state query (which reads under table S locks instead).
// The caller closes the snapshot after draining the plan.
func (tx *Tx) snapshotFor(q *Query) (*Snapshot, error) {
	if q.AsOf == relalg.NullTS {
		return nil, nil
	}
	return tx.db.OpenSnapshot(q.AsOf)
}

// EvalQuery evaluates q inside the transaction through the streaming
// operator pipeline: base inputs are scanned under table S locks
// (pre-acquired in sorted name order to keep the lock graph acyclic among
// propagation queries) — or, for an AsOf query, lock-free against the
// read view at q.AsOf — delta windows stream straight off their B+ trees,
// and the root materializes the result as a relation. Counts multiply and
// timestamps combine by minimum per the paper's rule.
func (tx *Tx) EvalQuery(q *Query) (*relalg.Relation, error) {
	tx.db.coPartition(q)
	if tx.db.forceMaterialize.Load() {
		return tx.MaterializeExec(q)
	}
	snap, err := tx.snapshotFor(q)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		defer snap.Close()
	}
	tx.db.addQuery()
	a := exec.NewArena()
	root, schema, err := tx.buildPlan(q, a)
	if err != nil {
		a.Release()
		return nil, err
	}
	out := relalg.NewRelation(schema)
	rows, batches, err := exec.DrainWith(root, a, tx.db.batchSize, func(b *relalg.Batch) error {
		out.Rows = b.MaterializeInto(out.Rows)
		return nil
	})
	tx.db.noteBatches(rows, batches)
	tx.db.noteArena(a)
	a.Release()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamQuery evaluates q and feeds every result batch to sink instead of
// materializing the result. The batch is reused between calls; the sink
// must copy any rows it keeps. It returns the result row and batch counts.
func (tx *Tx) StreamQuery(q *Query, sink func(*relalg.Batch) error) (rows, batches int64, err error) {
	tx.db.coPartition(q)
	if tx.db.forceMaterialize.Load() {
		rel, err := tx.MaterializeExec(q)
		if err != nil {
			return 0, 0, err
		}
		if len(rel.Rows) == 0 {
			return 0, 0, nil
		}
		return int64(len(rel.Rows)), 1, sink(relalg.BatchFromRows(rel.Rows))
	}
	snap, err := tx.snapshotFor(q)
	if err != nil {
		return 0, 0, err
	}
	if snap != nil {
		defer snap.Close()
	}
	tx.db.addQuery()
	a := exec.NewArena()
	root, _, err := tx.buildPlan(q, a)
	if err != nil {
		a.Release()
		return 0, 0, err
	}
	rows, batches, err = exec.DrainWith(root, a, tx.db.batchSize, sink)
	tx.db.noteBatches(rows, batches)
	tx.db.noteArena(a)
	a.Release()
	return rows, batches, err
}

// MaterializeExec is the pre-pipeline evaluation path: every input is
// materialized as a relation and the inputs are joined left-deep with
// hash joins built on the right side. It is kept as a build-tag-free
// fallback so the planner equivalence tests (and the perf A/B in
// cmd/rollbench) can compare the operator pipeline against it; production
// callers go through EvalQuery.
func (tx *Tx) MaterializeExec(q *Query) (*relalg.Relation, error) {
	db := tx.db
	db.coPartition(q)
	db.addQuery()
	arities, offsets, err := db.arities(q)
	if err != nil {
		return nil, err
	}
	snap, err := tx.snapshotFor(q)
	if err != nil {
		return nil, err
	}
	if snap != nil {
		defer snap.Close()
	}
	if q.AsOf == relalg.NullTS || q.LockScans {
		if err := tx.lockBases(q); err != nil {
			return nil, err
		}
	}

	// Materialize the non-base inputs; base inputs stay lazy so the join
	// step can choose between a full scan (hash join) and index probing.
	rels := make([]*relalg.Relation, len(q.Inputs))
	for i, in := range q.Inputs {
		switch in.Kind {
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			rel := d.WindowSpec(in.Part, in.Lo, in.Hi)
			if in.Pred != nil {
				rel = relalg.Select(rel, in.Pred)
			}
			db.addScanned(int64(rel.Len()))
			rels[i] = rel
		case InputRelation:
			rel := in.Rel
			if in.Pred != nil {
				rel = relalg.Select(rel, in.Pred)
			}
			rels[i] = rel
		}
	}
	materialize := func(i int) (*relalg.Relation, error) {
		if rels[i] != nil {
			return rels[i], nil
		}
		if dv := db.derivedByName(q.Inputs[i].Table); dv != nil {
			rel, err := dv.ScanAsOf(q.AsOf, q.Inputs[i].Pred)
			if err != nil {
				return nil, err
			}
			db.addScanned(int64(rel.Len()))
			rels[i] = rel
			return rel, nil
		}
		if q.AsOf != relalg.NullTS {
			t, err := db.Table(q.Inputs[i].Table)
			if err != nil {
				return nil, err
			}
			rel := t.scanAsOfPart(q.Inputs[i].Pred, q.AsOf, q.Inputs[i].Part)
			db.addScanned(int64(rel.Len()))
			rels[i] = rel
			return rel, nil
		}
		rel, err := tx.Scan(q.Inputs[i].Table, q.Inputs[i].Pred)
		if err != nil {
			return nil, err
		}
		rels[i] = rel
		return rel, nil
	}

	order := joinOrder(q)
	n := len(q.Inputs)

	// placed[i] reports whether input i is already in the joined prefix;
	// joinedOff[i] is its column offset within the joined tuple.
	placed := make([]bool, n)
	joinedOff := make([]int, n)

	result, err := materialize(order[0])
	if err != nil {
		return nil, err
	}
	placed[order[0]] = true
	joinedOff[order[0]] = 0
	joinedWidth := arities[order[0]]
	used := make([]bool, len(q.Conds))
	for step := 1; step < n; step++ {
		i := order[step]
		var on []relalg.JoinOn
		for ci, c := range q.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if a.Input == i && placed[b.Input] {
				a, b = b, a
			}
			if b.Input == i && placed[a.Input] {
				on = append(on, relalg.JoinOn{
					LeftCol:  joinedOff[a.Input] + a.Col,
					RightCol: b.Col,
				})
				used[ci] = true
			}
		}
		if rels[i] == nil && len(on) == 1 {
			// Index probing applies to real base tables only; derived
			// inputs materialize through ScanAsOf below.
			if t, err := db.Table(q.Inputs[i].Table); err == nil {
				if ix := t.indexOn(on[0].RightCol); ix != nil {
					result = indexJoin(db, result, t, ix, on[0].LeftCol, q.Inputs[i].Pred, q.AsOf)
					db.addJoined(int64(result.Len()))
					joinedOff[i] = joinedWidth
					joinedWidth += arities[i]
					placed[i] = true
					continue
				}
			}
		}
		rel, err := materialize(i)
		if err != nil {
			return nil, err
		}
		result = relalg.Join(result, rel, on)
		db.addJoined(int64(result.Len()))
		joinedOff[i] = joinedWidth
		joinedWidth += arities[i]
		placed[i] = true
	}

	// Restore declaration order so residuals, projection, and the output
	// schema see the documented column layout.
	if !inDeclarationOrder(order) {
		perm := make([]int, 0, joinedWidth)
		for i := 0; i < n; i++ {
			for c := 0; c < arities[i]; c++ {
				perm = append(perm, joinedOff[i]+c)
			}
		}
		cs, err := db.concatSchema(q)
		if err != nil {
			return nil, err
		}
		restored := relalg.NewRelation(cs)
		restored.Rows = make([]relalg.Row, len(result.Rows))
		for ri, row := range result.Rows {
			restored.Rows[ri] = relalg.Row{Tuple: row.Tuple.Project(perm), Count: row.Count, TS: row.TS}
		}
		result = restored
	}

	// Residual conditions (including any join conditions not consumed by
	// the left-deep pipeline, e.g. both sides in the same input).
	var residuals relalg.And
	for ci, c := range q.Conds {
		if used[ci] {
			continue
		}
		residuals = append(residuals, relalg.ColCol{
			ColA: offsets[c.A.Input] + c.A.Col,
			Op:   relalg.OpEQ,
			ColB: offsets[c.B.Input] + c.B.Col,
		})
	}
	if q.Residual != nil {
		residuals = append(residuals, q.Residual)
	}
	if len(residuals) > 0 {
		result = relalg.Select(result, residuals)
	}

	if q.Project != nil {
		idx := make([]int, len(q.Project))
		for i, ref := range q.Project {
			idx[i] = offsets[ref.Input] + ref.Col
		}
		result = relalg.Project(result, idx, nil)
	}
	return result, nil
}

// inDeclarationOrder reports whether the join order is the identity.
func inDeclarationOrder(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}

// concatSchema builds the declaration-order concatenated schema of the
// query's inputs (duplicate names from later inputs prefixed with "r_",
// matching relalg.Join's convention).
func (db *DB) concatSchema(q *Query) (*tuple.Schema, error) {
	var cs *tuple.Schema
	for _, in := range q.Inputs {
		var s *tuple.Schema
		switch in.Kind {
		case InputBase:
			t, err := db.Table(in.Table)
			if err != nil {
				dv := db.derivedByName(in.Table)
				if dv == nil {
					return nil, err
				}
				s = dv.schema
				break
			}
			s = t.schema
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			s = d.schema
		case InputRelation:
			s = in.Rel.Schema
		}
		if cs == nil {
			cs = s
		} else {
			cs = tuple.ConcatSchemas(cs, s, "r_")
		}
	}
	return cs, nil
}

// indexJoin joins the accumulated left relation against a base table via
// index probes on a single equi-join column (the materializing fallback's
// counterpart of exec.IndexLoopJoin). Base rows have count 1 and null
// timestamps, so the combined row keeps the left row's count and timestamp
// (product and min rules respectively).
func indexJoin(db *DB, left *relalg.Relation, t *Table, ix *Index, leftCol int, pred relalg.Predicate, asOf relalg.CSN) *relalg.Relation {
	out := relalg.NewRelation(tuple.ConcatSchemas(left.Schema, t.schema, "r_"))
	for _, lr := range left.Rows {
		db.addProbes(1)
		for _, m := range t.probeAsOf(ix, lr.Tuple[leftCol], pred, asOf) {
			out.Rows = append(out.Rows, relalg.Row{
				Tuple: tuple.Concat(lr.Tuple, m),
				Count: lr.Count,
				TS:    lr.TS,
			})
		}
	}
	return out
}

// ExecutePropagation runs q as its own transaction, streaming the result
// into the destination delta table: each batch's counts are multiplied by
// sign and appended, and the transaction commits. It returns the query
// execution time t_e and the number of rows and batches appended. For a
// current-state query t_e is the commit CSN (the bases were read under S
// locks, i.e. at the committed state the commit point sees); for an AsOf
// query t_e is q.AsOf — executed time equals intended time by
// construction. This is the Execute primitive of Figures 4 and 10.
func (db *DB) ExecutePropagation(q *Query, sign int64, dest *DeltaTable) (relalg.CSN, int, int, error) {
	for _, in := range q.Inputs {
		if in.Part.sliced() {
			db.NotePartSliceJob(in.Part.shard())
			break
		}
	}
	tx := db.Begin()
	// Columnar egress: serialize each result row straight from the batch's
	// columns into the delta table's row encoding; no tuples materialize
	// between the pipeline root and storage. encBuf is reused per row
	// (AppendEncoded copies into the value buffer the B+ tree retains).
	var encBuf []byte
	rows, batches, err := tx.StreamQuery(q, func(b *relalg.Batch) error {
		n := b.Len()
		for i := 0; i < n; i++ {
			ts := b.TSAt(i)
			if ts == relalg.NullTS {
				return fmt.Errorf("engine: propagation query %s produced a null-timestamp row", q)
			}
			encBuf = b.EncodeRowAt(encBuf[:0], i)
			var pv tuple.Value
			if b.Arity() > dest.partCol {
				pv = b.ValueAt(i, dest.partCol)
			}
			tx.AppendDeltaEncoded(dest, ts, sign*b.CountAt(i), encBuf, pv)
		}
		return nil
	})
	if err != nil {
		tx.Abort()
		return 0, 0, 0, err
	}
	csn, err := tx.Commit()
	if err != nil {
		tx.Abort()
		return 0, 0, 0, err
	}
	if q.AsOf != relalg.NullTS {
		return q.AsOf, int(rows), int(batches), nil
	}
	return csn, int(rows), int(batches), nil
}
