package engine

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// This file implements the cold-spill tier: derived-view images and cached
// join indexes untouched for a configurable window serialize to disk
// (reusing the tuple row encodings the btrees and delta tables store) and
// reload lazily on next access. Spill files are volatile per-process
// state: the facade creates a fresh spill directory per instance, so a
// restarted process never consults a predecessor's files — after a crash,
// images are rematerialized and cache indexes rebuilt from the heaps, the
// same as before spill existed. The two kinds differ in recoverability:
//
//   - A cached index is always reconstructible from the heap, so any load
//     failure (missing file, corruption, a delta prune past the spilled
//     watermark) silently falls back to a rebuild.
//   - A derived image is NOT reconstructible in-process once its delta
//     prefix has been folded away, so loads validate strictly (magic,
//     image time, CRC) and surface ErrSpillLost on failure.
const (
	spillMagic   = 0x524a5350 // "RJSP"
	spillVersion = 1

	spillKindImage = 1 // derived-view base image
	spillKindCache = 2 // cached join index
)

// errBadSpill marks a structurally invalid spill file.
var errBadSpill = errors.New("engine: corrupt spill file")

// ErrSpillLost is returned when a spilled derived image cannot be read
// back: the in-memory copy was dropped at spill time and the delta prefix
// below the image time may already be folded away, so the state is not
// reconstructible in-process (a restart rematerializes the view).
var ErrSpillLost = errors.New("engine: spilled derived image unreadable")

// writeSpillFile atomically publishes a spill file: body streams the
// payload through a CRC-accumulating writer, the checksum lands in the
// trailer, and the file appears under its final name only via rename.
// Returns the published file's size.
func writeSpillFile(path string, body func(cw *crcWriter) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	cw := newCRCWriter(tmp)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], spillMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], spillVersion)
	if _, err := cw.Write(hdr[:]); err != nil {
		return 0, err
	}
	if err := body(cw); err != nil {
		return 0, err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := cw.w.Write(tail[:]); err != nil {
		return 0, err
	}
	if err := cw.w.Flush(); err != nil {
		return 0, err
	}
	if err := tmp.Sync(); err != nil {
		return 0, err
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return 0, err
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// readSpillFile opens a spill file, validates the header, streams the
// payload through body, and verifies the CRC trailer.
func readSpillFile(path string, body func(cr *crcReader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cr := newCRCReader(f)
	var hdr [8]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != spillMagic {
		return fmt.Errorf("%w: bad magic", errBadSpill)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != spillVersion {
		return fmt.Errorf("%w: unsupported version %d", errBadSpill, v)
	}
	if err := body(cr); err != nil {
		return err
	}
	sum := cr.crc
	var tail [4]byte
	if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(tail[:]) != sum {
		return fmt.Errorf("%w: checksum mismatch", errBadSpill)
	}
	return nil
}

// spillFileName maps an object name to a stable, filesystem-safe file name
// (view and table names are caller-chosen strings).
func spillFileName(dir, kind, name string) string {
	return filepath.Join(dir, kind+"-"+hex.EncodeToString([]byte(name))+".rjsp")
}

// SpillIdle serializes cold resident state — derived-view images and
// cached join indexes untouched since cutoff — into dir and drops the
// in-memory copies, returning how many objects were spilled. Spilled state
// reloads lazily on next access.
func (db *DB) SpillIdle(dir string, cutoff time.Time) (int, error) {
	db.mu.RLock()
	dvs := make([]*Derived, 0, len(db.derived))
	for _, dv := range db.derived {
		dvs = append(dvs, dv)
	}
	db.mu.RUnlock()
	n := 0
	for _, dv := range dvs {
		bytes, err := dv.SpillIfIdle(dir, cutoff)
		if err != nil {
			return n, err
		}
		if bytes > 0 {
			n++
		}
	}
	cn, err := db.cache.spillIdle(dir, cutoff)
	return n + cn, err
}

// imageResidentBytes reports the current in-memory footprint of derived
// base images (spilled images count zero until reloaded).
func (db *DB) imageResidentBytes() int64 {
	db.mu.RLock()
	dvs := make([]*Derived, 0, len(db.derived))
	for _, dv := range db.derived {
		dvs = append(dvs, dv)
	}
	db.mu.RUnlock()
	var total int64
	for _, dv := range dvs {
		dv.mu.RLock()
		for k := range dv.image {
			total += int64(len(k)) + imageEntryOverhead
		}
		dv.mu.RUnlock()
	}
	return total
}

// imageEntryOverhead approximates the per-entry container cost of an image
// map entry (count plus string header) for the resident-bytes gauge.
const imageEntryOverhead = 24

// Spilled reports whether the derived image is currently on disk.
func (dv *Derived) Spilled() bool {
	dv.mu.RLock()
	defer dv.mu.RUnlock()
	return dv.spilled
}

// SpillIfIdle serializes the derived image to dir and drops it from memory
// when the relation has not been touched since cutoff. Returns the bytes
// written (0 when the image was hot, empty, or already spilled).
func (dv *Derived) SpillIfIdle(dir string, cutoff time.Time) (int64, error) {
	if dv.lastTouch.Load() >= cutoff.UnixNano() {
		return 0, nil
	}
	dv.mu.Lock()
	defer dv.mu.Unlock()
	if dv.spilled || len(dv.image) == 0 || dv.lastTouch.Load() >= cutoff.UnixNano() {
		return 0, nil
	}
	if err := fault.Inject(fault.PointSpillWrite); err != nil {
		return 0, err
	}
	path := spillFileName(dir, "img", dv.name)
	size, err := writeSpillFile(path, func(cw *crcWriter) error {
		if err := writeUvarint(cw, spillKindImage); err != nil {
			return err
		}
		if err := writeBytes(cw, []byte(dv.name)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(dv.imageTime)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(len(dv.image))); err != nil {
			return err
		}
		var cnt [binary.MaxVarintLen64]byte
		for k, c := range dv.image {
			if err := writeBytes(cw, []byte(k)); err != nil {
				return err
			}
			n := binary.PutVarint(cnt[:], c)
			if _, err := cw.Write(cnt[:n]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	dv.image = nil
	dv.spilled = true
	dv.spillPath = path
	if dv.db != nil {
		dv.db.noteSpill(size)
	}
	return size, nil
}

// loadLocked reads a spilled image back into memory. The caller holds
// dv.mu in write mode. A spilled image that cannot be read back is lost
// state (see ErrSpillLost): the delta prefix below the image time may be
// folded away, so there is nothing to rebuild from in-process.
func (dv *Derived) loadLocked() error {
	if !dv.spilled {
		return nil
	}
	if err := fault.Inject(fault.PointSpillLoad); err != nil {
		return err
	}
	img := make(map[string]int64)
	err := readSpillFile(dv.spillPath, func(cr *crcReader) error {
		kind, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		if kind != spillKindImage {
			return fmt.Errorf("%w: kind %d, want image", errBadSpill, kind)
		}
		name, err := readBytes(cr)
		if err != nil {
			return err
		}
		if string(name) != dv.name {
			return fmt.Errorf("%w: image for %q, want %q", errBadSpill, name, dv.name)
		}
		at, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		if relalg.CSN(at) != dv.imageTime {
			return fmt.Errorf("%w: image at CSN %d, want %d", errBadSpill, at, dv.imageTime)
		}
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		for i := uint64(0); i < n; i++ {
			k, err := readBytes(cr)
			if err != nil {
				return err
			}
			c, err := binary.ReadVarint(cr)
			if err != nil {
				return err
			}
			img[string(k)] = c
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("%w: %q: %v", ErrSpillLost, dv.name, err)
	}
	dv.image = img
	dv.spilled = false
	os.Remove(dv.spillPath)
	dv.spillPath = ""
	if dv.db != nil {
		dv.db.noteColdLoad()
	}
	return nil
}

// touch stamps the derived relation as recently used.
func (dv *Derived) touch() { dv.lastTouch.Store(time.Now().UnixNano()) }

// spillIdle walks the cached indexes and spills those untouched since
// cutoff.
func (jc *JoinCache) spillIdle(dir string, cutoff time.Time) (int, error) {
	jc.mu.Lock()
	states := make([]*CachedIndex, 0, len(jc.states))
	for _, st := range jc.states {
		states = append(states, st)
	}
	jc.mu.Unlock()
	n := 0
	for _, st := range states {
		spilled, err := st.spillIfIdle(jc.db, dir, cutoff)
		if err != nil {
			return n, err
		}
		if spilled {
			n++
		}
	}
	return n, nil
}

// spillIfIdle serializes a built index untouched since cutoff and drops
// its resident rows (returning their footprint to the gauges via
// resetLocked — the same decrement an invalidation performs).
func (st *CachedIndex) spillIfIdle(db *DB, dir string, cutoff time.Time) (bool, error) {
	if st.lastTouch.Load() >= cutoff.UnixNano() {
		return false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.built || st.nrows == 0 || st.lastTouch.Load() >= cutoff.UnixNano() {
		return false, nil
	}
	if err := fault.Inject(fault.PointSpillWrite); err != nil {
		return false, err
	}
	path := spillFileName(dir, fmt.Sprintf("idx%d", st.col), st.table)
	applied := st.applied
	size, err := writeSpillFile(path, func(cw *crcWriter) error {
		if err := writeUvarint(cw, spillKindCache); err != nil {
			return err
		}
		if err := writeBytes(cw, []byte(st.table)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(st.col)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(applied)); err != nil {
			return err
		}
		if err := writeUvarint(cw, uint64(st.nrows)); err != nil {
			return err
		}
		var cnt [binary.MaxVarintLen64]byte
		emit := func(rows []cachedRow) error {
			for _, cr := range rows {
				if err := writeBytes(cw, []byte(cr.enc)); err != nil {
					return err
				}
				n := binary.PutVarint(cnt[:], cr.row.Count)
				if _, err := cw.Write(cnt[:n]); err != nil {
					return err
				}
			}
			return nil
		}
		for _, m := range st.shards {
			for _, b := range m {
				if err := emit(b); err != nil {
					return err
				}
			}
		}
		for _, b := range st.heavy {
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	st.resetLocked(db)
	st.spilled = true
	st.spillPath = path
	st.spillApplied = applied
	db.noteSpill(size)
	return true, nil
}

// loadSpillLocked tries to restore a spilled index instead of rebuilding
// from the heap. It reports whether the index is now built; any failure —
// missing or corrupt file, or the delta stream pruned past the spilled
// watermark (the window needed to advance it is gone) — clears the spill
// marker and returns false so the caller falls back to buildLocked. Caller
// holds mu in write mode.
func (st *CachedIndex) loadSpillLocked(db *DB) bool {
	if !st.spilled {
		return false
	}
	path, applied := st.spillPath, st.spillApplied
	st.spilled = false
	st.spillPath = ""
	st.spillApplied = 0
	defer os.Remove(path)
	if err := fault.Inject(fault.PointSpillLoad); err != nil {
		return false
	}
	d, err := db.Delta(st.table)
	if err != nil || d.PrunedThrough() > applied {
		return false
	}
	type loaded struct {
		row   tuple.Tuple
		count int64
	}
	var rows []loaded
	err = readSpillFile(path, func(cr *crcReader) error {
		kind, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		if kind != spillKindCache {
			return fmt.Errorf("%w: kind %d, want cache", errBadSpill, kind)
		}
		table, err := readBytes(cr)
		if err != nil {
			return err
		}
		col, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		if string(table) != st.table || int(col) != st.col {
			return fmt.Errorf("%w: index (%s, %d), want (%s, %d)", errBadSpill, table, col, st.table, st.col)
		}
		at, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		if relalg.CSN(at) != applied {
			return fmt.Errorf("%w: applied %d, want %d", errBadSpill, at, applied)
		}
		n, err := binary.ReadUvarint(cr)
		if err != nil {
			return err
		}
		rows = make([]loaded, 0, n)
		for i := uint64(0); i < n; i++ {
			enc, err := readBytes(cr)
			if err != nil {
				return err
			}
			count, err := binary.ReadVarint(cr)
			if err != nil {
				return err
			}
			row, _, err := tuple.DecodeRow(enc)
			if err != nil {
				return err
			}
			rows = append(rows, loaded{row: row, count: count})
		}
		return nil
	})
	if err != nil {
		return false
	}
	// Re-check the prune watermark after the read: a concurrent fold may
	// have pruned the delta while the file streamed in.
	if d.PrunedThrough() > applied {
		return false
	}
	st.resetLocked(db)
	for _, r := range rows {
		st.foldLocked(db, r.row, r.count)
	}
	st.applied = applied
	st.built = true
	db.noteColdLoad()
	return true
}

// touch stamps the cached index as recently used. Safe under the read
// lock (the stamp is atomic).
func (st *CachedIndex) touch() { st.lastTouch.Store(time.Now().UnixNano()) }
