package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
	"repro/internal/wal"
)

// seedRows commits n single-row transactions and returns the last CSN.
func seedRows(t *testing.T, db *DB, table string, n int) relalg.CSN {
	t.Helper()
	var last relalg.CSN
	for i := 0; i < n; i++ {
		tx := db.Begin()
		if err := tx.Insert(table, tuple.Tuple{tuple.Int(int64(i)), tuple.String_("x")}); err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		csn, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		last = csn
	}
	return last
}

func TestSnapshotSeesExactCommitPrefix(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	last := seedRows(t, db, "r", 5)

	// A snapshot at every historical CSN sees exactly that many rows.
	// (CSN 0 is not addressable: relalg.NullTS doubles as "latest stable".)
	for asOf := relalg.CSN(1); asOf <= last; asOf++ {
		snap, err := db.OpenSnapshot(asOf)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := snap.Scan("r", nil)
		if err != nil {
			t.Fatal(err)
		}
		if rel.Len() != int(asOf) {
			t.Fatalf("snapshot at %d sees %d rows", asOf, rel.Len())
		}
		snap.Close()
	}

	// Deletes are versioned too: a delete at CSN d keeps the row visible to
	// snapshots below d.
	tx := db.Begin()
	tx.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(0)}, 0)
	d, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	before, _ := db.OpenSnapshot(d - 1)
	after, _ := db.OpenSnapshot(d)
	defer before.Close()
	defer after.Close()
	rb, _ := before.Scan("r", nil)
	ra, _ := after.Scan("r", nil)
	if rb.Len() != 5 || ra.Len() != 4 {
		t.Fatalf("delete visibility: before=%d after=%d", rb.Len(), ra.Len())
	}
}

func TestSnapshotBelowGCHorizonRefused(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	seedRows(t, db, "r", 3)

	tx := db.Begin()
	tx.DeleteWhere("r", nil, 0)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	collected, horizon := db.GCVersions()
	if collected != 3 {
		t.Fatalf("collected %d versions, want 3", collected)
	}
	if _, err := db.OpenSnapshot(horizon - 1); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("snapshot below GC horizon: err=%v", err)
	}
	// At or above the horizon stays valid.
	snap, err := db.OpenSnapshot(horizon)
	if err != nil {
		t.Fatal(err)
	}
	snap.Close()
}

func TestSnapshotPinsVersionsAgainstGC(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	last := seedRows(t, db, "r", 3)

	// Pin a snapshot at the pre-delete state, then delete everything.
	pin, err := db.OpenSnapshot(last)
	if err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	tx.DeleteWhere("r", nil, 0)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// GC must clamp to the pinned AsOf and keep the dead versions.
	if n, _ := db.GCVersions(); n != 0 {
		t.Fatalf("GC collected %d versions under an active snapshot", n)
	}
	rel, err := pin.Scan("r", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("pinned snapshot sees %d rows after delete+GC, want 3", rel.Len())
	}
	pin.Close()

	if n, _ := db.GCVersions(); n != 3 {
		t.Fatalf("GC after Close collected %d versions, want 3", n)
	}
	if db.DeadVersionsRetained() != 0 {
		t.Fatal("dead versions retained after GC")
	}
}

func TestSnapshotRacingPublish(t *testing.T) {
	// Writers commit multi-row transactions while readers open latest-stable
	// snapshots: every snapshot must observe an exact prefix of the commit
	// order, i.e. a row count that is a multiple of the transaction size.
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	const (
		writers   = 4
		txPerW    = 50
		rowsPerTx = 3
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	torn := make(chan int, 1)
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := db.OpenSnapshot(relalg.NullTS)
			if err != nil {
				return
			}
			rel, err := snap.Scan("r", nil)
			snap.Close()
			if err != nil {
				return
			}
			if rel.Len()%rowsPerTx != 0 {
				select {
				case torn <- rel.Len():
				default:
				}
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < txPerW; i++ {
				tx := db.Begin()
				for j := 0; j < rowsPerTx; j++ {
					tx.Insert("r", tuple.Tuple{tuple.Int(int64(w*txPerW + i)), tuple.String_("x")})
				}
				tx.Commit()
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case n := <-torn:
		t.Fatalf("snapshot observed a torn commit: %d rows (not a multiple of %d)", n, rowsPerTx)
	default:
	}

	snap, _ := db.OpenSnapshot(relalg.NullTS)
	defer snap.Close()
	rel, _ := snap.Scan("r", nil)
	if rel.Len() != writers*txPerW*rowsPerTx {
		t.Fatalf("final snapshot sees %d rows, want %d", rel.Len(), writers*txPerW*rowsPerTx)
	}
}

func TestSnapshotUnaffectedByDeltaPrune(t *testing.T) {
	// Pruning applied view-delta windows (Applier.PruneApplied →
	// DeltaTable.PruneThrough) must not disturb base-table snapshots: the
	// two retention mechanisms are independent.
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	d, err := db.CreateDelta("r")
	if err != nil {
		t.Fatal(err)
	}
	last := seedRows(t, db, "r", 4)
	for i := relalg.CSN(1); i <= last; i++ {
		d.Append(i, 1, tuple.Tuple{tuple.Int(int64(i)), tuple.String_("x")})
	}
	snap, err := db.OpenSnapshot(last - 2)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	if pruned := d.PruneThrough(last); pruned != int(last) {
		t.Fatalf("pruned %d delta rows, want %d", pruned, last)
	}
	if d.PrunedThrough() != last {
		t.Fatalf("pruned-through %d, want %d", d.PrunedThrough(), last)
	}
	rel, err := snap.Scan("r", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != int(last-2) {
		t.Fatalf("snapshot sees %d rows after delta prune, want %d", rel.Len(), last-2)
	}
}

func TestSnapshotValidAfterCacheInvalidation(t *testing.T) {
	db := testDB(t)
	db.CreateTable("r", ordersSchema())
	last := seedRows(t, db, "r", 3)
	snap, err := db.OpenSnapshot(last)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	db.InvalidateJoinCache()
	rel, err := snap.Scan("r", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("snapshot sees %d rows after cache invalidation, want 3", rel.Len())
	}
}

func TestSnapshotAfterRecovery(t *testing.T) {
	dev := wal.NewMemDevice()
	db, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	db.CreateTable("r", ordersSchema())
	tx := db.Begin()
	tx.Insert("r", tuple.Tuple{tuple.Int(1), tuple.String_("keep")})
	tx.Insert("r", tuple.Tuple{tuple.Int(2), tuple.String_("gone")})
	tx.Commit()
	tx2 := db.Begin()
	tx2.DeleteWhere("r", relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(2)}, 0)
	tx2.Commit()
	db.Close()

	db2, err := Open(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.CreateTable("r", ordersSchema())
	csn, err := db2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if db2.StableCSN() != csn {
		t.Fatalf("stable CSN %d after recovery, want %d", db2.StableCSN(), csn)
	}
	// Replay compacts history to the final state (born 0); a snapshot at
	// the recovered CSN sees exactly the committed current state.
	snap, err := db2.OpenSnapshot(csn)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	rel, err := snap.Scan("r", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Rows[0].Tuple[0].AsInt() != 1 {
		t.Fatalf("recovered snapshot state: %s", rel)
	}
	// And writes after recovery version normally.
	tx3 := db2.Begin()
	tx3.Insert("r", tuple.Tuple{tuple.Int(3), tuple.String_("new")})
	c3, err := tx3.Commit()
	if err != nil {
		t.Fatal(err)
	}
	old, _ := db2.OpenSnapshot(c3 - 1)
	cur, _ := db2.OpenSnapshot(c3)
	defer old.Close()
	defer cur.Close()
	ro, _ := old.Scan("r", nil)
	rc, _ := cur.Scan("r", nil)
	if ro.Len() != 1 || rc.Len() != 2 {
		t.Fatalf("post-recovery versioning: old=%d cur=%d", ro.Len(), rc.Len())
	}
}
