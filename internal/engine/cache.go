package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// This file implements the join-state cache: per (table, join-column) hash
// indexes over the committed base-table state that are built once and then
// maintained incrementally from the base table's delta stream, so a rolling
// propagation step probes resident state instead of rescanning (or
// re-hashing) the full base table. It is the engine-side analogue of
// DBToaster's warm auxiliary views and DBSP's persistent operator state.
//
// Correctness rests on one substitution. The uncached propagation query
// reports its commit CSN as the execution time t_e: every base position was
// read, under table S locks, at the committed state R@t_e. The cached query
// instead reads every base position from cached indexes advanced to one
// common time t_s = max(window his, cache applied times) and reports t_s as
// its execution time. Since compensation (Figure 4) only needs the time at
// which the bases were *actually observed* — whatever that time is — a
// query answered exactly at R@t_s with execution time t_s is
// indistinguishable from an uncached query that happened to commit at t_s.
// The cached index holds R@applied because:
//
//	R@t = R@0 + fold(Δ^R(0, t])            (Definition 4.2, counts summed)
//
// and the maintenance step folds exactly Δ^R(applied, t_s] — which is
// complete once capture progress has passed t_s — into an index that held
// R@applied. Cached rows keep the base-row convention (net count, null
// timestamp), so the join combination rule (count product, min non-null
// timestamp) produces the same timed delta rows as a heap scan.
//
// Locking: a cached query takes NO table locks. Each cached index has an
// RWMutex; queries pin the states they read in read mode for the duration
// of execution, and advance/build under the write lock. States are always
// acquired in sorted (table, column) order, so wait-for edges between
// cached queries point from lower to higher states and cannot cycle. The
// initial build scans the heap inside its own short transaction holding the
// table S lock (released immediately after the scan), which both serializes
// the snapshot against in-flight writers and keeps the lock manager's graph
// disjoint from the cache mutexes.

// errCacheStale marks a maintenance window that was pruned from under the
// cache (PruneThrough advanced past the applied watermark); the cached
// index must be rebuilt from the heap.
var errCacheStale = errors.New("engine: cached index maintenance window pruned")

// cachedRowOverhead approximates the per-row container cost (slice header,
// count, timestamp, encoding string header) for the resident-bytes gauge.
const cachedRowOverhead = 64

// cachedRow is one resident row of a cached index: the full-row key
// encoding (fold identity) plus the row with its net count.
type cachedRow struct {
	enc string
	row relalg.Row // TS is always NullTS, like heap rows
}

// CachedIndex is the resident hash index for one (table, column) pair:
// committed rows grouped by join-key encoding, net counts, maintained to
// the applied watermark.
//
// With engine partitioning (Partitions = N > 1) the resident state is
// sharded N ways by the same join-key hash the storage uses, plus one
// dedicated partition for heavy-classified keys. When the cached column
// is the table's partition column the maintenance step folds each
// partition's own delta window (WindowPart) straight into its shard —
// cache maintenance touches only its partition's slice of the delta
// stream. Keys migrate between a hash shard and the heavy partition as
// the classifier reclassifies them (migrateKey); a key's bucket lives in
// exactly one map at a time, and all routing goes through bucketMap /
// lookupBucket so folds, probes, and scans agree.
type CachedIndex struct {
	table   string
	col     int
	nparts  int  // resident shard count (>= 1)
	aligned bool // col == table partition column: per-partition maintenance

	// lastTouch is the unix-nano stamp of the last pin or build; the
	// cold-spill sweep compares it to its idleness cutoff. Atomic so read
	// pins can stamp it without write access.
	lastTouch atomic.Int64

	// mu protects everything below. Queries hold it in read mode ("pinned")
	// while executing; build, advance, and invalidation take write mode.
	mu      sync.RWMutex
	built   bool
	applied relalg.CSN
	shards  []map[string][]cachedRow
	heavy   map[string][]cachedRow // buckets migrated to the heavy partition
	nrows   int
	bytes   int64

	// Cold-spill state (spill.go): while spilled, the resident rows live in
	// spillPath at the spillApplied watermark and built is false; the next
	// pin reloads them (or rebuilds from the heap if the file is unusable).
	spilled      bool
	spillPath    string
	spillApplied relalg.CSN
}

// newCachedIndex allocates the shard maps for a state.
func newCachedIndex(table string, col, nparts int, aligned bool) *CachedIndex {
	if nparts < 1 {
		nparts = 1
	}
	st := &CachedIndex{table: table, col: col, nparts: nparts, aligned: aligned}
	st.allocLocked()
	return st
}

func (st *CachedIndex) allocLocked() {
	st.shards = make([]map[string][]cachedRow, st.nparts)
	for i := range st.shards {
		st.shards[i] = make(map[string][]cachedRow)
	}
	st.heavy = make(map[string][]cachedRow)
}

// bucketMap returns the map a key's bucket lives in: the heavy partition
// when the key has been migrated there, its hash shard otherwise. Caller
// holds mu.
func (st *CachedIndex) bucketMap(key string) map[string][]cachedRow {
	if _, ok := st.heavy[key]; ok {
		return st.heavy
	}
	if st.nparts <= 1 {
		return st.shards[0]
	}
	return st.shards[hashPartEnc([]byte(key), st.nparts)]
}

// lookupBucket returns the resident bucket for a key (nil if absent).
// Caller holds mu (typically in read mode, via a pin).
func (st *CachedIndex) lookupBucket(key string) []cachedRow {
	if b, ok := st.heavy[key]; ok {
		return b
	}
	if st.nparts <= 1 {
		return st.shards[0][key]
	}
	return st.shards[hashPartEnc([]byte(key), st.nparts)][key]
}

// Table returns the cached table's name.
func (st *CachedIndex) Table() string { return st.table }

// Column returns the join column the index is keyed on.
func (st *CachedIndex) Column() int { return st.col }

// resetLocked drops the resident rows, returning their footprint to the
// gauges. Caller holds mu in write mode.
func (st *CachedIndex) resetLocked(db *DB) {
	db.cacheResidentRows.Add(-int64(st.nrows))
	db.cacheResidentBytes.Add(-st.bytes)
	st.allocLocked()
	st.nrows = 0
	st.bytes = 0
	st.built = false
	st.applied = 0
	// A reset invalidates any spilled copy too: the heap may have moved
	// out from under it (restore, recovery), so it must not be reloaded.
	st.spilled = false
	st.spillPath = ""
	st.spillApplied = 0
}

// foldLocked merges one signed change into the index: counts of equal
// tuples sum, entries reaching zero are removed (Definition 4.2's
// consolidation). Caller holds mu in write mode.
func (st *CachedIndex) foldLocked(db *DB, row tuple.Tuple, count int64) {
	if count == 0 {
		return
	}
	key := string(tuple.EncodeKeyValue(nil, row[st.col]))
	enc := string(tuple.EncodeRow(nil, row))
	m := st.bucketMap(key)
	bucket := m[key]
	for i := range bucket {
		if bucket[i].enc == enc {
			bucket[i].row.Count += count
			if bucket[i].row.Count == 0 {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				if len(bucket) == 0 {
					delete(m, key)
				} else {
					m[key] = bucket
				}
				st.nrows--
				st.bytes -= int64(len(enc) + cachedRowOverhead)
				db.cacheResidentRows.Add(-1)
				db.cacheResidentBytes.Add(-int64(len(enc) + cachedRowOverhead))
			}
			return
		}
	}
	m[key] = append(bucket, cachedRow{
		enc: enc,
		row: relalg.Row{Tuple: row, Count: count, TS: relalg.NullTS},
	})
	st.nrows++
	st.bytes += int64(len(enc) + cachedRowOverhead)
	db.cacheResidentRows.Add(1)
	db.cacheResidentBytes.Add(int64(len(enc) + cachedRowOverhead))
}

// buildLocked (re)builds the index from the heap through a read view at
// the latest stable CSN: lock-free, so even the initial build never
// blocks writers. The snapshot pins the GC horizon for the duration of
// the scan; pin advances the index from the snapshot's CSN to the target
// time through the delta stream. Caller holds mu in write mode.
func (st *CachedIndex) buildLocked(db *DB) error {
	t, err := db.Table(st.table)
	if err != nil {
		return err
	}
	snap, err := db.OpenSnapshot(relalg.NullTS)
	if err != nil {
		return err
	}
	applied := snap.AsOf()
	rel := t.scanAsOf(nil, applied)
	snap.Close()
	db.addScanned(int64(rel.Len()))
	st.resetLocked(db)
	for _, row := range rel.Rows {
		st.foldLocked(db, row.Tuple, row.Count)
	}
	st.applied = applied
	st.built = true
	db.cacheBuilds.Add(1)
	return nil
}

// advanceLocked folds the maintenance window (applied, ts] of the base
// delta into the index. The caller must have ensured capture progress >= ts
// (the window is closed). Returns errCacheStale when pruning has removed
// part of the window. Caller holds mu in write mode.
func (st *CachedIndex) advanceLocked(db *DB, ts relalg.CSN) error {
	d, err := db.Delta(st.table)
	if err != nil {
		return err
	}
	if d.PrunedThrough() > st.applied {
		return errCacheStale
	}
	if st.aligned && st.nparts == d.Partitions() {
		// The cached column is the table's partition column: fold each
		// partition's own delta slice, so maintenance work decomposes by
		// partition and the per-partition counters attribute it.
		total := 0
		for p := 0; p < st.nparts; p++ {
			win := d.WindowPart(p, st.applied, ts)
			if d.PrunedThrough() > st.applied {
				return errCacheStale
			}
			for _, row := range win.Rows {
				st.foldLocked(db, row.Tuple, row.Count)
			}
			total += len(win.Rows)
			if n := len(win.Rows); n > 0 && p < len(db.partCacheRows) {
				db.partCacheRows[p].Add(int64(n))
			}
		}
		db.cacheMaintRows.Add(int64(total))
		st.applied = ts
		return nil
	}
	win := d.Window(st.applied, ts)
	// Re-check after materializing: a concurrent PruneThrough may have
	// deleted rows out of the window between the check and the read.
	if d.PrunedThrough() > st.applied {
		return errCacheStale
	}
	for _, row := range win.Rows {
		st.foldLocked(db, row.Tuple, row.Count)
	}
	db.cacheMaintRows.Add(int64(len(win.Rows)))
	st.applied = ts
	return nil
}

// ensureBuilt builds the index if needed and returns the applied watermark.
func (st *CachedIndex) ensureBuilt(db *DB) (relalg.CSN, error) {
	st.mu.RLock()
	if st.built {
		applied := st.applied
		st.mu.RUnlock()
		return applied, nil
	}
	st.mu.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.built && !st.loadSpillLocked(db) {
		if err := st.buildLocked(db); err != nil {
			return 0, err
		}
	}
	st.touch()
	return st.applied, nil
}

// pin locks st for reading at exactly ts (capture progress must already be
// >= ts). On success the read lock is held and st.applied == ts. If a
// concurrent query advanced the state past ts, it returns the later time
// with no lock held; the caller re-targets all its pins at that time.
func (st *CachedIndex) pin(db *DB, ts relalg.CSN) (relalg.CSN, error) {
	for {
		st.mu.RLock()
		if st.built && st.applied == ts {
			st.touch()
			return ts, nil
		}
		if st.built && st.applied > ts {
			cur := st.applied
			st.touch()
			st.mu.RUnlock()
			return cur, nil
		}
		st.mu.RUnlock()

		st.mu.Lock()
		st.touch()
		if !st.built {
			// Spilled state reloads in place; otherwise (invalidated, or
			// lost a race with an invalidation) rebuild. The fresh snapshot
			// is at the stable CSN; any gap up to ts is closed by the
			// advance below.
			if !st.loadSpillLocked(db) && !st.built {
				if err := st.buildLocked(db); err != nil {
					st.mu.Unlock()
					return 0, err
				}
			}
		}
		if st.applied < ts {
			err := st.advanceLocked(db, ts)
			if errors.Is(err, errCacheStale) {
				err = st.buildLocked(db)
			}
			if err != nil {
				st.mu.Unlock()
				return 0, err
			}
		}
		st.mu.Unlock()
		// Re-enter through the read path: another query may have advanced
		// the state again in the gap, in which case we report its time.
	}
}

// unpin releases a read pin.
func (st *CachedIndex) unpin() { st.mu.RUnlock() }

// cacheKey identifies one cached index.
type cacheKey struct {
	table string
	col   int
}

// JoinCache is the per-DB registry of cached indexes.
type JoinCache struct {
	db *DB

	mu     sync.Mutex
	states map[cacheKey]*CachedIndex
}

func newJoinCache(db *DB) *JoinCache {
	return &JoinCache{db: db, states: make(map[cacheKey]*CachedIndex)}
}

// state returns (creating if needed) the cached index for (table, col).
func (jc *JoinCache) state(table string, col int) *CachedIndex {
	jc.mu.Lock()
	defer jc.mu.Unlock()
	k := cacheKey{table, col}
	st := jc.states[k]
	if st == nil {
		nparts, aligned := 1, false
		if t, err := jc.db.Table(table); err == nil && t.nparts > 1 {
			nparts = t.nparts
			aligned = col == t.partCol
		}
		st = newCachedIndex(table, col, nparts, aligned)
		jc.states[k] = st
	}
	return st
}

// migrateKey moves a key's resident bucket between its hash shard and the
// heavy partition in every cached index that groups this table by its
// partition column. Invoked by the classifier on a class flip; the bucket
// move happens under the state's write lock, so pinned readers never see a
// key in both places. States keyed on other columns don't bucket by this
// key and are untouched.
func (jc *JoinCache) migrateKey(table, enc string, toHeavy bool) error {
	jc.mu.Lock()
	var targets []*CachedIndex
	for k, st := range jc.states {
		if k.table == table && st.aligned {
			targets = append(targets, st)
		}
	}
	jc.mu.Unlock()
	for _, st := range targets {
		st.mu.Lock()
		if !st.built {
			st.mu.Unlock()
			continue
		}
		if toHeavy {
			h := st.shards[hashPartEnc([]byte(enc), st.nparts)]
			if b, ok := h[enc]; ok {
				st.heavy[enc] = b
				delete(h, enc)
			}
		} else if b, ok := st.heavy[enc]; ok {
			st.shards[hashPartEnc([]byte(enc), st.nparts)][enc] = b
			delete(st.heavy, enc)
		}
		st.mu.Unlock()
	}
	return nil
}

// anyState returns an existing cached index for the table (lowest column
// wins, for determinism), or creates one keyed on column 0. Used for base
// positions read as full snapshots, where any resident copy serves.
func (jc *JoinCache) anyState(table string) *CachedIndex {
	jc.mu.Lock()
	var best *CachedIndex
	for k, st := range jc.states {
		if k.table == table && (best == nil || k.col < best.col) {
			best = st
		}
	}
	jc.mu.Unlock()
	if best != nil {
		return best
	}
	return jc.state(table, 0)
}

// invalidateAll marks every cached index unbuilt (dropping its rows), for
// use after operations that mutate base tables without going through the
// delta stream: snapshot restore and log recovery.
func (jc *JoinCache) invalidateAll() {
	jc.mu.Lock()
	states := make([]*CachedIndex, 0, len(jc.states))
	for _, st := range jc.states {
		states = append(states, st)
	}
	jc.mu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		if st.built {
			st.resetLocked(jc.db)
			jc.db.cacheInvalidations.Add(1)
		}
		st.mu.Unlock()
	}
}

// InvalidateJoinCache drops all resident join-cache state; the next cached
// query rebuilds from the heaps. Called internally after snapshot restore
// and recovery (which write base tables without producing delta rows), and
// available to callers performing comparable out-of-band mutations.
func (db *DB) InvalidateJoinCache() { db.cache.invalidateAll() }

// cacheProbeCols mirrors buildPlan's join-order and condition-assignment
// logic without constructing operators: for each base input it reports the
// single equi-join probe column the pipeline would use, or -1 when the
// input joins on zero or multiple conditions and must be read as a full
// snapshot.
func cacheProbeCols(q *Query) map[int]int {
	order := joinOrder(q)
	placed := make([]bool, len(q.Inputs))
	used := make([]bool, len(q.Conds))
	cols := make(map[int]int)
	placed[order[0]] = true
	if q.Inputs[order[0]].Kind == InputBase {
		cols[order[0]] = -1
	}
	for step := 1; step < len(q.Inputs); step++ {
		i := order[step]
		matched, probeCol := 0, -1
		for ci, c := range q.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if a.Input == i && placed[b.Input] {
				a, b = b, a
			}
			if b.Input == i && placed[a.Input] {
				used[ci] = true
				matched++
				probeCol = b.Col
			}
		}
		placed[i] = true
		if q.Inputs[i].Kind == InputBase {
			if matched == 1 {
				cols[i] = probeCol
			} else {
				cols[i] = -1
			}
		}
	}
	return cols
}

// CacheEligible reports whether q can run through the join-state cache: at
// least one base position and one delta position, every base position's
// table covered by a registered delta (the maintenance stream), and no
// materialized-relation positions.
func CacheEligible(db *DB, q *Query) bool {
	hasBase, hasDelta := false, false
	for _, in := range q.Inputs {
		switch in.Kind {
		case InputBase:
			// A derived (view) input has a registered delta under its own
			// name, but the cache maintains heap-backed base indexes only.
			if db.IsDerived(in.Table) {
				return false
			}
			hasBase = true
			if !db.HasDelta(in.Table) {
				return false
			}
		case InputDelta:
			hasDelta = true
		default:
			return false
		}
	}
	return hasBase && hasDelta
}

// cacheUse is an acquired set of pinned cached indexes: every base input of
// the query mapped to a state holding exactly R@ts.
type cacheUse struct {
	byInput map[int]*CachedIndex
	pinned  []*CachedIndex
	ts      relalg.CSN
}

func (u *cacheUse) release() {
	for _, st := range u.pinned {
		st.unpin()
	}
	u.pinned = nil
}

// acquire resolves, builds, advances, and read-pins the cached indexes for
// every base position of q at one common snapshot time, which becomes the
// query's execution time: ts = max(minTS, applied times), raised further if
// concurrent queries advance a shared state past it. wait gates on capture
// progress so every maintenance window folded is closed.
func (jc *JoinCache) acquire(q *Query, minTS relalg.CSN, wait func(relalg.CSN) error) (*cacheUse, error) {
	cols := cacheProbeCols(q)
	byInput := make(map[int]*CachedIndex)
	distinct := make(map[*CachedIndex]bool)
	for i, in := range q.Inputs {
		if in.Kind != InputBase {
			continue
		}
		var st *CachedIndex
		if c, ok := cols[i]; ok && c >= 0 {
			st = jc.state(in.Table, c)
		} else {
			st = jc.anyState(in.Table)
		}
		byInput[i] = st
		distinct[st] = true
	}
	states := make([]*CachedIndex, 0, len(distinct))
	for st := range distinct {
		states = append(states, st)
	}
	// Sorted acquisition order keeps the pin wait-for graph acyclic.
	sort.Slice(states, func(i, j int) bool {
		if states[i].table != states[j].table {
			return states[i].table < states[j].table
		}
		return states[i].col < states[j].col
	})

	ts := minTS
	for _, st := range states {
		applied, err := st.ensureBuilt(jc.db)
		if err != nil {
			return nil, err
		}
		if applied > ts {
			ts = applied
		}
	}
	for {
		if wait != nil {
			if err := wait(ts); err != nil {
				return nil, err
			}
		}
		var pinned []*CachedIndex
		retarget := relalg.CSN(0)
		for _, st := range states {
			cur, err := st.pin(jc.db, ts)
			if err != nil {
				for _, p := range pinned {
					p.unpin()
				}
				return nil, err
			}
			if cur != ts {
				for _, p := range pinned {
					p.unpin()
				}
				retarget = cur
				break
			}
			pinned = append(pinned, st)
		}
		if retarget == 0 {
			return &cacheUse{byInput: byInput, pinned: pinned, ts: ts}, nil
		}
		ts = retarget
	}
}

// cacheScan streams a pinned cached index as a base-table snapshot at the
// pin time: every resident tuple with its net count and the null timestamp
// (multiset-equivalent to a heap scan, which emits duplicates as separate
// count-1 rows). The caller holds the state's read pin for the whole query,
// so the map is immutable while the scan runs; bucket order is arbitrary,
// which is fine for multiset semantics.
type cacheScan struct {
	db   *DB
	st   *CachedIndex
	pred relalg.Predicate

	buckets [][]cachedRow
	bi, ri  int
	scanned int64
}

// Open implements exec.Operator.
func (s *cacheScan) Open() error {
	s.buckets = s.buckets[:0]
	for _, m := range s.st.shards {
		for _, b := range m {
			s.buckets = append(s.buckets, b)
		}
	}
	for _, b := range s.st.heavy {
		s.buckets = append(s.buckets, b)
	}
	s.bi, s.ri = 0, 0
	return nil
}

// Next implements exec.Operator.
func (s *cacheScan) Next(out *relalg.Batch) (bool, error) {
	out.Reset()
	for s.bi < len(s.buckets) && out.Len() < s.db.batchSize {
		b := s.buckets[s.bi]
		if s.ri >= len(b) {
			s.bi++
			s.ri = 0
			continue
		}
		r := b[s.ri].row
		s.ri++
		if s.pred != nil && !s.pred.Eval(r.Tuple) {
			continue
		}
		out.Append(r)
	}
	s.scanned += int64(out.Len())
	return out.Len() > 0, nil
}

// Close implements exec.Operator.
func (s *cacheScan) Close() error {
	if s.buckets != nil {
		s.buckets = nil
		s.db.addScanned(s.scanned)
	}
	return nil
}

// buildPlanCached lowers q to an operator tree reading every base position
// from the pinned cached indexes in use — a probe join when the position
// has a single equi-join condition on the cached column, a cache-snapshot
// scan otherwise. It is buildPlan with the heap leaves (and their table
// locks) replaced by resident state; delta windows stream off their trees
// unchanged.
func (db *DB) buildPlanCached(q *Query, use *cacheUse, a *exec.Arena) (exec.Operator, error) {
	arities, offsets, err := db.arities(q)
	if err != nil {
		return nil, err
	}

	leaf := func(i int) (exec.Operator, error) {
		in := q.Inputs[i]
		switch in.Kind {
		case InputDelta:
			d, err := db.Delta(in.Table)
			if err != nil {
				return nil, err
			}
			return &deltaScan{db: db, d: d, lo: in.Lo, hi: in.Hi, pred: in.Pred, spec: in.Part}, nil
		case InputBase:
			return &cacheScan{db: db, st: use.byInput[i], pred: in.Pred}, nil
		default:
			return nil, fmt.Errorf("engine: input %d not cache-eligible", i)
		}
	}

	order := joinOrder(q)
	n := len(q.Inputs)
	placed := make([]bool, n)
	joinedOff := make([]int, n)

	cur, err := leaf(order[0])
	if err != nil {
		return nil, err
	}
	placed[order[0]] = true
	joinedOff[order[0]] = 0
	joinedWidth := arities[order[0]]
	used := make([]bool, len(q.Conds))
	for step := 1; step < n; step++ {
		i := order[step]
		var on []relalg.JoinOn
		for ci, c := range q.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if a.Input == i && placed[b.Input] {
				a, b = b, a
			}
			if b.Input == i && placed[a.Input] {
				on = append(on, relalg.JoinOn{
					LeftCol:  joinedOff[a.Input] + a.Col,
					RightCol: b.Col,
				})
				used[ci] = true
			}
		}
		var joined exec.Operator
		if q.Inputs[i].Kind == InputBase && len(on) == 1 {
			if st := use.byInput[i]; st.col == on[0].RightCol {
				pred := q.Inputs[i].Pred
				var keyBuf []byte // reused across probes; lookupBucket does not retain it
				joined = &exec.CachedProbeJoin{
					Left:    cur,
					LeftCol: on[0].LeftCol,
					Size:    db.batchSize,
					A:       a,
					ProbeFn: func(v tuple.Value, emit func(relalg.Row)) {
						keyBuf = tuple.EncodeKeyValue(keyBuf[:0], v)
						bucket := st.lookupBucket(string(keyBuf))
						if len(bucket) == 0 {
							db.cacheMisses.Add(1)
							return
						}
						db.cacheHits.Add(1)
						for _, cr := range bucket {
							if pred == nil || pred.Eval(cr.row.Tuple) {
								emit(cr.row)
							}
						}
					},
				}
			}
		}
		if joined == nil {
			right, err := leaf(i)
			if err != nil {
				return nil, err
			}
			joined = &exec.HashJoin{
				Left:  cur,
				Right: right,
				On:    on,
				// The cache scan streams; hash the delta-anchored prefix.
				BuildLeft: q.Inputs[i].Kind == InputBase,
				Size:      db.batchSize,
				A:         a,
			}
		}
		cur = &exec.Tap{Child: joined, OnBatch: func(rows int) { db.addJoined(int64(rows)) }}
		joinedOff[i] = joinedWidth
		joinedWidth += arities[i]
		placed[i] = true
	}

	if !inDeclarationOrder(order) {
		perm := make([]int, 0, joinedWidth)
		for i := 0; i < n; i++ {
			for c := 0; c < arities[i]; c++ {
				perm = append(perm, joinedOff[i]+c)
			}
		}
		cur = &exec.Project{Child: cur, Idx: perm}
	}

	var residuals relalg.And
	for ci, c := range q.Conds {
		if used[ci] {
			continue
		}
		residuals = append(residuals, relalg.ColCol{
			ColA: offsets[c.A.Input] + c.A.Col,
			Op:   relalg.OpEQ,
			ColB: offsets[c.B.Input] + c.B.Col,
		})
	}
	if q.Residual != nil {
		residuals = append(residuals, q.Residual)
	}
	if len(residuals) > 0 {
		cur = &exec.Filter{Child: cur, Pred: residuals, OnFilter: db.noteFilter}
	}

	if q.Project != nil {
		idx := make([]int, len(q.Project))
		for i, ref := range q.Project {
			idx[i] = offsets[ref.Input] + ref.Col
		}
		cur = &exec.Project{Child: cur, Idx: idx}
	}
	return cur, nil
}

// ExecutePropagationCached is ExecutePropagation through the join-state
// cache: base positions are answered from pinned cached indexes advanced to
// a single snapshot time t_s >= minTS, and t_s is returned as the query's
// execution time (see the file comment for why that substitution is sound).
// minTS is the query's own delta high bound; wait gates on capture progress
// and is also used to close the maintenance windows. The destination append
// runs in its own transaction, which takes no table locks — cached
// propagation never blocks writers.
func (db *DB) ExecutePropagationCached(q *Query, sign int64, dest *DeltaTable, minTS relalg.CSN, wait func(relalg.CSN) error) (relalg.CSN, int, int, error) {
	db.coPartition(q)
	for _, in := range q.Inputs {
		if in.Part.sliced() {
			db.NotePartSliceJob(in.Part.shard())
			break
		}
	}
	if q.AsOf != relalg.NullTS && q.AsOf > minTS {
		minTS = q.AsOf
	}
	use, err := db.cache.acquire(q, minTS, wait)
	if err != nil {
		return 0, 0, 0, err
	}
	if q.AsOf != relalg.NullTS && use.ts != q.AsOf {
		// The shared cached state has advanced past the requested read
		// view; answer exactly at q.AsOf from the versioned heap instead.
		// Execution time is q.AsOf either way.
		use.release()
		return db.ExecutePropagation(q, sign, dest)
	}
	defer use.release()
	db.addQuery()
	a := exec.NewArena()
	defer func() {
		db.noteArena(a)
		a.Release()
	}()
	root, err := db.buildPlanCached(q, use, a)
	if err != nil {
		return 0, 0, 0, err
	}
	tx := db.Begin()
	var encBuf []byte
	rows, batches, err := exec.DrainWith(root, a, db.batchSize, func(b *relalg.Batch) error {
		n := b.Len()
		for i := 0; i < n; i++ {
			ts := b.TSAt(i)
			if ts == relalg.NullTS {
				return fmt.Errorf("engine: propagation query %s produced a null-timestamp row", q)
			}
			encBuf = b.EncodeRowAt(encBuf[:0], i)
			var pv tuple.Value
			if b.Arity() > dest.partCol {
				pv = b.ValueAt(i, dest.partCol)
			}
			tx.AppendDeltaEncoded(dest, ts, sign*b.CountAt(i), encBuf, pv)
		}
		return nil
	})
	db.noteBatches(rows, batches)
	if err != nil {
		tx.Abort()
		return 0, 0, 0, err
	}
	if _, err := tx.Commit(); err != nil {
		tx.Abort()
		return 0, 0, 0, err
	}
	return use.ts, int(rows), int(batches), nil
}
