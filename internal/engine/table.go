package engine

import (
	"encoding/binary"
	"math"
	"sync"

	"repro/internal/btree"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Row version sentinels. A heap row carries a [born, dead) CSN interval:
// a reader at AsOf t sees the row iff born <= t < dead. Writers insert
// with born = csnUnstamped and stamp the real CSN during the commit
// publish phase, so an unpublished row is numerically invisible to every
// snapshot (csnUnstamped exceeds any real AsOf). A deleter marks dead =
// csnDeadPending and stamps the real CSN at publish; csnDeadPending also
// exceeds any real AsOf, so the row stays visible to snapshots until the
// delete actually commits.
const (
	csnUnstamped   = relalg.CSN(math.MaxInt64)     // born: writer not yet published
	csnNone        = relalg.CSN(math.MaxInt64)     // dead: row alive
	csnDeadPending = relalg.CSN(math.MaxInt64 - 1) // dead: delete in flight
)

// visibleAt is the snapshot visibility rule: the version interval
// [born, dead) contains asOf.
func visibleAt(born, dead, asOf relalg.CSN) bool {
	return born <= asOf && dead > asOf
}

// Table is a heap base table: rows keyed by an auto-assigned rowid in a
// B+ tree, each carrying short version metadata (born/dead CSNs). The
// latch protects physical structure only; transactional isolation comes
// from the lock manager for writers and from the version metadata plus
// the commit-publish barrier for snapshot readers.
//
// When the engine is opened with Partitions = N > 1 the heap is split
// into hash shards: a row lives in shard hashPart(row[partCol], N), and
// its rowid encodes the shard in the low shardBits bits (rowid =
// seq<<shardBits | shard), so point accesses route directly. With N = 1
// there is a single shard and zero shard bits — rowids and layout are
// identical to the unpartitioned engine.
type Table struct {
	name   string
	schema *tuple.Schema

	nparts    int  // hash partitions (>= 1)
	partCol   int  // column whose hash routes rows
	shardBits uint // low rowid bits holding the shard index

	latch   sync.RWMutex
	shards  []*btree.Tree // len 1<<shardBits; rowid (8B big-endian) -> [born 8B][dead 8B][row encoding]
	nextRow uint64        // global insertion sequence (not a rowid when sharded)
	indexes []*Index
	dead    int64 // committed-dead versions retained (pending GC)
}

// rowidFromKey decodes a heap key back to its rowid.
func rowidFromKey(k []byte) uint64 { return binary.BigEndian.Uint64(k) }

func newTable(name string, schema *tuple.Schema, nparts, partCol int) *Table {
	if nparts < 1 {
		nparts = 1
	}
	bits := shardBitsFor(nparts)
	shards := make([]*btree.Tree, 1<<bits)
	for i := range shards {
		shards[i] = btree.New()
	}
	return &Table{
		name:      name,
		schema:    schema,
		nparts:    nparts,
		partCol:   partCol,
		shardBits: bits,
		shards:    shards,
	}
}

// Partitions returns the table's hash-partition count (1 = unpartitioned).
func (t *Table) Partitions() int { return t.nparts }

// PartitionColumn returns the column whose hash routes rows to partitions.
func (t *Table) PartitionColumn() int { return t.partCol }

// shardIdx returns the physical shard holding rowid.
func (t *Table) shardIdx(rowid uint64) int {
	return int(rowid & (uint64(1)<<t.shardBits - 1))
}

// shardForRow returns the shard a new row routes to.
func (t *Table) shardForRow(row tuple.Tuple) int {
	if t.nparts <= 1 {
		return 0
	}
	return hashPart(row[t.partCol], t.nparts)
}

// heapOf returns the shard tree for rowid.
func (t *Table) heapOf(rowid uint64) *btree.Tree { return t.shards[t.shardIdx(rowid)] }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Len returns the current number of heap entries (committed, in-flight,
// and dead versions awaiting GC).
func (t *Table) Len() int {
	t.latch.RLock()
	defer t.latch.RUnlock()
	n := 0
	for _, sh := range t.shards {
		n += sh.Len()
	}
	return n
}

// PartLen returns the number of heap entries in hash partition p.
func (t *Table) PartLen(p int) int {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if p < 0 || p >= len(t.shards) {
		return 0
	}
	return t.shards[p].Len()
}

// DeadVersions returns the number of committed-dead versions retained in
// the heap (deleted rows kept for snapshot readers until GC).
func (t *Table) DeadVersions() int64 {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.dead
}

// lockName is the table-level lock resource.
func (t *Table) lockName() string { return "T/" + t.name }

// rowLockName is the row-level lock resource for a rowid.
func (t *Table) rowLockName(rowid uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rowid)
	return "R/" + t.name + "/" + string(b[:])
}

func rowKey(rowid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rowid)
	return b[:]
}

func encodeVersionedRow(born, dead relalg.CSN, row tuple.Tuple) []byte {
	out := make([]byte, 16, 16+len(row)*8)
	binary.BigEndian.PutUint64(out[0:8], uint64(born))
	binary.BigEndian.PutUint64(out[8:16], uint64(dead))
	return tuple.EncodeRow(out, row)
}

func decodeVersionedRow(v []byte) (born, dead relalg.CSN, row tuple.Tuple) {
	if len(v) < 16 {
		panic("engine: corrupt heap row: short version header")
	}
	born = relalg.CSN(binary.BigEndian.Uint64(v[0:8]))
	dead = relalg.CSN(binary.BigEndian.Uint64(v[8:16]))
	row, _, err := tuple.DecodeRow(v[16:])
	if err != nil {
		panic("engine: corrupt heap row: " + err.Error())
	}
	return born, dead, row
}

// put inserts a row at a fresh rowid with an unstamped born CSN and
// returns the rowid. The inserting transaction stamps the CSN during its
// commit publish phase. Latch-only; the caller holds the appropriate
// locks.
func (t *Table) put(row tuple.Tuple) uint64 {
	return t.putBorn(row, csnUnstamped)
}

// putCommitted inserts a row that is already committed at an unknown CSN
// (recovery replay and checkpoint restore): born 0 makes it visible to
// every snapshot.
func (t *Table) putCommitted(row tuple.Tuple) uint64 {
	return t.putBorn(row, 0)
}

func (t *Table) putBorn(row tuple.Tuple, born relalg.CSN) uint64 {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.nextRow++
	shard := t.shardForRow(row)
	id := t.nextRow<<t.shardBits | uint64(shard)
	t.shards[shard].Put(rowKey(id), encodeVersionedRow(born, csnNone, row))
	for _, ix := range t.indexes {
		ix.insert(row[ix.column], id)
	}
	return id
}

// putAt reinstates a row at a specific rowid (undo of a delete on the
// legacy physical-remove path; retained for checkpoint restore).
func (t *Table) putAt(rowid uint64, row tuple.Tuple) {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.heapOf(rowid).Put(rowKey(rowid), encodeVersionedRow(0, csnNone, row))
	for _, ix := range t.indexes {
		ix.insert(row[ix.column], rowid)
	}
}

// remove physically deletes the row at rowid, returning it (nil if
// absent). Used to undo an aborted insert and by recovery; committed
// deletes go through markDead/stampDead instead.
func (t *Table) remove(rowid uint64) tuple.Tuple {
	t.latch.Lock()
	defer t.latch.Unlock()
	sh := t.heapOf(rowid)
	v, ok := sh.Get(rowKey(rowid))
	if !ok {
		return nil
	}
	_, dead, row := decodeVersionedRow(v)
	sh.Delete(rowKey(rowid))
	if dead != csnNone && dead != csnDeadPending {
		t.dead--
	}
	for _, ix := range t.indexes {
		ix.remove(row[ix.column], rowid)
	}
	return row
}

// setVersion rewrites the version header of rowid in place.
func (t *Table) setVersion(rowid uint64, born, dead relalg.CSN) {
	k := rowKey(rowid)
	sh := t.heapOf(rowid)
	v, ok := sh.Get(k)
	if !ok {
		return
	}
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(born))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(dead))
	nv := make([]byte, len(v))
	copy(nv, hdr[:])
	copy(nv[16:], v[16:])
	sh.Put(k, nv)
}

// stampBorn publishes an inserted row: its born CSN becomes the
// inserter's commit CSN.
func (t *Table) stampBorn(rowid uint64, csn relalg.CSN) {
	t.latch.Lock()
	defer t.latch.Unlock()
	v, ok := t.heapOf(rowid).Get(rowKey(rowid))
	if !ok {
		return
	}
	_, dead, _ := decodeVersionedRow(v)
	t.setVersion(rowid, csn, dead)
}

// markDead flags the row as being deleted by an in-flight transaction.
func (t *Table) markDead(rowid uint64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	v, ok := t.heapOf(rowid).Get(rowKey(rowid))
	if !ok {
		return
	}
	born, _, _ := decodeVersionedRow(v)
	t.setVersion(rowid, born, csnDeadPending)
}

// clearDead undoes markDead (delete aborted).
func (t *Table) clearDead(rowid uint64) {
	t.latch.Lock()
	defer t.latch.Unlock()
	v, ok := t.heapOf(rowid).Get(rowKey(rowid))
	if !ok {
		return
	}
	born, _, _ := decodeVersionedRow(v)
	t.setVersion(rowid, born, csnNone)
}

// stampDead publishes a delete: the row's dead CSN becomes the deleter's
// commit CSN. The version is retained for snapshot readers until GC.
func (t *Table) stampDead(rowid uint64, csn relalg.CSN) {
	t.latch.Lock()
	defer t.latch.Unlock()
	v, ok := t.heapOf(rowid).Get(rowKey(rowid))
	if !ok {
		return
	}
	born, _, _ := decodeVersionedRow(v)
	t.setVersion(rowid, born, csn)
	t.dead++
}

// gcVersions physically removes committed-dead versions with dead <=
// through, returning how many were collected. Callers must ensure no
// snapshot at or below through is still active.
func (t *Table) gcVersions(through relalg.CSN) int64 {
	t.latch.Lock()
	defer t.latch.Unlock()
	type doomed struct {
		shard int
		key   []byte
		row   tuple.Tuple
	}
	var dead []doomed
	for si, sh := range t.shards {
		it := sh.First()
		for ; it.Valid(); it.Next() {
			_, d, row := decodeVersionedRow(it.Value())
			if d != csnNone && d != csnDeadPending && d <= through {
				dead = append(dead, doomed{si, append([]byte(nil), it.Key()...), row})
			}
		}
	}
	for _, d := range dead {
		t.shards[d.shard].Delete(d.key)
		for _, ix := range t.indexes {
			ix.remove(d.row[ix.column], rowidFromKey(d.key))
		}
	}
	t.dead -= int64(len(dead))
	return int64(len(dead))
}

// getVersion returns the row at rowid with its version interval, or ok =
// false if physically absent.
func (t *Table) getVersion(rowid uint64) (row tuple.Tuple, born, dead relalg.CSN, ok bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	v, found := t.heapOf(rowid).Get(rowKey(rowid))
	if !found {
		return nil, 0, 0, false
	}
	born, dead, row = decodeVersionedRow(v)
	return row, born, dead, true
}

// get returns the current-state row at rowid, or nil. A row whose delete
// is committed or in flight is not current.
func (t *Table) get(rowid uint64) tuple.Tuple {
	row, _, dead, ok := t.getVersion(rowid)
	if !ok || dead != csnNone {
		return nil
	}
	return row
}

// sliceShards returns the shard trees a slice reads: the single matching
// shard when the spec's partitioning equals the table's own, all shards
// otherwise (the spec then filters per row). The second result reports
// whether the shards are already hash-pure for the spec.
func (t *Table) sliceShards(spec *PartSpec) ([]*btree.Tree, bool) {
	if !spec.sliced() {
		return t.shards, false
	}
	if spec.N == t.nparts {
		return t.shards[spec.shard() : spec.shard()+1], true
	}
	return t.shards, false
}

// scan materializes the current table state as a relation (count=+1, null
// timestamps), applying the optional pushdown predicate. Latch-only; the
// caller holds a table S lock, so any unstamped rows belong to the
// caller's own transaction and are included (read-your-writes).
func (t *Table) scan(pred relalg.Predicate) *relalg.Relation {
	t.latch.RLock()
	defer t.latch.RUnlock()
	out := relalg.NewRelation(t.schema)
	for _, sh := range t.shards {
		it := sh.First()
		for ; it.Valid(); it.Next() {
			_, dead, row := decodeVersionedRow(it.Value())
			if dead != csnNone {
				continue
			}
			if pred != nil && !pred.Eval(row) {
				continue
			}
			out.Add(row, 1, relalg.NullTS)
		}
	}
	return out
}

// scanAsOf materializes the table state visible at asOf. Latch-only and
// lock-free: the caller must hold a ReadView at or above asOf (AsOf at or
// below the stable CSN).
func (t *Table) scanAsOf(pred relalg.Predicate, asOf relalg.CSN) *relalg.Relation {
	return t.scanAsOfPart(pred, asOf, nil)
}

// scanAsOfPart is scanAsOf restricted to one partition slice (nil spec =
// full table).
func (t *Table) scanAsOfPart(pred relalg.Predicate, asOf relalg.CSN, spec *PartSpec) *relalg.Relation {
	t.latch.RLock()
	defer t.latch.RUnlock()
	out := relalg.NewRelation(t.schema)
	shards, pure := t.sliceShards(spec)
	filter := spec.sliced()
	for _, sh := range shards {
		it := sh.First()
		for ; it.Valid(); it.Next() {
			born, dead, row := decodeVersionedRow(it.Value())
			if !visibleAt(born, dead, asOf) {
				continue
			}
			if filter && !spec.admits(row[t.partCol], pure) {
				continue
			}
			if pred != nil && !pred.Eval(row) {
				continue
			}
			out.Add(row, 1, relalg.NullTS)
		}
	}
	return out
}

// matchRowIDs returns the rowids whose current-state rows satisfy pred,
// up to limit (limit <= 0 means no limit), in global insertion order so
// victim selection is independent of the partition count. Latch-only
// snapshot; callers must re-check under row locks.
func (t *Table) matchRowIDs(pred relalg.Predicate, limit int) []uint64 {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var ids []uint64
	if len(t.shards) == 1 {
		it := t.shards[0].First()
		for ; it.Valid(); it.Next() {
			_, dead, row := decodeVersionedRow(it.Value())
			if dead != csnNone {
				continue
			}
			if pred == nil || pred.Eval(row) {
				ids = append(ids, binary.BigEndian.Uint64(it.Key()))
				if limit > 0 && len(ids) >= limit {
					break
				}
			}
		}
		return ids
	}
	// Per shard, keys ascend in insertion (sequence) order; collect the
	// first limit matches of each shard and merge by sequence.
	var perShard [][]uint64
	for _, sh := range t.shards {
		var got []uint64
		it := sh.First()
		for ; it.Valid(); it.Next() {
			_, dead, row := decodeVersionedRow(it.Value())
			if dead != csnNone {
				continue
			}
			if pred == nil || pred.Eval(row) {
				got = append(got, binary.BigEndian.Uint64(it.Key()))
				if limit > 0 && len(got) >= limit {
					break
				}
			}
		}
		perShard = append(perShard, got)
	}
	heads := make([]int, len(perShard))
	for {
		best := -1
		var bestSeq uint64
		for si, got := range perShard {
			if heads[si] >= len(got) {
				continue
			}
			seq := got[heads[si]] >> t.shardBits
			if best < 0 || seq < bestSeq {
				best, bestSeq = si, seq
			}
		}
		if best < 0 {
			break
		}
		ids = append(ids, perShard[best][heads[best]])
		heads[best]++
		if limit > 0 && len(ids) >= limit {
			break
		}
	}
	return ids
}
