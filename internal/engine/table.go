package engine

import (
	"encoding/binary"
	"sync"

	"repro/internal/btree"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Table is a heap base table: rows keyed by an auto-assigned rowid in a
// B+ tree. The latch protects physical structure only; transactional
// isolation comes from the lock manager.
type Table struct {
	name   string
	schema *tuple.Schema

	latch   sync.RWMutex
	heap    *btree.Tree // rowid (8B big-endian) -> row encoding
	nextRow uint64
	indexes []*Index
}

// rowidFromKey decodes a heap key back to its rowid.
func rowidFromKey(k []byte) uint64 { return binary.BigEndian.Uint64(k) }

func newTable(name string, schema *tuple.Schema) *Table {
	return &Table{name: name, schema: schema, heap: btree.New()}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.schema }

// Len returns the current number of rows (committed plus in-flight).
func (t *Table) Len() int {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.heap.Len()
}

// lockName is the table-level lock resource.
func (t *Table) lockName() string { return "T/" + t.name }

// rowLockName is the row-level lock resource for a rowid.
func (t *Table) rowLockName(rowid uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rowid)
	return "R/" + t.name + "/" + string(b[:])
}

func rowKey(rowid uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], rowid)
	return b[:]
}

// put inserts a row at a fresh rowid and returns it. Latch-only; the caller
// holds the appropriate locks.
func (t *Table) put(row tuple.Tuple) uint64 {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.nextRow++
	id := t.nextRow
	t.heap.Put(rowKey(id), tuple.EncodeRow(nil, row))
	for _, ix := range t.indexes {
		ix.insert(row[ix.column], id)
	}
	return id
}

// putAt reinstates a row at a specific rowid (undo of a delete).
func (t *Table) putAt(rowid uint64, row tuple.Tuple) {
	t.latch.Lock()
	defer t.latch.Unlock()
	t.heap.Put(rowKey(rowid), tuple.EncodeRow(nil, row))
	for _, ix := range t.indexes {
		ix.insert(row[ix.column], rowid)
	}
}

// remove deletes the row at rowid, returning it (nil if absent).
func (t *Table) remove(rowid uint64) tuple.Tuple {
	t.latch.Lock()
	defer t.latch.Unlock()
	v, ok := t.heap.Get(rowKey(rowid))
	if !ok {
		return nil
	}
	row, _, err := tuple.DecodeRow(v)
	if err != nil {
		panic("engine: corrupt heap row: " + err.Error())
	}
	t.heap.Delete(rowKey(rowid))
	for _, ix := range t.indexes {
		ix.remove(row[ix.column], rowid)
	}
	return row
}

// get returns the row at rowid, or nil.
func (t *Table) get(rowid uint64) tuple.Tuple {
	t.latch.RLock()
	defer t.latch.RUnlock()
	v, ok := t.heap.Get(rowKey(rowid))
	if !ok {
		return nil
	}
	row, _, err := tuple.DecodeRow(v)
	if err != nil {
		panic("engine: corrupt heap row: " + err.Error())
	}
	return row
}

// scan materializes the table as a relation (count=+1, null timestamps),
// applying the optional pushdown predicate. Latch-only; the caller holds a
// table S lock.
func (t *Table) scan(pred relalg.Predicate) *relalg.Relation {
	t.latch.RLock()
	defer t.latch.RUnlock()
	out := relalg.NewRelation(t.schema)
	it := t.heap.First()
	for ; it.Valid(); it.Next() {
		row, _, err := tuple.DecodeRow(it.Value())
		if err != nil {
			panic("engine: corrupt heap row: " + err.Error())
		}
		if pred != nil && !pred.Eval(row) {
			continue
		}
		out.Add(row, 1, relalg.NullTS)
	}
	return out
}

// matchRowIDs returns the rowids whose rows satisfy pred, up to limit
// (limit <= 0 means no limit). Latch-only snapshot; callers must re-check
// under row locks.
func (t *Table) matchRowIDs(pred relalg.Predicate, limit int) []uint64 {
	t.latch.RLock()
	defer t.latch.RUnlock()
	var ids []uint64
	it := t.heap.First()
	for ; it.Valid(); it.Next() {
		row, _, err := tuple.DecodeRow(it.Value())
		if err != nil {
			panic("engine: corrupt heap row: " + err.Error())
		}
		if pred == nil || pred.Eval(row) {
			ids = append(ids, binary.BigEndian.Uint64(it.Key()))
			if limit > 0 && len(ids) >= limit {
				break
			}
		}
	}
	return ids
}
