package engine

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/relalg"
)

// This file implements the ReadView abstraction: a commit-ordered snapshot
// handle over the versioned heaps. A Snapshot at AsOf = t observes exactly
// the committed prefix {commits with CSN <= t} — no more, no less —
// without taking any table locks. Three properties make that sound:
//
//  1. Version metadata: every heap row carries a [born, dead) CSN
//     interval; visibility at t is the pure numeric test born <= t < dead
//     (table.go).
//  2. The commit-publish barrier: a transaction's CSN becomes "stable"
//     only after it has stamped all its row versions, and stability
//     advances contiguously (txn.Manager.StableCSN). OpenSnapshot waits
//     for AsOf to become stable, so no in-flight commit at or below AsOf
//     can still be mutating version headers while the snapshot reads.
//  3. GC clamping: version garbage collection never removes a dead
//     version still visible to a registered snapshot, and snapshots below
//     the collected horizon are refused with ErrSnapshotTooOld.
//
// Propagation, capture catch-up reads, and the join-state cache all
// resolve visibility through this one abstraction (directly, or by
// pinning cached state at exactly the snapshot's AsOf), which is what
// makes a query's reported execution time equal its actual read time by
// construction.

// ErrSnapshotTooOld marks an OpenSnapshot call below the version-GC
// horizon: dead versions the snapshot would need have been collected.
var ErrSnapshotTooOld = errors.New("engine: snapshot below the version GC horizon")

// Snapshot is a read view of the database as of one commit CSN. It takes
// no locks; Close releases its GC pin. Snapshots are safe for concurrent
// use by multiple readers.
type Snapshot struct {
	db   *DB
	asOf relalg.CSN

	mu     sync.Mutex
	closed bool
}

// AsOf returns the snapshot's commit CSN.
func (s *Snapshot) AsOf() relalg.CSN { return s.asOf }

// Scan materializes the table state visible at the snapshot, applying the
// optional pushdown predicate. Lock-free.
func (s *Snapshot) Scan(table string, pred relalg.Predicate) (*relalg.Relation, error) {
	t, err := s.db.Table(table)
	if err != nil {
		return nil, err
	}
	rel := t.scanAsOf(pred, s.asOf)
	s.db.addScanned(int64(rel.Len()))
	return rel, nil
}

// Close releases the snapshot's GC pin. Further reads through the
// snapshot are invalid. Close is idempotent.
func (s *Snapshot) Close() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	if wasClosed {
		return
	}
	db := s.db
	db.snapMu.Lock()
	if n := db.activeSnaps[s.asOf]; n <= 1 {
		delete(db.activeSnaps, s.asOf)
	} else {
		db.activeSnaps[s.asOf] = n - 1
	}
	db.snapMu.Unlock()
}

// OpenSnapshot opens a read view at asOf. asOf == NullTS means "latest
// stable": the highest CSN whose entire commit prefix has published. A
// nonzero asOf blocks until that CSN is stable (the publish barrier), so
// the caller must pass a CSN that has been or is about to be assigned —
// propagation passes delta-window bounds, which capture progress has
// already certified. Returns ErrSnapshotTooOld if version GC has
// collected past asOf.
func (db *DB) OpenSnapshot(asOf relalg.CSN) (*Snapshot, error) {
	if asOf == relalg.NullTS {
		asOf = db.tm.StableCSN()
	} else {
		db.tm.WaitStable(asOf)
	}
	db.snapMu.Lock()
	if asOf < db.gcHorizon {
		h := db.gcHorizon
		db.snapMu.Unlock()
		return nil, fmt.Errorf("%w: asOf %d < horizon %d", ErrSnapshotTooOld, asOf, h)
	}
	if db.activeSnaps == nil {
		db.activeSnaps = make(map[relalg.CSN]int)
	}
	db.activeSnaps[asOf]++
	db.snapMu.Unlock()
	db.snapshotsOpened.Add(1)
	return &Snapshot{db: db, asOf: asOf}, nil
}

// GCVersions collects dead row versions no longer visible to any possible
// reader: versions whose dead CSN is at or below min(stable CSN, every
// registered snapshot's AsOf). It returns the number of versions removed
// and the horizon used. Future OpenSnapshot calls below the horizon fail
// with ErrSnapshotTooOld.
func (db *DB) GCVersions() (collected int64, horizon relalg.CSN) {
	return db.GCVersionsBelow(relalg.CSN(math.MaxInt64))
}

// GCVersionsBelow is GCVersions with an extra ceiling: the horizon never
// passes limit even when no snapshot is open. The background fold job uses
// it with the subscriber refresh floor so lagging maintained views can
// still open compensation snapshots at their old high-water marks.
func (db *DB) GCVersionsBelow(limit relalg.CSN) (collected int64, horizon relalg.CSN) {
	db.snapMu.Lock()
	horizon = db.tm.StableCSN()
	if limit < horizon {
		horizon = limit
	}
	for asOf := range db.activeSnaps {
		if asOf < horizon {
			horizon = asOf
		}
	}
	if horizon > db.gcHorizon {
		db.gcHorizon = horizon
	} else {
		horizon = db.gcHorizon
	}
	db.snapMu.Unlock()

	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	for _, t := range tables {
		collected += t.gcVersions(horizon)
	}
	db.versionsGCed.Add(collected)
	return collected, horizon
}

// DeadVersionsRetained sums the committed-dead versions currently
// retained across all base tables (rows kept for snapshot readers,
// awaiting GC).
func (db *DB) DeadVersionsRetained() int64 {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	var n int64
	for _, t := range tables {
		n += t.DeadVersions()
	}
	return n
}

// StableCSN returns the highest CSN S such that every commit at or below
// S has completed its publish phase: a snapshot at AsOf <= S observes an
// exact prefix of the commit order.
func (db *DB) StableCSN() relalg.CSN { return db.tm.StableCSN() }
