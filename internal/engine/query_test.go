package engine

import (
	"bytes"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// buildStar creates fact(k1, k2) joined to dim1(k1, v) and dim2(k2, v)
// with data, returning the db.
func buildStar(t *testing.T) *DB {
	t.Helper()
	db := testDB(t)
	db.CreateTable("fact", tuple.NewSchema(
		tuple.Column{Name: "k1", Kind: tuple.KindInt},
		tuple.Column{Name: "k2", Kind: tuple.KindInt},
	))
	db.CreateDelta("fact")
	for _, d := range []string{"dim1", "dim2"} {
		db.CreateTable(d, tuple.NewSchema(
			tuple.Column{Name: "k", Kind: tuple.KindInt},
			tuple.Column{Name: "v", Kind: tuple.KindInt},
		))
		db.CreateDelta(d)
	}
	tx := db.Begin()
	for i := 0; i < 30; i++ {
		tx.Insert("fact", tuple.Tuple{tuple.Int(int64(i % 5)), tuple.Int(int64(i % 3))})
		tx.Insert("dim1", tuple.Tuple{tuple.Int(int64(i % 5)), tuple.Int(int64(i))})
		tx.Insert("dim2", tuple.Tuple{tuple.Int(int64(i % 3)), tuple.Int(int64(i * 2))})
	}
	tx.Commit()
	return db
}

func starQuery(deltaPos int, lo, hi relalg.CSN) *Query {
	inputs := []Input{
		{Kind: InputBase, Table: "fact"},
		{Kind: InputBase, Table: "dim1"},
		{Kind: InputBase, Table: "dim2"},
	}
	if deltaPos >= 0 {
		inputs[deltaPos] = Input{Kind: InputDelta, Table: inputs[deltaPos].Table, Lo: lo, Hi: hi}
	}
	return &Query{
		Inputs: inputs,
		Conds: []JoinCond{
			{A: ColRef{0, 0}, B: ColRef{1, 0}}, // fact.k1 = dim1.k
			{A: ColRef{0, 1}, B: ColRef{2, 0}}, // fact.k2 = dim2.k
		},
	}
}

// TestReorderPreservesColumnLayout verifies that when the executor starts
// from a delta in the middle of the input list, the result columns still
// follow declaration order (so projections and residuals keep working).
func TestReorderPreservesColumnLayout(t *testing.T) {
	db := buildStar(t)
	d, _ := db.Delta("dim1")
	d.Append(1, 1, tuple.Tuple{tuple.Int(2), tuple.Int(999)})

	q := starQuery(1, 0, 1) // delta at position 1: the executor starts there
	q.Project = []ColRef{{0, 0}, {1, 1}, {2, 1}}
	tx := db.Begin()
	rel, err := tx.EvalQuery(q)
	mustExec(t, tx, err)
	tx.Commit()
	// fact rows with k1=2: i % 5 == 2 → 6 rows; each joins dim2 on k2.
	for _, r := range rel.Rows {
		if r.Tuple[0].AsInt() != 2 {
			t.Fatalf("projected fact.k1 should be 2: %s", r.Tuple)
		}
		if r.Tuple[1].AsInt() != 999 {
			t.Fatalf("projected dim1.v should be 999: %s", r.Tuple)
		}
		if r.TS != 1 || r.Count != 1 {
			t.Fatal("count/ts")
		}
	}
	if rel.Len() == 0 {
		t.Fatal("no rows")
	}
}

// TestReorderAgreesWithDeclarationOrder evaluates the same query with the
// delta at each position and cross-checks against a manually computed
// expectation via the all-base query plus window restriction semantics.
func TestReorderAgreesWithDeclarationOrder(t *testing.T) {
	for deltaPos := 0; deltaPos < 3; deltaPos++ {
		db := buildStar(t)
		table := []string{"fact", "dim1", "dim2"}[deltaPos]
		d, _ := db.Delta(table)
		// Delta mirrors a slice of existing rows so the join is non-empty.
		tx0 := db.Begin()
		base, _ := tx0.Scan(table, nil)
		tx0.Commit()
		for i, row := range base.Rows {
			if i%4 == 0 {
				d.Append(relalg.CSN(i+1), 1, row.Tuple)
			}
		}
		hi := relalg.CSN(len(base.Rows) + 1)

		q := starQuery(deltaPos, 0, hi)
		tx := db.Begin()
		got, err := tx.EvalQuery(q)
		mustExec(t, tx, err)
		tx.Commit()

		// Reference: join the materialized window against the two base
		// relations using relalg directly, in declaration order.
		win := d.Window(0, hi)
		rels := []*relalg.Relation{nil, nil, nil}
		for i, name := range table3() {
			if i == deltaPos {
				rels[i] = win
				continue
			}
			txs := db.Begin()
			r, _ := txs.Scan(name, nil)
			txs.Commit()
			rels[i] = r
		}
		want := relalg.Join(rels[0], rels[1], []relalg.JoinOn{{LeftCol: 0, RightCol: 0}})
		want = relalg.Join(want, rels[2], []relalg.JoinOn{{LeftCol: 1, RightCol: 0}})
		if !relalg.Equivalent(got, want) {
			t.Fatalf("delta at %d: reordered result differs from reference", deltaPos)
		}
	}
}

func table3() []string { return []string{"fact", "dim1", "dim2"} }

// TestCrossProductFallback exercises a query with a disconnected input (no
// join condition): the executor must fall back to a cross product and
// still restore declaration order.
func TestCrossProductFallback(t *testing.T) {
	db := testDB(t)
	db.CreateTable("a", tuple.NewSchema(tuple.Column{Name: "x", Kind: tuple.KindInt}))
	db.CreateDelta("a")
	db.CreateTable("b", tuple.NewSchema(tuple.Column{Name: "y", Kind: tuple.KindInt}))
	db.CreateDelta("b")
	tx := db.Begin()
	tx.Insert("a", tuple.Tuple{tuple.Int(1)})
	tx.Insert("a", tuple.Tuple{tuple.Int(2)})
	tx.Insert("b", tuple.Tuple{tuple.Int(10)})
	tx.Commit()
	d, _ := db.Delta("b")
	d.Append(1, 1, tuple.Tuple{tuple.Int(20)})

	q := &Query{Inputs: []Input{
		{Kind: InputBase, Table: "a"},
		{Kind: InputDelta, Table: "b", Lo: 0, Hi: 1},
	}}
	tx2 := db.Begin()
	rel, err := tx2.EvalQuery(q)
	mustExec(t, tx2, err)
	tx2.Commit()
	if rel.Len() != 2 {
		t.Fatalf("cross product rows: %d", rel.Len())
	}
	for _, r := range rel.Rows {
		// Declaration order restored: column 0 is a.x, column 1 is b.y.
		if r.Tuple[0].AsInt() != 1 && r.Tuple[0].AsInt() != 2 {
			t.Fatalf("column order broken: %s", r.Tuple)
		}
		if r.Tuple[1].AsInt() != 20 {
			t.Fatalf("column order broken: %s", r.Tuple)
		}
	}
}

// TestSnapshotRoundTripEngine exercises the engine-level snapshot directly.
func TestSnapshotRoundTripEngine(t *testing.T) {
	db := buildStar(t)
	d, _ := db.Delta("fact")
	d.Append(3, -1, tuple.Tuple{tuple.Int(0), tuple.Int(0)})

	var buf writableBuffer
	if err := db.WriteSnapshot(&buf, 1234); err != nil {
		t.Fatal(err)
	}

	db2 := testDB(t)
	db2.CreateTable("fact", tuple.NewSchema(
		tuple.Column{Name: "k1", Kind: tuple.KindInt},
		tuple.Column{Name: "k2", Kind: tuple.KindInt},
	))
	db2.CreateDelta("fact")
	for _, dn := range []string{"dim1", "dim2"} {
		db2.CreateTable(dn, tuple.NewSchema(
			tuple.Column{Name: "k", Kind: tuple.KindInt},
			tuple.Column{Name: "v", Kind: tuple.KindInt},
		))
		db2.CreateDelta(dn)
	}
	off, err := db2.ReadSnapshot(buf.reader())
	if err != nil {
		t.Fatal(err)
	}
	if off != 1234 {
		t.Fatalf("offset %d", off)
	}
	for _, name := range table3() {
		a, _ := db.Table(name)
		b, _ := db2.Table(name)
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d vs %d rows", name, a.Len(), b.Len())
		}
	}
	d2, _ := db2.Delta("fact")
	if d2.Len() != 1 || d2.MaxTS() != 3 {
		t.Fatalf("delta restore: %d rows", d2.Len())
	}
	if db2.LastCSN() != db.LastCSN() {
		t.Fatal("csn restore")
	}
}

// TestSnapshotUnknownCatalogFails ensures restoring into a missing catalog
// errors instead of silently dropping data.
func TestSnapshotUnknownCatalogFails(t *testing.T) {
	db := buildStar(t)
	var buf writableBuffer
	if err := db.WriteSnapshot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	db2 := testDB(t) // empty catalog
	if _, err := db2.ReadSnapshot(buf.reader()); err == nil {
		t.Fatal("restore without catalog should fail")
	}
}

// writableBuffer is a minimal in-memory io.Writer with a reader view.
type writableBuffer struct{ b []byte }

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writableBuffer) reader() *bytes.Reader { return bytes.NewReader(w.b) }
