package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestInjectDisarmedIsNil(t *testing.T) {
	defer Reset()
	if Enabled() {
		t.Fatal("enabled before arming")
	}
	if err := Inject("anything"); err != nil {
		t.Fatal(err)
	}
}

func TestSetClearReset(t *testing.T) {
	defer Reset()
	Set("p", ErrAlways(ErrInjected))
	if !Enabled() {
		t.Fatal("not enabled after Set")
	}
	if err := Inject("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if Evals("p") != 1 || Trips("p") != 1 {
		t.Fatalf("counters %d/%d", Evals("p"), Trips("p"))
	}
	Clear("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("cleared point still trips: %v", err)
	}
	if Evals("p") != 2 || Trips("p") != 1 {
		t.Fatalf("counters after clear %d/%d", Evals("p"), Trips("p"))
	}
	Reset()
	if Enabled() || Evals("p") != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestErrTimesAndEvery(t *testing.T) {
	defer Reset()
	Set("t", ErrTimes(2, ErrInjected))
	for i := 0; i < 2; i++ {
		if err := Inject("t"); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: want error", i)
		}
	}
	if err := Inject("t"); err != nil {
		t.Fatalf("third eval should pass: %v", err)
	}
	Set("e", ErrEvery(3, ErrInjected))
	var trips int
	for i := 0; i < 9; i++ {
		if Inject("e") != nil {
			trips++
		}
	}
	if trips != 3 {
		t.Fatalf("err-every:3 tripped %d of 9", trips)
	}
}

func TestParse(t *testing.T) {
	defer Reset()
	if err := Parse("a=err, b=err:2 ,c=err-every:4"); err != nil {
		t.Fatal(err)
	}
	if Inject("a") == nil || Inject("b") == nil {
		t.Fatal("armed points should trip")
	}
	if err := Parse("a=off"); err != nil {
		t.Fatal(err)
	}
	if Inject("a") != nil {
		t.Fatal("a=off should disarm")
	}
	for _, bad := range []string{"noequals", "a=err:0", "a=err:x", "a=wat"} {
		if Parse(bad) == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}

type memBlock struct {
	buf    []byte
	synced int
}

func (m *memBlock) Append(p []byte) error { m.buf = append(m.buf, p...); return nil }
func (m *memBlock) ReadAt(p []byte, off int64) (int, error) {
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, errors.New("eof")
	}
	return n, nil
}
func (m *memBlock) Size() int64            { return int64(len(m.buf)) }
func (m *memBlock) Sync() error            { m.synced = len(m.buf); return nil }
func (m *memBlock) Truncate(n int64) error { m.buf = m.buf[:n]; return nil }
func (m *memBlock) Close() error           { return nil }

func TestDeviceFreeze(t *testing.T) {
	defer Reset()
	d := NewDevice(&memBlock{})
	if err := d.Append([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("efgh")); err != nil {
		t.Fatal(err)
	}
	d.Freeze()
	if !d.Frozen() {
		t.Fatal("not frozen")
	}
	if err := d.Append([]byte("x")); !errors.Is(err, ErrCrash) {
		t.Fatalf("append after freeze: %v", err)
	}
	if err := d.Sync(); !errors.Is(err, ErrCrash) {
		t.Fatalf("sync after freeze: %v", err)
	}
	// Only the synced prefix is guaranteed; extra pulls in unsynced bytes.
	img, err := d.CrashImage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, []byte("abcd")) {
		t.Fatalf("crash image %q", img)
	}
	img, _ = d.CrashImage(2)
	if !bytes.Equal(img, []byte("abcdef")) {
		t.Fatalf("crash image with extra %q", img)
	}
	img, _ = d.CrashImage(-1)
	if !bytes.Equal(img, []byte("abcdefgh")) {
		t.Fatalf("full crash image %q", img)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close of frozen device: %v", err)
	}
}

func TestDeviceTearNextAppend(t *testing.T) {
	defer Reset()
	inner := &memBlock{}
	d := NewDevice(inner)
	d.Append([]byte("good"))
	d.Sync()
	d.TearNextAppend(2)
	if err := d.Append([]byte("late")); !errors.Is(err, ErrCrash) {
		t.Fatalf("torn append should crash: %v", err)
	}
	if !d.Frozen() {
		t.Fatal("torn append must freeze the device")
	}
	if string(inner.buf) != "goodla" {
		t.Fatalf("inner content %q, want torn prefix", inner.buf)
	}
	img, _ := d.CrashImage(-1)
	if string(img) != "goodla" {
		t.Fatalf("crash image %q", img)
	}
}

func TestDeviceFlipByte(t *testing.T) {
	defer Reset()
	d := NewDevice(&memBlock{})
	d.Append([]byte{1, 2, 3})
	d.FlipByte(1)
	got := make([]byte, 3)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2^0xFF || got[2] != 3 {
		t.Fatalf("flip not visible: %v", got)
	}
	d.FlipByte(1) // toggle back
	d.ReadAt(got, 0)
	if got[1] != 2 {
		t.Fatalf("double flip should restore: %v", got)
	}
}

func TestDevicePoints(t *testing.T) {
	defer Reset()
	d := NewDevice(&memBlock{})
	Set(PointDevAppend, ErrTimes(1, ErrInjected))
	if err := d.Append([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("dev/append: %v", err)
	}
	if err := d.Append([]byte("x")); err != nil {
		t.Fatalf("transient error should clear: %v", err)
	}
	Set(PointDevSync, ErrAlways(ErrInjected))
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("dev/sync: %v", err)
	}
}

func TestCrashOnHit(t *testing.T) {
	defer Reset()
	d := NewDevice(&memBlock{})
	Set("hit", CrashOnHit(3, d))
	for i := 0; i < 2; i++ {
		if err := Inject("hit"); err != nil {
			t.Fatalf("eval %d should pass: %v", i, err)
		}
	}
	if err := Inject("hit"); !errors.Is(err, ErrCrash) {
		t.Fatalf("third eval should crash: %v", err)
	}
	if !d.Frozen() {
		t.Fatal("crash action must freeze")
	}
}
