package fault

import (
	"fmt"
	"sync"
)

// BlockDevice is the byte store the fault Device wraps. It is structurally
// identical to wal.Device (this package cannot import wal, which imports it
// back), so *wal.MemDevice and *wal.FileDevice satisfy it directly.
type BlockDevice interface {
	Append(p []byte) error
	ReadAt(p []byte, off int64) (int, error)
	Size() int64
	Sync() error
	Truncate(n int64) error
	Close() error
}

// Device wraps a BlockDevice with crash-fault simulation. It tracks the
// synced prefix (the bytes a crash is guaranteed to preserve), can tear the
// final append (write only a prefix of it, as a power loss mid-write
// would), flip bits seen by readers (media corruption), and inject
// transient errors via the dev/append, dev/sync, and dev/read failpoints.
//
// Freeze simulates the instant of a crash: every later Append and Sync
// fails with ErrCrash and persists nothing. CrashImage then produces the
// bytes a post-crash reopen would observe.
type Device struct {
	mu       sync.Mutex
	inner    BlockDevice
	synced   int64
	frozen   bool
	tearNext int            // -1 = off; else keep this many bytes of the next append
	flips    map[int64]byte // read overlay: offset -> xor mask
}

// NewDevice wraps inner; existing content counts as synced.
func NewDevice(inner BlockDevice) *Device {
	return &Device{inner: inner, synced: inner.Size(), tearNext: -1, flips: make(map[int64]byte)}
}

// Append implements wal.Device. A pending torn-write tears this append and
// freezes the device: a torn final append is a crash by definition.
func (d *Device) Append(p []byte) error {
	if err := Inject(PointDevAppend); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return ErrCrash
	}
	if d.tearNext >= 0 {
		keep := d.tearNext
		if keep > len(p) {
			keep = len(p)
		}
		d.tearNext = -1
		d.frozen = true
		if err := d.inner.Append(p[:keep]); err != nil {
			return err
		}
		return ErrCrash
	}
	return d.inner.Append(p)
}

// ReadAt implements wal.Device, applying any injected bit flips.
func (d *Device) ReadAt(p []byte, off int64) (int, error) {
	if err := Inject(PointDevRead); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.readAtLocked(p, off)
}

func (d *Device) readAtLocked(p []byte, off int64) (int, error) {
	n, err := d.inner.ReadAt(p, off)
	for fo, mask := range d.flips {
		if i := fo - off; i >= 0 && i < int64(n) {
			p[i] ^= mask
		}
	}
	return n, err
}

// Size implements wal.Device.
func (d *Device) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Size()
}

// Sync implements wal.Device: it marks everything appended so far durable.
func (d *Device) Sync() error {
	if err := Inject(PointDevSync); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return ErrCrash
	}
	if err := d.inner.Sync(); err != nil {
		return err
	}
	d.synced = d.inner.Size()
	return nil
}

// Truncate implements wal.Device (torn-tail repair during log recovery).
func (d *Device) Truncate(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.frozen {
		return ErrCrash
	}
	if err := d.inner.Truncate(n); err != nil {
		return err
	}
	if d.synced > n {
		d.synced = n
	}
	for fo := range d.flips {
		if fo >= n {
			delete(d.flips, fo)
		}
	}
	return nil
}

// Close implements wal.Device. Closing a frozen device is a no-op so
// post-crash teardown of the dead instance never errors.
func (d *Device) Close() error {
	d.mu.Lock()
	frozen := d.frozen
	d.mu.Unlock()
	if frozen {
		return nil
	}
	return d.inner.Close()
}

// Freeze simulates the crash instant: every subsequent Append and Sync
// fails with ErrCrash and persists nothing.
func (d *Device) Freeze() {
	d.mu.Lock()
	d.frozen = true
	d.mu.Unlock()
}

// Frozen reports whether the device has crashed.
func (d *Device) Frozen() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frozen
}

// SyncedSize returns the length of the durable prefix.
func (d *Device) SyncedSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.synced
}

// TearNextAppend arms a torn write: the next Append persists only its
// first keep bytes, then the device freezes (see Append).
func (d *Device) TearNextAppend(keep int) {
	d.mu.Lock()
	if keep < 0 {
		keep = 0
	}
	d.tearNext = keep
	d.mu.Unlock()
}

// FlipByte injects media corruption: readers observe the byte at off
// inverted. Flipping twice restores it.
func (d *Device) FlipByte(off int64) {
	d.mu.Lock()
	d.flips[off] ^= 0xFF
	if d.flips[off] == 0 {
		delete(d.flips, off)
	}
	d.mu.Unlock()
}

// CrashImage returns the bytes a post-crash reopen would observe: the
// synced prefix plus up to extra bytes of the unsynced suffix (the torn
// tail an OS page cache might have partially written), with bit flips
// applied. extra < 0 keeps the whole unsynced suffix.
func (d *Device) CrashImage(extra int64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	size := d.inner.Size()
	n := d.synced
	if extra < 0 {
		n = size
	} else if n+extra < size {
		n += extra
	} else {
		n = size
	}
	buf := make([]byte, n)
	if n == 0 {
		return buf, nil
	}
	got, err := d.readAtLocked(buf, 0)
	if int64(got) != n {
		return nil, fmt.Errorf("fault: crash image short read %d of %d: %w", got, n, err)
	}
	return buf, nil
}
