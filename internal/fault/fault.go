// Package fault provides named failpoints for crash-fault injection and a
// fault-simulating log device. The durability paths — WAL append/sync, the
// checkpoint write/rename pipeline, capture replay, view-delta apply, the
// commit publish phase, and snapshot restore — each evaluate a named
// failpoint; tests and the chaos tooling arm those points with actions that
// return transient I/O errors or simulate a process crash (freezing the
// underlying device so nothing later becomes durable).
//
// When nothing is armed, Inject is a single atomic load, so production and
// benchmark paths pay essentially nothing.
//
// Failpoints can also be armed from the environment for whole-binary chaos
// runs:
//
//	ROLLINGJOIN_FAULTS="apply=err-every:50,wal/sync=err:2"
//
// Each comma-separated clause is name=mode where mode is "err" (fail every
// evaluation), "err:N" (fail the first N evaluations), or "err-every:N"
// (fail every Nth evaluation).
package fault

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical failpoint names, one per durability-critical site. The crash
// classes they fall into are documented in DESIGN.md §8.
const (
	// PointWALAppend fires inside wal.Log.Append before the device write.
	PointWALAppend = "wal/append"
	// PointWALSync fires inside wal.Log.Sync before the device sync.
	PointWALSync = "wal/sync"
	// PointCheckpointWrite fires before the checkpoint temp file is written.
	PointCheckpointWrite = "checkpoint/write"
	// PointCheckpointRename fires after the temp file is synced, before the
	// atomic rename publishes it.
	PointCheckpointRename = "checkpoint/rename"
	// PointCaptureReplay fires as capture applies a commit's changes to the
	// base delta tables.
	PointCaptureReplay = "capture/replay"
	// PointAggregate fires at the start of an incremental aggregate's
	// propagation step, before any upstream delta rows are folded. Cascade
	// crash tests use it to kill a process mid-cascade.
	PointAggregate = "aggregate"
	// PointApply fires as the apply driver folds a view-delta window into
	// the materialized view.
	PointApply = "apply"
	// PointPublish fires in the commit publish phase, after the WAL commit
	// record is durable but before row versions are stamped. The error is
	// not propagated (publish cannot fail); arm it only with crash actions.
	PointPublish = "publish"
	// PointRestore fires at the start of snapshot restore, before any state
	// is loaded.
	PointRestore = "restore"
	// PointMigrate fires as the heavy/light classifier migrates a join key
	// between the generic hash path and a dedicated heavy partition
	// (engine partitioning, DESIGN.md §9). An injected error aborts the
	// migration, leaving the old classification; a crash here must be
	// recoverable because classifier and resident partial state are
	// volatile and rebuilt from durable storage.
	PointMigrate = "migrate"
	// PointFold fires at the start of a delta-prefix fold pass, before any
	// image is compacted or delta prefix pruned. Folding touches only
	// volatile state (images and delta tables are rebuilt from the WAL), so
	// a crash here must always be recoverable.
	PointFold = "fold"
	// PointChainWrite fires before an incremental-checkpoint chain link's
	// temp file is written; PointChainRename fires after the temp file is
	// synced, before the atomic rename publishes the link.
	PointChainWrite  = "chain/write"
	PointChainRename = "chain/rename"
	// PointSpillWrite fires before cold state (a derived-view image or a
	// cached join index) is serialized to the spill directory;
	// PointSpillLoad fires before a spilled file is read back on access.
	PointSpillWrite = "spill/write"
	PointSpillLoad  = "spill/load"
	// PointDevAppend/Sync/Read fire inside the fault Device wrapper itself,
	// below the WAL framing layer.
	PointDevAppend = "dev/append"
	PointDevSync   = "dev/sync"
	PointDevRead   = "dev/read"
)

// Injection errors.
var (
	// ErrInjected is the transient I/O error actions return by default —
	// the EIO analogue maintenance jobs must survive via retry/backoff.
	ErrInjected = errors.New("fault: injected I/O error")
	// ErrCrash is returned by crash actions after freezing the device: the
	// simulated process dies here, and only synced bytes survive.
	ErrCrash = errors.New("fault: crash")
)

// Action decides what happens when an armed failpoint is evaluated: return
// nil to pass, or an error to inject it at the site. Actions run on the
// evaluating goroutine and must be safe for concurrent use.
type Action func() error

type point struct {
	mu     sync.Mutex
	action Action
	evals  atomic.Int64
	trips  atomic.Int64
}

var (
	armed  atomic.Bool // fast-path gate: false = every Inject returns nil
	regMu  sync.Mutex
	points = make(map[string]*point)
)

// Enabled reports whether any failpoint is armed. Sites that cannot
// propagate an error cheaply can skip their slow path on false.
func Enabled() bool { return armed.Load() }

// Inject evaluates the named failpoint, returning the armed action's error
// (nil when disarmed or passing). When no failpoint is armed anywhere this
// is a single atomic load.
func Inject(name string) error {
	if !armed.Load() {
		return nil
	}
	return inject(name)
}

func inject(name string) error {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p == nil {
		return nil
	}
	p.evals.Add(1)
	p.mu.Lock()
	a := p.action
	p.mu.Unlock()
	if a == nil {
		return nil
	}
	err := a()
	if err != nil {
		p.trips.Add(1)
	}
	return err
}

// Set arms the named failpoint with an action and enables injection.
func Set(name string, a Action) {
	regMu.Lock()
	p := points[name]
	if p == nil {
		p = &point{}
		points[name] = p
	}
	regMu.Unlock()
	p.mu.Lock()
	p.action = a
	p.mu.Unlock()
	armed.Store(true)
}

// Clear disarms one failpoint, keeping its counters.
func Clear(name string) {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p != nil {
		p.mu.Lock()
		p.action = nil
		p.mu.Unlock()
	}
}

// Reset disarms every failpoint, clears all counters, and disables the
// fast-path gate. Tests defer it.
func Reset() {
	armed.Store(false)
	regMu.Lock()
	points = make(map[string]*point)
	regMu.Unlock()
}

// Evals returns how many times the named failpoint was evaluated while
// injection was enabled.
func Evals(name string) int64 {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p == nil {
		return 0
	}
	return p.evals.Load()
}

// Trips returns how many times the named failpoint's action injected an
// error.
func Trips(name string) int64 {
	regMu.Lock()
	p := points[name]
	regMu.Unlock()
	if p == nil {
		return 0
	}
	return p.trips.Load()
}

// ErrAlways injects err on every evaluation.
func ErrAlways(err error) Action { return func() error { return err } }

// ErrTimes injects err on the first n evaluations, then passes.
func ErrTimes(n int64, err error) Action {
	var count atomic.Int64
	return func() error {
		if count.Add(1) <= n {
			return err
		}
		return nil
	}
}

// ErrEvery injects err on every nth evaluation (n >= 1).
func ErrEvery(n int64, err error) Action {
	if n < 1 {
		n = 1
	}
	var count atomic.Int64
	return func() error {
		if count.Add(1)%n == 0 {
			return err
		}
		return nil
	}
}

// Freezer is anything that can stop persisting writes — the fault Device.
type Freezer interface{ Freeze() }

// Crash freezes the device and injects ErrCrash: the simulated process
// dies at this failpoint, and recovery sees only what was synced (plus
// whatever torn tail the crash image includes).
func Crash(f Freezer) Action {
	return func() error {
		f.Freeze()
		return ErrCrash
	}
}

// CrashOnHit passes the first n-1 evaluations, then crashes (n >= 1).
func CrashOnHit(n int64, f Freezer) Action {
	var count atomic.Int64
	return func() error {
		if count.Add(1) < n {
			return nil
		}
		f.Freeze()
		return ErrCrash
	}
}

// Parse arms failpoints from a comma-separated spec (see package comment).
func Parse(spec string) error {
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, mode, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("fault: bad clause %q (want name=mode)", clause)
		}
		kind, arg, hasArg := strings.Cut(mode, ":")
		var n int64 = 1
		if hasArg {
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || v < 1 {
				return fmt.Errorf("fault: bad count in %q", clause)
			}
			n = v
		}
		switch kind {
		case "err":
			if hasArg {
				Set(name, ErrTimes(n, ErrInjected))
			} else {
				Set(name, ErrAlways(ErrInjected))
			}
		case "err-every":
			Set(name, ErrEvery(n, ErrInjected))
		case "off":
			Clear(name)
		default:
			return fmt.Errorf("fault: unknown mode %q in %q", kind, clause)
		}
	}
	return nil
}

func init() {
	if spec := os.Getenv("ROLLINGJOIN_FAULTS"); spec != "" {
		if err := Parse(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
