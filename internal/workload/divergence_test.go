package workload_test

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// TestStarSchemaDivergenceRepro reproduces the known ±1-row divergence from
// ROADMAP.md: at high transaction rates with writers committing
// concurrently with rolling propagation, the rolled materialized view can
// end up one count-1 row off from a full recomputation. The small-scale
// oracles pass, so the race window is narrow — this is the scaled repro
// (star schema, 2000-row fact, 3000 driver transactions) kept as a tracked
// test while the bug is open.
//
// Gated: runs only when ROLLINGJOIN_DIVERGENCE is set and not under -short,
// so CI stays green. The divergence is probabilistic; a pass here does NOT
// mean the bug is fixed — run it repeatedly (e.g. -count=10) when working
// on the rolling/compensation boundary.
func TestStarSchemaDivergenceRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled divergence repro skipped in -short mode")
	}
	if os.Getenv("ROLLINGJOIN_DIVERGENCE") == "" {
		t.Skip("set ROLLINGJOIN_DIVERGENCE=1 to run the known-issue repro (ROADMAP.md)")
	}

	const updates = 3000
	w := workload.StarSchema(2, 2000, 201, 20)
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := w.Setup(db, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	cap := capture.NewLogCapture(db)
	cap.Start()

	schema, err := w.View.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := db.CreateStandaloneDelta("Δ"+w.View.Name, schema)
	if err != nil {
		t.Fatal(err)
	}
	exec := core.NewExecutor(db, cap, w.View, dest)
	mv, err := core.Materialize(db, w.View)
	if err != nil {
		t.Fatal(err)
	}
	rp := core.NewRollingPropagator(exec, mv.MatTime(), core.FixedInterval(16))
	applier := core.NewApplier(mv, dest, rp.HWM)

	// Propagator on its own goroutine, driver on this one — the concurrent
	// shape under which the divergence manifests.
	stop := make(chan struct{})
	propDone := make(chan error, 1)
	go func() { propDone <- rp.Run(stop) }()

	driver := workload.NewDriver(db, w, 2)
	last, err := driver.Run(updates)
	if err != nil {
		close(stop)
		t.Fatal(err)
	}
	for rp.HWM() < last {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	if err := <-propDone; err != nil {
		t.Fatal(err)
	}

	if _, err := applier.RollToHWM(); err != nil {
		t.Fatal(err)
	}
	full, csn, err := core.FullRefresh(db, w.View)
	if err != nil {
		t.Fatal(err)
	}
	for rp.HWM() < csn {
		if err := rp.Step(); err != nil && err != core.ErrNoProgress {
			t.Fatal(err)
		}
	}
	if err := applier.RollTo(csn); err != nil {
		t.Fatal(err)
	}

	rolled := relalg.NetEffect(mv.AsRelation())
	want := relalg.NetEffect(full)
	if !relalg.Equivalent(rolled, want) {
		t.Errorf("rolled view diverged from full recomputation at CSN %d: %d vs %d net rows (known issue, ROADMAP.md)",
			csn, rolled.Len(), want.Len())
	}
}
