package workload_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestStarSchemaDivergenceRepro is the scaled regression test for the
// (fixed) ±1-row divergence once tracked in ROADMAP.md: at high transaction
// rates with writers committing concurrently with rolling propagation, the
// rolled materialized view could end up one count-1 row off from a full
// recomputation. Root cause: per-relation propagation windows deferred
// compensation through query lists, and with three or more relations the
// deferral graph could be cyclic, so a cross-relation change pair was never
// delivered at its effective time. The shared-cell rolling propagator plus
// read-view (AsOf) query execution removed the deferral entirely — executed
// time now equals intended time by construction — and this test (star
// schema, 2000-row fact, 3000 driver transactions) guards the fix. The
// divergence was probabilistic; run with -count=10 when touching the
// rolling/compensation boundary.
func TestStarSchemaDivergenceRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled divergence regression skipped in -short mode")
	}

	const updates = 3000
	w := workload.StarSchema(2, 2000, 201, 20)
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := w.Setup(db, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	cap := capture.NewLogCapture(db)
	cap.Start()

	schema, err := w.View.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := db.CreateStandaloneDelta("Δ"+w.View.Name, schema)
	if err != nil {
		t.Fatal(err)
	}
	exec := core.NewExecutor(db, cap, w.View, dest)
	mv, err := core.Materialize(db, w.View)
	if err != nil {
		t.Fatal(err)
	}
	rp := core.NewRollingPropagator(exec, mv.MatTime(), core.FixedInterval(16))
	applier := core.NewApplier(mv, dest, rp.HWM)

	// Propagation on the maintenance scheduler, driver on this goroutine —
	// the concurrent shape under which the divergence manifests.
	s := sched.New(1)
	defer s.Close()
	job := s.Register("prop", rp.Step, sched.Options{
		Classify: func(err error) sched.Outcome {
			switch {
			case err == nil:
				return sched.Progress
			case errors.Is(err, core.ErrNoProgress):
				return sched.Idle
			case errors.Is(err, capture.ErrStopped):
				return sched.Halt
			default:
				return sched.Fail
			}
		},
		WakeOnNotify: true,
	})
	cap.OnProgress(func(csn relalg.CSN) { s.Notify(csn) })
	job.Start()

	driver := workload.NewDriver(db, w, 2)
	last, err := driver.Run(updates)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := job.Await(ctx, func() bool { return rp.HWM() >= last }); err != nil {
		t.Fatal(err)
	}
	if err := job.Stop(); err != nil {
		t.Fatal(err)
	}

	if _, err := applier.RollToHWM(); err != nil {
		t.Fatal(err)
	}
	full, csn, err := core.FullRefresh(db, w.View)
	if err != nil {
		t.Fatal(err)
	}
	for rp.HWM() < csn {
		if err := rp.Step(); err != nil && err != core.ErrNoProgress {
			t.Fatal(err)
		}
	}
	if err := applier.RollTo(csn); err != nil {
		t.Fatal(err)
	}

	rolled := relalg.NetEffect(mv.AsRelation())
	want := relalg.NetEffect(full)
	if !relalg.Equivalent(rolled, want) {
		t.Errorf("rolled view diverged from full recomputation at CSN %d: %d vs %d net rows (known issue, ROADMAP.md)",
			csn, rolled.Len(), want.Len())
	}
}
