package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/capture"
	"repro/internal/engine"
)

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: head %d vs mid %d", counts[0], counts[50])
	}
	// Uniform case: roughly flat.
	u := NewZipf(rand.New(rand.NewSource(2)), 10, 0)
	flat := make([]int, 10)
	for i := 0; i < 20000; i++ {
		flat[u.Next()]++
	}
	for _, c := range flat {
		if math.Abs(float64(c)-2000) > 400 {
			t.Fatalf("uniform zipf not flat: %v", flat)
		}
	}
}

func TestChainWorkloadSetupAndRun(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w := Chain(3, 20, 5)
	if err := w.Setup(db, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if len(w.Tables) != 3 || w.View.N() != 3 || len(w.View.Conds) != 2 {
		t.Fatal("chain shape")
	}
	for _, spec := range w.Tables {
		tbl, err := db.Table(spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != spec.InitialRows {
			t.Fatalf("%s has %d rows, want %d", spec.Name, tbl.Len(), spec.InitialRows)
		}
	}
	d := NewDriver(db, w, 4)
	last, err := d.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if last == 0 || d.Committed() != 50 {
		t.Fatalf("driver: last=%d committed=%d", last, d.Committed())
	}
}

func TestStarSchemaSkew(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w := StarSchema(2, 50, 10, 20)
	if err := w.Setup(db, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
	if len(w.Tables) != 3 || w.View.N() != 3 {
		t.Fatal("star shape")
	}
	c := capture.NewLogCapture(db)
	d := NewDriver(db, w, 6)
	last, err := d.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	if err := c.WaitProgress(last); err != nil {
		t.Fatal(err)
	}
	fact, _ := db.Delta("fact")
	dim, _ := db.Delta("dim1")
	if fact.Len() <= dim.Len()*4 {
		t.Fatalf("fact deltas (%d) should dominate dim deltas (%d)", fact.Len(), dim.Len())
	}
	db.Close()
	c.Wait()
}

func TestDriverMultiOpTxn(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	w := Chain(2, 10, 4)
	if err := w.Setup(db, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	d := NewDriver(db, w, 8)
	d.OpsPerTxn = 5
	before := db.Stats()
	if _, err := d.Run(10); err != nil {
		t.Fatal(err)
	}
	after := db.Stats()
	writes := (after.RowsInserted + after.RowsDeleted) - (before.RowsInserted + before.RowsDeleted)
	if writes < 10 { // deletes can miss, but inserts always land
		t.Fatalf("expected multi-op transactions, saw %d writes", writes)
	}
	if after.Txn.Committed-before.Txn.Committed != 10 {
		t.Fatal("transaction count")
	}
}
