// Package workload generates the synthetic update streams the experiments
// run against. The paper's motivating scenario (Section 3.4) is a star
// schema whose central fact table is updated frequently while the
// surrounding dimension tables change rarely; StarSchema reproduces that
// skew with configurable per-table rates. Uniform n-way join schemas cover
// the symmetric case.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Zipf draws values in [0, n) with a Zipfian distribution of exponent s,
// deterministically from the supplied source. It is a small stdlib-only
// implementation using inverse-CDF sampling over precomputed weights.
type Zipf struct {
	cdf []float64
	r   *rand.Rand
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s (s == 0 is
// uniform).
func NewZipf(r *rand.Rand, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next draws the next sample.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// TableSpec describes one base table of a workload.
type TableSpec struct {
	Name string
	// InitialRows seeds the table before the experiment starts.
	InitialRows int
	// UpdateWeight is the relative probability that an update transaction
	// targets this table.
	UpdateWeight float64
	// KeyDomain is the number of distinct join-key values.
	KeyDomain int
	// InsertFraction is the probability an update is an insert (the rest
	// are deletes). Values above 0.5 grow the table over time.
	InsertFraction float64
	// Skew, when positive, draws join keys from a Zipfian distribution
	// with this exponent instead of uniformly — a few hot keys absorb most
	// of the traffic, the regime the heavy/light partition split targets.
	// Zero keeps the exact uniform draw sequence of earlier revisions.
	Skew float64
}

// Workload is a schema plus its update mix and the view defined over it.
type Workload struct {
	Tables []TableSpec
	View   *core.ViewDef
}

// schema returns the (k, v) schema shared by workload tables.
func schema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
}

// Chain builds a symmetric n-way chain-join workload: n tables joined
// pairwise on k, equal update weights.
func Chain(n, initialRows, keyDomain int) *Workload {
	w := &Workload{}
	view := &core.ViewDef{Name: fmt.Sprintf("chain%d", n)}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i+1)
		w.Tables = append(w.Tables, TableSpec{
			Name:           name,
			InitialRows:    initialRows,
			UpdateWeight:   1,
			KeyDomain:      keyDomain,
			InsertFraction: 0.5,
		})
		view.Relations = append(view.Relations, name)
		if i > 0 {
			view.Conds = append(view.Conds, engine.JoinCond{
				A: engine.ColRef{Input: i - 1, Col: 0},
				B: engine.ColRef{Input: i, Col: 0},
			})
		}
	}
	w.View = view
	return w
}

// StarSchema builds the paper's motivating workload: a fact table joined to
// dims dimension tables, with the fact table receiving factWeight times the
// update traffic of each dimension.
func StarSchema(dims, factRows, dimRows int, factWeight float64) *Workload {
	w := &Workload{}
	view := &core.ViewDef{Name: "star"}
	w.Tables = append(w.Tables, TableSpec{
		Name:           "fact",
		InitialRows:    factRows,
		UpdateWeight:   factWeight,
		KeyDomain:      dimRows,
		InsertFraction: 0.6,
	})
	view.Relations = append(view.Relations, "fact")
	for d := 0; d < dims; d++ {
		name := fmt.Sprintf("dim%d", d+1)
		w.Tables = append(w.Tables, TableSpec{
			Name:           name,
			InitialRows:    dimRows,
			UpdateWeight:   1,
			KeyDomain:      dimRows,
			InsertFraction: 0.5,
		})
		view.Relations = append(view.Relations, name)
		// The fact table's key joins every dimension's key. A real star
		// schema has one foreign key per dimension; a single shared key
		// column keeps the synthetic data simple while preserving the
		// fact-heavy access pattern.
		view.Conds = append(view.Conds, engine.JoinCond{
			A: engine.ColRef{Input: 0, Col: 0},
			B: engine.ColRef{Input: d + 1, Col: 0},
		})
	}
	w.View = view
	return w
}

// StarSchemaSkewed is StarSchema with Zipfian fact-table keys: the skewed
// star workload the PARTITION experiment runs, where a handful of hot keys
// dominate the fact table's update stream.
func StarSchemaSkewed(dims, factRows, dimRows int, factWeight, skew float64) *Workload {
	w := StarSchema(dims, factRows, dimRows, factWeight)
	w.Tables[0].Skew = skew
	return w
}

// keyPicker returns a draw function over [0, KeyDomain) honoring the
// spec's skew: Zipfian when Skew > 0, otherwise the exact r.Intn sequence
// of earlier revisions (so seeded runs without skew reproduce byte for
// byte).
func keyPicker(spec TableSpec, r *rand.Rand) func() int64 {
	if spec.Skew > 0 {
		z := NewZipf(r, spec.KeyDomain, spec.Skew)
		return func() int64 { return int64(z.Next()) }
	}
	return func() int64 { return int64(r.Intn(spec.KeyDomain)) }
}

// Setup creates the workload's tables (with delta tables) in db and loads
// the initial rows in bulk transactions.
func (w *Workload) Setup(db *engine.DB, r *rand.Rand) error {
	for _, spec := range w.Tables {
		if _, err := db.CreateTable(spec.Name, schema()); err != nil {
			return err
		}
		if _, err := db.CreateDelta(spec.Name); err != nil {
			return err
		}
	}
	for _, spec := range w.Tables {
		pick := keyPicker(spec, r)
		tx := db.Begin()
		for i := 0; i < spec.InitialRows; i++ {
			k := pick()
			if err := tx.Insert(spec.Name, tuple.Tuple{tuple.Int(k), tuple.Int(int64(i))}); err != nil {
				tx.Abort()
				return err
			}
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	return w.View.Validate(db)
}

// Driver issues update transactions against a workload.
type Driver struct {
	db      *engine.DB
	w       *Workload
	r       *rand.Rand
	weights []float64 // cumulative update weights
	pickers []func() int64
	nextVal int64

	// OpsPerTxn is the number of row operations per transaction (default 1).
	OpsPerTxn int

	// committed is atomic: monitoring goroutines (cmd/rollload's reporter)
	// read it while the drive loop increments it.
	committed atomic.Int64
}

// NewDriver creates an update driver with its own random stream.
func NewDriver(db *engine.DB, w *Workload, seed int64) *Driver {
	d := &Driver{db: db, w: w, r: rand.New(rand.NewSource(seed)), OpsPerTxn: 1}
	sum := 0.0
	for _, t := range w.Tables {
		sum += t.UpdateWeight
		d.weights = append(d.weights, sum)
		d.pickers = append(d.pickers, keyPicker(t, d.r))
	}
	return d
}

// Committed returns the number of committed update transactions.
func (d *Driver) Committed() int64 { return d.committed.Load() }

// pickTable selects a table according to the update weights.
func (d *Driver) pickTable() (TableSpec, int) {
	u := d.r.Float64() * d.weights[len(d.weights)-1]
	for i, c := range d.weights {
		if u <= c {
			return d.w.Tables[i], i
		}
	}
	return d.w.Tables[len(d.w.Tables)-1], len(d.w.Tables) - 1
}

// Step runs one update transaction and returns its commit CSN.
func (d *Driver) Step() (relalg.CSN, error) {
	for {
		tx := d.db.Begin()
		ok := true
		for op := 0; op < d.OpsPerTxn; op++ {
			spec, ti := d.pickTable()
			k := d.pickers[ti]()
			var err error
			if d.r.Float64() < spec.InsertFraction {
				d.nextVal++
				err = tx.Insert(spec.Name, tuple.Tuple{tuple.Int(k), tuple.Int(d.nextVal)})
			} else {
				_, err = tx.DeleteWhere(spec.Name, relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(k)}, 1)
			}
			if err != nil {
				tx.Abort()
				ok = false
				break // deadlock victim or similar: retry whole txn
			}
		}
		if !ok {
			continue
		}
		csn, err := tx.Commit()
		if err != nil {
			return 0, err
		}
		d.committed.Add(1)
		return csn, nil
	}
}

// Run issues count update transactions and returns the last commit CSN.
func (d *Driver) Run(count int) (relalg.CSN, error) {
	var last relalg.CSN
	for i := 0; i < count; i++ {
		csn, err := d.Step()
		if err != nil {
			return 0, err
		}
		last = csn
	}
	return last, nil
}
