// Package core implements the paper's contribution: asynchronous
// incremental view maintenance by rolling join propagation.
//
// It provides the ComputeDelta recursive-compensation procedure (Figure 4),
// the continuous Propagate process (Figure 5), the RollingPropagate process
// with per-relation propagation intervals (Figure 10), the apply driver
// performing point-in-time refresh, and the synchronous baselines of
// Section 3.1 (Equation 1 with 2^n−1 queries and Equation 2 with n
// queries) plus full recomputation.
package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// ViewDef defines a select-project-join view V = π(σ(R^1 ⋈ ... ⋈ R^n)).
type ViewDef struct {
	// Name identifies the view; its timed delta table registers under the
	// same name, which is what lets other views read this view as a
	// relation (the cascade contract).
	Name string
	// Relations are the relation names R^1..R^n in join order: base tables
	// or other maintained views (registered derived relations).
	Relations []string
	// Conds are the equi-join conditions between relation columns.
	Conds []engine.JoinCond
	// Residual is an optional selection over the concatenated schema.
	Residual relalg.Predicate
	// Project optionally projects onto these columns; nil keeps all.
	Project []engine.ColRef
}

// N returns the number of base relations.
func (v *ViewDef) N() int { return len(v.Relations) }

// Validate checks the definition against the database catalog: relations
// exist, every relation has a registered delta table, and column references
// are in range.
func (v *ViewDef) Validate(db *engine.DB) error { return v.validate(db, true) }

// ValidateQuery checks the definition for one-shot evaluation: like
// Validate but without requiring delta tables (ad-hoc SELECTs do not need
// maintenance).
func (v *ViewDef) ValidateQuery(db *engine.DB) error { return v.validate(db, false) }

func (v *ViewDef) validate(db *engine.DB, requireDeltas bool) error {
	if len(v.Relations) == 0 {
		return fmt.Errorf("core: view %q has no relations", v.Name)
	}
	arities := make([]int, len(v.Relations))
	for i, name := range v.Relations {
		s, err := RelationSchema(db, name)
		if err != nil {
			return fmt.Errorf("core: view %q: %w", v.Name, err)
		}
		if requireDeltas && !db.HasDelta(name) {
			return fmt.Errorf("core: view %q: relation %q has no delta table", v.Name, name)
		}
		arities[i] = s.Arity()
	}
	check := func(r engine.ColRef) error {
		if r.Input < 0 || r.Input >= len(v.Relations) {
			return fmt.Errorf("core: view %q: column ref input %d out of range", v.Name, r.Input)
		}
		if r.Col < 0 || r.Col >= arities[r.Input] {
			return fmt.Errorf("core: view %q: column %d out of range for %s", v.Name, r.Col, v.Relations[r.Input])
		}
		return nil
	}
	for _, c := range v.Conds {
		if err := check(c.A); err != nil {
			return err
		}
		if err := check(c.B); err != nil {
			return err
		}
	}
	for _, p := range v.Project {
		if err := check(p); err != nil {
			return err
		}
	}
	return nil
}

// RelationSchema resolves a relation name against the catalog: a base
// table's schema, or a registered derived relation's (maintained view read
// as a relation).
func RelationSchema(db *engine.DB, name string) (*tuple.Schema, error) {
	if t, err := db.Table(name); err == nil {
		return t.Schema(), nil
	}
	dv, err := db.Derived(name)
	if err != nil {
		return nil, err
	}
	return dv.Schema(), nil
}

// Schema computes the view's output schema.
func (v *ViewDef) Schema(db *engine.DB) (*tuple.Schema, error) {
	var concat *tuple.Schema
	offsets := make([]int, len(v.Relations))
	pos := 0
	for i, name := range v.Relations {
		s, err := RelationSchema(db, name)
		if err != nil {
			return nil, err
		}
		offsets[i] = pos
		pos += s.Arity()
		if concat == nil {
			concat = s
		} else {
			concat = tuple.ConcatSchemas(concat, s, fmt.Sprintf("r%d_", i+1))
		}
	}
	if v.Project == nil {
		return concat, nil
	}
	idx := make([]int, len(v.Project))
	for i, ref := range v.Project {
		idx[i] = offsets[ref.Input] + ref.Col
	}
	return concat.Project(idx, nil), nil
}

// Position describes what one relation slot of a propagation query reads:
// the base table (seen at the query's commit time) or a delta window.
type Position struct {
	// Delta selects the delta-table form R^i_{Lo,Hi}.
	Delta  bool
	Lo, Hi relalg.CSN
	// Slice optionally restricts a delta position to one partition slice
	// of its window (heavy key or light hash partition). The engine
	// extends the slice to co-partitioned base positions; compensation
	// queries derived from a sliced query inherit the slice, so the whole
	// subtree computes exactly the slice's share of the step.
	Slice *engine.PartSpec
}

// PropQuery is a propagation query Q^V: the view's shape with some
// positions replaced by delta windows (Section 2). Sign is +1 for forward
// contributions and −1 for compensations (the paper's −Q notation).
type PropQuery struct {
	View *ViewDef
	Pos  []Position
	Sign int64
}

// AllBase returns the query with every position reading the base table —
// the view definition itself, Q = V.
func AllBase(v *ViewDef) *PropQuery {
	return &PropQuery{View: v, Pos: make([]Position, v.N()), Sign: +1}
}

// WithDelta returns a copy of q with position i replaced by the delta
// window (lo, hi].
func (q *PropQuery) WithDelta(i int, lo, hi relalg.CSN) *PropQuery {
	return q.WithDeltaSlice(i, lo, hi, nil)
}

// WithDeltaSlice is WithDelta restricted to one partition slice of the
// introduced window. Other positions keep their slices, so a compensation
// query introduced under a sliced step stays within the slice.
func (q *PropQuery) WithDeltaSlice(i int, lo, hi relalg.CSN, slice *engine.PartSpec) *PropQuery {
	pos := make([]Position, len(q.Pos))
	copy(pos, q.Pos)
	pos[i] = Position{Delta: true, Lo: lo, Hi: hi, Slice: slice}
	return &PropQuery{View: q.View, Pos: pos, Sign: q.Sign}
}

// Negated returns the query with its sign flipped (−Q).
func (q *PropQuery) Negated() *PropQuery {
	return &PropQuery{View: q.View, Pos: q.Pos, Sign: -q.Sign}
}

// HasBase reports whether any position still reads a base table.
func (q *PropQuery) HasBase() bool {
	for _, p := range q.Pos {
		if !p.Delta {
			return true
		}
	}
	return false
}

// MaxDeltaHi returns the largest delta-window upper bound in the query:
// the capture progress required before the query may execute.
func (q *PropQuery) MaxDeltaHi() relalg.CSN {
	var hi relalg.CSN
	for _, p := range q.Pos {
		if p.Delta && p.Hi > hi {
			hi = p.Hi
		}
	}
	return hi
}

// EngineQuery lowers the propagation query to the engine's executable form.
func (q *PropQuery) EngineQuery() *engine.Query {
	inputs := make([]engine.Input, len(q.Pos))
	for i, p := range q.Pos {
		if p.Delta {
			inputs[i] = engine.Input{Kind: engine.InputDelta, Table: q.View.Relations[i], Lo: p.Lo, Hi: p.Hi, Part: p.Slice}
		} else {
			inputs[i] = engine.Input{Kind: engine.InputBase, Table: q.View.Relations[i]}
		}
	}
	return &engine.Query{
		Inputs:   inputs,
		Conds:    q.View.Conds,
		Residual: q.View.Residual,
		Project:  q.View.Project,
	}
}

// String renders the query in the paper's notation, with a leading minus
// for negated (compensation) queries.
func (q *PropQuery) String() string {
	s := ""
	if q.Sign < 0 {
		s = "−"
	}
	for i, p := range q.Pos {
		if i > 0 {
			s += " ⋈ "
		}
		if p.Delta {
			s += fmt.Sprintf("Δ%s(%d,%d]", q.View.Relations[i], p.Lo, p.Hi)
			if p.Slice != nil {
				if p.Slice.Key != nil {
					s += fmt.Sprintf("[heavy/%d]", p.Slice.N)
				} else {
					s += fmt.Sprintf("[%d/%d]", p.Slice.Part, p.Slice.N)
				}
			}
		} else {
			s += q.View.Relations[i]
		}
	}
	return s
}

// Realizable reports whether the query result with the given vector of base
// observation times could be produced by a serializable transaction
// executing at time tx (Section 2's realizability definition): every base
// position must be seen exactly at tx, and every delta window must be
// closed by tx. Entries of tau for delta positions are ignored.
func (q *PropQuery) Realizable(tau []relalg.CSN, tx relalg.CSN) bool {
	for i, p := range q.Pos {
		if p.Delta {
			if p.Hi > tx {
				return false
			}
		} else if tau[i] != tx {
			return false
		}
	}
	return true
}
