package core

import (
	"sync"

	"repro/internal/engine"
	"repro/internal/relalg"
)

// AdaptiveInterval returns an interval policy that sizes each relation's
// propagation interval to hit a target number of delta rows per forward
// query. The paper leaves the interval as a manual knob ("the interval
// acts as a parameter that can be tuned to balance query execution
// overhead against data contention", Section 3.3); this policy closes the
// loop by estimating each relation's change density from its delta table
// and widening or narrowing the interval accordingly.
//
// The estimate is the relation's total delta rows divided by the CSN span
// they cover — cheap, smoothed, and recomputed at most once per
// refreshEvery decisions. Intervals are clamped to [minInterval,
// maxInterval].
func AdaptiveInterval(db *engine.DB, view *ViewDef, targetRows int) IntervalPolicy {
	const (
		minInterval  = 1
		maxInterval  = 1 << 16
		refreshEvery = 8
	)
	if targetRows <= 0 {
		targetRows = 64
	}
	var mu sync.Mutex
	calls := make([]int, view.N())
	cached := make([]relalg.CSN, view.N())
	return func(i int) relalg.CSN {
		if i < 0 {
			i = 0
		}
		mu.Lock()
		defer mu.Unlock()
		if calls[i]%refreshEvery == 0 || cached[i] == 0 {
			cached[i] = estimateInterval(db, view.Relations[i], targetRows, minInterval, maxInterval)
		}
		calls[i]++
		return cached[i]
	}
}

// estimateInterval computes the interval expected to contain targetRows
// changes of the relation, from the density of its delta table.
func estimateInterval(db *engine.DB, relation string, targetRows, minInterval, maxInterval int) relalg.CSN {
	d, err := db.Delta(relation)
	if err != nil {
		return relalg.CSN(minInterval)
	}
	rows := d.Len()
	span := int64(d.MaxTS())
	if rows == 0 || span == 0 {
		// No data yet: a quiet relation gets the widest interval — its
		// windows will mostly be empty and elided anyway.
		return relalg.CSN(maxInterval)
	}
	// rows/span changes per commit; interval = target / density.
	interval := int64(targetRows) * span / int64(rows)
	if interval < int64(minInterval) {
		interval = int64(minInterval)
	}
	if interval > int64(maxInterval) {
		interval = int64(maxInterval)
	}
	return relalg.CSN(interval)
}
