package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// unionEnv builds a database with three tables and a two-branch union view:
// (r1 ⋈ r2) + (r1 ⋈ r3), both projected to the same schema.
func unionEnv(t *testing.T) (*engine.DB, *capture.LogCapture, *UnionView, func(table string, k int64) relalg.CSN) {
	t.Helper()
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, name := range []string{"r1", "r2", "r3"} {
		if _, err := db.CreateTable(name, kvSchema()); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateDelta(name); err != nil {
			t.Fatal(err)
		}
	}
	c := capture.NewLogCapture(db)
	c.Start()

	branch := func(name, right string) *ViewDef {
		return &ViewDef{
			Name:      name,
			Relations: []string{"r1", right},
			Conds:     []engine.JoinCond{{A: engine.ColRef{Input: 0, Col: 0}, B: engine.ColRef{Input: 1, Col: 0}}},
			Project:   []engine.ColRef{{Input: 0, Col: 0}, {Input: 1, Col: 1}},
		}
	}
	uv, err := NewUnionView(db, c, "u", 0, PerRelationIntervals(3, 5), branch("b12", "r2"), branch("b13", "r3"))
	if err != nil {
		t.Fatal(err)
	}
	insert := func(table string, k int64) relalg.CSN {
		tx := db.Begin()
		if err := tx.Insert(table, tupleFor(k)); err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		csn, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return csn
	}
	return db, c, uv, insert
}

func drainUnion(t *testing.T, uv *UnionView, target relalg.CSN) {
	t.Helper()
	for uv.HWM() < target {
		if err := uv.Step(); err != nil && !errors.Is(err, ErrNoProgress) {
			t.Fatal(err)
		}
	}
}

func TestUnionViewMaintenance(t *testing.T) {
	db, _, uv, insert := unionEnv(t)
	r := rand.New(rand.NewSource(81))
	var last relalg.CSN
	tables := []string{"r1", "r2", "r3"}
	for i := 0; i < 60; i++ {
		last = insert(tables[r.Intn(3)], int64(r.Intn(4)))
	}
	drainUnion(t, uv, last)

	// Oracle: recompute both branches and union them.
	schema, _ := uv.Branches[0].Schema(db)
	mv := NewMaterializedView("u", schema, 0)
	applier := NewApplier(mv, uv.Dest(), uv.HWM)
	if err := applier.RollTo(last); err != nil {
		t.Fatal(err)
	}
	full1, _, err := FullRefresh(db, uv.Branches[0])
	if err != nil {
		t.Fatal(err)
	}
	full2, _, err := FullRefresh(db, uv.Branches[1])
	if err != nil {
		t.Fatal(err)
	}
	want := relalg.Union(full1, full2)
	if !relalg.Equivalent(mv.AsRelation(), want) {
		t.Fatalf("union view diverged:\n%s\nvs\n%s", mv.AsRelation(), relalg.NetEffect(want))
	}
}

func TestUnionViewPointInTime(t *testing.T) {
	db, _, uv, insert := unionEnv(t)
	insert("r2", 1)
	mid := insert("r1", 1)  // joins r2 branch
	last := insert("r3", 1) // joins r3 branch too
	drainUnion(t, uv, last)

	schema, err := uv.Branches[0].Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	mv := NewMaterializedView("u", schema, 0)
	applier := NewApplier(mv, uv.Dest(), uv.HWM)
	if err := applier.RollTo(mid); err != nil {
		t.Fatal(err)
	}
	if mv.Cardinality() != 1 {
		t.Fatalf("at mid: %d tuples", mv.Cardinality())
	}
	if err := applier.RollTo(last); err != nil {
		t.Fatal(err)
	}
	if mv.Cardinality() != 2 {
		t.Fatalf("at last: %d tuples", mv.Cardinality())
	}
}

func TestUnionViewValidation(t *testing.T) {
	db, err := engine.Open(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.CreateTable("a", kvSchema())
	db.CreateDelta("a")
	c := capture.NewLogCapture(db)

	if _, err := NewUnionView(db, c, "empty", 0, FixedInterval(1)); err == nil {
		t.Fatal("no branches should fail")
	}
	v1 := &ViewDef{Name: "v1", Relations: []string{"a"}}
	v2 := &ViewDef{Name: "v2", Relations: []string{"a"},
		Project: []engine.ColRef{{Input: 0, Col: 0}}}
	if _, err := NewUnionView(db, c, "mismatch", 0, FixedInterval(1), v1, v2); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestSummaryViewAggregates(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(91))
	last := env.randomHistory(r, 60, 3)
	rp := NewRollingPropagator(env.exec, 0, FixedInterval(8))
	drainRolling(t, rp, last)

	// Group by r1.k (column 0), SUM over r2.v (column 3).
	sv, err := NewSummaryView("sum", env.dest, rp.HWM, []int{0}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.RollToHWM(); err != nil {
		t.Fatal(err)
	}

	// Oracle: aggregate the recomputed view.
	full, _, err := FullRefresh(env.db, env.view)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		count int64
		sum   float64
	}
	want := map[int64]*agg{}
	for _, row := range full.Rows {
		k := row.Tuple[0].AsInt()
		if want[k] == nil {
			want[k] = &agg{}
		}
		want[k].count += row.Count
		want[k].sum += float64(row.Count) * float64(row.Tuple[3].AsInt())
	}
	for k, a := range want {
		if a.count == 0 {
			delete(want, k)
		}
	}

	rows := sv.Rows()
	if len(rows) != len(want) {
		t.Fatalf("groups: got %d want %d", len(rows), len(want))
	}
	for _, row := range rows {
		k := row.Key[0].AsInt()
		w := want[k]
		if w == nil || row.Count != w.count || row.Sums[0] != w.sum {
			t.Fatalf("group %d: got (%d, %.0f) want %+v", k, row.Count, row.Sums[0], w)
		}
	}
	if sv.Groups() != len(want) || sv.MatTime() != rp.HWM() {
		t.Fatal("metadata")
	}
}

func TestSummaryViewPointInTime(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	env.insert("r2", 1)
	t1 := env.insert("r1", 1)
	env.insert("r1", 1) // second copy: count 2
	t3 := env.delete("r1", 1)

	rp := NewRollingPropagator(env.exec, 0, FixedInterval(4))
	drainRolling(t, rp, t3)

	sv, err := NewSummaryView("s", env.dest, rp.HWM, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.RollTo(t1); err != nil {
		t.Fatal(err)
	}
	rows := sv.Rows()
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("at t1: %+v", rows)
	}
	if err := sv.RollTo(t3); err != nil {
		t.Fatal(err)
	}
	rows = sv.Rows()
	if len(rows) != 1 || rows[0].Count != 1 {
		t.Fatalf("at t3 (2 inserts, 1 delete): %+v", rows)
	}
	// Backward and beyond-HWM both refused.
	if err := sv.RollTo(t1); !errors.Is(err, ErrBackward) {
		t.Fatal("backward should fail")
	}
	if err := sv.RollTo(rp.HWM() + 100); !errors.Is(err, ErrBeyondHWM) {
		t.Fatal("beyond hwm should fail")
	}
}

func TestSummaryViewValidation(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	if _, err := NewSummaryView("bad", env.dest, func() relalg.CSN { return 0 }, []int{99}, nil); err == nil {
		t.Fatal("bad column should fail")
	}
}

func TestAdaptiveIntervalOracle(t *testing.T) {
	// Rolling propagation driven by the adaptive policy must still satisfy
	// Theorem 4.3, and the policy must assign the quiet relation a wider
	// interval than the busy one.
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(95))
	var last relalg.CSN
	for i := 0; i < 80; i++ {
		// r1 gets ~7x the traffic of r2.
		if r.Intn(8) == 0 {
			last = env.insert("r2", int64(r.Intn(4)))
		} else {
			last = env.insert("r1", int64(r.Intn(4)))
		}
	}
	if err := env.cap.WaitProgress(last); err != nil {
		t.Fatal(err)
	}
	policy := AdaptiveInterval(env.db, env.view, 16)
	if d1, d2 := policy(0), policy(1); d1 >= d2 {
		t.Fatalf("busy relation should get the narrower interval: δ=[%d, %d]", d1, d2)
	}
	rp := NewRollingPropagator(env.exec, 0, policy)
	drainRolling(t, rp, last)
	env.checkTimedDelta(0, last)
}

func TestAdaptiveIntervalEdgeCases(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	// No data at all: widest interval.
	p := AdaptiveInterval(env.db, env.view, 0)
	if p(0) != 1<<16 {
		t.Fatalf("empty delta should widen: %d", p(0))
	}
	if p(-1) != 1<<16 {
		t.Fatal("negative index defaults to relation 0")
	}
	// Unknown relation: minimum interval.
	bogus := &ViewDef{Name: "x", Relations: []string{"ghost"}}
	pb := AdaptiveInterval(env.db, bogus, 10)
	if pb(0) != 1 {
		t.Fatalf("unknown relation should narrow: %d", pb(0))
	}
}

func TestNumericCoercion(t *testing.T) {
	cases := []struct {
		v    tuple.Value
		want float64
	}{
		{tuple.Int(7), 7},
		{tuple.Float(2.5), 2.5},
		{tuple.Bool(true), 1},
		{tuple.Bool(false), 0},
		{tuple.Null(), 0},
		{tuple.String_("x"), 0},
	}
	for _, c := range cases {
		if got := numeric(c.v); got != c.want {
			t.Errorf("numeric(%v) = %v want %v", c.v, got, c.want)
		}
	}
}
