package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/relalg"
)

// TestCachedPropagationOracle runs randomized update histories through the
// full rolling-propagation machinery with the join-state cache enabled and
// checks the accumulated view delta against the timed-delta-table oracle
// (Definition 4.2). Cached queries execute at cache snapshot times rather
// than commit CSNs; the oracle accepts any execution time at which the
// bases were consistently observed, so this is the end-to-end proof that
// the substitution is sound.
func TestCachedPropagationOracle(t *testing.T) {
	views := []struct {
		name string
		view *ViewDef
	}{
		{"chain", chainView("vcache-chain", 3)},
		{"star", starView("vcache-star", 2)},
	}
	for _, v := range views {
		t.Run(v.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(17))
			env := newEnv(t, v.view)
			env.db.SetJoinCache(true)
			rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(3, 7, 7))
			var last relalg.CSN
			for round := 0; round < 5; round++ {
				last = env.randomHistory(r, 12, 5)
				if err := env.cap.WaitProgress(last); err != nil {
					t.Fatal(err)
				}
				drainRolling(t, rp, last)
			}
			env.checkTimedDelta(0, rp.HWM())
			if env.db.Stats().CacheBuilds == 0 {
				t.Fatal("cache never engaged")
			}
		})
	}
}

// TestCachedVsUncachedTimedDelta is the randomized quick-check of the
// tentpole: the same committed history propagated uncached and cached must
// yield identical timed delta tables — at every timestamp, the same tuples
// with the same consolidated counts. The comparison is per-timestamp window
// (not whole-table net effect), so timestamps are checked too. Phases
// alternate history and propagation so later windows are maintained
// incrementally from resident cache state rather than a fresh build.
func TestCachedVsUncachedTimedDelta(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	env := newEnv(t, starView("vqc", 2))
	schema, err := env.view.Schema(env.db)
	if err != nil {
		t.Fatal(err)
	}
	destC, err := env.db.CreateStandaloneDelta("Δvqc-cached", schema)
	if err != nil {
		t.Fatal(err)
	}
	execC := NewExecutor(env.db, env.cap, env.view, destC)

	var lo relalg.CSN
	for phase := 0; phase < 4; phase++ {
		hi := env.randomHistory(r, 15, 4)
		if err := env.cap.WaitProgress(hi); err != nil {
			t.Fatal(err)
		}
		tau := []relalg.CSN{lo, lo, lo}
		env.db.SetJoinCache(false)
		if err := env.exec.ComputeDelta(AllBase(env.view), tau, hi); err != nil {
			t.Fatal(err)
		}
		env.db.SetJoinCache(true)
		if err := execC.ComputeDelta(AllBase(env.view), tau, hi); err != nil {
			t.Fatal(err)
		}
		for ts := lo + 1; ts <= hi; ts++ {
			wu := env.dest.Window(ts-1, ts)
			wc := destC.Window(ts-1, ts)
			if !relalg.Equivalent(wu, wc) {
				t.Fatalf("phase %d: timed delta tables differ at ts=%d\nuncached:\n%s\ncached:\n%s",
					phase, ts, wu, wc)
			}
		}
		lo = hi
	}
	if env.db.Stats().CacheBuilds == 0 {
		t.Fatal("cache never engaged")
	}
	// Both must also satisfy the oracle outright.
	env.checkTimedDelta(0, lo)
}

// TestConcurrentWritersOracleCached is the concurrent-writers oracle with
// the join-state cache enabled: writers keep committing while rolling
// propagation reads pinned cache snapshots, with and without a worker pool.
// Under -race this exercises the cache's pin/advance synchronization
// against live maintenance.
func TestConcurrentWritersOracleCached(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for round := 0; round < 2; round++ {
			t.Run(fmt.Sprintf("workers=%d/round=%d", workers, round), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(round*10 + workers)))
				env := newEnv(t, starView(fmt.Sprintf("vcc%d_%d", workers, round), 2))
				env.db.SetJoinCache(true)
				env.exec.SetWorkers(workers)
				rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 5, 5))

				done := make(chan relalg.CSN)
				go func() {
					var last relalg.CSN
					for i := 0; i < 80; i++ {
						table := env.view.Relations[r.Intn(env.view.N())]
						k := int64(r.Intn(4))
						if r.Intn(3) == 0 {
							last = env.delete(table, k)
						} else {
							last = env.insert(table, k)
						}
					}
					done <- last
				}()

				var last relalg.CSN
				writerDone := false
				for !writerDone || rp.HWM() < last {
					select {
					case last = <-done:
						writerDone = true
					default:
					}
					if err := rp.Step(); err != nil && err != ErrNoProgress {
						t.Fatal(err)
					}
				}
				env.checkTimedDelta(0, rp.HWM())
				if env.db.Stats().CacheBuilds == 0 {
					t.Fatal("cache never engaged")
				}
			})
		}
	}
}
