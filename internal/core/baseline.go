package core

import (
	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/relalg"
)

// This file implements the synchronous baselines of Section 3.1, against
// which rolling propagation is compared:
//
//   - FullRefresh: non-incremental recomputation of the whole view.
//   - SyncPropagateEq1: Equation 1 — the view delta as the union of 2^n−1
//     propagation queries, all seeing the base tables at t_new, executed as
//     one atomic transaction (the realizable-at-t_e form, with
//     inclusion-exclusion signs).
//   - SyncPropagateEq2: Equation 2 — n propagation queries where base
//     tables left of the delta are seen at t_old and those right of it at
//     t_new. Two of the n queries are not realizable by any transaction
//     (Section 3.1), so this baseline reconstructs the required historical
//     snapshots from the delta tables.

// FullRefresh recomputes the view from a read view at the current stable
// CSN and returns its net-effect contents and that CSN. Lock-free: the
// snapshot pins the state, not table locks.
func FullRefresh(db *engine.DB, view *ViewDef) (*relalg.Relation, relalg.CSN, error) {
	snap, err := db.OpenSnapshot(relalg.NullTS)
	if err != nil {
		return nil, 0, err
	}
	asOf := snap.AsOf()
	snap.Close()
	q := AllBase(view).EngineQuery()
	q.AsOf = asOf
	tx := db.Begin()
	rel, err := tx.EvalQuery(q)
	if err != nil {
		tx.Abort()
		return nil, 0, err
	}
	if _, err := tx.Commit(); err != nil {
		return nil, 0, err
	}
	return relalg.NetEffect(rel), asOf, nil
}

// lockAllAndPin takes S locks on every base relation of the view, then
// returns the CSN the pinned state corresponds to: with the locks held, no
// writer of these tables can commit, so the scanned state is exactly the
// committed state at that CSN. It waits until capture has processed all
// commits up to that point.
func lockAllAndPin(tx *engine.Tx, db *engine.DB, src capture.Source, view *ViewDef) (relalg.CSN, error) {
	seen := make(map[string]bool)
	for _, name := range view.Relations {
		if seen[name] {
			continue
		}
		seen[name] = true
		if err := tx.LockTableS(name); err != nil {
			return 0, err
		}
	}
	b := db.LastCSN()
	if err := src.WaitProgress(b); err != nil {
		return 0, err
	}
	return b, nil
}

// SyncPropagateEq1 computes the view delta V_{a,b} using Equation 1: one
// query per non-empty subset of positions replaced by their deltas over
// (a, b], base positions seen at t_b, with sign (−1)^{|subset|+1}. All
// 2^n−1 queries run inside a single transaction holding S locks on every
// base table — the long atomic transaction whose contention the rolling
// algorithm exists to avoid. It returns t_b and the number of queries.
func SyncPropagateEq1(db *engine.DB, src capture.Source, view *ViewDef, dest *engine.DeltaTable, a relalg.CSN) (relalg.CSN, int, error) {
	tx := db.Begin()
	b, err := lockAllAndPin(tx, db, src, view)
	if err != nil {
		tx.Abort()
		return 0, 0, err
	}
	if b <= a {
		// Nothing to propagate.
		if _, err := tx.Commit(); err != nil {
			return 0, 0, err
		}
		return a, 0, nil
	}
	n := view.N()
	queries := 0
	for mask := 1; mask < 1<<n; mask++ {
		q := AllBase(view)
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				q = q.WithDelta(i, a, b)
				bits++
			}
		}
		if bits%2 == 0 {
			q = q.Negated()
		}
		rel, err := tx.EvalQuery(q.EngineQuery())
		if err != nil {
			tx.Abort()
			return 0, 0, err
		}
		for _, row := range rel.Rows {
			tx.AppendDelta(dest, row.TS, q.Sign*row.Count, row.Tuple)
		}
		queries++
	}
	if _, err := tx.Commit(); err != nil {
		return 0, 0, err
	}
	return b, queries, nil
}

// snapshotAt reconstructs R's committed state at time t from its current
// (locked) state at time b and the delta window (t, b]: R_t = φ(R_b − Δ^R
// over (t, b]). This stands in for the pre-update snapshots that
// Equation 2's unrealizable queries require.
func snapshotAt(tx *engine.Tx, db *engine.DB, table string, t, b relalg.CSN) (*relalg.Relation, error) {
	cur, err := tx.Scan(table, nil)
	if err != nil {
		return nil, err
	}
	d, err := db.Delta(table)
	if err != nil {
		return nil, err
	}
	win := d.Window(t, b)
	return relalg.NetEffect(relalg.Union(cur, relalg.Negate(win))), nil
}

// SyncPropagateEq2 computes V_{a,b} using Equation 2's n queries: query i
// replaces position i with Δ^i over (a, b], sees positions left of i at
// t_a (via reconstructed snapshots) and positions right of i at t_b. It
// returns t_b and the number of queries (always n).
//
// Unlike Equation 1 and the compensation-based algorithms, Equation 2's
// result is only net-correct over the full interval (a, b]: with a single
// non-overlapping query per position there is no min-timestamp cancellation,
// so a result row's timestamp is its delta position's commit time rather
// than the change's true effective time. It is therefore a delta table but
// not a timed delta table — one more reason the paper treats Equation 2 as
// a structural starting point rather than an algorithm to deploy.
func SyncPropagateEq2(db *engine.DB, src capture.Source, view *ViewDef, dest *engine.DeltaTable, a relalg.CSN) (relalg.CSN, int, error) {
	tx := db.Begin()
	b, err := lockAllAndPin(tx, db, src, view)
	if err != nil {
		tx.Abort()
		return 0, 0, err
	}
	if b <= a {
		if _, err := tx.Commit(); err != nil {
			return 0, 0, err
		}
		return a, 0, nil
	}
	n := view.N()
	// Reconstruct the t_a snapshots once.
	snaps := make([]*relalg.Relation, n)
	for i := 0; i < n; i++ {
		s, err := snapshotAt(tx, db, view.Relations[i], a, b)
		if err != nil {
			tx.Abort()
			return 0, 0, err
		}
		snaps[i] = s
	}
	for i := 0; i < n; i++ {
		eq := AllBase(view).WithDelta(i, a, b).EngineQuery()
		for j := 0; j < i; j++ {
			eq.Inputs[j] = engine.Input{Kind: engine.InputRelation, Rel: snaps[j]}
		}
		rel, err := tx.EvalQuery(eq)
		if err != nil {
			tx.Abort()
			return 0, 0, err
		}
		for _, row := range rel.Rows {
			tx.AppendDelta(dest, row.TS, row.Count, row.Tuple)
		}
	}
	if _, err := tx.Commit(); err != nil {
		return 0, 0, err
	}
	return b, n, nil
}
