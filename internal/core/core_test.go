package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

func TestViewDefValidate(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	bad := &ViewDef{Name: "empty"}
	if err := bad.Validate(env.db); err == nil {
		t.Fatal("empty view must fail")
	}
	bad = &ViewDef{Name: "missing", Relations: []string{"nope"}}
	if err := bad.Validate(env.db); err == nil {
		t.Fatal("missing table must fail")
	}
	bad = &ViewDef{Name: "badcol", Relations: []string{"r1", "r2"},
		Conds: []engine.JoinCond{{A: engine.ColRef{Input: 0, Col: 9}, B: engine.ColRef{Input: 1, Col: 0}}}}
	if err := bad.Validate(env.db); err == nil {
		t.Fatal("bad column must fail")
	}
	bad = &ViewDef{Name: "badproj", Relations: []string{"r1", "r2"},
		Project: []engine.ColRef{{Input: 5, Col: 0}}}
	if err := bad.Validate(env.db); err == nil {
		t.Fatal("bad projection must fail")
	}
}

func TestViewSchema(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	sch, err := env.view.Schema(env.db)
	if err != nil {
		t.Fatal(err)
	}
	names := sch.Names()
	if len(names) != 4 || names[0] != "k" || names[2] != "r2_k" {
		t.Fatalf("schema names %v", names)
	}
	proj := &ViewDef{Name: "p", Relations: []string{"r1", "r2"},
		Conds:   env.view.Conds,
		Project: []engine.ColRef{{Input: 0, Col: 0}, {Input: 1, Col: 1}}}
	sch2, err := proj.Schema(env.db)
	if err != nil {
		t.Fatal(err)
	}
	if sch2.Arity() != 2 || sch2.Names()[0] != "k" || sch2.Names()[1] != "r2_v" {
		t.Fatalf("projected schema %v", sch2.Names())
	}
}

func TestPropQueryBasics(t *testing.T) {
	v := chainView("v", 3)
	q := AllBase(v)
	if !q.HasBase() || q.MaxDeltaHi() != 0 {
		t.Fatal("all-base query")
	}
	q2 := q.WithDelta(1, 3, 9)
	if q.Pos[1].Delta {
		t.Fatal("WithDelta must not mutate the receiver")
	}
	if !q2.Pos[1].Delta || q2.MaxDeltaHi() != 9 {
		t.Fatal("delta position")
	}
	q3 := q2.Negated()
	if q3.Sign != -1 || q2.Sign != 1 {
		t.Fatal("negation")
	}
	if q3.String()[:len("−")] != "−" {
		t.Fatalf("negated string: %s", q3.String())
	}
	all := q.WithDelta(0, 0, 5).WithDelta(1, 0, 5).WithDelta(2, 0, 5)
	if all.HasBase() {
		t.Fatal("all-delta query has no base")
	}
}

func TestRealizability(t *testing.T) {
	v := chainView("v", 3)
	// R^1 ⋈ ΔR^2(a,b] ⋈ R^3 is realizable only when both base tables are
	// seen at a time >= b.
	q := AllBase(v).WithDelta(1, 2, 5)
	if !q.Realizable([]relalg.CSN{7, 0, 7}, 7) {
		t.Fatal("should be realizable at 7")
	}
	if q.Realizable([]relalg.CSN{7, 0, 8}, 8) {
		t.Fatal("mismatched base times")
	}
	if q.Realizable([]relalg.CSN{4, 0, 4}, 4) {
		t.Fatal("window not closed at 4")
	}
	// All-delta queries are realizable at any time after the windows close.
	qa := AllBase(v).WithDelta(0, 0, 3).WithDelta(1, 0, 3).WithDelta(2, 0, 3)
	if !qa.Realizable([]relalg.CSN{0, 0, 0}, 3) || !qa.Realizable([]relalg.CSN{0, 0, 0}, 99) {
		t.Fatal("all-delta realizability")
	}
}

// TestComputeDeltaEq3Shape verifies the Figure 4 / Equation 3 structure for
// V = R1 ⋈ R2 under snapshot execution: two forward queries and one
// compensation query (position 0 reads everything at t_new and needs no
// correction; position 1's compensation subtracts the Δ1 ⊗ Δ2 overlap).
func TestComputeDeltaEq3Shape(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	env.exec.SkipEmptyWindows = false
	var trace []TraceEntry
	env.exec.OnQuery = func(e TraceEntry) { trace = append(trace, e) }

	env.insert("r1", 1)
	env.insert("r2", 1)
	b := env.insert("r1", 2)

	if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0}, b); err != nil {
		t.Fatal(err)
	}
	var fwd, comp int
	for _, e := range trace {
		if e.Kind == KindForward {
			fwd++
		} else {
			comp++
		}
	}
	if fwd != 2 || comp != 1 {
		t.Fatalf("Eq.3 should yield 2 forward + 1 compensation query, got %d + %d", fwd, comp)
	}
	st := env.exec.Stats()
	if st.ForwardQueries != 2 || st.CompensationQueries != 1 || st.MaxDepth != 1 {
		t.Fatalf("stats: %+v", st)
	}
	env.checkTimedDelta(0, b)
}

// TestMinTimestampDeleteScenario reproduces the Section 3.3 deletion
// example: r1r2 in the view, r1 deleted at t_a, r2 deleted at t_b > t_a;
// the net view delta must delete the join tuple at t_a.
func TestMinTimestampDeleteScenario(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	env.insert("r1", 7)
	t0 := env.insert("r2", 7)
	ta := env.delete("r1", 7)
	tb := env.delete("r2", 7)

	if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{t0, t0}, tb); err != nil {
		t.Fatal(err)
	}
	net := relalg.NetEffect(env.dest.Window(t0, ta))
	if net.Len() != 1 || net.Rows[0].Count != -1 {
		t.Fatalf("deletion must appear at t_a=%d: %s", ta, net)
	}
	if relalg.NetEffect(env.dest.Window(ta, tb)).Len() != 0 {
		t.Fatal("nothing should change in (t_a, t_b]")
	}
	env.checkTimedDelta(t0, tb)
}

// TestMinTimestampInsertScenario reproduces the Section 3.3 insertion
// example: x1 inserted at t_a, x2 at t_b; the join tuple must appear at t_b
// (the max, produced by the min-rule cancellation).
func TestMinTimestampInsertScenario(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	ta := env.insert("r1", 5)
	tb := env.insert("r2", 5)

	if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0}, tb); err != nil {
		t.Fatal(err)
	}
	if relalg.NetEffect(env.dest.Window(0, ta)).Len() != 0 {
		t.Fatal("nothing should appear at or before t_a")
	}
	net := relalg.NetEffect(env.dest.Window(ta, tb))
	if net.Len() != 1 || net.Rows[0].Count != 1 {
		t.Fatalf("insertion must appear in (t_a, t_b]: %s", net)
	}
	env.checkTimedDelta(0, tb)
}

// TestComputeDeltaOracle is the Theorem 4.1 oracle: for random histories
// over 2- and 3-way views, ComputeDelta produces a timed delta table.
func TestComputeDeltaOracle(t *testing.T) {
	for _, n := range []int{2, 3} {
		for seed := int64(0); seed < 3; seed++ {
			env := newEnv(t, chainView("v", n))
			r := rand.New(rand.NewSource(seed))
			last := env.randomHistory(r, 40, 4)
			if err := env.exec.ComputeDelta(AllBase(env.view), make([]relalg.CSN, n), last); err != nil {
				t.Fatal(err)
			}
			env.checkTimedDelta(0, last)
		}
	}
}

// TestComputeDeltaAsyncWithConcurrentUpdates runs ComputeDelta for an old
// interval while new updates keep arriving — the asynchrony of Section 3.2.
func TestComputeDeltaAsyncWithConcurrentUpdates(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(11))
	mid := env.randomHistory(r, 25, 4)

	// Interleave: more updates arrive while we propagate (0, mid].
	done := make(chan struct{})
	go func() {
		defer close(done)
		r2 := rand.New(rand.NewSource(12))
		env.randomHistory(r2, 25, 4)
	}()
	if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0}, mid); err != nil {
		t.Fatal(err)
	}
	<-done
	env.checkTimedDelta(0, mid)
}

// TestPropagateOracle is the Theorem 4.2 oracle.
func TestPropagateOracle(t *testing.T) {
	for _, n := range []int{2, 3} {
		env := newEnv(t, chainView("v", n))
		r := rand.New(rand.NewSource(21))
		last := env.randomHistory(r, 40, 4)
		p := NewPropagator(env.exec, 0, FixedInterval(5))
		drainPropagate(t, p, last)
		if p.HWM() < last {
			t.Fatalf("hwm %d < %d", p.HWM(), last)
		}
		env.checkTimedDelta(0, last)
	}
}

// TestRollingOracle is the Theorem 4.3 oracle: rolling propagation with
// unequal per-relation intervals over random histories, for 2-, 3-, and
// 4-way views.
func TestRollingOracle(t *testing.T) {
	cases := []struct {
		n         int
		intervals []relalg.CSN
		ops       int
	}{
		{2, []relalg.CSN{3, 7}, 50},
		{2, []relalg.CSN{1, 13}, 50},
		{3, []relalg.CSN{2, 5, 11}, 45},
		{4, []relalg.CSN{3, 4, 7, 2}, 30},
	}
	for ci, c := range cases {
		for seed := int64(0); seed < 2; seed++ {
			env := newEnv(t, chainView("v", c.n))
			r := rand.New(rand.NewSource(100*int64(ci) + seed))
			last := env.randomHistory(r, c.ops, 4)
			rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(c.intervals...))
			drainRolling(t, rp, last)
			if rp.HWM() < last {
				t.Fatalf("case %d: hwm %d < %d", ci, rp.HWM(), last)
			}
			env.checkTimedDelta(0, last)
		}
	}
}

// TestRollingOracleWithIndexes re-runs the Theorem 4.3 oracle with hash
// indexes on the join columns, exercising the index-nested-loop path of
// the propagation-query executor.
func TestRollingOracleWithIndexes(t *testing.T) {
	env := newEnv(t, chainView("v", 3))
	for _, table := range env.view.Relations {
		if _, err := env.db.CreateIndex(table, "k"); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(800))
	last := env.randomHistory(r, 45, 4)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(3, 8, 5))
	drainRolling(t, rp, last)
	env.checkTimedDelta(0, last)
	if env.db.Stats().IndexProbes == 0 {
		t.Fatal("expected index probes during propagation")
	}
}

// TestRollingOracleMultiOpTransactions drives transactions that change
// several rows (possibly in several tables) per commit, so delta rows share
// timestamps.
func TestRollingOracleMultiOpTransactions(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		env := newEnv(t, chainView("v", 3))
		r := rand.New(rand.NewSource(700 + seed))
		var last relalg.CSN
		for i := 0; i < 20; i++ {
			last = env.multiOpTxn(r, 1+r.Intn(5), 4)
		}
		rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 7, 3))
		drainRolling(t, rp, last)
		env.checkTimedDelta(0, last)
	}
}

// TestRollingOracleNoSkip disables the empty-window optimization to
// exercise the full compensation machinery.
func TestRollingOracleNoSkip(t *testing.T) {
	env := newEnv(t, chainView("v", 3))
	env.exec.SkipEmptyWindows = false
	r := rand.New(rand.NewSource(31))
	last := env.randomHistory(r, 30, 3)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 9, 4))
	drainRolling(t, rp, last)
	env.checkTimedDelta(0, last)
}

// TestRollingConcurrentWithWriters runs the rolling propagator concurrently
// with the update stream.
func TestRollingConcurrentWithWriters(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(3, 8))
	// Drive Step on a separate goroutine the way the scheduler does:
	// event-free polling here, since the test owns both sides.
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				errs <- nil
				return
			default:
			}
			if err := rp.Step(); err != nil {
				if errors.Is(err, ErrNoProgress) {
					time.Sleep(50 * time.Microsecond)
					continue
				}
				errs <- err
				return
			}
		}
	}()

	r := rand.New(rand.NewSource(41))
	last := env.randomHistory(r, 60, 5)
	// Let the propagator catch up, then stop it.
	for rp.HWM() < last {
	}
	close(stop)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	env.checkTimedDelta(0, last)
}

// TestRollingViewWithProjectionAndResidual exercises a view with selection
// and projection through the whole pipeline.
func TestRollingViewWithProjectionAndResidual(t *testing.T) {
	v := chainView("v", 2)
	v.Residual = relalg.ColConst{Col: 0, Op: relalg.OpLE, Val: tuple.Int(2)} // k <= 2
	v.Project = []engine.ColRef{{Input: 0, Col: 0}, {Input: 1, Col: 1}}
	env := newEnv(t, v)
	r := rand.New(rand.NewSource(51))
	last := env.randomHistory(r, 40, 4)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(4, 6))
	drainRolling(t, rp, last)
	env.checkTimedDelta(0, last)
}

// TestHWMTracksTcomp verifies the Figure 9 bookkeeping: after R1 forward
// queries outpace R2, the HWM is held back at the lowest ledger boundary
// the lagging relation still has pending.
func TestHWMTracksTcomp(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	env.exec.SkipEmptyWindows = false
	for i := 0; i < 12; i++ {
		env.insert("r1", int64(i%3))
		env.insert("r2", int64(i%3))
	}
	if err := env.cap.WaitProgress(env.db.LastCSN()); err != nil {
		t.Fatal(err)
	}
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 2))
	if rp.HWM() != 0 {
		t.Fatal("initial hwm")
	}
	// One forward step for r1: it advances past the first shared cell, but
	// r2 has not processed that cell yet, so the HWM stays 0.
	if err := rp.Step(); err != nil {
		t.Fatal(err)
	}
	if got := rp.TFwd()[0]; got != 2 {
		t.Fatalf("tfwd[0] = %d", got)
	}
	if rp.HWM() != 0 {
		t.Fatalf("hwm should be pinned by r2's pending cell, got %d", rp.HWM())
	}
	// Step r2 through the same cell: its slice compensates the overlap with
	// r1's, completing the cell and releasing the HWM to its upper bound.
	if err := rp.Step(); err != nil {
		t.Fatal(err)
	}
	if got := rp.HWM(); got != 2 {
		t.Fatalf("hwm after both slices of cell (0,2] = %d, want 2", got)
	}
	last := env.db.LastCSN()
	drainRolling(t, rp, last)
	if rp.HWM() < last {
		t.Fatalf("hwm %d < %d after drain", rp.HWM(), last)
	}
	env.checkTimedDelta(0, last)
}

// TestHWMMonotonicQuick is a property test: under random interval policies
// and random histories, the rolling high-water mark and every tfwd only
// move forward.
func TestHWMMonotonicQuick(t *testing.T) {
	f := func(seed int64, d1Raw, d2Raw uint8) bool {
		env := newEnv(t, chainView("v", 2))
		r := rand.New(rand.NewSource(seed))
		last := env.randomHistory(r, 25, 3)
		d1 := relalg.CSN(d1Raw%9) + 1
		d2 := relalg.CSN(d2Raw%9) + 1
		rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(d1, d2))
		prevHWM := rp.HWM()
		prevT := rp.TFwd()
		for rp.HWM() < last {
			if err := rp.Step(); err != nil {
				if errors.Is(err, ErrNoProgress) {
					continue
				}
				t.Log(err)
				return false
			}
			if h := rp.HWM(); h < prevHWM {
				t.Logf("hwm went backwards: %d -> %d", prevHWM, h)
				return false
			} else {
				prevHWM = h
			}
			cur := rp.TFwd()
			for i := range cur {
				if cur[i] < prevT[i] {
					t.Logf("tfwd[%d] went backwards", i)
					return false
				}
			}
			prevT = cur
		}
		env.checkTimedDelta(0, last)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestRollingOracleHeavy is a larger randomized sweep, skipped in -short
// runs.
func TestRollingOracleHeavy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy oracle sweep")
	}
	for seed := int64(0); seed < 4; seed++ {
		env := newEnv(t, chainView("v", 3))
		r := rand.New(rand.NewSource(9000 + seed))
		last := env.randomHistory(r, 70, 5)
		d := []relalg.CSN{relalg.CSN(1 + r.Intn(9)), relalg.CSN(1 + r.Intn(9)), relalg.CSN(1 + r.Intn(9))}
		rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(d...))
		drainRolling(t, rp, last)
		env.checkTimedDelta(0, last)
	}
}

func TestPropagatorStepNoProgress(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	p := NewPropagator(env.exec, 0, FixedInterval(5))
	if err := p.Step(); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
	rp := NewRollingPropagator(env.exec, 0, FixedInterval(5))
	if err := rp.Step(); !errors.Is(err, ErrNoProgress) {
		t.Fatalf("want ErrNoProgress, got %v", err)
	}
}
