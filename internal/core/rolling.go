package core

import (
	"sync"

	"repro/internal/relalg"
)

// RollingPropagator is the rolling join propagation process of Figure 10.
// Unlike Propagate it advances each relation independently — n tuning
// knobs instead of one — so a hot relation can be propagated in small,
// cheap steps while a cold one is batched.
//
// The timestamp axis is cut into a single shared sequence of boundaries
// b_0 < b_1 < ... (b_0 = tInitial); cell c is the interval (b_c, b_{c+1}].
// Every relation walks the same cells, each at its own pace, and a Step
// executes exactly the position-i slice of the per-cell inclusion-
// exclusion expansion (ComputeDelta over the cell), with every query
// reading the base tables through the read view at the cell's upper
// boundary. Executed time equals intended time by construction, so a
// cell's contribution is complete — with exact timestamps — once all n
// position slices for it have run, regardless of the order relations
// reach it. The high-water mark is therefore simply the lowest boundary
// any relation still has pending.
//
// A new boundary is minted only when every relation has exhausted the
// existing ones; the minting relation's interval policy sets its width
// (clamped to capture progress), which is what makes the per-relation
// interval a genuine knob: whichever relation leads decides how finely
// the axis is cut for everyone, and small intervals mean small, short
// propagation transactions.
//
// Earlier revisions let each relation cut its own windows and deferred
// compensation through per-relation query lists (CompTime/ComInterval).
// With three or more relations that deferral can become cyclic — each
// position's window ends before the next change it would need to pair
// with, so a cross-relation change pair is never delivered at its
// effective time (the star-schema divergence repro). Shared cells make
// the deferral graph empty: pair delivery is resolved within one cell by
// the static expansion, never across steps.
//
// Step is intended for a single driver goroutine; HWM, TFwd, and Steps
// may be called concurrently from the apply process (the two processes
// are independent, Section 1).
type RollingPropagator struct {
	exec     *Executor
	interval IntervalPolicy

	mu sync.Mutex
	// bounds is the shared boundary sequence, strictly increasing;
	// bounds[0] is the low edge of the oldest unfinished cell. Fully
	// processed prefixes are compacted away.
	bounds []relalg.CSN
	// cell[i] indexes the next cell relation i will process: relation i
	// has completed every cell below cell[i], so its forward progress
	// tfwd[i] is bounds[cell[i]].
	cell  []int
	steps int64
}

// NewRollingPropagator creates a RollingPropagate process starting at
// tInitial for every relation.
func NewRollingPropagator(exec *Executor, tInitial relalg.CSN, interval IntervalPolicy) *RollingPropagator {
	n := exec.view.N()
	return &RollingPropagator{
		exec:     exec,
		interval: interval,
		bounds:   []relalg.CSN{tInitial},
		cell:     make([]int, n),
	}
}

// TFwd returns a copy of the per-relation forward progress: relation i's
// share of the view delta is complete through TFwd()[i].
func (r *RollingPropagator) TFwd() []relalg.CSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]relalg.CSN, len(r.cell))
	for i, c := range r.cell {
		out[i] = r.bounds[c]
	}
	return out
}

// HWM returns the view delta high-water mark: min over relations of their
// forward progress. Every cell below it has been processed by every
// relation, so the view delta restricted to (tInitial, HWM] is a timed
// delta table (Theorem 4.3).
func (r *RollingPropagator) HWM() relalg.CSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bounds[r.minCellLocked()]
}

// minCellLocked returns the lowest next-cell index. Caller holds mu.
func (r *RollingPropagator) minCellLocked() int {
	m := r.cell[0]
	for _, c := range r.cell[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// Steps returns the number of completed forward steps.
func (r *RollingPropagator) Steps() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// compactLocked drops boundary prefixes every relation has passed, so the
// ledger stays proportional to the propagation spread rather than the
// history length. Caller holds mu.
func (r *RollingPropagator) compactLocked() {
	m := r.minCellLocked()
	if m == 0 {
		return
	}
	r.bounds = r.bounds[m:]
	for i := range r.cell {
		r.cell[i] -= m
	}
}

// Step performs one iteration: it picks the relation with the least
// forward progress (lowest index on ties), mints a new cell from its
// interval policy if it has exhausted the shared ledger, and executes
// that relation's slice of the cell's expansion — the forward query
// Δ^i over the cell joined with all other relations at the cell's upper
// boundary, plus the compensation subtree re-expressing relations left of
// i at the lower boundary. It returns ErrNoProgress when capture has
// nothing new for that relation.
func (r *RollingPropagator) Step() error {
	r.mu.Lock()
	r.compactLocked()
	i := 0
	for j := 1; j < len(r.cell); j++ {
		if r.cell[j] < r.cell[i] {
			i = j
		}
	}
	c := r.cell[i]
	if c+1 >= len(r.bounds) {
		// Every relation has exhausted the ledger; mint the next boundary
		// from relation i's interval, clamped to capture progress.
		delta := r.interval(i)
		if delta <= 0 {
			delta = 1
		}
		last := r.bounds[len(r.bounds)-1]
		next := last + delta
		if progress := r.exec.src.Progress(); next > progress {
			next = progress
		}
		if next <= last {
			r.mu.Unlock()
			return ErrNoProgress
		}
		r.bounds = append(r.bounds, next)
	}
	w, hi := r.bounds[c], r.bounds[c+1]
	r.mu.Unlock()

	// If the cell's window on relation i is empty, the slice's forward
	// query and its whole compensation subtree vanish identically.
	if r.exec.SkipEmptyWindows {
		if err := r.exec.src.WaitProgress(hi); err != nil {
			return err
		}
		if r.exec.windowEmpty(i, w, hi) {
			r.exec.noteSkipped()
			r.mu.Lock()
			r.cell[i]++
			r.steps++
			r.mu.Unlock()
			return nil
		}
	}

	// Position i's slice of ComputeDelta(V, [w,...,w], hi): the forward
	// query executes through the read view at hi, and compensation
	// re-expresses every relation left of i at w. Delta windows are
	// immutable once capture passes hi, so slices of the same cell may run
	// in any order (and concurrently with slices of other cells).
	tauOld := make([]relalg.CSN, len(r.cell))
	for j := range tauOld {
		tauOld[j] = w
	}
	// With a partitioned engine the step decomposes into independent
	// per-slice jobs (heavy keys plus light hash partitions) that fan out
	// to the scheduler pool and merge under the shared boundary ledger:
	// cell[i] advances once, below, after every slice has completed.
	if specs := r.exec.sliceSpecs(i); len(specs) > 0 {
		if err := r.exec.propagateSlices(AllBase(r.exec.view), tauOld, hi, i, specs); err != nil {
			return err
		}
	} else if err := r.exec.propagatePosition(AllBase(r.exec.view), tauOld, hi, 0, i); err != nil {
		return err
	}

	r.mu.Lock()
	r.cell[i]++
	r.steps++
	r.mu.Unlock()
	return nil
}

// There is deliberately no Run loop here: continuous propagation is
// scheduled by internal/sched (event-driven on capture notifications).
// When Step returns ErrNoProgress every relation sits at the last minted
// boundary, so HWM() equals that boundary and capture progress reaching
// HWM()+1 is exactly the event that unblocks the next Step.
