package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/relalg"
)

// qentry records a forward query that has not been fully compensated: the
// delta interval it covered on its relation's axis and its execution time.
// This is one element of the paper's querylist[i].
type qentry struct {
	lo, hi relalg.CSN // forward query's delta window (lo, hi]
	exec   relalg.CSN // execution (commit) time t_e
}

// RollingPropagator is the rolling join propagation process of Figure 10.
// Unlike Propagate it allows a different propagation interval per relation
// (n tuning knobs instead of one) and defers compensation for forward
// queries, merging it into the compensation work of later queries.
//
// Step is intended for a single driver goroutine; HWM, TFwd, and Steps may
// be called concurrently from the apply process (the two processes are
// independent, Section 1).
type RollingPropagator struct {
	exec     *Executor
	interval IntervalPolicy

	mu        sync.Mutex
	tfwd      []relalg.CSN // progress of forward queries per relation
	querylist [][]qentry   // uncompensated forward queries per relation
	steps     int64
}

// NewRollingPropagator creates a RollingPropagate process starting at
// tInitial for every relation.
func NewRollingPropagator(exec *Executor, tInitial relalg.CSN, interval IntervalPolicy) *RollingPropagator {
	n := exec.view.N()
	r := &RollingPropagator{
		exec:      exec,
		interval:  interval,
		tfwd:      make([]relalg.CSN, n),
		querylist: make([][]qentry, n),
	}
	for i := range r.tfwd {
		r.tfwd[i] = tInitial
	}
	return r
}

// TFwd returns a copy of the per-relation forward-query progress.
func (r *RollingPropagator) TFwd() []relalg.CSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]relalg.CSN, len(r.tfwd))
	copy(out, r.tfwd)
	return out
}

// tcompLocked returns the compensation progress for relation i: tfwd[i] if
// no forward query awaits compensation, else the start of the oldest one
// (PruneQueryLists' bookkeeping in Figure 10). Caller holds mu.
func (r *RollingPropagator) tcompLocked(i int) relalg.CSN {
	if len(r.querylist[i]) == 0 {
		return r.tfwd[i]
	}
	return r.querylist[i][0].lo
}

// HWM returns the view delta high-water mark: min over relations of
// tcomp[i]. The view delta restricted to (tInitial, HWM] is a timed delta
// table (Theorem 4.3).
func (r *RollingPropagator) HWM() relalg.CSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	hwm := r.tcompLocked(0)
	for i := 1; i < len(r.tfwd); i++ {
		if t := r.tcompLocked(i); t < hwm {
			hwm = t
		}
	}
	return hwm
}

// Steps returns the number of completed forward steps.
func (r *RollingPropagator) Steps() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.steps
}

// pruneQueryListsLocked drops forward queries whose execution time is at or
// below t: no future forward query can overlap them, so their compensation
// is complete. Caller holds mu.
func (r *RollingPropagator) pruneQueryListsLocked(t relalg.CSN) {
	for i := range r.querylist {
		ql := r.querylist[i]
		k := 0
		for k < len(ql) && ql[k].exec <= t {
			k++
		}
		r.querylist[i] = ql[k:]
	}
}

// compIntervalLocked implements ComInterval: the widest span starting at t
// over which the compensation region for relation i stays rectangular — it
// ends at the next execution time among the uncompensated forward queries
// of relations 1..i-1. Zero means unbounded. Caller holds mu.
func (r *RollingPropagator) compIntervalLocked(i int, t relalg.CSN) relalg.CSN {
	var next relalg.CSN
	for j := 0; j < i; j++ {
		for _, q := range r.querylist[j] {
			if q.exec > t && (next == 0 || q.exec < next) {
				next = q.exec
			}
		}
	}
	if next == 0 {
		return 0
	}
	return next - t
}

// compTimeLocked implements CompTime: how far back a compensation at slice
// t must reach on relation j's axis — the start of the earliest
// uncompensated forward query of R^j that covers slice t (execution time >
// t), or tfwd[j] if none does. Caller holds mu.
func (r *RollingPropagator) compTimeLocked(j int, t relalg.CSN) relalg.CSN {
	best := relalg.CSN(0)
	var bestExec relalg.CSN
	for _, q := range r.querylist[j] {
		if q.exec > t && (bestExec == 0 || q.exec < bestExec) {
			bestExec = q.exec
			best = q.lo
		}
	}
	if bestExec == 0 {
		return r.tfwd[j]
	}
	return best
}

// Step performs one iteration of Figure 10: a forward query for the
// relation with the smallest tfwd, followed by the compensation calls for
// its overlap with earlier relations' forward queries. It returns
// ErrNoProgress when capture has nothing new for that relation.
func (r *RollingPropagator) Step() error {
	r.mu.Lock()
	// Choose the base relation with the smallest tfwd (lowest index on ties).
	i := 0
	for j := 1; j < len(r.tfwd); j++ {
		if r.tfwd[j] < r.tfwd[i] {
			i = j
		}
	}
	r.pruneQueryListsLocked(r.tfwd[i])
	delta := r.interval(i)
	if delta <= 0 {
		delta = 1
	}
	w := r.tfwd[i]
	hi := w + delta
	r.mu.Unlock()

	if progress := r.exec.src.Progress(); hi > progress {
		hi = progress
	}
	if hi <= w {
		return ErrNoProgress
	}

	// If the window is empty, the forward query and all compensation for it
	// vanish identically; just advance.
	if r.exec.SkipEmptyWindows {
		if err := r.exec.src.WaitProgress(hi); err != nil {
			return err
		}
		if r.exec.windowEmpty(i, w, hi) {
			r.exec.noteSkipped()
			r.mu.Lock()
			r.tfwd[i] = hi
			r.steps++
			r.mu.Unlock()
			return nil
		}
	}

	// Forward query: R^1 ... R^{i-1} Δ^i_{(w,hi]} R^{i+1} ... R^n.
	fq := AllBase(r.exec.view).WithDelta(i, w, hi)
	tExec, err := r.exec.execute(fq, KindForward, 0)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if i < len(r.tfwd)-1 {
		r.querylist[i] = append(r.querylist[i], qentry{lo: w, hi: hi, exec: tExec})
	}
	if i == 0 {
		// No compensation for R^1's forward queries.
		r.tfwd[0] = hi
		r.steps++
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()

	// Compensate the forward query's overlap with forward queries of
	// relations 1..i-1, splitting the (w, hi] span into rectangular
	// sub-regions at their execution-time breakpoints.
	for {
		r.mu.Lock()
		lo := r.tfwd[i]
		if lo >= hi {
			r.steps++
			r.mu.Unlock()
			return nil
		}
		span := hi - lo
		if ci := r.compIntervalLocked(i, lo); ci > 0 && ci < span {
			span = ci
		}
		sub := lo + span
		tauD := make([]relalg.CSN, len(r.tfwd))
		for j := range tauD {
			if j < i {
				tauD[j] = r.compTimeLocked(j, lo)
			} else {
				tauD[j] = tExec
			}
		}
		r.mu.Unlock()

		if r.exec.SkipEmptyWindows && r.exec.windowEmpty(i, lo, sub) {
			// The sub-rectangle's delta factor is empty, so the whole
			// compensation region is identically empty.
			r.exec.noteSkipped()
		} else {
			cq := AllBase(r.exec.view).WithDelta(i, lo, sub).Negated()
			if err := r.exec.computeDelta(cq, tauD, tExec, 1); err != nil {
				return err
			}
		}
		r.mu.Lock()
		r.tfwd[i] = sub
		r.mu.Unlock()
	}
}

// Run loops Step until stop is closed, idling briefly when capture has no
// new work.
func (r *RollingPropagator) Run(stop <-chan struct{}) error {
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		err := r.Step()
		switch {
		case err == nil:
		case errors.Is(err, ErrNoProgress):
			select {
			case <-stop:
				return nil
			case <-time.After(time.Millisecond):
			}
		default:
			return err
		}
	}
}
