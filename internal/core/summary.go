package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// SummaryView maintains an aggregation over an SPJ view using the
// summary-delta method the paper cites ([8], Section 2): the timestamped
// SPJ view delta doubles as a summary delta. Each delta row (tuple, count,
// ts) contributes to its group: COUNT(*) moves by count, and each SUM(col)
// moves by count × value. Applying the delta window (t_mat, target] rolls
// the aggregates to exactly the target time — point-in-time refresh works
// for aggregates the same way it does for tuples.
//
// Supported aggregates: COUNT(*) (implicit) and SUM over numeric columns.
// AVG is derivable as SUM/COUNT. MIN/MAX are not maintainable from deltas
// alone (deletions need the base data) and are out of scope, as in [8].
type SummaryView struct {
	name    string
	groupBy []int // column indexes of the underlying view's output schema
	sums    []int // columns to SUM

	delta *engine.DeltaTable
	hwm   func() relalg.CSN

	mu      sync.RWMutex
	groups  map[string]*summaryGroup
	matTime relalg.CSN
}

type summaryGroup struct {
	key   tuple.Tuple
	count int64
	sums  []float64
}

// SummaryRow is one result row of the summary view.
type SummaryRow struct {
	Key   tuple.Tuple
	Count int64
	Sums  []float64
}

// NewSummaryView creates a summary view over the SPJ view delta. groupBy
// and sums are column indexes into the underlying view's output schema.
func NewSummaryView(name string, delta *engine.DeltaTable, hwm func() relalg.CSN, groupBy, sums []int) (*SummaryView, error) {
	arity := delta.Schema().Arity()
	for _, c := range append(append([]int{}, groupBy...), sums...) {
		if c < 0 || c >= arity {
			return nil, fmt.Errorf("core: summary %q: column %d out of range", name, c)
		}
	}
	return &SummaryView{
		name:    name,
		groupBy: groupBy,
		sums:    sums,
		delta:   delta,
		hwm:     hwm,
		groups:  make(map[string]*summaryGroup),
	}, nil
}

// MatTime returns the time the aggregates currently reflect.
func (sv *SummaryView) MatTime() relalg.CSN {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return sv.matTime
}

// RollTo advances the aggregates to target (point-in-time refresh for
// aggregates). Like the tuple-level applier it refuses to move backward or
// past the high-water mark.
func (sv *SummaryView) RollTo(target relalg.CSN) error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.rollLocked(target)
}

func (sv *SummaryView) rollLocked(target relalg.CSN) error {
	if target < sv.matTime {
		return fmt.Errorf("%w: at %d, asked for %d", ErrBackward, sv.matTime, target)
	}
	if target == sv.matTime {
		return nil
	}
	if h := sv.hwm(); target > h {
		return fmt.Errorf("%w: hwm %d, asked for %d", ErrBeyondHWM, h, target)
	}
	// Net the window per group first: individual delta rows (e.g.
	// compensations) may transiently drive a group negative even though the
	// window nets out, exactly as with tuple-level apply.
	win := sv.delta.Window(sv.matTime, target)
	net := make(map[string]*summaryGroup, len(win.Rows))
	for _, row := range win.Rows {
		key := row.Tuple.Project(sv.groupBy)
		ks := string(tuple.EncodeKey(nil, key))
		g := net[ks]
		if g == nil {
			g = &summaryGroup{key: key, sums: make([]float64, len(sv.sums))}
			net[ks] = g
		}
		g.count += row.Count
		for i, c := range sv.sums {
			g.sums[i] += float64(row.Count) * numeric(row.Tuple[c])
		}
	}
	for ks, d := range net {
		var cur int64
		if g := sv.groups[ks]; g != nil {
			cur = g.count
		}
		if cur+d.count < 0 {
			return fmt.Errorf("%w: group %s would become %d", ErrNegativeCount, d.key, cur+d.count)
		}
	}
	for ks, d := range net {
		g := sv.groups[ks]
		if g == nil {
			if d.count == 0 {
				continue
			}
			sv.groups[ks] = d
			continue
		}
		g.count += d.count
		for i := range g.sums {
			g.sums[i] += d.sums[i]
		}
		if g.count == 0 {
			delete(sv.groups, ks)
		}
	}
	sv.matTime = target
	return nil
}

// RollToHWM refreshes to the current high-water mark. The watermark is
// read and applied under one lock so concurrent refreshes compose.
func (sv *SummaryView) RollToHWM() (relalg.CSN, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	h := sv.hwm()
	if h <= sv.matTime {
		return sv.matTime, nil
	}
	return h, sv.rollLocked(h)
}

// Rows returns the groups sorted by key.
func (sv *SummaryView) Rows() []SummaryRow {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	keys := make([]string, 0, len(sv.groups))
	for k := range sv.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SummaryRow, 0, len(keys))
	for _, k := range keys {
		g := sv.groups[k]
		out = append(out, SummaryRow{Key: g.key, Count: g.count, Sums: append([]float64(nil), g.sums...)})
	}
	return out
}

// Groups returns the number of groups.
func (sv *SummaryView) Groups() int {
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	return len(sv.groups)
}

// numeric coerces a value to float64 for SUM (NULL contributes 0).
func numeric(v tuple.Value) float64 {
	switch v.Kind() {
	case tuple.KindInt:
		return float64(v.AsInt())
	case tuple.KindFloat:
		return v.AsFloat()
	case tuple.KindBool:
		if v.AsBool() {
			return 1
		}
		return 0
	default:
		return 0
	}
}
