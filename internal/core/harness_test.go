package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// testEnv wires an engine, a background log capture, a view with its delta
// table, and a shadow oracle that records the true view state at every CSN.
type testEnv struct {
	t    *testing.T
	db   *engine.DB
	cap  *capture.LogCapture
	view *ViewDef
	dest *engine.DeltaTable
	exec *Executor

	mu      sync.Mutex
	shadows []*relalg.Relation              // true base-table contents
	states  map[relalg.CSN]*relalg.Relation // true view state per CSN
	lastCSN relalg.CSN
}

// kvSchema is the (k, v) schema used by every test table.
func kvSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "k", Kind: tuple.KindInt},
		tuple.Column{Name: "v", Kind: tuple.KindInt},
	)
}

// chainView joins n tables pairwise on k: R1.k = R2.k = ... = Rn.k.
func chainView(name string, n int) *ViewDef {
	v := &ViewDef{Name: name}
	for i := 0; i < n; i++ {
		v.Relations = append(v.Relations, fmt.Sprintf("r%d", i+1))
		if i > 0 {
			v.Conds = append(v.Conds, engine.JoinCond{
				A: engine.ColRef{Input: i - 1, Col: 0},
				B: engine.ColRef{Input: i, Col: 0},
			})
		}
	}
	return v
}

func newEnv(t *testing.T, view *ViewDef) *testEnv {
	t.Helper()
	return newEnvCfg(t, view, engine.Config{})
}

// newEnvCfg is newEnv with an explicit engine configuration; partition
// tests use it to pin Partitions per subtest (an explicit 1 bypasses the
// ROLLINGJOIN_PARTITIONS environment hook).
func newEnvCfg(t *testing.T, view *ViewDef, cfg engine.Config) *testEnv {
	t.Helper()
	db, err := engine.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, name := range view.Relations {
		if _, err := db.CreateTable(name, kvSchema()); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateDelta(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := view.Validate(db); err != nil {
		t.Fatal(err)
	}
	schema, err := view.Schema(db)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := db.CreateStandaloneDelta("Δ"+view.Name, schema)
	if err != nil {
		t.Fatal(err)
	}
	c := capture.NewLogCapture(db)
	c.Start()
	env := &testEnv{
		t:       t,
		db:      db,
		cap:     c,
		view:    view,
		dest:    dest,
		exec:    NewExecutor(db, c, view, dest),
		shadows: make([]*relalg.Relation, view.N()),
		states:  map[relalg.CSN]*relalg.Relation{0: relalg.NewRelation(schema)},
	}
	for i := range env.shadows {
		env.shadows[i] = relalg.NewRelation(kvSchema())
	}
	return env
}

// relIndex maps a table name to its position in the view.
func (e *testEnv) relIndex(table string) int {
	for i, n := range e.view.Relations {
		if n == table {
			return i
		}
	}
	e.t.Fatalf("table %s not in view", table)
	return -1
}

// evalShadowView computes the true view contents from the shadow tables,
// mirroring the engine's left-deep evaluation.
func (e *testEnv) evalShadowView() *relalg.Relation {
	offsets := make([]int, len(e.shadows))
	pos := 0
	for i, s := range e.shadows {
		offsets[i] = pos
		pos += s.Schema.Arity()
	}
	result := e.shadows[0]
	used := make([]bool, len(e.view.Conds))
	for i := 1; i < len(e.shadows); i++ {
		var on []relalg.JoinOn
		for ci, c := range e.view.Conds {
			if used[ci] {
				continue
			}
			a, b := c.A, c.B
			if b.Input < a.Input {
				a, b = b, a
			}
			if b.Input == i && a.Input < i {
				on = append(on, relalg.JoinOn{LeftCol: offsets[a.Input] + a.Col, RightCol: b.Col})
				used[ci] = true
			}
		}
		result = relalg.Join(result, e.shadows[i], on)
	}
	if e.view.Residual != nil {
		result = relalg.Select(result, e.view.Residual)
	}
	if e.view.Project != nil {
		idx := make([]int, len(e.view.Project))
		for i, ref := range e.view.Project {
			idx[i] = offsets[ref.Input] + ref.Col
		}
		result = relalg.Project(result, idx, nil)
	}
	return result
}

// tupleFor builds the canonical tuple for key k so that any row matching k
// is identical (making delete-first deterministic for the oracle).
func tupleFor(k int64) tuple.Tuple {
	return tuple.Tuple{tuple.Int(k), tuple.Int(k * 10)}
}

// insert commits an insert of key k into table and records the oracle state.
func (e *testEnv) insert(table string, k int64) relalg.CSN {
	e.t.Helper()
	tx := e.db.Begin()
	if err := tx.Insert(table, tupleFor(k)); err != nil {
		tx.Abort()
		e.t.Fatal(err)
	}
	csn, err := tx.Commit()
	if err != nil {
		e.t.Fatal(err)
	}
	e.mu.Lock()
	i := e.relIndex(table)
	e.shadows[i] = e.shadows[i].Clone()
	e.shadows[i].Add(tupleFor(k), 1, relalg.NullTS)
	e.states[csn] = e.evalShadowView()
	if csn > e.lastCSN {
		e.lastCSN = csn
	}
	e.mu.Unlock()
	return csn
}

// delete commits a delete of one row with key k (if present) and records
// the oracle state.
func (e *testEnv) delete(table string, k int64) relalg.CSN {
	e.t.Helper()
	tx := e.db.Begin()
	n, err := tx.DeleteWhere(table, relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(k)}, 1)
	if err != nil {
		tx.Abort()
		e.t.Fatal(err)
	}
	csn, err := tx.Commit()
	if err != nil {
		e.t.Fatal(err)
	}
	e.mu.Lock()
	if n > 0 {
		i := e.relIndex(table)
		s := e.shadows[i].Clone()
		s.Add(tupleFor(k), -1, relalg.NullTS)
		e.shadows[i] = relalg.NetEffect(s)
	}
	e.states[csn] = e.evalShadowView()
	if csn > e.lastCSN {
		e.lastCSN = csn
	}
	e.mu.Unlock()
	return csn
}

// multiOpTxn commits one transaction performing several operations across
// the view's tables and records the oracle state at its commit CSN. All of
// a transaction's changes share one timestamp, exercising same-CSN
// grouping in the delta tables.
func (e *testEnv) multiOpTxn(r *rand.Rand, ops, keyDomain int) relalg.CSN {
	e.t.Helper()
	tx := e.db.Begin()
	type change struct {
		rel   int
		k     int64
		count int64
	}
	var changes []change
	for i := 0; i < ops; i++ {
		ri := r.Intn(e.view.N())
		table := e.view.Relations[ri]
		k := int64(r.Intn(keyDomain))
		if r.Intn(3) == 0 {
			n, err := tx.DeleteWhere(table, relalg.ColConst{Col: 0, Op: relalg.OpEQ, Val: tuple.Int(k)}, 1)
			if err != nil {
				tx.Abort()
				e.t.Fatal(err)
			}
			if n > 0 {
				changes = append(changes, change{ri, k, -1})
			}
		} else {
			if err := tx.Insert(table, tupleFor(k)); err != nil {
				tx.Abort()
				e.t.Fatal(err)
			}
			changes = append(changes, change{ri, k, 1})
		}
	}
	csn, err := tx.Commit()
	if err != nil {
		e.t.Fatal(err)
	}
	e.mu.Lock()
	for _, c := range changes {
		s := e.shadows[c.rel].Clone()
		s.Add(tupleFor(c.k), c.count, relalg.NullTS)
		e.shadows[c.rel] = relalg.NetEffect(s)
	}
	e.states[csn] = e.evalShadowView()
	if csn > e.lastCSN {
		e.lastCSN = csn
	}
	e.mu.Unlock()
	return csn
}

// randomHistory runs ops random single-op transactions over the view's
// tables with keys in [0, keyDomain).
func (e *testEnv) randomHistory(r *rand.Rand, ops, keyDomain int) relalg.CSN {
	var last relalg.CSN
	for i := 0; i < ops; i++ {
		table := e.view.Relations[r.Intn(e.view.N())]
		k := int64(r.Intn(keyDomain))
		if r.Intn(3) == 0 {
			last = e.delete(table, k)
		} else {
			last = e.insert(table, k)
		}
	}
	return last
}

// statesThrough returns the oracle state map with gaps filled (CSNs from
// propagation-query commits leave base tables unchanged) through hi.
func (e *testEnv) statesThrough(hi relalg.CSN) map[relalg.CSN]*relalg.Relation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[relalg.CSN]*relalg.Relation, int(hi)+1)
	cur := e.states[0]
	for t := relalg.CSN(0); t <= hi; t++ {
		if s, ok := e.states[t]; ok {
			cur = s
		}
		out[t] = cur
	}
	return out
}

// checkTimedDelta asserts the accumulated view delta is a timed delta table
// for the view over [lo, hi].
func (e *testEnv) checkTimedDelta(lo, hi relalg.CSN) {
	e.t.Helper()
	states := e.statesThrough(hi)
	delta := e.dest.All()
	if a, b, ok := relalg.IsTimedDeltaTable(delta, states, lo, hi); !ok {
		e.t.Fatalf("delta is not a timed delta table over [%d,%d]: first violation (%d,%d)\ndelta:\n%s",
			lo, hi, a, b, delta)
	}
}

// drainRolling steps the rolling propagator until its HWM reaches target.
func drainRolling(t *testing.T, rp *RollingPropagator, target relalg.CSN) {
	t.Helper()
	for rp.HWM() < target {
		err := rp.Step()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrNoProgress) {
			if rp.HWM() >= target {
				return
			}
			continue // capture catching up
		}
		t.Fatal(err)
	}
}

// drainPropagate steps the Figure 5 propagator until its HWM reaches target.
func drainPropagate(t *testing.T, p *Propagator, target relalg.CSN) {
	t.Helper()
	for p.HWM() < target {
		err := p.Step()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrNoProgress) {
			continue
		}
		t.Fatal(err)
	}
}
