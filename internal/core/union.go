package core

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/relalg"
)

// UnionView maintains V = V1 + V2 + ... + Vk where each branch is an SPJ
// view with the same output schema. Section 2 of the paper notes rolling
// propagation "can be extended easily to accommodate views involving
// union": because the multiset union of timed delta tables for the
// branches is a timed delta table for the union view, each branch runs its
// own rolling propagator into a shared view delta table, and the union's
// high-water mark is the minimum of the branch high-water marks.
type UnionView struct {
	Name     string
	Branches []*ViewDef

	dest  *engine.DeltaTable
	props []*RollingPropagator
}

// NewUnionView validates the branches (same arity output) and wires one
// rolling propagator per branch into a shared view delta table.
func NewUnionView(db *engine.DB, src capture.Source, name string, tInitial relalg.CSN,
	interval IntervalPolicy, branches ...*ViewDef) (*UnionView, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("core: union view %q needs at least one branch", name)
	}
	var arity int
	for i, b := range branches {
		if err := b.Validate(db); err != nil {
			return nil, err
		}
		s, err := b.Schema(db)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			arity = s.Arity()
		} else if s.Arity() != arity {
			return nil, fmt.Errorf("core: union view %q: branch %q arity %d != %d",
				name, b.Name, s.Arity(), arity)
		}
	}
	schema, err := branches[0].Schema(db)
	if err != nil {
		return nil, err
	}
	dest, err := db.CreateStandaloneDelta("Δ"+name, schema)
	if err != nil {
		return nil, err
	}
	uv := &UnionView{Name: name, Branches: branches, dest: dest}
	for _, b := range branches {
		exec := NewExecutor(db, src, b, dest)
		uv.props = append(uv.props, NewRollingPropagator(exec, tInitial, interval))
	}
	return uv, nil
}

// Dest returns the shared view delta table.
func (uv *UnionView) Dest() *engine.DeltaTable { return uv.dest }

// HWM returns the union view's high-water mark: the minimum over branches.
func (uv *UnionView) HWM() relalg.CSN {
	hwm := uv.props[0].HWM()
	for _, p := range uv.props[1:] {
		if h := p.HWM(); h < hwm {
			hwm = h
		}
	}
	return hwm
}

// Step advances the branch with the smallest high-water mark by one rolling
// step. It returns ErrNoProgress when no branch can advance.
func (uv *UnionView) Step() error {
	best := 0
	for i, p := range uv.props {
		if p.HWM() < uv.props[best].HWM() {
			best = i
		}
	}
	return uv.props[best].Step()
}

// Propagators exposes the per-branch rolling propagators (for tuning and
// inspection).
func (uv *UnionView) Propagators() []*RollingPropagator { return uv.props }
