package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// partitionCounts are the partition configurations the partition tests
// sweep: unsliced, a power of two, and a non-power-of-two count (7) that
// exercises the rowid shard-bits rounding and uneven hash spread.
var partitionCounts = []int{1, 4, 7}

// TestPartitionedConcurrentWritersOracle is the concurrent-writers oracle
// extended across partition counts: rolling propagation with slice fan-out
// races a writer goroutine, then the rolled range is checked against the
// timed-delta oracle. The small key domain promotes hot keys to heavy
// slices mid-run, so the classifier and key migration are exercised too.
func TestPartitionedConcurrentWritersOracle(t *testing.T) {
	for _, parts := range partitionCounts {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("parts=%d/workers=%d", parts, workers), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(parts*10 + workers)))
				env := newEnvCfg(t, starView(fmt.Sprintf("vp%d_%d", parts, workers), 2),
					engine.Config{Partitions: parts})
				env.exec.SetWorkers(workers)
				rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 5, 5))

				done := make(chan relalg.CSN)
				go func() {
					var last relalg.CSN
					for i := 0; i < 80; i++ {
						table := env.view.Relations[r.Intn(env.view.N())]
						k := int64(r.Intn(4))
						if r.Intn(3) == 0 {
							last = env.delete(table, k)
						} else {
							last = env.insert(table, k)
						}
					}
					done <- last
				}()

				var last relalg.CSN
				writerDone := false
				for !writerDone || rp.HWM() < last {
					select {
					case last = <-done:
						writerDone = true
					default:
					}
					if err := rp.Step(); err != nil && err != ErrNoProgress {
						t.Fatal(err)
					}
				}
				env.checkTimedDelta(0, rp.HWM())
			})
		}
	}
}

// TestPartitionedTimedDeltaQuickCheck runs randomized multi-op update
// histories through ComputeDelta at every partition count and checks the
// accumulated view delta against the timed-delta-table oracle
// (Definition 4.2). Multi-op transactions share one CSN, so same-timestamp
// rows split across delta shards must still reassemble into one boundary.
func TestPartitionedTimedDeltaQuickCheck(t *testing.T) {
	for _, parts := range partitionCounts {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(7000 + parts)))
			env := newEnvCfg(t, chainView(fmt.Sprintf("vq%d", parts), 3),
				engine.Config{Partitions: parts})
			env.exec.SetWorkers(2)
			var last relalg.CSN
			for i := 0; i < 15; i++ {
				last = env.multiOpTxn(r, 1+r.Intn(4), 6)
			}
			if err := env.cap.WaitProgress(last); err != nil {
				t.Fatal(err)
			}
			if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0, 0}, last); err != nil {
				t.Fatal(err)
			}
			env.checkTimedDelta(0, last)
		})
	}
}

// canonicalDelta renders a view delta table as a sorted multiset of
// (ts, tuple, count) lines — a partition-count-independent byte encoding.
// Slice fan-out may append a boundary's rows in any order (sequence
// numbers differ run to run), but the multiset of timed rows must not.
func canonicalDelta(d *engine.DeltaTable) []string {
	rel := d.All()
	lines := make([]string, 0, len(rel.Rows))
	var buf []byte
	for _, row := range rel.Rows {
		buf = tuple.EncodeRow(buf[:0], row.Tuple)
		lines = append(lines, fmt.Sprintf("%d|%d|%x", row.TS, row.Count, buf))
	}
	sort.Strings(lines)
	return lines
}

// TestPartitionTraceByteIdentical replays one seeded update history at
// every partition count and asserts the resulting view delta table is
// byte-identical to the single-partition trace: same timestamps, same
// tuples, same counts. DeleteWhere victim selection merges per-shard
// candidates by global sequence number, so the physical histories are
// identical and any divergence is a partitioning bug, not workload noise.
//
// The whole history commits before the drain, and the propagator runs
// unit intervals. Both matter for exact ts equality: propagation queries
// consume CSNs, so draining mid-history would shift later writer commits
// by however many queries each arm ran, and a boundary minted past the
// last writer CSN is clamped to capture progress — a value that depends
// on how many propagation commits capture has absorbed so far. With unit
// intervals every boundary lands on a writer CSN and the clamp never
// binds, making the boundary schedule a pure function of the history.
func TestPartitionTraceByteIdentical(t *testing.T) {
	var baseline []string
	for _, parts := range partitionCounts {
		t.Run(fmt.Sprintf("parts=%d", parts), func(t *testing.T) {
			r := rand.New(rand.NewSource(4242))
			env := newEnvCfg(t, starView("vtrace", 2), engine.Config{Partitions: parts})
			env.exec.SetWorkers(3)
			last := env.randomHistory(r, 60, 5)
			if err := env.cap.WaitProgress(last); err != nil {
				t.Fatal(err)
			}
			rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(1, 1, 1))
			drainRolling(t, rp, last)
			env.checkTimedDelta(0, rp.HWM())
			got := canonicalDelta(env.dest)
			if parts == 1 {
				baseline = got
				return
			}
			if len(got) != len(baseline) {
				t.Fatalf("parts=%d delta has %d rows, single-partition trace has %d",
					parts, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("parts=%d delta diverges from single-partition trace at row %d:\n got %s\nwant %s",
						parts, i, got[i], baseline[i])
				}
			}
		})
	}
}
