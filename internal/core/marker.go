package core

import (
	"fmt"

	"repro/internal/capture"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// This file implements the marker-table technique of Section 5: the
// paper's external propagate driver cannot observe commit sequence numbers
// directly, so it determines a propagation query's execution time by
// forcing the query's transaction to write a unique value into a special
// global table. The capture process picks the marker up from the log, and
// joining it with the unit-of-work table yields the transaction's CSN.
//
// The embedded engine returns the CSN from Commit directly, so the drivers
// do not need this machinery — it exists to reproduce the prototype's
// architecture faithfully and is exercised by tests and the demo.

// MarkerTableName is the special global table's name.
const MarkerTableName = "__rolling_marker"

// MarkerProbe issues marker writes and resolves their commit CSNs through
// the capture process's unit-of-work table.
type MarkerProbe struct {
	db   *engine.DB
	cap  *capture.LogCapture
	next int64
}

// NewMarkerProbe creates the marker table (with its delta table, so the
// capture process records marker writes) and returns a probe.
func NewMarkerProbe(db *engine.DB, cap *capture.LogCapture) (*MarkerProbe, error) {
	schema := tuple.NewSchema(tuple.Column{Name: "marker", Kind: tuple.KindInt})
	if _, err := db.CreateTable(MarkerTableName, schema); err != nil {
		return nil, err
	}
	if _, err := db.CreateDelta(MarkerTableName); err != nil {
		return nil, err
	}
	return &MarkerProbe{db: db, cap: cap}, nil
}

// Mark writes a unique marker row inside tx. The returned resolve function
// must be called after the transaction commits; it blocks until the capture
// process has consumed the commit record and then returns the transaction's
// CSN as recovered from the unit-of-work table.
func (m *MarkerProbe) Mark(tx *engine.Tx) (resolve func() (relalg.CSN, error), err error) {
	m.next++
	val := m.next
	if err := tx.Insert(MarkerTableName, tuple.Tuple{tuple.Int(val)}); err != nil {
		return nil, err
	}
	txid := tx.ID()
	return func() (relalg.CSN, error) {
		// Wait until capture has processed this transaction's commit: its
		// entry appears in the unit-of-work table. Capture progress is a
		// CSN, which we do not know yet — that is the whole point — so poll
		// the UOW by transaction id, advancing with capture progress.
		for {
			if e, ok := m.cap.UOW().ByTx(txid); ok {
				return e.CSN, nil
			}
			// Wait for at least one more commit to be captured.
			if err := m.cap.WaitProgress(m.cap.Progress() + 1); err != nil {
				return 0, fmt.Errorf("marker for tx %d never captured: %w", txid, err)
			}
		}
	}, nil
}
