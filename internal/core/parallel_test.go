package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/relalg"
)

// TestComputeDeltaParallelOracle runs ComputeDelta over randomized update
// histories with a multi-worker pool and checks the accumulated view delta
// against the timed-delta-table oracle (Definition 4.2). Independent
// position subtrees run concurrently; the result must be indistinguishable
// from sequential execution. Run under -race this also checks the
// executor's and engine's synchronization.
func TestComputeDeltaParallelOracle(t *testing.T) {
	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(workers)))
			env := newEnv(t, chainView("vpar", 3))
			env.exec.SetWorkers(workers)
			last := env.randomHistory(r, 40, 5)
			if err := env.cap.WaitProgress(last); err != nil {
				t.Fatal(err)
			}
			if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0, 0}, last); err != nil {
				t.Fatal(err)
			}
			env.checkTimedDelta(0, last)
		})
	}
}

// TestRollingParallelOracle drives rolling propagation (Figure 10) with a
// worker pool while writers keep committing, then checks the oracle over
// the rolled range.
func TestRollingParallelOracle(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	env := newEnv(t, chainView("vroll", 3))
	env.exec.SetWorkers(3)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 4, 8))
	var last relalg.CSN
	for round := 0; round < 6; round++ {
		last = env.randomHistory(r, 10, 4)
		if err := env.cap.WaitProgress(last); err != nil {
			t.Fatal(err)
		}
		drainRolling(t, rp, last)
	}
	env.checkTimedDelta(0, rp.HWM())
}

// starView builds fact ⋈ dim1 ⋈ ... ⋈ dimN on k (all conds against input 0).
func starView(name string, dims int) *ViewDef {
	v := &ViewDef{Name: name, Relations: []string{"r1"}}
	for i := 0; i < dims; i++ {
		v.Relations = append(v.Relations, fmt.Sprintf("r%d", i+2))
		v.Conds = append(v.Conds, engine.JoinCond{
			A: engine.ColRef{Input: 0, Col: 0},
			B: engine.ColRef{Input: i + 1, Col: 0},
		})
	}
	return v
}

// TestConcurrentWritersOracle drives rolling propagation over a star view
// while a writer goroutine keeps committing, then checks the timed-delta
// oracle over the rolled range — with and without a worker pool.
func TestConcurrentWritersOracle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for round := 0; round < 2; round++ {
			t.Run(fmt.Sprintf("workers=%d/round=%d", workers, round), func(t *testing.T) {
				r := rand.New(rand.NewSource(int64(round*10 + workers)))
				env := newEnv(t, starView(fmt.Sprintf("vc%d_%d", workers, round), 2))
				env.exec.SetWorkers(workers)
				rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(2, 5, 5))

				done := make(chan relalg.CSN)
				go func() {
					var last relalg.CSN
					for i := 0; i < 80; i++ {
						table := env.view.Relations[r.Intn(env.view.N())]
						k := int64(r.Intn(4))
						if r.Intn(3) == 0 {
							last = env.delete(table, k)
						} else {
							last = env.insert(table, k)
						}
					}
					done <- last
				}()

				var last relalg.CSN
				writerDone := false
				for !writerDone || rp.HWM() < last {
					select {
					case last = <-done:
						writerDone = true
					default:
					}
					if err := rp.Step(); err != nil && err != ErrNoProgress {
						t.Fatal(err)
					}
				}
				env.checkTimedDelta(0, rp.HWM())
			})
		}
	}
}

// TestParallelStatsConsistent checks that the executor's stats add up under
// a worker pool: every executed query is either forward or compensation,
// and rows/batches counters are non-negative and consistent with the trace.
func TestParallelStatsConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	env := newEnv(t, chainView("vstat", 2))
	env.exec.SetWorkers(4)
	env.exec.Metrics = NewExecMetrics()
	var traced int64
	env.exec.OnQuery = func(TraceEntry) { traced++ }
	last := env.randomHistory(r, 30, 4)
	if err := env.cap.WaitProgress(last); err != nil {
		t.Fatal(err)
	}
	if err := env.exec.ComputeDelta(AllBase(env.view), []relalg.CSN{0, 0}, last); err != nil {
		t.Fatal(err)
	}
	s := env.exec.Stats()
	executed := s.ForwardQueries + s.CompensationQueries
	if executed == 0 {
		t.Fatal("no queries executed")
	}
	if traced != executed {
		t.Fatalf("trace saw %d queries, stats say %d", traced, executed)
	}
	m := env.exec.Metrics
	if int64(m.Latency.Count()) != executed || int64(m.Rows.Count()) != executed {
		t.Fatalf("metrics samples %d/%d, want %d", m.Latency.Count(), m.Rows.Count(), executed)
	}
	if m.Rows.Sum() != s.RowsProduced {
		t.Fatalf("metrics rows %d != stats rows %d", m.Rows.Sum(), s.RowsProduced)
	}
	if m.Batches.Sum() != s.BatchesProduced {
		t.Fatalf("metrics batches %d != stats batches %d", m.Batches.Sum(), s.BatchesProduced)
	}
}
