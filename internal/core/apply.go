package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// Apply-side errors.
var (
	// ErrBeyondHWM is returned when a refresh target lies past the view
	// delta high-water mark: the delta for that window is not yet complete.
	ErrBeyondHWM = errors.New("core: refresh target beyond the view delta high-water mark")
	// ErrBackward is returned when a refresh target precedes the view's
	// current materialization time.
	ErrBackward = errors.New("core: refresh target precedes the materialized state")
	// ErrNegativeCount indicates a delta drove some view tuple's
	// multiplicity negative — an invariant violation that means the delta
	// was not a correct timed delta table.
	ErrNegativeCount = errors.New("core: view tuple count went negative")
)

// MaterializedView stores a view's tuples in net-effect form (one entry per
// distinct tuple with its multiplicity) together with the materialization
// time: the CSN whose committed database state the contents reflect.
type MaterializedView struct {
	name   string
	schema *tuple.Schema

	mu      sync.RWMutex
	rows    map[string]*mvEntry // ordered key encoding -> entry
	matTime relalg.CSN
}

type mvEntry struct {
	t     tuple.Tuple
	count int64
}

// NewMaterializedView creates an empty materialized view at time t.
func NewMaterializedView(name string, schema *tuple.Schema, t relalg.CSN) *MaterializedView {
	return &MaterializedView{name: name, schema: schema, rows: make(map[string]*mvEntry), matTime: t}
}

// Name returns the view name.
func (mv *MaterializedView) Name() string { return mv.name }

// Schema returns the view's output schema.
func (mv *MaterializedView) Schema() *tuple.Schema { return mv.schema }

// MatTime returns the current materialization time.
func (mv *MaterializedView) MatTime() relalg.CSN {
	mv.mu.RLock()
	defer mv.mu.RUnlock()
	return mv.matTime
}

// Cardinality returns the total multiset cardinality.
func (mv *MaterializedView) Cardinality() int64 {
	mv.mu.RLock()
	defer mv.mu.RUnlock()
	var n int64
	for _, e := range mv.rows {
		n += e.count
	}
	return n
}

// DistinctTuples returns the number of distinct tuples.
func (mv *MaterializedView) DistinctTuples() int {
	mv.mu.RLock()
	defer mv.mu.RUnlock()
	return len(mv.rows)
}

// AsRelation materializes the view contents in net-effect canonical form,
// sorted by tuple.
func (mv *MaterializedView) AsRelation() *relalg.Relation {
	mv.mu.RLock()
	defer mv.mu.RUnlock()
	keys := make([]string, 0, len(mv.rows))
	for k := range mv.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := relalg.NewRelation(mv.schema)
	for _, k := range keys {
		e := mv.rows[k]
		out.Add(e.t, e.count, relalg.NullTS)
	}
	return out
}

// load replaces the contents (initial materialization).
func (mv *MaterializedView) load(rel *relalg.Relation, t relalg.CSN) error {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	mv.rows = make(map[string]*mvEntry, rel.Len())
	for _, r := range relalg.NetEffect(rel).Rows {
		if r.Count < 0 {
			return fmt.Errorf("%w: %s = %d at load", ErrNegativeCount, r.Tuple, r.Count)
		}
		mv.rows[string(tuple.EncodeKey(nil, r.Tuple))] = &mvEntry{t: r.Tuple, count: r.Count}
	}
	mv.matTime = t
	return nil
}

// applyRows folds delta rows into the stored state and advances the
// materialization time. It is all-or-nothing: on a negative-count violation
// the state is left unchanged.
func (mv *MaterializedView) applyRows(rows []relalg.Row, t relalg.CSN) error {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	// Consolidate first so transient negatives inside a window don't trip
	// the invariant check.
	net := make(map[string]*mvEntry, len(rows))
	for _, r := range rows {
		k := string(tuple.EncodeKey(nil, r.Tuple))
		e := net[k]
		if e == nil {
			e = &mvEntry{t: r.Tuple}
			net[k] = e
		}
		e.count += r.Count
	}
	for k, d := range net {
		var cur int64
		if e := mv.rows[k]; e != nil {
			cur = e.count
		}
		if cur+d.count < 0 {
			return fmt.Errorf("%w: %s would become %d", ErrNegativeCount, d.t, cur+d.count)
		}
	}
	for k, d := range net {
		if d.count == 0 {
			continue
		}
		e := mv.rows[k]
		if e == nil {
			mv.rows[k] = &mvEntry{t: d.t, count: d.count}
			continue
		}
		e.count += d.count
		if e.count == 0 {
			delete(mv.rows, k)
		}
	}
	mv.matTime = t
	return nil
}

// Materialize computes the view's contents from a read view at the current
// stable CSN and returns the loaded materialized view; its materialization
// time is that snapshot's CSN. No table locks are taken: writers commit
// freely while the initial state is computed.
func Materialize(db *engine.DB, view *ViewDef) (*MaterializedView, error) {
	snap, err := db.OpenSnapshot(relalg.NullTS)
	if err != nil {
		return nil, err
	}
	asOf := snap.AsOf()
	snap.Close()
	return MaterializeAt(db, view, asOf)
}

// MaterializeAt is Materialize at an explicit point in time. Cascaded view
// definitions use it: the caller picks a stable CSN, catches every upstream
// view's high-water mark up to it (so derived inputs are complete at that
// time), and materializes all levels at the same instant.
func MaterializeAt(db *engine.DB, view *ViewDef, asOf relalg.CSN) (*MaterializedView, error) {
	schema, err := view.Schema(db)
	if err != nil {
		return nil, err
	}
	q := AllBase(view).EngineQuery()
	q.AsOf = asOf
	tx := db.Begin()
	rel, err := tx.EvalQuery(q)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	mv := NewMaterializedView(view.Name, schema, asOf)
	if err := mv.load(rel, asOf); err != nil {
		return nil, err
	}
	return mv, nil
}

// MaterializeRelation loads an already computed relation as a
// materialized view at time t. The incremental aggregate uses it: the
// operator seeds its group state and initial output rows in one pass, so
// no second query is needed.
func MaterializeRelation(name string, schema *tuple.Schema, rel *relalg.Relation, t relalg.CSN) (*MaterializedView, error) {
	mv := NewMaterializedView(name, schema, t)
	if err := mv.load(rel, t); err != nil {
		return nil, err
	}
	return mv, nil
}

// Applier is the apply driver of Figure 11: it rolls a materialized view
// forward by applying timestamped view delta windows, independently of the
// propagation process. Roll operations are serialized internally, so the
// scheduler's apply job and on-demand Refresh calls from any number of
// goroutines compose without double-applying a window.
type Applier struct {
	mv    *MaterializedView
	delta *engine.DeltaTable
	hwm   func() relalg.CSN

	mu           sync.Mutex // serializes roll operations
	rowsApplied  atomic.Int64
	refreshCount atomic.Int64
}

// NewApplier creates an apply driver over the view delta. hwm reports the
// propagation process's current high-water mark.
func NewApplier(mv *MaterializedView, delta *engine.DeltaTable, hwm func() relalg.CSN) *Applier {
	return &Applier{mv: mv, delta: delta, hwm: hwm}
}

// View returns the materialized view.
func (a *Applier) View() *MaterializedView { return a.mv }

// RowsApplied returns the cumulative number of delta rows applied.
func (a *Applier) RowsApplied() int64 { return a.rowsApplied.Load() }

// Refreshes returns the number of completed refresh operations.
func (a *Applier) Refreshes() int64 { return a.refreshCount.Load() }

// RollTo performs point-in-time refresh: it advances the materialized view
// from its current materialization time to target, which may be any CSN up
// to the high-water mark ("roll the materialized view forward to any time
// point up to the view delta's high-water mark").
func (a *Applier) RollTo(target relalg.CSN) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.rollLocked(target)
}

func (a *Applier) rollLocked(target relalg.CSN) error {
	if err := fault.Inject(fault.PointApply); err != nil {
		return err
	}
	cur := a.mv.MatTime()
	if target < cur {
		return fmt.Errorf("%w: at %d, asked for %d", ErrBackward, cur, target)
	}
	if target == cur {
		return nil
	}
	if hwm := a.hwm(); target > hwm {
		return fmt.Errorf("%w: hwm %d, asked for %d", ErrBeyondHWM, hwm, target)
	}
	win := a.delta.Window(cur, target)
	if err := a.mv.applyRows(win.Rows, target); err != nil {
		return err
	}
	a.rowsApplied.Add(int64(win.Len()))
	a.refreshCount.Add(1)
	return nil
}

// RollToHWM refreshes the view to the current high-water mark and returns
// the time reached. The watermark is read and applied under one lock, so
// concurrent callers cannot race a stale read into ErrBackward.
func (a *Applier) RollToHWM() (relalg.CSN, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hwm := a.hwm()
	if cur := a.mv.MatTime(); hwm <= cur {
		return cur, nil
	}
	return hwm, a.rollLocked(hwm)
}

// PruneApplied discards view delta rows at or below the materialization
// time; they can never be needed again. Returns the number pruned.
func (a *Applier) PruneApplied() int {
	return a.delta.PruneThrough(a.mv.MatTime())
}
