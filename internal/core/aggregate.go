package core

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/relalg"
	"repro/internal/tuple"
)

// AggFunc identifies an aggregate function.
type AggFunc uint8

// The aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*)
	AggSum                  // SUM(col)
	AggAvg                  // AVG(col)
	AggMin                  // MIN(col)
	AggMax                  // MAX(col)
)

// String returns the SQL spelling.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(f))
}

// AggCol is one aggregate output column.
type AggCol struct {
	Func AggFunc
	// Col is the source column aggregated (ignored for AggCount).
	Col int
	// Name is the output column name.
	Name string
}

// AggregateDef defines an incremental GROUP BY aggregate over one source
// relation — a base table or another maintained view.
type AggregateDef struct {
	Name string
	// Source is the relation aggregated.
	Source string
	// GroupBy lists the source columns forming the group key.
	GroupBy []int
	// Aggs are the aggregate output columns.
	Aggs []AggCol
}

// OutSchema computes the aggregate's output schema from the source
// schema: the group columns (keeping their source names and kinds)
// followed by the aggregate columns — COUNT is an integer, SUM and AVG
// are floats (numeric coercion), MIN and MAX keep the source column's
// kind.
func (d *AggregateDef) OutSchema(src *tuple.Schema) (*tuple.Schema, error) {
	cols := make([]tuple.Column, 0, len(d.GroupBy)+len(d.Aggs))
	for _, c := range d.GroupBy {
		if c < 0 || c >= src.Arity() {
			return nil, fmt.Errorf("core: aggregate %q: group column %d out of range", d.Name, c)
		}
		cols = append(cols, src.Columns[c])
	}
	for _, a := range d.Aggs {
		if a.Name == "" {
			return nil, fmt.Errorf("core: aggregate %q: aggregate column without a name", d.Name)
		}
		kind := tuple.KindFloat
		switch a.Func {
		case AggCount:
			kind = tuple.KindInt
		case AggSum, AggAvg:
			kind = tuple.KindFloat
		case AggMin, AggMax:
			if a.Col < 0 || a.Col >= src.Arity() {
				return nil, fmt.Errorf("core: aggregate %q: %s column %d out of range", d.Name, a.Func, a.Col)
			}
			kind = src.Columns[a.Col].Kind
		default:
			return nil, fmt.Errorf("core: aggregate %q: unknown aggregate function %d", d.Name, a.Func)
		}
		if a.Func == AggSum || a.Func == AggAvg {
			if a.Col < 0 || a.Col >= src.Arity() {
				return nil, fmt.Errorf("core: aggregate %q: %s column %d out of range", d.Name, a.Func, a.Col)
			}
		}
		cols = append(cols, tuple.Column{Name: a.Name, Kind: kind})
	}
	return tuple.NewSchema(cols...), nil
}

// extrema is the per-group auxiliary structure for one MIN/MAX column: a
// counted multiset of the column's values in the group, keyed by the
// order-preserving key encoding, with the current extremum cached.
// Insertions update the cached extremum with one comparison; deleting the
// extremum's last copy rescans the multiset ("rescan on extrema delete"
// — the retraction case GROUP BY compensation cannot handle locally).
// NULLs participate and sort before every other value, matching
// tuple.Compare.
type extrema struct {
	max    bool
	counts map[string]int64
	best   string // encoding of the cached extremum; "" when empty
}

func newExtrema(max bool) *extrema {
	return &extrema{max: max, counts: make(map[string]int64)}
}

// better reports whether encoded value a beats b for this direction. The
// key encoding is order-preserving, so byte comparison is value order.
func (e *extrema) better(a, b string) bool {
	if e.max {
		return a > b
	}
	return a < b
}

// add folds a multiplicity change for one value. A negative resulting
// multiplicity reports an invariant violation: the upstream delta
// retracted a value the group does not hold.
func (e *extrema) add(enc string, delta int64) error {
	c := e.counts[enc] + delta
	switch {
	case c < 0:
		return fmt.Errorf("%w: aggregate %s multiset", ErrNegativeCount, map[bool]string{true: "MAX", false: "MIN"}[e.max])
	case c == 0:
		delete(e.counts, enc)
		if enc == e.best {
			e.rescan()
		}
	default:
		e.counts[enc] = c
		if delta > 0 && (e.best == "" || e.better(enc, e.best)) {
			e.best = enc
		}
	}
	return nil
}

// rescan recomputes the cached extremum from the full multiset.
func (e *extrema) rescan() {
	e.best = ""
	for enc := range e.counts {
		if e.best == "" || e.better(enc, e.best) {
			e.best = enc
		}
	}
}

// aggGroup is one group's running state.
type aggGroup struct {
	gk    string      // encoded group key — the groups map key
	count int64       // number of source rows (with multiplicity)
	sums  []float64   // indexed by aggregate column (SUM/AVG entries used)
	mm    []*extrema  // indexed by aggregate column (MIN/MAX entries non-nil)
	key   tuple.Tuple // decoded group key, set at group creation
	// prevEnc is the encoded output row currently reflected in the
	// aggregate's delta stream (nil before the group's first emission).
	// It aliases one of the two enc buffers; encoding the next output row
	// into the other buffer leaves the previous encoding intact for the
	// retraction emission without allocating per change.
	prevEnc []byte
	enc     [2][]byte
	cur     int
}

// aggStage nets one timestamp's upstream delta rows for one group before
// they are applied: within a single commit the upstream view delta may
// interleave compensation (negative) rows with the forward rows they
// compensate, so invariants hold only at commit granularity — exactly
// like MaterializedView.applyRows consolidating a window first.
type aggStage struct {
	count int64
	sums  []float64
	mm    []map[string]int64
}

// rowDecoder is a tuple.RowSink that decodes encoded rows into one
// reusable scratch tuple, so the fold loop never allocates a Tuple per
// source delta row. The decoded row is only valid until the next decode.
type rowDecoder struct{ row tuple.Tuple }

func (d *rowDecoder) BeginRow(arity int) {
	if cap(d.row) < arity {
		d.row = make(tuple.Tuple, 0, arity)
	} else {
		d.row = d.row[:0]
	}
}
func (d *rowDecoder) PushNull()           { d.row = append(d.row, tuple.Null()) }
func (d *rowDecoder) PushBool(v bool)     { d.row = append(d.row, tuple.Bool(v)) }
func (d *rowDecoder) PushInt(v int64)     { d.row = append(d.row, tuple.Int(v)) }
func (d *rowDecoder) PushFloat(v float64) { d.row = append(d.row, tuple.Float(v)) }
func (d *rowDecoder) PushString(s []byte) { d.row = append(d.row, tuple.String_(string(s))) }
func (d *rowDecoder) PushBytes(b []byte) {
	d.row = append(d.row, tuple.Bytes(append([]byte(nil), b...)))
}

// AggView is the first-class incremental aggregate operator: it folds
// its source relation's timed delta windows into per-group running state
// (group-level compensation for COUNT/SUM/AVG, counted multisets with
// rescan-on-extrema-delete for MIN/MAX) and emits its own timed delta of
// group-level changes — a retraction of the group's previous output row
// followed by its new one, stamped with the upstream commit's timestamp.
// Because the output is itself a timed delta table with a high-water
// mark, aggregates cascade: views and further aggregates read an
// aggregate exactly like a base table.
type AggView struct {
	def   *AggregateDef
	src   *tuple.Schema
	out   *tuple.Schema
	up    *engine.DeltaTable // source delta stream
	upHWM func() relalg.CSN  // source completeness bound
	dest  *engine.DeltaTable // own delta of group-level changes

	mu       sync.Mutex
	frontier relalg.CSN // upstream CSN folded through == own HWM
	groups   map[string]*aggGroup

	// Fold-path scratch, guarded by mu: reused across rows and commits so
	// a steady-state step's allocations are essentially the btree-retained
	// key/value slices of the emitted delta rows
	// (BenchmarkAggregateStepAllocs gates the budget in CI).
	dec        rowDecoder
	kbuf       []byte
	vbuf       []byte
	gscratch   []*aggGroup
	outScratch tuple.Tuple
	stage      map[*aggGroup]*aggStage
	stagePool  []*aggStage

	steps       atomic.Int64
	rowsFolded  atomic.Int64
	rowsEmitted atomic.Int64
}

// NewAggView creates the operator. up is the source relation's delta
// stream and upHWM its completeness bound: capture progress for a base
// table, the view's high-water mark for a maintained view. dest receives
// the aggregate's own delta rows.
func NewAggView(def *AggregateDef, src, out *tuple.Schema, up *engine.DeltaTable, upHWM func() relalg.CSN, dest *engine.DeltaTable) *AggView {
	return &AggView{
		def:    def,
		src:    src,
		out:    out,
		up:     up,
		upHWM:  upHWM,
		dest:   dest,
		groups: make(map[string]*aggGroup),
	}
}

// OutSchema returns the aggregate's output schema.
func (av *AggView) OutSchema() *tuple.Schema { return av.out }

// HWM returns the aggregate's high-water mark: its delta stream is
// complete through this CSN.
func (av *AggView) HWM() relalg.CSN {
	av.mu.Lock()
	defer av.mu.Unlock()
	return av.frontier
}

// Groups returns the current number of groups.
func (av *AggView) Groups() int {
	av.mu.Lock()
	defer av.mu.Unlock()
	return len(av.groups)
}

// Steps returns the number of completed propagation steps.
func (av *AggView) Steps() int64 { return av.steps.Load() }

// RowsFolded returns the cumulative upstream delta rows folded.
func (av *AggView) RowsFolded() int64 { return av.rowsFolded.Load() }

// RowsEmitted returns the cumulative output delta rows emitted.
func (av *AggView) RowsEmitted() int64 { return av.rowsEmitted.Load() }

// Seed initializes the group state from the source's contents at asOf
// (no delta rows are emitted) and returns the aggregate's initial output
// relation — the rows a downstream materialization and the derived image
// start from. The frontier starts at asOf.
func (av *AggView) Seed(rel *relalg.Relation, asOf relalg.CSN) (*relalg.Relation, error) {
	av.mu.Lock()
	defer av.mu.Unlock()
	stage := av.takeStage()
	defer av.recycleStage(stage)
	for _, r := range relalg.NetEffect(rel).Rows {
		if err := av.stageRow(stage, r.Tuple, r.Count); err != nil {
			return nil, err
		}
	}
	if err := av.applyStage(relalg.NullTS, stage, false); err != nil {
		return nil, err
	}
	av.frontier = asOf
	out := relalg.NewRelation(av.out)
	keys := make([]string, 0, len(av.groups))
	for gk := range av.groups {
		keys = append(keys, gk)
	}
	sort.Strings(keys)
	for _, gk := range keys {
		g := av.groups[gk]
		row, err := av.outputRow(g)
		if err != nil {
			return nil, err
		}
		g.enc[g.cur] = tuple.EncodeRow(g.enc[g.cur][:0], row)
		g.prevEnc = g.enc[g.cur]
		out.Add(append(tuple.Tuple(nil), row...), 1, relalg.NullTS)
	}
	return out, nil
}

// Step is the aggregate's propagation step: it folds the upstream delta
// window (frontier, upstream HWM] into the group state, emitting group-
// level delta rows per upstream commit, and advances the frontier. It
// returns ErrNoProgress when the upstream mark has not moved.
func (av *AggView) Step() error {
	av.mu.Lock()
	defer av.mu.Unlock()
	lo, hi := av.frontier, av.upHWM()
	if hi <= lo {
		return ErrNoProgress
	}
	if err := fault.Inject(fault.PointAggregate); err != nil {
		return err
	}
	var (
		curTS  relalg.CSN
		haveTS bool
		folded int64
	)
	stage := av.takeStage()
	defer av.recycleStage(stage)
	err := av.up.WindowEach(lo, hi, func(ts relalg.CSN, count int64, encRow []byte) error {
		if haveTS && ts != curTS {
			if err := av.applyStage(curTS, stage, true); err != nil {
				return err
			}
			av.recycleStage(stage)
		}
		curTS, haveTS = ts, true
		if _, err := tuple.DecodeRowInto(encRow, &av.dec); err != nil {
			return err
		}
		folded++
		return av.stageRow(stage, av.dec.row, count)
	})
	if err != nil {
		return err
	}
	if haveTS {
		if err := av.applyStage(curTS, stage, true); err != nil {
			return err
		}
	}
	av.frontier = hi
	av.steps.Add(1)
	av.rowsFolded.Add(folded)
	return nil
}

// takeStage returns the reusable staging map (created on first use).
func (av *AggView) takeStage() map[*aggGroup]*aggStage {
	if av.stage == nil {
		av.stage = make(map[*aggGroup]*aggStage)
	}
	return av.stage
}

// recycleStage empties the staging map, returning its entries to the
// stage pool for reuse by the next commit. Safe to call repeatedly.
func (av *AggView) recycleStage(stage map[*aggGroup]*aggStage) {
	for g, st := range stage {
		av.stagePool = append(av.stagePool, st)
		delete(stage, g)
	}
}

// stageGet pops a cleared aggStage from the pool, or allocates one.
func (av *AggView) stageGet() *aggStage {
	if n := len(av.stagePool); n > 0 {
		st := av.stagePool[n-1]
		av.stagePool = av.stagePool[:n-1]
		st.count = 0
		for i := range st.sums {
			st.sums[i] = 0
		}
		for i := range st.mm {
			if st.mm[i] != nil {
				clear(st.mm[i])
			}
		}
		return st
	}
	return &aggStage{sums: make([]float64, len(av.def.Aggs))}
}

// stageRow nets one source delta row into the per-timestamp stage. The
// row may live in scratch storage; nothing from it is retained except
// copied encodings. A row for an unseen group creates the group eagerly
// (count 0) so the stage can be keyed by group pointer — the string(kbuf)
// map read compiles without a conversion allocation, leaving the group's
// first-ever row as the only one that pays for key materialization;
// applyStage deletes groups that never accumulate rows.
func (av *AggView) stageRow(stage map[*aggGroup]*aggStage, row tuple.Tuple, count int64) error {
	av.kbuf = av.kbuf[:0]
	for _, c := range av.def.GroupBy {
		av.kbuf = tuple.EncodeKeyValue(av.kbuf, row[c])
	}
	g := av.groups[string(av.kbuf)]
	if g == nil {
		key, err := tuple.DecodeKey(av.kbuf, len(av.def.GroupBy))
		if err != nil {
			return err
		}
		g = &aggGroup{gk: string(av.kbuf), sums: make([]float64, len(av.def.Aggs)), key: key}
		for i, a := range av.def.Aggs {
			if a.Func == AggMin || a.Func == AggMax {
				if g.mm == nil {
					g.mm = make([]*extrema, len(av.def.Aggs))
				}
				g.mm[i] = newExtrema(a.Func == AggMax)
			}
		}
		av.groups[g.gk] = g
	}
	st := stage[g]
	if st == nil {
		st = av.stageGet()
		stage[g] = st
	}
	st.count += count
	for i, a := range av.def.Aggs {
		switch a.Func {
		case AggSum, AggAvg:
			st.sums[i] += float64(count) * numeric(row[a.Col])
		case AggMin, AggMax:
			if st.mm == nil {
				st.mm = make([]map[string]int64, len(av.def.Aggs))
			}
			if st.mm[i] == nil {
				st.mm[i] = make(map[string]int64)
			}
			av.vbuf = tuple.EncodeKeyValue(av.vbuf[:0], row[a.Col])
			st.mm[i][string(av.vbuf)] += count
		}
	}
	return nil
}

// applyStage applies one commit's netted changes to the group state and,
// when emit is set, appends the resulting group-level changes to the
// aggregate's delta stream at ts: (−1, previous output row) then
// (+1, new output row), omitting whichever side does not exist. A group
// whose source-row count would go negative reports an invariant
// violation; a group reaching zero is retracted and deleted.
func (av *AggView) applyStage(ts relalg.CSN, stage map[*aggGroup]*aggStage, emit bool) error {
	av.gscratch = av.gscratch[:0]
	for g := range stage {
		av.gscratch = append(av.gscratch, g)
	}
	sort.Slice(av.gscratch, func(i, j int) bool { return av.gscratch[i].gk < av.gscratch[j].gk })
	for _, g := range av.gscratch {
		st := stage[g]
		if g.count == 0 && g.prevEnc == nil {
			// The group was created eagerly by this commit's first staged
			// row. A net-negative start is an invariant violation; a
			// net-zero commit (e.g. an insert-delete pair) leaves no group.
			if st.count < 0 {
				return fmt.Errorf("%w: aggregate %q group would start at %d", ErrNegativeCount, av.def.Name, st.count)
			}
			if st.count == 0 {
				delete(av.groups, g.gk)
				continue
			}
		}
		if g.count+st.count < 0 {
			return fmt.Errorf("%w: aggregate %q group count would become %d", ErrNegativeCount, av.def.Name, g.count+st.count)
		}
		g.count += st.count
		for i := range av.def.Aggs {
			g.sums[i] += st.sums[i]
			if st.mm != nil && st.mm[i] != nil {
				for enc, d := range st.mm[i] {
					if d == 0 {
						continue
					}
					if err := g.mm[i].add(enc, d); err != nil {
						return fmt.Errorf("aggregate %q: %w", av.def.Name, err)
					}
				}
			}
		}
		var newEnc []byte
		if g.count > 0 {
			row, err := av.outputRow(g)
			if err != nil {
				return err
			}
			next := 1 - g.cur
			g.enc[next] = tuple.EncodeRow(g.enc[next][:0], row)
			newEnc = g.enc[next]
			g.cur = next
		}
		if emit && !bytes.Equal(g.prevEnc, newEnc) {
			if g.prevEnc != nil {
				av.dest.AppendEncoded(ts, -1, g.prevEnc, tuple.Null())
				av.rowsEmitted.Add(1)
			}
			if newEnc != nil {
				av.dest.AppendEncoded(ts, +1, newEnc, tuple.Null())
				av.rowsEmitted.Add(1)
			}
		}
		g.prevEnc = newEnc
		if g.count == 0 {
			delete(av.groups, g.gk)
		}
	}
	return nil
}

// outputRow builds a group's current output row — the group key followed
// by the aggregate values — in scratch storage valid until the next call.
func (av *AggView) outputRow(g *aggGroup) (tuple.Tuple, error) {
	row := av.outScratch[:0]
	row = append(row, g.key...)
	for i, a := range av.def.Aggs {
		switch a.Func {
		case AggCount:
			row = append(row, tuple.Int(g.count))
		case AggSum:
			row = append(row, tuple.Float(g.sums[i]))
		case AggAvg:
			row = append(row, tuple.Float(g.sums[i]/float64(g.count)))
		case AggMin, AggMax:
			if g.mm[i].best == "" {
				row = append(row, tuple.Null())
				continue
			}
			v, _, err := tuple.DecodeKeyValue([]byte(g.mm[i].best))
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
	}
	av.outScratch = row
	return row, nil
}
