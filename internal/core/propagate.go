package core

import (
	"errors"
	"sync"

	"repro/internal/relalg"
)

// ErrNoProgress is returned by single-step drivers when capture has not
// advanced far enough to propagate anything new.
var ErrNoProgress = errors.New("core: no captured changes to propagate")

// IntervalPolicy chooses the propagation interval length (in CSN units) for
// relation i. Propagate (Figure 5) consults it once per iteration with
// i == -1; RollingPropagate (Figure 10) consults it per relation. The
// interval is the paper's contention-tuning knob: smaller intervals mean
// smaller, shorter propagation transactions.
type IntervalPolicy func(i int) relalg.CSN

// FixedInterval returns a policy using the same interval for every relation.
func FixedInterval(d relalg.CSN) IntervalPolicy {
	return func(int) relalg.CSN { return d }
}

// PerRelationIntervals returns a policy with one interval per relation; a
// call with i == -1 returns the first entry.
func PerRelationIntervals(ds ...relalg.CSN) IntervalPolicy {
	return func(i int) relalg.CSN {
		if i < 0 {
			i = 0
		}
		return ds[i]
	}
}

// Propagator is the continuous asynchronous propagation process of
// Figure 5: each iteration calls ComputeDelta over the next propagation
// interval, advancing the view delta high-water mark.
type Propagator struct {
	exec     *Executor
	interval IntervalPolicy

	mu   sync.Mutex
	tCur relalg.CSN
}

// NewPropagator creates a Propagate process starting at tInitial (the
// view's materialization time).
func NewPropagator(exec *Executor, tInitial relalg.CSN, interval IntervalPolicy) *Propagator {
	return &Propagator{exec: exec, interval: interval, tCur: tInitial}
}

// HWM returns the view delta high-water mark: the view delta is complete
// from the initial time through this point. Safe to call concurrently with
// Step (the apply process reads it).
func (p *Propagator) HWM() relalg.CSN {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tCur
}

// Step performs one iteration: it propagates the interval
// (tCur, min(tCur+δ, captureProgress)] and advances the high-water mark.
// It returns ErrNoProgress if capture has nothing new.
func (p *Propagator) Step() error {
	cur := p.HWM()
	delta := p.interval(-1)
	if delta <= 0 {
		delta = 1
	}
	target := cur + delta
	if progress := p.exec.src.Progress(); target > progress {
		target = progress
	}
	if target <= cur {
		return ErrNoProgress
	}
	tauOld := make([]relalg.CSN, p.exec.view.N())
	for i := range tauOld {
		tauOld[i] = cur
	}
	if err := p.exec.ComputeDelta(AllBase(p.exec.view), tauOld, target); err != nil {
		return err
	}
	p.mu.Lock()
	p.tCur = target
	p.mu.Unlock()
	return nil
}

// There is deliberately no Run loop here: continuous propagation is
// scheduled by internal/sched, which drives Step event-driven on capture
// notifications instead of sleep-polling. Step's key scheduling property:
// when it returns ErrNoProgress, the high-water mark equals the last
// interval boundary, so waiting for capture progress to reach HWM()+1 is
// exactly the event that makes the next Step productive.
