package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

// mustSchema resolves the env's view output schema.
func mustSchema(t *testing.T, env *testEnv) *tuple.Schema {
	t.Helper()
	sch, err := env.view.Schema(env.db)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// mvTestTuple builds an all-integer tuple of the given arity that no real
// history produces (used to inject corruption).
func mvTestTuple(arity int) tuple.Tuple {
	out := make(tuple.Tuple, arity)
	for i := range out {
		out[i] = tuple.Int(999999)
	}
	return out
}

func TestMaterializeMatchesOracle(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(61))
	env.randomHistory(r, 30, 4)
	mv, err := Materialize(env.db, env.view)
	if err != nil {
		t.Fatal(err)
	}
	env.mu.Lock()
	want := env.evalShadowView()
	env.mu.Unlock()
	if !relalg.Equivalent(mv.AsRelation(), want) {
		t.Fatalf("materialized view differs from oracle:\n%s\nvs\n%s", mv.AsRelation(), want)
	}
	if mv.Name() != "v" || mv.Schema() == nil {
		t.Fatal("metadata")
	}
}

func TestApplierRollToEveryPoint(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(62))
	last := env.randomHistory(r, 40, 4)

	mv := NewMaterializedView("v", mustSchema(t, env), 0)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(3, 7))
	drainRolling(t, rp, last)
	a := NewApplier(mv, env.dest, rp.HWM)

	states := env.statesThrough(last)
	// Roll forward one CSN at a time, comparing against the oracle at every
	// point — point-in-time refresh at its finest granularity.
	for ts := relalg.CSN(1); ts <= last; ts++ {
		if err := a.RollTo(ts); err != nil {
			t.Fatalf("roll to %d: %v", ts, err)
		}
		if !relalg.Equivalent(mv.AsRelation(), states[ts]) {
			t.Fatalf("state at %d differs:\n%s\nvs oracle\n%s", ts, mv.AsRelation(), states[ts])
		}
	}
	if a.Refreshes() == 0 || a.RowsApplied() < 0 {
		t.Fatal("counters")
	}
}

func TestApplierCoarseJumpsMatchFineSteps(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(63))
	last := env.randomHistory(r, 40, 4)
	rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(5, 5))
	drainRolling(t, rp, last)

	states := env.statesThrough(last)
	mv := NewMaterializedView("v", mustSchema(t, env), 0)
	a := NewApplier(mv, env.dest, rp.HWM)
	// Jump in random strides.
	ts := relalg.CSN(0)
	for ts < last {
		ts += relalg.CSN(1 + r.Intn(9))
		if ts > last {
			ts = last
		}
		if err := a.RollTo(ts); err != nil {
			t.Fatal(err)
		}
		if !relalg.Equivalent(mv.AsRelation(), states[ts]) {
			t.Fatalf("coarse state at %d differs", ts)
		}
	}
}

func TestApplierErrors(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	last := env.insert("r1", 1)
	rp := NewRollingPropagator(env.exec, 0, FixedInterval(4))
	drainRolling(t, rp, last)

	mv := NewMaterializedView("v", mustSchema(t, env), 0)
	a := NewApplier(mv, env.dest, rp.HWM)
	if err := a.RollTo(rp.HWM() + 100); !errors.Is(err, ErrBeyondHWM) {
		t.Fatalf("want ErrBeyondHWM, got %v", err)
	}
	if err := a.RollTo(last); err != nil {
		t.Fatal(err)
	}
	if err := a.RollTo(last - 1); !errors.Is(err, ErrBackward) {
		t.Fatalf("want ErrBackward, got %v", err)
	}
	if err := a.RollTo(last); err != nil {
		t.Fatal("rolling to the current time is a no-op")
	}
}

func TestApplierRollToHWMAndPrune(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	r := rand.New(rand.NewSource(64))
	last := env.randomHistory(r, 20, 3)
	rp := NewRollingPropagator(env.exec, 0, FixedInterval(6))
	drainRolling(t, rp, last)

	mv := NewMaterializedView("v", mustSchema(t, env), 0)
	a := NewApplier(mv, env.dest, rp.HWM)
	reached, err := a.RollToHWM()
	if err != nil || reached < last {
		t.Fatalf("RollToHWM: %d %v", reached, err)
	}
	states := env.statesThrough(last)
	if !relalg.Equivalent(mv.AsRelation(), states[last]) {
		t.Fatal("state at hwm")
	}
	before := env.dest.Len()
	pruned := a.PruneApplied()
	if pruned == 0 && before > 0 {
		t.Fatal("prune should reclaim applied rows")
	}
	if env.dest.Len() != before-pruned {
		t.Fatal("prune accounting")
	}
}

func TestApplierDetectsCorruptDelta(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	last := env.insert("r1", 1)
	rp := NewRollingPropagator(env.exec, 0, FixedInterval(4))
	drainRolling(t, rp, last)
	// Inject a bogus deletion for a tuple that is not in the view.
	sch := mustSchema(t, env)
	mv := NewMaterializedView("v", sch, 0)
	a := NewApplier(mv, env.dest, rp.HWM)
	env.dest.Append(last, -1, mvTestTuple(sch.Arity()))
	err := a.RollTo(last)
	if !errors.Is(err, ErrNegativeCount) {
		t.Fatalf("want ErrNegativeCount, got %v", err)
	}
}

func TestFullRefreshMatchesOracle(t *testing.T) {
	env := newEnv(t, chainView("v", 3))
	r := rand.New(rand.NewSource(65))
	env.randomHistory(r, 30, 3)
	rel, csn, err := FullRefresh(env.db, env.view)
	if err != nil || csn == 0 {
		t.Fatal(err)
	}
	env.mu.Lock()
	want := env.evalShadowView()
	env.mu.Unlock()
	if !relalg.Equivalent(rel, want) {
		t.Fatal("full refresh differs from oracle")
	}
}

func TestSyncEq1Oracle(t *testing.T) {
	env := newEnv(t, chainView("v", 3))
	r := rand.New(rand.NewSource(66))
	last := env.randomHistory(r, 30, 3)
	b, queries, err := SyncPropagateEq1(env.db, env.cap, env.view, env.dest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if queries != 7 { // 2^3 - 1
		t.Fatalf("Eq.1 should use 7 queries for n=3, got %d", queries)
	}
	if b < last {
		t.Fatalf("b=%d < last=%d", b, last)
	}
	env.checkTimedDelta(0, last)
}

func TestSyncEq2Oracle(t *testing.T) {
	env := newEnv(t, chainView("v", 3))
	r := rand.New(rand.NewSource(67))
	last := env.randomHistory(r, 30, 3)
	b, queries, err := SyncPropagateEq2(env.db, env.cap, env.view, env.dest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if queries != 3 {
		t.Fatalf("Eq.2 should use n=3 queries, got %d", queries)
	}
	if b < last {
		t.Fatalf("b=%d < last=%d", b, last)
	}
	// Eq.2 is net-correct over the full interval but NOT a timed delta
	// table (see the SyncPropagateEq2 doc comment): check only (0, b].
	states := env.statesThrough(last)
	rolled := relalg.Union(relalg.Window(env.dest.All(), 0, b), states[0])
	if !relalg.Equivalent(rolled, states[last]) {
		t.Fatal("Eq.2 net delta incorrect over the full interval")
	}
}

func TestSyncBaselinesEmptyInterval(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	last := env.insert("r1", 1)
	if err := env.cap.WaitProgress(last); err != nil {
		t.Fatal(err)
	}
	b := env.db.LastCSN()
	if got, q, err := SyncPropagateEq1(env.db, env.cap, env.view, env.dest, b+10); err != nil || q != 0 || got != b+10 {
		t.Fatalf("eq1 empty: %d %d %v", got, q, err)
	}
	if _, q, err := SyncPropagateEq2(env.db, env.cap, env.view, env.dest, b+10); err != nil || q != 0 {
		t.Fatalf("eq2 empty: %d %v", q, err)
	}
}

// TestAllPropagatorsAgree runs the same history through rolling, Figure 5,
// Eq.1, and Eq.2 and checks all four deltas roll the view identically at
// several sampled points.
func TestAllPropagatorsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(68))
	type run struct {
		name  string
		delta *relalg.Relation
	}
	var runs []run
	var states map[relalg.CSN]*relalg.Relation
	var last relalg.CSN

	build := func(name string, f func(env *testEnv) relalg.CSN) {
		env := newEnv(t, chainView("v", 2))
		hist := rand.New(rand.NewSource(99)) // same history each run
		last = env.randomHistory(hist, 40, 4)
		reached := f(env)
		if reached < last {
			t.Fatalf("%s reached only %d", name, reached)
		}
		runs = append(runs, run{name, env.dest.All()})
		states = env.statesThrough(last)
	}
	build("rolling", func(env *testEnv) relalg.CSN {
		rp := NewRollingPropagator(env.exec, 0, PerRelationIntervals(relalg.CSN(1+r.Intn(5)), relalg.CSN(1+r.Intn(9))))
		drainRolling(t, rp, last)
		return rp.HWM()
	})
	build("propagate", func(env *testEnv) relalg.CSN {
		p := NewPropagator(env.exec, 0, FixedInterval(4))
		drainPropagate(t, p, last)
		return p.HWM()
	})
	build("eq1", func(env *testEnv) relalg.CSN {
		b, _, err := SyncPropagateEq1(env.db, env.cap, env.view, env.dest, 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})
	build("eq2", func(env *testEnv) relalg.CSN {
		b, _, err := SyncPropagateEq2(env.db, env.cap, env.view, env.dest, 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	})

	for _, rn := range runs {
		// Eq.2 is only net-correct over the full interval (no timestamp
		// cancellation); the others are timed deltas checkable anywhere.
		checkpoints := []relalg.CSN{1, last / 4, last / 2, last}
		if rn.name == "eq2" {
			checkpoints = []relalg.CSN{last}
		}
		for _, ts := range checkpoints {
			rolled := relalg.Union(relalg.Window(rn.delta, 0, ts), states[0])
			if !relalg.Equivalent(rolled, states[ts]) {
				t.Fatalf("%s delta wrong at ts=%d", rn.name, ts)
			}
		}
	}
}
