package core

import (
	"testing"

	"repro/internal/tuple"
)

func TestMarkerProbeRecoversCSN(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	probe, err := NewMarkerProbe(env.db, env.cap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := env.db.Begin()
		// A propagation-style transaction that also does regular work.
		if err := tx.Insert("r1", tuple.Tuple{tuple.Int(int64(i)), tuple.Int(int64(i))}); err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		resolve, err := probe.Mark(tx)
		if err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		want, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		got, err := resolve()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("marker recovered CSN %d, engine reported %d", got, want)
		}
	}
}

func TestMarkerProbeConcurrentTraffic(t *testing.T) {
	env := newEnv(t, chainView("v", 2))
	probe, err := NewMarkerProbe(env.db, env.cap)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave marker transactions with unrelated traffic so the UOW
	// lookup has to skip other transactions' entries.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			env.insert("r2", int64(i%3))
		}
	}()
	tx := env.db.Begin()
	resolve, err := probe.Mark(tx)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := resolve()
	if err != nil || got != want {
		t.Fatalf("marker under traffic: got %d want %d err %v", got, want, err)
	}
	<-done
}
