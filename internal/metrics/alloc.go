package metrics

import "runtime"

// AllocSampler reports heap-allocation deltas between successive samples,
// for attributing allocation churn to phases of a long run (rollload's
// periodic reports, the per-step alloc counters of the cache benchmarks).
// It reads runtime.MemStats, which stops the world briefly; sample at
// reporting cadence, not per operation.
type AllocSampler struct {
	lastMallocs uint64
	lastBytes   uint64
}

// AllocSample is the change in allocation activity since the previous call.
type AllocSample struct {
	// Mallocs is the number of heap objects allocated in the interval.
	Mallocs uint64
	// Bytes is the number of heap bytes allocated in the interval.
	Bytes uint64
}

// NewAllocSampler returns a sampler primed at the current allocation
// counters, so the first Sample covers only activity after this call.
func NewAllocSampler() *AllocSampler {
	s := &AllocSampler{}
	s.Sample()
	return s
}

// Sample returns the allocation activity since the previous Sample (or
// since NewAllocSampler) and advances the baseline.
func (s *AllocSampler) Sample() AllocSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	out := AllocSample{
		Mallocs: ms.Mallocs - s.lastMallocs,
		Bytes:   ms.TotalAlloc - s.lastBytes,
	}
	s.lastMallocs = ms.Mallocs
	s.lastBytes = ms.TotalAlloc
	return out
}
