// Package metrics provides the measurement utilities the experiment harness
// uses: duration histograms and aligned-text table rendering for the
// paper-style result tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Histogram accumulates duration samples and reports order statistics. It
// is goroutine-safe.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s time.Duration
	for _, d := range h.samples {
		s += d
	}
	return s
}

// Mean returns the average sample (0 if empty).
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range h.samples {
		s += d
	}
	return s / time.Duration(len(h.samples))
}

// Quantile returns the q-th order statistic (q in [0, 1]); 0 if empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var m time.Duration
	for _, d := range h.samples {
		if d > m {
			m = d
		}
	}
	return m
}

// IntHistogram accumulates integer samples (row counts, batch counts) and
// reports order statistics. It is goroutine-safe.
type IntHistogram struct {
	mu      sync.Mutex
	samples []int64
}

// NewIntHistogram returns an empty integer histogram.
func NewIntHistogram() *IntHistogram { return &IntHistogram{} }

// Observe records one sample.
func (h *IntHistogram) Observe(v int64) {
	h.mu.Lock()
	h.samples = append(h.samples, v)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *IntHistogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Sum returns the total of all samples.
func (h *IntHistogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var s int64
	for _, v := range h.samples {
		s += v
	}
	return s
}

// Mean returns the average sample (0 if empty).
func (h *IntHistogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var s int64
	for _, v := range h.samples {
		s += v
	}
	return float64(s) / float64(len(h.samples))
}

// Quantile returns the q-th order statistic (q in [0, 1]); 0 if empty.
func (h *IntHistogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Max returns the largest sample (0 if empty).
func (h *IntHistogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var m int64
	for _, v := range h.samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Table renders experiment results as an aligned text table, the format
// every benchmark binary prints.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case time.Duration:
			row[i] = x.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
