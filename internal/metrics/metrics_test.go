package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("empty histogram")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatal("count")
	}
	if h.Mean() != 50500*time.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Quantile(0.5) != 50*time.Millisecond {
		t.Fatalf("p50 %v", h.Quantile(0.5))
	}
	if h.Quantile(0.99) != 99*time.Millisecond {
		t.Fatalf("p99 %v", h.Quantile(0.99))
	}
	if h.Quantile(1.0) != 100*time.Millisecond || h.Max() != 100*time.Millisecond {
		t.Fatal("max")
	}
	if h.Sum() != 5050*time.Millisecond {
		t.Fatal("sum")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Experiment E1", "algo", "time", "ratio")
	tb.AddRow("full", 120*time.Millisecond, 1.0)
	tb.AddRow("incremental", 3*time.Millisecond, 0.025)
	if tb.Rows() != 2 {
		t.Fatal("rows")
	}
	out := tb.String()
	if !strings.Contains(out, "Experiment E1") || !strings.Contains(out, "incremental") {
		t.Fatalf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and row share the column start offsets.
	if strings.Index(lines[1], "time") != strings.Index(lines[1], "time") {
		t.Fatal("alignment")
	}
	if !strings.Contains(out, "0.03") && !strings.Contains(out, "0.02") {
		t.Fatal("float formatting")
	}
}
