package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	rollingjoin "repro"
	"repro/internal/engine"
	"repro/internal/wal"
)

// ErrDiverged is the tailer's fail-stop: the follower holds more log bytes
// than the leader has committed, so the two histories cannot be spliced.
// The replica must be rebuilt from an empty log (or a leader checkpoint).
var ErrDiverged = errors.New("repl: follower log diverged from leader")

// Tailer keeps a follower database converged with a leader by streaming
// GET /v1/wal from the follower's current shipped offset and feeding the
// bytes through DB.ShipFrames. It reconnects with capped backoff on
// transport errors; it fail-stops (Err becomes non-nil, tailing ends) on
// shipped corruption or history divergence — conditions where replaying
// further could only corrupt the replica.
type Tailer struct {
	db     *rollingjoin.DB
	leader string // base URL, e.g. http://127.0.0.1:7070
	client *http.Client

	cancel context.CancelFunc
	wg     sync.WaitGroup

	leaderCSN  atomic.Int64
	bytesIn    atomic.Int64
	reconnects atomic.Int64

	mu  sync.Mutex
	err error
}

// NewTailer prepares a tailer for the follower database against the
// leader's base URL. Start launches it.
func NewTailer(db *rollingjoin.DB, leaderURL string) *Tailer {
	return &Tailer{
		db:     db,
		leader: leaderURL,
		client: &http.Client{},
	}
}

// Start installs the follower's replication-lag stats hook and launches
// the ship loop plus a status poller that tracks the leader's CSN.
func (t *Tailer) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	t.db.Engine().SetReplStats(func() engine.ReplStats {
		follower := int64(t.db.AppliedCSN())
		leader := t.leaderCSN.Load()
		lag := leader - follower
		if lag < 0 {
			lag = 0
		}
		return engine.ReplStats{
			Role:         "follower",
			FollowerCSN:  follower,
			LeaderCSN:    leader,
			LagCSNs:      lag,
			BytesShipped: t.bytesIn.Load(),
			Reconnects:   t.reconnects.Load(),
		}
	})
	t.wg.Add(2)
	go t.shipLoop(ctx)
	go t.pollLoop(ctx)
}

// Stop ends tailing and waits for the loops to exit. The follower
// database stays open and readable at its last applied state.
func (t *Tailer) Stop() {
	if t.cancel != nil {
		t.cancel()
	}
	t.wg.Wait()
}

// Err returns the terminal error if the tailer fail-stopped (shipped
// corruption or divergence), nil while healthy or after an orderly Stop.
func (t *Tailer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// BytesShipped returns the total WAL bytes received from the leader.
func (t *Tailer) BytesShipped() int64 { return t.bytesIn.Load() }

// Reconnects returns how many times the stream was re-established.
func (t *Tailer) Reconnects() int64 { return t.reconnects.Load() }

// LeaderCSN returns the leader's last observed commit sequence number.
func (t *Tailer) LeaderCSN() int64 { return t.leaderCSN.Load() }

func (t *Tailer) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// shipLoop is the replication stream: request the leader's WAL from the
// follower's shipped offset, feed every chunk through ShipFrames, and on
// any transport hiccup reconnect from the new offset with capped backoff.
// Corruption and divergence are terminal.
func (t *Tailer) shipLoop(ctx context.Context) {
	defer t.wg.Done()
	backoff := 50 * time.Millisecond
	const maxBackoff = time.Second
	first := true
	for ctx.Err() == nil {
		if !first {
			t.reconnects.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
		}
		first = false
		terminal, streamed := t.streamOnce(ctx)
		if terminal {
			return
		}
		if streamed {
			backoff = 50 * time.Millisecond
		}
	}
}

// streamOnce runs one connection: it reports terminal=true when tailing
// must end (context done, corruption, divergence) and streamed=true when
// any bytes were shipped (resetting backoff).
func (t *Tailer) streamOnce(ctx context.Context) (terminal, streamed bool) {
	from := t.db.ShippedOffset()
	url := fmt.Sprintf("%s/v1/wal?from=%d", t.leader, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.fail(fmt.Errorf("repl: bad leader URL: %w", err))
		return true, false
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return ctx.Err() != nil, false
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		// The leader has fewer committed bytes than we hold: divergence.
		t.fail(fmt.Errorf("%w: local offset %d", ErrDiverged, from))
		return true, false
	default:
		return false, false
	}
	if csn, err := parseInt64(resp.Header.Get("X-Rollserve-Csn"), 0); err == nil && csn > 0 {
		t.storeLeaderCSN(csn)
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, serr := t.db.ShipFrames(buf[:n]); serr != nil {
				var ce *wal.CorruptError
				if errors.As(serr, &ce) {
					t.fail(fmt.Errorf("repl: shipped log corrupt: %w", serr))
				} else {
					t.fail(serr)
				}
				return true, streamed
			}
			t.bytesIn.Add(int64(n))
			streamed = true
		}
		if err != nil {
			return ctx.Err() != nil, streamed
		}
	}
}

// pollLoop refreshes the leader's CSN for the lag gauge: the WAL stream
// itself reports it only at connect time, so a long-lived stream would
// otherwise show stale lag.
func (t *Tailer) pollLoop(ctx context.Context) {
	defer t.wg.Done()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.leader+"/v1/status", nil)
		if err != nil {
			continue
		}
		resp, err := t.client.Do(req)
		if err != nil {
			continue
		}
		var st StatusResponse
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr == nil {
			t.storeLeaderCSN(st.LastCSN)
		}
	}
}

// storeLeaderCSN advances the observed leader CSN monotonically (the
// poller and the stream header race harmlessly).
func (t *Tailer) storeLeaderCSN(csn int64) {
	for {
		cur := t.leaderCSN.Load()
		if csn <= cur || t.leaderCSN.CompareAndSwap(cur, csn) {
			return
		}
	}
}
