package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	rollingjoin "repro"
	"repro/internal/core"
	"repro/internal/engine"
)

// Server exposes a database over HTTP: writes, ad-hoc queries,
// point-in-time materialization, view-delta subscriptions, and — the
// replication feed — raw committed WAL bytes. The same server runs on a
// leader (full surface) or a follower (reads only; commits answer 403
// with ErrReadOnly so clients learn to redirect writes to the leader).
type Server struct {
	db  *rollingjoin.DB
	mux *http.ServeMux

	bytesOut atomic.Int64 // WAL bytes streamed to followers
	tails    atomic.Int64 // live /v1/wal streams
}

// NewServer wraps the database. On a leader it also installs the
// replication stats hook so engine.Stats reports the shipping side.
func NewServer(db *rollingjoin.DB) *Server {
	s := &Server{db: db, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("POST /v1/commit", s.handleCommit)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/materialize", s.handleMaterialize)
	s.mux.HandleFunc("GET /v1/deltas", s.handleDeltas)
	s.mux.HandleFunc("GET /v1/wal", s.handleWAL)
	if !db.IsFollower() {
		db.Engine().SetReplStats(func() engine.ReplStats {
			return engine.ReplStats{
				Role:         "leader",
				LeaderCSN:    int64(db.LastCSN()),
				BytesShipped: s.bytesOut.Load(),
			}
		})
	}
	return s
}

// Handler returns the HTTP handler for use with http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// BytesShipped returns the total committed WAL bytes streamed out.
func (s *Server) BytesShipped() int64 { return s.bytesOut.Load() }

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// httpStatusFor maps library errors onto HTTP codes: read-only follower →
// 403, unknown view/table and no-commits-yet → 404, beyond-HWM → 409
// (retriable once propagation catches up), everything else → 400.
func httpStatusFor(err error) int {
	switch {
	case errors.Is(err, rollingjoin.ErrReadOnly):
		return http.StatusForbidden
	case errors.Is(err, rollingjoin.ErrNoCommits):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBeyondHWM), errors.Is(err, core.ErrBackward):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, httpStatusFor(err), errorResponse{Error: err.Error()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	role := "leader"
	if s.db.IsFollower() {
		role = "follower"
	}
	resp := StatusResponse{
		Role:       role,
		LastCSN:    int64(s.db.LastCSN()),
		StableCSN:  int64(s.db.Engine().StableCSN()),
		AppliedCSN: int64(s.db.AppliedCSN()),
		WALSize:    s.db.Engine().Log().Size(),
		Views:      map[string]ViewStatus{},
	}
	for _, name := range s.db.ViewNames() {
		if v, ok := s.db.View(name); ok {
			resp.Views[name] = ViewStatus{HWM: int64(v.HWM()), MatTime: int64(v.MatTime())}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req CommitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("repl: bad commit body: %w", err))
		return
	}
	if len(req.Ops) == 0 {
		writeErr(w, errors.New("repl: commit with no operations"))
		return
	}
	csn, err := s.db.Update(func(tx *rollingjoin.Tx) error {
		for _, op := range req.Ops {
			switch op.Op {
			case "insert":
				row, err := DecodeRow(op.Row)
				if err != nil {
					return err
				}
				if err := tx.Insert(op.Table, row...); err != nil {
					return err
				}
			case "delete":
				conds, err := decodeFilters(op.Filters)
				if err != nil {
					return err
				}
				if _, err := tx.DeleteMatching(op.Table, conds, op.Limit); err != nil {
					return err
				}
			default:
				return fmt.Errorf("repl: unknown op %q", op.Op)
			}
		}
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, CommitResponse{CSN: int64(csn)})
}

func decodeFilters(in []WireFilter) ([]rollingjoin.Filter, error) {
	out := make([]rollingjoin.Filter, 0, len(in))
	for _, f := range in {
		op, err := DecodeOp(f.Op)
		if err != nil {
			return nil, err
		}
		v, err := DecodeValue(f.Value)
		if err != nil {
			return nil, err
		}
		out = append(out, rollingjoin.Filter{Table: f.Table, Column: f.Column, Op: op, Value: v})
	}
	return out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("repl: bad query body: %w", err))
		return
	}
	spec := rollingjoin.ViewSpec{Tables: req.Tables}
	for _, j := range req.Joins {
		spec.Joins = append(spec.Joins, rollingjoin.Join{
			LeftTable: j.LeftTable, LeftColumn: j.LeftColumn,
			RightTable: j.RightTable, RightColumn: j.RightColumn,
		})
	}
	conds, err := decodeFilters(req.Filters)
	if err != nil {
		writeErr(w, err)
		return
	}
	spec.Filters = conds
	for _, o := range req.Output {
		spec.Output = append(spec.Output, rollingjoin.OutCol{Table: o.Table, Column: o.Column})
	}
	res, err := s.db.Query(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := RowsResponse{Columns: res.Columns, Rows: make([][]any, 0, len(res.Rows))}
	for _, row := range res.Rows {
		resp.Rows = append(resp.Rows, EncodeRow(row))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	var req MaterializeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("repl: bad materialize body: %w", err))
		return
	}
	v, ok := s.db.View(req.View)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("repl: no view %q", req.View)})
		return
	}
	asOf := rollingjoin.CSN(req.AsOf)
	if req.Time != "" {
		t, err := time.Parse(time.RFC3339Nano, req.Time)
		if err != nil {
			writeErr(w, fmt.Errorf("repl: bad time: %w", err))
			return
		}
		asOf, err = s.db.CSNAt(t)
		if err != nil {
			writeErr(w, err)
			return
		}
	}
	if req.AsOf == 0 && req.Time == "" {
		asOf = v.HWM()
	}
	if req.Wait {
		if err := v.WaitForHWMContext(r.Context(), asOf); err != nil {
			writeErr(w, err)
			return
		}
	}
	rows, err := v.MaterializeAt(asOf)
	if err != nil {
		writeErr(w, err)
		return
	}
	resp := RowsResponse{AsOf: int64(asOf), Rows: make([][]any, 0, len(rows))}
	for _, row := range rows {
		resp.Rows = append(resp.Rows, EncodeRow(row))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDeltas streams a view's timed delta rows as NDJSON, one DeltaEvent
// per line, starting strictly after ?from= and following the high-water
// mark until the client disconnects. Each window is collected under the
// delta table's latch and written afterwards, so a slow client never
// stalls propagation.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("view")
	v, ok := s.db.View(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("repl: no view %q", name)})
		return
	}
	from, err := parseInt64(r.URL.Query().Get("from"), 0)
	if err != nil {
		writeErr(w, fmt.Errorf("repl: bad from: %w", err))
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	pos := rollingjoin.CSN(from)
	for {
		hwm := v.HWM()
		if hwm > pos {
			var events []DeltaEvent
			err := v.EachDelta(pos, hwm, func(ts rollingjoin.CSN, count int64, row rollingjoin.Tuple) error {
				events = append(events, DeltaEvent{CSN: int64(ts), Count: count, Row: EncodeRow(row)})
				return nil
			})
			if err != nil {
				return
			}
			for _, ev := range events {
				if err := enc.Encode(ev); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
			pos = hwm
			continue
		}
		if err := v.WaitForHWMContext(ctx, pos+1); err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return
			}
			return
		}
	}
}

// handleWAL streams the leader's committed WAL bytes from ?from= onwards,
// flushing after every chunk and blocking at the frontier until more
// commits land — the replication feed a follower's Tailer consumes. A
// ?from= beyond the committed size means the client holds bytes this log
// never wrote (a diverged or wiped leader): answered with 409 so the
// tailer fail-stops instead of splicing histories.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	from, err := parseInt64(r.URL.Query().Get("from"), 0)
	if err != nil {
		writeErr(w, fmt.Errorf("repl: bad from: %w", err))
		return
	}
	log := s.db.Engine().Log()
	committed := log.Size()
	if from > committed {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("repl: follower offset %d beyond leader committed size %d", from, committed),
		})
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Rollserve-Csn", strconv.FormatInt(int64(s.db.LastCSN()), 10))
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	s.tails.Add(1)
	defer s.tails.Add(-1)
	ctx := r.Context()
	buf := make([]byte, 64<<10)
	off := from
	for {
		n, err := log.ReadCommitted(buf, off)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			off += int64(n)
			s.bytesOut.Add(int64(n))
		}
		if err != nil {
			return
		}
		if n == 0 {
			if err := log.WaitBeyond(ctx, off); err != nil {
				return
			}
		}
	}
}

func parseInt64(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}
