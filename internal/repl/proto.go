// Package repl is the serving and replication layer: an HTTP server
// exposing commits, ad-hoc queries, point-in-time view materialization,
// view-delta subscriptions, and raw WAL shipping — plus the follower-side
// tailer that keeps a read replica converged with a leader by streaming
// its log.
//
// The wire protocol is line-oriented JSON over HTTP/1.1 (no dependencies
// outside the standard library). Values travel in a typed envelope so the
// follower reconstructs exactly the leader's dynamic types:
//
//	null            NULL
//	{"t":true}      BOOLEAN
//	{"i":5}         BIGINT (exact int64)
//	{"f":1.5}       DOUBLE
//	{"s":"x"}       VARCHAR
//	{"b":"aGk="}    BLOB (base64)
//
// The WAL-shipping endpoint (GET /v1/wal?from=N) is not JSON: it streams
// the leader's committed log bytes verbatim — the same CRC-framed records
// the local capture process tails — so a follower replays the leader's
// commit sequence with no re-encoding.
package repl

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/relalg"
	"repro/internal/tuple"
)

type wireValue struct {
	T *bool    `json:"t,omitempty"`
	I *int64   `json:"i,omitempty"`
	F *float64 `json:"f,omitempty"`
	S *string  `json:"s,omitempty"`
	B *[]byte  `json:"b,omitempty"` // pointer so empty BLOBs survive omitempty
}

// EncodeValue renders a tuple value in the typed wire envelope.
func EncodeValue(v tuple.Value) any {
	switch v.Kind() {
	case tuple.KindNull:
		return nil
	case tuple.KindBool:
		b := v.AsBool()
		return wireValue{T: &b}
	case tuple.KindInt:
		i := v.AsInt()
		return wireValue{I: &i}
	case tuple.KindFloat:
		f := v.AsFloat()
		return wireValue{F: &f}
	case tuple.KindString:
		s := v.AsString()
		return wireValue{S: &s}
	case tuple.KindBytes:
		b := v.AsBytes()
		if b == nil {
			b = []byte{}
		}
		return wireValue{B: &b}
	default:
		return nil
	}
}

// EncodeRow renders a tuple in the typed wire envelope.
func EncodeRow(t tuple.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		out[i] = EncodeValue(v)
	}
	return out
}

// DecodeValue parses one wire value. An envelope with no type field set
// (e.g. {}) is invalid, not NULL — only a JSON null is NULL.
func DecodeValue(raw json.RawMessage) (tuple.Value, error) {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return tuple.Null(), nil
	}
	var w wireValue
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return tuple.Value{}, fmt.Errorf("repl: bad value %s: %w", raw, err)
	}
	switch {
	case w.T != nil:
		return tuple.Bool(*w.T), nil
	case w.I != nil:
		return tuple.Int(*w.I), nil
	case w.F != nil:
		return tuple.Float(*w.F), nil
	case w.S != nil:
		return tuple.String_(*w.S), nil
	case w.B != nil:
		return tuple.Bytes(*w.B), nil
	default:
		return tuple.Value{}, fmt.Errorf("repl: value %s has no type field", raw)
	}
}

// DecodeRow parses a wire row.
func DecodeRow(raws []json.RawMessage) (tuple.Tuple, error) {
	out := make(tuple.Tuple, len(raws))
	for i, raw := range raws {
		v, err := DecodeValue(raw)
		if err != nil {
			return nil, fmt.Errorf("repl: column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// Comparison-operator names on the wire.
var opNames = map[string]relalg.CmpOp{
	"eq": relalg.OpEQ, "ne": relalg.OpNE,
	"lt": relalg.OpLT, "le": relalg.OpLE,
	"gt": relalg.OpGT, "ge": relalg.OpGE,
}

// DecodeOp parses a comparison-operator name ("eq", "ne", "lt", "le",
// "gt", "ge"). An empty name means equality.
func DecodeOp(name string) (relalg.CmpOp, error) {
	if name == "" {
		return relalg.OpEQ, nil
	}
	op, ok := opNames[name]
	if !ok {
		return 0, fmt.Errorf("repl: unknown comparison operator %q", name)
	}
	return op, nil
}

// WriteOp is one operation of a commit request: an insert carrying a row,
// or a delete carrying filters (conjunctive) and an optional limit.
type WriteOp struct {
	Op      string            `json:"op"` // "insert" or "delete"
	Table   string            `json:"table"`
	Row     []json.RawMessage `json:"row,omitempty"`
	Filters []WireFilter      `json:"filters,omitempty"`
	Limit   int               `json:"limit,omitempty"`
}

// WireFilter is a column-vs-constant condition.
type WireFilter struct {
	Table  string          `json:"table,omitempty"`
	Column string          `json:"column"`
	Op     string          `json:"op,omitempty"` // default "eq"
	Value  json.RawMessage `json:"value"`
}

// WireJoin is an equi-join condition of a query.
type WireJoin struct {
	LeftTable   string `json:"leftTable"`
	LeftColumn  string `json:"leftColumn"`
	RightTable  string `json:"rightTable"`
	RightColumn string `json:"rightColumn"`
}

// WireOut selects one output column of a query.
type WireOut struct {
	Table  string `json:"table"`
	Column string `json:"column"`
}

// CommitRequest is the body of POST /v1/commit: the operations commit
// atomically in one transaction.
type CommitRequest struct {
	Ops []WriteOp `json:"ops"`
}

// CommitResponse reports the commit sequence number assigned.
type CommitResponse struct {
	CSN int64 `json:"csn"`
}

// QueryRequest is the body of POST /v1/query: a one-shot
// select-project-join over the current committed state.
type QueryRequest struct {
	Tables  []string     `json:"tables"`
	Joins   []WireJoin   `json:"joins,omitempty"`
	Filters []WireFilter `json:"filters,omitempty"`
	Output  []WireOut    `json:"output,omitempty"`
}

// RowsResponse carries query or materialization results.
type RowsResponse struct {
	Columns []string `json:"columns,omitempty"`
	AsOf    int64    `json:"asOf,omitempty"`
	Rows    [][]any  `json:"rows"`
}

// MaterializeRequest is the body of POST /v1/materialize: the view's
// contents at a point in time. AsOf names a CSN directly; Time (RFC 3339)
// translates through the unit-of-work table. Both zero means the current
// high-water mark. Wait blocks until propagation reaches the target
// instead of failing with "beyond HWM".
type MaterializeRequest struct {
	View string `json:"view"`
	AsOf int64  `json:"asOf,omitempty"`
	Time string `json:"time,omitempty"`
	Wait bool   `json:"wait,omitempty"`
}

// DeltaEvent is one line of the NDJSON view-delta subscription stream: a
// timed change of the view, exactly as minted by propagation.
type DeltaEvent struct {
	CSN   int64 `json:"csn"`
	Count int64 `json:"count"`
	Row   []any `json:"row"`
}

// ViewStatus is one view's maintenance position.
type ViewStatus struct {
	HWM     int64 `json:"hwm"`
	MatTime int64 `json:"matTime"`
}

// StatusResponse is GET /v1/status: the node's role and clock positions.
type StatusResponse struct {
	Role       string                `json:"role"` // "leader" or "follower"
	LastCSN    int64                 `json:"lastCSN"`
	StableCSN  int64                 `json:"stableCSN"`
	AppliedCSN int64                 `json:"appliedCSN,omitempty"` // follower only
	WALSize    int64                 `json:"walSize"`              // committed bytes
	Views      map[string]ViewStatus `json:"views,omitempty"`
}

// errorResponse is the JSON body of non-2xx responses.
type errorResponse struct {
	Error string `json:"error"`
}
