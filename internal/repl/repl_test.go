package repl

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	rollingjoin "repro"
	"repro/internal/tuple"
)

// --- wire codec ---

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []tuple.Value{
		tuple.Null(),
		tuple.Bool(true),
		tuple.Bool(false),
		tuple.Int(0),
		tuple.Int(-7),
		tuple.Int(1<<62 + 12345), // beyond float53 — must survive exactly
		tuple.Float(1.5),
		tuple.Float(-0.25),
		tuple.String_(""),
		tuple.String_("héllo \"world\"\n"),
		tuple.Bytes([]byte{0, 1, 2, 255}),
		tuple.Bytes([]byte{}),
	}
	enc, err := json.Marshal(EncodeRow(tuple.Tuple(vals)))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var raws []json.RawMessage
	if err := json.Unmarshal(enc, &raws); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	got, err := DecodeRow(raws)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.Equal(tuple.Tuple(vals)) {
		t.Errorf("round trip: got %v want %v (wire %s)", got, vals, enc)
	}
}

func TestValueCodecRejectsUntyped(t *testing.T) {
	for _, raw := range []string{`{}`, `{"x":1}`, `5`, `"s"`} {
		if _, err := DecodeValue(json.RawMessage(raw)); err == nil {
			t.Errorf("DecodeValue(%s) accepted; want error", raw)
		}
	}
	v, err := DecodeValue(json.RawMessage("null"))
	if err != nil || !v.IsNull() {
		t.Errorf("DecodeValue(null) = %v, %v; want NULL", v, err)
	}
}

func TestDecodeOp(t *testing.T) {
	if op, err := DecodeOp(""); err != nil || op != 0 {
		t.Errorf("empty op: %v, %v", op, err)
	}
	if _, err := DecodeOp("like"); err == nil {
		t.Errorf("unknown op accepted")
	}
	for _, name := range []string{"eq", "ne", "lt", "le", "gt", "ge"} {
		if _, err := DecodeOp(name); err != nil {
			t.Errorf("op %q: %v", name, err)
		}
	}
}

// --- end-to-end replication over a real socket ---

// testSchema creates the users/orders tables and the joined view on db.
// Leader and follower run identical DDL: catalog state is local, only
// committed data travels on the wire.
func testSchema(t *testing.T, db *rollingjoin.DB) *rollingjoin.View {
	t.Helper()
	if err := db.CreateTable("users",
		rollingjoin.Col("id", rollingjoin.TypeInt),
		rollingjoin.Col("name", rollingjoin.TypeString),
	); err != nil {
		t.Fatalf("create users: %v", err)
	}
	if err := db.CreateTable("orders",
		rollingjoin.Col("uid", rollingjoin.TypeInt),
		rollingjoin.Col("amount", rollingjoin.TypeInt),
	); err != nil {
		t.Fatalf("create orders: %v", err)
	}
	v, err := db.DefineView(rollingjoin.ViewSpec{
		Name:   "big",
		Tables: []string{"users", "orders"},
		Joins: []rollingjoin.Join{{
			LeftTable: "users", LeftColumn: "id",
			RightTable: "orders", RightColumn: "uid",
		}},
		Filters: []rollingjoin.Filter{{
			Table: "orders", Column: "amount", Op: rollingjoin.GE, Value: rollingjoin.Int(10),
		}},
		Output: []rollingjoin.OutCol{
			{Table: "users", Column: "name"},
			{Table: "orders", Column: "amount"},
		},
	}, rollingjoin.Maintain{Interval: 1})
	if err != nil {
		t.Fatalf("define view: %v", err)
	}
	return v
}

// encodeSorted renders tuples in the storage encoding, sorted — the
// byte-equality witness for view comparison.
func encodeSorted(rows []rollingjoin.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = string(tuple.EncodeRow(nil, tuple.Tuple(r)))
	}
	sort.Strings(out)
	return out
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestReplicationConverges(t *testing.T) {
	leader, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lv := testSchema(t, leader)
	srv := httptest.NewServer(NewServer(leader).Handler())
	defer srv.Close()

	follower, err := rollingjoin.Open(rollingjoin.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	fv := testSchema(t, follower)

	tailer := NewTailer(follower, srv.URL)
	tailer.Start()
	defer tailer.Stop()

	// Mixed workload: direct commits on the leader plus commits through the
	// HTTP surface, interleaved with deletes.
	for i := 0; i < 40; i++ {
		if _, err := leader.Update(func(tx *rollingjoin.Tx) error {
			if err := tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str(fmt.Sprintf("u%d", i))); err != nil {
				return err
			}
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(int64(i%25)))
		}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	body := `{"ops":[
		{"op":"insert","table":"orders","row":[{"i":3},{"i":99}]},
		{"op":"delete","table":"orders","filters":[{"column":"uid","op":"eq","value":{"i":7}}]}
	]}`
	resp, err := http.Post(srv.URL+"/v1/commit", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP commit: status %d", resp.StatusCode)
	}
	var cr CommitResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.CSN == 0 {
		t.Fatal("HTTP commit returned CSN 0")
	}

	// Quiesce the leader: roll its view to the frontier, then snapshot the
	// convergence target.
	if _, err := lv.Refresh(); err != nil {
		t.Fatalf("leader refresh: %v", err)
	}
	target := leader.LastCSN()
	hwmTarget := lv.HWM()

	waitFor(t, "follower replay", 10*time.Second, func() bool {
		return follower.AppliedCSN() >= target
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fv.WaitForHWMContext(ctx, hwmTarget); err != nil {
		t.Fatalf("follower HWM %d (applied %d, leader hwm %d): %v",
			fv.HWM(), follower.AppliedCSN(), hwmTarget, err)
	}

	// Byte-equal view contents at the same instant.
	want, err := lv.MaterializeAt(hwmTarget)
	if err != nil {
		t.Fatalf("leader materialize: %v", err)
	}
	got, err := fv.MaterializeAt(hwmTarget)
	if err != nil {
		t.Fatalf("follower materialize: %v", err)
	}
	wenc, genc := encodeSorted(want), encodeSorted(got)
	if len(wenc) != len(genc) {
		t.Fatalf("cardinality: leader %d follower %d", len(wenc), len(genc))
	}
	for i := range wenc {
		if wenc[i] != genc[i] {
			t.Fatalf("row %d differs:\nleader   %q\nfollower %q", i, wenc[i], genc[i])
		}
	}
	if len(wenc) == 0 {
		t.Fatal("empty view — workload did not exercise the join")
	}

	// The follower's base tables answer ad-hoc queries identically.
	fq, err := follower.Query(rollingjoin.ViewSpec{
		Tables: []string{"orders"},
		Filters: []rollingjoin.Filter{{
			Table: "orders", Column: "amount", Op: rollingjoin.GE, Value: rollingjoin.Int(10),
		}},
	})
	if err != nil {
		t.Fatalf("follower query: %v", err)
	}
	lq, err := leader.Query(rollingjoin.ViewSpec{
		Tables: []string{"orders"},
		Filters: []rollingjoin.Filter{{
			Table: "orders", Column: "amount", Op: rollingjoin.GE, Value: rollingjoin.Int(10),
		}},
	})
	if err != nil {
		t.Fatalf("leader query: %v", err)
	}
	if len(fq.Rows) != len(lq.Rows) {
		t.Fatalf("base query rows: leader %d follower %d", len(lq.Rows), len(fq.Rows))
	}

	if tailer.Err() != nil {
		t.Fatalf("tailer failed: %v", tailer.Err())
	}

	// Replication-lag gauges: converged follower reports zero lag.
	st := follower.Engine().Stats()
	if st.Repl.Role != "follower" {
		t.Fatalf("follower role %q", st.Repl.Role)
	}
	if st.Repl.FollowerCSN < int64(target) {
		t.Fatalf("follower CSN gauge %d < target %d", st.Repl.FollowerCSN, target)
	}
	if st.Repl.BytesShipped == 0 {
		t.Fatal("BytesShipped gauge is zero after replication")
	}
	lst := leader.Engine().Stats()
	if lst.Repl.Role != "leader" || lst.Repl.BytesShipped == 0 {
		t.Fatalf("leader repl stats: %+v", lst.Repl)
	}
}

func TestFollowerRejectsWrites(t *testing.T) {
	follower, err := rollingjoin.Open(rollingjoin.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	testSchema(t, follower)

	if _, err := follower.Update(func(tx *rollingjoin.Tx) error {
		return tx.Insert("users", rollingjoin.Int(1), rollingjoin.Str("x"))
	}); !errors.Is(err, rollingjoin.ErrReadOnly) {
		t.Fatalf("direct insert on follower: %v; want ErrReadOnly", err)
	}
	if _, err := follower.Update(func(tx *rollingjoin.Tx) error {
		_, err := tx.Delete("users", "id", rollingjoin.EQ, rollingjoin.Int(1), 0)
		return err
	}); !errors.Is(err, rollingjoin.ErrReadOnly) {
		t.Fatalf("direct delete on follower: %v; want ErrReadOnly", err)
	}

	srv := httptest.NewServer(NewServer(follower).Handler())
	defer srv.Close()
	body := `{"ops":[{"op":"insert","table":"users","row":[{"i":1},{"s":"x"}]}]}`
	resp, err := http.Post(srv.URL+"/v1/commit", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("HTTP commit on follower: status %d; want 403", resp.StatusCode)
	}
}

func TestDeltaSubscription(t *testing.T) {
	leader, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	testSchema(t, leader)
	srv := httptest.NewServer(NewServer(leader).Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/deltas?view=big&from=0", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}

	const n = 5
	for i := 0; i < n; i++ {
		if _, err := leader.Update(func(tx *rollingjoin.Tx) error {
			if err := tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str("u")); err != nil {
				return err
			}
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(50))
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Every commit joins (amount 50 >= 10): the stream must deliver timed
	// events in CSN order whose signed counts net to n live rows. (Rolling
	// propagation may interleave negative compensation deltas, so individual
	// counts can be negative; the net effect cannot.)
	sc := bufio.NewScanner(resp.Body)
	var events []DeltaEvent
	var net int64
	for net < n && sc.Scan() {
		var ev DeltaEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		net += ev.Count
	}
	if net != n {
		t.Fatalf("net %d over %d events, want %d (scan err %v)", net, len(events), n, sc.Err())
	}
	var last int64
	for i, ev := range events {
		if ev.CSN < last {
			t.Errorf("event %d: CSN %d went backwards from %d", i, ev.CSN, last)
		}
		last = ev.CSN
		if len(ev.Row) != 2 {
			t.Errorf("event %d: arity %d; want 2", i, len(ev.Row))
		}
	}
}

func TestMaterializeEndpoint(t *testing.T) {
	leader, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	lv := testSchema(t, leader)
	srv := httptest.NewServer(NewServer(leader).Handler())
	defer srv.Close()

	// A wall-time target before every commit has no CSN to map to.
	body := fmt.Sprintf(`{"view":"big","time":%q}`, time.Unix(0, 0).UTC().Format(time.RFC3339Nano))
	resp, err := http.Post(srv.URL+"/v1/materialize", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("materialize before commits: status %d; want 404", resp.StatusCode)
	}

	for i := 0; i < 3; i++ {
		if _, err := leader.Update(func(tx *rollingjoin.Tx) error {
			if err := tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str("u")); err != nil {
				return err
			}
			return tx.Insert("orders", rollingjoin.Int(int64(i)), rollingjoin.Int(20))
		}); err != nil {
			t.Fatal(err)
		}
	}
	target := leader.LastCSN()
	body = fmt.Sprintf(`{"view":"big","asOf":%d,"wait":true}`, target)
	resp, err = http.Post(srv.URL+"/v1/materialize", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("materialize asOf=%d: status %d", target, resp.StatusCode)
	}
	var rr RowsResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Rows) != 3 {
		t.Fatalf("materialized %d rows, want 3", len(rr.Rows))
	}
	if rr.AsOf != int64(target) {
		t.Fatalf("asOf %d, want %d", rr.AsOf, target)
	}
	_ = lv
}

func TestTailerDivergenceFailStop(t *testing.T) {
	// Ship real committed frames from leader A into the follower...
	leaderA, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderA.Close()
	testSchema(t, leaderA)
	srvA := httptest.NewServer(NewServer(leaderA).Handler())

	follower, err := rollingjoin.Open(rollingjoin.Options{Follower: true})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	testSchema(t, follower)

	for i := 0; i < 10; i++ {
		if _, err := leaderA.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("users", rollingjoin.Int(int64(i)), rollingjoin.Str("u"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	target := leaderA.LastCSN()
	tailerA := NewTailer(follower, srvA.URL)
	tailerA.Start()
	waitFor(t, "initial replication", 10*time.Second, func() bool {
		return follower.AppliedCSN() >= target
	})
	tailerA.Stop()
	if err := tailerA.Err(); err != nil {
		t.Fatalf("tailer A: %v", err)
	}
	srvA.Close()
	// Leader A's propagation kept minting CSNs past the snapshot; the
	// prefix the follower actually holds is whatever replay reached.
	applied := follower.AppliedCSN()

	// ...then point it at a fresh leader with a shorter history. The
	// follower holds bytes leader B never wrote: must fail-stop, not splice.
	leaderB, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer leaderB.Close()
	testSchema(t, leaderB)
	srvB := httptest.NewServer(NewServer(leaderB).Handler())
	defer srvB.Close()

	tailerB := NewTailer(follower, srvB.URL)
	tailerB.Start()
	defer tailerB.Stop()
	waitFor(t, "divergence detection", 10*time.Second, func() bool {
		return tailerB.Err() != nil
	})
	if !errors.Is(tailerB.Err(), ErrDiverged) {
		t.Fatalf("tailer B error %v; want ErrDiverged", tailerB.Err())
	}
	// The replica kept its consistent prefix.
	if follower.AppliedCSN() != applied {
		t.Fatalf("follower applied CSN moved: %d != %d", follower.AppliedCSN(), applied)
	}
}
