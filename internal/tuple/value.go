// Package tuple provides the value, tuple, and schema primitives shared by
// every layer of the rolling-join view maintenance system: typed scalar
// values, fixed-schema tuples, ordered binary key encoding, and row
// (de)serialization used by the storage engine and the write-ahead log.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBytes:
		return "BLOB"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // bool (0/1) and int payload
	f    float64
	s    string // string payload
	b    []byte // bytes payload
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns a 64-bit integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a 64-bit floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore so the
// Stringer method keeps the conventional name.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a byte-slice value. The slice is not copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, b: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics if the kind is not bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("tuple: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsInt returns the integer payload; it panics if the kind is not int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("tuple: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload; it panics if the kind is not float.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic("tuple: AsFloat on " + v.kind.String())
	}
	return v.f
}

// AsString returns the string payload; it panics if the kind is not string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("tuple: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBytes returns the bytes payload; it panics if the kind is not bytes.
func (v Value) AsBytes() []byte {
	if v.kind != KindBytes {
		panic("tuple: AsBytes on " + v.kind.String())
	}
	return v.b
}

// String renders the value for debugging and table output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before every non-NULL value; values
// of different kinds order by kind. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool, KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindBytes:
		return compareBytes(a.b, b.b)
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether two values are identical in kind and payload.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a, inlined so hashing never allocates a hash.Hash64. The byte
// stream fed to the mix is exactly what the previous hash/fnv-based
// implementation wrote — seed as 8 little-endian bytes, the kind byte,
// then the payload — so hashes are stable across the rewrite.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvUint64LE(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xFF)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

func hashSeedKind(seed uint64, k Kind) uint64 {
	return fnvByte(fnvUint64LE(fnvOffset64, seed), byte(k))
}

// HashNull, HashBool, HashInt, HashFloat, HashString, and HashBytes hash
// one payload of the named kind exactly as Value.Hash would, without
// requiring a Value. Columnar batch kernels use them to hash typed column
// vectors directly.
func HashNull(seed uint64) uint64 { return hashSeedKind(seed, KindNull) }

// HashBool hashes a boolean payload.
func HashBool(seed uint64, v bool) uint64 {
	var i uint64
	if v {
		i = 1
	}
	return fnvUint64LE(hashSeedKind(seed, KindBool), i)
}

// HashInt hashes an integer payload.
func HashInt(seed uint64, v int64) uint64 {
	return fnvUint64LE(hashSeedKind(seed, KindInt), uint64(v))
}

// HashFloat hashes a float payload.
func HashFloat(seed uint64, v float64) uint64 {
	return fnvUint64LE(hashSeedKind(seed, KindFloat), math.Float64bits(v))
}

// HashString hashes a string payload.
func HashString(seed uint64, s string) uint64 {
	return fnvString(hashSeedKind(seed, KindString), s)
}

// HashBytes hashes a bytes payload.
func HashBytes(seed uint64, b []byte) uint64 {
	return fnvBytes(hashSeedKind(seed, KindBytes), b)
}

// Hash mixes the value into an FNV-1a hash and returns the result. It is
// consistent with Equal: equal values hash equally. It does not allocate.
func (v Value) Hash(seed uint64) uint64 {
	switch v.kind {
	case KindBool, KindInt:
		return fnvUint64LE(hashSeedKind(seed, v.kind), uint64(v.i))
	case KindFloat:
		return HashFloat(seed, v.f)
	case KindString:
		return HashString(seed, v.s)
	case KindBytes:
		return HashBytes(seed, v.b)
	default:
		return hashSeedKind(seed, v.kind)
	}
}
