// Package tuple provides the value, tuple, and schema primitives shared by
// every layer of the rolling-join view maintenance system: typed scalar
// values, fixed-schema tuples, ordered binary key encoding, and row
// (de)serialization used by the storage engine and the write-ahead log.
package tuple

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBytes:
		return "BLOB"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // bool (0/1) and int payload
	f    float64
	s    string // string payload
	b    []byte // bytes payload
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Int returns a 64-bit integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a 64-bit floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore so the
// Stringer method keeps the conventional name.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a byte-slice value. The slice is not copied.
func Bytes(v []byte) Value { return Value{kind: KindBytes, b: v} }

// Kind reports the value's dynamic type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics if the kind is not bool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("tuple: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsInt returns the integer payload; it panics if the kind is not int.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("tuple: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload; it panics if the kind is not float.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic("tuple: AsFloat on " + v.kind.String())
	}
	return v.f
}

// AsString returns the string payload; it panics if the kind is not string.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("tuple: AsString on " + v.kind.String())
	}
	return v.s
}

// AsBytes returns the bytes payload; it panics if the kind is not bytes.
func (v Value) AsBytes() []byte {
	if v.kind != KindBytes {
		panic("tuple: AsBytes on " + v.kind.String())
	}
	return v.b
}

// String renders the value for debugging and table output.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBytes:
		return fmt.Sprintf("x'%x'", v.b)
	default:
		return "?"
	}
}

// Compare orders two values. NULL sorts before every non-NULL value; values
// of different kinds order by kind. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindBool, KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case KindFloat:
		switch {
		case a.f < b.f:
			return -1
		case a.f > b.f:
			return 1
		}
		return 0
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	case KindBytes:
		return compareBytes(a.b, b.b)
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Equal reports whether two values are identical in kind and payload.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Hash mixes the value into an FNV-1a hash and returns the result. It is
// consistent with Equal: equal values hash equally.
func (v Value) Hash(seed uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	buf[0] = byte(v.kind)
	h.Write(buf[:1])
	switch v.kind {
	case KindBool, KindInt:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		h.Write(buf[:8])
	case KindFloat:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		h.Write(buf[:8])
	case KindString:
		h.Write([]byte(v.s))
	case KindBytes:
		h.Write(v.b)
	}
	return h.Sum64()
}
