package tuple

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file implements two encodings:
//
//  1. Ordered key encoding (EncodeKey/DecodeKey): byte-comparable, i.e.
//     bytes.Compare of encodings agrees with Tuple.Compare. Used as B+ tree
//     keys for indexes and delta-table timestamp ordering.
//  2. Row encoding (EncodeRow/DecodeRow): compact length-prefixed encoding
//     used for heap rows and WAL payloads. Not order-preserving.

// Key-encoding tag bytes, chosen so tags order like Kind order.
const (
	tagNull   byte = 0x01
	tagBool   byte = 0x02
	tagInt    byte = 0x03
	tagFloat  byte = 0x04
	tagString byte = 0x05
	tagBytes  byte = 0x06
)

// EncodeKey appends a byte-comparable encoding of the tuple to dst.
func EncodeKey(dst []byte, t Tuple) []byte {
	for _, v := range t {
		dst = EncodeKeyValue(dst, v)
	}
	return dst
}

// EncodeKeyValue appends a byte-comparable encoding of one value to dst.
func EncodeKeyValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, tagNull)
	case KindBool:
		if v.i != 0 {
			return append(dst, tagBool, 1)
		}
		return append(dst, tagBool, 0)
	case KindInt:
		dst = append(dst, tagInt)
		var buf [8]byte
		// Flip the sign bit so negative ints order before positive ones.
		binary.BigEndian.PutUint64(buf[:], uint64(v.i)^(1<<63))
		return append(dst, buf[:]...)
	case KindFloat:
		dst = append(dst, tagFloat)
		bits := math.Float64bits(v.f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative floats: flip all bits
		} else {
			bits |= 1 << 63 // positive floats: flip sign bit
		}
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], bits)
		return append(dst, buf[:]...)
	case KindString:
		dst = append(dst, tagString)
		return encodeKeyBytes(dst, []byte(v.s))
	case KindBytes:
		dst = append(dst, tagBytes)
		return encodeKeyBytes(dst, v.b)
	default:
		panic("tuple: unknown kind in EncodeKeyValue")
	}
}

// encodeKeyBytes escapes 0x00 as 0x00 0xFF and terminates with 0x00 0x00 so
// that prefixes order correctly.
func encodeKeyBytes(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// ErrCorrupt is returned when a decoder encounters malformed input.
var ErrCorrupt = errors.New("tuple: corrupt encoding")

// DecodeKeyValue decodes one key-encoded value from b, returning the value
// and the remaining bytes.
func DecodeKeyValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Value{}, nil, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNull:
		return Null(), b, nil
	case tagBool:
		if len(b) < 1 {
			return Value{}, nil, ErrCorrupt
		}
		return Bool(b[0] != 0), b[1:], nil
	case tagInt:
		if len(b) < 8 {
			return Value{}, nil, ErrCorrupt
		}
		u := binary.BigEndian.Uint64(b[:8]) ^ (1 << 63)
		return Int(int64(u)), b[8:], nil
	case tagFloat:
		if len(b) < 8 {
			return Value{}, nil, ErrCorrupt
		}
		bits := binary.BigEndian.Uint64(b[:8])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), b[8:], nil
	case tagString:
		raw, rest, err := decodeKeyBytes(b)
		if err != nil {
			return Value{}, nil, err
		}
		return String_(string(raw)), rest, nil
	case tagBytes:
		raw, rest, err := decodeKeyBytes(b)
		if err != nil {
			return Value{}, nil, err
		}
		return Bytes(raw), rest, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: bad key tag 0x%02x", ErrCorrupt, tag)
	}
}

func decodeKeyBytes(b []byte) (out, rest []byte, err error) {
	for i := 0; i < len(b); i++ {
		if b[i] != 0x00 {
			out = append(out, b[i])
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, ErrCorrupt
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i++
		case 0x00:
			return out, b[i+2:], nil
		default:
			return nil, nil, ErrCorrupt
		}
	}
	return nil, nil, ErrCorrupt
}

// DecodeKey decodes exactly n key-encoded values from b.
func DecodeKey(b []byte, n int) (Tuple, error) {
	t := make(Tuple, 0, n)
	var v Value
	var err error
	for i := 0; i < n; i++ {
		v, b, err = DecodeKeyValue(b)
		if err != nil {
			return nil, err
		}
		t = append(t, v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return t, nil
}

// EncodeRow appends a compact (non-ordered) encoding of the tuple to dst.
// Layout: uvarint arity, then per value a kind byte followed by the payload.
func EncodeRow(dst []byte, t Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = append(dst, byte(v.kind))
		switch v.kind {
		case KindNull:
		case KindBool, KindInt:
			dst = binary.AppendVarint(dst, v.i)
		case KindFloat:
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
			dst = append(dst, buf[:]...)
		case KindString:
			dst = binary.AppendUvarint(dst, uint64(len(v.s)))
			dst = append(dst, v.s...)
		case KindBytes:
			dst = binary.AppendUvarint(dst, uint64(len(v.b)))
			dst = append(dst, v.b...)
		}
	}
	return dst
}

// AppendRowArity, AppendRowNull, AppendRowBool, AppendRowInt,
// AppendRowFloat, AppendRowString, and AppendRowBytes emit the row
// encoding piecewise: an arity header followed by one call per value.
// Their concatenation is byte-identical to EncodeRow of the equivalent
// tuple, so columnar batches can serialize rows straight from typed
// column vectors without materializing a Tuple.
func AppendRowArity(dst []byte, arity int) []byte {
	return binary.AppendUvarint(dst, uint64(arity))
}

// AppendRowNull appends a row-encoded NULL.
func AppendRowNull(dst []byte) []byte { return append(dst, byte(KindNull)) }

// AppendRowBool appends a row-encoded boolean.
func AppendRowBool(dst []byte, v bool) []byte {
	var i int64
	if v {
		i = 1
	}
	dst = append(dst, byte(KindBool))
	return binary.AppendVarint(dst, i)
}

// AppendRowInt appends a row-encoded integer.
func AppendRowInt(dst []byte, v int64) []byte {
	dst = append(dst, byte(KindInt))
	return binary.AppendVarint(dst, v)
}

// AppendRowFloat appends a row-encoded float.
func AppendRowFloat(dst []byte, v float64) []byte {
	dst = append(dst, byte(KindFloat))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	return append(dst, buf[:]...)
}

// AppendRowString appends a row-encoded string.
func AppendRowString(dst []byte, s string) []byte {
	dst = append(dst, byte(KindString))
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendRowBytes appends a row-encoded byte slice.
func AppendRowBytes(dst []byte, b []byte) []byte {
	dst = append(dst, byte(KindBytes))
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// RowSink receives the values of one row-encoded tuple as they are
// decoded, without a Tuple ever being materialized. PushString and
// PushBytes hand the sink a window into the encoded input that is only
// valid for the duration of the call: the sink must copy (or intern) the
// payload if it retains it.
type RowSink interface {
	BeginRow(arity int)
	PushNull()
	PushBool(v bool)
	PushInt(v int64)
	PushFloat(v float64)
	PushString(s []byte)
	PushBytes(b []byte)
}

// DecodeRowInto decodes a tuple encoded by EncodeRow, streaming each
// value into sink instead of building a Tuple. It returns the remaining
// bytes. On error the sink may have received a prefix of the row.
func DecodeRowInto(b []byte, sink RowSink) ([]byte, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	b = b[n:]
	sink.BeginRow(int(arity))
	for i := uint64(0); i < arity; i++ {
		if len(b) == 0 {
			return nil, ErrCorrupt
		}
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindNull:
			sink.PushNull()
		case KindBool, KindInt:
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, ErrCorrupt
			}
			b = b[n:]
			if kind == KindBool {
				sink.PushBool(v != 0)
			} else {
				sink.PushInt(v)
			}
		case KindFloat:
			if len(b) < 8 {
				return nil, ErrCorrupt
			}
			sink.PushFloat(math.Float64frombits(binary.LittleEndian.Uint64(b[:8])))
			b = b[8:]
		case KindString, KindBytes:
			ln, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < ln {
				return nil, ErrCorrupt
			}
			payload := b[n : n+int(ln)]
			b = b[n+int(ln):]
			if kind == KindString {
				sink.PushString(payload)
			} else {
				sink.PushBytes(payload)
			}
		default:
			return nil, fmt.Errorf("%w: bad row kind 0x%02x", ErrCorrupt, byte(kind))
		}
	}
	return b, nil
}

// DecodeRow decodes a tuple encoded by EncodeRow, returning the tuple and
// the remaining bytes.
func DecodeRow(b []byte) (Tuple, []byte, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, ErrCorrupt
	}
	b = b[n:]
	t := make(Tuple, 0, arity)
	for i := uint64(0); i < arity; i++ {
		if len(b) == 0 {
			return nil, nil, ErrCorrupt
		}
		kind := Kind(b[0])
		b = b[1:]
		switch kind {
		case KindNull:
			t = append(t, Null())
		case KindBool, KindInt:
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, nil, ErrCorrupt
			}
			b = b[n:]
			if kind == KindBool {
				t = append(t, Bool(v != 0))
			} else {
				t = append(t, Int(v))
			}
		case KindFloat:
			if len(b) < 8 {
				return nil, nil, ErrCorrupt
			}
			t = append(t, Float(math.Float64frombits(binary.LittleEndian.Uint64(b[:8]))))
			b = b[8:]
		case KindString, KindBytes:
			ln, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < ln {
				return nil, nil, ErrCorrupt
			}
			payload := b[n : n+int(ln)]
			b = b[n+int(ln):]
			if kind == KindString {
				t = append(t, String_(string(payload)))
			} else {
				t = append(t, Bytes(append([]byte(nil), payload...)))
			}
		default:
			return nil, nil, fmt.Errorf("%w: bad row kind 0x%02x", ErrCorrupt, byte(kind))
		}
	}
	return t, b, nil
}
