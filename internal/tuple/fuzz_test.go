package tuple

import (
	"bytes"
	"math"
	"testing"
)

// The fuzz targets check the two encoding contracts the storage engine
// leans on:
//
//  1. Ordered-key comparability: bytes.Compare of EncodeKey outputs must
//     agree with Tuple.Compare (this is what makes key-encoded B+ tree
//     ranges correct).
//  2. Round-trips: DecodeKey∘EncodeKey and DecodeRow∘EncodeRow are
//     identities, checked by re-encoding the decoded tuple and requiring
//     byte equality (stricter than value equality — it also pins the
//     encodings themselves).
//
// Tuples are derived from the raw fuzz input by a small interpreter so
// coverage-guided fuzzing can steer arity, kinds, and payloads
// independently. Two float caveats are handled in the generator rather
// than the properties: -0.0 is normalized to +0.0 and NaN payloads are
// flagged, because Compare (which uses < and >) considers -0.0 == +0.0
// and NaN incomparable while the sign-flip key encoding distinguishes
// their bit patterns. Round-trips still cover NaN; only the ordering
// property skips it.

// fuzzReader consumes the fuzz input as a byte stream, yielding zeros
// once exhausted so every input maps to some tuple pair.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

func (r *fuzzReader) uint64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(r.byte())
	}
	return v
}

func (r *fuzzReader) blob(max int) []byte {
	n := int(r.byte()) % (max + 1)
	out := make([]byte, n)
	for i := range out {
		out[i] = r.byte()
	}
	return out
}

// next derives one value. hasNaN is set when a NaN float is produced.
func (r *fuzzReader) next(hasNaN *bool) Value {
	switch Kind(r.byte() % 6) {
	case KindNull:
		return Null()
	case KindBool:
		return Bool(r.byte()%2 == 1)
	case KindInt:
		return Int(int64(r.uint64()))
	case KindFloat:
		f := math.Float64frombits(r.uint64())
		if math.IsNaN(f) {
			*hasNaN = true
		}
		if f == 0 {
			f = 0 // normalize -0.0: Compare cannot distinguish it from +0.0
		}
		return Float(f)
	case KindString:
		return String_(string(r.blob(12)))
	default:
		return Bytes(r.blob(12))
	}
}

func (r *fuzzReader) tuple(arity int, hasNaN *bool) Tuple {
	t := make(Tuple, arity)
	for i := range t {
		t[i] = r.next(hasNaN)
	}
	return t
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// seedCorpus returns inputs covering every tag kind plus the edge cases
// the encodings special-case: NaN, ±Inf, empty strings, and strings
// containing the 0x00 escape byte.
func seedCorpus() [][]byte {
	mk := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	u64 := func(v uint64) []byte {
		var b [8]byte
		for i := 7; i >= 0; i-- {
			b[i] = byte(v)
			v >>= 8
		}
		return b[:]
	}
	return [][]byte{
		// arity 6, one value of each kind (null, bool, int, float, string, bytes)
		mk([]byte{6, 6}, []byte{0}, []byte{1, 1}, []byte{2}, u64(42),
			[]byte{3}, u64(math.Float64bits(1.5)),
			[]byte{4, 3}, []byte("abc"), []byte{5, 2, 0xDE, 0xAD},
			[]byte{1}, []byte{0}),
		// NaN and infinities
		mk([]byte{3, 3}, []byte{3}, u64(math.Float64bits(math.NaN())),
			[]byte{3}, u64(math.Float64bits(math.Inf(1))),
			[]byte{3}, u64(math.Float64bits(math.Inf(-1)))),
		// negative zero vs positive zero
		mk([]byte{2, 2}, []byte{3}, u64(math.Float64bits(math.Copysign(0, -1))),
			[]byte{3}, u64(0)),
		// empty string, string with embedded 0x00, prefix pair
		mk([]byte{3, 3}, []byte{4, 0}, []byte{4, 2, 'a', 0x00}, []byte{4, 1, 'a'}),
		// int sign boundary
		mk([]byte{2, 2}, []byte{2}, u64(1<<63), []byte{2}, u64(1<<63-1)),
		// empty bytes vs single 0x00 byte
		mk([]byte{2, 2}, []byte{5, 0}, []byte{5, 1, 0x00}),
	}
}

// FuzzEncodeRoundTrip checks both encodings round-trip and that the key
// encoding orders like Tuple.Compare.
func FuzzEncodeRoundTrip(f *testing.F) {
	for _, seed := range seedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{data: data}
		arityA := int(r.byte()) % 5
		arityB := int(r.byte()) % 5
		var hasNaN bool
		a := r.tuple(arityA, &hasNaN)
		b := r.tuple(arityB, &hasNaN)

		for _, tup := range []Tuple{a, b} {
			// Ordered-key round-trip: decode must succeed and re-encode to
			// the same bytes.
			enc := EncodeKey(nil, tup)
			dec, err := DecodeKey(enc, len(tup))
			if err != nil {
				t.Fatalf("DecodeKey(%v): %v", tup, err)
			}
			if re := EncodeKey(nil, dec); !bytes.Equal(enc, re) {
				t.Fatalf("key re-encode mismatch for %v: % x vs % x", tup, enc, re)
			}
			// Row round-trip, same discipline.
			row := EncodeRow(nil, tup)
			decRow, rest, err := DecodeRow(row)
			if err != nil {
				t.Fatalf("DecodeRow(%v): %v", tup, err)
			}
			if len(rest) != 0 {
				t.Fatalf("DecodeRow(%v): %d trailing bytes", tup, len(rest))
			}
			if re := EncodeRow(nil, decRow); !bytes.Equal(row, re) {
				t.Fatalf("row re-encode mismatch for %v: % x vs % x", tup, row, re)
			}
		}

		// Comparability: byte order of encodings == tuple order. NaN breaks
		// trichotomy in Compare itself (x < NaN and x > NaN are both false),
		// so inputs containing NaN only exercise the round-trips above.
		if !hasNaN {
			ba, bb := EncodeKey(nil, a), EncodeKey(nil, b)
			if got, want := sign(bytes.Compare(ba, bb)), sign(a.Compare(b)); got != want {
				t.Fatalf("order mismatch: bytes.Compare=%d Tuple.Compare=%d\na=%v\nb=%v", got, want, a, b)
			}
		}
	})
}

// FuzzDecodeRobust feeds arbitrary bytes to the decoders: they must
// reject or accept without panicking, and whatever DecodeRowInto accepts
// must agree with DecodeRow.
func FuzzDecodeRobust(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 1})
	f.Add(EncodeRow(nil, Tuple{Int(7), String_("x")}))
	f.Add(EncodeKey(nil, Tuple{Float(3.14), Bytes([]byte{0, 1})}))
	f.Fuzz(func(t *testing.T, data []byte) {
		DecodeKeyValue(data)
		tup, rest, err := DecodeRow(data)
		var sink tupleSink
		restInto, errInto := DecodeRowInto(data, &sink)
		if (err == nil) != (errInto == nil) {
			t.Fatalf("DecodeRow err=%v but DecodeRowInto err=%v", err, errInto)
		}
		if err == nil {
			if !bytes.Equal(rest, restInto) {
				t.Fatalf("rest mismatch: % x vs % x", rest, restInto)
			}
			if len(tup) != len(sink.t) {
				t.Fatalf("arity mismatch: %d vs %d", len(tup), len(sink.t))
			}
			if !bytes.Equal(EncodeRow(nil, tup), EncodeRow(nil, sink.t)) {
				t.Fatalf("value mismatch: %v vs %v", tup, sink.t)
			}
		}
	})
}

// tupleSink materializes a RowSink stream back into a Tuple, for
// cross-checking DecodeRowInto against DecodeRow.
type tupleSink struct{ t Tuple }

func (s *tupleSink) BeginRow(arity int)  { s.t = make(Tuple, 0, arity) }
func (s *tupleSink) PushNull()           { s.t = append(s.t, Null()) }
func (s *tupleSink) PushBool(v bool)     { s.t = append(s.t, Bool(v)) }
func (s *tupleSink) PushInt(v int64)     { s.t = append(s.t, Int(v)) }
func (s *tupleSink) PushFloat(v float64) { s.t = append(s.t, Float(v)) }
func (s *tupleSink) PushString(b []byte) { s.t = append(s.t, String_(string(b))) }
func (s *tupleSink) PushBytes(b []byte)  { s.t = append(s.t, Bytes(append([]byte(nil), b...))) }
