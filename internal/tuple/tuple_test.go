package tuple

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if Bool(true).AsBool() != true || Bool(false).AsBool() != false {
		t.Fatal("bool roundtrip")
	}
	if Int(-42).AsInt() != -42 {
		t.Fatal("int roundtrip")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Fatal("float roundtrip")
	}
	if String_("hi").AsString() != "hi" {
		t.Fatal("string roundtrip")
	}
	if !bytes.Equal(Bytes([]byte{1, 2}).AsBytes(), []byte{1, 2}) {
		t.Fatal("bytes roundtrip")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Int(1).AsString()
}

func TestCompareOrdering(t *testing.T) {
	ordered := []Value{
		Null(),
		Bool(false), Bool(true),
		Int(math.MinInt64), Int(-1), Int(0), Int(7), Int(math.MaxInt64),
		Float(-1e300), Float(-0.5), Float(0), Float(2.25), Float(1e300),
		String_(""), String_("a"), String_("ab"), String_("b"),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 1}), Bytes([]byte{1}),
	}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	a := String_("hello")
	b := String_("hello")
	if a.Hash(1) != b.Hash(1) {
		t.Fatal("equal values must hash equally")
	}
	if a.Hash(1) == a.Hash(2) {
		t.Fatal("seed should perturb hash")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Bool(true), "true"},
		{Int(-9), "-9"},
		{Float(1.5), "1.5"},
		{String_("x"), "x"},
		{Bytes([]byte{0xab}), "x'ab'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Float(r.NormFloat64() * 1e6)
	case 4:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return String_(string(b))
	default:
		n := r.Intn(12)
		b := make([]byte, n)
		r.Read(b)
		return Bytes(b)
	}
}

func randTuple(r *rand.Rand, n int) Tuple {
	t := make(Tuple, n)
	for i := range t {
		t[i] = randValue(r)
	}
	return t
}

func TestKeyEncodingOrderPreserving(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		a := randTuple(r, 1+r.Intn(3))
		b := randTuple(r, 1+r.Intn(3))
		ka := EncodeKey(nil, a)
		kb := EncodeKey(nil, b)
		want := a.Compare(b)
		got := bytes.Compare(ka, kb)
		if (want < 0) != (got < 0) || (want > 0) != (got > 0) {
			t.Fatalf("order mismatch: %v vs %v: tuple %d key %d", a, b, want, got)
		}
	}
}

func TestKeyEncodingRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + r.Intn(4)
		in := randTuple(r, n)
		out, err := DecodeKey(EncodeKey(nil, in), n)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !in.Equal(out) {
			t.Fatalf("roundtrip: %v != %v", in, out)
		}
	}
}

func TestKeyEncodingEmbeddedZeros(t *testing.T) {
	in := Tuple{Bytes([]byte{0, 0, 1, 0}), String_("a\x00b")}
	out, err := DecodeKey(EncodeKey(nil, in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Fatalf("roundtrip: %v != %v", in, out)
	}
}

func TestRowEncodingRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		in := randTuple(r, r.Intn(6))
		out, rest, err := DecodeRow(EncodeRow(nil, in))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("trailing bytes: %d", len(rest))
		}
		if !in.Equal(out) {
			t.Fatalf("roundtrip: %v != %v", in, out)
		}
	}
}

func TestRowEncodingQuick(t *testing.T) {
	f := func(i int64, s string, b []byte, fl float64, ok bool) bool {
		in := Tuple{Int(i), String_(s), Bytes(b), Float(fl), Bool(ok), Null()}
		out, rest, err := DecodeRow(EncodeRow(nil, in))
		return err == nil && len(rest) == 0 && in.Equal(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	if _, _, err := DecodeKeyValue(nil); err == nil {
		t.Fatal("want error on empty input")
	}
	if _, _, err := DecodeKeyValue([]byte{0x7F}); err == nil {
		t.Fatal("want error on bad tag")
	}
	if _, err := DecodeKey([]byte{tagInt, 1, 2}, 1); err == nil {
		t.Fatal("want error on short int")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Fatal("want error on empty row")
	}
	if _, _, err := DecodeRow([]byte{1, 0x7F}); err == nil {
		t.Fatal("want error on bad row kind")
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(Column{"id", KindInt}, Column{"name", KindString})
	if s.Arity() != 2 {
		t.Fatal("arity")
	}
	if s.Index("name") != 1 || s.Index("missing") != -1 {
		t.Fatal("index")
	}
	if s.MustIndex("id") != 0 {
		t.Fatal("must index")
	}
	if err := s.Validate(Tuple{Int(1), String_("a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(Tuple{Int(1), Null()}); err != nil {
		t.Fatal("null should validate:", err)
	}
	if err := s.Validate(Tuple{Int(1)}); err == nil {
		t.Fatal("want arity error")
	}
	if err := s.Validate(Tuple{String_("x"), String_("a")}); err == nil {
		t.Fatal("want kind error")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema(Column{"a", KindInt}, Column{"a", KindInt})
}

func TestSchemaMustIndexPanics(t *testing.T) {
	s := NewSchema(Column{"a", KindInt})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.MustIndex("b")
}

func TestSchemaProjectAndConcat(t *testing.T) {
	a := NewSchema(Column{"id", KindInt}, Column{"x", KindString})
	b := NewSchema(Column{"id", KindInt}, Column{"y", KindFloat})
	c := ConcatSchemas(a, b, "r2_")
	if got := c.Names(); got[0] != "id" || got[2] != "r2_id" || got[3] != "y" {
		t.Fatalf("concat names: %v", got)
	}
	p := c.Project([]int{3, 0}, []string{"", "left_id"})
	if p.Names()[0] != "y" || p.Names()[1] != "left_id" {
		t.Fatalf("project names: %v", p.Names())
	}
}

func TestTupleOps(t *testing.T) {
	a := Tuple{Int(1), String_("x")}
	b := a.Clone()
	b[0] = Int(2)
	if a[0].AsInt() != 1 {
		t.Fatal("clone aliased")
	}
	if !Concat(a, b).Equal(Tuple{Int(1), String_("x"), Int(2), String_("x")}) {
		t.Fatal("concat")
	}
	if got := a.Project([]int{1}); !got.Equal(Tuple{String_("x")}) {
		t.Fatal("project")
	}
	if a.Compare(b) >= 0 {
		t.Fatal("compare")
	}
	if a.Hash() == b.Hash() {
		t.Fatal("hash should differ for differing tuples (overwhelmingly)")
	}
	if a.String() != "(1, x)" {
		t.Fatalf("string: %s", a.String())
	}
}
