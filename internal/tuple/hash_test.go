package tuple

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
)

// referenceHash is the original hash/fnv-based implementation of
// Value.Hash. The inlined rewrite must stay bit-identical so hash
// partition assignments survive the change.
func referenceHash(v Value, seed uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed)
	h.Write(buf[:])
	buf[0] = byte(v.kind)
	h.Write(buf[:1])
	switch v.kind {
	case KindBool, KindInt:
		binary.LittleEndian.PutUint64(buf[:], uint64(v.i))
		h.Write(buf[:8])
	case KindFloat:
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.f))
		h.Write(buf[:8])
	case KindString:
		h.Write([]byte(v.s))
	case KindBytes:
		h.Write(v.b)
	}
	return h.Sum64()
}

func TestHashMatchesReference(t *testing.T) {
	vals := []Value{
		Null(),
		Bool(false), Bool(true),
		Int(0), Int(-1), Int(42), Int(math.MinInt64), Int(math.MaxInt64),
		Float(0), Float(-1.5), Float(math.NaN()), Float(math.Inf(1)),
		String_(""), String_("a"), String_("hello\x00world"),
		Bytes(nil), Bytes([]byte{0x00}), Bytes([]byte{0xDE, 0xAD, 0xBE, 0xEF}),
	}
	seeds := []uint64{0, 1, 1469598103934665603, ^uint64(0)}
	for _, v := range vals {
		for _, seed := range seeds {
			if got, want := v.Hash(seed), referenceHash(v, seed); got != want {
				t.Fatalf("Hash(%v, %d) = %#x, reference %#x", v, seed, got, want)
			}
		}
	}
	// The exported per-kind helpers must agree with Value.Hash.
	if HashNull(7) != Null().Hash(7) {
		t.Fatal("HashNull mismatch")
	}
	if HashBool(7, true) != Bool(true).Hash(7) {
		t.Fatal("HashBool mismatch")
	}
	if HashInt(7, -9) != Int(-9).Hash(7) {
		t.Fatal("HashInt mismatch")
	}
	if HashFloat(7, 2.5) != Float(2.5).Hash(7) {
		t.Fatal("HashFloat mismatch")
	}
	if HashString(7, "xyz") != String_("xyz").Hash(7) {
		t.Fatal("HashString mismatch")
	}
	if HashBytes(7, []byte("xyz")) != Bytes([]byte("xyz")).Hash(7) {
		t.Fatal("HashBytes mismatch")
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = String_("steady-state hashing must not allocate").Hash(3)
	}); n != 0 {
		t.Fatalf("Value.Hash allocates %.1f times per call", n)
	}
}
