package tuple

import (
	"fmt"
	"strings"
)

// Tuple is an ordered list of values conforming to some Schema.
type Tuple []Value

// Clone returns a copy of the tuple. Value payloads are shared (values are
// immutable by convention).
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have the same length and pairwise equal
// values.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !Equal(t[i], o[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := Compare(t[i], o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Hash returns a hash of the whole tuple, consistent with Equal.
func (t Tuple) Hash() uint64 {
	h := uint64(14695981039346656037)
	for _, v := range t {
		h = v.Hash(h)
	}
	return h
}

// Project returns a new tuple containing the values at the given indexes.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// Concat returns the concatenation of two tuples as a new tuple.
func Concat(a, b Tuple) Tuple {
	out := make(Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Column describes one attribute of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("tuple: duplicate column %q", c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// Index returns the position of the named column, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex returns the position of the named column and panics if absent.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("tuple: no column %q in schema %v", name, s.Names()))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// Validate checks that a tuple conforms to the schema: correct arity and
// each non-NULL value matching its column kind.
func (s *Schema) Validate(t Tuple) error {
	if len(t) != len(s.Columns) {
		return fmt.Errorf("tuple: arity %d does not match schema arity %d", len(t), len(s.Columns))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if v.Kind() != s.Columns[i].Kind {
			return fmt.Errorf("tuple: column %q expects %s, got %s",
				s.Columns[i].Name, s.Columns[i].Kind, v.Kind())
		}
	}
	return nil
}

// Project returns the schema obtained by keeping the columns at idx, with
// optional renaming (names[i] == "" keeps the original name).
func (s *Schema) Project(idx []int, names []string) *Schema {
	cols := make([]Column, len(idx))
	for i, j := range idx {
		cols[i] = s.Columns[j]
		if names != nil && names[i] != "" {
			cols[i].Name = names[i]
		}
	}
	return NewSchema(cols...)
}

// ConcatSchemas returns the schema of the concatenation of tuples from a and
// b, prefixing duplicate names from b with the given prefix.
func ConcatSchemas(a, b *Schema, prefix string) *Schema {
	cols := make([]Column, 0, len(a.Columns)+len(b.Columns))
	cols = append(cols, a.Columns...)
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		seen[c.Name] = true
	}
	for _, c := range b.Columns {
		if seen[c.Name] {
			c.Name = prefix + c.Name
		}
		for seen[c.Name] {
			c.Name = "_" + c.Name
		}
		seen[c.Name] = true
		cols = append(cols, c)
	}
	return NewSchema(cols...)
}
