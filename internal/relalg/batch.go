package relalg

import (
	"fmt"
	"sync/atomic"

	"repro/internal/tuple"
)

// Batch is the unit of data flow between streaming operators. The default
// layout is columnar: per-column typed vectors (see column) plus parallel
// count and timestamp vectors, with an optional selection vector that
// narrows the batch to a subset of its physical rows without copying
// them. A row layout (the pre-columnar representation, one Row per
// element) remains available behind NewRowBatch/SetRowLayout so the two
// can be A/B-compared; every accessor works identically in both modes.
//
// Ownership contract: a batch is filled by exactly one producer and then
// read by consumers. Consumers never append to a batch they received —
// they either read through the accessors, narrow it with a selection
// (Retain/FilterBatch), or permute its columns in place (ProjectInPlace).
// Producers reuse batches across calls via Reset, which keeps all column
// storage (including string dictionaries) for the next fill; sinks that
// retain data beyond the next Reset must copy it out (MaterializeInto,
// EncodeRowAt).
type Batch struct {
	rowMode bool
	rows    []Row

	ncols  int // arity; -1 until the first append fixes it
	cols   []column
	counts []int64
	tss    []CSN
	n      int // physical rows (columnar mode)

	sel    []int32 // selection vector (physical indices); nil = all rows
	selBuf []int32

	scratch    tuple.Tuple // reused by the row-at-a-time predicate fallback
	colScratch []column    // ProjectInPlace swap space
	sink       batchSink
}

// emptySel is the shared non-nil empty selection Retain installs when it
// drops every row of a batch whose selBuf was never allocated: nil sel
// means "no selection, all rows visible", so the all-dropped result needs
// a distinct representation. Zero capacity, so it can never be written
// through — any later append reallocates.
var emptySel = []int32{}

// rowLayout flips the layout NewBatch produces. It exists for the
// row-vs-columnar A/B experiment; production code leaves it off.
var rowLayoutFlag atomic.Bool

// SetRowLayout makes NewBatch produce row-layout batches (true) or
// columnar batches (false, the default). Set it before any work starts:
// it is read per NewBatch call, and mixing layouts within one pipeline,
// while supported, defeats the columnar kernels.
func SetRowLayout(on bool) { rowLayoutFlag.Store(on) }

// RowLayout reports the current default batch layout.
func RowLayout() bool { return rowLayoutFlag.Load() }

// NewBatch returns an empty batch with the given row-capacity hint, in
// the layout selected by SetRowLayout.
func NewBatch(capacity int) *Batch {
	if rowLayoutFlag.Load() {
		return NewRowBatch(capacity)
	}
	return &Batch{
		ncols:  -1,
		counts: make([]int64, 0, capacity),
		tss:    make([]CSN, 0, capacity),
	}
}

// NewRowBatch returns an empty batch in the row layout regardless of the
// SetRowLayout default.
func NewRowBatch(capacity int) *Batch {
	return &Batch{rowMode: true, ncols: -1, rows: make([]Row, 0, capacity)}
}

// BatchFromRows wraps an existing row slice as a row-layout batch without
// copying. The caller must not mutate rows while the batch is in use.
func BatchFromRows(rows []Row) *Batch {
	return &Batch{rowMode: true, ncols: -1, rows: rows}
}

// RowMode reports whether the batch uses the row layout.
func (b *Batch) RowMode() bool { return b.rowMode }

// Reset clears the batch for reuse, keeping all storage.
func (b *Batch) Reset() {
	b.rows = b.rows[:0]
	for c := range b.cols {
		b.cols[c].reset()
	}
	b.counts = b.counts[:0]
	b.tss = b.tss[:0]
	b.n = 0
	b.ncols = -1
	b.sel = nil
	if b.rowMode {
		b.ncols = -1
	}
}

// Len returns the number of rows visible through the current selection.
func (b *Batch) Len() int {
	if b.sel != nil {
		return len(b.sel)
	}
	if b.rowMode {
		return len(b.rows)
	}
	return b.n
}

// Arity returns the column count, or -1 for an empty batch that has not
// fixed one yet.
func (b *Batch) Arity() int {
	if b.rowMode {
		if len(b.rows) > 0 {
			return len(b.rows[0].Tuple)
		}
		return -1
	}
	return b.ncols
}

// phys maps a logical (selection-relative) row index to a physical one.
func (b *Batch) phys(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

func (b *Batch) setArity(k int) {
	if b.ncols == k {
		return
	}
	if b.ncols != -1 {
		panic(fmt.Sprintf("relalg: batch arity change %d -> %d", b.ncols, k))
	}
	for cap(b.cols) < k {
		b.cols = append(b.cols[:cap(b.cols)], column{})
	}
	b.cols = b.cols[:k]
	for c := range b.cols {
		b.cols[c].reset()
	}
	b.ncols = k
}

// Add appends one row given as a tuple plus its count and timestamp.
func (b *Batch) Add(t tuple.Tuple, count int64, ts CSN) {
	if b.rowMode {
		b.rows = append(b.rows, Row{Tuple: t, Count: count, TS: ts})
		return
	}
	b.setArity(len(t))
	for c := range t {
		b.cols[c].appendValue(t[c])
	}
	b.counts = append(b.counts, count)
	b.tss = append(b.tss, ts)
	b.n++
}

// Append appends a Row.
func (b *Batch) Append(r Row) { b.Add(r.Tuple, r.Count, r.TS) }

// RowAt materializes row i as a Row. In columnar mode this allocates a
// fresh tuple; it is a boundary operation, not a kernel.
func (b *Batch) RowAt(i int) Row {
	p := b.phys(i)
	if b.rowMode {
		return b.rows[p]
	}
	t := make(tuple.Tuple, b.ncols)
	for c := range t {
		t[c] = b.cols[c].valueAt(p)
	}
	return Row{Tuple: t, Count: b.counts[p], TS: b.tss[p]}
}

// ValueAt returns column c of row i.
func (b *Batch) ValueAt(i, c int) tuple.Value {
	p := b.phys(i)
	if b.rowMode {
		return b.rows[p].Tuple[c]
	}
	return b.cols[c].valueAt(p)
}

// CountAt returns the count of row i.
func (b *Batch) CountAt(i int) int64 {
	p := b.phys(i)
	if b.rowMode {
		return b.rows[p].Count
	}
	return b.counts[p]
}

// TSAt returns the timestamp of row i.
func (b *Batch) TSAt(i int) CSN {
	p := b.phys(i)
	if b.rowMode {
		return b.rows[p].TS
	}
	return b.tss[p]
}

// tupleInto fills dst with row i's values, growing it as needed, and
// returns it. The result aliases column storage: it is valid until the
// batch is Reset.
func (b *Batch) tupleInto(dst tuple.Tuple, i int) tuple.Tuple {
	p := b.phys(i)
	if b.rowMode {
		return b.rows[p].Tuple
	}
	dst = dst[:0]
	for c := 0; c < b.ncols; c++ {
		dst = append(dst, b.cols[c].valueAt(p))
	}
	return dst
}

// AppendRowOf appends row i of src, copying column-wise when both sides
// are columnar.
func (b *Batch) AppendRowOf(src *Batch, i int) {
	if b.rowMode || src.rowMode {
		b.Append(src.RowAt(i))
		return
	}
	p := src.phys(i)
	b.setArity(src.ncols)
	for c := range b.cols {
		b.cols[c].appendFrom(&src.cols[c], p)
	}
	b.counts = append(b.counts, src.counts[p])
	b.tss = append(b.tss, src.tss[p])
	b.n++
}

// AppendJoined appends the join combination of row li of l and row ri of
// r: concatenated columns, count product, min non-null timestamp
// (Section 3.3's combination rule), as a pure column move when all three
// batches are columnar.
func (b *Batch) AppendJoined(l *Batch, li int, r *Batch, ri int) {
	count := l.CountAt(li) * r.CountAt(ri)
	ts := MinTS(l.TSAt(li), r.TSAt(ri))
	if b.rowMode || l.rowMode || r.rowMode {
		b.Add(tuple.Concat(l.RowAt(li).Tuple, r.RowAt(ri).Tuple), count, ts)
		return
	}
	lp, rp := l.phys(li), r.phys(ri)
	b.setArity(l.ncols + r.ncols)
	for c := 0; c < l.ncols; c++ {
		b.cols[c].appendFrom(&l.cols[c], lp)
	}
	for c := 0; c < r.ncols; c++ {
		b.cols[l.ncols+c].appendFrom(&r.cols[c], rp)
	}
	b.counts = append(b.counts, count)
	b.tss = append(b.tss, ts)
	b.n++
}

// AppendJoinedRow appends the join combination of row li of l with a
// materialized Row (the cached-probe path: matches live in the resident
// join-state cache as Rows).
func (b *Batch) AppendJoinedRow(l *Batch, li int, m Row) {
	count := l.CountAt(li) * m.Count
	ts := MinTS(l.TSAt(li), m.TS)
	if b.rowMode || l.rowMode {
		b.Add(tuple.Concat(l.RowAt(li).Tuple, m.Tuple), count, ts)
		return
	}
	lp := l.phys(li)
	b.setArity(l.ncols + len(m.Tuple))
	for c := 0; c < l.ncols; c++ {
		b.cols[c].appendFrom(&l.cols[c], lp)
	}
	for c, v := range m.Tuple {
		b.cols[l.ncols+c].appendValue(v)
	}
	b.counts = append(b.counts, count)
	b.tss = append(b.tss, ts)
	b.n++
}

// AppendConcatTuple appends row li of l concatenated with a bare probe
// tuple, keeping l's count and timestamp (the index-nested-loop path:
// probe results are base rows with no count/timestamp of their own).
func (b *Batch) AppendConcatTuple(l *Batch, li int, m tuple.Tuple) {
	count := l.CountAt(li)
	ts := l.TSAt(li)
	if b.rowMode || l.rowMode {
		b.Add(tuple.Concat(l.RowAt(li).Tuple, m), count, ts)
		return
	}
	lp := l.phys(li)
	b.setArity(l.ncols + len(m))
	for c := 0; c < l.ncols; c++ {
		b.cols[c].appendFrom(&l.cols[c], lp)
	}
	for c, v := range m {
		b.cols[l.ncols+c].appendValue(v)
	}
	b.counts = append(b.counts, count)
	b.tss = append(b.tss, ts)
	b.n++
}

// ProjectInPlace permutes the batch onto the columns at idx without
// copying column data: projection is a column move. Duplicate indices
// (rare) force a copy of the later occurrence so no two columns alias
// the same storage. Counts, timestamps, and the selection are untouched.
func (b *Batch) ProjectInPlace(idx []int) {
	if b.rowMode {
		for i := range b.rows {
			b.rows[i].Tuple = b.rows[i].Tuple.Project(idx)
		}
		return
	}
	if b.ncols == -1 {
		b.setArity(len(idx))
		return
	}
	for cap(b.colScratch) < len(idx) {
		b.colScratch = append(b.colScratch[:cap(b.colScratch)], column{})
	}
	scratch := b.colScratch[:len(idx)]
	for j, c := range idx {
		dup := false
		for _, prev := range idx[:j] {
			if prev == c {
				dup = true
				break
			}
		}
		if !dup {
			scratch[j] = b.cols[c]
			continue
		}
		// Deep-copy the duplicate so appends after the next Reset cannot
		// write through two aliased columns at once.
		var cp column
		cp.reset()
		for p := 0; p < b.n; p++ {
			cp.appendFrom(&b.cols[c], p)
		}
		scratch[j] = cp
	}
	// Zero the outgoing structs: the moved ones now live in scratch and
	// share backing arrays with their old slots, so a later setArity that
	// re-extends this array into its cap region must find empty structs,
	// not aliases of live columns.
	for c := range b.cols {
		b.cols[c] = column{}
	}
	b.colScratch = b.cols[:0]
	b.cols = scratch
	b.ncols = len(idx)
}

// Retain narrows the selection to the logical rows for which keep
// returns true. keep receives logical (selection-relative) indices.
func (b *Batch) Retain(keep func(i int) bool) {
	n := b.Len()
	if b.sel == nil {
		b.selBuf = b.selBuf[:0]
		for i := 0; i < n; i++ {
			if keep(i) {
				b.selBuf = append(b.selBuf, int32(i))
			}
		}
		if len(b.selBuf) == n {
			return // nothing filtered; stay selection-free
		}
		b.sel = b.selBuf
		if b.sel == nil {
			// Every row was dropped before selBuf was ever allocated: a nil
			// sel means "no selection", so it must not represent "empty".
			b.sel = emptySel
		}
		return
	}
	k := 0
	for i := 0; i < n; i++ {
		if keep(i) {
			b.sel[k] = b.sel[i]
			k++
		}
	}
	b.sel = b.sel[:k]
}

// MaterializeInto appends every visible row to dst and returns it.
func (b *Batch) MaterializeInto(dst []Row) []Row {
	n := b.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, b.RowAt(i))
	}
	return dst
}

// EncodeRowAt appends the row encoding (tuple.EncodeRow format) of row i
// to dst, serializing straight from column storage in columnar mode.
func (b *Batch) EncodeRowAt(dst []byte, i int) []byte {
	p := b.phys(i)
	if b.rowMode {
		return tuple.EncodeRow(dst, b.rows[p].Tuple)
	}
	dst = tuple.AppendRowArity(dst, b.ncols)
	for c := 0; c < b.ncols; c++ {
		dst = b.cols[c].encodeRowValue(dst, p)
	}
	return dst
}

// hashColsSeed is the seed every multi-column hash starts from (shared
// with the materializing join's hashCols in ops.go so row and columnar
// paths agree).
const hashColsSeed uint64 = 1469598103934665603

// HashAt hashes the named columns of row i, chaining per column exactly
// like hashCols over a materialized tuple.
func (b *Batch) HashAt(i int, cols []int) uint64 {
	p := b.phys(i)
	h := hashColsSeed
	if b.rowMode {
		t := b.rows[p].Tuple
		for _, c := range cols {
			h = t[c].Hash(h)
		}
		return h
	}
	for _, c := range cols {
		h = b.cols[c].hashAt(p, h)
	}
	return h
}

// colsEqualAt reports whether the acols of row ai in a equal the dcols of
// row di in d, under tuple.Equal semantics.
func colsEqualAt(a *Batch, ai int, acols []int, d *Batch, di int, dcols []int) bool {
	pa, pd := a.phys(ai), d.phys(di)
	for k := range acols {
		if !a.rowMode && !d.rowMode {
			if !a.cols[acols[k]].equalAt(pa, &d.cols[dcols[k]], pd) {
				return false
			}
			continue
		}
		var va, vd tuple.Value
		if a.rowMode {
			va = a.rows[pa].Tuple[acols[k]]
		} else {
			va = a.cols[acols[k]].valueAt(pa)
		}
		if d.rowMode {
			vd = d.rows[pd].Tuple[dcols[k]]
		} else {
			vd = d.cols[dcols[k]].valueAt(pd)
		}
		if !tuple.Equal(va, vd) {
			return false
		}
	}
	return true
}

// AppendDecodedRow decodes one tuple.EncodeRow payload directly into the
// batch's columns (strings interned into the column dictionaries without
// materializing a Tuple) and attaches the given count and timestamp. It
// returns the bytes remaining after the row.
func (b *Batch) AppendDecodedRow(enc []byte, count int64, ts CSN) ([]byte, error) {
	if b.rowMode {
		t, rest, err := tuple.DecodeRow(enc)
		if err != nil {
			return nil, err
		}
		b.Add(t, count, ts)
		return rest, nil
	}
	b.sink.b = b
	b.sink.err = nil
	rest, err := tuple.DecodeRowInto(enc, &b.sink)
	if err == nil {
		err = b.sink.err
	}
	if err != nil {
		return nil, err
	}
	b.counts = append(b.counts, count)
	b.tss = append(b.tss, ts)
	b.n++
	return rest, nil
}

// batchSink adapts a Batch to tuple.RowSink for AppendDecodedRow.
type batchSink struct {
	b   *Batch
	col int
	err error
}

func (s *batchSink) BeginRow(arity int) {
	s.col = 0
	if s.b.ncols == -1 {
		s.b.setArity(arity)
	} else if arity != s.b.ncols {
		s.err = fmt.Errorf("relalg: decoded arity %d, batch arity %d", arity, s.b.ncols)
	}
}

func (s *batchSink) next() *column {
	if s.err != nil {
		return nil
	}
	if s.col >= len(s.b.cols) {
		s.err = fmt.Errorf("relalg: decoded row wider than arity %d", s.b.ncols)
		return nil
	}
	c := &s.b.cols[s.col]
	s.col++
	return c
}

func (s *batchSink) PushNull() {
	if c := s.next(); c != nil {
		c.appendNull()
	}
}

func (s *batchSink) PushBool(v bool) {
	if c := s.next(); c != nil {
		c.appendBool(v)
	}
}

func (s *batchSink) PushInt(v int64) {
	if c := s.next(); c != nil {
		c.appendInt(v)
	}
}

func (s *batchSink) PushFloat(v float64) {
	if c := s.next(); c != nil {
		c.appendFloat(v)
	}
}

func (s *batchSink) PushString(p []byte) {
	if c := s.next(); c != nil {
		c.appendStringBytes(p)
	}
}

func (s *batchSink) PushBytes(p []byte) {
	if c := s.next(); c != nil {
		c.appendBytes(p)
	}
}

// Footprint returns the approximate resident bytes of the batch's
// storage (capacities, not fill levels), for arena accounting.
func (b *Batch) Footprint() int64 {
	n := int64(cap(b.counts))*8 + int64(cap(b.tss))*8 + int64(cap(b.selBuf))*4 + int64(cap(b.rows))*48
	cols := b.cols[:cap(b.cols)]
	for c := range cols {
		n += cols[c].footprint()
	}
	return n
}

// Combine applies the paper's join combination rule to one pair of rows:
// concatenated tuple, product of counts, minimum of non-null timestamps
// (Section 3.3).
func Combine(l, r Row) Row {
	return Row{
		Tuple: tuple.Concat(l.Tuple, r.Tuple),
		Count: l.Count * r.Count,
		TS:    MinTS(l.TS, r.TS),
	}
}
