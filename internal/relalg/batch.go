package relalg

import (
	"repro/internal/tuple"
)

// Batch is a reusable vector of rows, the unit of data flow between the
// physical operators in internal/exec. Operators fill a caller-provided
// batch on each Next call, so steady-state execution allocates tuples but
// no batch containers.
type Batch struct {
	Rows []Row
}

// NewBatch returns an empty batch with the given capacity.
func NewBatch(capacity int) *Batch {
	return &Batch{Rows: make([]Row, 0, capacity)}
}

// Reset empties the batch, keeping its capacity.
func (b *Batch) Reset() { b.Rows = b.Rows[:0] }

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// Add appends a row built from its parts.
func (b *Batch) Add(t tuple.Tuple, count int64, ts CSN) {
	b.Rows = append(b.Rows, Row{Tuple: t, Count: count, TS: ts})
}

// Append appends a row.
func (b *Batch) Append(r Row) { b.Rows = append(b.Rows, r) }

// Combine applies the paper's join combination rule to one pair of rows:
// concatenated tuple, product of counts, minimum of non-null timestamps
// (Section 3.3).
func Combine(l, r Row) Row {
	return Row{
		Tuple: tuple.Concat(l.Tuple, r.Tuple),
		Count: l.Count * r.Count,
		TS:    MinTS(l.TS, r.TS),
	}
}

// FilterInto appends the rows of src satisfying p to dst. Counts and
// timestamps pass through unchanged, so φ commutes with the kernel exactly
// as it does with Select.
func FilterInto(dst, src *Batch, p Predicate) {
	for _, row := range src.Rows {
		if p.Eval(row.Tuple) {
			dst.Append(row)
		}
	}
}

// ProjectInto appends the projection of src onto the columns at idx to dst.
// Duplicates are preserved (counts are not merged), matching Project.
func ProjectInto(dst, src *Batch, idx []int) {
	for _, row := range src.Rows {
		dst.Add(row.Tuple.Project(idx), row.Count, row.TS)
	}
}

// HashTable is the build side of a batched hash join: rows hashed on a
// fixed set of key columns. It is not goroutine-safe; each operator owns
// its own table.
type HashTable struct {
	cols    []int
	buckets map[uint64][]Row
	n       int
}

// NewHashTable returns an empty hash table keyed on the given columns of
// inserted rows.
func NewHashTable(cols []int) *HashTable {
	return &HashTable{cols: cols, buckets: make(map[uint64][]Row)}
}

// Insert adds one row to the table.
func (h *HashTable) Insert(r Row) {
	k := hashCols(r.Tuple, h.cols)
	h.buckets[k] = append(h.buckets[k], r)
	h.n++
}

// InsertBatch adds every row of the batch.
func (h *HashTable) InsertBatch(b *Batch) {
	for _, r := range b.Rows {
		h.Insert(r)
	}
}

// Len returns the number of inserted rows.
func (h *HashTable) Len() int { return h.n }

// Probe invokes fn for every inserted row whose key columns equal the
// probe tuple's probeCols, in insertion order (hash match verified
// column-wise, so collisions are safe). With no key columns every inserted
// row matches, which is how cross products stream through the same kernel.
func (h *HashTable) Probe(t tuple.Tuple, probeCols []int, fn func(Row)) {
	bucket := h.buckets[hashCols(t, probeCols)]
	if len(bucket) == 0 {
		return
	}
outer:
	for _, r := range bucket {
		for i, c := range h.cols {
			if !tuple.Equal(r.Tuple[c], t[probeCols[i]]) {
				continue outer
			}
		}
		fn(r)
	}
}
