package relalg

import (
	"sort"

	"repro/internal/tuple"
)

// NetEffect computes φ(r) per Definition 4.1: group on all attributes except
// count and timestamp, sum counts within each group, null the timestamps,
// and drop zero-count groups. The result is in canonical form: rows sorted
// by tuple, one row per distinct tuple.
func NetEffect(r *Relation) *Relation {
	type group struct {
		t     tuple.Tuple
		count int64
	}
	groups := make(map[uint64][]*group, len(r.Rows))
	order := make([]*group, 0, len(r.Rows))
	for _, row := range r.Rows {
		h := row.Tuple.Hash()
		var g *group
		for _, cand := range groups[h] {
			if cand.t.Equal(row.Tuple) {
				g = cand
				break
			}
		}
		if g == nil {
			g = &group{t: row.Tuple}
			groups[h] = append(groups[h], g)
			order = append(order, g)
		}
		g.count += row.Count
	}
	out := NewRelation(r.Schema)
	for _, g := range order {
		if g.count != 0 {
			out.Rows = append(out.Rows, Row{Tuple: g.t, Count: g.count, TS: NullTS})
		}
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		return out.Rows[i].Tuple.Compare(out.Rows[j].Tuple) < 0
	})
	return out
}

// Equivalent reports whether φ(a) == φ(b): the two relations represent the
// same multiset once counts are consolidated. This is the correctness
// relation used throughout the paper's Section 4.
func Equivalent(a, b *Relation) bool {
	na, nb := NetEffect(a), NetEffect(b)
	if len(na.Rows) != len(nb.Rows) {
		return false
	}
	for i := range na.Rows {
		if na.Rows[i].Count != nb.Rows[i].Count || !na.Rows[i].Tuple.Equal(nb.Rows[i].Tuple) {
			return false
		}
	}
	return true
}

// IsTimedDeltaTable checks Definition 4.2 against an oracle: states[t] must
// give the true state of the view at CSN t for every t in [lo, hi]. It
// verifies that for all lo <= a < b <= hi, φ(σ_{a,b}(delta) + states[a]) ==
// φ(states[b]). It returns the first violated (a, b) pair, or ok == true.
//
// This is the workhorse oracle used by the correctness test suites for
// Theorems 4.1–4.3.
func IsTimedDeltaTable(delta *Relation, states map[CSN]*Relation, lo, hi CSN) (a, b CSN, ok bool) {
	for x := lo; x < hi; x++ {
		for y := x + 1; y <= hi; y++ {
			sa, oka := states[x]
			sb, okb := states[y]
			if !oka || !okb {
				continue
			}
			rolled := Union(Window(delta, x, y), sa)
			if !Equivalent(rolled, sb) {
				return x, y, false
			}
		}
	}
	return 0, 0, true
}
