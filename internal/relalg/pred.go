package relalg

import (
	"fmt"

	"repro/internal/tuple"
)

// CmpOp is a comparison operator for predicates.
type CmpOp uint8

// The supported comparison operators.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

func (op CmpOp) eval(c int) bool {
	switch op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	default:
		return false
	}
}

// Predicate evaluates a boolean condition over a tuple. Predicates must be
// deterministic and must not examine the count or timestamp attributes,
// matching the paper's requirement for σ in the φ-commutation properties.
type Predicate interface {
	Eval(t tuple.Tuple) bool
	String() string
}

// ColConst compares the column at index Col with a constant.
type ColConst struct {
	Col int
	Op  CmpOp
	Val tuple.Value
}

// Eval implements Predicate.
func (p ColConst) Eval(t tuple.Tuple) bool {
	return p.Op.eval(tuple.Compare(t[p.Col], p.Val))
}

func (p ColConst) String() string {
	return fmt.Sprintf("col%d %s %s", p.Col, p.Op, p.Val)
}

// ColCol compares two columns of the same tuple.
type ColCol struct {
	ColA int
	Op   CmpOp
	ColB int
}

// Eval implements Predicate.
func (p ColCol) Eval(t tuple.Tuple) bool {
	return p.Op.eval(tuple.Compare(t[p.ColA], t[p.ColB]))
}

func (p ColCol) String() string {
	return fmt.Sprintf("col%d %s col%d", p.ColA, p.Op, p.ColB)
}

// And is the conjunction of its children. An empty And is true.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(t tuple.Tuple) bool {
	for _, c := range p {
		if !c.Eval(t) {
			return false
		}
	}
	return true
}

func (p And) String() string {
	if len(p) == 0 {
		return "true"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + join(parts, " AND ") + ")"
}

// Or is the disjunction of its children. An empty Or is false.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(t tuple.Tuple) bool {
	for _, c := range p {
		if c.Eval(t) {
			return true
		}
	}
	return false
}

func (p Or) String() string {
	if len(p) == 0 {
		return "false"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + join(parts, " OR ") + ")"
}

// Not negates its child.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (p Not) Eval(t tuple.Tuple) bool { return !p.P.Eval(t) }

func (p Not) String() string { return "NOT " + p.P.String() }

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(tuple.Tuple) bool { return true }

func (True) String() string { return "true" }

// FilterBatch narrows b's selection to the rows satisfying p, the
// vectorized counterpart of per-row Predicate.Eval. Conjunctions narrow
// the selection once per conjunct; leaf comparisons over uniform typed
// columns run as dense typed loops against the column payloads, and
// everything else (row-layout batches, mixed-kind columns, Or/Not trees)
// falls back to tuple.Compare semantics row by row, so both paths accept
// exactly the rows Eval would.
func FilterBatch(p Predicate, b *Batch) {
	switch q := p.(type) {
	case True:
		return
	case And:
		for _, c := range q {
			FilterBatch(c, b)
		}
		return
	case ColConst:
		if !b.rowMode && b.ncols > q.Col {
			filterColConst(q, b)
			return
		}
	case ColCol:
		if !b.rowMode && b.ncols > q.ColA && b.ncols > q.ColB {
			filterColCol(q, b)
			return
		}
	}
	if b.rowMode {
		b.Retain(func(i int) bool { return p.Eval(b.rows[b.phys(i)].Tuple) })
		return
	}
	b.Retain(func(i int) bool {
		b.scratch = b.tupleInto(b.scratch, i)
		return p.Eval(b.scratch)
	})
}

func cmpI64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpF64 compares with < and > only, so NaN orders "equal" to everything
// exactly as tuple.Compare does.
func cmpF64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func filterColConst(q ColConst, b *Batch) {
	c := &b.cols[q.Col]
	switch {
	case c.uniform == uint8(tuple.KindInt) && q.Val.Kind() == tuple.KindInt:
		v := q.Val.AsInt()
		b.Retain(func(i int) bool { p := b.phys(i); return q.Op.eval(cmpI64(c.ints[c.idx[p]], v)) })
	case c.uniform == uint8(tuple.KindFloat) && q.Val.Kind() == tuple.KindFloat:
		v := q.Val.AsFloat()
		b.Retain(func(i int) bool { p := b.phys(i); return q.Op.eval(cmpF64(c.floats[c.idx[p]], v)) })
	default:
		b.Retain(func(i int) bool { return q.Op.eval(c.compareAt(b.phys(i), q.Val)) })
	}
}

func filterColCol(q ColCol, b *Batch) {
	ca, cb := &b.cols[q.ColA], &b.cols[q.ColB]
	switch {
	case ca.uniform == uint8(tuple.KindInt) && cb.uniform == uint8(tuple.KindInt):
		b.Retain(func(i int) bool {
			p := b.phys(i)
			return q.Op.eval(cmpI64(ca.ints[ca.idx[p]], cb.ints[cb.idx[p]]))
		})
	case ca.uniform == uint8(tuple.KindFloat) && cb.uniform == uint8(tuple.KindFloat):
		b.Retain(func(i int) bool {
			p := b.phys(i)
			return q.Op.eval(cmpF64(ca.floats[ca.idx[p]], cb.floats[cb.idx[p]]))
		})
	default:
		b.Retain(func(i int) bool {
			p := b.phys(i)
			return q.Op.eval(tuple.Compare(ca.valueAt(p), cb.valueAt(p)))
		})
	}
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
