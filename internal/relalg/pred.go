package relalg

import (
	"fmt"

	"repro/internal/tuple"
)

// CmpOp is a comparison operator for predicates.
type CmpOp uint8

// The supported comparison operators.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

func (op CmpOp) eval(c int) bool {
	switch op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	default:
		return false
	}
}

// Predicate evaluates a boolean condition over a tuple. Predicates must be
// deterministic and must not examine the count or timestamp attributes,
// matching the paper's requirement for σ in the φ-commutation properties.
type Predicate interface {
	Eval(t tuple.Tuple) bool
	String() string
}

// ColConst compares the column at index Col with a constant.
type ColConst struct {
	Col int
	Op  CmpOp
	Val tuple.Value
}

// Eval implements Predicate.
func (p ColConst) Eval(t tuple.Tuple) bool {
	return p.Op.eval(tuple.Compare(t[p.Col], p.Val))
}

func (p ColConst) String() string {
	return fmt.Sprintf("col%d %s %s", p.Col, p.Op, p.Val)
}

// ColCol compares two columns of the same tuple.
type ColCol struct {
	ColA int
	Op   CmpOp
	ColB int
}

// Eval implements Predicate.
func (p ColCol) Eval(t tuple.Tuple) bool {
	return p.Op.eval(tuple.Compare(t[p.ColA], t[p.ColB]))
}

func (p ColCol) String() string {
	return fmt.Sprintf("col%d %s col%d", p.ColA, p.Op, p.ColB)
}

// And is the conjunction of its children. An empty And is true.
type And []Predicate

// Eval implements Predicate.
func (p And) Eval(t tuple.Tuple) bool {
	for _, c := range p {
		if !c.Eval(t) {
			return false
		}
	}
	return true
}

func (p And) String() string {
	if len(p) == 0 {
		return "true"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + join(parts, " AND ") + ")"
}

// Or is the disjunction of its children. An empty Or is false.
type Or []Predicate

// Eval implements Predicate.
func (p Or) Eval(t tuple.Tuple) bool {
	for _, c := range p {
		if c.Eval(t) {
			return true
		}
	}
	return false
}

func (p Or) String() string {
	if len(p) == 0 {
		return "false"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = c.String()
	}
	return "(" + join(parts, " OR ") + ")"
}

// Not negates its child.
type Not struct{ P Predicate }

// Eval implements Predicate.
func (p Not) Eval(t tuple.Tuple) bool { return !p.P.Eval(t) }

func (p Not) String() string { return "NOT " + p.P.String() }

// True is the always-true predicate.
type True struct{}

// Eval implements Predicate.
func (True) Eval(tuple.Tuple) bool { return true }

func (True) String() string { return "true" }

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
