package relalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func schemaAB() *tuple.Schema {
	return tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}, tuple.Column{Name: "b", Kind: tuple.KindInt})
}

func rel(rows ...Row) *Relation {
	r := NewRelation(schemaAB())
	r.Rows = append(r.Rows, rows...)
	return r
}

func row(a, b, count int64, ts CSN) Row {
	return Row{Tuple: tuple.Tuple{tuple.Int(a), tuple.Int(b)}, Count: count, TS: ts}
}

// randRelation builds a random small relation over (a, b) int columns with
// counts in [-2, 2]\{0} and timestamps in [0, 5].
func randRelation(r *rand.Rand, maxRows int) *Relation {
	out := NewRelation(schemaAB())
	n := r.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		c := int64(r.Intn(4)) - 2
		if c >= 0 {
			c++
		}
		out.Add(tuple.Tuple{tuple.Int(int64(r.Intn(4))), tuple.Int(int64(r.Intn(4)))}, c, CSN(r.Intn(6)))
	}
	return out
}

func TestMinTS(t *testing.T) {
	cases := []struct{ a, b, want CSN }{
		{NullTS, NullTS, NullTS},
		{NullTS, 5, 5},
		{5, NullTS, 5},
		{3, 7, 3},
		{7, 3, 3},
	}
	for _, c := range cases {
		if got := MinTS(c.a, c.b); got != c.want {
			t.Errorf("MinTS(%d,%d)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSelectProjectBasics(t *testing.T) {
	r := rel(row(1, 10, 1, 0), row(2, 20, 1, 0), row(3, 30, -1, 4))
	s := Select(r, ColConst{Col: 0, Op: OpGE, Val: tuple.Int(2)})
	if s.Len() != 2 {
		t.Fatalf("select len %d", s.Len())
	}
	p := Project(r, []int{1}, []string{"bb"})
	if p.Schema.Names()[0] != "bb" || p.Len() != 3 {
		t.Fatal("project")
	}
	if p.Rows[2].Count != -1 || p.Rows[2].TS != 4 {
		t.Fatal("project must carry count and ts")
	}
}

func TestPredicates(t *testing.T) {
	tp := tuple.Tuple{tuple.Int(5), tuple.Int(5)}
	if !(ColCol{ColA: 0, Op: OpEQ, ColB: 1}).Eval(tp) {
		t.Fatal("colcol eq")
	}
	if (ColConst{Col: 0, Op: OpLT, Val: tuple.Int(5)}).Eval(tp) {
		t.Fatal("lt")
	}
	if !(And{True{}, ColConst{Col: 0, Op: OpLE, Val: tuple.Int(5)}}).Eval(tp) {
		t.Fatal("and")
	}
	if (Or{}).Eval(tp) {
		t.Fatal("empty or is false")
	}
	if !(And{}).Eval(tp) {
		t.Fatal("empty and is true")
	}
	if !(Not{P: Or{}}).Eval(tp) {
		t.Fatal("not")
	}
	for _, op := range []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE} {
		if op.String() == "?" {
			t.Fatal("op string")
		}
	}
	_ = And{ColConst{Col: 0, Op: OpEQ, Val: tuple.Int(1)}, ColCol{ColA: 0, Op: OpNE, ColB: 1}, Not{P: True{}}, Or{True{}}}.String()
}

func TestUnionNegateScaleWindow(t *testing.T) {
	r := rel(row(1, 1, 1, 1), row(2, 2, 2, 2), row(3, 3, 3, 3))
	s := rel(row(4, 4, -1, 4))
	u := Union(r, s)
	if u.Len() != 4 || u.Cardinality() != 5 {
		t.Fatal("union")
	}
	n := Negate(r)
	if n.Cardinality() != -6 {
		t.Fatal("negate")
	}
	if Scale(r, 3).Cardinality() != 18 {
		t.Fatal("scale")
	}
	w := Window(r, 1, 2)
	if w.Len() != 1 || w.Rows[0].TS != 2 {
		t.Fatalf("window (1,2] should pick only ts=2, got %d rows", w.Len())
	}
	w = Window(r, 0, 3)
	if w.Len() != 3 {
		t.Fatal("window (0,3] should pick all")
	}
}

func TestJoinCountProductMinTS(t *testing.T) {
	l := rel(row(1, 10, -2, 5), row(2, 20, 1, 0))
	rsch := tuple.NewSchema(tuple.Column{Name: "a", Kind: tuple.KindInt}, tuple.Column{Name: "c", Kind: tuple.KindInt})
	r := NewRelation(rsch)
	r.Add(tuple.Tuple{tuple.Int(1), tuple.Int(100)}, 3, 2)
	r.Add(tuple.Tuple{tuple.Int(2), tuple.Int(200)}, 1, NullTS)

	j := Join(l, r, []JoinOn{{LeftCol: 0, RightCol: 0}})
	if j.Len() != 2 {
		t.Fatalf("join len %d", j.Len())
	}
	for _, jr := range j.Rows {
		switch jr.Tuple[0].AsInt() {
		case 1:
			if jr.Count != -6 {
				t.Fatalf("count product: %d", jr.Count)
			}
			if jr.TS != 2 {
				t.Fatalf("min ts: %d", jr.TS)
			}
		case 2:
			if jr.Count != 1 || jr.TS != NullTS {
				t.Fatal("base-base join keeps null ts")
			}
		}
	}
	// Result schema: duplicate "a" from right is prefixed.
	names := j.Schema.Names()
	if names[0] != "a" || names[1] != "b" || names[2] != "r_a" || names[3] != "c" {
		t.Fatalf("join schema: %v", names)
	}
}

func TestJoinCrossProduct(t *testing.T) {
	l := rel(row(1, 1, 1, 0), row(2, 2, 1, 0))
	r := rel(row(3, 3, 2, 0))
	j := Join(l, r, nil)
	if j.Len() != 2 || j.Cardinality() != 4 {
		t.Fatal("cross product")
	}
	if Join(l, NewRelation(schemaAB()), nil).Len() != 0 {
		t.Fatal("cross with empty")
	}
}

func TestJoinMultiCondition(t *testing.T) {
	l := rel(row(1, 10, 1, 0), row(1, 11, 1, 0))
	r := rel(row(1, 10, 1, 0), row(1, 99, 1, 0))
	j := Join(l, r, []JoinOn{{LeftCol: 0, RightCol: 0}, {LeftCol: 1, RightCol: 1}})
	if j.Len() != 1 {
		t.Fatalf("multi-cond join len %d", j.Len())
	}
}

func TestNetEffectCanonicalization(t *testing.T) {
	r := rel(
		row(1, 1, 2, 3),
		row(1, 1, -1, 4),
		row(2, 2, 1, 1),
		row(2, 2, -1, 2),
		row(3, 3, 5, 0),
	)
	ne := NetEffect(r)
	if ne.Len() != 2 {
		t.Fatalf("net effect len %d: %s", ne.Len(), ne)
	}
	if ne.Rows[0].Count != 1 || ne.Rows[0].TS != NullTS {
		t.Fatal("net effect should sum counts and null timestamps")
	}
	if ne.Rows[1].Count != 5 {
		t.Fatal("count 5 group")
	}
}

func TestEquivalent(t *testing.T) {
	a := rel(row(1, 1, 1, 1), row(1, 1, 1, 2))
	b := rel(row(1, 1, 2, 9))
	if !Equivalent(a, b) {
		t.Fatal("should be φ-equivalent")
	}
	c := rel(row(1, 1, 3, 0))
	if Equivalent(a, c) {
		t.Fatal("should differ")
	}
	d := rel(row(1, 2, 2, 0))
	if Equivalent(b, d) {
		t.Fatal("different tuples should differ")
	}
}

// --- φ properties (Section 4), as property-based tests ---

func TestPhiIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		rel := randRelation(r, 20)
		if !Equivalent(NetEffect(NetEffect(rel)), NetEffect(rel)) {
			t.Fatalf("φ(φ(R)) != φ(R) for\n%s", rel)
		}
	}
}

func TestPhiDistributesOverUnion(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a, b := randRelation(r, 20), randRelation(r, 20)
		lhs := NetEffect(Union(a, b))
		rhs := NetEffect(Union(NetEffect(a), NetEffect(b)))
		if !Equivalent(lhs, rhs) {
			t.Fatalf("φ(R+S) != φ(φ(R)+φ(S))")
		}
	}
}

func TestPhiDistributesOverJoin(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	on := []JoinOn{{LeftCol: 0, RightCol: 0}}
	for i := 0; i < 300; i++ {
		a, b := randRelation(r, 15), randRelation(r, 15)
		lhs := NetEffect(Join(a, b, on))
		rhs := NetEffect(Join(NetEffect(a), NetEffect(b), on))
		if !Equivalent(lhs, rhs) {
			t.Fatalf("φ(RS) != φ(R)φ(S)")
		}
	}
}

func TestPhiCommutesWithSelect(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := ColConst{Col: 0, Op: OpLE, Val: tuple.Int(2)}
	for i := 0; i < 300; i++ {
		rel := randRelation(r, 20)
		if !Equivalent(NetEffect(Select(rel, p)), Select(NetEffect(rel), p)) {
			t.Fatalf("φ(σ(R)) != σ(φ(R))")
		}
	}
}

func TestPhiCommutesWithProject(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	idx := []int{1}
	for i := 0; i < 300; i++ {
		rel := randRelation(r, 20)
		lhs := NetEffect(Project(rel, idx, nil))
		rhs := NetEffect(Project(NetEffect(rel), idx, nil))
		if !Equivalent(lhs, rhs) {
			t.Fatalf("φ(π(R)) != φ(π(φ(R)))")
		}
	}
}

func TestJoinDistributesOverUnionQuick(t *testing.T) {
	// (A + B) ⋈ C ≡ A⋈C + B⋈C under φ — multilinearity of the join in the
	// count algebra, the property underlying the box model of propagation
	// queries.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randRelation(r, 10), randRelation(r, 10), randRelation(r, 10)
		on := []JoinOn{{LeftCol: 0, RightCol: 0}}
		lhs := Join(Union(a, b), c, on)
		rhs := Union(Join(a, c, on), Join(b, c, on))
		return Equivalent(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPartitionQuick(t *testing.T) {
	// σ_{a,c} = σ_{a,b} + σ_{b,c} for a <= b <= c (Lemma 4.1 splitting at
	// the delta-table level).
	f := func(seed int64, aRaw, bRaw, cRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		rel := randRelation(r, 25)
		ts := []CSN{CSN(aRaw % 7), CSN(bRaw % 7), CSN(cRaw % 7)}
		a, b, c := ts[0], ts[1], ts[2]
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		lhs := Window(rel, a, c)
		rhs := Union(Window(rel, a, b), Window(rel, b, c))
		return Equivalent(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsTimedDeltaTable(t *testing.T) {
	// Build a tiny history by hand: state at CSN 0 is empty; at 1, (1,1)
	// inserted; at 2, (2,2) inserted; at 3, (1,1) deleted.
	empty := rel()
	s1 := rel(row(1, 1, 1, 0))
	s2 := rel(row(1, 1, 1, 0), row(2, 2, 1, 0))
	s3 := rel(row(2, 2, 1, 0))
	states := map[CSN]*Relation{0: empty, 1: s1, 2: s2, 3: s3}
	delta := rel(row(1, 1, 1, 1), row(2, 2, 1, 2), row(1, 1, -1, 3))
	if _, _, ok := IsTimedDeltaTable(delta, states, 0, 3); !ok {
		t.Fatal("valid timed delta rejected")
	}
	bad := rel(row(1, 1, 1, 2), row(2, 2, 1, 2), row(1, 1, -1, 3))
	if a, b, ok := IsTimedDeltaTable(bad, states, 0, 3); ok {
		t.Fatal("invalid timed delta accepted")
	} else if a != 0 || b != 1 {
		t.Fatalf("first violation should be (0,1), got (%d,%d)", a, b)
	}
}

func TestRelationHelpers(t *testing.T) {
	r := rel(row(1, 1, 2, 1))
	c := r.Clone()
	c.Add(tuple.Tuple{tuple.Int(9), tuple.Int(9)}, 1, 2)
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone should not alias rows slice")
	}
	if r.String() == "" {
		t.Fatal("string")
	}
}
