package relalg

import (
	"repro/internal/tuple"
)

// Select returns the rows of r satisfying the predicate. Counts and
// timestamps pass through unchanged, so φ commutes with Select.
func Select(r *Relation, p Predicate) *Relation {
	out := NewRelation(r.Schema)
	for _, row := range r.Rows {
		if p.Eval(row.Tuple) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Project returns the multiset projection of r onto the columns at idx,
// optionally renaming them. Duplicates are preserved (counts are not
// merged); apply NetEffect for set-like semantics.
func Project(r *Relation, idx []int, names []string) *Relation {
	out := NewRelation(r.Schema.Project(idx, names))
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, Row{Tuple: row.Tuple.Project(idx), Count: row.Count, TS: row.TS})
	}
	return out
}

// Union returns the multiset union r + s. The schemas must have equal arity;
// the left schema is kept.
func Union(r, s *Relation) *Relation {
	out := NewRelation(r.Schema)
	out.Rows = append(out.Rows, r.Rows...)
	out.Rows = append(out.Rows, s.Rows...)
	return out
}

// Negate returns −r: every count flipped (Section 2's negation operator).
func Negate(r *Relation) *Relation {
	out := NewRelation(r.Schema)
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = Row{Tuple: row.Tuple, Count: -row.Count, TS: row.TS}
	}
	return out
}

// Scale multiplies every count by k (k == -1 is Negate; other factors are
// used by tests exercising net-effect equivalences).
func Scale(r *Relation, k int64) *Relation {
	out := NewRelation(r.Schema)
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = Row{Tuple: row.Tuple, Count: k * row.Count, TS: row.TS}
	}
	return out
}

// Window returns σ_{a,b}(r): the rows with timestamps in the half-open
// interval (a, b]. Per Section 2, this selects the changes committed after
// t_a and at or before t_b.
func Window(r *Relation, a, b CSN) *Relation {
	out := NewRelation(r.Schema)
	for _, row := range r.Rows {
		if row.TS > a && row.TS <= b {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// JoinOn is an equi-join condition between column LeftCol of the left input
// and column RightCol of the right input.
type JoinOn struct {
	LeftCol  int
	RightCol int
}

// Join computes the equi-join of l and r on the given conditions, applying
// the paper's combination rule: result count = product of counts, result
// timestamp = min of non-null timestamps. With no conditions it degenerates
// to a cross product. The result schema is the concatenation of the input
// schemas (right-side duplicate names prefixed with "r_").
//
// The implementation is a hash join building on the right input.
func Join(l, r *Relation, on []JoinOn) *Relation {
	out := NewRelation(tuple.ConcatSchemas(l.Schema, r.Schema, "r_"))
	if len(l.Rows) == 0 || len(r.Rows) == 0 {
		return out
	}
	if len(on) == 0 {
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				out.Rows = append(out.Rows, combine(lr, rr))
			}
		}
		return out
	}
	// Build side: hash the right input on its join columns.
	type bucket struct {
		rows []Row
	}
	table := make(map[uint64]*bucket, len(r.Rows))
	rightCols := make([]int, len(on))
	leftCols := make([]int, len(on))
	for i, c := range on {
		rightCols[i] = c.RightCol
		leftCols[i] = c.LeftCol
	}
	for _, rr := range r.Rows {
		h := hashCols(rr.Tuple, rightCols)
		b := table[h]
		if b == nil {
			b = &bucket{}
			table[h] = b
		}
		b.rows = append(b.rows, rr)
	}
	// Probe side.
	for _, lr := range l.Rows {
		h := hashCols(lr.Tuple, leftCols)
		b := table[h]
		if b == nil {
			continue
		}
		for _, rr := range b.rows {
			if matches(lr.Tuple, rr.Tuple, on) {
				out.Rows = append(out.Rows, combine(lr, rr))
			}
		}
	}
	return out
}

func hashCols(t tuple.Tuple, cols []int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range cols {
		h = t[c].Hash(h)
	}
	return h
}

func matches(l, r tuple.Tuple, on []JoinOn) bool {
	for _, c := range on {
		if !tuple.Equal(l[c.LeftCol], r[c.RightCol]) {
			return false
		}
	}
	return true
}

func combine(l, r Row) Row {
	return Row{
		Tuple: tuple.Concat(l.Tuple, r.Tuple),
		Count: l.Count * r.Count,
		TS:    MinTS(l.TS, r.TS),
	}
}
