package relalg

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tuple"
)

// testRows returns a mixed-kind row set exercising every column code
// path: uniform ints, dictionary strings with repeats, floats with NaN,
// nulls, bools, and raw bytes.
func testRows() []Row {
	mk := func(vs ...tuple.Value) tuple.Tuple { return tuple.Tuple(vs) }
	return []Row{
		{Tuple: mk(tuple.Int(1), tuple.String_("red"), tuple.Float(1.5), tuple.Bool(true), tuple.Bytes([]byte{0x00, 0x01})), Count: 1, TS: 10},
		{Tuple: mk(tuple.Int(2), tuple.String_("blue"), tuple.Float(-2.25), tuple.Bool(false), tuple.Bytes(nil)), Count: -2, TS: NullTS},
		{Tuple: mk(tuple.Int(3), tuple.String_("red"), tuple.Float(math.NaN()), tuple.Null(), tuple.Bytes([]byte("xyz"))), Count: 3, TS: 7},
		{Tuple: mk(tuple.Int(-9), tuple.String_(""), tuple.Float(0), tuple.Bool(true), tuple.Bytes([]byte{0xFF})), Count: 5, TS: 42},
	}
}

func fillBatch(b *Batch, rows []Row) {
	for _, r := range rows {
		b.Append(r)
	}
}

func eachLayout(t *testing.T, fn func(t *testing.T, newBatch func(int) *Batch)) {
	t.Run("columnar", func(t *testing.T) {
		fn(t, func(c int) *Batch {
			return &Batch{ncols: -1, counts: make([]int64, 0, c), tss: make([]CSN, 0, c)}
		})
	})
	t.Run("row", func(t *testing.T) { fn(t, NewRowBatch) })
}

func TestBatchRoundTrip(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		rows := testRows()
		b := newBatch(2)
		fillBatch(b, rows)
		if b.Len() != len(rows) {
			t.Fatalf("Len = %d, want %d", b.Len(), len(rows))
		}
		if b.Arity() != 5 {
			t.Fatalf("Arity = %d, want 5", b.Arity())
		}
		for i, want := range rows {
			got := b.RowAt(i)
			if got.Count != want.Count || got.TS != want.TS {
				t.Fatalf("row %d count/ts = %d/%d, want %d/%d", i, got.Count, got.TS, want.Count, want.TS)
			}
			if !bytes.Equal(tuple.EncodeRow(nil, got.Tuple), tuple.EncodeRow(nil, want.Tuple)) {
				t.Fatalf("row %d tuple = %v, want %v", i, got.Tuple, want.Tuple)
			}
			for c := range want.Tuple {
				if !tuple.Equal(b.ValueAt(i, c), want.Tuple[c]) {
					t.Fatalf("ValueAt(%d,%d) = %v, want %v", i, c, b.ValueAt(i, c), want.Tuple[c])
				}
			}
			if got, want := b.EncodeRowAt(nil, i), tuple.EncodeRow(nil, want.Tuple); !bytes.Equal(got, want) {
				t.Fatalf("EncodeRowAt(%d) = % x, want % x", i, got, want)
			}
		}
		// Reset keeps storage and accepts a different arity afterwards.
		b.Reset()
		if b.Len() != 0 || b.Arity() != -1 {
			t.Fatalf("after Reset: Len=%d Arity=%d", b.Len(), b.Arity())
		}
		b.Add(tuple.Tuple{tuple.Int(7)}, 1, 1)
		if b.Arity() != 1 || b.Len() != 1 {
			t.Fatalf("after refill: Len=%d Arity=%d", b.Len(), b.Arity())
		}
	})
}

func TestBatchAppendDecodedRow(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		rows := testRows()
		var enc []byte
		for _, r := range rows {
			enc = tuple.EncodeRow(enc, r.Tuple)
		}
		b := newBatch(4)
		rest := enc
		var err error
		for i, r := range rows {
			rest, err = b.AppendDecodedRow(rest, r.Count, r.TS)
			if err != nil {
				t.Fatalf("AppendDecodedRow row %d: %v", i, err)
			}
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		for i, want := range rows {
			if got := b.EncodeRowAt(nil, i); !bytes.Equal(got, tuple.EncodeRow(nil, want.Tuple)) {
				t.Fatalf("row %d decode mismatch: %v vs %v", i, b.RowAt(i).Tuple, want.Tuple)
			}
			if b.CountAt(i) != want.Count || b.TSAt(i) != want.TS {
				t.Fatalf("row %d count/ts mismatch", i)
			}
		}
		if _, err := b.AppendDecodedRow(tuple.EncodeRow(nil, tuple.Tuple{tuple.Int(1)}), 1, 1); err == nil && !b.rowMode {
			t.Fatal("arity mismatch not rejected")
		}
	})
}

func TestBatchRetainSelection(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		b := newBatch(8)
		for i := 0; i < 8; i++ {
			b.Add(tuple.Tuple{tuple.Int(int64(i))}, 1, CSN(i))
		}
		b.Retain(func(i int) bool { return b.ValueAt(i, 0).AsInt()%2 == 0 }) // 0 2 4 6
		b.Retain(func(i int) bool { return b.ValueAt(i, 0).AsInt() > 0 })    // 2 4 6
		if b.Len() != 3 {
			t.Fatalf("Len = %d, want 3", b.Len())
		}
		for i, want := range []int64{2, 4, 6} {
			if got := b.ValueAt(i, 0).AsInt(); got != want {
				t.Fatalf("row %d = %d, want %d", i, got, want)
			}
			if b.TSAt(i) != CSN(want) {
				t.Fatalf("row %d ts = %d, want %d", i, b.TSAt(i), want)
			}
		}
		rows := b.MaterializeInto(nil)
		if len(rows) != 3 || rows[2].Tuple[0].AsInt() != 6 {
			t.Fatalf("MaterializeInto = %v", rows)
		}
		// Retain that keeps everything must stay selection-free on a fresh batch.
		f := newBatch(2)
		f.Add(tuple.Tuple{tuple.Int(1)}, 1, 1)
		f.Retain(func(int) bool { return true })
		if f.sel != nil {
			t.Fatal("all-kept Retain installed a selection")
		}
		// Retain that drops everything on a fresh batch (selBuf never
		// allocated) must leave zero visible rows, not fall back to the
		// nil "all rows visible" selection.
		g := newBatch(2)
		g.Add(tuple.Tuple{tuple.Int(1)}, 1, 1)
		g.Add(tuple.Tuple{tuple.Int(2)}, 1, 2)
		g.Retain(func(int) bool { return false })
		if g.Len() != 0 {
			t.Fatalf("all-dropped Retain left %d visible rows, want 0", g.Len())
		}
		if rows := g.MaterializeInto(nil); len(rows) != 0 {
			t.Fatalf("all-dropped Retain materialized %v", rows)
		}
		// And the emptied batch must accept a refill + partial Retain.
		g.Reset()
		g.Add(tuple.Tuple{tuple.Int(3)}, 1, 3)
		g.Add(tuple.Tuple{tuple.Int(4)}, 1, 4)
		g.Retain(func(i int) bool { return g.ValueAt(i, 0).AsInt() == 4 })
		if g.Len() != 1 || g.ValueAt(0, 0).AsInt() != 4 {
			t.Fatalf("refill after all-dropped Retain: Len=%d", g.Len())
		}
	})
}

func TestBatchProjectInPlace(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		rows := testRows()
		for _, idx := range [][]int{{1, 0}, {2}, {1, 1, 0}, {4, 3, 2, 1, 0}} {
			b := newBatch(4)
			fillBatch(b, rows)
			b.ProjectInPlace(idx)
			if b.Arity() != len(idx) {
				t.Fatalf("idx %v: Arity = %d", idx, b.Arity())
			}
			for i, r := range rows {
				want := r.Tuple.Project(idx)
				got := b.RowAt(i)
				if !bytes.Equal(tuple.EncodeRow(nil, got.Tuple), tuple.EncodeRow(nil, want)) {
					t.Fatalf("idx %v row %d: %v, want %v", idx, i, got.Tuple, want)
				}
			}
			// A projected batch must stay usable after Reset: duplicate
			// indices must not leave two columns aliasing one array.
			b.Reset()
			fillBatch(b, rows[:2])
			for i := 0; i < 2; i++ {
				if !bytes.Equal(tuple.EncodeRow(nil, b.RowAt(i).Tuple), tuple.EncodeRow(nil, rows[i].Tuple)) {
					t.Fatalf("idx %v: post-Reset refill corrupted row %d: %v", idx, i, b.RowAt(i).Tuple)
				}
			}
		}
	})
}

// TestBatchProjectThenWiderRefill reproduces a recycling corruption: a
// permuting projection followed by a narrowing projection used to leave
// stale column structs — sharing backing arrays with the live columns —
// in the cap region of the column slice. A later Reset + wider refill
// re-exposed those structs, and two live columns then appended into the
// same array, silently overwriting each other's values.
func TestBatchProjectThenWiderRefill(t *testing.T) {
	b := &Batch{ncols: -1}
	add4 := func(a, x, c, d int64) {
		b.Add(tuple.Tuple{tuple.Int(a), tuple.Int(x), tuple.Int(c), tuple.Int(d)}, 1, 1)
	}
	add4(1, 2, 3, 4)
	b.ProjectInPlace([]int{2, 3, 0, 1}) // permute: swaps cols into colScratch
	b.ProjectInPlace([]int{0, 1})       // narrow: live columns move back into the old array
	b.Reset()
	add4(5, 104, 5, 12) // wider refill re-extends cols into the cap region
	got := b.RowAt(0).Tuple
	want := tuple.Tuple{tuple.Int(5), tuple.Int(104), tuple.Int(5), tuple.Int(12)}
	if !bytes.Equal(tuple.EncodeRow(nil, got), tuple.EncodeRow(nil, want)) {
		t.Fatalf("refill after projections corrupted row: got %v, want %v", got, want)
	}
}

func TestBatchJoinAppends(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		l := newBatch(2)
		l.Add(tuple.Tuple{tuple.Int(1), tuple.String_("a")}, 2, 9)
		r := newBatch(2)
		r.Add(tuple.Tuple{tuple.Float(0.5)}, 3, NullTS)
		out := newBatch(2)
		out.AppendJoined(l, 0, r, 0)
		out.AppendJoinedRow(l, 0, Row{Tuple: tuple.Tuple{tuple.Bool(true)}, Count: -1, TS: 4})
		got := out.RowAt(0)
		if got.Count != 6 || got.TS != 9 || len(got.Tuple) != 3 {
			t.Fatalf("AppendJoined = %+v", got)
		}
		got = out.RowAt(1)
		if got.Count != -2 || got.TS != 4 || !got.Tuple[2].AsBool() {
			t.Fatalf("AppendJoinedRow = %+v", got)
		}
	})
}

func TestBatchDictReuseAcrossReset(t *testing.T) {
	b := &Batch{ncols: -1}
	b.Add(tuple.Tuple{tuple.String_("alpha")}, 1, 1)
	b.Add(tuple.Tuple{tuple.String_("beta")}, 1, 1)
	dictBefore := b.cols[0].dict
	b.Reset()
	if n := testing.AllocsPerRun(50, func() {
		b.Reset()
		b.cols = b.cols[:1]
		b.ncols = 1
		b.cols[0].appendString("alpha")
		b.counts = append(b.counts, 1)
		b.tss = append(b.tss, 1)
		b.n++
	}); n != 0 {
		t.Fatalf("re-interning a seen string allocates %.1f/op", n)
	}
	b.Reset()
	b.Add(tuple.Tuple{tuple.String_("beta")}, 1, 1)
	if &dictBefore[0] != &b.cols[0].dict[0] {
		t.Fatal("dictionary was rebuilt across Reset")
	}
	if b.ValueAt(0, 0).AsString() != "beta" {
		t.Fatalf("got %v", b.ValueAt(0, 0))
	}
}

func TestHashTableMatchesReferenceJoin(t *testing.T) {
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		build := testRows()
		probes := []tuple.Tuple{
			{tuple.String_("red"), tuple.Int(0)},
			{tuple.String_("blue"), tuple.Int(1)},
			{tuple.String_("green"), tuple.Int(2)},
			{tuple.String_(""), tuple.Int(3)},
		}
		ht := NewHashTable([]int{1})
		bb := newBatch(len(build))
		fillBatch(bb, build)
		ht.InsertBatch(bb)
		if ht.Len() != len(build) {
			t.Fatalf("Len = %d", ht.Len())
		}
		for _, pt := range probes {
			// Reference: linear scan in insertion order.
			var want []Row
			for _, r := range build {
				if tuple.Equal(r.Tuple[1], pt[0]) {
					want = append(want, r)
				}
			}
			var got []Row
			ht.Probe(pt, []int{0}, func(r Row) { got = append(got, r) })
			if len(got) != len(want) {
				t.Fatalf("probe %v: %d matches, want %d", pt, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(tuple.EncodeRow(nil, got[i].Tuple), tuple.EncodeRow(nil, want[i].Tuple)) {
					t.Fatalf("probe %v match %d: %v, want %v", pt, i, got[i].Tuple, want[i].Tuple)
				}
			}
			// Columnar probe protocol agrees with the legacy callback API.
			pb := newBatch(1)
			pb.Add(pt, 1, 1)
			hash := pb.HashAt(0, []int{0})
			var n int
			for i := ht.Seek(hash); i >= 0; i = ht.Next(i) {
				if ht.Match(i, hash, pb, 0, []int{0}) {
					n++
				}
			}
			if n != len(want) {
				t.Fatalf("probe %v: Seek/Match found %d, want %d", pt, n, len(want))
			}
		}
		// Empty key list: one chain, cross product.
		cross := NewHashTable(nil)
		cross.InsertBatch(bb)
		var n int
		cross.Probe(tuple.Tuple{}, nil, func(Row) { n++ })
		if n != len(build) {
			t.Fatalf("cross probe matched %d, want %d", n, len(build))
		}
	})
}

func TestHashTableNullMatchesNull(t *testing.T) {
	ht := NewHashTable([]int{0})
	ht.Insert(Row{Tuple: tuple.Tuple{tuple.Null(), tuple.Int(1)}, Count: 1, TS: 1})
	var n int
	ht.Probe(tuple.Tuple{tuple.Null()}, []int{0}, func(Row) { n++ })
	if n != 1 {
		t.Fatalf("null probe matched %d rows, want 1", n)
	}
}

func TestFilterBatchMatchesEval(t *testing.T) {
	preds := []Predicate{
		True{},
		ColConst{Col: 0, Op: OpGT, Val: tuple.Int(1)},
		ColConst{Col: 1, Op: OpEQ, Val: tuple.String_("red")},
		ColConst{Col: 2, Op: OpLE, Val: tuple.Float(0.5)},
		ColConst{Col: 0, Op: OpNE, Val: tuple.Float(2)}, // cross-kind compare
		ColCol{ColA: 0, Op: OpLT, ColB: 2},
		And{ColConst{Col: 0, Op: OpGE, Val: tuple.Int(1)}, ColConst{Col: 1, Op: OpNE, Val: tuple.String_("blue")}},
		Or{ColConst{Col: 0, Op: OpEQ, Val: tuple.Int(2)}, ColConst{Col: 3, Op: OpEQ, Val: tuple.Bool(true)}},
		Not{P: ColConst{Col: 0, Op: OpLT, Val: tuple.Int(0)}},
	}
	eachLayout(t, func(t *testing.T, newBatch func(int) *Batch) {
		rows := testRows()
		for _, p := range preds {
			b := newBatch(4)
			fillBatch(b, rows)
			FilterBatch(p, b)
			var want []Row
			for _, r := range rows {
				if p.Eval(r.Tuple) {
					want = append(want, r)
				}
			}
			if b.Len() != len(want) {
				t.Fatalf("%s: kept %d rows, want %d", p, b.Len(), len(want))
			}
			for i := range want {
				if !bytes.Equal(tuple.EncodeRow(nil, b.RowAt(i).Tuple), tuple.EncodeRow(nil, want[i].Tuple)) {
					t.Fatalf("%s row %d: %v, want %v", p, i, b.RowAt(i).Tuple, want[i].Tuple)
				}
			}
		}
	})
}

func TestBatchHashMatchesTupleHash(t *testing.T) {
	rows := testRows()
	b := &Batch{ncols: -1}
	fillBatch(b, rows)
	cols := []int{1, 0, 4}
	for i, r := range rows {
		h := uint64(1469598103934665603)
		for _, c := range cols {
			h = r.Tuple[c].Hash(h)
		}
		if got := b.HashAt(i, cols); got != h {
			t.Fatalf("row %d: HashAt = %#x, tuple chain = %#x", i, got, h)
		}
	}
}
