// Package relalg implements the multiset relational algebra of Salem et
// al.'s rolling-join paper: relations whose rows carry a signed count and a
// commit timestamp, the operators select, project, join, multiset union (+)
// and negation (−), the timestamp-window selection σ_{a,b}, and the
// net-effect operator φ (Definition 4.1).
//
// The join operator implements the paper's delta-combination rule: the count
// of a result row is the product of the input counts, and its timestamp is
// the minimum of the non-null input timestamps (Section 3.3).
package relalg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/tuple"
)

// CSN is a commit sequence number. CSNs are the system's internal notion of
// time: they are assigned in commit order, so they are consistent with the
// serialization order of transactions (Section 2 of the paper). The zero
// CSN is the null timestamp carried by base-table rows.
type CSN int64

// NullTS is the implicit timestamp of base-table rows. Only non-null
// timestamps participate in the min-timestamp rule.
const NullTS CSN = 0

// Row is one multiset element: a tuple plus the count and timestamp
// attributes of Section 2. Base-table rows have Count == +1 and TS ==
// NullTS; delta rows have Count == ±n and the commit CSN of the change.
type Row struct {
	Tuple tuple.Tuple
	Count int64
	TS    CSN
}

// Relation is a materialized multiset relation: a schema plus rows. The
// count and timestamp attributes are carried alongside the tuple rather
// than inside it, mirroring the paper's "implicit attributes" convention.
type Relation struct {
	Schema *tuple.Schema
	Rows   []Row
}

// NewRelation returns an empty relation with the given schema.
func NewRelation(schema *tuple.Schema) *Relation {
	return &Relation{Schema: schema}
}

// Add appends a row. It does not validate against the schema; use the
// engine's write path for validated inserts.
func (r *Relation) Add(t tuple.Tuple, count int64, ts CSN) {
	r.Rows = append(r.Rows, Row{Tuple: t, Count: count, TS: ts})
}

// Len returns the number of stored rows (not the multiset cardinality).
func (r *Relation) Len() int { return len(r.Rows) }

// Cardinality returns the sum of counts: the multiset cardinality under the
// net-effect interpretation.
func (r *Relation) Cardinality() int64 {
	var n int64
	for _, row := range r.Rows {
		n += row.Count
	}
	return n
}

// Clone returns a shallow copy of the relation (rows copied, tuples shared).
func (r *Relation) Clone() *Relation {
	out := &Relation{Schema: r.Schema, Rows: make([]Row, len(r.Rows))}
	copy(out.Rows, r.Rows)
	return out
}

// String renders the relation for debugging: one row per line, sorted.
func (r *Relation) String() string {
	rows := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = fmt.Sprintf("%s count=%+d ts=%d", row.Tuple, row.Count, row.TS)
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// MinTS combines two timestamps under the paper's rule: null timestamps are
// ignored; otherwise the minimum wins.
func MinTS(a, b CSN) CSN {
	if a == NullTS {
		return b
	}
	if b == NullTS {
		return a
	}
	if a < b {
		return a
	}
	return b
}
