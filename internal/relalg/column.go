package relalg

import "repro/internal/tuple"

// column is one typed vector of a columnar Batch. Storage is by kind: a
// per-row kind tag selects which typed payload array holds the row's
// entry, and idx maps the row to its slot in that array. A column whose
// rows all share one kind (the overwhelmingly common case — schemas are
// typed) therefore degenerates to a single dense typed vector with
// idx[i] == i, which is the layout the specialized kernels (hashing,
// comparisons, serialization) run over. Mixed-kind columns remain
// correct through the same per-row dispatch, just without the dense
// fast path.
//
// Strings are dictionary-encoded: payloads are int32 codes into an
// append-only dict shared by every fill of the column. Because the dict
// only grows, codes handed out earlier stay valid across Reset, and a
// recycled batch re-interning a string it has seen before performs a
// map lookup but no allocation. Bytes payloads are stored flat in bbuf
// with end offsets in bends.
//
// nulls is a validity bitmap (bit set = row is NULL), redundant with
// the kind tags but cheap to maintain and O(1) to test in vectorized
// null checks.
type column struct {
	kinds []uint8 // per-row tuple.Kind tags
	idx   []int32 // per-row slot in the kind's payload array
	nulls []uint64

	ints   []int64   // KindBool (0/1) and KindInt payloads
	floats []float64 // KindFloat payloads
	codes  []int32   // KindString dictionary codes
	bends  []int32   // KindBytes end offsets into bbuf
	bbuf   []byte    // KindBytes payloads, contiguous

	dict    []string         // string dictionary, append-only
	dictIdx map[string]int32 // payload -> code

	// uniform tracks whether every row so far shares one kind:
	// kindUnset before the first append, the shared kind while uniform,
	// kindMixed after a conflict. Kernels key their dense fast paths on it.
	uniform uint8
}

const (
	kindUnset uint8 = 0xFF
	kindMixed uint8 = 0xFE

	// dictRetainMax bounds how large a dictionary a pooled column may
	// keep across Reset. Steady-state workloads with modest string
	// cardinality stay under it and re-intern for free; a column that
	// blew past it rebuilds from empty rather than pinning the memory.
	dictRetainMax = 4096
)

// reset clears the rows but keeps all storage (and the dictionary, which
// codes may still reference) for the next fill.
func (c *column) reset() {
	c.kinds = c.kinds[:0]
	c.idx = c.idx[:0]
	c.nulls = c.nulls[:0]
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.codes = c.codes[:0]
	c.bends = c.bends[:0]
	c.bbuf = c.bbuf[:0]
	c.uniform = kindUnset
	if len(c.dict) > dictRetainMax {
		c.dict = nil
		c.dictIdx = nil
	}
}

func (c *column) noteKind(k tuple.Kind) {
	switch c.uniform {
	case uint8(k):
	case kindUnset:
		c.uniform = uint8(k)
	default:
		c.uniform = kindMixed
	}
}

// pushRow appends the row-level bookkeeping (kind tag, payload slot,
// validity bit) shared by every typed append.
func (c *column) pushRow(k tuple.Kind, slot int32) {
	n := len(c.kinds)
	if n>>6 == len(c.nulls) {
		c.nulls = append(c.nulls, 0)
	}
	if k == tuple.KindNull {
		c.nulls[n>>6] |= 1 << (uint(n) & 63)
	}
	c.kinds = append(c.kinds, uint8(k))
	c.idx = append(c.idx, slot)
	c.noteKind(k)
}

func (c *column) appendNull() { c.pushRow(tuple.KindNull, 0) }

func (c *column) appendBool(v bool) {
	var i int64
	if v {
		i = 1
	}
	c.pushRow(tuple.KindBool, int32(len(c.ints)))
	c.ints = append(c.ints, i)
}

func (c *column) appendInt(v int64) {
	c.pushRow(tuple.KindInt, int32(len(c.ints)))
	c.ints = append(c.ints, v)
}

func (c *column) appendFloat(v float64) {
	c.pushRow(tuple.KindFloat, int32(len(c.floats)))
	c.floats = append(c.floats, v)
}

func (c *column) appendString(s string) {
	c.pushRow(tuple.KindString, int32(len(c.codes)))
	c.codes = append(c.codes, c.code(s))
}

// appendStringBytes interns a string payload handed over as raw bytes
// (the scan-ingress path): the dictionary lookup converts without
// allocating, and only a novel string pays for the copy.
func (c *column) appendStringBytes(s []byte) {
	c.pushRow(tuple.KindString, int32(len(c.codes)))
	if c.dictIdx != nil {
		if code, ok := c.dictIdx[string(s)]; ok {
			c.codes = append(c.codes, code)
			return
		}
	}
	c.codes = append(c.codes, c.code(string(s)))
}

func (c *column) appendBytes(b []byte) {
	c.pushRow(tuple.KindBytes, int32(len(c.bends)))
	c.bbuf = append(c.bbuf, b...)
	c.bends = append(c.bends, int32(len(c.bbuf)))
}

func (c *column) appendValue(v tuple.Value) {
	switch v.Kind() {
	case tuple.KindNull:
		c.appendNull()
	case tuple.KindBool:
		c.appendBool(v.AsBool())
	case tuple.KindInt:
		c.appendInt(v.AsInt())
	case tuple.KindFloat:
		c.appendFloat(v.AsFloat())
	case tuple.KindString:
		c.appendString(v.AsString())
	case tuple.KindBytes:
		c.appendBytes(v.AsBytes())
	}
}

// appendFrom copies row i of src, moving typed payloads directly
// (strings re-intern into this column's dictionary).
func (c *column) appendFrom(src *column, i int) {
	switch tuple.Kind(src.kinds[i]) {
	case tuple.KindNull:
		c.appendNull()
	case tuple.KindBool:
		c.pushRow(tuple.KindBool, int32(len(c.ints)))
		c.ints = append(c.ints, src.ints[src.idx[i]])
	case tuple.KindInt:
		c.appendInt(src.ints[src.idx[i]])
	case tuple.KindFloat:
		c.appendFloat(src.floats[src.idx[i]])
	case tuple.KindString:
		c.appendString(src.dict[src.codes[src.idx[i]]])
	case tuple.KindBytes:
		c.appendBytes(src.bytesAt(src.idx[i]))
	}
}

func (c *column) code(s string) int32 {
	if c.dictIdx == nil {
		c.dictIdx = make(map[string]int32)
	}
	if code, ok := c.dictIdx[s]; ok {
		return code
	}
	code := int32(len(c.dict))
	c.dict = append(c.dict, s)
	c.dictIdx[s] = code
	return code
}

func (c *column) bytesAt(slot int32) []byte {
	start := int32(0)
	if slot > 0 {
		start = c.bends[slot-1]
	}
	return c.bbuf[start:c.bends[slot]]
}

func (c *column) kindAt(i int) tuple.Kind { return tuple.Kind(c.kinds[i]) }

func (c *column) isNull(i int) bool {
	return c.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

func (c *column) valueAt(i int) tuple.Value {
	switch tuple.Kind(c.kinds[i]) {
	case tuple.KindBool:
		return tuple.Bool(c.ints[c.idx[i]] != 0)
	case tuple.KindInt:
		return tuple.Int(c.ints[c.idx[i]])
	case tuple.KindFloat:
		return tuple.Float(c.floats[c.idx[i]])
	case tuple.KindString:
		return tuple.String_(c.dict[c.codes[c.idx[i]]])
	case tuple.KindBytes:
		return tuple.Bytes(c.bytesAt(c.idx[i]))
	default:
		return tuple.Null()
	}
}

// hashAt mixes row i into an FNV-1a hash exactly as tuple.Value.Hash
// would, reading the typed payload directly.
func (c *column) hashAt(i int, seed uint64) uint64 {
	switch tuple.Kind(c.kinds[i]) {
	case tuple.KindBool:
		return tuple.HashBool(seed, c.ints[c.idx[i]] != 0)
	case tuple.KindInt:
		return tuple.HashInt(seed, c.ints[c.idx[i]])
	case tuple.KindFloat:
		return tuple.HashFloat(seed, c.floats[c.idx[i]])
	case tuple.KindString:
		return tuple.HashString(seed, c.dict[c.codes[c.idx[i]]])
	case tuple.KindBytes:
		return tuple.HashBytes(seed, c.bytesAt(c.idx[i]))
	default:
		return tuple.HashNull(seed)
	}
}

// equalAt reports whether row i of c equals row j of d under
// tuple.Equal semantics (NULL == NULL; floats compare with < and >, so
// the NaN quirk of tuple.Compare is reproduced exactly).
func (c *column) equalAt(i int, d *column, j int) bool {
	ka, kb := c.kinds[i], d.kinds[j]
	if ka != kb {
		return false
	}
	switch tuple.Kind(ka) {
	case tuple.KindNull:
		return true
	case tuple.KindBool, tuple.KindInt:
		return c.ints[c.idx[i]] == d.ints[d.idx[j]]
	case tuple.KindFloat:
		a, b := c.floats[c.idx[i]], d.floats[d.idx[j]]
		return !(a < b) && !(a > b)
	case tuple.KindString:
		ca, cb := c.codes[c.idx[i]], d.codes[d.idx[j]]
		if c == d || sameDict(c.dict, d.dict) {
			return ca == cb
		}
		return c.dict[ca] == d.dict[cb]
	case tuple.KindBytes:
		return string(c.bytesAt(c.idx[i])) == string(d.bytesAt(d.idx[j]))
	default:
		return false
	}
}

// compareAt orders row i of c against a constant value, mirroring
// tuple.Compare.
func (c *column) compareAt(i int, v tuple.Value) int {
	return tuple.Compare(c.valueAt(i), v)
}

// encodeRowValue appends the row encoding of row i to dst, straight
// from the typed payload (byte-identical to tuple.EncodeRow of the
// materialized value).
func (c *column) encodeRowValue(dst []byte, i int) []byte {
	switch tuple.Kind(c.kinds[i]) {
	case tuple.KindBool:
		return tuple.AppendRowBool(dst, c.ints[c.idx[i]] != 0)
	case tuple.KindInt:
		return tuple.AppendRowInt(dst, c.ints[c.idx[i]])
	case tuple.KindFloat:
		return tuple.AppendRowFloat(dst, c.floats[c.idx[i]])
	case tuple.KindString:
		return tuple.AppendRowString(dst, c.dict[c.codes[c.idx[i]]])
	case tuple.KindBytes:
		return tuple.AppendRowBytes(dst, c.bytesAt(c.idx[i]))
	default:
		return tuple.AppendRowNull(dst)
	}
}

// sameDict reports whether two dictionaries are the same backing array
// (true after a column-move projection), making code equality valid.
func sameDict(a, b []string) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// footprint returns the resident bytes of the column's storage,
// counting capacities (the arena cares about what is held, not what is
// currently filled).
func (c *column) footprint() int64 {
	n := int64(cap(c.kinds)) + 4*int64(cap(c.idx)) + 8*int64(cap(c.nulls)) +
		8*int64(cap(c.ints)) + 8*int64(cap(c.floats)) + 4*int64(cap(c.codes)) +
		4*int64(cap(c.bends)) + int64(cap(c.bbuf))
	for _, s := range c.dict {
		n += int64(len(s)) + 16
	}
	return n
}
