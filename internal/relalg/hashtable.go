package relalg

import "repro/internal/tuple"

// HashTable is the build side of a streaming hash join. Build rows live
// in a columnar Batch (the store) with their key hashes in a parallel
// vector; Finalize links them into bucket chains over a power-of-two
// head array. Probing walks a chain with Seek/Next and confirms
// candidates with Match — no closures, no materialized tuples, so the
// probe loop in the executor stays allocation-free.
//
// With an empty key-column list every row hashes to the same constant
// and lands in one chain, which makes the cross-product case fall out
// of the ordinary probe path. NULL keys match NULL keys, consistent
// with the materializing join in ops.go.
type HashTable struct {
	cols   []int
	store  *Batch
	hashes []uint64
	head   []int32
	next   []int32
	mask   uint32
	sealed bool
}

// NewHashTable returns an empty table keyed on the given columns of the
// build input.
func NewHashTable(cols []int) *HashTable {
	return &HashTable{cols: cols, store: NewBatch(0)}
}

// Reset clears the table for reuse (arena recycling), keeping all
// storage, and re-keys it on cols.
func (h *HashTable) Reset(cols []int) {
	h.cols = cols
	h.store.Reset()
	h.hashes = h.hashes[:0]
	h.next = h.next[:0]
	h.sealed = false
}

// Insert adds one build row.
func (h *HashTable) Insert(r Row) {
	h.store.Append(r)
	h.hashes = append(h.hashes, h.store.HashAt(h.store.Len()-1, h.cols))
	h.sealed = false
}

// InsertBatch adds every visible row of b, hashing straight off b's
// columns before the copy.
func (h *HashTable) InsertBatch(b *Batch) {
	n := b.Len()
	for i := 0; i < n; i++ {
		h.store.AppendRowOf(b, i)
		h.hashes = append(h.hashes, b.HashAt(i, h.cols))
	}
	if n > 0 {
		h.sealed = false
	}
}

// Len returns the number of build rows.
func (h *HashTable) Len() int { return h.store.Len() }

// Finalize builds the bucket chains. It is idempotent and called
// automatically by Seek; exposed so the executor can pay for it at the
// end of the build phase rather than on the first probe.
func (h *HashTable) Finalize() {
	if h.sealed {
		return
	}
	n := len(h.hashes)
	size := 1
	for size < n {
		size <<= 1
	}
	size <<= 1 // keep the load factor at or below 1/2
	if cap(h.head) < size {
		h.head = make([]int32, size)
	}
	h.head = h.head[:size]
	for i := range h.head {
		h.head[i] = -1
	}
	h.mask = uint32(size - 1)
	if cap(h.next) < n {
		h.next = make([]int32, n)
	}
	h.next = h.next[:n]
	// Prepend in reverse so each chain reads in insertion order, keeping
	// output row order identical to the row-at-a-time join.
	for i := n - 1; i >= 0; i-- {
		b := uint32(h.hashes[i]) & h.mask
		h.next[i] = h.head[b]
		h.head[b] = int32(i)
	}
	h.sealed = true
}

// Seek returns the first candidate build-row index for hash, or -1.
func (h *HashTable) Seek(hash uint64) int32 {
	if !h.sealed {
		h.Finalize()
	}
	return h.head[uint32(hash)&h.mask]
}

// Next returns the candidate after i in its chain, or -1.
func (h *HashTable) Next(i int32) int32 { return h.next[i] }

// Match reports whether build row i carries the given hash and its key
// columns equal the keys of row pi in probe (probeCols), column against
// column.
func (h *HashTable) Match(i int32, hash uint64, probe *Batch, pi int, probeCols []int) bool {
	if h.hashes[i] != hash {
		return false
	}
	return colsEqualAt(h.store, int(i), h.cols, probe, pi, probeCols)
}

// Row materializes build row i (boundary use only; the hot path joins
// column-wise via Batch.AppendJoined with Store).
func (h *HashTable) Row(i int32) Row { return h.store.RowAt(int(i)) }

// Store exposes the build-side batch so the executor can append joined
// rows column-wise.
func (h *HashTable) Store() *Batch { return h.store }

// Cols returns the build key columns.
func (h *HashTable) Cols() []int { return h.cols }

// Probe invokes fn for every build row whose keys equal t's probeCols,
// in insertion order. This is the legacy row-at-a-time interface; it
// materializes each matching Row.
func (h *HashTable) Probe(t tuple.Tuple, probeCols []int, fn func(Row)) {
	hash := hashColsSeed
	for _, c := range probeCols {
		hash = t[c].Hash(hash)
	}
	for i := h.Seek(hash); i >= 0; i = h.next[i] {
		if h.hashes[i] != hash {
			continue
		}
		ok := true
		for k, c := range h.cols {
			if !tuple.Equal(h.store.ValueAt(int(i), c), t[probeCols[k]]) {
				ok = false
				break
			}
		}
		if ok {
			fn(h.store.RowAt(int(i)))
		}
	}
}

// Footprint returns the approximate resident bytes of the table's
// storage, for arena accounting.
func (h *HashTable) Footprint() int64 {
	return h.store.Footprint() + 8*int64(cap(h.hashes)) + 4*int64(cap(h.head)) + 4*int64(cap(h.next))
}
