package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// BatchABEntry records one batch-layout comparison for the
// machine-readable benchmark output. The arms drain the identical
// star-schema update history with scan propagation: the row layout with
// container pooling disabled (the pre-columnar executor behavior), the
// columnar layout still without pooling (isolating the layout itself),
// and the columnar layout with per-step arenas (the shipping
// configuration). SpeedupColumnar/SpeedupArena are per-step throughput
// ratios against the row arm.
type BatchABEntry struct {
	Benchmark      string  `json:"benchmark"`
	FactRows       int     `json:"fact_rows"`
	Updates        int     `json:"updates"`
	BatchSize      int     `json:"batch_size"`
	Reps           int     `json:"reps"`
	RowNs          int64   `json:"row_ns"`
	ColumnarNs     int64   `json:"columnar_ns"`
	ArenaNs        int64   `json:"arena_ns"`
	RowStepNs      int64   `json:"row_step_ns"`
	ColumnarStepNs int64   `json:"columnar_step_ns"`
	ArenaStepNs    int64   `json:"arena_step_ns"`
	SpeedupCol     float64 `json:"speedup_columnar"`
	SpeedupArena   float64 `json:"speedup_arena"`
	Batches        int64   `json:"batches"`
	RowsPerBatch   float64 `json:"rows_per_batch"`
	Match          bool    `json:"match"`
}

// batchArm is one configuration of the batch-layout A/B experiment.
type batchArm struct {
	name    string
	rowMode bool
	noPool  bool
}

// batchArmResult is one repetition of one arm: the measured drain plus
// the deterministic batch counters.
type batchArmResult struct {
	dur     time.Duration
	steps   int64
	batches int64
	rows    int64
	match   bool
}

// runBatchArm builds a fresh environment under the arm's layout and
// pooling configuration, drains the seeded star-schema history with scan
// propagation, verifies the view against full recomputation, and returns
// the measured drain. The layout and pooling switches are process
// globals, so arms run strictly one at a time and restore the defaults
// before returning.
func runBatchArm(arm batchArm, updates, dimRows, factRows int) (batchArmResult, error) {
	relalg.SetRowLayout(arm.rowMode)
	exec.DisableBatchPool = arm.noPool
	defer func() {
		relalg.SetRowLayout(false)
		exec.DisableBatchPool = false
	}()

	var res batchArmResult
	w := workload.StarSchema(2, factRows, dimRows, 20)
	env, err := NewEnvCfg(w, 63, false, engine.Config{})
	if err != nil {
		return res, err
	}
	defer env.Close()
	mv, err := core.Materialize(env.DB, env.W.View)
	if err != nil {
		return res, err
	}
	d := workload.NewDriver(env.DB, env.W, 64)
	rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.PerRelationIntervals(4, 64, 64))
	const phases = 4
	var last relalg.CSN
	for p := 0; p < phases; p++ {
		n := updates / phases
		if p == phases-1 {
			n = updates - n*(phases-1)
		}
		if last, err = d.Run(n); err != nil {
			return res, err
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			return res, err
		}
		start := time.Now()
		if err := DrainRolling(rp, last); err != nil {
			return res, err
		}
		res.dur += time.Since(start)
	}
	res.steps = rp.Steps()
	st := env.DB.Stats()
	res.batches = st.BatchesProduced
	res.rows = st.BatchRows

	applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
	if err := applier.RollTo(last); err != nil {
		return res, err
	}
	full, _, err := core.FullRefresh(env.DB, env.W.View)
	if err != nil {
		return res, err
	}
	res.match = relalg.Equivalent(mv.AsRelation(), full)
	return res, nil
}

// BatchAB measures what the columnar batch layout and the per-step arena
// buy rolling propagation on a star schema under scan propagation, where
// every step streams base heaps through filter and hash-join kernels.
// The row arm replays the pre-columnar executor: every batch is a []Row,
// every join probe materializes tuples, and pooling is off so each step
// allocates its working set afresh. The columnar arm flips only the
// layout — typed column vectors, selection-vector filters, tuple-free
// probe hashing — and the arena arm adds container recycling on top, the
// shipping configuration. Every arm drains the identical update history
// and is verified against a full recomputation; each repeats a few times
// and reports the fastest repetition (the per-seed work is deterministic,
// so the minimum rejects scheduler and GC noise).
func BatchAB(s Scale) (*metrics.Table, []BatchABEntry, error) {
	updates := s.pick(200, 1600)
	dimRows := 150
	factRows := s.pick(2000, 8000)
	const reps = 2
	t := metrics.NewTable(
		fmt.Sprintf("BATCH — row layout vs columnar vs columnar+arena, scan propagation (star: fact %d rows, 2 dims x %d, %d updates, best of %d)",
			factRows, dimRows, updates, reps),
		"arm", "drain", "ns/step", "steps", "batches", "rows/batch", "match")

	arms := []batchArm{
		{"row, no pool", true, true},
		{"columnar, no pool", false, true},
		{"columnar + arena", false, false},
	}

	var entries []BatchABEntry
	var best [3]batchArmResult
	var stepNs [3]int64
	match := true
	for mode, arm := range arms {
		armMatch := true
		for rep := 0; rep < reps; rep++ {
			res, err := runBatchArm(arm, updates, dimRows, factRows)
			if err != nil {
				return t, entries, err
			}
			if !res.match {
				armMatch = false
				match = false
			}
			if rep == 0 || res.dur < best[mode].dur {
				best[mode] = res
			}
		}
		if best[mode].steps > 0 {
			stepNs[mode] = best[mode].dur.Nanoseconds() / best[mode].steps
		}
		b := best[mode]
		var rpb float64
		if b.batches > 0 {
			rpb = float64(b.rows) / float64(b.batches)
		}
		t.AddRow(arm.name, b.dur, stepNs[mode], b.steps, b.batches, fmt.Sprintf("%.1f", rpb), pass(armMatch))
	}
	speedupCol := float64(stepNs[0]) / float64(stepNs[1])
	speedupArena := float64(stepNs[0]) / float64(stepNs[2])
	var rpb float64
	if best[2].batches > 0 {
		rpb = float64(best[2].rows) / float64(best[2].batches)
	}
	entries = append(entries, BatchABEntry{
		Benchmark:      "rolling propagation, star schema, scan propagation",
		FactRows:       factRows,
		Updates:        updates,
		BatchSize:      exec.DefaultBatchSize,
		Reps:           reps,
		RowNs:          best[0].dur.Nanoseconds(),
		ColumnarNs:     best[1].dur.Nanoseconds(),
		ArenaNs:        best[2].dur.Nanoseconds(),
		RowStepNs:      stepNs[0],
		ColumnarStepNs: stepNs[1],
		ArenaStepNs:    stepNs[2],
		SpeedupCol:     speedupCol,
		SpeedupArena:   speedupArena,
		Batches:        best[2].batches,
		RowsPerBatch:   rpb,
		Match:          match,
	})
	if !match {
		return t, entries, fmt.Errorf("batch AB: an arm diverged from full recomputation")
	}
	return t, entries, nil
}
