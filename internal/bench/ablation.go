package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// A1 is an ablation on the propagation-query executor: with hash indexes on
// the base tables' join columns, a forward query probes the index once per
// delta row instead of scanning the base table, so per-step cost becomes
// proportional to the delta window instead of the table size. Shape:
// indexed propagation scans orders of magnitude fewer rows and drains the
// same backlog faster as tables grow.
func A1(s Scale) (*metrics.Table, error) {
	updates := s.pick(150, 600)
	t := metrics.NewTable(
		fmt.Sprintf("A1 — ablation: index nested-loop vs full-scan propagation (%d updates, δ=8)", updates),
		"table rows", "access path", "rows scanned", "index probes", "drain time", "match")

	for _, rows := range []int{s.pick(500, 2000), s.pick(2000, 10000)} {
		for _, indexed := range []bool{false, true} {
			newEnvFn := NewEnvBare
			if indexed {
				newEnvFn = NewEnv
			}
			env, err := newEnvFn(workload.Chain(2, rows, rows/10), 71)
			if err != nil {
				return nil, err
			}
			mv, err := core.Materialize(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return nil, err
			}
			d := workload.NewDriver(env.DB, env.W, 72)
			last, err := d.Run(updates)
			if err != nil {
				env.Close()
				return nil, err
			}
			if err := env.Cap.WaitProgress(last); err != nil {
				env.Close()
				return nil, err
			}

			before := env.DB.Stats()
			start := time.Now()
			rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.FixedInterval(8))
			if err := DrainRolling(rp, last); err != nil {
				env.Close()
				return nil, err
			}
			dur := time.Since(start)
			after := env.DB.Stats()

			applier := core.NewApplier(mv, env.Dest, rp.HWM)
			if _, err := applier.RollToHWM(); err != nil {
				env.Close()
				return nil, err
			}
			full, _, err := core.FullRefresh(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return nil, err
			}
			match := relalg.Equivalent(mv.AsRelation(), full)
			path := "full scan"
			if indexed {
				path = "index probes"
			}
			t.AddRow(rows, path, after.RowsScanned-before.RowsScanned,
				after.IndexProbes-before.IndexProbes, dur, pass(match))
			env.Close()
			if !match {
				return t, fmt.Errorf("A1: %s at %d rows diverged", path, rows)
			}
		}
	}
	return t, nil
}
