package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// ABEntry records one pipeline-vs-materialize comparison for the
// machine-readable benchmark output.
type ABEntry struct {
	Benchmark     string  `json:"benchmark"`
	PipelineNs    int64   `json:"pipeline_ns"`
	MaterializeNs int64   `json:"materialize_ns"`
	Speedup       float64 `json:"speedup"`
	Queries       int64   `json:"queries"`
	Match         bool    `json:"match"`
}

// abStyle is one propagation style measured by the A/B experiment.
type abStyle struct {
	name  string
	drain func(env *Env, mat, last relalg.CSN) error
}

// PipelineAB runs the same star-schema propagation workload through the
// streaming operator pipeline (EvalQuery) and through the materializing
// fallback executor (MaterializeExec), in two styles: an E1-style
// incremental refresh that propagates the whole backlog in one window per
// position, and an F9-style rolling propagation with small per-relation
// intervals. Both modes see the identical update history (same seeds) and
// both results are verified against a full recomputation, so the speedup
// column is an apples-to-apples measure of what streaming execution buys.
func PipelineAB(s Scale) (*metrics.Table, []ABEntry, error) {
	updates := s.pick(400, 1500)
	factRows := s.pick(1500, 6000)
	dimRows := s.pick(400, 1500)
	t := metrics.NewTable(
		fmt.Sprintf("AB — operator pipeline vs materializing executor (star: fact %d rows + 3 dims x %d rows, %d updates)",
			factRows, dimRows, updates),
		"benchmark", "materialize", "pipeline", "speedup", "match")

	styles := []abStyle{
		{"E1-style incremental refresh", func(env *Env, mat, last relalg.CSN) error {
			rp := core.NewRollingPropagator(env.Exec, mat, core.FixedInterval(relalg.CSN(updates)*2))
			return DrainRolling(rp, last)
		}},
		{"F9-style rolling propagation", func(env *Env, mat, last relalg.CSN) error {
			rp := core.NewRollingPropagator(env.Exec, mat, core.PerRelationIntervals(8, 128, 128, 128))
			return DrainRolling(rp, last)
		}},
	}

	var entries []ABEntry
	for _, st := range styles {
		var durs [2]time.Duration
		var queries [2]int64
		match := true
		// Index 0 measures the materializing fallback, 1 the pipeline.
		for mode := 0; mode < 2; mode++ {
			env, err := NewEnv(workload.StarSchema(3, factRows, dimRows, 20), 71)
			if err != nil {
				return t, entries, err
			}
			env.DB.SetForceMaterialize(mode == 0)
			mv, err := core.Materialize(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return t, entries, err
			}
			d := workload.NewDriver(env.DB, env.W, 72)
			last, err := d.Run(updates)
			if err != nil {
				env.Close()
				return t, entries, err
			}
			if err := env.Cap.WaitProgress(last); err != nil {
				env.Close()
				return t, entries, err
			}

			start := time.Now()
			if err := st.drain(env, mv.MatTime(), last); err != nil {
				env.Close()
				return t, entries, err
			}
			durs[mode] = time.Since(start)
			es := env.Exec.Stats()
			queries[mode] = es.ForwardQueries + es.CompensationQueries

			applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
			if err := applier.RollTo(last); err != nil {
				env.Close()
				return t, entries, err
			}
			full, _, err := core.FullRefresh(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return t, entries, err
			}
			if !relalg.Equivalent(mv.AsRelation(), full) {
				match = false
			}
			env.Close()
		}
		speedup := float64(durs[0]) / float64(durs[1])
		t.AddRow(st.name, durs[0], durs[1], speedup, pass(match))
		entries = append(entries, ABEntry{
			Benchmark:     st.name,
			PipelineNs:    durs[1].Nanoseconds(),
			MaterializeNs: durs[0].Nanoseconds(),
			Speedup:       speedup,
			Queries:       queries[1],
			Match:         match,
		})
		if !match {
			return t, entries, fmt.Errorf("pipeline AB: %s diverged from full recomputation", st.name)
		}
		if queries[0] != queries[1] {
			return t, entries, fmt.Errorf("pipeline AB: %s query counts differ (materialize %d, pipeline %d)",
				st.name, queries[0], queries[1])
		}
	}
	return t, entries, nil
}
