package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// PartitionABEntry records one partition-count comparison for the
// machine-readable benchmark output. The arms drain the identical skewed
// star-schema update history with scan propagation: unpartitioned (the
// seed behavior), 4-way hash partitioning with the heavy/light classifier
// disabled, and 4-way partitioning with heavy keys split onto their own
// slices. SpeedupHash/SpeedupHeavy are per-step throughput ratios against
// the unpartitioned arm.
type PartitionABEntry struct {
	Benchmark     string  `json:"benchmark"`
	FactRows      int     `json:"fact_rows"`
	Skew          float64 `json:"skew"`
	Partitions    int     `json:"partitions"`
	Reps          int     `json:"reps"`
	OneNs         int64   `json:"one_ns"`
	HashNs        int64   `json:"hash_ns"`
	HeavyNs       int64   `json:"heavy_ns"`
	OneStepNs     int64   `json:"one_step_ns"`
	HashStepNs    int64   `json:"hash_step_ns"`
	HeavyStepNs   int64   `json:"heavy_step_ns"`
	SpeedupHash   float64 `json:"speedup_hash"`
	SpeedupHeavy  float64 `json:"speedup_heavy"`
	SliceJobs     int64   `json:"slice_jobs"`
	HeavyKeys     int64   `json:"heavy_keys"`
	KeyMigrations int64   `json:"key_migrations"`
	Match         bool    `json:"match"`
}

// partArm is one configuration of the partition A/B experiment.
type partArm struct {
	name  string
	parts int
	heavy bool
}

// partArmResult is one repetition of one arm: the measured drain plus the
// deterministic work counters (identical across repetitions of the same
// seeded history — only the clock varies).
type partArmResult struct {
	dur        time.Duration
	steps      int64
	jobs       int64
	heavyKeys  int64
	migrations int64
	match      bool
}

// runPartArm builds a fresh environment, drains the seeded skewed
// star-schema history under the arm's partition configuration, verifies
// the view against full recomputation, and returns the measured drain.
func runPartArm(arm partArm, updates, dimRows, factRows int, skew float64) (partArmResult, error) {
	var res partArmResult
	w := workload.StarSchema(2, factRows, dimRows, 20)
	env, err := NewEnvCfg(w, 91, false, engine.Config{
		Partitions:        arm.parts,
		DisableHeavySplit: !arm.heavy,
	})
	if err != nil {
		return res, err
	}
	defer env.Close()
	// Skew every table's update stream (one Zipf over the shared key
	// domain: the hot product's fact rows AND its dimension rows churn
	// most) but keep the initial loads uniform. Update-stream skew is the
	// propagation-relevant kind — it decides which delta windows land in
	// which partitions — while initial-load skew would concentrate rows of
	// every relation on one key and blow up the irreducible join fan-out,
	// drowning the reducible scan work all arms compete on. The specs are
	// mutated after Setup so only the driver below sees the skew.
	for i := range w.Tables {
		w.Tables[i].Skew = skew
		// Balanced insert/delete traffic keeps per-key row counts (and so
		// the irreducible join fan-out of the hot keys) stable across the
		// run instead of growing with the update count.
		w.Tables[i].InsertFraction = 0.5
	}
	mv, err := core.Materialize(env.DB, env.W.View)
	if err != nil {
		return res, err
	}
	d := workload.NewDriver(env.DB, env.W, 92)
	rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.PerRelationIntervals(4, 64, 64))
	const phases = 4
	var last relalg.CSN
	for p := 0; p < phases; p++ {
		n := updates / phases
		if p == phases-1 {
			n = updates - n*(phases-1)
		}
		if last, err = d.Run(n); err != nil {
			return res, err
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			return res, err
		}
		start := time.Now()
		if err := DrainRolling(rp, last); err != nil {
			return res, err
		}
		res.dur += time.Since(start)
	}
	res.steps = rp.Steps()
	st := env.DB.Stats()
	for _, n := range st.PartSliceJobs {
		res.jobs += n
	}
	res.heavyKeys = st.HeavyKeys
	res.migrations = st.KeyMigrations

	applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
	if err := applier.RollTo(last); err != nil {
		return res, err
	}
	full, _, err := core.FullRefresh(env.DB, env.W.View)
	if err != nil {
		return res, err
	}
	res.match = relalg.Equivalent(mv.AsRelation(), full)
	return res, nil
}

// PartitionAB measures what hash partitioning buys rolling propagation on
// a skewed star schema. All arms use scan propagation (no indexes), where
// the partitioning layer's work reduction is direct: a sliced step's
// co-partitioned base scans read one shard instead of the whole heap,
// slices whose delta window is empty are skipped outright — under skew,
// most light partitions are — and a heavy-key slice reads its base
// positions from the materialized heavy cache partition instead of
// scanning at all. Every arm drains the identical update history (victim
// selection in DeleteWhere is partition-count-independent) and is
// verified against a full recomputation. Each arm repeats a few times and
// reports the fastest repetition: the per-seed work is deterministic, so
// the minimum rejects scheduler and GC noise rather than cherry-picking.
func PartitionAB(s Scale) (*metrics.Table, []PartitionABEntry, error) {
	updates := s.pick(200, 1600)
	// The key domain stays at 150 across scales: it sets the Zipf head's
	// share of the update stream (hot-key concentration), which is the
	// regime under test, while factRows scales the base-table work.
	dimRows := 150
	factRows := s.pick(2000, 8000)
	const reps = 2
	const nparts = 4
	const skew = 1.8
	t := metrics.NewTable(
		fmt.Sprintf("PARTITION — 1 vs %d partitions vs %d+heavy/light, scan propagation (skewed star: fact %d rows, 2 dims x %d, zipf %.1f, %d updates, best of %d)",
			nparts, nparts, factRows, dimRows, skew, updates, reps),
		"arm", "drain", "ns/step", "steps", "slice jobs", "heavy keys", "migrations", "match")

	arms := []partArm{
		{"1 partition", 1, false},
		{fmt.Sprintf("%d hash", nparts), nparts, false},
		{fmt.Sprintf("%d heavy/light", nparts), nparts, true},
	}

	var entries []PartitionABEntry
	var best [3]partArmResult
	var stepNs [3]int64
	match := true
	for mode, arm := range arms {
		armMatch := true
		for rep := 0; rep < reps; rep++ {
			res, err := runPartArm(arm, updates, dimRows, factRows, skew)
			if err != nil {
				return t, entries, err
			}
			if !res.match {
				armMatch = false
				match = false
			}
			if rep == 0 || res.dur < best[mode].dur {
				best[mode] = res
			}
		}
		if best[mode].steps > 0 {
			stepNs[mode] = best[mode].dur.Nanoseconds() / best[mode].steps
		}
		b := best[mode]
		t.AddRow(arm.name, b.dur, stepNs[mode], b.steps, b.jobs, b.heavyKeys, b.migrations, pass(armMatch))
	}
	speedupHash := float64(stepNs[0]) / float64(stepNs[1])
	speedupHeavy := float64(stepNs[0]) / float64(stepNs[2])
	entries = append(entries, PartitionABEntry{
		Benchmark:     "rolling propagation, skewed star schema",
		FactRows:      factRows,
		Skew:          skew,
		Partitions:    nparts,
		Reps:          reps,
		OneNs:         best[0].dur.Nanoseconds(),
		HashNs:        best[1].dur.Nanoseconds(),
		HeavyNs:       best[2].dur.Nanoseconds(),
		OneStepNs:     stepNs[0],
		HashStepNs:    stepNs[1],
		HeavyStepNs:   stepNs[2],
		SpeedupHash:   speedupHash,
		SpeedupHeavy:  speedupHeavy,
		SliceJobs:     best[2].jobs,
		HeavyKeys:     best[2].heavyKeys,
		KeyMigrations: best[2].migrations,
		Match:         match,
	})
	if !match {
		return t, entries, fmt.Errorf("partition AB: an arm diverged from full recomputation")
	}
	return t, entries, nil
}
