package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// SnapshotABEntry is one arm of the SNAPSHOT experiment in machine-readable
// form (BENCH_rollbench.json).
type SnapshotABEntry struct {
	Arm             string  `json:"arm"`
	DrainNs         int64   `json:"drain_ns"`
	WriterTxns      int64   `json:"writer_txns"`
	WriterMeanNs    int64   `json:"writer_mean_ns"`
	WriterP99Ns     int64   `json:"writer_p99_ns"`
	LockWaitNs      int64   `json:"lock_wait_ns"`
	SnapshotsOpened int64   `json:"snapshots_opened"`
	PublishStalls   int64   `json:"publish_stalls"`
	Verified        bool    `json:"verified"`
	WriterSpeedup   float64 `json:"writer_speedup,omitempty"`
}

// SnapshotAB measures what the read-view layer buys: rolling propagation
// drains a backlog while concurrent writers commit, once with LockScans
// (every propagation query takes the legacy S locks on its base tables,
// serializing against the writers' X locks) and once with pure snapshot
// reads (no table locks on the read path). Both arms verify the rolled
// view against a full recomputation; the snapshot arm must not make
// writers wait on propagation-held table locks.
func SnapshotAB(s Scale) (*metrics.Table, []SnapshotABEntry, error) {
	rows := s.pick(400, 1500)
	backlog := s.pick(200, 800)
	keys := 20

	t := metrics.NewTable(
		fmt.Sprintf("SNAPSHOT — S-lock scans vs read-view reads while draining a %d-commit backlog", backlog),
		"read path", "writer txns", "writer mean", "writer p99", "lock wait total", "drain time", "snapshots", "verified")

	var entries []SnapshotABEntry
	for _, lockScans := range []bool{true, false} {
		name := "snapshot reads"
		if lockScans {
			name = "S-lock scans"
		}
		env, err := NewEnv(workload.Chain(2, rows, keys), 31)
		if err != nil {
			return nil, nil, err
		}
		env.Exec.LockScans = lockScans

		mv, err := core.Materialize(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, nil, err
		}
		d := workload.NewDriver(env.DB, env.W, 32)
		target, err := d.Run(backlog)
		if err != nil {
			env.Close()
			return nil, nil, err
		}
		if err := env.Cap.WaitProgress(target); err != nil {
			env.Close()
			return nil, nil, err
		}

		// Drain with a concurrent writer probing commit latency. Under
		// LockScans every propagation query holds S locks for its whole
		// read, so the probe's X locks queue behind it; under snapshot
		// reads the probe never waits on the propagator.
		before := env.DB.Stats()
		lat := metrics.NewHistogram()
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe := workload.NewDriver(env.DB, env.W, 33)
			for {
				select {
				case <-done:
					return
				default:
				}
				start := time.Now()
				if _, err := probe.Step(); err != nil {
					return
				}
				lat.Observe(time.Since(start))
				time.Sleep(200 * time.Microsecond)
			}
		}()
		rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.FixedInterval(16))
		drainStart := time.Now()
		drainErr := DrainRolling(rp, target)
		drainDur := time.Since(drainStart)
		close(done)
		wg.Wait()
		if drainErr != nil {
			env.Close()
			return nil, nil, drainErr
		}

		// Correctness: roll to a CSN both processes agree on and compare.
		applier := core.NewApplier(mv, env.Dest, rp.HWM)
		full, csn, err := core.FullRefresh(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, nil, err
		}
		for rp.HWM() < csn {
			if err := rp.Step(); err != nil && err != core.ErrNoProgress {
				env.Close()
				return nil, nil, err
			}
		}
		if err := applier.RollTo(csn); err != nil {
			env.Close()
			return nil, nil, err
		}
		verified := relalg.Equivalent(relalg.NetEffect(mv.AsRelation()), relalg.NetEffect(full))

		after := env.DB.Stats()
		lockWait := after.Txn.LockWaitTime - before.Txn.LockWaitTime
		t.AddRow(name, lat.Count(), lat.Mean(), lat.Quantile(0.99),
			lockWait, drainDur, after.SnapshotsOpened-before.SnapshotsOpened, pass(verified))
		entries = append(entries, SnapshotABEntry{
			Arm:             name,
			DrainNs:         drainDur.Nanoseconds(),
			WriterTxns:      int64(lat.Count()),
			WriterMeanNs:    lat.Mean().Nanoseconds(),
			WriterP99Ns:     lat.Quantile(0.99).Nanoseconds(),
			LockWaitNs:      lockWait.Nanoseconds(),
			SnapshotsOpened: after.SnapshotsOpened - before.SnapshotsOpened,
			PublishStalls:   after.PublishStalls - before.PublishStalls,
			Verified:        verified,
		})
		env.Close()
		if !verified {
			return t, entries, fmt.Errorf("SNAPSHOT: %s arm diverged from recomputation", name)
		}
	}
	if len(entries) == 2 && entries[1].WriterMeanNs > 0 {
		entries[1].WriterSpeedup = float64(entries[0].WriterMeanNs) / float64(entries[1].WriterMeanNs)
		t.AddRow("writer mean speedup (snapshot vs locks)",
			fmt.Sprintf("%.2fx", entries[1].WriterSpeedup), "", "", "", "", "", "")
	}
	return t, entries, nil
}
