//go:build unix

package bench

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time. The
// MULTIVIEW experiment diffs it across an idle window to show what per-view
// polling burns while nothing is happening.
func processCPU() (time.Duration, bool) {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0, false
	}
	return time.Duration(ru.Utime.Nano()+ru.Stime.Nano()) * time.Nanosecond, true
}
