package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// A2 is an ablation on interval selection: the adaptive policy (size each
// relation's interval to a target number of delta rows per query) against
// fixed intervals, on the skewed star-schema workload. Shape: adaptive
// propagation approaches the hand-tuned per-relation configuration without
// knowing the workload in advance, and beats a single fixed interval.
func A2(s Scale) (*metrics.Table, error) {
	updates := s.pick(300, 1200)
	t := metrics.NewTable(
		fmt.Sprintf("A2 — ablation: interval policies on the star schema (%d updates, fact 20x)", updates),
		"policy", "queries", "skipped empty", "drain time", "match")

	type policyCase struct {
		name string
		make func(env *Env) core.IntervalPolicy
	}
	cases := []policyCase{
		{"fixed δ=8 (tuned for fact)", func(*Env) core.IntervalPolicy {
			return core.FixedInterval(8)
		}},
		{"fixed δ=256 (tuned for dims)", func(*Env) core.IntervalPolicy {
			return core.FixedInterval(256)
		}},
		{"hand-tuned δ=[8,256,256]", func(*Env) core.IntervalPolicy {
			return core.PerRelationIntervals(8, 256, 256)
		}},
		{"adaptive (target 32 rows/query)", func(env *Env) core.IntervalPolicy {
			return core.AdaptiveInterval(env.DB, env.W.View, 32)
		}},
	}

	for _, pc := range cases {
		env, err := NewEnv(workload.StarSchema(2, s.pick(300, 1500), s.pick(40, 150), 20), 81)
		if err != nil {
			return nil, err
		}
		mv, err := core.Materialize(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		d := workload.NewDriver(env.DB, env.W, 82)
		last, err := d.Run(updates)
		if err != nil {
			env.Close()
			return nil, err
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			env.Close()
			return nil, err
		}
		queries := 0
		env.Exec.OnQuery = func(core.TraceEntry) { queries++ }

		start := time.Now()
		rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), pc.make(env))
		if err := DrainRolling(rp, last); err != nil {
			env.Close()
			return nil, err
		}
		dur := time.Since(start)

		applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
		if err := applier.RollTo(last); err != nil {
			env.Close()
			return nil, err
		}
		full, _, err := core.FullRefresh(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		match := relalg.Equivalent(mv.AsRelation(), full)
		es := env.Exec.Stats()
		t.AddRow(pc.name, queries, es.SkippedEmpty, dur, pass(match))
		env.Close()
		if !match {
			return t, fmt.Errorf("A2: %s diverged", pc.name)
		}
	}
	return t, nil
}
