package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// Scale sizes the claim experiments. Quick keeps everything small enough
// for CI benchmarks; the rollbench CLI uses the full scale.
type Scale struct {
	Quick bool
}

func (s Scale) pick(quick, full int) int {
	if s.Quick {
		return quick
	}
	return full
}

// E1 measures incremental refresh against full recomputation as the amount
// of change grows (the Section 1 premise: "incremental refresh ... is often
// less expensive than a full, non-incremental refresh"). Shape: incremental
// wins by a wide margin for small deltas and the gap narrows as the delta
// approaches the table size.
func E1(s Scale) (*metrics.Table, error) {
	n := s.pick(400, 4000)
	t := metrics.NewTable(
		fmt.Sprintf("E1 — incremental vs full refresh, %d-row tables, 2-way join", n),
		"updates", "full refresh", "incremental", "speedup", "match")
	for _, frac := range []int{100, 20, 5, 1} {
		updates := n / frac
		env, err := NewEnv(workload.Chain(2, n, n/10), int64(frac))
		if err != nil {
			return nil, err
		}
		mv, err := core.Materialize(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		d := workload.NewDriver(env.DB, env.W, int64(frac)+100)
		last, err := d.Run(updates)
		if err != nil {
			env.Close()
			return nil, err
		}
		if err := env.Cap.WaitProgress(last); err != nil {
			env.Close()
			return nil, err
		}

		startFull := time.Now()
		full, _, err := core.FullRefresh(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		fullDur := time.Since(startFull)

		startInc := time.Now()
		rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.FixedInterval(relalg.CSN(updates)))
		if err := DrainRolling(rp, last); err != nil {
			env.Close()
			return nil, err
		}
		applier := core.NewApplier(mv, env.Dest, rp.HWM)
		if _, err := applier.RollToHWM(); err != nil {
			env.Close()
			return nil, err
		}
		incDur := time.Since(startInc)

		match := relalg.Equivalent(mv.AsRelation(), full)
		t.AddRow(updates, fullDur, incDur, float64(fullDur)/float64(incDur), pass(match))
		env.Close()
		if !match {
			return t, fmt.Errorf("E1: incremental state diverged at %d updates", updates)
		}
	}
	return t, nil
}

// E2 measures the contention-control claim: a backlog of captured changes
// is propagated while writers keep arriving. The propagation interval
// bounds the size (and lock-hold time) of each propagation transaction, so
// writer latency degrades as intervals grow, worst of all under the single
// atomic synchronous transaction (Equation 1). Shape: writer p99/max
// latency and lock-wait time increase with the interval.
func E2(s Scale) (*metrics.Table, error) {
	rows := s.pick(400, 1500)
	backlog := s.pick(200, 800)
	// A small key domain gives the join high fanout, so a propagation
	// transaction's lock-hold time grows with its window width — the
	// mechanism behind the interval/contention trade-off.
	keys := 20
	t := metrics.NewTable(
		fmt.Sprintf("E2 — writer latency while a %d-commit backlog propagates (%d-row tables)", backlog, rows),
		"propagation", "writer txns", "writer mean", "writer p99", "writer max", "lock wait total", "drain time")

	type config struct {
		name  string
		drain func(env *Env, target relalg.CSN) error
	}
	configs := []config{
		{"rolling δ=8", func(env *Env, target relalg.CSN) error {
			return DrainRolling(core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(8)), target)
		}},
		{"rolling δ=128", func(env *Env, target relalg.CSN) error {
			return DrainRolling(core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(128)), target)
		}},
		{fmt.Sprintf("rolling δ=%d (whole backlog)", backlog), func(env *Env, target relalg.CSN) error {
			return DrainRolling(core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(relalg.CSN(backlog)*2)), target)
		}},
		{"sync Eq.1 (one atomic txn)", func(env *Env, target relalg.CSN) error {
			a := relalg.CSN(0)
			for a < target {
				b, _, err := core.SyncPropagateEq1(env.DB, env.Cap, env.W.View, env.Dest, a)
				if err != nil {
					return err
				}
				a = b
			}
			return nil
		}},
	}

	for _, cfg := range configs {
		env, err := NewEnv(workload.Chain(2, rows, keys), 11)
		if err != nil {
			return nil, err
		}
		// Build the backlog with propagation suspended.
		d := workload.NewDriver(env.DB, env.W, 12)
		target, err := d.Run(backlog)
		if err != nil {
			env.Close()
			return nil, err
		}
		if err := env.Cap.WaitProgress(target); err != nil {
			env.Close()
			return nil, err
		}

		// Drain the backlog while concurrent writers measure their latency.
		before := env.DB.Stats()
		lat := metrics.NewHistogram()
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			probe := workload.NewDriver(env.DB, env.W, 13)
			for {
				select {
				case <-done:
					return
				default:
				}
				start := time.Now()
				if _, err := probe.Step(); err != nil {
					return
				}
				lat.Observe(time.Since(start))
				// Pace the probe so it samples latency without flooding the
				// delta tables (which would inflate every configuration's
				// compensation work and drown the signal).
				time.Sleep(200 * time.Microsecond)
			}
		}()
		drainStart := time.Now()
		drainErr := cfg.drain(env, target)
		drainDur := time.Since(drainStart)
		close(done)
		wg.Wait()
		if drainErr != nil {
			env.Close()
			return nil, drainErr
		}
		after := env.DB.Stats()
		t.AddRow(cfg.name, lat.Count(), lat.Mean(), lat.Quantile(0.99), lat.Max(),
			after.Txn.LockWaitTime-before.Txn.LockWaitTime, drainDur)
		env.Close()
	}
	return t, nil
}

// E3 demonstrates asynchrony (Section 3.2): every propagation query for the
// interval (0, t_new] executes in wall-clock time strictly after t_new — the
// 4pm–5pm delta is computed after 5pm — while reading the base tables
// through read views at CSNs no later than t_new, and the result is still
// exact. (Before the snapshot layer, a query's executed time was whatever
// commit CSN it happened to land on; now executed time equals intended time
// by construction, which is what the assertion checks.)
func E3(s Scale) (*metrics.Table, error) {
	updates := s.pick(150, 1000)
	env, err := NewEnv(workload.Chain(2, s.pick(200, 1000), 40), 21)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	mv, err := core.Materialize(env.DB, env.W.View)
	if err != nil {
		return nil, err
	}

	// Phase 1: the update burst, with propagation suspended.
	startBurst := time.Now()
	d := workload.NewDriver(env.DB, env.W, 22)
	tNew, err := d.Run(updates)
	if err != nil {
		return nil, err
	}
	burstDur := time.Since(startBurst)

	// Phase 2: propagate the whole burst afterwards. Every query runs
	// wall-clock after the burst (the callback is only installed here), and
	// reads historical state: executed time at or before t_new. Exception:
	// propagation's own commits advance capture progress past t_new, so the
	// final ledger cell can straddle t_new and its queries (at most one
	// cell's worth) execute at a CSN just past it — their windows still only
	// contain burst changes.
	histQueries, totalQueries := 0, 0
	env.Exec.OnQuery = func(e core.TraceEntry) {
		totalQueries++
		if e.Exec <= tNew {
			histQueries++
		}
	}
	startProp := time.Now()
	rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.PerRelationIntervals(16, 48))
	if err := DrainRolling(rp, tNew); err != nil {
		return nil, err
	}
	propDur := time.Since(startProp)

	applier := core.NewApplier(mv, env.Dest, rp.HWM)
	if err := applier.RollTo(tNew); err != nil {
		return nil, err
	}
	full, _, err := core.FullRefresh(env.DB, env.W.View)
	if err != nil {
		return nil, err
	}
	match := relalg.Equivalent(mv.AsRelation(), full)

	t := metrics.NewTable("E3 — asynchronous deferral: all propagation work happens after t_new",
		"metric", "value")
	t.AddRow("updates in burst", updates)
	t.AddRow("burst duration", burstDur)
	t.AddRow("t_new (CSN)", int64(tNew))
	t.AddRow("propagation duration (after burst)", propDur)
	t.AddRow("propagation queries", totalQueries)
	t.AddRow("queries reading state at/before t_new", fmt.Sprintf("%d (%.0f%%)", histQueries, 100*float64(histQueries)/float64(max(totalQueries, 1))))
	t.AddRow("rolled view == recompute", pass(match))
	// Allow only the straddling cell: one forward query per relation plus
	// its compensations, 2n−1 queries for the n-way view.
	if slack := 2*2 - 1; totalQueries-histQueries > slack {
		return t, fmt.Errorf("E3: %d of %d queries read state past t_new (max %d allowed for the straddling cell)",
			totalQueries-histQueries, totalQueries, slack)
	}
	if !match {
		return t, fmt.Errorf("E3: deferred propagation diverged")
	}
	return t, nil
}

// E4 measures point-in-time refresh: rolling a view forward costs time
// proportional to the window width, and any intermediate point up to the
// high-water mark is reachable. Shape: cost grows with window width.
func E4(s Scale) (*metrics.Table, error) {
	updates := s.pick(400, 3000)
	env, err := NewEnv(workload.Chain(2, s.pick(100, 500), 25), 31)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	d := workload.NewDriver(env.DB, env.W, 32)
	last, err := d.Run(updates)
	if err != nil {
		return nil, err
	}
	rp := core.NewRollingPropagator(env.Exec, 0, core.FixedInterval(32))
	if err := DrainRolling(rp, last); err != nil {
		return nil, err
	}

	schema, err := env.W.View.Schema(env.DB)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("E4 — point-in-time refresh cost vs window width",
		"window (commits)", "refreshes", "rows applied", "total time", "per refresh")
	for _, width := range []relalg.CSN{1, 8, 64, relalg.CSN(updates)} {
		mv := core.NewMaterializedView("pit", schema, 0)
		applier := core.NewApplier(mv, env.Dest, rp.HWM)
		start := time.Now()
		refreshes := 0
		for ts := width; ts <= last; ts += width {
			if err := applier.RollTo(ts); err != nil {
				return nil, err
			}
			refreshes++
		}
		if mv.MatTime() < last {
			if err := applier.RollTo(last); err != nil {
				return nil, err
			}
			refreshes++
		}
		dur := time.Since(start)
		t.AddRow(int64(width), refreshes, applier.RowsApplied(), dur, dur/time.Duration(max(refreshes, 1)))
	}
	return t, nil
}

// E5 compares the query budgets of Section 3.1: Equation 1 needs 2^n−1
// queries, Equation 2 needs n (two of them unrealizable — served here from
// reconstructed snapshots), and asynchronous ComputeDelta needs
// n + n·Q(n−1) small queries, fewer when empty delta windows are elided.
func E5(s Scale) (*metrics.Table, error) {
	t := metrics.NewTable("E5 — queries per propagated interval, by method",
		"n", "Eq.1 (2^n−1)", "Eq.2 (n)", "async (all)", "async (elided)", "agree")
	maxN := s.pick(3, 4)
	for n := 2; n <= maxN; n++ {
		counts := make(map[string]int)
		var rolled [3]*relalg.Relation

		for vi, variant := range []string{"eq1", "async-all", "async-skip"} {
			env, err := NewEnv(workload.Chain(n, 30, 6), 41)
			if err != nil {
				return nil, err
			}
			d := workload.NewDriver(env.DB, env.W, 42)
			last, err := d.Run(40)
			if err != nil {
				env.Close()
				return nil, err
			}
			switch variant {
			case "eq1":
				_, q, err := core.SyncPropagateEq1(env.DB, env.Cap, env.W.View, env.Dest, 0)
				if err != nil {
					env.Close()
					return nil, err
				}
				counts["eq1"] = q
				rolled[vi] = relalg.NetEffect(relalg.Window(env.Dest.All(), 0, last))
				// Eq.2 on the same history, into a scratch delta (its query
				// count is fixed at n; its output is checked by core tests).
				if err := env.ResetDest(); err != nil {
					env.Close()
					return nil, err
				}
				_, q2, err := core.SyncPropagateEq2(env.DB, env.Cap, env.W.View, env.Dest, 0)
				if err != nil {
					env.Close()
					return nil, err
				}
				counts["eq2"] = q2
			case "async-all", "async-skip":
				env.Exec.SkipEmptyWindows = variant == "async-skip"
				q := 0
				env.Exec.OnQuery = func(core.TraceEntry) { q++ }
				if err := env.Exec.ComputeDelta(core.AllBase(env.W.View), make([]relalg.CSN, n), last); err != nil {
					env.Close()
					return nil, err
				}
				counts[variant] = q
				rolled[vi] = relalg.NetEffect(relalg.Window(env.Dest.All(), 0, last))
			}
			env.Close()
		}
		agree := relalg.Equivalent(rolled[0], rolled[1]) && relalg.Equivalent(rolled[1], rolled[2])
		t.AddRow(n, counts["eq1"], counts["eq2"], counts["async-all"], counts["async-skip"], pass(agree))
		if !agree {
			return t, fmt.Errorf("E5: methods disagree at n=%d", n)
		}
	}
	return t, nil
}

// E6 is the star-schema experiment motivating per-relation intervals
// (Section 3.4): with a single interval sized for the hot fact table, the
// rarely-updated dimensions suffer many tiny forward queries; per-relation
// intervals cut the query count. Shape: rolling with wide dimension
// intervals runs fewer queries and less total work than single-interval
// Propagate over the same history.
func E6(s Scale) (*metrics.Table, error) {
	updates := s.pick(300, 1500)
	t := metrics.NewTable(
		fmt.Sprintf("E6 — star schema (fact + 2 dims, fact gets 20x updates, %d updates total)", updates),
		"strategy", "queries", "skipped empty", "delta rows", "time", "match")

	type strategy struct {
		name string
		run  func(env *Env, mat relalg.CSN, last relalg.CSN) error
		skip bool
	}
	strategies := []strategy{
		{"Propagate δ=8 (single knob)", func(env *Env, mat, last relalg.CSN) error {
			return DrainPropagate(core.NewPropagator(env.Exec, mat, core.FixedInterval(8)), last)
		}, false},
		{"Rolling δ=[8,128,128] (per-relation)", func(env *Env, mat, last relalg.CSN) error {
			return DrainRolling(core.NewRollingPropagator(env.Exec, mat, core.PerRelationIntervals(8, 128, 128)), last)
		}, false},
		{"Rolling δ=[8,128,128] + empty-window elision", func(env *Env, mat, last relalg.CSN) error {
			return DrainRolling(core.NewRollingPropagator(env.Exec, mat, core.PerRelationIntervals(8, 128, 128)), last)
		}, true},
	}

	for _, st := range strategies {
		env, err := NewEnv(workload.StarSchema(2, s.pick(300, 2000), s.pick(40, 200), 20), 51)
		if err != nil {
			return nil, err
		}
		mv, err := core.Materialize(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		d := workload.NewDriver(env.DB, env.W, 52)
		last, err := d.Run(updates)
		if err != nil {
			env.Close()
			return nil, err
		}
		env.Exec.SkipEmptyWindows = st.skip
		queries := 0
		env.Exec.OnQuery = func(core.TraceEntry) { queries++ }

		start := time.Now()
		if err := st.run(env, mv.MatTime(), last); err != nil {
			env.Close()
			return nil, err
		}
		dur := time.Since(start)

		applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
		if err := applier.RollTo(last); err != nil {
			env.Close()
			return nil, err
		}
		full, _, err := core.FullRefresh(env.DB, env.W.View)
		if err != nil {
			env.Close()
			return nil, err
		}
		match := relalg.Equivalent(mv.AsRelation(), full)
		es := env.Exec.Stats()
		t.AddRow(st.name, queries, es.SkippedEmpty, es.RowsProduced, dur, pass(match))
		env.Close()
		if !match {
			return t, fmt.Errorf("E6: %s diverged", st.name)
		}
	}
	return t, nil
}

// E7 compares the capture architectures of Section 5: log capture keeps
// writer commits lean but trails the log; trigger capture is synchronous
// but expands every writer's commit footprint. Shape: trigger mode has
// higher writer latency; log mode shows capture lag that must be awaited.
func E7(s Scale) (*metrics.Table, error) {
	updates := s.pick(500, 5000)
	t := metrics.NewTable(
		fmt.Sprintf("E7 — capture architectures (%d single-row update transactions)", updates),
		"mode", "writer mean", "writer p99", "wall time", "rows captured", "lag at end (commits)")

	for _, mode := range []string{"log (DPropR-style)", "trigger"} {
		db, err := engine.Open(engine.Config{})
		if err != nil {
			return nil, err
		}
		w := workload.Chain(2, s.pick(100, 500), 20)
		if err := w.Setup(db, rand.New(rand.NewSource(61))); err != nil {
			db.Close()
			return nil, err
		}
		var rowsCaptured func() int64
		var progress func() relalg.CSN
		var logCap interface{ Wait() }
		if mode == "trigger" {
			tc := capture.NewTriggerCapture(db)
			rowsCaptured = tc.RowsCaptured
			progress = tc.Progress
		} else {
			lc := capture.NewLogCapture(db)
			lc.Start()
			rowsCaptured = lc.RowsCaptured
			progress = lc.Progress
			logCap = lc
		}

		d := workload.NewDriver(db, w, 62)
		lat := metrics.NewHistogram()
		start := time.Now()
		var last relalg.CSN
		for i := 0; i < updates; i++ {
			s := time.Now()
			csn, err := d.Step()
			if err != nil {
				db.Close()
				return nil, err
			}
			lat.Observe(time.Since(s))
			last = csn
		}
		wall := time.Since(start)
		lag := last - progress()
		if lag < 0 {
			lag = 0
		}
		t.AddRow(mode, lat.Mean(), lat.Quantile(0.99), wall, rowsCaptured(), int64(lag))
		db.Close()
		if logCap != nil {
			logCap.Wait()
		}
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
