package bench

import "testing"

// The experiments self-verify (each returns an error when its internal
// consistency checks fail), so the smoke test simply runs every one at
// quick scale.

func TestFigures(t *testing.T) {
	for name, fn := range map[string]func() (tbl interface{ String() string }, err error){
		"F4": func() (interface{ String() string }, error) { return F4() },
		"F7": func() (interface{ String() string }, error) { return F7() },
		"F8": func() (interface{ String() string }, error) { return F8() },
		"F9": func() (interface{ String() string }, error) { return F9() },
	} {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, render(tbl))
		}
		if tbl.String() == "" {
			t.Fatalf("%s: empty table", name)
		}
	}
}

func TestClaims(t *testing.T) {
	s := Scale{Quick: true}
	for name, fn := range map[string]func() (tbl interface{ String() string }, err error){
		"E1": func() (interface{ String() string }, error) { return E1(s) },
		"E2": func() (interface{ String() string }, error) { return E2(s) },
		"E3": func() (interface{ String() string }, error) { return E3(s) },
		"E4": func() (interface{ String() string }, error) { return E4(s) },
		"E5": func() (interface{ String() string }, error) { return E5(s) },
		"E6": func() (interface{ String() string }, error) { return E6(s) },
		"E7": func() (interface{ String() string }, error) { return E7(s) },
		"A1": func() (interface{ String() string }, error) { return A1(s) },
		"A2": func() (interface{ String() string }, error) { return A2(s) },
	} {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("%s: %v\n%s", name, err, render(tbl))
		}
		if tbl.String() == "" {
			t.Fatalf("%s: empty table", name)
		}
	}
}

func render(tbl interface{ String() string }) string {
	if tbl == nil {
		return "<nil>"
	}
	return tbl.String()
}

func TestCascadeAB(t *testing.T) {
	tbl, entries, err := CascadeAB(Scale{Quick: true})
	if err != nil {
		t.Fatalf("CASCADE: %v\n%s", err, render(tbl))
	}
	if len(entries) != 1 || !entries[0].Match {
		t.Fatalf("CASCADE entries: %+v", entries)
	}
	if entries[0].Speedup < 2 {
		t.Fatalf("CASCADE speedup %.2fx < 2x", entries[0].Speedup)
	}
}
