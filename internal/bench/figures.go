package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// F4 reproduces Figure 4 / Equation 3: ComputeDelta on V = R1 ⋈ R2 issues
// two asynchronous forward queries plus recursive compensation. With read
// views pinning every query at its intended time, compensation collapses to
// the exact inclusion-exclusion form: position 0 reads everything at t_b and
// needs no correction, and position 1's single compensation subtracts the
// Δ1 ⊗ Δ2 overlap — three queries total. The returned table lists the
// executed queries in order.
func F4() (*metrics.Table, error) {
	env, err := NewEnv(workload.Chain(2, 8, 4), 1)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.Exec.SkipEmptyWindows = false

	var trace []core.TraceEntry
	env.Exec.OnQuery = func(e core.TraceEntry) { trace = append(trace, e) }

	d := workload.NewDriver(env.DB, env.W, 2)
	last, err := d.Run(10)
	if err != nil {
		return nil, err
	}
	if err := env.Exec.ComputeDelta(core.AllBase(env.W.View), []relalg.CSN{0, 0}, last); err != nil {
		return nil, err
	}

	t := metrics.NewTable("F4 — ComputeDelta(V, [a,a], b) for V = R1 ⋈ R2 (Equation 3)",
		"#", "kind", "query", "exec(t)", "rows")
	for i, e := range trace {
		t.AddRow(i+1, e.Kind.String(), e.Query, int64(e.Exec), e.Rows)
	}
	st := env.Exec.Stats()
	if st.ForwardQueries != 2 || st.CompensationQueries != 1 {
		return t, fmt.Errorf("F4: expected 2 forward + 1 compensation query, got %d + %d",
			st.ForwardQueries, st.CompensationQueries)
	}
	return t, nil
}

// F7 reproduces Figure 7: the four ComputeDelta query regions net to
// exactly the L-shaped region V_{a,b} — applying the computed delta to the
// view at t_a yields the view at t_b.
func F7() (*metrics.Table, error) {
	env, err := NewEnv(workload.Chain(2, 50, 10), 3)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.Exec.SkipEmptyWindows = false

	// Materialize at t_a.
	mv, err := core.Materialize(env.DB, env.W.View)
	if err != nil {
		return nil, err
	}
	a := mv.MatTime()

	// Evolve to t_b.
	d := workload.NewDriver(env.DB, env.W, 4)
	b, err := d.Run(60)
	if err != nil {
		return nil, err
	}

	var trace []core.TraceEntry
	env.Exec.OnQuery = func(e core.TraceEntry) { trace = append(trace, e) }
	if err := env.Exec.ComputeDelta(core.AllBase(env.W.View), []relalg.CSN{a, a}, b); err != nil {
		return nil, err
	}

	// Roll the view from t_a to t_b and compare against recomputation.
	applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return b })
	if err := applier.RollTo(b); err != nil {
		return nil, err
	}
	full, _, err := core.FullRefresh(env.DB, env.W.View)
	if err != nil {
		return nil, err
	}
	match := relalg.Equivalent(mv.AsRelation(), full)

	t := metrics.NewTable(
		fmt.Sprintf("F7 — region coverage for V_(%d,%d]: query rectangles net to the L-shaped region", a, b),
		"query", "kind", "exec(t)", "rows")
	for _, e := range trace {
		t.AddRow(e.Query, e.Kind.String(), int64(e.Exec), e.Rows)
	}
	t.AddRow("rolled V_a + Δ == recomputed V_b:", pass(match), "", "")
	if !match {
		return t, fmt.Errorf("F7: rolled view does not match recomputation")
	}
	return t, nil
}

// F8 reproduces Figure 8: the Propagate process computes consecutive view
// deltas V_{a,b}, V_{b,c}, V_{c,d} with an identical query pattern per
// iteration (2n−1 queries for an n-way view when every window is non-empty:
// n forward queries and n−1 exact compensations, since snapshot execution
// makes position 0 self-contained).
func F8() (*metrics.Table, error) {
	env, err := NewEnv(workload.Chain(2, 30, 6), 5)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.Exec.SkipEmptyWindows = false

	d := workload.NewDriver(env.DB, env.W, 6)
	last, err := d.Run(30)
	if err != nil {
		return nil, err
	}
	if err := env.Cap.WaitProgress(last); err != nil {
		return nil, err
	}

	var perIter []int
	count := 0
	env.Exec.OnQuery = func(core.TraceEntry) { count++ }
	p := core.NewPropagator(env.Exec, 0, core.FixedInterval(10))
	t := metrics.NewTable("F8 — Propagate: consecutive ComputeDelta iterations (n=2)",
		"iteration", "interval", "queries", "hwm")
	prev := relalg.CSN(0)
	for i := 0; i < 3; i++ {
		count = 0
		if err := p.Step(); err != nil {
			return nil, err
		}
		perIter = append(perIter, count)
		t.AddRow(i+1, fmt.Sprintf("(%d,%d]", prev, p.HWM()), count, int64(p.HWM()))
		prev = p.HWM()
	}
	for _, q := range perIter {
		if q != 3 {
			return t, fmt.Errorf("F8: each iteration should run 3 queries for n=2, got %v", perIter)
		}
	}
	return t, nil
}

// F9 reproduces Figure 9: rolling propagation with a narrow interval for R1
// and a wide one for R2. The table shows each step's forward query, the
// compensations it triggered, the per-relation progress, and the high-water
// mark pinned at min(tfwd) — the lowest shared-ledger boundary any relation
// still has pending.
func F9() (*metrics.Table, error) {
	env, err := NewEnv(workload.Chain(2, 30, 6), 7)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	env.Exec.SkipEmptyWindows = false

	d := workload.NewDriver(env.DB, env.W, 8)
	last, err := d.Run(36)
	if err != nil {
		return nil, err
	}
	if err := env.Cap.WaitProgress(last); err != nil {
		return nil, err
	}

	var forward string
	comps := 0
	env.Exec.OnQuery = func(e core.TraceEntry) {
		if e.Kind == core.KindForward {
			forward = e.Query
		} else {
			comps++
		}
	}
	rp := core.NewRollingPropagator(env.Exec, 0, core.PerRelationIntervals(4, 12))
	t := metrics.NewTable("F9 — RollingPropagate with per-relation intervals δ = [4, 12] (n=2)",
		"step", "forward query", "comps", "tfwd", "hwm")
	for i := 0; i < 9 && rp.HWM() < last; i++ {
		forward, comps = "(skipped: empty window)", 0
		if err := rp.Step(); err != nil {
			return nil, err
		}
		tf := rp.TFwd()
		t.AddRow(i+1, forward, comps, fmt.Sprintf("%v", []int64{int64(tf[0]), int64(tf[1])}), int64(rp.HWM()))
	}
	if err := DrainRolling(rp, last); err != nil {
		return nil, err
	}
	t.AddRow("…", "(drained to hwm)", "", "", int64(rp.HWM()))
	if rp.HWM() < last {
		return t, fmt.Errorf("F9: failed to reach hwm %d", last)
	}
	return t, nil
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
