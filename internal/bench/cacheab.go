package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// CacheABEntry records one cache-on vs cache-off comparison for the
// machine-readable benchmark output. SpeedupVsScan is the headline number:
// cached rolling propagation against the seed behavior (unindexed full
// scans). SpeedupVsIndex compares against the stronger index-nested-loop
// baseline, which still pays a heap fetch and row decode per probe.
type CacheABEntry struct {
	Benchmark      string  `json:"benchmark"`
	BaseRows       int     `json:"base_rows"`
	ScanNs         int64   `json:"scan_ns"`
	IndexNs        int64   `json:"index_ns"`
	CacheNs        int64   `json:"cache_ns"`
	SpeedupVsScan  float64 `json:"speedup_vs_scan"`
	SpeedupVsIndex float64 `json:"speedup_vs_index"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	MaintRows      int64   `json:"cache_maint_rows"`
	ResidentBytes  int64   `json:"cache_resident_bytes"`
	Queries        int64   `json:"queries"`
	Match          bool    `json:"match"`
}

// cacheArm is one access-path configuration of the cache A/B experiment.
type cacheArm struct {
	name    string
	indexed bool
	cached  bool
}

// CacheAB measures what the join-state cache buys on rolling propagation
// (the E-series shape): the same star-schema update history drained with
// full-scan propagation (the seed behavior), index-nested-loop propagation,
// and cached propagation, at two base-table sizes. Every arm's materialized
// view is verified against a full recomputation. The query counts per arm
// are recorded but not required to match: cached queries execute at cache
// snapshot times rather than commit CSNs, which legitimately changes the
// compensation schedule (typically shrinking it, since the snapshot time
// can equal the window bound).
func CacheAB(s Scale) (*metrics.Table, []CacheABEntry, error) {
	updates := s.pick(200, 800)
	dimRows := s.pick(200, 500)
	t := metrics.NewTable(
		fmt.Sprintf("CACHE — join-state cache vs scan and index propagation (star: fact + 2 dims x %d rows, %d updates)",
			dimRows, updates),
		"fact rows", "scan", "index", "cache", "vs scan", "vs index", "match")

	arms := []cacheArm{
		{"scan", false, false},
		{"index", true, false},
		{"cache", false, true},
	}

	var entries []CacheABEntry
	for _, factRows := range []int{s.pick(1000, 3000), s.pick(3000, 12000)} {
		var durs [3]time.Duration
		var queries [3]int64
		var hits, misses, maint, resident int64
		match := true
		for mode, arm := range arms {
			newEnvFn := NewEnvBare
			if arm.indexed {
				newEnvFn = NewEnv
			}
			env, err := newEnvFn(workload.StarSchema(2, factRows, dimRows, 20), 71)
			if err != nil {
				return t, entries, err
			}
			env.DB.SetJoinCache(arm.cached)
			mv, err := core.Materialize(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return t, entries, err
			}
			// Updates arrive in phases interleaved with drains, the shape a
			// live system sees. For the cached arm this exercises
			// incremental maintenance, not just the build: the indexes are
			// built during the first drain and advanced across the later
			// phases' delta windows (MaintRows counts the folded rows).
			d := workload.NewDriver(env.DB, env.W, 72)
			rp := core.NewRollingPropagator(env.Exec, mv.MatTime(), core.PerRelationIntervals(4, 64, 64))
			const phases = 4
			var last relalg.CSN
			for p := 0; p < phases; p++ {
				n := updates / phases
				if p == phases-1 {
					n = updates - n*(phases-1)
				}
				var err error
				if last, err = d.Run(n); err != nil {
					env.Close()
					return t, entries, err
				}
				if err := env.Cap.WaitProgress(last); err != nil {
					env.Close()
					return t, entries, err
				}
				start := time.Now()
				if err := DrainRolling(rp, last); err != nil {
					env.Close()
					return t, entries, err
				}
				durs[mode] += time.Since(start)
			}
			es := env.Exec.Stats()
			queries[mode] = es.ForwardQueries + es.CompensationQueries
			if arm.cached {
				st := env.DB.Stats()
				hits, misses, maint = st.CacheHits, st.CacheMisses, st.CacheMaintRows
				resident = st.CacheResidentBytes
			}

			applier := core.NewApplier(mv, env.Dest, func() relalg.CSN { return last })
			if err := applier.RollTo(last); err != nil {
				env.Close()
				return t, entries, err
			}
			full, _, err := core.FullRefresh(env.DB, env.W.View)
			if err != nil {
				env.Close()
				return t, entries, err
			}
			if !relalg.Equivalent(mv.AsRelation(), full) {
				match = false
			}
			env.Close()
		}
		vsScan := float64(durs[0]) / float64(durs[2])
		vsIndex := float64(durs[1]) / float64(durs[2])
		t.AddRow(factRows, durs[0], durs[1], durs[2], vsScan, vsIndex, pass(match))
		entries = append(entries, CacheABEntry{
			Benchmark:      "rolling propagation, star schema",
			BaseRows:       factRows,
			ScanNs:         durs[0].Nanoseconds(),
			IndexNs:        durs[1].Nanoseconds(),
			CacheNs:        durs[2].Nanoseconds(),
			SpeedupVsScan:  vsScan,
			SpeedupVsIndex: vsIndex,
			CacheHits:      hits,
			CacheMisses:    misses,
			MaintRows:      maint,
			ResidentBytes:  resident,
			Queries:        queries[2],
			Match:          match,
		})
		if !match {
			return t, entries, fmt.Errorf("cache AB: fact %d rows diverged from full recomputation", factRows)
		}
	}
	return t, entries, nil
}
