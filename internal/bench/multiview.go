package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	rollingjoin "repro"
	"repro/internal/metrics"
)

// MultiViewABEntry is one arm of the MULTIVIEW experiment in
// machine-readable form (BENCH_rollbench.json).
type MultiViewABEntry struct {
	Arm           string  `json:"arm"`
	Views         int     `json:"views"`
	WriterTxns    int64   `json:"writer_txns"`
	WriteNs       int64   `json:"write_ns"`
	StalenessMean float64 `json:"staleness_mean_commits"`
	StalenessMax  int64   `json:"staleness_max_commits"`
	IdleWakeups   int64   `json:"idle_wakeups"`
	IdleCPUNs     int64   `json:"idle_cpu_ns"`
	Wakeups       int64   `json:"wakeups"`
	Steps         int64   `json:"steps,omitempty"`
	Notifies      int64   `json:"notifies,omitempty"`
	Verified      bool    `json:"verified"`
	WakeupsRatio  float64 `json:"idle_wakeups_ratio,omitempty"`
}

// MultiViewAB measures what the event-driven maintenance runtime buys over
// per-view polling loops at fan-out: N identical join views maintained
// while concurrent writers commit, once with per-view 1ms pollers driving
// PropagateStep/Refresh (the pre-scheduler architecture) and once on the
// shared scheduler with AutoRefresh (capture notifications wake jobs, idle
// views cost nothing). Writers are paced below saturation so both arms see
// the same commit timeline — staleness then measures maintenance latency,
// not how badly the maintenance architecture starves the writers. Both
// arms sample refresh staleness (commits between LastCSN and MatTime)
// during the write phase, then measure wakeups and process CPU over an
// idle window, and finally drain and verify every view against a fresh
// recomputation oracle. The scheduler arm must match the oracle and take
// strictly fewer idle wakeups than the polling arm.
func MultiViewAB(s Scale) (*metrics.Table, []MultiViewABEntry, error) {
	views := s.pick(8, 32)
	writers := s.pick(2, 4)
	txns := s.pick(240, 900)
	rows := s.pick(60, 150)
	idle := time.Duration(s.pick(120, 300)) * time.Millisecond

	t := metrics.NewTable(
		fmt.Sprintf("MULTIVIEW — %d views, %d writers × %d txns: per-view polling vs shared scheduler", views, writers, txns),
		"maintenance", "staleness mean", "staleness max", "idle wakeups", "idle cpu", "total wakeups", "verified")

	var entries []MultiViewABEntry
	for _, scheduled := range []bool{false, true} {
		e, err := runMultiViewArm(views, writers, txns, rows, idle, scheduled)
		if err != nil {
			return t, entries, err
		}
		t.AddRow(e.Arm,
			fmt.Sprintf("%.1f commits", e.StalenessMean),
			fmt.Sprintf("%d commits", e.StalenessMax),
			e.IdleWakeups,
			time.Duration(e.IdleCPUNs).Round(time.Microsecond),
			e.Wakeups, pass(e.Verified))
		entries = append(entries, e)
		if !e.Verified {
			return t, entries, fmt.Errorf("MULTIVIEW: %s arm diverged from recomputation", e.Arm)
		}
	}
	poll, sch := &entries[0], &entries[1]
	if poll.IdleWakeups > 0 {
		sch.WakeupsRatio = float64(sch.IdleWakeups) / float64(poll.IdleWakeups)
	}
	t.AddRow("idle wakeups (sched/poll)", fmt.Sprintf("%.3fx", sch.WakeupsRatio), "", "", "", "", "")
	if sch.IdleWakeups >= poll.IdleWakeups {
		return t, entries, fmt.Errorf("MULTIVIEW: scheduler arm took %d idle wakeups, polling arm %d — event-driven runtime should idle quietly",
			sch.IdleWakeups, poll.IdleWakeups)
	}
	return t, entries, nil
}

// runMultiViewArm runs one maintenance architecture end to end.
func runMultiViewArm(views, writers, txns, rows int, idle time.Duration, scheduled bool) (MultiViewABEntry, error) {
	const keys = 16
	e := MultiViewABEntry{Arm: "per-view polling", Views: views}
	if scheduled {
		e.Arm = "shared scheduler"
	}

	db, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return e, err
	}
	defer db.Close()
	for _, tbl := range []string{"R", "S"} {
		if err := db.CreateTable(tbl,
			rollingjoin.Col("k", rollingjoin.TypeInt),
			rollingjoin.Col("v", rollingjoin.TypeInt)); err != nil {
			return e, err
		}
		if err := db.CreateIndex(tbl, "k"); err != nil {
			return e, err
		}
	}
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		for i := 0; i < rows; i++ {
			if err := tx.Insert("R", rollingjoin.Int(int64(i%keys)), rollingjoin.Int(int64(i))); err != nil {
				return err
			}
			if err := tx.Insert("S", rollingjoin.Int(int64(i%keys)), rollingjoin.Int(int64(i))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return e, err
	}

	spec := func(i int) rollingjoin.ViewSpec {
		return rollingjoin.ViewSpec{
			Name:   fmt.Sprintf("mv%d", i),
			Tables: []string{"R", "S"},
			Joins:  []rollingjoin.Join{{LeftTable: "R", LeftColumn: "k", RightTable: "S", RightColumn: "k"}},
			Output: []rollingjoin.OutCol{{Table: "R", Column: "v"}, {Table: "S", Column: "v"}},
		}
	}
	opt := rollingjoin.Maintain{Interval: 8}
	if scheduled {
		opt.AutoRefresh = true
	} else {
		opt.Manual = true
	}
	vs := make([]*rollingjoin.View, views)
	for i := range vs {
		if vs[i], err = db.DefineView(spec(i), opt); err != nil {
			return e, err
		}
	}

	// Polling arm: the pre-scheduler architecture — every view owns two 1ms
	// ticker goroutines, one stepping propagation and one refreshing the MV,
	// each tick counting as one wakeup whether or not there is work.
	var pollWakeups atomic.Int64
	pollErr := make(chan error, 1)
	var pollStop chan struct{}
	var pollWG sync.WaitGroup
	if !scheduled {
		pollStop = make(chan struct{})
		poller := func(step func() error) {
			defer pollWG.Done()
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-pollStop:
					return
				case <-tick.C:
				}
				pollWakeups.Add(1)
				if err := step(); err != nil {
					select {
					case pollErr <- err:
					default:
					}
					return
				}
			}
		}
		for _, v := range vs {
			v := v
			pollWG.Add(2)
			go poller(func() error {
				for {
					if err := v.PropagateStep(); err != nil {
						if errors.Is(err, rollingjoin.ErrNoProgress) {
							return nil
						}
						return err
					}
				}
			})
			go poller(func() error {
				_, err := v.Refresh()
				return err
			})
		}
	}

	// Write phase, with a sampler recording per-view refresh staleness.
	var stalenessSum, stalenessCnt, stalenessMax atomic.Int64
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-tick.C:
			}
			last := db.LastCSN()
			for _, v := range vs {
				lag := int64(last) - int64(v.MatTime())
				if lag < 0 {
					lag = 0
				}
				stalenessSum.Add(lag)
				stalenessCnt.Add(1)
				if m := stalenessMax.Load(); lag > m {
					stalenessMax.CompareAndSwap(m, lag)
				}
			}
		}
	}()

	writeStart := time.Now()
	var writeWG sync.WaitGroup
	writeErr := make(chan error, writers)
	var lastCSN atomic.Int64
	per := txns / writers
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			r := rand.New(rand.NewSource(int64(w)*97 + 7))
			for i := 0; i < per; i++ {
				tbl := "R"
				if (w+i)%2 == 1 {
					tbl = "S"
				}
				var csn rollingjoin.CSN
				var err error
				if i%8 == 7 {
					// Occasional delete keeps negative delta counts in play.
					csn, err = db.Update(func(tx *rollingjoin.Tx) error {
						_, derr := tx.Delete(tbl, "k", rollingjoin.EQ, rollingjoin.Int(int64(r.Intn(keys))), 1)
						return derr
					})
				} else {
					csn, err = db.Update(func(tx *rollingjoin.Tx) error {
						return tx.Insert(tbl, rollingjoin.Int(int64(r.Intn(keys))), rollingjoin.Int(int64(rows+w*per+i)))
					})
				}
				if err != nil {
					writeErr <- err
					return
				}
				for {
					prev := lastCSN.Load()
					if int64(csn) <= prev || lastCSN.CompareAndSwap(prev, int64(csn)) {
						break
					}
				}
				// Pace the stream: an unpaced blast measures which
				// architecture slows the writers down the most, not which
				// keeps the views fresher at a given commit rate.
				time.Sleep(time.Millisecond)
			}
		}(w)
	}
	writeWG.Wait()
	close(sampleStop)
	sampleWG.Wait()
	e.WriteNs = time.Since(writeStart).Nanoseconds()
	select {
	case err := <-writeErr:
		return e, err
	default:
	}
	last := rollingjoin.CSN(lastCSN.Load())
	e.WriterTxns = int64(txns / writers * writers)
	if cnt := stalenessCnt.Load(); cnt > 0 {
		e.StalenessMean = float64(stalenessSum.Load()) / float64(cnt)
	}
	e.StalenessMax = stalenessMax.Load()

	// Let maintenance settle to the final commit, then measure the idle
	// window: with no new commits, the scheduler arm should not dispatch at
	// all while the polling arm keeps ticking.
	settle, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, v := range vs {
		for v.MatTime() < last {
			if err := settle.Err(); err != nil {
				return e, fmt.Errorf("MULTIVIEW: %s arm did not settle to CSN %d (view %s at %d)", e.Arm, last, v.Name(), v.MatTime())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Flush deferred collection first so the window charges the maintenance
	// architecture's steady-state cost, not the write phase's GC tail.
	runtime.GC()
	idleWakeupsBefore := armWakeups(db, &pollWakeups, scheduled)
	cpuBefore, cpuOK := processCPU()
	time.Sleep(idle)
	if cpuOK {
		if cpuAfter, ok := processCPU(); ok {
			e.IdleCPUNs = (cpuAfter - cpuBefore).Nanoseconds()
		}
	}
	e.IdleWakeups = armWakeups(db, &pollWakeups, scheduled) - idleWakeupsBefore

	// Tear down the arm's drivers, drain, verify against the oracle.
	if !scheduled {
		close(pollStop)
		pollWG.Wait()
		select {
		case err := <-pollErr:
			return e, err
		default:
		}
	}
	oracle, err := db.Query(spec(0))
	if err != nil {
		return e, err
	}
	want := multiset(oracle.Rows)
	for _, v := range vs {
		if err := v.CatchUp(last); err != nil {
			return e, err
		}
		if _, err := v.Refresh(); err != nil {
			return e, err
		}
	}
	e.Verified = true
	for _, v := range vs {
		if !multisetEqual(multiset(v.Rows()), want) {
			e.Verified = false
			break
		}
	}
	e.Wakeups = armWakeups(db, &pollWakeups, scheduled)
	if scheduled {
		st := db.Engine().Stats().Sched
		e.Steps = st.Steps
		e.Notifies = st.Notifies
	}
	return e, nil
}

// armWakeups reads the arm's wakeup counter: scheduler dispatches for the
// scheduled arm, poller ticks for the polling arm.
func armWakeups(db *rollingjoin.DB, poll *atomic.Int64, scheduled bool) int64 {
	if scheduled {
		return db.Engine().Stats().Sched.Wakeups
	}
	return poll.Load()
}

func multiset(rows []rollingjoin.Tuple) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[fmt.Sprintf("%v", r)]++
	}
	return m
}

func multisetEqual(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}
