//go:build !unix

package bench

import "time"

// processCPU is unavailable off unix; MULTIVIEW reports idle CPU as 0 and
// relies on the wakeup counters alone.
func processCPU() (time.Duration, bool) { return 0, false }
