package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	rollingjoin "repro"
	"repro/internal/metrics"
)

// CompactABEntry records the COMPACT experiment in machine-readable form
// (BENCH_rollbench.json): sustained ingest against an unbounded arm (no
// folding, full-image checkpoints) and a tiered arm (delta-prefix folding
// plus incremental chain checkpoints). The arms replay an identical seeded
// history; the comparison is steady-state checkpoint latency and artifact
// size, resident delta cardinality, and post-fold refresh correctness.
type CompactABEntry struct {
	Benchmark          string  `json:"benchmark"`
	BaseRows           int     `json:"base_rows"`
	PhaseUpdates       int     `json:"phase_updates"`
	Phases             int     `json:"phases"`
	UnboundedCkptNs    int64   `json:"unbounded_ckpt_ns"`     // steady-state (last-half median)
	TieredCkptNs       int64   `json:"tiered_ckpt_ns"`        // steady-state (last-half median)
	UnboundedGrowth    float64 `json:"unbounded_ckpt_growth"` // last-half / first-half median latency
	TieredGrowth       float64 `json:"tiered_ckpt_growth"`
	UnboundedCkptBytes int64   `json:"unbounded_ckpt_bytes"` // final artifact size
	TieredCkptBytes    int64   `json:"tiered_ckpt_bytes"`    // final chain link size
	UnboundedDeltaRows int64   `json:"unbounded_delta_rows"` // resident delta cardinality at end
	TieredDeltaRows    int64   `json:"tiered_delta_rows"`
	FoldedRows         int64   `json:"folded_rows"`
	SizeRatio          float64 `json:"size_ratio"` // unbounded bytes / tiered bytes
	Match              bool    `json:"match"`
}

// compactDeltaRows sums resident delta cardinality across all relations.
func compactDeltaRows(db *rollingjoin.DB) int64 {
	var total int64
	for _, name := range db.Engine().TableNames() {
		if d, err := db.Engine().Delta(name); err == nil {
			total += int64(d.Len())
		}
	}
	return total
}

// compactView compares the maintained join view against ad-hoc
// recomputation of the same spec, as sorted row renderings.
func compactViewMatches(db *rollingjoin.DB, view *rollingjoin.View, spec rollingjoin.ViewSpec) (bool, error) {
	oracle := spec
	oracle.Name = ""
	full, err := db.Query(oracle)
	if err != nil {
		return false, err
	}
	render := func(rows []rollingjoin.Tuple) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprint(r)
		}
		sort.Strings(out)
		return out
	}
	got, want := render(view.Rows()), render(full.Rows)
	if len(got) != len(want) {
		return false, nil
	}
	for i := range got {
		if got[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

func medianNs(ds []time.Duration) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2].Nanoseconds()
}

// newestLinkBytes returns the size of the highest-sequence chain link.
func newestLinkBytes(dir string) (int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".link" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return 0, fmt.Errorf("no chain links in %s", dir)
	}
	sort.Strings(names)
	info, err := os.Stat(filepath.Join(dir, names[len(names)-1]))
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// CompactAB measures what storage tiering buys sustained ingest. Both arms
// replay the identical seeded history of insert/delete phases over the
// orders ⋈ regions schema with one maintained join view refreshed at every
// phase boundary. The unbounded arm never folds and takes a full-image
// checkpoint per phase — cost proportional to everything ever ingested.
// The tiered arm folds the delta prefix below the refresh horizon and
// appends one incremental chain link per phase — cost proportional to the
// phase's change. The maintained view is verified against recomputation
// after every fold, so correctness of refresh above the fold line is part
// of the experiment. Pass requires the tiered arm's steady-state
// checkpoint to be faster and smaller than the unbounded arm's, with lower
// latency growth as the database accumulates.
func CompactAB(s Scale) (*metrics.Table, []CompactABEntry, error) {
	baseRows := s.pick(2000, 8000)
	phaseUpdates := s.pick(1000, 4000)
	phases := 8

	t := metrics.NewTable(
		fmt.Sprintf("COMPACT — tiered fold+incremental checkpoint vs unbounded (base %d rows, %d phases × %d updates)",
			baseRows, phases, phaseUpdates),
		"arm", "ckpt p50 (steady)", "latency growth", "ckpt bytes", "delta rows", "verified")

	ckptDir, err := os.MkdirTemp("", "rollbench-compact-*")
	if err != nil {
		return t, nil, err
	}
	defer os.RemoveAll(ckptDir)
	ckptFile := filepath.Join(ckptDir, "full.ckpt")
	chainDir := filepath.Join(ckptDir, "chain")

	spec := rollingjoin.ViewSpec{
		Name:   "c_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}

	// Unbounded arm: maintenance without tiering, full checkpoints.
	unb, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return t, nil, err
	}
	defer unb.Close()
	if err := cascadeSeed(unb, baseRows); err != nil {
		return t, nil, err
	}
	vU, err := unb.DefineView(spec, rollingjoin.Maintain{Manual: true, Interval: 8})
	if err != nil {
		return t, nil, err
	}

	// Tiered arm: same schema and history, fold + incremental chain.
	trd, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return t, nil, err
	}
	defer trd.Close()
	if err := cascadeSeed(trd, baseRows); err != nil {
		return t, nil, err
	}
	vT, err := trd.DefineView(spec, rollingjoin.Maintain{Manual: true, Interval: 8})
	if err != nil {
		return t, nil, err
	}

	rngU := rand.New(rand.NewSource(7))
	rngT := rand.New(rand.NewSource(7))
	nextU, nextT := baseRows, baseRows
	latU := make([]time.Duration, 0, phases)
	latT := make([]time.Duration, 0, phases)
	match := true
	for p := 0; p < phases; p++ {
		if err := cascadePhase(unb, rngU, &nextU, phaseUpdates); err != nil {
			return t, nil, err
		}
		if err := cascadePhase(trd, rngT, &nextT, phaseUpdates); err != nil {
			return t, nil, err
		}
		// Both arms roll their view to the phase boundary.
		if err := vU.CatchUp(unb.LastCSN()); err != nil {
			return t, nil, err
		}
		if _, err := vU.Refresh(); err != nil {
			return t, nil, err
		}
		if err := vT.CatchUp(trd.LastCSN()); err != nil {
			return t, nil, err
		}
		if _, err := vT.Refresh(); err != nil {
			return t, nil, err
		}
		// Tiered only: fold the refreshed prefix, then append one link.
		if err := trd.Fold(); err != nil {
			return t, nil, err
		}
		st := time.Now()
		if err := unb.Checkpoint(ckptFile); err != nil {
			return t, nil, err
		}
		latU = append(latU, time.Since(st))
		st = time.Now()
		if err := trd.CheckpointIncremental(chainDir); err != nil {
			return t, nil, err
		}
		latT = append(latT, time.Since(st))
		// Post-fold refresh correctness: the tiered view must equal a full
		// recomputation even though its delta prefix is gone.
		if ok, err := compactViewMatches(trd, vT, spec); err != nil {
			return t, nil, err
		} else if !ok {
			match = false
		}
	}

	half := phases / 2
	steadyU, steadyT := medianNs(latU[half:]), medianNs(latT[half:])
	growthU := float64(steadyU) / float64(medianNs(latU[:half]))
	growthT := float64(steadyT) / float64(medianNs(latT[:half]))
	unbBytes := int64(0)
	if info, err := os.Stat(ckptFile); err == nil {
		unbBytes = info.Size()
	}
	trdBytes, err := newestLinkBytes(chainDir)
	if err != nil {
		return t, nil, err
	}
	deltaU, deltaT := compactDeltaRows(unb), compactDeltaRows(trd)
	folded := trd.Engine().Stats().FoldedRows
	sizeRatio := float64(unbBytes) / float64(trdBytes)

	t.AddRow("unbounded (full ckpt)", time.Duration(steadyU).Round(time.Microsecond),
		fmt.Sprintf("%.2fx", growthU), unbBytes, deltaU, pass(true))
	t.AddRow("tiered (fold+chain)", time.Duration(steadyT).Round(time.Microsecond),
		fmt.Sprintf("%.2fx", growthT), trdBytes, deltaT, pass(match))
	t.AddRow("unbounded / tiered", fmt.Sprintf("%.1fx", float64(steadyU)/float64(steadyT)),
		"", fmt.Sprintf("%.1fx", sizeRatio), fmt.Sprintf("%.1fx", float64(deltaU)/float64(deltaT)), "")

	entries := []CompactABEntry{{
		Benchmark:          "sustained ingest: fold + incremental chain vs unbounded full checkpoint",
		BaseRows:           baseRows,
		PhaseUpdates:       phaseUpdates,
		Phases:             phases,
		UnboundedCkptNs:    steadyU,
		TieredCkptNs:       steadyT,
		UnboundedGrowth:    growthU,
		TieredGrowth:       growthT,
		UnboundedCkptBytes: unbBytes,
		TieredCkptBytes:    trdBytes,
		UnboundedDeltaRows: deltaU,
		TieredDeltaRows:    deltaT,
		FoldedRows:         folded,
		SizeRatio:          sizeRatio,
		Match:              match,
	}}
	if !match {
		return t, entries, fmt.Errorf("COMPACT: tiered view diverged from recomputation after folding")
	}
	if deltaT >= deltaU {
		return t, entries, fmt.Errorf("COMPACT: folding reclaimed nothing (tiered %d delta rows vs unbounded %d)", deltaT, deltaU)
	}
	if trdBytes >= unbBytes {
		return t, entries, fmt.Errorf("COMPACT: incremental link (%d B) not smaller than full checkpoint (%d B)", trdBytes, unbBytes)
	}
	if steadyT >= steadyU {
		return t, entries, fmt.Errorf("COMPACT: tiered steady-state checkpoint (%s) not faster than unbounded (%s)",
			time.Duration(steadyT), time.Duration(steadyU))
	}
	return t, entries, nil
}
