package bench

import (
	"fmt"
	"math/rand"
	"time"

	rollingjoin "repro"
	"repro/internal/metrics"
)

// CascadeABEntry records the CASCADE experiment in machine-readable form
// (BENCH_rollbench.json): a 3-level cascade — orders ⋈ regions join view,
// per-region incremental aggregate over it, filtered view over the
// aggregate — refreshed incrementally after each write phase, against an
// arm that recomputes all three levels from the base tables at the same
// points. Speedup is per-refresh wall time, full ÷ incremental.
type CascadeABEntry struct {
	Benchmark     string  `json:"benchmark"`
	FactRows      int     `json:"fact_rows"`
	Updates       int     `json:"updates"`
	Phases        int     `json:"phases"`
	IncNs         int64   `json:"inc_ns"`
	FullNs        int64   `json:"full_ns"`
	IncRefreshNs  int64   `json:"inc_refresh_ns"`
	FullRefreshNs int64   `json:"full_refresh_ns"`
	Speedup       float64 `json:"speedup"`
	Match         bool    `json:"match"`
}

// cascadeGroups is the recomputed rollup state: per region, count, sum,
// and max of the order amounts.
type cascadeGroups map[string][3]float64

// cascadeSeed loads the shared deterministic history prefix: the region
// dimension plus the initial fact rows.
func cascadeSeed(db *rollingjoin.DB, factRows int) error {
	if err := db.CreateTable("orders",
		rollingjoin.Col("oid", rollingjoin.TypeInt),
		rollingjoin.Col("cust", rollingjoin.TypeInt),
		rollingjoin.Col("amt", rollingjoin.TypeFloat),
	); err != nil {
		return err
	}
	if err := db.CreateTable("regions",
		rollingjoin.Col("cust", rollingjoin.TypeInt),
		rollingjoin.Col("region", rollingjoin.TypeString),
	); err != nil {
		return err
	}
	if _, err := db.Update(func(tx *rollingjoin.Tx) error {
		for c := 0; c < 24; c++ {
			if err := tx.Insert("regions", rollingjoin.Int(int64(c)), rollingjoin.Str(fmt.Sprintf("r%02d", c%8))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	const chunk = 256
	for lo := 0; lo < factRows; lo += chunk {
		hi := lo + chunk
		if hi > factRows {
			hi = factRows
		}
		if _, err := db.Update(func(tx *rollingjoin.Tx) error {
			for i := lo; i < hi; i++ {
				if err := tx.Insert("orders",
					rollingjoin.Int(int64(i)), rollingjoin.Int(int64(i%24)), rollingjoin.Float(float64(i%97))); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}

// cascadePhase commits one phase of the deterministic update mix (inserts
// with occasional deletes). Both arms replay the identical sequence.
func cascadePhase(db *rollingjoin.DB, rng *rand.Rand, next *int, n int) error {
	for i := 0; i < n; i++ {
		if *next > 10 && rng.Intn(5) == 0 {
			victim := int64(rng.Intn(*next))
			if _, err := db.Update(func(tx *rollingjoin.Tx) error {
				_, derr := tx.Delete("orders", "oid", rollingjoin.EQ, rollingjoin.Int(victim), 1)
				return derr
			}); err != nil {
				return err
			}
			continue
		}
		id := int64(*next)
		*next++
		if _, err := db.Update(func(tx *rollingjoin.Tx) error {
			return tx.Insert("orders", rollingjoin.Int(id), rollingjoin.Int(id%24), rollingjoin.Float(float64(id%97)))
		}); err != nil {
			return err
		}
	}
	return nil
}

// cascadeRecompute evaluates all three cascade levels from the base
// tables: the full join, the group-by fold over it, and the filtered top
// count. It returns the rollup groups (the level the arms are compared
// on) after forcing every level's result to exist.
func cascadeRecompute(db *rollingjoin.DB, threshold float64) (cascadeGroups, int, error) {
	res, err := db.Query(rollingjoin.ViewSpec{
		Tables: []string{"orders", "regions"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	})
	if err != nil {
		return nil, 0, err
	}
	groups := make(cascadeGroups)
	for _, row := range res.Rows {
		region, amt := row[4].AsString(), row[2].AsFloat()
		a, ok := groups[region]
		if !ok || amt > a[2] {
			a[2] = amt
		}
		a[0]++
		a[1] += amt
		groups[region] = a
	}
	top := 0
	for _, a := range groups {
		if a[1] >= threshold {
			top++
		}
	}
	return groups, top, nil
}

// cascadeMatches compares the maintained rollup rows to recomputed groups.
func cascadeMatches(rows []rollingjoin.Tuple, want cascadeGroups) bool {
	if len(rows) != len(want) {
		return false
	}
	approx := func(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }
	for _, r := range rows {
		w, ok := want[r[0].AsString()]
		if !ok {
			return false
		}
		if float64(r[1].AsInt()) != w[0] || !approx(r[2].AsFloat(), w[1]) || !approx(r[3].AsFloat(), w[2]) {
			return false
		}
	}
	return true
}

// CascadeAB measures what asynchronous incremental maintenance buys a
// views-over-views cascade. The incremental arm defines the 3-level
// cascade once and, after each write phase, refreshes it to the current
// commit — propagation folds only the phase's delta through each level
// (join deltas, then group-level compensation, then the rollup's own
// delta). The full arm recomputes all three levels from the base tables
// at the same commit points, the only option when views cannot be
// maintained through other views. Both arms replay an identical seeded
// history, and the incremental rollup is verified against the full arm's
// recomputation at every phase. The experiment fails unless incremental
// per-refresh time beats full recomputation by at least 2x.
func CascadeAB(s Scale) (*metrics.Table, []CascadeABEntry, error) {
	factRows := s.pick(2000, 12000)
	updates := s.pick(160, 960)
	phases := 8
	const threshold = 1000.0

	t := metrics.NewTable(
		fmt.Sprintf("CASCADE — 3-level cascade refresh vs full recomputation (fact %d rows, %d updates, %d refreshes)",
			factRows, updates, phases),
		"arm", "total", "ns/refresh", "verified")

	// Incremental arm: maintained cascade.
	inc, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return t, nil, err
	}
	defer inc.Close()
	if err := cascadeSeed(inc, factRows); err != nil {
		return t, nil, err
	}
	enriched, err := inc.DefineView(rollingjoin.ViewSpec{
		Name:   "c_enriched",
		Tables: []string{"orders", "regions"},
		Joins:  []rollingjoin.Join{{LeftTable: "orders", LeftColumn: "cust", RightTable: "regions", RightColumn: "cust"}},
	}, rollingjoin.Maintain{Manual: true, Interval: 8})
	if err != nil {
		return t, nil, err
	}
	rollup, err := inc.DefineAggregate(rollingjoin.AggSpec{
		Name:    "c_rollup",
		Source:  "c_enriched",
		GroupBy: []string{"region"},
		Aggs: []rollingjoin.Agg{
			{Func: rollingjoin.AggCount},
			{Func: rollingjoin.AggSum, Column: "amt"},
			{Func: rollingjoin.AggMax, Column: "amt"},
		},
	}, rollingjoin.Maintain{Manual: true})
	if err != nil {
		return t, nil, err
	}
	top, err := inc.DefineView(rollingjoin.ViewSpec{
		Name:    "c_top",
		Tables:  []string{"c_rollup"},
		Filters: []rollingjoin.Filter{{Table: "c_rollup", Column: "sum_amt", Op: rollingjoin.GE, Value: rollingjoin.Float(threshold)}},
	}, rollingjoin.Maintain{Manual: true})
	if err != nil {
		return t, nil, err
	}

	// Full arm: same schema and history, no maintained views.
	full, err := rollingjoin.Open(rollingjoin.Options{})
	if err != nil {
		return t, nil, err
	}
	defer full.Close()
	if err := cascadeSeed(full, factRows); err != nil {
		return t, nil, err
	}

	incRng := rand.New(rand.NewSource(7))
	fullRng := rand.New(rand.NewSource(7))
	incNext, fullNext := factRows, factRows
	var incDur, fullDur time.Duration
	match := true
	for p := 0; p < phases; p++ {
		n := updates / phases
		if p == phases-1 {
			n = updates - n*(phases-1)
		}
		if err := cascadePhase(inc, incRng, &incNext, n); err != nil {
			return t, nil, err
		}
		if err := cascadePhase(full, fullRng, &fullNext, n); err != nil {
			return t, nil, err
		}

		// Incremental: catch the top of the cascade up (driving every
		// level's propagation over just this phase's delta), then roll
		// each materialization forward.
		start := time.Now()
		if err := top.CatchUp(inc.LastCSN()); err != nil {
			return t, nil, err
		}
		if _, err := enriched.Refresh(); err != nil {
			return t, nil, err
		}
		if _, err := rollup.Refresh(); err != nil {
			return t, nil, err
		}
		if _, err := top.Refresh(); err != nil {
			return t, nil, err
		}
		incDur += time.Since(start)

		// Full: recompute all three levels from the base tables.
		start = time.Now()
		groups, topN, err := cascadeRecompute(full, threshold)
		if err != nil {
			return t, nil, err
		}
		fullDur += time.Since(start)

		// Oracle: the histories are identical, so the maintained rollup
		// must equal the recomputation, level 3 included.
		if !cascadeMatches(rollup.Rows(), groups) || len(top.Rows()) != topN {
			match = false
		}
	}

	incNs := incDur.Nanoseconds() / int64(phases)
	fullNs := fullDur.Nanoseconds() / int64(phases)
	speedup := float64(fullNs) / float64(incNs)
	t.AddRow("incremental cascade", incDur.Round(time.Millisecond), incNs, pass(match))
	t.AddRow("full recomputation", fullDur.Round(time.Millisecond), fullNs, pass(true))
	t.AddRow("speedup (full/inc)", fmt.Sprintf("%.1fx", speedup), "", "")

	entries := []CascadeABEntry{{
		Benchmark:     "3-level cascade: join view, region rollup, filtered top",
		FactRows:      factRows,
		Updates:       updates,
		Phases:        phases,
		IncNs:         incDur.Nanoseconds(),
		FullNs:        fullDur.Nanoseconds(),
		IncRefreshNs:  incNs,
		FullRefreshNs: fullNs,
		Speedup:       speedup,
		Match:         match,
	}}
	if !match {
		return t, entries, fmt.Errorf("CASCADE: maintained cascade diverged from full recomputation")
	}
	if speedup < 2 {
		return t, entries, fmt.Errorf("CASCADE: incremental refresh only %.2fx faster than full recomputation (want >= 2x)", speedup)
	}
	return t, entries, nil
}
