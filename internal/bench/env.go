// Package bench implements the experiment suite of EXPERIMENTS.md: one
// function per figure/claim of the paper, each returning printable result
// tables. cmd/rollbench drives the full suite; the root-level
// bench_test.go wraps each experiment as a testing.B benchmark.
package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/capture"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/relalg"
	"repro/internal/workload"
)

// Experiment-level engine counters: every Env.Close folds its database's
// activity counters into a global accumulator, so a driver (cmd/rollbench)
// can report rows scanned / joined / queries per experiment even though
// each experiment opens its own databases.
var (
	countersMu sync.Mutex
	counters   engine.Stats
)

// ResetCounters clears the accumulated engine counters.
func ResetCounters() {
	countersMu.Lock()
	counters = engine.Stats{}
	countersMu.Unlock()
}

// Counters returns the engine counters accumulated since the last reset.
func Counters() engine.Stats {
	countersMu.Lock()
	defer countersMu.Unlock()
	return counters
}

func accumulate(s engine.Stats) {
	countersMu.Lock()
	counters.RowsScanned += s.RowsScanned
	counters.RowsJoined += s.RowsJoined
	counters.QueriesRun += s.QueriesRun
	counters.RowsInserted += s.RowsInserted
	counters.RowsDeleted += s.RowsDeleted
	counters.IndexProbes += s.IndexProbes
	counters.CacheHits += s.CacheHits
	counters.CacheMisses += s.CacheMisses
	counters.CacheMaintRows += s.CacheMaintRows
	counters.CacheBuilds += s.CacheBuilds
	counters.CacheInvalidations += s.CacheInvalidations
	countersMu.Unlock()
}

// Env bundles everything one experiment run needs.
type Env struct {
	DB   *engine.DB
	Cap  *capture.LogCapture
	W    *workload.Workload
	Exec *core.Executor
	Dest *engine.DeltaTable
}

// NewEnv builds a database, loads the workload, and wires the capture
// process and view-delta executor. Every table gets a hash index on its
// join column "k" (all workload tables share the (k, v) schema), so
// propagation queries exercise the index-nested-loop path the planner
// supports — matching how a production deployment would declare its join
// columns. NewEnvBare skips the indexes for scan-path baselines.
func NewEnv(w *workload.Workload, seed int64) (*Env, error) {
	return newEnv(w, seed, true)
}

// NewEnvBare is NewEnv without join-column indexes: base positions fall
// back to full scans (hash join), the seed behavior. Used as the baseline
// arm of index and cache ablations.
func NewEnvBare(w *workload.Workload, seed int64) (*Env, error) {
	return newEnv(w, seed, false)
}

// NewEnvCfg is NewEnv with an explicit engine configuration — the
// partition experiments use it to pin Partitions per arm (an explicit 1
// bypasses the ROLLINGJOIN_PARTITIONS environment hook). indexed selects
// between index-nested-loop and scan propagation, as NewEnv vs NewEnvBare.
func NewEnvCfg(w *workload.Workload, seed int64, indexed bool, cfg engine.Config) (*Env, error) {
	return newEnvCfg(w, seed, indexed, cfg)
}

func newEnv(w *workload.Workload, seed int64, indexed bool) (*Env, error) {
	return newEnvCfg(w, seed, indexed, engine.Config{})
}

func newEnvCfg(w *workload.Workload, seed int64, indexed bool, cfg engine.Config) (*Env, error) {
	db, err := engine.Open(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(db, rand.New(rand.NewSource(seed))); err != nil {
		db.Close()
		return nil, err
	}
	if indexed {
		for _, spec := range w.Tables {
			if _, err := db.CreateIndex(spec.Name, "k"); err != nil {
				db.Close()
				return nil, err
			}
		}
	}
	schema, err := w.View.Schema(db)
	if err != nil {
		db.Close()
		return nil, err
	}
	dest, err := db.CreateStandaloneDelta("Δ"+w.View.Name, schema)
	if err != nil {
		db.Close()
		return nil, err
	}
	c := capture.NewLogCapture(db)
	c.Start()
	return &Env{
		DB:   db,
		Cap:  c,
		W:    w,
		Exec: core.NewExecutor(db, c, w.View, dest),
		Dest: dest,
	}, nil
}

// Close tears the environment down, folding the database's activity
// counters into the package accumulator.
func (e *Env) Close() {
	accumulate(e.DB.Stats())
	e.DB.Close()
	e.Cap.Wait()
}

// ResetDest swaps in a fresh view delta table (for back-to-back algorithm
// comparisons over the same history).
func (e *Env) ResetDest() error {
	name := fmt.Sprintf("Δ%s#%d", e.W.View.Name, e.DB.LastCSN())
	schema, err := e.W.View.Schema(e.DB)
	if err != nil {
		return err
	}
	dest, err := e.DB.CreateStandaloneDelta(name, schema)
	if err != nil {
		return err
	}
	e.Dest = dest
	e.Exec = core.NewExecutor(e.DB, e.Cap, e.W.View, dest)
	return nil
}

// DrainRolling steps a rolling propagator until its high-water mark
// reaches target.
func DrainRolling(rp *core.RollingPropagator, target relalg.CSN) error {
	for rp.HWM() < target {
		if err := rp.Step(); err != nil && !errors.Is(err, core.ErrNoProgress) {
			return err
		}
	}
	return nil
}

// DrainPropagate steps a Figure 5 propagator until its high-water mark
// reaches target.
func DrainPropagate(p *core.Propagator, target relalg.CSN) error {
	for p.HWM() < target {
		if err := p.Step(); err != nil && !errors.Is(err, core.ErrNoProgress) {
			return err
		}
	}
	return nil
}
