package txn

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relalg"
)

// State is a transaction's lifecycle state.
type State uint8

// The transaction states.
const (
	StateActive State = iota
	StateCommitted
	StateAborted
)

// Txn is one transaction. It is not goroutine-safe: a transaction belongs
// to a single worker at a time (the usual session model).
type Txn struct {
	id    uint64
	mgr   *Manager
	state State
	held  map[string]LockMode
	undo  []func() // undo actions, run in reverse order on abort
	csn   relalg.CSN
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// CSN returns the commit sequence number; valid only after Commit.
func (t *Txn) CSN() relalg.CSN { return t.csn }

// Lock acquires the named resource in at least the given mode, blocking if
// necessary. It returns ErrDeadlock if the transaction is chosen as a
// deadlock victim; the caller must then abort.
func (t *Txn) Lock(resource string, mode LockMode) error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	return t.mgr.lm.acquire(t, resource, mode)
}

// HeldMode returns the mode currently held on resource (LockNone if none).
func (t *Txn) HeldMode(resource string) LockMode { return t.held[resource] }

// OnAbort registers an undo action to run (in reverse order) if the
// transaction aborts.
func (t *Txn) OnAbort(fn func()) { t.undo = append(t.undo, fn) }

// Manager creates transactions, assigns CSNs in commit order, and owns the
// lock manager.
type Manager struct {
	lm       *lockManager
	nextTxID atomic.Uint64

	// commitMu serializes the commit point: CSN assignment and the commit
	// hook (which writes the WAL commit record) happen atomically, so the
	// log's commit order, the CSN order, and the serialization order all
	// agree.
	commitMu sync.Mutex
	lastCSN  relalg.CSN

	// The commit-publish barrier. A committing transaction runs its publish
	// phase (stamping heap row versions with its CSN) after releasing
	// commitMu; stable trails lastCSN and advances only when every lower
	// CSN has finished publishing, so a reader at AsOf <= stable is
	// guaranteed to observe an exact prefix of the commit order.
	publishMu   sync.Mutex
	publishCond *sync.Cond
	stable      relalg.CSN
	assigned    relalg.CSN              // highest CSN handed out
	inflight    map[relalg.CSN]struct{} // assigned, publish not yet complete
	stallWaits  atomic.Int64            // WaitStable calls that blocked

	begun     atomic.Int64
	committed atomic.Int64
	aborted   atomic.Int64
}

// NewManager returns a fresh transaction manager. CSNs start at 1; CSN 0 is
// the null timestamp.
func NewManager() *Manager {
	m := &Manager{lm: newLockManager(), inflight: make(map[relalg.CSN]struct{})}
	m.publishCond = sync.NewCond(&m.publishMu)
	return m
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.begun.Add(1)
	return &Txn{
		id:   m.nextTxID.Add(1),
		mgr:  m,
		held: make(map[string]LockMode),
	}
}

// Commit finishes the transaction: it assigns the next CSN, invokes hook
// (if non-nil) with that CSN and the commit wall-clock time while holding
// the commit mutex, then releases all locks. The hook typically appends the
// WAL commit record; doing so under the commit mutex guarantees the log
// reflects commit order.
func (m *Manager) Commit(t *Txn, hook func(csn relalg.CSN, wall time.Time) error) (relalg.CSN, error) {
	return m.CommitPublish(t, hook, nil)
}

// CommitPublish is Commit with an additional publish phase: after the CSN
// is assigned and the hook has run, publish (if non-nil) runs outside the
// commit mutex — concurrently with other committers — and only once it
// returns does the transaction's CSN become stable (visible to snapshot
// readers) and its locks release. The engine stamps heap row versions with
// the commit CSN here, so CSN assignment and heap visibility are atomic
// with respect to the stable-CSN barrier.
func (m *Manager) CommitPublish(t *Txn, hook func(csn relalg.CSN, wall time.Time) error, publish func(csn relalg.CSN)) (relalg.CSN, error) {
	if t.state != StateActive {
		return 0, ErrTxnDone
	}
	m.commitMu.Lock()
	csn := m.lastCSN + 1
	if hook != nil {
		if err := hook(csn, time.Now()); err != nil {
			m.commitMu.Unlock()
			return 0, err
		}
	}
	m.lastCSN = csn
	m.publishMu.Lock()
	m.assigned = csn
	m.inflight[csn] = struct{}{}
	m.publishMu.Unlock()
	m.commitMu.Unlock()

	if publish != nil {
		publish(csn)
	}
	m.endPublish(csn)

	t.state = StateCommitted
	t.csn = csn
	t.undo = nil
	m.lm.release(t)
	m.committed.Add(1)
	return csn, nil
}

// endPublish marks csn's publish phase complete and advances the stable
// CSN past every contiguously published prefix.
func (m *Manager) endPublish(csn relalg.CSN) {
	m.publishMu.Lock()
	delete(m.inflight, csn)
	stable := m.assigned
	for c := range m.inflight {
		if c-1 < stable {
			stable = c - 1
		}
	}
	if stable > m.stable {
		m.stable = stable
		m.publishCond.Broadcast()
	}
	m.publishMu.Unlock()
}

// StableCSN returns the highest CSN S such that every transaction with CSN
// <= S has completed its publish phase: a read at AsOf <= S observes an
// exact prefix of the commit order.
func (m *Manager) StableCSN() relalg.CSN {
	m.publishMu.Lock()
	defer m.publishMu.Unlock()
	return m.stable
}

// WaitStable blocks until the stable CSN reaches csn. It returns
// immediately when csn is already stable.
func (m *Manager) WaitStable(csn relalg.CSN) {
	m.publishMu.Lock()
	if m.stable < csn {
		m.stallWaits.Add(1)
		for m.stable < csn {
			m.publishCond.Wait()
		}
	}
	m.publishMu.Unlock()
}

// CommitQuiet finishes the transaction keeping its effects but WITHOUT
// assigning a CSN, running a commit hook, or touching the publish barrier.
// Replica engines use it for local view-maintenance commits: a follower's
// time axis is the leader's CSN sequence replayed from the shipped log, so
// follower-side propagation must not mint CSNs of its own — doing so would
// desynchronize the replica's clock from the leader's. The transaction's
// effects (delta-table appends, cache updates) stand; undo actions are
// discarded and locks release as on a normal commit.
func (m *Manager) CommitQuiet(t *Txn) error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	t.state = StateCommitted
	t.undo = nil
	m.lm.release(t)
	m.committed.Add(1)
	return nil
}

// Abort rolls the transaction back: undo actions run in reverse order, then
// all locks are released.
func (m *Manager) Abort(t *Txn) error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	t.state = StateAborted
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	m.lm.abortWaiters(t)
	m.lm.release(t)
	m.aborted.Add(1)
	return nil
}

// LastCSN returns the most recently assigned commit sequence number.
func (m *Manager) LastCSN() relalg.CSN {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	return m.lastCSN
}

// Recover fast-forwards the commit-sequence counter past the highest CSN
// replayed from the log, so post-recovery commits continue the sequence.
// It never moves the counter backwards.
func (m *Manager) Recover(last relalg.CSN) {
	m.commitMu.Lock()
	if last > m.lastCSN {
		m.lastCSN = last
	}
	m.publishMu.Lock()
	if last > m.assigned {
		m.assigned = last
	}
	if last > m.stable {
		m.stable = last
		m.publishCond.Broadcast()
	}
	m.publishMu.Unlock()
	m.commitMu.Unlock()
}

// Stats is a snapshot of lock and transaction counters.
type Stats struct {
	Begun, Committed, Aborted int64
	LockAcquires              int64
	LockWaits                 int64
	LockWaitTime              time.Duration
	Deadlocks                 int64
	Upgrades                  int64
	PublishStalls             int64 // WaitStable calls that had to block
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begun:         m.begun.Load(),
		Committed:     m.committed.Load(),
		Aborted:       m.aborted.Load(),
		LockAcquires:  m.lm.acquires.Load(),
		LockWaits:     m.lm.waits.Load(),
		LockWaitTime:  time.Duration(m.lm.waitNanos.Load()),
		Deadlocks:     m.lm.deadlocks.Load(),
		Upgrades:      m.lm.escalation.Load(),
		PublishStalls: m.stallWaits.Load(),
	}
}
