package txn

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relalg"
)

// State is a transaction's lifecycle state.
type State uint8

// The transaction states.
const (
	StateActive State = iota
	StateCommitted
	StateAborted
)

// Txn is one transaction. It is not goroutine-safe: a transaction belongs
// to a single worker at a time (the usual session model).
type Txn struct {
	id    uint64
	mgr   *Manager
	state State
	held  map[string]LockMode
	undo  []func() // undo actions, run in reverse order on abort
	csn   relalg.CSN
}

// ID returns the transaction identifier.
func (t *Txn) ID() uint64 { return t.id }

// State returns the lifecycle state.
func (t *Txn) State() State { return t.state }

// CSN returns the commit sequence number; valid only after Commit.
func (t *Txn) CSN() relalg.CSN { return t.csn }

// Lock acquires the named resource in at least the given mode, blocking if
// necessary. It returns ErrDeadlock if the transaction is chosen as a
// deadlock victim; the caller must then abort.
func (t *Txn) Lock(resource string, mode LockMode) error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	return t.mgr.lm.acquire(t, resource, mode)
}

// HeldMode returns the mode currently held on resource (LockNone if none).
func (t *Txn) HeldMode(resource string) LockMode { return t.held[resource] }

// OnAbort registers an undo action to run (in reverse order) if the
// transaction aborts.
func (t *Txn) OnAbort(fn func()) { t.undo = append(t.undo, fn) }

// Manager creates transactions, assigns CSNs in commit order, and owns the
// lock manager.
type Manager struct {
	lm       *lockManager
	nextTxID atomic.Uint64

	// commitMu serializes the commit point: CSN assignment and the commit
	// hook (which writes the WAL commit record) happen atomically, so the
	// log's commit order, the CSN order, and the serialization order all
	// agree.
	commitMu sync.Mutex
	lastCSN  relalg.CSN

	begun     atomic.Int64
	committed atomic.Int64
	aborted   atomic.Int64
}

// NewManager returns a fresh transaction manager. CSNs start at 1; CSN 0 is
// the null timestamp.
func NewManager() *Manager {
	return &Manager{lm: newLockManager()}
}

// Begin starts a new transaction.
func (m *Manager) Begin() *Txn {
	m.begun.Add(1)
	return &Txn{
		id:   m.nextTxID.Add(1),
		mgr:  m,
		held: make(map[string]LockMode),
	}
}

// Commit finishes the transaction: it assigns the next CSN, invokes hook
// (if non-nil) with that CSN and the commit wall-clock time while holding
// the commit mutex, then releases all locks. The hook typically appends the
// WAL commit record; doing so under the commit mutex guarantees the log
// reflects commit order.
func (m *Manager) Commit(t *Txn, hook func(csn relalg.CSN, wall time.Time) error) (relalg.CSN, error) {
	if t.state != StateActive {
		return 0, ErrTxnDone
	}
	m.commitMu.Lock()
	csn := m.lastCSN + 1
	if hook != nil {
		if err := hook(csn, time.Now()); err != nil {
			m.commitMu.Unlock()
			return 0, err
		}
	}
	m.lastCSN = csn
	m.commitMu.Unlock()

	t.state = StateCommitted
	t.csn = csn
	t.undo = nil
	m.lm.release(t)
	m.committed.Add(1)
	return csn, nil
}

// Abort rolls the transaction back: undo actions run in reverse order, then
// all locks are released.
func (m *Manager) Abort(t *Txn) error {
	if t.state != StateActive {
		return ErrTxnDone
	}
	t.state = StateAborted
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.undo = nil
	m.lm.abortWaiters(t)
	m.lm.release(t)
	m.aborted.Add(1)
	return nil
}

// LastCSN returns the most recently assigned commit sequence number.
func (m *Manager) LastCSN() relalg.CSN {
	m.commitMu.Lock()
	defer m.commitMu.Unlock()
	return m.lastCSN
}

// Recover fast-forwards the commit-sequence counter past the highest CSN
// replayed from the log, so post-recovery commits continue the sequence.
// It never moves the counter backwards.
func (m *Manager) Recover(last relalg.CSN) {
	m.commitMu.Lock()
	if last > m.lastCSN {
		m.lastCSN = last
	}
	m.commitMu.Unlock()
}

// Stats is a snapshot of lock and transaction counters.
type Stats struct {
	Begun, Committed, Aborted int64
	LockAcquires              int64
	LockWaits                 int64
	LockWaitTime              time.Duration
	Deadlocks                 int64
	Upgrades                  int64
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Begun:        m.begun.Load(),
		Committed:    m.committed.Load(),
		Aborted:      m.aborted.Load(),
		LockAcquires: m.lm.acquires.Load(),
		LockWaits:    m.lm.waits.Load(),
		LockWaitTime: time.Duration(m.lm.waitNanos.Load()),
		Deadlocks:    m.lm.deadlocks.Load(),
		Upgrades:     m.lm.escalation.Load(),
	}
}
