// Package txn provides the transaction substrate the paper assumes: strict
// two-phase locking with multi-granularity locks (IS/IX/S/X), waits-for
// deadlock detection, and commit sequence numbers (CSNs) assigned in commit
// order. Under strict 2PL the commit order is consistent with the
// serialization order, which is exactly the assumption of Section 2 of the
// paper and what makes CSNs usable as the propagation time axis.
package txn

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// LockMode is a multi-granularity lock mode.
type LockMode uint8

// The lock modes, in increasing strength order along the upgrade lattice.
const (
	LockNone LockMode = iota
	LockIS            // intention shared (table, before row S)
	LockIX            // intention exclusive (table, before row X)
	LockS             // shared (table scan or row read)
	LockX             // exclusive
)

// String names the lock mode.
func (m LockMode) String() string {
	switch m {
	case LockNone:
		return "-"
	case LockIS:
		return "IS"
	case LockIX:
		return "IX"
	case LockS:
		return "S"
	case LockX:
		return "X"
	default:
		return "?"
	}
}

// compatible reports whether two modes may be held simultaneously by
// different transactions (the classical multi-granularity matrix, without
// SIX).
func compatible(a, b LockMode) bool {
	switch a {
	case LockIS:
		return b != LockX
	case LockIX:
		return b == LockIS || b == LockIX
	case LockS:
		return b == LockIS || b == LockS
	case LockX:
		return false
	default:
		return true
	}
}

// supremum returns the weakest mode at least as strong as both inputs.
// Holding S and requesting IX (or vice versa) escalates to X since SIX is
// not modeled.
func supremum(a, b LockMode) LockMode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == LockNone:
		return b
	case a == LockIS:
		return b
	case a == LockIX && b == LockS:
		return LockX
	default: // (IX,X), (S,X)
		return LockX
	}
}

// ErrDeadlock is returned to a lock requester chosen as the deadlock victim.
var ErrDeadlock = errors.New("txn: deadlock detected, transaction chosen as victim")

// ErrTxnDone is returned when operating on a committed or aborted
// transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

type lockRequest struct {
	txid    uint64
	mode    LockMode // the full target mode (supremum for upgrades)
	upgrade bool
	ready   chan error
}

type lockState struct {
	granted map[uint64]LockMode
	queue   []*lockRequest
}

// lockManager implements the lock table. All state is protected by mu;
// waiters block on per-request channels outside the mutex.
type lockManager struct {
	mu    sync.Mutex
	locks map[string]*lockState

	// Metrics, updated atomically.
	waits      atomic.Int64 // number of lock waits
	waitNanos  atomic.Int64 // total time spent blocked
	deadlocks  atomic.Int64
	acquires   atomic.Int64
	escalation atomic.Int64 // upgrade requests
}

func newLockManager() *lockManager {
	return &lockManager{locks: make(map[string]*lockState)}
}

// acquire obtains resource in at least the given mode for tx, blocking as
// needed. It returns ErrDeadlock if granting would create a waits-for cycle
// (the requester is the victim).
func (lm *lockManager) acquire(tx *Txn, resource string, mode LockMode) error {
	lm.acquires.Add(1)
	lm.mu.Lock()
	st := lm.locks[resource]
	if st == nil {
		st = &lockState{granted: make(map[uint64]LockMode)}
		lm.locks[resource] = st
	}
	held := st.granted[tx.id]
	target := supremum(held, mode)
	if held == target {
		lm.mu.Unlock()
		return nil // already strong enough
	}
	upgrade := held != LockNone
	if upgrade {
		lm.escalation.Add(1)
	}
	if lm.grantable(st, tx.id, target, upgrade) {
		st.granted[tx.id] = target
		tx.held[resource] = target
		lm.mu.Unlock()
		return nil
	}
	// Must wait. Check for a deadlock with this wait added.
	req := &lockRequest{txid: tx.id, mode: target, upgrade: upgrade, ready: make(chan error, 1)}
	if upgrade {
		// Upgrades go to the front so readers-turned-writers are not
		// starved by later arrivals.
		st.queue = append([]*lockRequest{req}, st.queue...)
	} else {
		st.queue = append(st.queue, req)
	}
	if lm.wouldDeadlock(tx.id) {
		lm.removeRequest(st, req)
		lm.mu.Unlock()
		lm.deadlocks.Add(1)
		return ErrDeadlock
	}
	lm.mu.Unlock()

	lm.waits.Add(1)
	start := time.Now()
	err := <-req.ready
	lm.waitNanos.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return err
	}
	tx.held[resource] = req.mode
	return nil
}

// grantable reports whether txid may hold resource in mode given the
// current granted set and FIFO queue. The caller holds lm.mu.
func (lm *lockManager) grantable(st *lockState, txid uint64, mode LockMode, upgrade bool) bool {
	for other, m := range st.granted {
		if other == txid {
			continue
		}
		if !compatible(mode, m) {
			return false
		}
	}
	if upgrade {
		return true // upgrades bypass the queue once holders are compatible
	}
	// FIFO fairness: a new request must also not overtake waiting requests.
	return len(st.queue) == 0
}

// release drops all of tx's locks and wakes newly grantable waiters. The
// caller must not hold lm.mu.
func (lm *lockManager) release(tx *Txn) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for resource := range tx.held {
		st := lm.locks[resource]
		if st == nil {
			continue
		}
		delete(st.granted, tx.id)
		lm.wakeWaiters(st)
		if len(st.granted) == 0 && len(st.queue) == 0 {
			delete(lm.locks, resource)
		}
	}
	tx.held = make(map[string]LockMode)
}

// wakeWaiters grants queued requests in FIFO order while they remain
// compatible. The caller holds lm.mu.
func (lm *lockManager) wakeWaiters(st *lockState) {
	for len(st.queue) > 0 {
		req := st.queue[0]
		if !lm.grantableQueued(st, req) {
			return
		}
		st.queue = st.queue[1:]
		st.granted[req.txid] = req.mode
		req.ready <- nil
	}
}

// grantableQueued is grantable for a request already at the queue head.
func (lm *lockManager) grantableQueued(st *lockState, req *lockRequest) bool {
	for other, m := range st.granted {
		if other == req.txid {
			continue
		}
		if !compatible(req.mode, m) {
			return false
		}
	}
	return true
}

func (lm *lockManager) removeRequest(st *lockState, req *lockRequest) {
	for i, r := range st.queue {
		if r == req {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

// wouldDeadlock runs a DFS over the waits-for graph looking for a cycle
// through start. The caller holds lm.mu.
func (lm *lockManager) wouldDeadlock(start uint64) bool {
	// Build waits-for edges: each queued request waits for (a) incompatible
	// granted holders and (b) incompatible requests ahead of it in line.
	edges := make(map[uint64]map[uint64]bool)
	addEdge := func(from, to uint64) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[uint64]bool)
		}
		edges[from][to] = true
	}
	for _, st := range lm.locks {
		for i, req := range st.queue {
			for holder, m := range st.granted {
				if holder != req.txid && !compatible(req.mode, m) {
					addEdge(req.txid, holder)
				}
			}
			for j := 0; j < i; j++ {
				ahead := st.queue[j]
				if ahead.txid != req.txid && !compatible(req.mode, ahead.mode) {
					addEdge(req.txid, ahead.txid)
				}
			}
		}
	}
	// DFS from start.
	seen := make(map[uint64]bool)
	var stack []uint64
	for to := range edges[start] {
		stack = append(stack, to)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == start {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for to := range edges[cur] {
			stack = append(stack, to)
		}
	}
	return false
}

// abortWaiters fails any outstanding requests of tx (used when a
// transaction is torn down while a request is somehow pending; defensive).
func (lm *lockManager) abortWaiters(tx *Txn) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		for i := 0; i < len(st.queue); i++ {
			if st.queue[i].txid == tx.id {
				req := st.queue[i]
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				i--
				req.ready <- ErrTxnDone
			}
		}
	}
}
