package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/relalg"
)

func TestCompatMatrix(t *testing.T) {
	type row struct {
		a, b LockMode
		want bool
	}
	cases := []row{
		{LockIS, LockIS, true}, {LockIS, LockIX, true}, {LockIS, LockS, true}, {LockIS, LockX, false},
		{LockIX, LockIS, true}, {LockIX, LockIX, true}, {LockIX, LockS, false}, {LockIX, LockX, false},
		{LockS, LockIS, true}, {LockS, LockIX, false}, {LockS, LockS, true}, {LockS, LockX, false},
		{LockX, LockIS, false}, {LockX, LockIX, false}, {LockX, LockS, false}, {LockX, LockX, false},
	}
	for _, c := range cases {
		if got := compatible(c.a, c.b); got != c.want {
			t.Errorf("compatible(%s,%s)=%v want %v", c.a, c.b, got, c.want)
		}
		if got := compatible(c.b, c.a); got != c.want {
			t.Errorf("matrix not symmetric at (%s,%s)", c.b, c.a)
		}
	}
}

func TestSupremum(t *testing.T) {
	cases := []struct{ a, b, want LockMode }{
		{LockNone, LockS, LockS},
		{LockIS, LockIX, LockIX},
		{LockIS, LockS, LockS},
		{LockIX, LockS, LockX}, // no SIX: escalate
		{LockS, LockX, LockX},
		{LockIX, LockX, LockX},
		{LockS, LockS, LockS},
	}
	for _, c := range cases {
		if got := supremum(c.a, c.b); got != c.want {
			t.Errorf("supremum(%s,%s)=%s want %s", c.a, c.b, got, c.want)
		}
		if got := supremum(c.b, c.a); got != c.want {
			t.Errorf("supremum not commutative at (%s,%s)", c.b, c.a)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("r", LockS); err != nil {
		t.Fatal(err)
	}
	if err := t2.Lock("r", LockS); err != nil {
		t.Fatal(err)
	}
	m.Commit(t1, nil)
	m.Commit(t2, nil)
}

func TestExclusiveBlocks(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	if err := t1.Lock("r", LockX); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() {
		acquired <- t2.Lock("r", LockX)
	}()
	select {
	case <-acquired:
		t.Fatal("t2 should block while t1 holds X")
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(t1, nil)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	m.Commit(t2, nil)
}

func TestReacquireIsNoop(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	for i := 0; i < 3; i++ {
		if err := t1.Lock("r", LockS); err != nil {
			t.Fatal(err)
		}
	}
	if t1.HeldMode("r") != LockS {
		t.Fatal("mode")
	}
	m.Commit(t1, nil)
}

func TestUpgradeSToX(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	t1.Lock("r", LockS)
	t2.Lock("r", LockS)
	done := make(chan error, 1)
	go func() { done <- t1.Lock("r", LockX) }()
	select {
	case <-done:
		t.Fatal("upgrade should wait for t2's S")
	case <-time.After(20 * time.Millisecond):
	}
	m.Commit(t2, nil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if t1.HeldMode("r") != LockX {
		t.Fatalf("held %s", t1.HeldMode("r"))
	}
	m.Commit(t1, nil)
}

func TestUpgradeBeatsNewRequests(t *testing.T) {
	m := NewManager()
	holder, upgrader, newcomer := m.Begin(), m.Begin(), m.Begin()
	holder.Lock("r", LockS)
	upgrader.Lock("r", LockS)

	upDone := make(chan error, 1)
	go func() { upDone <- upgrader.Lock("r", LockX) }()
	time.Sleep(10 * time.Millisecond) // let the upgrade enqueue
	newDone := make(chan error, 1)
	go func() { newDone <- newcomer.Lock("r", LockX) }()
	time.Sleep(10 * time.Millisecond)

	m.Commit(holder, nil)
	select {
	case err := <-upDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-newDone:
		t.Fatal("newcomer overtook the upgrade")
	}
	m.Commit(upgrader, nil)
	if err := <-newDone; err != nil {
		t.Fatal(err)
	}
	m.Commit(newcomer, nil)
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	t1.Lock("a", LockX)
	t2.Lock("b", LockX)
	blocked := make(chan error, 1)
	go func() { blocked <- t1.Lock("b", LockX) }()
	time.Sleep(20 * time.Millisecond)
	// t2 requesting a now closes the cycle; t2 must be the victim.
	err := t2.Lock("a", LockX)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.Abort(t2)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	m.Commit(t1, nil)
	if m.Stats().Deadlocks != 1 {
		t.Fatal("deadlock counter")
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	txs := []*Txn{m.Begin(), m.Begin(), m.Begin()}
	for i, tx := range txs {
		if err := tx.Lock(fmt.Sprintf("r%d", i), LockX); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	go func() { errs <- txs[0].Lock("r1", LockX) }()
	time.Sleep(10 * time.Millisecond)
	go func() { errs <- txs[1].Lock("r2", LockX) }()
	time.Sleep(10 * time.Millisecond)
	// Closing edge: t2 -> r0 completes the 3-cycle.
	err := txs[2].Lock("r0", LockX)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	m.Abort(txs[2])
	// The abort releases r2, so t1's wait resolves first; committing t1 then
	// releases r1 for t0.
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.Commit(txs[1], nil)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.Commit(txs[0], nil)
}

func TestCSNMonotonicAndHookOrder(t *testing.T) {
	m := NewManager()
	var mu sync.Mutex
	var hookOrder []relalg.CSN
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := m.Begin()
			_, err := m.Commit(tx, func(csn relalg.CSN, _ time.Time) error {
				mu.Lock()
				hookOrder = append(hookOrder, csn)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if len(hookOrder) != 50 {
		t.Fatalf("hooks: %d", len(hookOrder))
	}
	for i, csn := range hookOrder {
		if csn != relalg.CSN(i+1) {
			t.Fatalf("hook order broken at %d: %d", i, csn)
		}
	}
	if m.LastCSN() != 50 {
		t.Fatal("last csn")
	}
}

func TestCommitHookErrorLeavesTxnActive(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	wantErr := errors.New("log full")
	_, err := m.Commit(tx, func(relalg.CSN, time.Time) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatal(err)
	}
	if tx.State() != StateActive {
		t.Fatal("txn should remain active after hook failure")
	}
	// A later commit must reuse the CSN the failed attempt did not consume.
	csn, err := m.Commit(tx, nil)
	if err != nil || csn != 1 {
		t.Fatalf("csn %d err %v", csn, err)
	}
}

func TestAbortRunsUndoInReverse(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	var order []int
	tx.OnAbort(func() { order = append(order, 1) })
	tx.OnAbort(func() { order = append(order, 2) })
	m.Abort(tx)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("undo order: %v", order)
	}
	if tx.State() != StateAborted {
		t.Fatal("state")
	}
}

func TestFinishedTxnRejectsOperations(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	m.Commit(tx, nil)
	if err := tx.Lock("r", LockS); !errors.Is(err, ErrTxnDone) {
		t.Fatal(err)
	}
	if _, err := m.Commit(tx, nil); !errors.Is(err, ErrTxnDone) {
		t.Fatal(err)
	}
	if err := m.Abort(tx); !errors.Is(err, ErrTxnDone) {
		t.Fatal(err)
	}
}

func TestLocksReleasedOnAbort(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	t1.Lock("r", LockX)
	m.Abort(t1)
	if err := t2.Lock("r", LockX); err != nil {
		t.Fatal(err)
	}
	m.Commit(t2, nil)
}

// TestSerializability runs concurrent read-modify-write transactions over a
// shared map protected only by the lock manager and verifies the final sum
// is exact — a strict-2PL serializability smoke test.
func TestSerializability(t *testing.T) {
	m := NewManager()
	accounts := map[string]int{"a": 1000, "b": 1000, "c": 1000}
	var tableMu sync.Mutex // simulates low-level page latching only
	read := func(k string) int {
		tableMu.Lock()
		defer tableMu.Unlock()
		return accounts[k]
	}
	write := func(k string, v int) {
		tableMu.Lock()
		defer tableMu.Unlock()
		accounts[k] = v
	}

	const workers = 8
	const txPerWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			names := []string{"a", "b", "c"}
			for i := 0; i < txPerWorker; i++ {
				for {
					tx := m.Begin()
					src := names[r.Intn(3)]
					dst := names[r.Intn(3)]
					if src == dst {
						dst = names[(r.Intn(2)+1+r.Intn(1))%3]
					}
					if err := tx.Lock(src, LockX); err != nil {
						m.Abort(tx)
						continue
					}
					sv := read(src)
					tx.OnAbort(func() { write(src, sv) })
					write(src, sv-1)
					if err := tx.Lock(dst, LockX); err != nil {
						m.Abort(tx)
						continue // deadlock victim: retry
					}
					dv := read(dst)
					tx.OnAbort(func() { write(dst, dv) })
					write(dst, dv+1)
					if _, err := m.Commit(tx, nil); err != nil {
						t.Error(err)
						return
					}
					break
				}
			}
		}(int64(w))
	}
	wg.Wait()
	total := read("a") + read("b") + read("c")
	if total != 3000 {
		t.Fatalf("money not conserved: %d", total)
	}
	st := m.Stats()
	if st.Committed != workers*txPerWorker {
		t.Fatalf("committed %d", st.Committed)
	}
}

func TestStatsWaitAccounting(t *testing.T) {
	m := NewManager()
	t1, t2 := m.Begin(), m.Begin()
	t1.Lock("r", LockX)
	done := make(chan struct{})
	go func() {
		t2.Lock("r", LockX)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	m.Commit(t1, nil)
	<-done
	st := m.Stats()
	if st.LockWaits != 1 {
		t.Fatalf("waits %d", st.LockWaits)
	}
	if st.LockWaitTime < 20*time.Millisecond {
		t.Fatalf("wait time %v too small", st.LockWaitTime)
	}
	m.Commit(t2, nil)
}

func TestLockModeString(t *testing.T) {
	for _, m := range []LockMode{LockNone, LockIS, LockIX, LockS, LockX} {
		if m.String() == "?" {
			t.Fatal("mode name")
		}
	}
	if LockMode(99).String() != "?" {
		t.Fatal("unknown mode")
	}
}
